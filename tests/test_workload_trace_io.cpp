#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "workload/generator.hpp"

namespace wrht::workload {
namespace {

TEST(TraceFormat, NamesRoundTrip) {
  EXPECT_EQ(parse_trace_format("jsonl"), TraceFormat::kJsonl);
  EXPECT_EQ(parse_trace_format("csv"), TraceFormat::kCsv);
  EXPECT_FALSE(parse_trace_format("yaml").has_value());
  EXPECT_STREQ(trace_format_name(TraceFormat::kJsonl), "jsonl");
  EXPECT_STREQ(trace_format_name(TraceFormat::kCsv), "csv");
}

TEST(FormatDoubleExact, RoundTripsThroughStrtod) {
  const double values[] = {0.0,
                           0.1,
                           1.0 / 3.0,
                           -2.5,
                           1e-300,
                           5e-324,
                           1.7976931348623157e308,
                           123456.789,
                           0.30000000000000004};
  for (const double v : values) {
    const std::string text = format_double_exact(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

std::vector<runtime::JobSpec> generated_specs(std::uint64_t n) {
  WorkloadConfig config;
  config.seed = 99;
  config.num_jobs = n;
  config.arrivals = ArrivalProcess::kBursty;
  WorkloadGenerator gen(config);
  std::vector<runtime::JobSpec> specs;
  while (std::optional<runtime::JobSpec> spec = gen.next()) {
    specs.push_back(std::move(*spec));
  }
  return specs;
}

void expect_specs_equal(const runtime::JobSpec& a, const runtime::JobSpec& b) {
  EXPECT_EQ(a.arrival.value(), b.arrival.value());
  EXPECT_EQ(a.participants, b.participants);
  EXPECT_EQ(a.payload.count(), b.payload.count());
  EXPECT_EQ(a.requested_wavelengths, b.requested_wavelengths);
  EXPECT_EQ(a.min_wavelengths, b.min_wavelengths);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_EQ(a.pin, b.pin);
  EXPECT_EQ(a.deadline.value(), b.deadline.value());
  EXPECT_EQ(a.name, b.name);
}

void round_trip(const std::vector<runtime::JobSpec>& specs,
                TraceFormat format) {
  std::ostringstream out;
  TraceWriter writer(out, format);
  for (const runtime::JobSpec& spec : specs) writer.write(spec);
  EXPECT_EQ(writer.written(), specs.size());

  std::istringstream in(out.str());
  TraceReader reader(in, format);
  std::size_t i = 0;
  while (std::optional<runtime::JobSpec> spec = reader.next()) {
    ASSERT_LT(i, specs.size());
    expect_specs_equal(specs[i], *spec);
    ++i;
  }
  EXPECT_EQ(i, specs.size());
  EXPECT_EQ(reader.read(), specs.size());
}

// Every field of every generated spec — arrival doubles included — must
// survive the text round trip bit for bit; this is what makes a replayed
// trace reproduce the recorded RuntimeReport exactly.
TEST(TraceIo, JsonlRoundTripPreservesGeneratedSpecs) {
  round_trip(generated_specs(300), TraceFormat::kJsonl);
}

TEST(TraceIo, CsvRoundTripPreservesGeneratedSpecs) {
  round_trip(generated_specs(300), TraceFormat::kCsv);
}

TEST(TraceIo, RoundTripPreservesHandWrittenEdgeCases) {
  std::vector<runtime::JobSpec> specs;
  runtime::JobSpec tricky;
  tricky.arrival = util::Seconds(0.1 + 0.2);  // 0.30000000000000004
  tricky.participants = {0, 63};
  tricky.payload = util::Bytes(1);
  tricky.requested_wavelengths = 8;
  tricky.min_wavelengths = 4;
  tricky.weight = 1.0 / 3.0;
  tricky.priority = -3;
  tricky.pin = runtime::SubstratePin::kElectricalOnly;
  tricky.deadline = util::Seconds(1e-3);
  tricky.name = "a,b \"quoted\" name";
  specs.push_back(tricky);
  runtime::JobSpec plain;
  plain.arrival = util::Seconds(2.0);
  plain.participants = {1, 2, 3};
  plain.payload = util::kilobytes(64);
  specs.push_back(plain);
  round_trip(specs, TraceFormat::kJsonl);
  round_trip(specs, TraceFormat::kCsv);
}

TEST(TraceIo, JsonlOmitsDefaultedFields) {
  runtime::JobSpec plain;
  plain.arrival = util::Seconds(1.5);
  plain.participants = {4, 9};
  plain.payload = util::Bytes(1024);
  std::ostringstream out;
  TraceWriter writer(out, TraceFormat::kJsonl);
  writer.write(plain);
  EXPECT_EQ(out.str(),
            "{\"arrival\":1.5,\"participants\":[4,9],\"payload\":1024}\n");
}

TEST(TraceIo, CsvHeaderMismatchDies) {
  std::istringstream in("not,the,header\n1,2,3\n");
  EXPECT_DEATH(TraceReader(in, TraceFormat::kCsv), "header mismatch");
}

TEST(TraceIo, MalformedJsonlLineDies) {
  std::istringstream in("{\"arrival\":}\n");
  TraceReader reader(in, TraceFormat::kJsonl);
  EXPECT_DEATH(reader.next(), "line 1");
}

// The end-to-end promise: a trace recorded to TEXT and replayed through
// serve() reproduces the directly-served RuntimeReport bit for bit, in both
// formats.  This is what shortest-round-trip double formatting buys.
TEST(TraceIo, ReplayedTraceReproducesRuntimeReport) {
  WorkloadConfig wconfig;
  wconfig.seed = 31;
  wconfig.num_jobs = 400;
  wconfig.ring_size = 32;
  wconfig.mean_rate = 2000.0;
  wconfig.payload_median = util::kilobytes(128);
  wconfig.max_payload = util::megabytes(4);
  wconfig.max_participants = 12;

  runtime::RuntimeConfig rconfig;
  rconfig.ring_size = 32;
  rconfig.optical.wdm.num_wavelengths = 32;
  rconfig.policy = runtime::FairnessPolicy::kFifo;
  rconfig.default_request = 4;
  rconfig.batcher.enabled = false;

  WorkloadGenerator direct(wconfig);
  runtime::CollectiveRuntime direct_rt(rconfig);
  const runtime::RuntimeReport expected = direct_rt.serve(direct);

  for (const TraceFormat format : {TraceFormat::kJsonl, TraceFormat::kCsv}) {
    WorkloadGenerator gen(wconfig);
    std::ostringstream out;
    record_trace(gen, out, format);

    std::istringstream in(out.str());
    TraceReader reader(in, format);
    runtime::CollectiveRuntime replay_rt(rconfig);
    const runtime::RuntimeReport replayed = replay_rt.serve(reader);

    EXPECT_EQ(expected.makespan.value(), replayed.makespan.value());
    EXPECT_EQ(expected.completed, replayed.completed);
    EXPECT_EQ(expected.rejected, replayed.rejected);
    EXPECT_EQ(expected.total_steps, replayed.total_steps);
    EXPECT_EQ(expected.spectrum_reservations, replayed.spectrum_reservations);
    EXPECT_EQ(expected.total_turnaround.value(),
              replayed.total_turnaround.value());
    EXPECT_EQ(expected.slo.p99_turnaround.value(),
              replayed.slo.p99_turnaround.value());
    EXPECT_EQ(expected.slo.max_wait.value(), replayed.slo.max_wait.value());
    EXPECT_EQ(expected.slo.deadline_hits, replayed.slo.deadline_hits);
  }
}

TEST(TraceIo, RecordTraceDrainsSource) {
  WorkloadConfig config;
  config.num_jobs = 25;
  WorkloadGenerator gen(config);
  std::ostringstream out;
  EXPECT_EQ(record_trace(gen, out, TraceFormat::kCsv), 25u);
  EXPECT_EQ(gen.emitted(), 25u);
}

}  // namespace
}  // namespace wrht::workload
