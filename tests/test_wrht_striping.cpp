#include "wrht/striping.hpp"

#include <gtest/gtest.h>

#include "coll/executor.hpp"
#include "optical/spectrum.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"
#include "wrht/pipeline.hpp"
#include "wrht/time_model.hpp"

namespace wrht::core {
namespace {

using util::Bytes;

WrhtParams wrht_params(std::uint32_t w) {
  WrhtParams params;
  params.num_wavelengths = w;
  return params;
}

optical::OpticalParams optical_params(std::uint32_t w) {
  optical::OpticalParams p;
  p.wdm.num_wavelengths = w;
  return p;
}

TEST(Striping, PreservesFunctionalSchedule) {
  const WrhtBuild build = build_wrht(64, wrht_params(16));
  const AnnotatedSchedule striped =
      apply_striping(build.annotated, 16, Bytes(1'000'000));
  // Striping only touches wavelength sets, never the transfers.
  EXPECT_TRUE(
      coll::FunctionalExecutor::verify_allreduce(striped.schedule, 16));
  ASSERT_EQ(striped.paths.size(), build.annotated.paths.size());
  for (std::size_t s = 0; s < striped.paths.size(); ++s) {
    ASSERT_EQ(striped.paths[s].size(), build.annotated.paths[s].size());
  }
}

TEST(Striping, StaysConflictFree) {
  const WrhtBuild build = build_wrht(50, wrht_params(8));
  const AnnotatedSchedule striped =
      apply_striping(build.annotated, 8, Bytes(1'000'000));
  const topo::RingTopology ring(50);
  for (const auto& step : striped.paths) {
    optical::SpectrumMap spectrum(ring, 8);
    for (const PathAssignment& path : step) {
      for (const optical::WavelengthId lambda : path.lambdas) {
        ASSERT_TRUE(spectrum.is_free(path.arc, lambda));
        spectrum.reserve(path.arc, lambda);
      }
    }
  }
}

TEST(Striping, RespectsWavelengthBudget) {
  const WrhtBuild build = build_wrht(64, wrht_params(8));
  const AnnotatedSchedule striped =
      apply_striping(build.annotated, 8, Bytes(1'000'000));
  EXPECT_LE(striped.wavelengths_required, 8u);
}

TEST(Striping, GrantsIdleWavelengths) {
  // A Wrht tree step leaves the far spans of each group underused; striping
  // must find at least some extra capacity.
  const WrhtBuild build = build_wrht(64, wrht_params(16));
  StripingStats stats;
  const AnnotatedSchedule striped =
      apply_striping(build.annotated, 16, Bytes(1'000'000), &stats);
  EXPECT_GT(stats.extra_lambdas_granted, 0u);
  EXPECT_GT(stats.max_stripes_on_one_transfer, 1u);
  (void)striped;
}

TEST(Striping, NeverSlowerSometimesFaster) {
  const Bytes payload(100'000'000);
  for (const std::uint32_t n : {32u, 64u, 128u}) {
    const std::uint32_t w = 16;
    const WrhtBuild build = build_wrht(n, wrht_params(w));
    const optical::OpticalParams p = optical_params(w);
    const double base =
        analytic_schedule_time(build.annotated, payload, p).value();
    const AnnotatedSchedule striped =
        apply_striping(build.annotated, w, payload);
    const double after = analytic_schedule_time(striped, payload, p).value();
    EXPECT_LE(after, base * (1.0 + 1e-12)) << "n=" << n;
  }
}

TEST(Striping, SpeedsUpUnbalancedStep) {
  // Hand-built step: one long transfer, lots of idle spectrum.  Striping
  // should cut its serialization roughly by the stripe count.
  const std::uint32_t n = 16;
  const topo::RingTopology ring(n);
  coll::Schedule schedule("one", n, 1);
  schedule.add_step();
  schedule.add_transfer({0, 4, 0, coll::TransferOp::kReduce});
  AnnotatedSchedule annotated{
      std::move(schedule),
      {{PathAssignment{ring.arc(0, 4, topo::Direction::kClockwise), {0}}}},
      1,
      {1}};
  const AnnotatedSchedule striped =
      apply_striping(annotated, 8, Bytes(8'000'000));
  ASSERT_EQ(striped.paths[0][0].lambdas.size(), 8u);
  const optical::OpticalParams p = optical_params(8);
  const double base =
      analytic_schedule_time(annotated, Bytes(8'000'000), p).value();
  const double after =
      analytic_schedule_time(striped, Bytes(8'000'000), p).value();
  // Serialization shrinks 8x; overheads stay.
  EXPECT_LT(after, base);
  const double data_base = 8e6 / p.wdm.wavelength_bandwidth.bytes_per_second();
  EXPECT_NEAR(base - after, data_base * 7.0 / 8.0, 1e-9);
}

TEST(Striping, ComposesWithPipeline) {
  // The two extensions are orthogonal: striping an already-pipelined
  // schedule must stay correct, conflict-free, and not slower.
  const std::uint32_t w = 32;
  WrhtPipelineParams pp;
  pp.num_wavelengths = w;
  pp.num_segments = 4;
  const WrhtPipelineBuild pipelined = build_wrht_pipelined(64, pp);
  const util::Bytes payload(400'000'000);
  const AnnotatedSchedule both =
      apply_striping(pipelined.annotated, w, payload);

  EXPECT_TRUE(coll::FunctionalExecutor::verify_allreduce(both.schedule, 32));
  EXPECT_LE(both.wavelengths_required, w);

  const optical::OpticalParams p = optical_params(w);
  const double before =
      analytic_schedule_time(pipelined.annotated, payload, p).value();
  const double after = analytic_schedule_time(both, payload, p).value();
  EXPECT_LE(after, before * (1.0 + 1e-12));
}

TEST(Striping, DesAcceptsStripedSchedule) {
  const std::uint32_t w = 8;
  const WrhtBuild build = build_wrht(40, wrht_params(w));
  const AnnotatedSchedule striped =
      apply_striping(build.annotated, w, Bytes(10'000'000));
  const optical::RunResult run =
      run_on_optical(striped, optical_params(w), Bytes(10'000'000));
  EXPECT_GT(run.total.value(), 0.0);
  const double analytic =
      analytic_schedule_time(striped, Bytes(10'000'000), optical_params(w))
          .value();
  EXPECT_NEAR(run.total.value(), analytic, analytic * 1e-12);
}

}  // namespace
}  // namespace wrht::core
