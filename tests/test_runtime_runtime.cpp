// End-to-end tests of the multi-tenant collective runtime: spectrum budget
// enforcement, conflict-free concurrency on one clock, batching correctness
// via the oracle, and deterministic completion ordering per policy.
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.hpp"

namespace wrht::runtime {
namespace {

JobSpec group_job(std::uint32_t first, std::uint32_t count,
                  util::Bytes payload, util::Seconds arrival = {},
                  std::uint32_t requested = 0) {
  JobSpec spec;
  for (std::uint32_t i = 0; i < count; ++i) {
    spec.participants.push_back(first + i);
  }
  spec.payload = payload;
  spec.arrival = arrival;
  spec.requested_wavelengths = requested;
  return spec;
}

RuntimeConfig small_ring_config(std::uint32_t wavelengths) {
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = wavelengths;
  config.default_request = 4;
  return config;
}

TEST(RuntimeAdmission, RespectsTotalWavelengthBudget) {
  // 8 wavelengths; three jobs that each insist on 4.  Only two fit at once.
  RuntimeConfig config = small_ring_config(8);
  CollectiveRuntime rt(config);
  for (std::uint32_t i = 0; i < 3; ++i) {
    JobSpec spec = group_job(0, 8, util::megabytes(4), {}, /*requested=*/4);
    spec.min_wavelengths = 4;
    rt.submit(spec);
  }
  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.peak_concurrent_jobs, 2u);

  // The two concurrent grants partition the spectrum instead of exceeding it.
  const JobRecord& a = rt.record(0);
  const JobRecord& b = rt.record(1);
  const JobRecord& c = rt.record(2);
  EXPECT_EQ(a.band.width + b.band.width, 8u);
  const bool disjoint = a.band.base + a.band.width <= b.band.base ||
                        b.band.base + b.band.width <= a.band.base;
  EXPECT_TRUE(disjoint);
  // The third job waited for a completion before being admitted.
  EXPECT_GT(c.admitted, a.admitted);
}

TEST(RuntimeAdmission, RejectsInfeasibleSpecs) {
  RuntimeConfig config = small_ring_config(8);
  CollectiveRuntime rt(config);

  JobSpec impossible = group_job(0, 4, util::kilobytes(1));
  impossible.min_wavelengths = 9;  // more than the whole spectrum
  const JobId a = rt.submit(impossible);

  JobSpec unsorted = group_job(0, 4, util::kilobytes(1));
  std::swap(unsorted.participants[0], unsorted.participants[3]);
  const JobId b = rt.submit(unsorted);

  JobSpec offring = group_job(14, 4, util::kilobytes(1));  // nodes 14..17
  const JobId c = rt.submit(offring);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.rejected, 3u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(rt.record(a).state, JobState::kRejected);
  EXPECT_EQ(rt.record(b).state, JobState::kRejected);
  EXPECT_EQ(rt.record(c).state, JobState::kRejected);
}

TEST(RuntimeAdmission, InconsistentSpecsAreRejectedWithReasonsNotRewritten) {
  RuntimeConfig config = small_ring_config(8);
  CollectiveRuntime rt(config);

  // Explicit request below the job's own minimum: a tenant bug the runtime
  // used to paper over by silently raising the request to the minimum.
  JobSpec contradictory = group_job(0, 8, util::kilobytes(1), {},
                                    /*requested=*/2);
  contradictory.min_wavelengths = 4;
  const JobId a = rt.submit(contradictory);

  // A minimum above the job's useful wavelength cap (4 participants can
  // exploit at most ceil(16/8) = 2 wavelengths): the old clamp granted the
  // minimum anyway and wasted the difference.
  JobSpec overdemanding = group_job(0, 4, util::kilobytes(1));
  overdemanding.min_wavelengths = 5;
  const JobId b = rt.submit(overdemanding);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.rejected, 2u);
  EXPECT_EQ(rt.record(a).state, JobState::kRejected);
  EXPECT_EQ(rt.record(a).reject_reason,
            "requested_wavelengths below min_wavelengths");
  EXPECT_EQ(rt.record(b).state, JobState::kRejected);
  EXPECT_EQ(rt.record(b).reject_reason,
            "min_wavelengths exceeds the job's useful wavelength cap");
}

TEST(RuntimeConcurrency, OverlappingJobsShareSpansWithoutConflict) {
  // Two jobs whose arcs cross the same physical spans (overlapping node
  // ranges) run concurrently.  Every reservation goes through the shared
  // SpectrumMap, which aborts the process on a double-booking — so this
  // test completing at all is the zero-conflict guarantee.
  RuntimeConfig config = small_ring_config(8);
  CollectiveRuntime rt(config);
  rt.submit(group_job(0, 8, util::megabytes(8), {}, /*requested=*/4));
  rt.submit(group_job(4, 8, util::megabytes(8), {}, /*requested=*/4));
  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.peak_concurrent_jobs, 2u);
  EXPECT_GT(report.spectrum_reservations, 0u);
  EXPECT_EQ(report.oracle_failures, 0u);
  // Concurrent, not serialized: both admitted at t=0.
  EXPECT_EQ(rt.record(0).admitted, util::Seconds(0.0));
  EXPECT_EQ(rt.record(1).admitted, util::Seconds(0.0));
}

TEST(RuntimeConcurrency, ManyTenantsOneRing) {
  // The example scenario at test scale: 4 disjoint tenants, all concurrent.
  RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.default_request = 4;
  CollectiveRuntime rt(config);
  for (std::uint32_t tenant = 0; tenant < 4; ++tenant) {
    rt.submit(group_job(tenant * 8, 8, util::megabytes(2)));
  }
  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.peak_concurrent_jobs, 4u);
  EXPECT_EQ(report.oracle_failures, 0u);
}

JobSpec full_spectrum_blocker() {
  JobSpec blocker = group_job(0, 8, util::megabytes(1));
  blocker.min_wavelengths = 8;
  return blocker;
}

TEST(RuntimeBatching, FusedBatchPreservesCorrectnessAndAmortizesOverhead) {
  // Fusion happens under contention: the batcher merges QUEUED same-group
  // jobs, so a blocker holds the spectrum while the bucket burst arrives.
  RuntimeConfig config = small_ring_config(8);
  config.batcher.max_jobs_per_batch = 8;

  CollectiveRuntime rt(config);
  rt.submit(full_spectrum_blocker());
  for (std::uint32_t i = 0; i < 5; ++i) {
    rt.submit(
        group_job(2, 6, util::kilobytes(48), util::microseconds(1.0)));
  }
  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.executions, 2u);  // blocker + one fused batch
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.oracle_failures, 0u);
  for (JobId id = 1; id <= 5; ++id) {
    EXPECT_EQ(rt.record(id).batch_size, 5u);
    EXPECT_TRUE(rt.record(id).oracle_ok);
  }

  // The same burst without batching pays the per-step overheads five times
  // over instead of once.
  RuntimeConfig no_batch = config;
  no_batch.batcher.enabled = false;
  CollectiveRuntime serial(no_batch);
  serial.submit(full_spectrum_blocker());
  for (std::uint32_t i = 0; i < 5; ++i) {
    serial.submit(
        group_job(2, 6, util::kilobytes(48), util::microseconds(1.0)));
  }
  const RuntimeReport unfused = serial.run();
  EXPECT_EQ(unfused.completed, 6u);
  EXPECT_LT(report.makespan, unfused.makespan);
  EXPECT_GT(unfused.total_steps, report.total_steps);
}

std::vector<JobSpec> random_job_mix(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<JobSpec> jobs;
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto first = static_cast<std::uint32_t>(rng.next_below(8));
    const auto count = static_cast<std::uint32_t>(4 + rng.next_below(5));
    const util::Bytes payload =
        util::kilobytes(16 + rng.next_below(4096));
    const util::Seconds arrival =
        util::microseconds(static_cast<double>(rng.next_below(3000)));
    jobs.push_back(group_job(first, count, payload, arrival));
  }
  return jobs;
}

std::vector<JobId> completion_under(FairnessPolicy policy,
                                    std::uint64_t seed) {
  RuntimeConfig config = small_ring_config(8);
  config.policy = policy;
  CollectiveRuntime rt(config);
  for (const JobSpec& spec : random_job_mix(seed)) rt.submit(spec);
  rt.run();
  return rt.completion_order();
}

TEST(RuntimeFairness, CompletionOrderIsDeterministicPerPolicy) {
  for (const FairnessPolicy policy :
       {FairnessPolicy::kFifo, FairnessPolicy::kSmallestFirst,
        FairnessPolicy::kWeightedFair}) {
    const std::vector<JobId> once = completion_under(policy, 99);
    const std::vector<JobId> again = completion_under(policy, 99);
    EXPECT_EQ(once, again) << fairness_policy_name(policy);
    EXPECT_EQ(once.size(), 10u);
  }
}

TEST(RuntimeFairness, SmallestFirstOvertakesElephant) {
  // A blocker holds the whole spectrum while an elephant and then a mouse
  // arrive, so both are queued when it frees.  FIFO honors submission
  // order; smallest-first lets the mouse through first.
  for (const bool sjf : {false, true}) {
    RuntimeConfig config = small_ring_config(8);
    config.policy =
        sjf ? FairnessPolicy::kSmallestFirst : FairnessPolicy::kFifo;
    config.batcher.enabled = false;
    CollectiveRuntime rt(config);
    JobSpec blocker = group_job(0, 8, util::megabytes(1));
    blocker.min_wavelengths = 8;
    JobSpec elephant = group_job(0, 8, util::megabytes(64));
    elephant.min_wavelengths = 8;
    elephant.arrival = util::microseconds(1.0);
    JobSpec mouse = group_job(0, 8, util::kilobytes(16));
    mouse.min_wavelengths = 8;
    mouse.arrival = util::microseconds(2.0);
    rt.submit(blocker);
    rt.submit(elephant);
    rt.submit(mouse);
    rt.run();
    const std::vector<JobId> expected =
        sjf ? std::vector<JobId>{0, 2, 1} : std::vector<JobId>{0, 1, 2};
    EXPECT_EQ(rt.completion_order(), expected) << (sjf ? "sjf" : "fifo");
  }
}

TEST(RuntimeTrace, RecordsJobLifecycle) {
  RuntimeConfig config = small_ring_config(8);
  CollectiveRuntime rt(config);
  rt.trace().enable();
  rt.submit(group_job(0, 4, util::kilobytes(64)));
  rt.run();
  std::uint32_t admits = 0;
  std::uint32_t completes = 0;
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind == sim::TraceKind::kJobAdmit) ++admits;
    if (e.kind == sim::TraceKind::kJobComplete) ++completes;
    if (e.kind == sim::TraceKind::kJobAdmit ||
        e.kind == sim::TraceKind::kJobComplete) {
      // Band identity is recorded the same way on every job event: the
      // band BASE in b, the width in the detail.
      const JobRecord& r = rt.record(static_cast<JobId>(e.a));
      EXPECT_EQ(e.b, static_cast<std::int64_t>(r.band.base));
      EXPECT_EQ(e.detail, "width=" + std::to_string(r.band.width));
    }
  }
  EXPECT_EQ(admits, 1u);
  EXPECT_EQ(completes, 1u);
}

}  // namespace
}  // namespace wrht::runtime
