// Faults as renegotiation events: the seeded injector's determinism and
// domain independence, every failure-domain recovery path through the
// runtime (transceiver evict / node-loss kill / wavelength shrink / ToR
// migration / repair), and the chaos-schedule trace round-trip.  Each
// scenario completing with zero oracle failures is itself the correctness
// statement — every post-fault remainder is re-proven by the composite
// prefix+remainder oracle inside the runtime.
#include "runtime/faults.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "runtime/runtime.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace wrht {
namespace {

using runtime::FaultDomain;
using runtime::FaultInjector;
using runtime::FaultInjectorConfig;
using runtime::FaultSpec;
using runtime::ScriptedFaultSource;

std::vector<FaultSpec> drain(runtime::FaultSource& source) {
  std::vector<FaultSpec> faults;
  while (std::optional<FaultSpec> fault = source.next()) {
    faults.push_back(*fault);
  }
  return faults;
}

bool same_fault(const FaultSpec& a, const FaultSpec& b) {
  return a.domain == b.domain && a.subject == b.subject && a.at == b.at &&
         a.repair_after == b.repair_after;
}

FaultInjectorConfig chaos_config() {
  FaultInjectorConfig fc;
  fc.seed = 42;
  fc.horizon = util::Seconds(2.0);
  fc.transceiver_mtbf = util::Seconds(0.2);
  fc.node_mtbf = util::Seconds(0.25);
  fc.tor_mtbf = util::Seconds(0.5);
  fc.wavelength_mtbf = util::Seconds(0.3);
  fc.mttr = util::Seconds(0.02);
  fc.ring_size = 16;
  fc.num_wavelengths = 8;
  fc.num_tors = 2;
  return fc;
}

TEST(FaultInjector, DeterministicOrderedAndInRange) {
  FaultInjector a(chaos_config());
  FaultInjector b(chaos_config());
  const std::vector<FaultSpec> first = drain(a);
  const std::vector<FaultSpec> second = drain(b);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  util::Seconds last{0.0};
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(same_fault(first[i], second[i])) << "diverges at fault " << i;
    EXPECT_GE(first[i].at, last);
    last = first[i].at;
    EXPECT_LT(first[i].at, util::Seconds(2.0));
    EXPECT_GT(first[i].repair_after, util::Seconds(0.0));  // mttr > 0
    switch (first[i].domain) {
      case FaultDomain::kTransceiver:
      case FaultDomain::kNode:
        EXPECT_LT(first[i].subject, 16u);
        break;
      case FaultDomain::kTor:
        EXPECT_LT(first[i].subject, 2u);
        break;
      case FaultDomain::kWavelength:
        EXPECT_LT(first[i].subject, 8u);
        break;
    }
  }
}

TEST(FaultInjector, DomainStreamsAreIndependent) {
  // A domain's fault stream must be byte-identical for a given seed no
  // matter which OTHER domains are enabled — each domain draws from its own
  // derived-seed Rng, the same replay discipline the workload keeps.
  FaultInjectorConfig node_only = chaos_config();
  node_only.transceiver_mtbf = util::Seconds(0.0);
  node_only.tor_mtbf = util::Seconds(0.0);
  node_only.wavelength_mtbf = util::Seconds(0.0);
  FaultInjector isolated(node_only);
  FaultInjector merged(chaos_config());

  std::vector<FaultSpec> node_faults;
  for (const FaultSpec& fault : drain(merged)) {
    if (fault.domain == FaultDomain::kNode) node_faults.push_back(fault);
  }
  const std::vector<FaultSpec> alone = drain(isolated);
  ASSERT_EQ(alone.size(), node_faults.size());
  for (std::size_t i = 0; i < alone.size(); ++i) {
    EXPECT_TRUE(same_fault(alone[i], node_faults[i])) << "fault " << i;
  }
}

TEST(FaultInjector, ZeroHorizonAndScriptedReplay) {
  FaultInjectorConfig off = chaos_config();
  off.horizon = util::Seconds(0.0);
  FaultInjector silent(off);
  EXPECT_FALSE(silent.next());

  const std::vector<FaultSpec> script = {
      {FaultDomain::kNode, 3, util::Seconds(0.5), util::Seconds(0.1)},
      {FaultDomain::kWavelength, 1, util::Seconds(0.75), util::Seconds(0.0)},
  };
  ScriptedFaultSource replay(script);
  const std::vector<FaultSpec> out = drain(replay);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(same_fault(out[0], script[0]));
  EXPECT_TRUE(same_fault(out[1], script[1]));
}

runtime::JobSpec span_job(std::uint32_t first, std::uint32_t count,
                          util::Bytes payload, util::Seconds arrival = {}) {
  runtime::JobSpec spec;
  for (std::uint32_t i = 0; i < count; ++i) {
    spec.participants.push_back(first + i);
  }
  spec.payload = payload;
  spec.arrival = arrival;
  return spec;
}

TEST(FaultRecovery, TransceiverLossEvictsOrRestartsAndStillCompletes) {
  // One optical tenant loses a participant's optics mid-run.  The runtime
  // must carry the job to completion anyway — survivor rebuild on the same
  // band when the failed node's contribution is already merged, a restart
  // among the survivors otherwise — and the composite oracle re-proves the
  // executed prefix + post-fault remainder.
  runtime::RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.enabled = false;
  ScriptedFaultSource faults({
      {FaultDomain::kTransceiver, 5, util::microseconds(5.0),
       util::Seconds(0.0)},
  });
  config.faults = &faults;

  runtime::CollectiveRuntime rt(config);
  const runtime::JobId id = rt.submit(span_job(0, 12, util::megabytes(32)));
  const runtime::RuntimeReport report = rt.run();

  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.oracle_failures, 0u);
  EXPECT_EQ(report.faults.injected, 1u);
  EXPECT_EQ(report.faults.transceiver_faults, 1u);
  EXPECT_GE(report.faults.disrupted_executions, 1u);
  EXPECT_GE(report.faults.evictions + report.faults.restarts, 1u);
  EXPECT_GE(report.faults.recoveries, 1u);
  EXPECT_GT(report.faults.mttr(), util::Seconds(0.0));
  EXPECT_EQ(rt.record(id).state, runtime::JobState::kDone);
  EXPECT_TRUE(rt.record(id).oracle_ok);
  // Goodput only drops when the disruption forced a prefix discard.
  EXPECT_LE(report.goodput(), 1.0);
  EXPECT_GT(report.goodput(), 0.0);
}

TEST(FaultRecovery, QuorumLossKillsTheJobAndClosesTheLedger) {
  // Five of six participants die permanently during the first step (the
  // collective has a later boundary left, so the loss is detected): fewer
  // than 2 survivors means no collective to finish.  The job must end
  // kFailed — not hang, not complete — and the ledger must close through
  // killed_jobs.
  runtime::RuntimeConfig config;
  config.ring_size = 8;
  config.optical.wdm.num_wavelengths = 4;
  config.batcher.enabled = false;
  std::vector<FaultSpec> deaths;
  for (std::uint32_t node = 0; node < 5; ++node) {
    deaths.push_back({FaultDomain::kNode, node, util::milliseconds(1.0),
                      util::Seconds(0.0)});
  }
  ScriptedFaultSource faults(deaths);
  config.faults = &faults;

  runtime::CollectiveRuntime rt(config);
  rt.trace().enable();
  const runtime::JobId id = rt.submit(span_job(0, 6, util::megabytes(16)));
  const runtime::RuntimeReport report = rt.run();

  EXPECT_EQ(report.faults.node_faults, 5u);
  EXPECT_EQ(report.faults.killed_jobs, 1u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(rt.record(id).state, runtime::JobState::kFailed);
  // completed + rejected + killed == submitted: nothing leaks.
  EXPECT_EQ(report.completed + report.rejected + report.faults.killed_jobs,
            report.submitted);

  bool saw_kill = false;
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind == sim::TraceKind::kJobKilled &&
        e.a == static_cast<std::int64_t>(id)) {
      saw_kill = true;
    }
  }
  EXPECT_TRUE(saw_kill);
}

TEST(FaultRecovery, WavelengthDegradeShrinksToTheHealthyPrefix) {
  // A wavelength inside the tenant's band degrades permanently.  At the next
  // boundary the band shrinks to the healthy prefix (a kShrink through the
  // same renegotiation entry point elastic resize uses) and the job finishes
  // on the narrower band.
  runtime::RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.enabled = false;
  ScriptedFaultSource faults({
      {FaultDomain::kWavelength, 6, util::milliseconds(1.0),
       util::Seconds(0.0)},
  });
  config.faults = &faults;

  runtime::CollectiveRuntime rt(config);
  runtime::JobSpec spec = span_job(0, 12, util::megabytes(64));
  spec.requested_wavelengths = 8;
  spec.min_wavelengths = 1;
  const runtime::JobId id = rt.submit(spec);
  const runtime::RuntimeReport report = rt.run();

  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.oracle_failures, 0u);
  EXPECT_EQ(report.faults.wavelength_faults, 1u);
  EXPECT_GE(report.resizes, 1u);
  EXPECT_EQ(rt.record(id).state, runtime::JobState::kDone);
  EXPECT_LE(rt.record(id).band.width, 6u);
  EXPECT_GE(rt.record(id).resizes, 1u);
}

TEST(FaultRecovery, TorLossMigratesTheTenantToTheOpticalRing) {
  // An electrically-placed (but unpinned) tenant loses its whole ToR.  With
  // free spectrum available the runtime migrates it cross-substrate: a
  // kRestart renegotiation against the OPTICAL substrate at the next step
  // boundary.  The record's substrate flips and the trace carries the
  // migration event.
  runtime::RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.enabled = false;
  config.placement = runtime::HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = runtime::ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = 8;
  ScriptedFaultSource faults({
      {FaultDomain::kTor, 0, util::milliseconds(1.0), util::Seconds(0.0)},
  });
  config.faults = &faults;

  runtime::CollectiveRuntime rt(config);
  rt.trace().enable();
  // A short optical hog holds the whole spectrum at t=0, so the second
  // arrival overflows to the electrical fabric; by the time the ToR dies
  // the hog is long done and the ring has room for the migrant.
  runtime::JobSpec hog = span_job(0, 12, util::kilobytes(64));
  hog.requested_wavelengths = 8;
  hog.min_wavelengths = 8;
  hog.pin = runtime::SubstratePin::kOpticalOnly;
  rt.submit(hog);
  const runtime::JobId migrant =
      rt.submit(span_job(0, 6, util::megabytes(64), util::microseconds(1.0)));
  const runtime::RuntimeReport report = rt.run();

  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.oracle_failures, 0u);
  EXPECT_EQ(report.faults.tor_faults, 1u);
  EXPECT_GE(report.faults.migrations, 1u);
  EXPECT_EQ(rt.record(migrant).substrate, runtime::SubstrateKind::kOptical);
  EXPECT_EQ(rt.record(migrant).state, runtime::JobState::kDone);

  bool saw_migrate = false;
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind == sim::TraceKind::kJobMigrate &&
        e.a == static_cast<std::int64_t>(migrant)) {
      saw_migrate = true;
    }
  }
  EXPECT_TRUE(saw_migrate);
}

TEST(FaultRecovery, RepairsRestoreServiceAndAreCounted) {
  // Injection and repair bracket a borrow of the unit: both sides must land
  // in the stats even when the faults never touch a running execution.
  runtime::RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.enabled = false;
  ScriptedFaultSource faults({
      {FaultDomain::kWavelength, 2, util::microseconds(1.0),
       util::microseconds(3.0)},
      {FaultDomain::kTransceiver, 9, util::microseconds(2.0),
       util::microseconds(5.0)},
  });
  config.faults = &faults;

  runtime::CollectiveRuntime rt(config);
  const runtime::RuntimeReport report = rt.run();
  EXPECT_EQ(report.faults.injected, 2u);
  EXPECT_EQ(report.faults.repairs, 2u);
  EXPECT_EQ(report.faults.disrupted_executions, 0u);
  EXPECT_EQ(report.goodput(), 1.0);
  EXPECT_EQ(report.faults.mttr(), util::Seconds(0.0));
}

TEST(FaultTrace, RoundTripsByteStableAndReplaysThroughTheReader) {
  // Record-then-replay for chaos schedules: the injector's stream written
  // twice is byte-identical, the reader parses it back field-for-field, and
  // re-recording the parsed stream reproduces the original bytes (so a
  // recorded chaos run replays exactly, the same property job traces have).
  const FaultInjectorConfig fc = chaos_config();
  std::ostringstream first_out;
  std::ostringstream second_out;
  FaultInjector first(fc);
  FaultInjector second(fc);
  const std::uint64_t written =
      workload::record_fault_trace(first, first_out);
  workload::record_fault_trace(second, second_out);
  ASSERT_GT(written, 0u);
  EXPECT_EQ(first_out.str(), second_out.str());

  std::istringstream in(first_out.str());
  workload::FaultTraceReader reader(in);
  const std::vector<FaultSpec> parsed = drain(reader);
  EXPECT_EQ(reader.read(), written);
  FaultInjector reference(fc);
  const std::vector<FaultSpec> expected = drain(reference);
  ASSERT_EQ(parsed.size(), expected.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_TRUE(same_fault(parsed[i], expected[i])) << "fault " << i;
  }

  ScriptedFaultSource replay(parsed);
  std::ostringstream third_out;
  workload::record_fault_trace(replay, third_out);
  EXPECT_EQ(third_out.str(), first_out.str());
}

TEST(WorkloadFaults, ChaosConfigNeverPerturbsTheJobStream) {
  // The whole point of the derived-seed injector: switching chaos on (or
  // retuning it) must leave the emitted job trace byte-identical, because
  // the fault process never draws from the job stream's Rng.
  workload::WorkloadConfig calm;
  calm.seed = 7;
  calm.num_jobs = 200;
  workload::WorkloadConfig chaotic = calm;
  chaotic.fault_horizon = util::Seconds(5.0);
  chaotic.node_mtbf = util::Seconds(0.1);
  chaotic.wavelength_mtbf = util::Seconds(0.2);
  chaotic.fault_mttr = util::Seconds(0.01);
  chaotic.fault_num_wavelengths = 8;
  chaotic.fault_num_tors = 2;

  std::ostringstream calm_out;
  std::ostringstream chaotic_out;
  workload::WorkloadGenerator calm_gen(calm);
  workload::WorkloadGenerator chaotic_gen(chaotic);
  workload::record_trace(calm_gen, calm_out, workload::TraceFormat::kJsonl);
  workload::record_trace(chaotic_gen, chaotic_out,
                         workload::TraceFormat::kJsonl);
  EXPECT_EQ(calm_out.str(), chaotic_out.str());

  // And the minted injector is itself deterministic per workload seed.
  workload::WorkloadGenerator again(chaotic);
  FaultInjector a = chaotic_gen.make_fault_injector();
  FaultInjector b = again.make_fault_injector();
  const std::vector<FaultSpec> one = drain(a);
  const std::vector<FaultSpec> two = drain(b);
  ASSERT_FALSE(one.empty());
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(same_fault(one[i], two[i])) << "fault " << i;
  }
  // The chaos seed is a derivation, not the workload seed itself.
  EXPECT_NE(chaotic_gen.fault_injector_config().seed, chaotic.seed);
}

}  // namespace
}  // namespace wrht
