// WRHT_CHECK / WRHT_REQUIRE must fire in every build type.  This TU is
// compiled with NDEBUG forced on (tests/CMakeLists.txt), so these death
// tests passing is proof the invariants survive Release builds — the exact
// configuration where a plain assert() would have been compiled out.
#include "util/check.hpp"

#include <gtest/gtest.h>

#ifndef NDEBUG
#error "test_util_check must be compiled with NDEBUG (see tests/CMakeLists.txt)"
#endif

namespace {

TEST(CheckDeathTest, CheckFiresWithNdebugDefined) {
  EXPECT_DEATH(WRHT_CHECK(1 + 1 == 3, "arithmetic broke"),
               "WRHT_CHECK failed at .*test_util_check\\.cpp:[0-9]+");
}

TEST(CheckDeathTest, RequireFiresWithNdebugDefined) {
  EXPECT_DEATH(WRHT_REQUIRE(false, "unconditional"),
               "WRHT_REQUIRE failed at .*test_util_check\\.cpp:[0-9]+");
}

TEST(CheckDeathTest, MessageStreamsValuesIntoTheReport) {
  const int got = 42;
  EXPECT_DEATH(WRHT_CHECK(got < 0, "expected negative, got " << got),
               "expected negative, got 42");
}

TEST(CheckDeathTest, ConditionTextAppearsInTheReport) {
  EXPECT_DEATH(WRHT_REQUIRE(2 < 1, "ordering"), "\\(2 < 1\\)");
}

TEST(CheckTest, PassingChecksAreSilentAndSideEffectFree) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
  WRHT_CHECK(count(), "never printed");
  WRHT_REQUIRE(count(), "never printed");
  EXPECT_EQ(evaluations, 2);
}

}  // namespace
