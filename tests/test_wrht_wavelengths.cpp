// Wavelength-level properties of Wrht schedules: the paper's floor(m/2) and
// ceil(m*^2/8) bounds, physical conflict-freedom on the ring, and spatial
// reuse across groups.
#include <gtest/gtest.h>

#include <set>

#include "optical/conflict.hpp"
#include "wrht/builder.hpp"

namespace wrht::core {
namespace {

WrhtParams params_with(std::uint32_t w) {
  WrhtParams params;
  params.num_wavelengths = w;
  return params;
}

// Re-check with the raw spectrum map that no two transfers in any step of
// the schedule share (direction, span, wavelength).
void expect_physically_conflict_free(const WrhtBuild& build) {
  const topo::RingTopology ring(build.annotated.schedule.num_nodes());
  for (std::size_t s = 0; s < build.annotated.paths.size(); ++s) {
    optical::SpectrumMap spectrum(ring,
                                  build.annotated.wavelengths_required);
    for (const PathAssignment& path : build.annotated.paths[s]) {
      for (const optical::WavelengthId lambda : path.lambdas) {
        ASSERT_TRUE(spectrum.is_free(path.arc, lambda))
            << "conflict in step " << s;
        spectrum.reserve(path.arc, lambda);
      }
    }
  }
}

TEST(WrhtWavelengths, ConflictFreeAcrossConfigurations) {
  for (const std::uint32_t n : {8u, 37u, 64u, 128u, 200u}) {
    for (const std::uint32_t w : {1u, 3u, 8u, 64u}) {
      expect_physically_conflict_free(build_wrht(n, params_with(w)));
    }
  }
}

TEST(WrhtWavelengths, TreeStepDemandIsFloorHalf) {
  // With merge disabled, every step is a tree step; its wavelength usage
  // must be exactly max over groups of floor(group/2) — and never exceed
  // floor(m/2).
  WrhtParams params = params_with(16);
  params.allow_all_to_all_merge = false;
  for (const std::uint32_t n : {33u, 64u, 128u, 256u}) {
    const WrhtBuild build = build_wrht(n, params);
    const std::uint32_t m = build.group_size_m;
    for (std::size_t s = 0; s < build.reduce_levels.size(); ++s) {
      std::uint32_t expected = 0;
      for (const Group& group : build.reduce_levels[s].groups) {
        expected = std::max(expected, group_wavelength_demand(group));
      }
      EXPECT_EQ(build.annotated.lambda_per_step[s], expected)
          << "n=" << n << " step=" << s;
      EXPECT_LE(build.annotated.lambda_per_step[s], m / 2);
    }
  }
}

TEST(WrhtWavelengths, MergeStepNearPaperBound) {
  // The paper allocates ceil(m*^2/8) wavelengths to the all-to-all merge
  // (the exact Liang & Shen construction).  Our heuristic routing+coloring
  // is measured within 10%+1 of that bound; representatives are not exactly
  // evenly spaced (the last group is smaller), which accounts for the +1.
  for (const std::uint32_t n : {64u, 256u, 512u, 1024u}) {
    const WrhtBuild build = build_wrht(n, params_with(64));
    if (!build.merged_with_all_to_all) continue;
    const std::size_t merge_step = build.reduce_levels.size();
    const std::uint32_t bound =
        all_to_all_wavelength_bound(build.final_rep_count_mstar);
    EXPECT_LE(build.annotated.lambda_per_step[merge_step],
              bound + bound / 10 + 1)
        << "n=" << n << " m*=" << build.final_rep_count_mstar;
  }
}

TEST(WrhtWavelengths, GroupsReuseWavelengthsSpatially) {
  // 64 nodes, m=9 forced: 8 groups in the first level.  Total transfers in
  // step 0 is 64-8 = 56, but wavelength usage must stay at floor(9/2) = 4 —
  // an 14x spatial reuse, the "wavelength reused" in the scheme's name.
  WrhtParams params = params_with(8);
  params.forced_group_size = 9;
  const WrhtBuild build = build_wrht(64, params);
  EXPECT_EQ(build.annotated.schedule.steps()[0].transfers.size(), 56u);
  EXPECT_EQ(build.annotated.lambda_per_step[0], 4u);
}

TEST(WrhtWavelengths, BothWaveguidesUsed) {
  // The two sides of a group ride opposite directions.
  const WrhtBuild build = build_wrht(16, params_with(8));
  std::set<topo::Direction> directions;
  for (const auto& step : build.annotated.paths) {
    for (const PathAssignment& path : step) {
      directions.insert(path.arc.direction);
    }
  }
  EXPECT_EQ(directions.size(), 2u);
}

TEST(WrhtWavelengths, LoadLowerBoundRespected) {
  // Wavelengths used in a step can never be below the max link load of that
  // step's arcs (sanity of the accounting, not just the assignment).
  const WrhtBuild build = build_wrht(100, params_with(16));
  const topo::RingTopology ring(100);
  for (std::size_t s = 0; s < build.annotated.paths.size(); ++s) {
    std::vector<topo::Arc> arcs;
    for (const PathAssignment& path : build.annotated.paths[s]) {
      arcs.push_back(path.arc);
    }
    EXPECT_GE(build.annotated.lambda_per_step[s],
              optical::max_link_load(ring, arcs));
  }
}

TEST(WrhtWavelengths, BestFitAlsoConflictFree) {
  WrhtParams params = params_with(16);
  params.fit_policy = optical::FitPolicy::kBestFit;
  expect_physically_conflict_free(build_wrht(128, params));
}

TEST(WrhtWavelengths, IntraGroupArcsStayInsideGroupSlice) {
  // No member->representative path may leave the group's ring slice; with
  // ascending consecutive groups this means every arc's spans lie between
  // the group's first and last member.
  const WrhtBuild build = build_wrht(64, params_with(4));
  const topo::RingTopology ring(64);
  const std::size_t tree_levels = build.reduce_levels.size();
  for (std::size_t level = 0; level < tree_levels; ++level) {
    const auto& groups = build.reduce_levels[level].groups;
    const auto& transfers =
        build.annotated.schedule.steps()[level].transfers;
    const auto& paths = build.annotated.paths[level];
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      // Find the transfer's group (its dst is the representative).
      const Group* owner = nullptr;
      for (const Group& group : groups) {
        if (group.rep() == transfers[i].dst) owner = &group;
      }
      ASSERT_NE(owner, nullptr);
      const topo::NodeId lo = owner->members.front();
      const topo::NodeId hi = owner->members.back();
      for (const topo::SpanId span : ring.spans(paths[i].arc)) {
        EXPECT_GE(span, lo);
        EXPECT_LT(span, hi);
      }
    }
  }
}

}  // namespace
}  // namespace wrht::core
