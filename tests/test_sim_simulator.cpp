#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wrht::sim {
namespace {

using wrht::util::Seconds;

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator simulator;
  std::vector<double> observed;
  simulator.schedule_in(Seconds(2.0),
                        [&] { observed.push_back(simulator.now().value()); });
  simulator.schedule_in(Seconds(1.0),
                        [&] { observed.push_back(simulator.now().value()); });
  const Seconds end = simulator.run();
  EXPECT_EQ(observed, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(end.value(), 2.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  // A chain of 10 events, each scheduling the next 0.5s later.
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) simulator.schedule_in(Seconds(0.5), chain);
  };
  simulator.schedule_in(Seconds(0.5), chain);
  simulator.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(simulator.now().value(), 5.0);
  EXPECT_EQ(simulator.events_processed(), 10u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator simulator;
  double when = -1.0;
  simulator.schedule_at(Seconds(7.5), [&] { when = simulator.now().value(); });
  simulator.run();
  EXPECT_DOUBLE_EQ(when, 7.5);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_in(Seconds(1.0), [&] { ++fired; });
  simulator.schedule_in(Seconds(5.0), [&] { ++fired; });
  simulator.run_until(Seconds(3.0));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(simulator.idle());
  simulator.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(simulator.idle());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  int fired = 0;
  const auto handle = simulator.schedule_in(Seconds(1.0), [&] { ++fired; });
  simulator.schedule_in(Seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(simulator.cancel(handle));
  simulator.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_in(Seconds(0.0), [&] {
    order.push_back(1);
    simulator.schedule_in(Seconds(0.0), [&] { order.push_back(2); });
  });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(simulator.now().value(), 0.0);
}

TEST(Simulator, DeterministicTieBreaking) {
  // Two events at identical times fire in scheduling order.
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(Seconds(1.0), [&] { order.push_back(1); });
  simulator.schedule_at(Seconds(1.0), [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace wrht::sim
