// Fixture: waiver mechanics.  Expected findings, in order:
//   - one printf-output, waived by the well-formed comment above it
//   - one bad-waiver for the reason-less waiver
//   - one bad-waiver for the waiver naming an unknown rule
//   - one stale-waiver for the waiver that suppresses nothing
// Not compiled into the build.
#include <cstdio>

void emit() {
  // simlint-allow(printf-output): fixture exercising a valid waiver
  std::printf("waived\n");
}

// simlint-allow(printf-output)
void missing_reason() {}

// simlint-allow(no-such-rule): the rule name is not one simlint knows
void unknown_rule() {}

// simlint-allow(wallclock): nothing below uses a clock, so this is stale
void stale() {}
