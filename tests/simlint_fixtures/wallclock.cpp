// Fixture: the wallclock rule must fire exactly once, on the marked line.
// Not compiled into the build; linted by test_tools_simlint.
#include <chrono>

double elapsed_seconds() {
  const auto t0 = std::chrono::steady_clock::now();  // FINDING: wallclock
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
