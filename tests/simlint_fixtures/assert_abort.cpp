// Fixture: the assert-abort rule must fire exactly once (logical path is
// under src/).  static_assert is compile-time and must not match.
// Not compiled into the build.
#include <cassert>

static_assert(sizeof(int) >= 4, "compile-time checks are fine");

void check_positive(int x) {
  assert(x > 0);  // FINDING: assert-abort
}
