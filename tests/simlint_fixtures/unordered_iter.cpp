// Fixture: the unordered-iter rule must fire exactly once.  This TU
// (logically under src/) includes sim/trace.hpp, so it is in the ordered
// output closure; the include line itself is preprocessor and exempt, the
// use below is the finding.  Not compiled into the build.
#include <unordered_map>

#include "sim/trace.hpp"

int lookup(int key) {
  std::unordered_map<int, int> cache;  // FINDING: unordered-iter
  return cache.count(key) ? cache[key] : -1;
}
