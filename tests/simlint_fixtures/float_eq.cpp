// Fixture: the float-eq rule must fire exactly once, on the marked line.
// The epsilon comparison below it must not match: only ==/!= against a
// floating literal is banned.  Not compiled into the build.
bool is_unit(double x) {
  return x == 1.0;  // FINDING: float-eq
}

bool nearly_unit(double x) {
  const double diff = x - 1.0;
  return diff < 1e-9 && diff > -1e-9;
}
