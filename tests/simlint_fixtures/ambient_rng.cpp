// Fixture: the ambient-rng rule must fire exactly once, on the marked line.
// Not compiled into the build; linted by test_tools_simlint.
#include <random>

unsigned roll() {
  std::mt19937 gen(12345);  // FINDING: ambient-rng
  return static_cast<unsigned>(gen());
}
