// Fixture: zero findings.  Every line below is a deliberate near-miss for
// some rule: rule tokens inside comments and strings are scrubbed,
// timeout(/my_clock( survive on token boundaries, static_assert is not
// assert, snprintf is not output, and 1e-9 without ==/!= is not a
// float-equality.  Not compiled into the build.
#include <cstdio>
#include <string>

// a comment mentioning std::rand(), steady_clock and x == 1.0 is harmless
int timeout(int ms) { return ms; }
int my_clock(int ticks) { return ticks; }
static_assert(true, "compile-time checks are fine");
const char* kMessage = "strings saying rand() or 3.0 == noon are scrubbed";

bool near_zero(double x) { return x < 1e-9 && x > -1e-9; }

std::string format_rate(double rate) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", rate);
  return buffer;
}
