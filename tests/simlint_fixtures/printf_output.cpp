// Fixture: the printf-output rule must fire exactly once (logical path is
// under src/).  snprintf only formats into a buffer — it emits nothing — so
// it must not match.  Not compiled into the build.
#include <cstdio>

void report(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%f", v);
  std::printf("%s\n", buffer);  // FINDING: printf-output
}
