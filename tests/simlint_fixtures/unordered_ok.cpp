// Fixture: zero findings.  Uses an unordered container but never includes a
// trace/report header, so the unordered-iter rule must stay quiet — the rule
// targets TUs whose iteration order can leak into deterministic output, not
// unordered containers in general.  Not compiled into the build.
#include <unordered_map>

int lookup(int key) {
  std::unordered_map<int, int> cache;
  return cache.count(key) ? cache[key] : -1;
}
