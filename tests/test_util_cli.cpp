#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace wrht::util {
namespace {

CliParser make_parser() {
  CliParser parser("test program");
  parser.add_flag("nodes", "128", "node count");
  parser.add_flag("rate", "25.0", "bandwidth in Gb/s");
  parser.add_flag("verbose", "false", "enable verbose output");
  parser.add_flag("model", "alexnet", "model name");
  return parser;
}

TEST(Cli, DefaultsApply) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_int("nodes"), 128);
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 25.0);
  EXPECT_FALSE(parser.get_bool("verbose"));
  EXPECT_EQ(parser.get_string("model"), "alexnet");
}

TEST(Cli, EqualsForm) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--nodes=512", "--rate=12.5"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("nodes"), 512);
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 12.5);
}

TEST(Cli, SpaceForm) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--model", "vgg16"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_string("model"), "vgg16");
}

TEST(Cli, BareBooleanFlag) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(Cli, BooleanFollowedByFlag) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--verbose", "--nodes=4"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_TRUE(parser.get_bool("verbose"));
  EXPECT_EQ(parser.get_int("nodes"), 4);
}

TEST(Cli, UnknownFlagRejected) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(Cli, PositionalArguments) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "input.csv", "--nodes=8", "out.csv"};
  ASSERT_TRUE(parser.parse(4, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.csv");
  EXPECT_EQ(parser.positional()[1], "out.csv");
}

TEST(Cli, UsageMentionsFlagsAndDefaults) {
  CliParser parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("default: 128"), std::string::npos);
  EXPECT_NE(usage.find("node count"), std::string::npos);
}

}  // namespace
}  // namespace wrht::util
