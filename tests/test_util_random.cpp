#include "util/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace wrht::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  // Mean of U[0,1) over 10k samples should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RoughUniformityOfBuckets) {
  Rng rng(19);
  std::vector<int> buckets(10, 0);
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) {
    ++buckets[rng.next_below(10)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, samples / 10, samples / 100);
  }
}

}  // namespace
}  // namespace wrht::util
