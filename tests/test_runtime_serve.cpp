// The streaming frontend's two equivalence claims, proven field by field:
//
//   1. serve() (specs pulled one at a time off a JobSource, arrival events
//      chained) produces the SAME RuntimeReport as run() (every spec
//      submitted up front) on the same workload.
//   2. flat_hot_path = true (recycled event queue, interval arbiter,
//      batched releases, head-offset admission queue) produces the SAME
//      report as the naive event loop, on optical-only AND hybrid
//      electrical-overflow configurations — with the shared fabric's
//      whole-horizon replay audit re-proving every step.
//
// Doubles are compared with EXPECT_EQ on purpose: bit-identity is the
// claim, not approximate agreement.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "runtime/runtime.hpp"
#include "workload/generator.hpp"

namespace wrht::runtime {
namespace {

workload::WorkloadConfig small_workload(std::uint64_t jobs, double rate) {
  workload::WorkloadConfig w;
  w.seed = 5;
  w.num_jobs = jobs;
  w.ring_size = 32;
  w.mean_rate = rate;
  w.payload_median = util::kilobytes(128);
  w.max_payload = util::megabytes(4);
  w.max_participants = 12;
  return w;
}

RuntimeConfig base_config(bool flat) {
  RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 32;
  config.policy = FairnessPolicy::kFifo;
  config.default_request = 4;
  config.batcher.enabled = false;
  config.flat_hot_path = flat;
  return config;
}

RuntimeReport run_materialized(const workload::WorkloadConfig& w,
                               const RuntimeConfig& config) {
  workload::WorkloadGenerator gen(w);
  CollectiveRuntime rt(config);
  while (std::optional<JobSpec> spec = gen.next()) {
    rt.submit(std::move(*spec));
  }
  return rt.run();
}

RuntimeReport run_streamed(const workload::WorkloadConfig& w,
                           const RuntimeConfig& config) {
  workload::WorkloadGenerator gen(w);
  CollectiveRuntime rt(config);
  return rt.serve(gen);
}

void expect_reports_identical(const RuntimeReport& a, const RuntimeReport& b) {
  EXPECT_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.total_retunes, b.total_retunes);
  EXPECT_EQ(a.spectrum_reservations, b.spectrum_reservations);
  EXPECT_EQ(a.peak_concurrent_jobs, b.peak_concurrent_jobs);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.resumes, b.resumes);
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.step_retimes, b.step_retimes);
  EXPECT_EQ(a.electrical_link_peak, b.electrical_link_peak);
  EXPECT_EQ(a.total_turnaround.value(), b.total_turnaround.value());
  EXPECT_EQ(a.optical.jobs, b.optical.jobs);
  EXPECT_EQ(a.optical.executions, b.optical.executions);
  EXPECT_EQ(a.optical.steps, b.optical.steps);
  EXPECT_EQ(a.optical.makespan.value(), b.optical.makespan.value());
  EXPECT_EQ(a.electrical.jobs, b.electrical.jobs);
  EXPECT_EQ(a.electrical.steps, b.electrical.steps);
  EXPECT_EQ(a.electrical.makespan.value(), b.electrical.makespan.value());
  EXPECT_EQ(a.electrical.busy_time.value(), b.electrical.busy_time.value());
  EXPECT_EQ(a.slo.jobs, b.slo.jobs);
  EXPECT_EQ(a.slo.p50_turnaround.value(), b.slo.p50_turnaround.value());
  EXPECT_EQ(a.slo.p99_turnaround.value(), b.slo.p99_turnaround.value());
  EXPECT_EQ(a.slo.p999_turnaround.value(), b.slo.p999_turnaround.value());
  EXPECT_EQ(a.slo.p50_slowdown, b.slo.p50_slowdown);
  EXPECT_EQ(a.slo.p99_slowdown, b.slo.p99_slowdown);
  EXPECT_EQ(a.slo.max_wait.value(), b.slo.max_wait.value());
  EXPECT_EQ(a.slo.deadline_jobs, b.slo.deadline_jobs);
  EXPECT_EQ(a.slo.deadline_hits, b.slo.deadline_hits);
}

TEST(RuntimeServe, StreamingServeMatchesMaterializedRun) {
  const workload::WorkloadConfig w = small_workload(800, 2000.0);
  const RuntimeConfig config = base_config(/*flat=*/true);
  expect_reports_identical(run_materialized(w, config),
                           run_streamed(w, config));
}

TEST(RuntimeServe, FlatAndNaiveReportsBitIdenticalOptical) {
  const workload::WorkloadConfig w = small_workload(1000, 3000.0);
  const RuntimeReport naive =
      run_materialized(w, base_config(/*flat=*/false));
  const RuntimeReport flat = run_streamed(w, base_config(/*flat=*/true));
  expect_reports_identical(naive, flat);
  EXPECT_EQ(flat.completed, 1000u);
}

TEST(RuntimeServe, FlatAndNaiveBitIdenticalHybridElectricalOverflow) {
  // Overflow load spills onto the shared two-level electrical fabric, so
  // this run exercises the windowed flow-network clone, batched session
  // retirement, AND the whole-horizon replay audit in both modes.
  workload::WorkloadConfig w = small_workload(600, 4000.0);
  RuntimeConfig naive_cfg = base_config(/*flat=*/false);
  naive_cfg.placement = HybridPlacementPolicy::kElectricalOverflow;
  naive_cfg.electrical.fabric = ElectricalFabric::kTwoLevelShared;
  naive_cfg.electrical.oversubscription = 4.0;
  RuntimeConfig flat_cfg = naive_cfg;
  flat_cfg.flat_hot_path = true;

  const RuntimeReport naive = run_materialized(w, naive_cfg);
  const RuntimeReport flat = run_streamed(w, flat_cfg);
  expect_reports_identical(naive, flat);
  EXPECT_GT(flat.electrical.jobs, 0u);
  // The audit actually ran: the shared fabric re-proved its steps.
  EXPECT_GT(flat.replay_checked_steps, 0u);
  EXPECT_EQ(flat.replay_checked_steps, naive.replay_checked_steps);
}

TEST(RuntimeServe, PreSubmittedJobsServeAheadOfTheSource) {
  // serve() also honors jobs submitted before it starts: they are the
  // t<first-arrival prefix of the same deterministic timeline.
  const workload::WorkloadConfig w = small_workload(100, 1000.0);

  workload::WorkloadGenerator all(w);
  CollectiveRuntime together(base_config(/*flat=*/true));
  const RuntimeReport expected = together.serve(all);

  workload::WorkloadGenerator split(w);
  CollectiveRuntime rt(base_config(/*flat=*/true));
  // Hand the first ten specs over as pre-submissions...
  for (int i = 0; i < 10; ++i) {
    rt.submit(std::move(*split.next()));
  }
  // ...and stream the rest.
  const RuntimeReport report = rt.serve(split);
  expect_reports_identical(expected, report);
}

TEST(RuntimeServe, ServeAfterRunDies) {
  CollectiveRuntime rt(base_config(/*flat=*/true));
  JobSpec spec;
  spec.participants = {0, 1, 2};
  spec.payload = util::kilobytes(64);
  rt.submit(spec);
  rt.run();
  workload::WorkloadGenerator gen(small_workload(5, 100.0));
  EXPECT_DEATH(rt.serve(gen), "serve");
}

}  // namespace
}  // namespace wrht::runtime
