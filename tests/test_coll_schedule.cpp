#include "coll/schedule.hpp"

#include <gtest/gtest.h>

namespace wrht::coll {
namespace {

using util::Bytes;

TEST(Schedule, BasicConstruction) {
  Schedule schedule("test", 4, 2);
  EXPECT_EQ(schedule.name(), "test");
  EXPECT_EQ(schedule.num_nodes(), 4u);
  EXPECT_EQ(schedule.num_chunks(), 2u);
  EXPECT_EQ(schedule.num_steps(), 0u);
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, TransferOp::kReduce});
  schedule.add_transfer({2, 3, 1, TransferOp::kCopy});
  EXPECT_EQ(schedule.num_steps(), 1u);
  EXPECT_EQ(schedule.total_transfers(), 2u);
}

TEST(Schedule, ChunkBytesEvenSplit) {
  const Schedule schedule("test", 4, 4);
  const Bytes payload(1000);
  for (ChunkId c = 0; c < 4; ++c) {
    EXPECT_EQ(schedule.chunk_bytes(payload, c).count(), 250u);
  }
}

TEST(Schedule, ChunkBytesRemainderSpread) {
  const Schedule schedule("test", 4, 4);
  const Bytes payload(1002);
  EXPECT_EQ(schedule.chunk_bytes(payload, 0).count(), 251u);
  EXPECT_EQ(schedule.chunk_bytes(payload, 1).count(), 251u);
  EXPECT_EQ(schedule.chunk_bytes(payload, 2).count(), 250u);
  EXPECT_EQ(schedule.chunk_bytes(payload, 3).count(), 250u);
}

TEST(Schedule, ChunksSumToPayload) {
  const Schedule schedule("test", 8, 7);
  for (const std::uint64_t payload : {0ULL, 1ULL, 6ULL, 7ULL, 100ULL,
                                      249'200'000ULL}) {
    Bytes sum;
    for (ChunkId c = 0; c < 7; ++c) {
      sum += schedule.chunk_bytes(Bytes(payload), c);
    }
    EXPECT_EQ(sum.count(), payload);
  }
}

TEST(Schedule, TotalTraffic) {
  Schedule schedule("test", 4, 2);
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, TransferOp::kReduce});  // 500 B
  schedule.add_transfer({2, 3, 1, TransferOp::kReduce});  // 500 B
  schedule.add_step();
  schedule.add_transfer({1, 2, 0, TransferOp::kCopy});  // 500 B
  EXPECT_EQ(schedule.total_traffic(Bytes(1000)).count(), 1500u);
}

TEST(Schedule, ToStringContainsTransfers) {
  Schedule schedule("demo", 3, 1);
  schedule.add_step();
  schedule.add_transfer({0, 2, 0, TransferOp::kReduce});
  const std::string text = schedule.to_string();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("0->2"), std::string::npos);
  EXPECT_NE(text.find("R"), std::string::npos);
}

TEST(SplitHelpers, SizeAndOffsetConsistent) {
  for (const std::uint64_t total : {0ULL, 1ULL, 10ULL, 97ULL, 1000ULL}) {
    for (const std::uint32_t parts : {1u, 2u, 3u, 7u, 16u}) {
      std::uint64_t expected_offset = 0;
      for (std::uint32_t i = 0; i < parts; ++i) {
        EXPECT_EQ(split_part_offset(total, parts, i), expected_offset);
        expected_offset += split_part_size(total, parts, i);
      }
      EXPECT_EQ(expected_offset, total);
    }
  }
}

TEST(SplitHelpers, LargerPartsComeFirst) {
  // 10 into 4: 3,3,2,2.
  EXPECT_EQ(split_part_size(10, 4, 0), 3u);
  EXPECT_EQ(split_part_size(10, 4, 1), 3u);
  EXPECT_EQ(split_part_size(10, 4, 2), 2u);
  EXPECT_EQ(split_part_size(10, 4, 3), 2u);
}

TEST(Schedule, InvalidTransferAborts) {
  Schedule schedule("test", 4, 2);
  schedule.add_step();
  EXPECT_DEATH(schedule.add_transfer({0, 0, 0, TransferOp::kReduce}),
               "invalid transfer");
  EXPECT_DEATH(schedule.add_transfer({0, 9, 0, TransferOp::kReduce}),
               "invalid transfer");
  EXPECT_DEATH(schedule.add_transfer({0, 1, 5, TransferOp::kReduce}),
               "invalid transfer");
}

TEST(Schedule, TransferBeforeStepAborts) {
  Schedule schedule("test", 4, 2);
  EXPECT_DEATH(schedule.add_transfer({0, 1, 0, TransferOp::kReduce}),
               "before add_step");
}

TEST(TransferOpNames, Stable) {
  EXPECT_STREQ(transfer_op_name(TransferOp::kReduce), "reduce");
  EXPECT_STREQ(transfer_op_name(TransferOp::kCopy), "copy");
}

}  // namespace
}  // namespace wrht::coll
