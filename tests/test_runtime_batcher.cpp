#include "runtime/batcher.hpp"

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"

namespace wrht::runtime {
namespace {

QueueEntry job(JobId id, std::uint64_t seq, std::vector<topo::NodeId> group,
               util::Bytes payload) {
  return QueueEntry{id, seq, 1, 4, 1.0, payload, std::move(group)};
}

constexpr util::Bytes kSmall = util::kilobytes(64);

TEST(Batcher, FusesSameGroupSmallJobs) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, kSmall));
  queue.push(job(1, 1, {0, 1, 2, 3}, kSmall));
  queue.push(job(2, 2, {4, 5, 6, 7}, kSmall));  // different group
  queue.push(job(3, 3, {0, 1, 2, 3}, kSmall));
  const auto peers = fusable_peers(queue, 0, 4, BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Batcher, LargeLeadRunsAlone) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, util::megabytes(64)));
  queue.push(job(1, 1, {0, 1, 2, 3}, kSmall));
  const auto peers = fusable_peers(queue, 0, 4, BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0}));
}

TEST(Batcher, LargePeersAreSkipped) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, kSmall));
  queue.push(job(1, 1, {0, 1, 2, 3}, util::megabytes(64)));
  const auto peers = fusable_peers(queue, 0, 4, BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0}));
}

TEST(Batcher, CapsBatchSizeOldestFirst) {
  JobQueue queue;
  for (JobId id = 0; id < 6; ++id) {
    queue.push(job(id, id, {0, 1, 2, 3}, kSmall));
  }
  BatcherConfig config;
  config.max_jobs_per_batch = 3;
  // Lead is the newest entry; the two OLDEST peers join it.
  const auto peers = fusable_peers(queue, 5, 4, config);
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 1, 5}));
}

TEST(Batcher, PeerMinimumAboveGrantIsSkipped) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, kSmall));
  QueueEntry demanding = job(1, 1, {0, 1, 2, 3}, kSmall);
  demanding.min_wavelengths = 8;  // more than the lead's granted band
  queue.push(demanding);
  queue.push(job(2, 2, {0, 1, 2, 3}, kSmall));
  const auto peers = fusable_peers(queue, 0, /*granted_band_width=*/4,
                                   BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 2}));
}

TEST(Batcher, TotalBatchPayloadIsBudgeted) {
  // Eight jobs each exactly at the per-job fuse cap used to fuse into an
  // 8x-oversized "small-job" batch; the batch budget stops the pile-up at
  // the oldest prefix that fits.
  JobQueue queue;
  BatcherConfig config;
  config.max_fuse_payload = util::kilobytes(256);
  config.max_jobs_per_batch = 8;
  config.max_batch_payload = util::kilobytes(640);
  for (JobId id = 0; id < 8; ++id) {
    queue.push(job(id, id, {0, 1, 2, 3}, util::kilobytes(256)));
  }
  // Lead (256k) + oldest peer (256k) fit; a third would cross 640k.
  const auto peers = fusable_peers(queue, 0, 4, config);
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 1}));
}

TEST(Batcher, PayloadBudgetKeepsOldestPrefixNotSmallestPeers) {
  // A big old peer that blows the budget ends the batch even though a
  // younger small peer would still fit — fusion must not reorder tenants.
  JobQueue queue;
  BatcherConfig config;
  config.max_fuse_payload = util::kilobytes(256);
  config.max_batch_payload = util::kilobytes(300);
  queue.push(job(0, 0, {0, 1, 2, 3}, util::kilobytes(128)));
  queue.push(job(1, 1, {0, 1, 2, 3}, util::kilobytes(256)));  // over budget
  queue.push(job(2, 2, {0, 1, 2, 3}, util::kilobytes(16)));   // would fit
  const auto peers = fusable_peers(queue, 0, 4, config);
  EXPECT_EQ(peers, (std::vector<std::size_t>{0}));
}

TEST(Batcher, DisabledReturnsLeadOnly) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, kSmall));
  queue.push(job(1, 1, {0, 1, 2, 3}, kSmall));
  BatcherConfig config;
  config.enabled = false;
  EXPECT_EQ(fusable_peers(queue, 0, 4, config),
            (std::vector<std::size_t>{0}));
}

TEST(Batcher, MixedPrioritiesNeverFuse) {
  // Regression: an execution carries ONE priority (the max over its fused
  // jobs), so fusing a low-priority rider into a high-priority lead let the
  // rider inherit the lead's urgency and dodge preemption.  Only
  // equal-priority jobs may share a batch.
  JobQueue queue;
  QueueEntry lead = job(0, 0, {0, 1, 2, 3}, kSmall);
  lead.priority = 5;
  queue.push(lead);
  QueueEntry rider = job(1, 1, {0, 1, 2, 3}, kSmall);
  rider.priority = 0;  // lower urgency: must not ride along
  queue.push(rider);
  QueueEntry peer = job(2, 2, {0, 1, 2, 3}, kSmall);
  peer.priority = 5;  // same urgency: fuses
  queue.push(peer);
  QueueEntry upward = job(3, 3, {0, 1, 2, 3}, kSmall);
  upward.priority = 9;  // HIGHER urgency must not be dragged down either
  queue.push(upward);
  const auto peers = fusable_peers(queue, 0, 4, BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 2}));
}

TEST(Batcher, LowPriorityRiderStaysPreemptibleAtRuntime) {
  // End to end: a priority-0 job queued next to a priority-5 lead must run
  // as its own execution, stay preemptible, and actually be preempted by a
  // later urgent arrival — before the fix it fused into the lead's batch
  // and sailed through at priority 5.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.max_fuse_payload = util::megabytes(8);
  config.batcher.max_batch_payload = util::megabytes(16);

  CollectiveRuntime rt(config);
  JobSpec blocker;  // saturates the ring so both arrivals queue together
  for (std::uint32_t i = 0; i < 8; ++i) blocker.participants.push_back(i);
  blocker.payload = util::kilobytes(256);
  blocker.min_wavelengths = 8;
  blocker.priority = 7;
  rt.submit(blocker);

  JobSpec lead;
  for (std::uint32_t i = 0; i < 8; ++i) lead.participants.push_back(i);
  lead.payload = util::megabytes(4);
  lead.arrival = util::microseconds(1.0);
  lead.min_wavelengths = 8;
  lead.priority = 5;
  const JobId lead_id = rt.submit(lead);

  JobSpec rider = lead;  // same group, same size — only the urgency differs
  rider.priority = 0;
  const JobId rider_id = rt.submit(rider);

  JobSpec urgent;
  for (std::uint32_t i = 0; i < 6; ++i) urgent.participants.push_back(2 + i);
  urgent.payload = util::megabytes(1);
  urgent.arrival = util::milliseconds(13.0);  // lands mid-rider
  urgent.min_wavelengths = 4;
  urgent.priority = 9;
  const JobId urgent_id = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 4u);
  // Not fused: different priorities.
  EXPECT_EQ(rt.record(lead_id).batch_size, 1u);
  EXPECT_EQ(rt.record(rider_id).batch_size, 1u);
  // The rider kept its own (preemptible) priority and the urgent arrival
  // suspended it.
  EXPECT_GE(rt.record(rider_id).preemptions, 1u);
  EXPECT_EQ(rt.record(lead_id).preemptions, 0u);
  EXPECT_LT(rt.record(urgent_id).completed, rt.record(rider_id).completed);
}

TEST(FuseWindow, IdleRingBurstFusesWithinTheWindow) {
  // Without a window the first arrival on an idle ring is admitted alone
  // and the burst behind it runs as separate executions; with a window the
  // whole burst fuses into one schedule.
  auto run_burst = [](util::Seconds window) {
    RuntimeConfig config;
    config.ring_size = 16;
    config.optical.wdm.num_wavelengths = 8;
    config.batcher.fuse_window = window;
    CollectiveRuntime rt(config);
    for (std::uint32_t i = 0; i < 5; ++i) {
      JobSpec spec;
      for (std::uint32_t n = 0; n < 6; ++n) spec.participants.push_back(n);
      spec.payload = util::kilobytes(48);
      spec.arrival = util::microseconds(static_cast<double>(i));
      rt.submit(spec);
    }
    return std::pair<RuntimeReport, std::uint32_t>(rt.run(),
                                                   rt.record(0).batch_size);
  };

  const auto [unwindowed, solo_batch] = run_burst(util::Seconds(0.0));
  EXPECT_EQ(solo_batch, 1u);  // the first job sprinted ahead alone
  EXPECT_GT(unwindowed.executions, 1u);

  const auto [windowed, fused_batch] = run_burst(util::microseconds(50.0));
  EXPECT_EQ(fused_batch, 5u);  // everyone landed inside the window
  EXPECT_EQ(windowed.executions, 1u);
  EXPECT_EQ(windowed.batches, 1u);
  EXPECT_EQ(windowed.completed, 5u);
  // One schedule's per-step overheads instead of five schedules' worth.
  EXPECT_LT(windowed.makespan, unwindowed.makespan);
}

TEST(FuseWindow, HeldJobsStillFuseIntoAContendedLeadEarly) {
  // A held arrival is invisible to admission but NOT to the batcher: when a
  // blocker completes and a queued (window-expired) lead is admitted, peers
  // still inside their window join its batch instead of waiting their
  // windows out.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.fuse_window = util::milliseconds(50.0);
  CollectiveRuntime rt(config);

  JobSpec blocker;
  for (std::uint32_t i = 0; i < 8; ++i) blocker.participants.push_back(i);
  blocker.payload = util::megabytes(160);  // above the fuse cap: never held
  blocker.min_wavelengths = 8;
  rt.submit(blocker);

  // Arrives at 1 us, window expires at ~50 ms — before the blocker's
  // completion, so by then it is an ordinary queued lead.
  JobSpec lead;
  for (std::uint32_t n = 0; n < 6; ++n) lead.participants.push_back(n);
  lead.payload = util::kilobytes(48);
  lead.arrival = util::microseconds(1.0);
  rt.submit(lead);

  // Arrives just before the blocker completes; its own window stretches far
  // past that, yet it must ride the lead's admission.
  JobSpec late = lead;
  late.arrival = util::milliseconds(58.0);
  const JobId late_id = rt.submit(late);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(rt.record(late_id).batch_size, 2u);
}

TEST(FuseWindow, StaleHoldReleaseDoesNotInflateMakespan) {
  // A peer fused into an earlier batch leaves its hold-release timer
  // behind as a no-op event that can fire AFTER the last completion; the
  // reported makespan must be the last completion, not the drained clock.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.fuse_window = util::milliseconds(50.0);
  CollectiveRuntime rt(config);
  JobSpec lead;
  for (std::uint32_t n = 0; n < 6; ++n) lead.participants.push_back(n);
  lead.payload = util::kilobytes(48);
  const JobId lead_id = rt.submit(lead);
  JobSpec peer = lead;  // arrives just inside the lead's window: fuses at
  peer.arrival = util::milliseconds(49.0);  // 50 ms, own window runs to 99 ms
  rt.submit(peer);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.makespan, rt.record(lead_id).completed);
  EXPECT_LT(report.makespan, util::milliseconds(99.0));
}

TEST(FuseWindow, OffByDefault) {
  EXPECT_EQ(BatcherConfig{}.fuse_window, util::Seconds(0.0));
}

TEST(Batcher, FusionEmitsAJobFusedTraceEventPerRider) {
  // Every non-lead job fused into a batch records a kJobFused event at the
  // batch's admission: `a` is the rider, `b` the lead it rode into.  The
  // Chrome trace exporter renders these as "fused" instants.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.fuse_window = util::microseconds(50.0);
  CollectiveRuntime rt(config);
  rt.trace().enable();
  for (std::uint32_t i = 0; i < 3; ++i) {
    JobSpec spec;
    for (std::uint32_t n = 0; n < 6; ++n) spec.participants.push_back(n);
    spec.payload = util::kilobytes(48);
    spec.arrival = util::microseconds(static_cast<double>(i));
    rt.submit(spec);
  }
  const RuntimeReport report = rt.run();
  ASSERT_EQ(report.completed, 3u);
  ASSERT_EQ(report.batches, 1u);

  std::vector<JobId> fused_riders;
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind != sim::TraceKind::kJobFused) continue;
    fused_riders.push_back(static_cast<JobId>(e.a));
    // Every rider fused into the same lead, at the lead's admission time.
    EXPECT_EQ(e.b, 0);
    EXPECT_EQ(e.time, rt.record(0).admitted);
  }
  // Two riders (jobs 1 and 2) joined lead 0; the lead itself emits none.
  EXPECT_EQ(fused_riders, (std::vector<JobId>{1, 2}));
}

}  // namespace
}  // namespace wrht::runtime
