#include "runtime/batcher.hpp"

#include <gtest/gtest.h>

namespace wrht::runtime {
namespace {

QueueEntry job(JobId id, std::uint64_t seq, std::vector<topo::NodeId> group,
               util::Bytes payload) {
  return QueueEntry{id, seq, 1, 4, 1.0, payload, std::move(group)};
}

constexpr util::Bytes kSmall = util::kilobytes(64);

TEST(Batcher, FusesSameGroupSmallJobs) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, kSmall));
  queue.push(job(1, 1, {0, 1, 2, 3}, kSmall));
  queue.push(job(2, 2, {4, 5, 6, 7}, kSmall));  // different group
  queue.push(job(3, 3, {0, 1, 2, 3}, kSmall));
  const auto peers = fusable_peers(queue, 0, 4, BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Batcher, LargeLeadRunsAlone) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, util::megabytes(64)));
  queue.push(job(1, 1, {0, 1, 2, 3}, kSmall));
  const auto peers = fusable_peers(queue, 0, 4, BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0}));
}

TEST(Batcher, LargePeersAreSkipped) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, kSmall));
  queue.push(job(1, 1, {0, 1, 2, 3}, util::megabytes(64)));
  const auto peers = fusable_peers(queue, 0, 4, BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0}));
}

TEST(Batcher, CapsBatchSizeOldestFirst) {
  JobQueue queue;
  for (JobId id = 0; id < 6; ++id) {
    queue.push(job(id, id, {0, 1, 2, 3}, kSmall));
  }
  BatcherConfig config;
  config.max_jobs_per_batch = 3;
  // Lead is the newest entry; the two OLDEST peers join it.
  const auto peers = fusable_peers(queue, 5, 4, config);
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 1, 5}));
}

TEST(Batcher, PeerMinimumAboveGrantIsSkipped) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, kSmall));
  QueueEntry demanding = job(1, 1, {0, 1, 2, 3}, kSmall);
  demanding.min_wavelengths = 8;  // more than the lead's granted band
  queue.push(demanding);
  queue.push(job(2, 2, {0, 1, 2, 3}, kSmall));
  const auto peers = fusable_peers(queue, 0, /*granted_band_width=*/4,
                                   BatcherConfig{});
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 2}));
}

TEST(Batcher, TotalBatchPayloadIsBudgeted) {
  // Eight jobs each exactly at the per-job fuse cap used to fuse into an
  // 8x-oversized "small-job" batch; the batch budget stops the pile-up at
  // the oldest prefix that fits.
  JobQueue queue;
  BatcherConfig config;
  config.max_fuse_payload = util::kilobytes(256);
  config.max_jobs_per_batch = 8;
  config.max_batch_payload = util::kilobytes(640);
  for (JobId id = 0; id < 8; ++id) {
    queue.push(job(id, id, {0, 1, 2, 3}, util::kilobytes(256)));
  }
  // Lead (256k) + oldest peer (256k) fit; a third would cross 640k.
  const auto peers = fusable_peers(queue, 0, 4, config);
  EXPECT_EQ(peers, (std::vector<std::size_t>{0, 1}));
}

TEST(Batcher, PayloadBudgetKeepsOldestPrefixNotSmallestPeers) {
  // A big old peer that blows the budget ends the batch even though a
  // younger small peer would still fit — fusion must not reorder tenants.
  JobQueue queue;
  BatcherConfig config;
  config.max_fuse_payload = util::kilobytes(256);
  config.max_batch_payload = util::kilobytes(300);
  queue.push(job(0, 0, {0, 1, 2, 3}, util::kilobytes(128)));
  queue.push(job(1, 1, {0, 1, 2, 3}, util::kilobytes(256)));  // over budget
  queue.push(job(2, 2, {0, 1, 2, 3}, util::kilobytes(16)));   // would fit
  const auto peers = fusable_peers(queue, 0, 4, config);
  EXPECT_EQ(peers, (std::vector<std::size_t>{0}));
}

TEST(Batcher, DisabledReturnsLeadOnly) {
  JobQueue queue;
  queue.push(job(0, 0, {0, 1, 2, 3}, kSmall));
  queue.push(job(1, 1, {0, 1, 2, 3}, kSmall));
  BatcherConfig config;
  config.enabled = false;
  EXPECT_EQ(fusable_peers(queue, 0, 4, config),
            (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace wrht::runtime
