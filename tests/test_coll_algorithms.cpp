// Correctness of every baseline all-reduce schedule, proven by actually
// executing the schedules on payload vectors (the functional oracle), plus
// structural properties: step counts, traffic volumes, validation.
#include "coll/algorithms.hpp"

#include <gtest/gtest.h>

#include <set>

#include "coll/executor.hpp"
#include "coll/validation.hpp"
#include "util/math.hpp"

namespace wrht::coll {
namespace {

using Builder = Schedule (*)(std::uint32_t);

struct AlgoCase {
  const char* name;
  Builder build;
};

const AlgoCase kAlgos[] = {
    {"ring", &ring_allreduce},
    {"recursive_doubling", &recursive_doubling},
    {"halving_doubling", &halving_doubling},
    {"binomial_tree", &binomial_tree},
    {"direct", &direct_allreduce},
    {"naive_ring", &naive_ring},
};

class AllAlgorithms
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {
 protected:
  const AlgoCase& algo() const { return kAlgos[std::get<0>(GetParam())]; }
  std::uint32_t nodes() const { return std::get<1>(GetParam()); }
};

TEST_P(AllAlgorithms, ComputesAllReduce) {
  const Schedule schedule = algo().build(nodes());
  const auto result = FunctionalExecutor::verify_allreduce_detailed(
      schedule, /*payload_len=*/64);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_P(AllAlgorithms, PassesStructuralValidation) {
  const Schedule schedule = algo().build(nodes());
  const ValidationReport report = validate(schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(AllAlgorithms, PayloadSmallerThanChunksStillWorks) {
  const Schedule schedule = algo().build(nodes());
  // A payload of exactly num_chunks elements gives 1-element chunks.
  EXPECT_TRUE(
      FunctionalExecutor::verify_allreduce(schedule, schedule.num_chunks()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllAlgorithms,
    ::testing::Combine(::testing::Range<std::size_t>(0, 6),
                       ::testing::Values(2u, 3u, 4u, 5u, 7u, 8u, 12u, 16u, 17u,
                                         31u, 32u, 33u, 64u)),
    [](const ::testing::TestParamInfo<AllAlgorithms::ParamType>& param_info) {
      return std::string(kAlgos[std::get<0>(param_info.param)].name) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(RingAllReduce, StepAndChunkCounts) {
  for (const std::uint32_t n : {2u, 5u, 16u, 100u}) {
    const Schedule schedule = ring_allreduce(n);
    EXPECT_EQ(schedule.num_steps(), 2u * (n - 1));
    EXPECT_EQ(schedule.num_chunks(), n);
    EXPECT_EQ(schedule.total_transfers(), std::size_t{2} * (n - 1) * n);
  }
}

TEST(RingAllReduce, TrafficIsBandwidthOptimal) {
  // Each of the 2(n-1) steps carries n chunks of D/n bytes, so the total
  // wire traffic is 2 (n-1) D — each node moves 2 D (n-1)/n bytes.
  const std::uint32_t n = 8;
  const util::Bytes payload(8000);
  const Schedule schedule = ring_allreduce(n);
  EXPECT_EQ(schedule.total_traffic(payload).count(),
            2ull * (n - 1) * payload.count());
}

TEST(RingAllReduce, EachStepIsNeighborOnly) {
  const std::uint32_t n = 9;
  const Schedule schedule = ring_allreduce(n);
  for (const Step& step : schedule.steps()) {
    EXPECT_EQ(step.transfers.size(), n);
    for (const Transfer& t : step.transfers) {
      EXPECT_EQ(t.dst, (t.src + 1) % n);
    }
  }
}

TEST(RecursiveDoubling, StepCountPowerOfTwo) {
  EXPECT_EQ(recursive_doubling(8).num_steps(), 3u);
  EXPECT_EQ(recursive_doubling(64).num_steps(), 6u);
}

TEST(RecursiveDoubling, StepCountNonPowerOfTwoAddsFoldUnfold) {
  EXPECT_EQ(recursive_doubling(5).num_steps(), 2u + 2u);
  EXPECT_EQ(recursive_doubling(12).num_steps(), 3u + 2u);
}

TEST(RecursiveDoubling, EveryCoreStepIsFullExchange) {
  const Schedule schedule = recursive_doubling(8);
  for (const Step& step : schedule.steps()) {
    EXPECT_EQ(step.transfers.size(), 8u);
    for (const Transfer& t : step.transfers) {
      // Partner relation is symmetric.
      bool reverse_found = false;
      for (const Transfer& u : step.transfers) {
        if (u.src == t.dst && u.dst == t.src) reverse_found = true;
      }
      EXPECT_TRUE(reverse_found);
    }
  }
}

TEST(HalvingDoubling, StepCountPowerOfTwo) {
  EXPECT_EQ(halving_doubling(8).num_steps(), 6u);
  EXPECT_EQ(halving_doubling(16).num_steps(), 8u);
}

TEST(HalvingDoubling, TrafficMatchesRingOrder) {
  // Rabenseifner moves 2 D (n-1)/n per node, same order as ring.
  const std::uint32_t n = 8;
  const util::Bytes payload(8000);
  const std::uint64_t ring_traffic =
      ring_allreduce(n).total_traffic(payload).count();
  const std::uint64_t hd_traffic =
      halving_doubling(n).total_traffic(payload).count();
  EXPECT_EQ(hd_traffic, ring_traffic);
}

TEST(BinomialTree, StepCount) {
  EXPECT_EQ(binomial_tree(8).num_steps(), 6u);
  EXPECT_EQ(binomial_tree(9).num_steps(), 8u);
  EXPECT_EQ(binomial_tree(2).num_steps(), 2u);
}

TEST(BinomialTree, RootReceivesEverything) {
  const Schedule schedule = binomial_tree(16);
  // Node 0 never sends during the reduce half.
  const std::size_t reduce_steps = schedule.num_steps() / 2;
  for (std::size_t s = 0; s < reduce_steps; ++s) {
    for (const Transfer& t : schedule.steps()[s].transfers) {
      EXPECT_NE(t.src, 0u);
      EXPECT_EQ(t.op, TransferOp::kReduce);
    }
  }
}

TEST(DirectAllReduce, OneStepAllPairs) {
  const std::uint32_t n = 6;
  const Schedule schedule = direct_allreduce(n);
  EXPECT_EQ(schedule.num_steps(), 1u);
  EXPECT_EQ(schedule.total_transfers(), std::size_t{n} * (n - 1));
}

TEST(NaiveRing, SequentialSteps) {
  const std::uint32_t n = 7;
  const Schedule schedule = naive_ring(n);
  EXPECT_EQ(schedule.num_steps(), 2u * (n - 1));
  for (const Step& step : schedule.steps()) {
    EXPECT_EQ(step.transfers.size(), 1u);
  }
}

class HierarchicalSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(HierarchicalSweep, ComputesAllReduce) {
  const auto [n, g] = GetParam();
  const Schedule schedule = hierarchical_allreduce(n, g);
  const auto result =
      FunctionalExecutor::verify_allreduce_detailed(schedule, 48);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(validate(schedule).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierarchicalSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 7u, 8u, 15u, 16u, 32u, 48u),
                       ::testing::Values(1u, 2u, 4u, 7u, 8u, 64u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_g" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(Hierarchical, StepStructure) {
  // 32 nodes in groups of 8: 3 intra-reduce rounds + 2 RD rounds among 4
  // leaders + 3 intra-broadcast rounds.
  const Schedule schedule = hierarchical_allreduce(32, 8);
  EXPECT_EQ(schedule.num_steps(), 3u + 2u + 3u);
}

TEST(Hierarchical, GroupsWorkInParallel) {
  // Round 0 of the reduce phase must contain transfers from every group.
  const Schedule schedule = hierarchical_allreduce(32, 8);
  std::set<std::uint32_t> groups_seen;
  for (const Transfer& t : schedule.steps()[0].transfers) {
    groups_seen.insert(t.dst / 8);
  }
  EXPECT_EQ(groups_seen.size(), 4u);
}

TEST(Hierarchical, FewerBottleneckBytesThanFlatRecursiveDoubling) {
  // With groups, only leaders exchange full vectors across the cluster:
  // total traffic is lower than flat RD at the same N.
  const std::uint32_t n = 64;
  const util::Bytes payload(64'000);
  EXPECT_LT(hierarchical_allreduce(n, 8).total_traffic(payload).count(),
            recursive_doubling(n).total_traffic(payload).count());
}

TEST(AllAlgorithmsLarge, CorrectAtN128) {
  // One larger sanity point per algorithm (excluding the O(n^2)-transfer
  // direct exchange, which is covered at smaller n).
  for (const AlgoCase& algo : kAlgos) {
    if (std::string(algo.name) == "direct") continue;
    const Schedule schedule = algo.build(128);
    EXPECT_TRUE(FunctionalExecutor::verify_allreduce(schedule, 128))
        << algo.name;
  }
}

}  // namespace
}  // namespace wrht::coll
