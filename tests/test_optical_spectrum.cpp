#include "optical/spectrum.hpp"

#include <gtest/gtest.h>

namespace wrht::optical {
namespace {

using topo::Arc;
using topo::Direction;
using topo::RingTopology;

TEST(Spectrum, FreshMapIsFree) {
  const RingTopology ring(8);
  const SpectrumMap spectrum(ring, 4);
  const Arc arc = ring.arc(0, 4, Direction::kClockwise);
  for (WavelengthId lambda = 0; lambda < 4; ++lambda) {
    EXPECT_TRUE(spectrum.is_free(arc, lambda));
  }
  EXPECT_EQ(spectrum.first_free(arc).value(), 0u);
  EXPECT_EQ(spectrum.wavelengths_in_use(), 0u);
}

TEST(Spectrum, ReserveBlocksOverlappingArc) {
  const RingTopology ring(8);
  SpectrumMap spectrum(ring, 4);
  spectrum.reserve(ring.arc(0, 3, Direction::kClockwise), 0);
  // Overlapping arc: lambda 0 busy, lambda 1 free.
  const Arc overlapping = ring.arc(2, 5, Direction::kClockwise);
  EXPECT_FALSE(spectrum.is_free(overlapping, 0));
  EXPECT_TRUE(spectrum.is_free(overlapping, 1));
  EXPECT_EQ(spectrum.first_free(overlapping).value(), 1u);
}

TEST(Spectrum, DisjointArcReusesWavelength) {
  const RingTopology ring(8);
  SpectrumMap spectrum(ring, 4);
  spectrum.reserve(ring.arc(0, 3, Direction::kClockwise), 0);
  const Arc disjoint = ring.arc(4, 7, Direction::kClockwise);
  EXPECT_TRUE(spectrum.is_free(disjoint, 0));
}

TEST(Spectrum, OppositeDirectionIsSeparateWaveguide) {
  const RingTopology ring(8);
  SpectrumMap spectrum(ring, 2);
  spectrum.reserve(ring.arc(0, 4, Direction::kClockwise), 0);
  EXPECT_TRUE(
      spectrum.is_free(ring.arc(4, 0, Direction::kCounterClockwise), 0));
}

TEST(Spectrum, ReleaseRestoresFreedom) {
  const RingTopology ring(8);
  SpectrumMap spectrum(ring, 2);
  const Arc arc = ring.arc(1, 6, Direction::kClockwise);
  spectrum.reserve(arc, 1);
  EXPECT_FALSE(spectrum.is_free(arc, 1));
  spectrum.release(arc, 1);
  EXPECT_TRUE(spectrum.is_free(arc, 1));
  EXPECT_EQ(spectrum.wavelengths_in_use(), 0u);
}

TEST(Spectrum, FirstFreeExhaustion) {
  const RingTopology ring(4);
  SpectrumMap spectrum(ring, 2);
  const Arc arc = ring.arc(0, 2, Direction::kClockwise);
  spectrum.reserve(arc, 0);
  spectrum.reserve(arc, 1);
  EXPECT_FALSE(spectrum.first_free(arc).has_value());
}

TEST(Spectrum, UsageCountsSpans) {
  const RingTopology ring(8);
  SpectrumMap spectrum(ring, 2);
  spectrum.reserve(ring.arc(0, 3, Direction::kClockwise), 0);  // 3 spans
  spectrum.reserve(ring.arc(5, 7, Direction::kClockwise), 0);  // 2 spans
  EXPECT_EQ(spectrum.usage(0), 5u);
  EXPECT_EQ(spectrum.usage(1), 0u);
  EXPECT_EQ(spectrum.occupied_cells(Direction::kClockwise), 5u);
  EXPECT_EQ(spectrum.occupied_cells(Direction::kCounterClockwise), 0u);
  EXPECT_EQ(spectrum.wavelengths_in_use(), 1u);
}

TEST(Spectrum, ClearResetsEverything) {
  const RingTopology ring(8);
  SpectrumMap spectrum(ring, 2);
  spectrum.reserve(ring.arc(0, 3, Direction::kClockwise), 0);
  spectrum.clear();
  EXPECT_EQ(spectrum.wavelengths_in_use(), 0u);
  EXPECT_TRUE(spectrum.is_free(ring.arc(0, 3, Direction::kClockwise), 0));
}

TEST(Spectrum, OutOfRangeWavelengthNeverFree) {
  const RingTopology ring(4);
  const SpectrumMap spectrum(ring, 2);
  EXPECT_FALSE(spectrum.is_free(ring.arc(0, 1, Direction::kClockwise), 7));
}

TEST(Spectrum, NestedArcsOneSide) {
  // The Wrht left-side pattern: arcs [k..rep) all ending at the same node
  // pairwise conflict, so they consume one wavelength each.
  const RingTopology ring(16);
  SpectrumMap spectrum(ring, 8);
  const topo::NodeId rep = 8;
  for (topo::NodeId member = 4; member < rep; ++member) {
    const Arc arc = ring.arc(member, rep, Direction::kClockwise);
    const auto lambda = spectrum.first_free(arc);
    ASSERT_TRUE(lambda.has_value());
    spectrum.reserve(arc, *lambda);
  }
  EXPECT_EQ(spectrum.wavelengths_in_use(), 4u);
}

}  // namespace
}  // namespace wrht::optical
