#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace wrht::util {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_header({"model", "nodes", "time"});
  csv.write_row({"AlexNet", "128", "0.5"});
  csv.write_row({"VGG16", "256", "1.25"});
  EXPECT_EQ(out.str(),
            "model,nodes,time\nAlexNet,128,0.5\nVGG16,256,1.25\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowWithEscapedField) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string rendered = table.render();
  // Header present, both rows present, every line same width.
  EXPECT_NE(rendered.find("| name"), std::string::npos);
  EXPECT_NE(rendered.find("12345"), std::string::npos);
  std::size_t line_length = 0;
  std::size_t start = 0;
  while (start < rendered.size()) {
    const std::size_t end = rendered.find('\n', start);
    const std::size_t len = end - start;
    if (line_length == 0) line_length = len;
    EXPECT_EQ(len, line_length);
    start = end + 1;
  }
}

TEST(Table, DefaultAlignmentFirstColumnLeft) {
  Table table({"k", "v"});
  table.add_row({"x", "1"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("| x "), std::string::npos);
}

TEST(Table, SeparatorInsertsRule) {
  Table table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string rendered = table.render();
  // 3 rules around header + 1 separator = 4 horizontal rules.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = rendered.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, CountsRows) {
  Table table({"a", "b"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace wrht::util
