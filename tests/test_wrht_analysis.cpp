#include "wrht/analysis.hpp"

#include <gtest/gtest.h>

#include "wrht/builder.hpp"

namespace wrht::core {
namespace {

WrhtParams params_with(std::uint32_t w) {
  WrhtParams params;
  params.num_wavelengths = w;
  return params;
}

TEST(Analysis, FieldsForPaperPoint) {
  const WrhtBuild build = build_wrht(1024, params_with(64));
  const WrhtAnalysis a = analyze(build, util::megabytes(100));
  EXPECT_EQ(a.num_nodes, 1024u);
  EXPECT_EQ(a.group_size_m, 129u);
  EXPECT_EQ(a.final_rep_count_mstar, 8u);
  EXPECT_TRUE(a.merged_with_all_to_all);
  EXPECT_EQ(a.tree_levels, 1u);
  EXPECT_EQ(a.total_steps, 3u);
  EXPECT_EQ(a.paper_formula_steps, 3u);  // 2*ceil(log_129 1024) - 1
  EXPECT_EQ(a.ring_steps, 2046u);
  EXPECT_EQ(a.group_lambda_bound, 64u);
  EXPECT_EQ(a.all_to_all_lambda_bound, 8u);
  EXPECT_EQ(a.lambda_per_step.size(), 3u);
  EXPECT_EQ(a.max_lambda, build.annotated.wavelengths_required);
}

TEST(Analysis, TrafficAccountsEveryTransfer) {
  // Traffic = (total transfers) x payload for the single-chunk schedule.
  const WrhtBuild build = build_wrht(64, params_with(8));
  const util::Bytes payload(1000);
  const WrhtAnalysis a = analyze(build, payload);
  EXPECT_EQ(a.total_traffic.count(),
            build.annotated.schedule.total_transfers() * 1000);
  EXPECT_EQ(a.probe_payload.count(), 1000u);
}

TEST(Analysis, UnmergedFormulaDropsTheMinusOne) {
  WrhtParams params = params_with(64);
  params.allow_all_to_all_merge = false;
  const WrhtBuild build = build_wrht(1024, params);
  const WrhtAnalysis a = analyze(build, util::Bytes(1));
  EXPECT_FALSE(a.merged_with_all_to_all);
  EXPECT_EQ(a.paper_formula_steps, 4u);  // 2*ceil(log_129 1024)
  EXPECT_EQ(a.total_steps, 4u);
  EXPECT_EQ(a.all_to_all_lambda_bound, 0u);
}

TEST(Analysis, ReportMentionsEveryHeadline) {
  const WrhtBuild build = build_wrht(256, params_with(64));
  const std::string report = analyze(build, util::megabytes(1)).report();
  for (const char* needle :
       {"N=256", "group size m", "final reps (m*)", "steps", "wavelengths",
        "paper formula", "ring: 510", "lambdas per step", "traffic",
        "merged via all-to-all"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(Analysis, ReportShowsRootWhenUnmerged) {
  WrhtParams params = params_with(4);
  params.allow_all_to_all_merge = false;
  const WrhtBuild build = build_wrht(32, params);
  const std::string report = analyze(build, util::Bytes(8)).report();
  EXPECT_NE(report.find("reduced to root"), std::string::npos);
}

TEST(Analysis, LambdaPerStepMatchesAnnotation) {
  const WrhtBuild build = build_wrht(200, params_with(16));
  const WrhtAnalysis a = analyze(build, util::Bytes(64));
  ASSERT_EQ(a.lambda_per_step, build.annotated.lambda_per_step);
  std::uint32_t max_seen = 0;
  for (const std::uint32_t l : a.lambda_per_step) {
    max_seen = std::max(max_seen, l);
  }
  EXPECT_EQ(a.max_lambda, max_seen);
}

}  // namespace
}  // namespace wrht::core
