#include "runtime/arbiter.hpp"

#include <gtest/gtest.h>

namespace wrht::runtime {
namespace {

TEST(Arbiter, FirstFitAllocatesDisjointBands) {
  SpectrumArbiter arbiter(16);
  const auto a = arbiter.allocate(8);
  const auto b = arbiter.allocate(4);
  const auto c = arbiter.allocate(4);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->base, 0u);
  EXPECT_EQ(b->base, 8u);
  EXPECT_EQ(c->base, 12u);
  EXPECT_EQ(arbiter.free_total(), 0u);
  EXPECT_EQ(arbiter.largest_free_block(), 0u);
  EXPECT_EQ(arbiter.bands_outstanding(), 3u);
}

TEST(Arbiter, RefusesWhenNoRunFits) {
  SpectrumArbiter arbiter(8);
  ASSERT_TRUE(arbiter.allocate(8));
  EXPECT_FALSE(arbiter.allocate(1));
}

TEST(Arbiter, FragmentationBlocksWideBand) {
  SpectrumArbiter arbiter(12);
  const auto a = arbiter.allocate(4);   // [0, 4)
  const auto b = arbiter.allocate(4);   // [4, 8)
  const auto c = arbiter.allocate(4);   // [8, 12)
  ASSERT_TRUE(a && b && c);
  arbiter.release(*a);
  arbiter.release(*c);
  // 8 wavelengths free, but the widest contiguous run is 4.
  EXPECT_EQ(arbiter.free_total(), 8u);
  EXPECT_EQ(arbiter.largest_free_block(), 4u);
  EXPECT_FALSE(arbiter.allocate(6));
  const auto d = arbiter.allocate(4);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->base, 0u);  // first fit reuses the low gap
}

TEST(Arbiter, ReleaseMergesAdjacentGaps) {
  SpectrumArbiter arbiter(12);
  const auto a = arbiter.allocate(4);
  const auto b = arbiter.allocate(4);
  ASSERT_TRUE(a && b);
  arbiter.release(*a);
  arbiter.release(*b);
  EXPECT_EQ(arbiter.largest_free_block(), 12u);
  const auto wide = arbiter.allocate(12);
  ASSERT_TRUE(wide);
  EXPECT_EQ(wide->base, 0u);
}

TEST(ArbiterDeath, DoubleReleaseAborts) {
  SpectrumArbiter arbiter(8);
  const auto a = arbiter.allocate(4);
  ASSERT_TRUE(a);
  arbiter.release(*a);
  EXPECT_DEATH(arbiter.release(*a), "double release");
}

}  // namespace
}  // namespace wrht::runtime
