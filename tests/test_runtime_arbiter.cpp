#include "runtime/arbiter.hpp"

#include <gtest/gtest.h>

namespace wrht::runtime {
namespace {

TEST(Arbiter, FirstFitAllocatesDisjointBands) {
  SpectrumArbiter arbiter(16);
  const auto a = arbiter.allocate(8);
  const auto b = arbiter.allocate(4);
  const auto c = arbiter.allocate(4);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->base, 0u);
  EXPECT_EQ(b->base, 8u);
  EXPECT_EQ(c->base, 12u);
  EXPECT_EQ(arbiter.free_total(), 0u);
  EXPECT_EQ(arbiter.largest_free_block(), 0u);
  EXPECT_EQ(arbiter.bands_outstanding(), 3u);
}

TEST(Arbiter, RefusesWhenNoRunFits) {
  SpectrumArbiter arbiter(8);
  ASSERT_TRUE(arbiter.allocate(8));
  EXPECT_FALSE(arbiter.allocate(1));
}

TEST(Arbiter, FragmentationBlocksWideBand) {
  SpectrumArbiter arbiter(12);
  const auto a = arbiter.allocate(4);   // [0, 4)
  const auto b = arbiter.allocate(4);   // [4, 8)
  const auto c = arbiter.allocate(4);   // [8, 12)
  ASSERT_TRUE(a && b && c);
  arbiter.release(*a);
  arbiter.release(*c);
  // 8 wavelengths free, but the widest contiguous run is 4.
  EXPECT_EQ(arbiter.free_total(), 8u);
  EXPECT_EQ(arbiter.largest_free_block(), 4u);
  EXPECT_FALSE(arbiter.allocate(6));
  const auto d = arbiter.allocate(4);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->base, 0u);  // first fit reuses the low gap
}

TEST(Arbiter, ReleaseMergesAdjacentGaps) {
  SpectrumArbiter arbiter(12);
  const auto a = arbiter.allocate(4);
  const auto b = arbiter.allocate(4);
  ASSERT_TRUE(a && b);
  arbiter.release(*a);
  arbiter.release(*b);
  EXPECT_EQ(arbiter.largest_free_block(), 12u);
  const auto wide = arbiter.allocate(12);
  ASSERT_TRUE(wide);
  EXPECT_EQ(wide->base, 0u);
}

TEST(ArbiterResize, GrowClaimsAdjacentFreeSpectrum) {
  SpectrumArbiter arbiter(16);
  const auto a = arbiter.allocate(4);  // [0, 4)
  const auto b = arbiter.allocate(4);  // [4, 8)
  ASSERT_TRUE(a && b);
  // Nothing free next to a while b holds [4, 8).
  EXPECT_EQ(arbiter.grow(*a, 8), *a);
  arbiter.release(*b);
  const WavelengthBand grown = arbiter.grow(*a, 8);
  EXPECT_EQ(grown.base, 0u);
  EXPECT_EQ(grown.width, 8u);
  EXPECT_EQ(arbiter.free_total(), 8u);
  // The grown band releases as one unit.
  arbiter.release(grown);
  EXPECT_EQ(arbiter.free_total(), 16u);
  EXPECT_EQ(arbiter.bands_outstanding(), 0u);
}

TEST(ArbiterResize, GrowExtendsDownwardWhenUpwardIsBlocked) {
  SpectrumArbiter arbiter(16);
  const auto low = arbiter.allocate(4);   // [0, 4)
  const auto mid = arbiter.allocate(4);   // [4, 8)
  const auto top = arbiter.allocate(8);   // [8, 16)
  ASSERT_TRUE(low && mid && top);
  arbiter.release(*low);
  const WavelengthBand grown = arbiter.grow(*mid, 6);
  EXPECT_EQ(grown.base, 2u);
  EXPECT_EQ(grown.width, 6u);
}

TEST(ArbiterResize, ShrinkReturnsOuterWavelengths) {
  SpectrumArbiter arbiter(16);
  const auto band = arbiter.allocate(12);  // [0, 12)
  ASSERT_TRUE(band);
  const WavelengthBand keep{band->base, 4};
  arbiter.shrink_to(*band, keep);
  EXPECT_EQ(arbiter.free_total(), 12u);
  // The freed run is immediately allocatable.
  const auto next = arbiter.allocate(8);
  ASSERT_TRUE(next);
  EXPECT_EQ(next->base, 4u);
  arbiter.release(keep);
  arbiter.release(*next);
  EXPECT_EQ(arbiter.free_total(), 16u);
}

TEST(ArbiterResize, WhatIfProbeSeesMergedRun) {
  SpectrumArbiter arbiter(16);
  const auto a = arbiter.allocate(8);   // [0, 8)
  const auto b = arbiter.allocate(8);   // [8, 16)
  ASSERT_TRUE(a && b);
  arbiter.release(*b);
  // Freeing the top half of a would merge with [8, 16) into a 12-run.
  EXPECT_EQ(arbiter.largest_free_block(), 8u);
  EXPECT_EQ(arbiter.largest_free_block_assuming(WavelengthBand{4, 4}), 12u);
  // The probe must not mutate anything.
  EXPECT_EQ(arbiter.largest_free_block(), 8u);
  EXPECT_EQ(arbiter.free_total(), 8u);
}

TEST(ArbiterDeath, DoubleReleaseAborts) {
  SpectrumArbiter arbiter(8);
  const auto a = arbiter.allocate(4);
  ASSERT_TRUE(a);
  arbiter.release(*a);
  EXPECT_DEATH(arbiter.release(*a), "double release");
}

}  // namespace
}  // namespace wrht::runtime
