// Tests for tools/simlint: every rule fires exactly once on its fixture,
// near-misses stay quiet, path scoping and exemptions hold, and the waiver
// machinery (valid / malformed / unknown / stale) behaves as documented.
//
// Fixtures live in tests/simlint_fixtures/ and are linted from disk under a
// chosen *logical* path, so src/-scoped rules can be exercised without the
// fixtures living in src/.  WRHT_REPO_ROOT / WRHT_SIMLINT_FIXTURE_DIR are
// injected by the build so the test is location-independent.
#include "simlint/simlint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using wrht::simlint::Finding;
using wrht::simlint::Linter;

std::string fixture(const std::string& name) {
  return std::string(WRHT_SIMLINT_FIXTURE_DIR) + "/" + name;
}

Linter make_linter() { return Linter(WRHT_REPO_ROOT); }

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& logical_path) {
  Linter linter = make_linter();
  return linter.lint_file(fixture(name), logical_path);
}

TEST(SimlintRules, EveryRuleHasANameAndSummary) {
  const auto& rules = Linter::rules();
  ASSERT_GE(rules.size(), 6u);
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.summary.empty());
  }
  auto has = [&](const std::string& name) {
    for (const auto& rule : rules) {
      if (rule.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("wallclock"));
  EXPECT_TRUE(has("ambient-rng"));
  EXPECT_TRUE(has("unordered-iter"));
  EXPECT_TRUE(has("float-eq"));
  EXPECT_TRUE(has("assert-abort"));
  EXPECT_TRUE(has("printf-output"));
  EXPECT_TRUE(has("bad-waiver"));
  EXPECT_TRUE(has("stale-waiver"));
}

// -- one fixture per rule, firing exactly once ------------------------------

TEST(SimlintFixtures, WallclockFiresOnce) {
  const auto findings = lint_fixture("wallclock.cpp", "examples/fixture.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wallclock");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_FALSE(findings[0].waived);
}

TEST(SimlintFixtures, AmbientRngFiresOnce) {
  const auto findings = lint_fixture("ambient_rng.cpp", "bench/fixture.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ambient-rng");
  EXPECT_EQ(findings[0].line, 6);
}

TEST(SimlintFixtures, UnorderedIterFiresOnceInOrderedOutputTu) {
  const auto findings =
      lint_fixture("unordered_iter.cpp", "src/fixture/unordered_iter.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 10);
}

TEST(SimlintFixtures, UnorderedContainerOutsideOrderedOutputTuIsFine) {
  const auto findings =
      lint_fixture("unordered_ok.cpp", "src/fixture/unordered_ok.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(SimlintFixtures, FloatEqFiresOnce) {
  const auto findings =
      lint_fixture("float_eq.cpp", "src/fixture/float_eq.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "float-eq");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(SimlintFixtures, AssertAbortFiresOnceUnderSrc) {
  const auto findings =
      lint_fixture("assert_abort.cpp", "src/fixture/assert_abort.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "assert-abort");
  EXPECT_EQ(findings[0].line, 9);
}

TEST(SimlintFixtures, PrintfOutputFiresOnceUnderSrc) {
  const auto findings =
      lint_fixture("printf_output.cpp", "src/fixture/printf_output.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "printf-output");
  EXPECT_EQ(findings[0].line, 9);
}

TEST(SimlintFixtures, CleanFixtureHasNoFindings) {
  const auto findings = lint_fixture("clean.cpp", "src/fixture/clean.cpp");
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected findings, "
                                << "first: "
                                << (findings.empty() ? std::string()
                                                     : findings[0].rule);
}

// -- path scoping and exemptions --------------------------------------------

TEST(SimlintScoping, SrcOnlyRulesIgnoreBenchAndExamples) {
  EXPECT_TRUE(lint_fixture("assert_abort.cpp", "bench/fixture.cpp").empty());
  EXPECT_TRUE(
      lint_fixture("printf_output.cpp", "examples/fixture.cpp").empty());
}

TEST(SimlintScoping, HarnessAndLoggingMayPrint) {
  EXPECT_TRUE(
      lint_fixture("printf_output.cpp", "src/harness/fixture.cpp").empty());
  EXPECT_TRUE(
      lint_fixture("printf_output.cpp", "src/util/logging_extra.cpp").empty());
}

TEST(SimlintScoping, RandomHeaderMaySpellEngines) {
  Linter linter = make_linter();
  const auto findings = linter.lint_text(
      "inline unsigned f() { std::mt19937 g(1); return g(); }\n",
      "src/util/random.hpp");
  EXPECT_TRUE(findings.empty());
}

TEST(SimlintScoping, MathTuMayCompareFloatsExactly) {
  Linter linter = make_linter();
  const auto findings = linter.lint_text(
      "bool approx(double a) { return a == 0.0; }\n", "src/util/math.cpp");
  EXPECT_TRUE(findings.empty());
}

// -- waivers ----------------------------------------------------------------

TEST(SimlintWaivers, ValidMalformedUnknownAndStale) {
  const auto findings = lint_fixture("waiver.cpp", "src/fixture/waiver.cpp");
  ASSERT_EQ(findings.size(), 4u);

  EXPECT_EQ(findings[0].rule, "printf-output");
  EXPECT_EQ(findings[0].line, 11);
  EXPECT_TRUE(findings[0].waived);
  EXPECT_EQ(findings[0].waiver_reason,
            "fixture exercising a valid waiver");

  EXPECT_EQ(findings[1].rule, "bad-waiver");
  EXPECT_EQ(findings[1].line, 14);
  EXPECT_FALSE(findings[1].waived);

  EXPECT_EQ(findings[2].rule, "bad-waiver");
  EXPECT_EQ(findings[2].line, 17);

  EXPECT_EQ(findings[3].rule, "stale-waiver");
  EXPECT_EQ(findings[3].line, 20);
}

TEST(SimlintWaivers, TrailingWaiverCoversItsOwnLine) {
  Linter linter = make_linter();
  const auto findings = linter.lint_text(
      "void f() {\n"
      "  std::printf(\"x\");  // simlint-allow(printf-output): trailing\n"
      "}\n",
      "src/fixture/trailing.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].waived);
  EXPECT_EQ(findings[0].waiver_reason, "trailing");
}

// -- errors -----------------------------------------------------------------

TEST(SimlintErrors, MissingFileIsAnIoErrorFinding) {
  Linter linter = make_linter();
  const auto findings =
      linter.lint_file(fixture("does_not_exist.cpp"), "src/missing.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
  EXPECT_FALSE(findings[0].waived);
}

}  // namespace
