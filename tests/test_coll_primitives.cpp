// Correctness of every collective primitive against its oracle, across node
// counts (powers of two and awkward sizes) and root placements.
#include "coll/primitives.hpp"

#include <gtest/gtest.h>

#include "coll/executor.hpp"
#include "coll/oracle.hpp"
#include "coll/validation.hpp"
#include "util/math.hpp"

namespace wrht::coll {
namespace {

constexpr std::size_t kPayload = 60;

class RootedPrimitives
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, NodeId>> {
 protected:
  std::uint32_t nodes() const { return std::get<0>(GetParam()); }
  NodeId root() const { return std::get<1>(GetParam()) % nodes(); }
};

TEST_P(RootedPrimitives, BroadcastBinomial) {
  const Schedule schedule = broadcast_binomial(nodes(), root());
  const OracleResult result =
      Oracle::verify_broadcast(schedule, root(), kPayload);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(validate(schedule).ok());
}

TEST_P(RootedPrimitives, BroadcastRingPipelined) {
  const Schedule schedule = broadcast_ring_pipelined(nodes(), root());
  const OracleResult result =
      Oracle::verify_broadcast(schedule, root(), kPayload);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(validate(schedule).ok());
}

TEST_P(RootedPrimitives, ReduceBinomial) {
  const Schedule schedule = reduce_binomial(nodes(), root());
  const OracleResult result =
      Oracle::verify_reduce(schedule, root(), kPayload);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_P(RootedPrimitives, ScatterBinomial) {
  const Schedule schedule = scatter_binomial(nodes(), root());
  const OracleResult result =
      Oracle::verify_scatter(schedule, root(), kPayload);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(validate(schedule).ok());
}

TEST_P(RootedPrimitives, GatherBinomial) {
  const Schedule schedule = gather_binomial(nodes(), root());
  const OracleResult result =
      Oracle::verify_gather(schedule, root(), kPayload);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(validate(schedule).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RootedPrimitives,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 7u, 8u, 12u, 16u,
                                         17u, 30u, 32u, 33u),
                       ::testing::Values(0u, 1u, 5u, 31u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_root" +
             std::to_string(std::get<1>(param_info.param));
    });

class RootlessPrimitives : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  // N-chunk schedules need at least N payload elements.
  std::size_t payload() const {
    return std::max<std::size_t>(kPayload, GetParam());
  }
};

TEST_P(RootlessPrimitives, AllgatherRing) {
  const Schedule schedule = allgather_ring(GetParam());
  const OracleResult result = Oracle::verify_allgather(schedule, payload());
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(validate(schedule).ok());
}

TEST_P(RootlessPrimitives, AllgatherBruck) {
  const Schedule schedule = allgather_bruck(GetParam());
  const OracleResult result = Oracle::verify_allgather(schedule, payload());
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(validate(schedule).ok());
}

TEST_P(RootlessPrimitives, ReduceScatterRing) {
  const Schedule schedule = reduce_scatter_ring(GetParam());
  const OracleResult result =
      Oracle::verify_reduce_scatter(schedule, payload());
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(validate(schedule).ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RootlessPrimitives,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 8u, 12u, 16u,
                                           17u, 30u, 32u, 33u, 64u));

TEST(PrimitiveShapes, StepCounts) {
  EXPECT_EQ(broadcast_binomial(16, 0).num_steps(), 4u);
  EXPECT_EQ(broadcast_binomial(17, 3).num_steps(), 5u);
  EXPECT_EQ(reduce_binomial(16, 5).num_steps(), 4u);
  EXPECT_EQ(scatter_binomial(16, 0).num_steps(), 4u);
  EXPECT_EQ(gather_binomial(16, 0).num_steps(), 4u);
  EXPECT_EQ(allgather_ring(16).num_steps(), 15u);
  EXPECT_EQ(allgather_bruck(16).num_steps(), 4u);
  EXPECT_EQ(allgather_bruck(17).num_steps(), 5u);
  EXPECT_EQ(reduce_scatter_ring(16).num_steps(), 15u);
  EXPECT_EQ(broadcast_ring_pipelined(16, 0).num_steps(), 30u);
}

TEST(PrimitiveShapes, PipelinedBroadcastBandwidthOptimal) {
  // The pipelined ring broadcast moves (2N - 3 + 1) chunks per link at most:
  // total traffic is D (N - 1), same as a flat broadcast, but the busiest
  // node per step carries only D/N.
  const std::uint32_t n = 8;
  const util::Bytes payload(8000);
  const Schedule pipelined = broadcast_ring_pipelined(n, 0);
  const Schedule flat = broadcast_binomial(n, 0);
  EXPECT_EQ(pipelined.total_traffic(payload).count(),
            flat.total_traffic(payload).count());
  EXPECT_EQ(step_bottleneck_bytes(pipelined, n / 2, payload).count(), 1000u);
  EXPECT_EQ(step_bottleneck_bytes(flat, 0, payload).count(), 8000u);
}

TEST(PrimitiveShapes, ScatterTrafficLogFactor) {
  // Binomial scatter moves each chunk along a tree path: total traffic for
  // N = 8 is 8 + ... = sum over rounds of (range sizes) = N/2 * log N chunks.
  const std::uint32_t n = 8;
  const util::Bytes payload(8000);
  const Schedule schedule = scatter_binomial(n, 0);
  // Rounds move 4, 4, 4 chunks of 1000 B (ranges [4,8), [2,4)+[6,8), odds).
  EXPECT_EQ(schedule.total_traffic(payload).count(), 12'000u);
}

TEST(PrimitiveShapes, BruckMovesFewerStepsThanRing) {
  const std::uint32_t n = 64;
  EXPECT_LT(allgather_bruck(n).num_steps(), allgather_ring(n).num_steps());
  // Same total traffic: every chunk still visits every node once.
  const util::Bytes payload(64'000);
  EXPECT_EQ(allgather_bruck(n).total_traffic(payload).count(),
            allgather_ring(n).total_traffic(payload).count());
}

TEST(PrimitiveComposition, ReduceScatterPlusAllgatherIsAllReduce) {
  // The textbook identity behind ring all-reduce, checked functionally:
  // concatenating the two schedules yields a correct all-reduce.
  const std::uint32_t n = 12;
  const Schedule rs = reduce_scatter_ring(n);
  const Schedule ag = allgather_ring(n);
  Schedule combined("rs_plus_ag", n, n);
  for (const Step& step : rs.steps()) {
    combined.add_step();
    for (const Transfer& t : step.transfers) combined.add_transfer(t);
  }
  for (const Step& step : ag.steps()) {
    combined.add_step();
    for (const Transfer& t : step.transfers) combined.add_transfer(t);
  }
  EXPECT_TRUE(FunctionalExecutor::verify_allreduce(combined, 48));
}

TEST(PrimitiveComposition, ReducePlusBroadcastIsAllReduce) {
  const std::uint32_t n = 9;
  const NodeId root = 4;
  const Schedule reduce = reduce_binomial(n, root);
  const Schedule bcast = broadcast_binomial(n, root);
  Schedule combined("reduce_plus_bcast", n, 1);
  for (const Step& step : reduce.steps()) {
    combined.add_step();
    for (const Transfer& t : step.transfers) combined.add_transfer(t);
  }
  for (const Step& step : bcast.steps()) {
    combined.add_step();
    for (const Transfer& t : step.transfers) combined.add_transfer(t);
  }
  EXPECT_TRUE(FunctionalExecutor::verify_allreduce(combined, 18));
}

}  // namespace
}  // namespace wrht::coll
