// Randomized runtime stress harness: a seeded generator drives hundreds of
// jobs through the full feature space of the multi-tenant runtime — both
// fairness extremes, priority preemption, elastic resize, batching with
// fuse windows, hybrid placement, substrate pinning, and both electrical
// fabrics (exclusive star and the shared oversubscribed two-level tree) —
// and then audits GLOBAL invariants over the whole run:
//
//  * every submitted job terminates (kDone or kRejected) and the report's
//    counters reconcile (per-substrate breakdowns sum to the totals);
//  * every completion was proven by the functional all-reduce oracle, and
//    on the shared fabric every step time was re-proven by the
//    whole-horizon flow replay (the runtime aborts on either failing, so a
//    returned report is itself the verdict — the counts assert they ran);
//  * a time-ordered sweep of the trace re-checks the spectrum contract
//    after EVERY event: the wavelength bands of concurrently-running
//    optical jobs are pairwise disjoint at every instant (cells never
//    double-claimed), job lifecycles are well-formed, and no job is both
//    preempted and completed at the same timestamp.
//
// Setting WRHT_STRESS_CHAOS=1 adds a chaos axis over the SAME fixed seeds:
// a per-seed FaultInjector rides the run (all four failure domains, repairs
// enabled so suspended work can always resume) and the audits extend to the
// fail/migrate lifecycles — kJobMigrate re-claims spectrum in the band
// sweep, kJobKilled is terminal, the job ledger closes through killed_jobs,
// and MTTR/goodput reconcile with the fault counters.
//
// Seeds are FIXED so a failure reproduces bit-for-bit: the runtime is
// deterministic for a given submission set, and the generator is the
// repo's own xoshiro Rng.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace_export.hpp"
#include "runtime/runtime.hpp"
#include "util/random.hpp"

namespace wrht::runtime {
namespace {

constexpr std::uint32_t kRingSize = 32;

/// The chaos axis: WRHT_STRESS_CHAOS=1 injects seeded faults into every
/// stress seed (0 / unset keeps the fault-free legs byte-identical to
/// before the axis existed).
bool chaos_enabled() {
  const char* env = std::getenv("WRHT_STRESS_CHAOS");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

/// Per-seed chaos load: every failure domain enabled, MTBFs tight enough
/// that a run sees real churn, repairs ALWAYS on — permanent faults plus a
/// drained-clock liveness check would deadlock suspended work that waits
/// for capacity that never returns.
FaultInjectorConfig chaos_for_seed(std::uint64_t seed,
                                   const RuntimeConfig& config) {
  FaultInjectorConfig fc;
  fc.seed = seed ^ 0xC4A05ULL;
  fc.horizon = util::milliseconds(60.0);
  fc.transceiver_mtbf = util::milliseconds(8.0);
  fc.node_mtbf = util::milliseconds(12.0);
  fc.tor_mtbf = util::milliseconds(20.0);
  fc.wavelength_mtbf = util::milliseconds(10.0);
  fc.mttr = util::milliseconds(2.0);
  fc.ring_size = config.ring_size;
  fc.num_wavelengths = config.optical.wdm.num_wavelengths;
  const std::uint32_t hpt = std::max(1u, config.electrical.hosts_per_tor);
  fc.num_tors = (config.ring_size + hpt - 1) / hpt;
  return fc;
}

RuntimeConfig config_for_seed(util::Rng& rng) {
  RuntimeConfig config;
  config.ring_size = kRingSize;
  config.optical.wdm.num_wavelengths = 16;
  config.policy = static_cast<FairnessPolicy>(rng.next_below(4));
  config.placement = static_cast<HybridPlacementPolicy>(rng.next_below(3));
  config.elastic_resize = rng.next_below(2) == 1;
  config.batcher.enabled = rng.next_below(4) != 0;
  if (config.batcher.enabled && rng.next_below(2) == 1) {
    config.batcher.fuse_window = util::microseconds(200.0);
  }
  if (config.placement != HybridPlacementPolicy::kOpticalOnly &&
      rng.next_below(2) == 1) {
    config.electrical.fabric = ElectricalFabric::kTwoLevelShared;
    config.electrical.hosts_per_tor = rng.next_below(2) == 0 ? 8u : 16u;
    config.electrical.oversubscription =
        static_cast<double>(1u << rng.next_below(3));  // 1, 2, or 4
  }
  return config;
}

JobSpec job_for_seed(util::Rng& rng) {
  JobSpec spec;
  // Mostly contiguous spans from a few alignments (so fusion actually
  // happens), sometimes a sparse random subset.
  if (rng.next_below(4) != 0) {
    const std::uint32_t len = rng.next_below(2) == 0 ? 4u : 8u;
    const std::uint32_t start =
        static_cast<std::uint32_t>(rng.next_below(4)) * 8u;
    for (std::uint32_t i = 0; i < len; ++i) {
      spec.participants.push_back((start + i) % kRingSize);
    }
  } else {
    const std::uint32_t len = 2 + static_cast<std::uint32_t>(rng.next_below(9));
    std::vector<topo::NodeId> pool(kRingSize);
    for (std::uint32_t i = 0; i < kRingSize; ++i) pool[i] = i;
    for (std::uint32_t i = 0; i < len; ++i) {
      const std::size_t pick = rng.next_below(pool.size() - i) + i;
      std::swap(pool[i], pool[pick]);
      spec.participants.push_back(pool[i]);
    }
    std::sort(spec.participants.begin(), spec.participants.end());
  }
  spec.payload = util::Bytes(64'000 + rng.next_below(16'000'000));
  spec.arrival = util::microseconds(static_cast<double>(rng.next_below(20'000)));
  spec.min_wavelengths = 1 + static_cast<std::uint32_t>(rng.next_below(2));
  spec.requested_wavelengths =
      rng.next_below(3) == 0
          ? 0u
          : spec.min_wavelengths + static_cast<std::uint32_t>(rng.next_below(6));
  spec.weight = 0.5 + rng.next_double() * 3.5;
  spec.priority = static_cast<std::int32_t>(rng.next_below(6)) - 2;
  const std::uint64_t pin_dice = rng.next_below(20);
  if (pin_dice < 3) {
    spec.pin = SubstratePin::kOpticalOnly;
  } else if (pin_dice < 6) {
    // Under kOpticalOnly placement this is an EXPECTED rejection — the
    // submit-side error path is part of the surface under stress.
    spec.pin = SubstratePin::kElectricalOnly;
  }
  // ~5% deliberately malformed specs: the reject path must hold under
  // pressure too, without disturbing any other tenant.
  if (rng.next_below(20) == 0) {
    switch (rng.next_below(3)) {
      case 0:
        spec.participants.resize(1);
        break;
      case 1:
        spec.min_wavelengths = 0;
        break;
      default:
        spec.min_wavelengths = 1000;
        break;
    }
  }
  return spec;
}

struct BandInterval {
  std::uint32_t base = 0;
  std::uint32_t width = 0;
};

std::uint32_t parse_width(const std::string& detail) {
  const std::string prefix = "width=";
  const std::size_t at = detail.find(prefix);
  EXPECT_NE(at, std::string::npos) << "band event without width: " << detail;
  return static_cast<std::uint32_t>(
      std::stoul(detail.substr(at + prefix.size())));
}

/// Sweep the trace in order, re-checking the spectrum contract after every
/// event: bands of running optical jobs stay pairwise disjoint, lifecycles
/// are admit -> (preempt -> resume)* -> complete, and no job is preempted
/// and completed at the same instant.
void audit_trace(const CollectiveRuntime& rt, const sim::Trace& trace) {
  std::map<JobId, BandInterval> running_optical;
  std::map<JobId, util::Seconds> last_preempt;
  std::map<JobId, std::uint32_t> preempt_counts;
  util::Seconds clock{0.0};
  for (const sim::TraceEvent& event : trace.events()) {
    EXPECT_GE(event.time, clock) << "trace must be time-ordered";
    clock = std::max(clock, event.time);
    const auto job = static_cast<JobId>(event.a);
    switch (event.kind) {
      case sim::TraceKind::kJobPlaceOptical:
        running_optical[job] = BandInterval{
            static_cast<std::uint32_t>(event.b), parse_width(event.detail)};
        break;
      case sim::TraceKind::kJobResume:
        // A resumed OPTICAL job re-claims a band; a resumed ELECTRICAL job
        // records the invalid {0, 0} band (width 0, skipped by the span
        // check below) — host claims are not spectrum.
        running_optical[job] = BandInterval{
            static_cast<std::uint32_t>(event.b), parse_width(event.detail)};
        break;
      case sim::TraceKind::kJobResize:
        ASSERT_TRUE(running_optical.count(job))
            << "resize of a job not running optically";
        running_optical[job] = BandInterval{
            static_cast<std::uint32_t>(event.b), parse_width(event.detail)};
        break;
      case sim::TraceKind::kJobMigrate:
        // Cross-substrate migration: the tenant restarts on the optical
        // ring and claims the band the event carries — from here on it is
        // part of the spectrum-disjointness sweep.
        running_optical[job] = BandInterval{
            static_cast<std::uint32_t>(event.b), parse_width(event.detail)};
        break;
      case sim::TraceKind::kJobPreempt:
        running_optical.erase(job);
        last_preempt[job] = event.time;
        ++preempt_counts[job];
        break;
      case sim::TraceKind::kJobKilled:
        // Terminal, like complete: the band is surrendered and the job
        // must never appear again.
        running_optical.erase(job);
        EXPECT_EQ(rt.record(job).state, JobState::kFailed)
            << "kJobKilled for a job not recorded kFailed";
        break;
      case sim::TraceKind::kJobComplete:
        if (last_preempt.count(job)) {
          EXPECT_NE(last_preempt[job], event.time)
              << "job " << job
              << " both preempted and completed at the same timestamp";
        }
        running_optical.erase(job);
        break;
      default:
        break;
    }
    // THE spectrum invariant, re-checked after every event: no wavelength
    // cell is claimed by two running optical jobs at the same instant.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
    for (const auto& [id, band] : running_optical) {
      if (band.width == 0) continue;
      spans.emplace_back(band.base, band.base + band.width);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].second, spans[i].first)
          << "overlapping bands at t=" << event.time.value();
    }
  }
  for (const auto& [job, count] : preempt_counts) {
    EXPECT_EQ(rt.record(job).preemptions, count)
        << "preemption record drifted from the trace for job " << job;
  }
}

void audit_report(const CollectiveRuntime& rt, const RuntimeReport& report,
                  const RuntimeConfig& config, std::uint32_t submitted) {
  EXPECT_EQ(report.submitted, submitted);
  // The ledger closes through killed_jobs under chaos (killed_jobs is 0
  // without a fault stream, so this is the old identity then).
  EXPECT_EQ(report.completed + report.rejected + report.faults.killed_jobs,
            report.submitted);
  EXPECT_EQ(report.oracle_failures, 0u);

  // Fault accounting reconciles: per-domain counts sum to the injections,
  // MTTR only exists when recoveries happened, and goodput is the wasted
  // share subtracted from 1 — never negative, 1.0 exactly when nothing was
  // thrown away.
  EXPECT_EQ(report.faults.transceiver_faults + report.faults.node_faults +
                report.faults.tor_faults + report.faults.wavelength_faults,
            report.faults.injected);
  EXPECT_LE(report.faults.recoveries, report.faults.disrupted_executions);
  EXPECT_GE(report.faults.mttr(), util::Seconds(0.0));
  EXPECT_GE(report.goodput(), 0.0);
  EXPECT_LE(report.goodput(), 1.0);
  if (report.faults.wasted_step_time > util::Seconds(0.0)) {
    EXPECT_LT(report.goodput(), 1.0);
  }
  if (report.faults.injected == 0) {
    EXPECT_EQ(report.faults.killed_jobs, 0u);
    EXPECT_EQ(report.faults.wasted_step_time, util::Seconds(0.0));
    EXPECT_EQ(report.goodput(), 1.0);
  }

  // Per-substrate breakdowns must sum to the totals.
  EXPECT_EQ(report.optical.jobs + report.electrical.jobs, report.completed);
  EXPECT_EQ(report.optical.executions + report.electrical.executions,
            report.executions);
  EXPECT_EQ(report.optical.steps + report.electrical.steps,
            report.total_steps);
  EXPECT_EQ(std::max(report.optical.makespan, report.electrical.makespan),
            report.makespan);

  // The shared fabric re-proved every one of its steps via the
  // whole-horizon flow replay; the star has nothing to replay.
  if (config.electrical.fabric == ElectricalFabric::kTwoLevelShared) {
    EXPECT_EQ(report.replay_checked_steps, report.electrical.steps);
  } else {
    EXPECT_EQ(report.replay_checked_steps, 0u);
    EXPECT_EQ(report.step_retimes, 0u);
  }

  util::Seconds last_completion{0.0};
  util::Seconds turnaround_sum{0.0};
  std::uint32_t failed_jobs = 0;
  for (JobId id = 0; id < rt.num_jobs(); ++id) {
    const JobRecord& record = rt.record(id);
    // Every job terminates, one way or the other — done, rejected, or
    // (under chaos) failed when its quorum died.
    ASSERT_TRUE(record.state == JobState::kDone ||
                record.state == JobState::kRejected ||
                record.state == JobState::kFailed)
        << "job " << id << " ended in state "
        << job_state_name(record.state);
    if (record.state == JobState::kRejected) {
      EXPECT_FALSE(record.reject_reason.empty());
      continue;
    }
    if (record.state == JobState::kFailed) {
      ++failed_jobs;
      continue;
    }
    // Every completion was oracle-proven, obeys causality, and honors its
    // pin.
    EXPECT_TRUE(record.oracle_ok) << "job " << id;
    EXPECT_GE(record.admitted, record.spec.arrival);
    EXPECT_GE(record.completed, record.admitted);
    last_completion = std::max(last_completion, record.completed);
    turnaround_sum += record.turnaround();
    if (record.spec.pin == SubstratePin::kOpticalOnly) {
      EXPECT_EQ(record.substrate, SubstrateKind::kOptical);
    }
    if (record.spec.pin == SubstratePin::kElectricalOnly) {
      EXPECT_EQ(record.substrate, SubstrateKind::kElectrical);
    }
    if (record.substrate == SubstrateKind::kElectrical) {
      // Electrical tenants are preemptible (suspend at a BSP boundary,
      // resume on whatever hosts are free), but only an electrically
      // PINNED waiter or a suspended electrical execution may evict them —
      // unless a fault forced the suspension, which happens under any
      // policy (indistinguishable per record, so gate on the run total).
      if (record.preemptions > 0 && report.faults.fault_preemptions == 0) {
        EXPECT_EQ(config.policy, FairnessPolicy::kPriorityPreempt);
      }
      // Contention slowdown has a quiet denominator: >= 1 up to fluid
      // rounding.
      EXPECT_GE(record.contention_slowdown, 1.0 - 1e-9);
    } else {
      EXPECT_EQ(record.contention_slowdown, 0.0);
    }
  }
  EXPECT_EQ(failed_jobs, report.faults.killed_jobs);
  EXPECT_EQ(report.makespan, last_completion);
  EXPECT_NEAR(report.total_turnaround.value(), turnaround_sum.value(),
              1e-9 * std::max(1.0, turnaround_sum.value()));
}

/// The observability layer under stress: the report's SLO block must equal
/// an independent recomputation from the records, the registry's counters
/// must reconcile with the report, and the per-priority max-wait gauges
/// must agree with the records (the starvation signal the fairness work
/// reads — surfaced per seed below).
void audit_slo(const CollectiveRuntime& rt, const RuntimeReport& report,
               const obs::MetricsRegistry& registry, std::uint64_t seed) {
  const obs::SloStats recomputed = obs::compute_slo(rt.records());
  EXPECT_EQ(report.slo.jobs, recomputed.jobs);
  EXPECT_EQ(report.slo.p50_turnaround, recomputed.p50_turnaround);
  EXPECT_EQ(report.slo.p99_turnaround, recomputed.p99_turnaround);
  EXPECT_EQ(report.slo.p999_turnaround, recomputed.p999_turnaround);
  EXPECT_EQ(report.slo.p50_slowdown, recomputed.p50_slowdown);
  EXPECT_EQ(report.slo.p999_slowdown, recomputed.p999_slowdown);
  EXPECT_EQ(report.slo.max_wait, recomputed.max_wait);
  EXPECT_EQ(report.slo.jobs, static_cast<std::uint64_t>(report.completed));

  EXPECT_EQ(registry.find_counter("runtime.jobs_submitted")->value(),
            report.submitted);
  EXPECT_EQ(registry.find_counter("runtime.jobs_completed")->value(),
            report.completed);
  EXPECT_EQ(registry.find_counter("runtime.jobs_rejected")->value(),
            report.rejected);
  EXPECT_EQ(registry.find_counter("runtime.preemptions")->value(),
            report.preemptions);
  EXPECT_EQ(registry.find_counter("runtime.faults_injected")->value(),
            report.faults.injected);
  EXPECT_EQ(registry.find_counter("runtime.fault_repairs")->value(),
            report.faults.repairs);
  EXPECT_EQ(registry.find_counter("runtime.fault_recoveries")->value(),
            report.faults.recoveries);
  EXPECT_EQ(registry.find_counter("runtime.jobs_killed")->value(),
            report.faults.killed_jobs);

  std::map<std::int32_t, double> expected_wait;
  for (JobId id = 0; id < rt.num_jobs(); ++id) {
    const JobRecord& record = rt.record(id);
    if (record.state != JobState::kDone) continue;
    double& wait = expected_wait[record.spec.priority];
    wait = std::max(wait, (record.admitted - record.spec.arrival).value());
  }
  std::string waits;
  for (const auto& [priority, wait] : expected_wait) {
    const obs::Gauge* gauge = registry.find_gauge(
        "runtime.max_wait_seconds.p" + std::to_string(priority));
    ASSERT_NE(gauge, nullptr) << "priority " << priority;
    EXPECT_DOUBLE_EQ(gauge->value(), wait) << "priority " << priority;
    if (!waits.empty()) waits += ' ';
    waits += 'p' + std::to_string(priority) + '=' +
             util::to_string(util::Seconds(wait));
  }
  std::printf("[seed %llu] max admission wait by priority: %s\n",
              static_cast<unsigned long long>(seed), waits.c_str());
}

/// Nightly trace artifact: WRHT_STRESS_TRACE_OUT=<path> exports the first
/// audited seed's Chrome trace (with its counter tracks) for Perfetto.
void maybe_export_trace(const CollectiveRuntime& rt,
                        const obs::MetricsRegistry& registry,
                        std::uint64_t seed) {
  static bool exported = false;
  const char* path = std::getenv("WRHT_STRESS_TRACE_OUT");
  if (exported || path == nullptr || *path == '\0') return;
  exported = true;
  ASSERT_TRUE(obs::write_chrome_trace(path, rt.trace(), rt.records(),
                                      &registry));
  std::printf("[seed %llu] trace exported to %s\n",
              static_cast<unsigned long long>(seed), path);
}

void run_stress_seed(std::uint64_t seed, std::uint32_t num_jobs,
                     std::uint32_t min_completed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  util::Rng rng(seed);
  obs::MetricsRegistry registry;
  RuntimeConfig config = config_for_seed(rng);
  config.metrics = &registry;
  SCOPED_TRACE(std::string("policy=") + fairness_policy_name(config.policy) +
               " placement=" +
               hybrid_placement_policy_name(config.placement) + " fabric=" +
               electrical_fabric_name(config.electrical.fabric) +
               " oversub=" +
               std::to_string(config.electrical.oversubscription));
  std::optional<FaultInjector> injector;
  if (chaos_enabled()) {
    injector.emplace(chaos_for_seed(seed, config));
    config.faults = &*injector;
  }
  CollectiveRuntime rt(config);
  rt.trace().enable();
  for (std::uint32_t j = 0; j < num_jobs; ++j) {
    rt.submit(job_for_seed(rng));
  }
  const RuntimeReport report = rt.run();
  if (chaos_enabled()) {
    EXPECT_GT(report.faults.injected, 0u)
        << "chaos leg injected nothing — horizon/MTBF drifted";
    std::printf(
        "[seed %llu] chaos: %u faults -> %u disruptions, %u evictions, %u "
        "restarts, %u migrations, %u killed; mttr %s goodput %.3f\n",
        static_cast<unsigned long long>(seed), report.faults.injected,
        report.faults.disrupted_executions, report.faults.evictions,
        report.faults.restarts, report.faults.migrations,
        report.faults.killed_jobs,
        util::to_string(report.faults.mttr()).c_str(), report.goodput());
  }
  // The mix must actually exercise the machinery, not degenerate into a
  // pile of rejections.  The caller picks the floor: the fixed per-PR
  // seeds are deterministic and known to clear 3/4, so they keep that
  // tight regression bound; arbitrary nightly seeds get 5/8, since the
  // generator's EXPECTED reject rate is ~20% (15% electrically-pinned
  // jobs are valid rejects under optical-only placement, 5% deliberately
  // malformed specs) and an unlucky-but-legal draw must not masquerade as
  // a runtime bug.
  EXPECT_GT(report.completed, min_completed);
  audit_report(rt, report, config, num_jobs);
  audit_trace(rt, rt.trace());
  audit_slo(rt, report, registry, seed);
  maybe_export_trace(rt, registry, seed);
}

class RuntimeStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeStress, InvariantsHoldOnRandomizedMix) {
  // Chaos legs kill jobs and waste steps by design, so the completion floor
  // relaxes to half; fault-free legs keep the tight 3/4 regression bound.
  run_stress_seed(GetParam(), 200,
                  /*min_completed=*/chaos_enabled() ? 200 / 2 : 200 * 3 / 4);
}

// Fixed seeds, fixed job counts: every CI failure names its seed and
// replays deterministically.  The set was picked to cover the whole config
// lattice: all four fairness policies, all three placements (0 and 7 land
// on cost-model-choice), both electrical fabrics (0 and 3 run the shared
// two-level tree), elastic resize, and fuse-window batching.
INSTANTIATE_TEST_SUITE_P(FixedSeeds, RuntimeStress,
                         ::testing::Values(0ull, 0xC0FFEEull, 1ull, 2ull,
                                           3ull, 7ull, 42ull, 20260730ull));

TEST(RuntimeStress, ExtraSeedsFromEnvironment) {
  // The nightly workflow widens the sweep without forking the test file:
  // WRHT_STRESS_EXTRA_SEEDS=<n> runs n additional seeds.  The base is
  // WRHT_STRESS_SEED_BASE when set (nightly passes its run id, so each
  // night genuinely rolls fresh seeds instead of re-proving the same 64
  // forever) and a fixed offset far from the per-PR set otherwise.  A
  // failure prints the exact seed, which replays deterministically:
  //   WRHT_STRESS_EXTRA_SEEDS=1 WRHT_STRESS_SEED_BASE=<seed> ...
  // Unset or 0 skips — the per-PR legs stay fast.
  const char* env = std::getenv("WRHT_STRESS_EXTRA_SEEDS");
  const unsigned long extra = env != nullptr ? std::strtoul(env, nullptr, 10)
                                             : 0ul;
  if (extra == 0) {
    GTEST_SKIP() << "set WRHT_STRESS_EXTRA_SEEDS=<n> to widen the sweep";
  }
  const char* base_env = std::getenv("WRHT_STRESS_SEED_BASE");
  const std::uint64_t base = base_env != nullptr
                                 ? std::strtoull(base_env, nullptr, 10)
                                 : 1ull;
  for (unsigned long i = 0; i < extra; ++i) {
    // Golden-ratio stride, not +1: consecutive nightly run ids differ by
    // far less than 64, so unit-stride windows would mostly re-test the
    // previous night's seeds.  i=0 is the bare base, so replaying a
    // printed seed needs no arithmetic.
    run_stress_seed(base + i * 0x9E3779B97F4A7C15ull, 200,
                    /*min_completed=*/chaos_enabled() ? 200 / 2
                                                      : 200 * 5 / 8);
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
}

TEST(PriorityAging, AgedWaiterIsAdmittedWithinAHardBound) {
  // Deterministic starvation scenario: a lone low-priority job (p=-2,
  // seq 0) against a stream of FRESH full-spectrum high-priority arrivals
  // (p=+2), spaced just under one service time so the ring never idles but
  // every admission boundary sees a young rival.  Without aging the fresh
  // +2 beats the stale -2 at every boundary and the low job waits out the
  // ENTIRE stream.  With aging_half_life=H its effective priority gains
  // one class per half-life of sim-clock wait: after 4H it ties the fresh
  // stream at +2 and wins the seq tie-break at the next boundary (the
  // rivals are young — their own boost is still zero).  That bounds the
  // admission wait — asserted against the runtime.max_wait_seconds.p<prio>
  // gauges the SLO layer publishes.  (A burst-submitted stream would NOT
  // starve anyone under aging-for-all: jobs that arrived together age
  // together, preserving relative order — the starvation aging breaks is
  // specifically old-vs-fresh.)
  //
  // 16 participants keep the full-spectrum minimum under the useful cap
  // (ceil(16^2/8) = 32 >= 16), so every job genuinely needs the whole ring.
  auto hot_job = [](std::uint32_t i, util::Seconds spacing) {
    JobSpec spec;
    for (std::uint32_t n = 0; n < 16; ++n) spec.participants.push_back(n);
    spec.payload = util::megabytes(1);
    spec.requested_wavelengths = 16;
    spec.min_wavelengths = 16;
    spec.priority = 2;
    spec.arrival = util::Seconds(spacing.value() * i);
    return spec;
  };

  // Self-calibrate the per-job service time S: one hot job, empty ring.
  util::Seconds service{0.0};
  {
    RuntimeConfig config;
    config.ring_size = kRingSize;
    config.optical.wdm.num_wavelengths = 16;
    config.placement = HybridPlacementPolicy::kOpticalOnly;
    config.batcher.enabled = false;
    CollectiveRuntime alone(config);
    alone.submit(hot_job(0, util::Seconds(0.0)));
    service = alone.run().makespan;
  }
  // 90% of S: a small backlog accrues, the ring never goes idle.
  const util::Seconds spacing = util::Seconds(service.value() * 0.9);

  auto low_priority_wait = [&](util::Seconds half_life) {
    obs::MetricsRegistry registry;
    RuntimeConfig config;
    config.ring_size = kRingSize;
    config.optical.wdm.num_wavelengths = 16;
    config.policy = FairnessPolicy::kPriorityPreempt;
    config.placement = HybridPlacementPolicy::kOpticalOnly;
    config.batcher.enabled = false;
    config.aging_half_life = half_life;
    config.metrics = &registry;
    CollectiveRuntime rt(config);

    JobSpec starved;
    for (std::uint32_t n = 16; n < 32; ++n) starved.participants.push_back(n);
    starved.payload = util::megabytes(1);
    starved.requested_wavelengths = 16;
    starved.min_wavelengths = 16;
    starved.priority = -2;
    // Lands AFTER the first hot job has grabbed the spectrum (but before
    // the rest of the stream) — an arrival at t=0 would be admitted onto
    // the still-empty ring before any high-priority rival shows up.
    starved.arrival = util::microseconds(5.0);
    rt.submit(starved);
    for (std::uint32_t i = 0; i < 40; ++i) rt.submit(hot_job(i, spacing));

    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed, 41u);
    const obs::Gauge* gauge =
        registry.find_gauge("runtime.max_wait_seconds.p-2");
    EXPECT_NE(gauge, nullptr);
    return gauge != nullptr ? gauge->value() : 0.0;
  };

  const util::Seconds half_life = util::milliseconds(1.0);
  const double starved_wait = low_priority_wait(util::Seconds(0.0));
  const double aged_wait = low_priority_wait(half_life);

  // THE hard bound: 5 half-lives to outrank the stream's running job, plus
  // one full service for the job holding the spectrum when the threshold
  // is crossed, plus one more of boundary slack.
  const double bound = 5.0 * half_life.value() + 2.0 * service.value();
  std::printf("[aging] p-2 max wait: unaged=%s aged=%s bound=%s\n",
              util::to_string(util::Seconds(starved_wait)).c_str(),
              util::to_string(util::Seconds(aged_wait)).c_str(),
              util::to_string(util::Seconds(bound)).c_str());
  EXPECT_LT(aged_wait, bound);
  // And the bound is the AGING's doing: without it the same job waits out
  // the whole stream, far past the bound.
  EXPECT_GT(starved_wait, bound);
  EXPECT_GT(starved_wait, 2.0 * aged_wait);
}

TEST(RuntimeStress, BackToBackSeedsAreIndependent) {
  // Two runs of the same seed in fresh runtimes agree event-for-event —
  // the reproducibility claim the fixed seeds depend on.
  auto completion_order = [](std::uint64_t seed) {
    util::Rng rng(seed);
    const RuntimeConfig config = config_for_seed(rng);
    CollectiveRuntime rt(config);
    for (std::uint32_t j = 0; j < 120; ++j) {
      rt.submit(job_for_seed(rng));
    }
    rt.run();
    return rt.completion_order();
  };
  EXPECT_EQ(completion_order(7ull), completion_order(7ull));
}

}  // namespace
}  // namespace wrht::runtime
