// The multi-tenant shared-fabric flow timer: one FlowNetwork timing every
// concurrent execution's in-flight step together.  Covers the contention
// mechanics (a tenant joining an oversubscribed uplink slows the tenants
// already on it, surfaced as retimings), the quiet-fabric degenerate cases
// (disjoint ToR-contained tenants neither contend nor retime each other
// materially), the whole-horizon replay oracle, rejected inputs, and the
// FlowNetwork seams it is built on (run_until, clone_live, per-link peaks).
#include "elec/shared_fabric.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "coll/algorithms.hpp"
#include "elec/schedule_runner.hpp"

namespace wrht::elec {
namespace {

using util::Bytes;
using util::Seconds;

ElectricalParams test_params() {
  ElectricalParams p;
  p.link_bandwidth = util::gBps(1.0);
  p.link_latency = util::microseconds(25.0);
  return p;
}

/// 8 hosts, 2 ToRs of 4, uplinks `oversub`x undersized.
ElectricalCluster two_tor_cluster(double oversub) {
  return *ElectricalCluster::two_level_tree(8, 4, oversub, test_params());
}

/// A one-step schedule sending `bytes`-sized full-payload transfers
/// src -> dst for each listed pair, in an 8-host id space.
coll::Schedule pair_schedule(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) {
  coll::Schedule schedule("pairs", 8, 1);
  schedule.add_step();
  for (const auto& [src, dst] : pairs) {
    schedule.add_transfer({src, dst, 0, coll::TransferOp::kReduce});
  }
  return schedule;
}

TEST(SharedFabric, SoloSessionMatchesQuietTimer) {
  // One tenant alone on the shared fabric is the quiet network: every step
  // must time exactly as the per-execution StepFlowTimer's quiet model.
  const ElectricalCluster cluster = two_tor_cluster(4.0);
  const coll::Schedule schedule = coll::ring_allreduce(8);
  const Bytes payload(8'000'000);

  StepFlowTimer quiet(cluster);
  SharedFabricTimer shared(cluster);
  const SharedFabricTimer::SessionId session = shared.open_session();
  Seconds clock{0.0};
  for (std::size_t s = 0; s < schedule.num_steps(); ++s) {
    const std::optional<Seconds> quiet_step =
        quiet.time_step(schedule, s, payload);
    const std::optional<Seconds> end =
        shared.begin_step(session, schedule, s, payload, clock);
    ASSERT_TRUE(quiet_step && end);
    EXPECT_NEAR((*end - clock).value(), quiet_step->value(),
                1e-12 * quiet_step->value())
        << "step " << s;
    clock = *end;
  }
  shared.close_session(session, clock);
  EXPECT_EQ(shared.verify_replay(), 0u);
  EXPECT_EQ(shared.active_sessions(), 0u);
}

TEST(SharedFabric, JoiningTenantRetimesTheTenantInFlight) {
  // Tenant A sends cross-ToR alone; halfway through, tenant B starts a
  // cross-ToR flow over the SAME oversubscribed uplink.  A's step must be
  // retimed to a later end, and the final timing must replay exactly.
  const ElectricalCluster cluster = two_tor_cluster(4.0);
  // Uplink carries 4 hosts / 4.0 oversubscription = 1 GB/s.
  SharedFabricTimer shared(cluster);
  const auto a = shared.open_session();
  const auto b = shared.open_session();

  const coll::Schedule cross_a = pair_schedule({{0, 4}});
  const coll::Schedule cross_b = pair_schedule({{1, 5}});
  const Bytes payload(1'000'000'000);  // 1 GB: ~1 s alone on the uplink

  const std::optional<Seconds> a_alone =
      shared.begin_step(a, cross_a, 0, payload, Seconds(0.0));
  ASSERT_TRUE(a_alone);
  EXPECT_NEAR(a_alone->value(), 1.0 + 100e-6, 1e-3);
  EXPECT_TRUE(shared.take_retimings().empty());

  const std::optional<Seconds> b_end =
      shared.begin_step(b, cross_b, 0, payload, Seconds(0.5));
  ASSERT_TRUE(b_end);
  const std::vector<SharedFabricTimer::Retiming> retimings =
      shared.take_retimings();
  ASSERT_EQ(retimings.size(), 1u);
  EXPECT_EQ(retimings[0].session, a);
  // A had ~0.5 GB left when B joined; the two flows then split the 1 GB/s
  // uplink, so A's remainder takes ~1 s instead of ~0.5 s.
  EXPECT_NEAR(retimings[0].end.value(), 1.5 + 100e-6, 1e-3);
  EXPECT_GT(retimings[0].end, *a_alone);
  // B carries its full 1 GB at the half rate until A drains (~1 s), then
  // the remaining ~0.5 GB at full rate: ~1.5 s of transfer.
  EXPECT_NEAR(b_end->value(), 0.5 + 1.5 + 100e-6, 1e-2);

  shared.close_session(a, retimings[0].end);
  shared.close_session(b, *b_end);
  EXPECT_EQ(shared.verify_replay(), 0u);

  // The saturated uplink peaked at full utilization; the idle ToR1->core
  // direction never carried these flows.
  const std::vector<double> peaks = shared.link_peak_utilization();
  EXPECT_NEAR(*std::max_element(peaks.begin(), peaks.end()), 1.0, 1e-9);
}

TEST(SharedFabric, DisjointTorContainedTenantsDoNotContend) {
  // Two tenants wholly inside different ToRs never share a link: each times
  // as if alone no matter the oversubscription, and the replay agrees.
  const ElectricalCluster cluster = two_tor_cluster(8.0);
  StepFlowTimer quiet(cluster);
  SharedFabricTimer shared(cluster);
  const auto a = shared.open_session();
  const auto b = shared.open_session();
  const coll::Schedule in_tor0 = pair_schedule({{0, 1}, {2, 3}});
  const coll::Schedule in_tor1 = pair_schedule({{4, 5}, {6, 7}});
  const Bytes payload(10'000'000);

  const std::optional<Seconds> a_end =
      shared.begin_step(a, in_tor0, 0, payload, Seconds(0.0));
  const std::optional<Seconds> b_end =
      shared.begin_step(b, in_tor1, 0, payload, Seconds(0.0));
  ASSERT_TRUE(a_end && b_end);
  const std::optional<Seconds> a_quiet = quiet.time_step(in_tor0, 0, payload);
  const std::optional<Seconds> b_quiet = quiet.time_step(in_tor1, 0, payload);
  ASSERT_TRUE(a_quiet && b_quiet);
  EXPECT_NEAR(a_end->value(), a_quiet->value(), 1e-12);
  EXPECT_NEAR(b_end->value(), b_quiet->value(), 1e-12);

  shared.close_session(a, *a_end);
  shared.close_session(b, *b_end);
  EXPECT_EQ(shared.verify_replay(), 0u);
}

TEST(SharedFabric, FlowLessStepCompletesInstantly) {
  const ElectricalCluster cluster = two_tor_cluster(1.0);
  SharedFabricTimer shared(cluster);
  const auto session = shared.open_session();
  coll::Schedule idle("idle", 8, 1);
  idle.add_step();  // no transfers
  const std::optional<Seconds> end =
      shared.begin_step(session, idle, 0, Bytes(1000), Seconds(2.5));
  ASSERT_TRUE(end);
  EXPECT_EQ(*end, Seconds(2.5));
  shared.close_session(session, Seconds(2.5));
  EXPECT_EQ(shared.verify_replay(), 0u);
}

TEST(SharedFabric, RejectsBadRequests) {
  const ElectricalCluster cluster = two_tor_cluster(2.0);
  SharedFabricTimer shared(cluster);
  const auto session = shared.open_session();
  const coll::Schedule schedule = coll::ring_allreduce(8);
  const Bytes payload(1'000'000);

  // Unknown session.
  EXPECT_FALSE(shared.begin_step(99, schedule, 0, payload, Seconds(0.0)));
  // Out-of-range step.
  EXPECT_FALSE(shared.begin_step(session, schedule, schedule.num_steps(),
                                 payload, Seconds(0.0)));
  // Schedule wider than the cluster.
  EXPECT_FALSE(shared.begin_step(session, coll::ring_allreduce(16), 0,
                                 payload, Seconds(0.0)));

  const std::optional<Seconds> end =
      shared.begin_step(session, schedule, 0, payload, Seconds(1.0));
  ASSERT_TRUE(end);
  // Clock running backwards.
  EXPECT_FALSE(shared.begin_step(session, schedule, 1, payload,
                                 Seconds(0.5)));
  // Next step before the previous one finished.
  EXPECT_FALSE(shared.begin_step(session, schedule, 1, payload,
                                 Seconds(1.0 + 1e-6)));
  // At the completed boundary, the next step is accepted.
  EXPECT_TRUE(shared.begin_step(session, schedule, 1, payload, *end));
  // A closed session refuses further steps.
  const auto other = shared.open_session();
  shared.close_session(other, *end);
  EXPECT_FALSE(shared.begin_step(other, schedule, 0, payload, *end));
}

TEST(FlowNetwork, RunUntilSplitsMatchOneShotRun) {
  // Driving the same flow set through run_until checkpoints must complete
  // every flow at (numerically) the same instant as one uninterrupted run.
  const ElectricalCluster cluster = two_tor_cluster(4.0);
  FlowNetwork split = cluster.make_network();
  FlowNetwork whole = cluster.make_network();
  std::vector<FlowId> split_ids;
  std::vector<FlowId> whole_ids;
  for (std::uint32_t h = 0; h < 4; ++h) {
    split_ids.push_back(
        split.add_flow(cluster.route(h, 4 + h), Bytes(250'000'000)));
    whole_ids.push_back(
        whole.add_flow(cluster.route(h, 4 + h), Bytes(250'000'000)));
  }
  for (double t = 0.1; t < 2.0; t += 0.1) split.run_until(Seconds(t));
  split.run();
  whole.run();
  for (std::size_t i = 0; i < split_ids.size(); ++i) {
    ASSERT_TRUE(split.completed(split_ids[i]));
    EXPECT_NEAR(split.completion_time(split_ids[i]).value(),
                whole.completion_time(whole_ids[i]).value(), 1e-9);
  }
  // The idle clock still lands on a horizon past the last completion.
  split.run_until(Seconds(5.0));
  EXPECT_EQ(split.now(), Seconds(5.0));
}

TEST(FlowNetwork, CloneLiveCarriesOnlyInFlightFlows) {
  const ElectricalCluster cluster = two_tor_cluster(1.0);
  FlowNetwork network = cluster.make_network();
  const FlowId fast =
      network.add_flow(cluster.route(0, 1), Bytes(1'000'000));
  const FlowId slow =
      network.add_flow(cluster.route(0, 4), Bytes(1'000'000'000));
  network.run_until(Seconds(0.5));  // fast done, slow mid-flight

  std::vector<FlowId> id_map;
  FlowNetwork copy = network.clone_live(id_map);
  ASSERT_EQ(id_map.size(), 2u);
  EXPECT_EQ(id_map[fast], kNoFlow);
  ASSERT_NE(id_map[slow], kNoFlow);
  copy.run();
  // The copy's forward run predicts the original's completion.
  network.run();
  EXPECT_NEAR(copy.completion_time(id_map[slow]).value(),
              network.completion_time(slow).value(), 1e-9);
}

}  // namespace
}  // namespace wrht::elec
