// The Chrome trace-event exporter: the document parses, every track's
// timestamps are non-decreasing, duration spans are balanced, and the
// counter tracks / instant events carry what the layout comment promises.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "sim/trace.hpp"

namespace wrht::obs {
namespace {

using util::Seconds;

/// Every non-metadata event must carry ph/pid/tid/ts; returns the parsed
/// traceEvents array after asserting the envelope.
const JsonValue& trace_events(const JsonValue& document) {
  const JsonValue* events = document.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_EQ(events->kind, JsonValue::Kind::kArray);
  return *events;
}

struct TrackKey {
  double pid = 0;
  double tid = 0;
  auto operator<=>(const TrackKey&) const = default;
};

TEST(ChromeTrace, InstrumentedRunExportsAValidBalancedDocument) {
  // A hybrid run that exercises every track family: concurrent optical
  // tenants, electrical spill, fusion, and sampled gauges.
  obs::MetricsRegistry registry;
  runtime::RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.default_request = 8;
  config.placement = runtime::HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = runtime::ElectricalFabric::kTwoLevelShared;
  config.electrical.oversubscription = 4.0;
  config.metrics = &registry;
  runtime::CollectiveRuntime rt(config);
  rt.trace().enable();

  for (std::uint32_t t = 0; t < 2; ++t) {
    runtime::JobSpec spec;
    for (std::uint32_t i = 0; i < 8; ++i) {
      spec.participants.push_back(t * 8 + i);
    }
    spec.payload = util::megabytes(16);
    spec.name = "tenant" + std::to_string(t);
    rt.submit(spec);
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    runtime::JobSpec spec;
    spec.participants = {1, 5, 17, 26};
    spec.payload = util::kilobytes(64);
    spec.arrival = util::milliseconds(1.0);
    spec.name = "bucket" + std::to_string(i);
    rt.submit(spec);
  }
  const runtime::RuntimeReport report = rt.run();
  ASSERT_EQ(report.completed, 5u);
  ASSERT_GE(report.electrical.jobs, 1u);

  const std::string json =
      chrome_trace_json(rt.trace(), rt.records(), &registry);
  const JsonParseResult parsed = json_parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << " at byte " << parsed.offset;
  const JsonValue& events = trace_events(parsed.value);
  ASSERT_FALSE(events.array.empty());

  std::map<TrackKey, double> last_ts;
  // Counter tracks are keyed by (pid, name) — several series share tid 0 —
  // so their monotonicity is checked per name.
  std::map<std::string, double> last_counter_ts;
  std::map<TrackKey, int> depth;
  std::set<std::string> counter_names;
  std::set<std::string> span_names;
  for (const JsonValue& event : events.array) {
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") continue;  // metadata carries no ts
    const TrackKey track{event.find("pid")->number,
                         event.find("tid")->number};
    const double ts = event.find("ts")->number;
    if (ph->string == "C") {
      const std::string& name = event.find("name")->string;
      auto [it, inserted] = last_counter_ts.try_emplace(name, ts);
      if (!inserted) {
        EXPECT_GT(ts, it->second) << "counter ts regressed on " << name;
        it->second = ts;
      }
    } else {
      auto [it, inserted] = last_ts.try_emplace(track, ts);
      if (!inserted) {
        EXPECT_GE(ts, it->second) << "ts regressed on pid "
                                  << track.pid << " tid " << track.tid;
        it->second = ts;
      }
    }
    if (ph->string == "B") {
      ++depth[track];
      span_names.insert(event.find("name")->string);
    } else if (ph->string == "E") {
      EXPECT_GT(depth[track], 0) << "E without matching B";
      --depth[track];
    } else if (ph->string == "C") {
      counter_names.insert(event.find("name")->string);
    } else if (ph->string == "i") {
      EXPECT_EQ(event.find("s")->string, "t");
    }
  }
  for (const auto& [track, open] : depth) {
    EXPECT_EQ(open, 0) << "unbalanced spans on pid " << track.pid;
  }
  // Job spans carry the tenant names, step spans the step index.
  EXPECT_TRUE(span_names.count("tenant0"));
  EXPECT_TRUE(span_names.count("tenant1"));
  EXPECT_TRUE(span_names.count("step 0"));
  // At least three counter tracks (queue depth, running/suspended jobs,
  // spectrum occupancy, uplink utilization...).
  EXPECT_GE(counter_names.size(), 3u)
      << "got only " << counter_names.size() << " counter tracks";
  EXPECT_TRUE(counter_names.count("runtime.queue_depth"));
  EXPECT_TRUE(counter_names.count("optical.spectrum_occupancy"));
  EXPECT_TRUE(counter_names.count("electrical.uplink_utilization"));
}

TEST(ChromeTrace, ProcessAndThreadNamesAreDeclared) {
  runtime::JobRecord record;
  record.id = 0;
  record.state = runtime::JobState::kDone;
  record.spec.name = "my-tenant";
  sim::Trace trace;
  const JsonParseResult parsed =
      json_parse(chrome_trace_json(trace, {record}, nullptr));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  bool optical_named = false;
  bool thread_named = false;
  for (const JsonValue& event : trace_events(parsed.value).array) {
    if (event.find("ph")->string != "M") continue;
    const std::string& meta = event.find("name")->string;
    const JsonValue* args = event.find("args");
    if (meta == "process_name" && args->find("name")->string ==
                                      "optical ring") {
      optical_named = true;
    }
    if (meta == "thread_name" &&
        args->find("name")->string == "my-tenant") {
      thread_named = true;
    }
  }
  EXPECT_TRUE(optical_named);
  EXPECT_TRUE(thread_named);
}

TEST(ChromeTrace, TruncatedTraceClosesOpenSpansAtTheLastTimestamp) {
  // An admit with no complete (a run cut short): the exporter must close
  // the span at the latest timestamp so the document still loads.
  sim::Trace trace;
  trace.enable();
  trace.record(Seconds(1e-6), sim::TraceKind::kJobAdmit, 0, 4, "4 lambda");
  trace.record(Seconds(3e-6), sim::TraceKind::kStepBegin, 0, 0);
  runtime::JobRecord record;
  record.id = 0;
  record.state = runtime::JobState::kRunning;
  const JsonParseResult parsed =
      json_parse(chrome_trace_json(trace, {record}, nullptr));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  int begins = 0;
  int ends = 0;
  double last_end_ts = -1.0;
  for (const JsonValue& event : trace_events(parsed.value).array) {
    const std::string& ph = event.find("ph")->string;
    if (ph == "B") ++begins;
    if (ph == "E") {
      ++ends;
      last_end_ts = event.find("ts")->number;
    }
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(last_end_ts, 3.0);  // the latest seen ts, in microseconds
}

TEST(ChromeTrace, FusionAndRouteDecisionRenderAsInstants) {
  sim::Trace trace;
  trace.enable();
  trace.record(Seconds(2e-6), sim::TraceKind::kJobFused, 1, 0);
  trace.record(Seconds(5e-6), sim::TraceKind::kRouteDecision, 2,
               static_cast<std::int64_t>(runtime::SubstrateKind::kElectrical),
               "optical=12.5 us electrical=980 ns");
  std::vector<runtime::JobRecord> records(3);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].id = static_cast<runtime::JobId>(i);
    records[i].state = runtime::JobState::kDone;
  }
  const JsonParseResult parsed =
      json_parse(chrome_trace_json(trace, records, nullptr));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  bool fused_seen = false;
  bool route_seen = false;
  for (const JsonValue& event : trace_events(parsed.value).array) {
    const JsonValue* name = event.find("name");
    if (!name) continue;
    if (name->string == "fused") {
      fused_seen = true;
      EXPECT_EQ(event.find("args")->find("into_lead_job")->number, 0.0);
    }
    if (name->string == "route decision") {
      route_seen = true;
      const JsonValue* args = event.find("args");
      EXPECT_EQ(args->find("chose")->string, "electrical");
      EXPECT_EQ(args->find("predicted_optical")->string, "12.5 us");
      EXPECT_EQ(args->find("predicted_electrical")->string, "980 ns");
    }
  }
  EXPECT_TRUE(fused_seen);
  EXPECT_TRUE(route_seen);
}

TEST(ChromeTrace, EmptyInputsStillProduceALoadableDocument) {
  sim::Trace trace;
  const JsonParseResult parsed =
      json_parse(chrome_trace_json(trace, {}, nullptr));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.find("displayTimeUnit")->string, "ms");
}

}  // namespace
}  // namespace wrht::obs
