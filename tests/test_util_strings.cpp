#include "util/string_utils.hpp"

#include <gtest/gtest.h>

namespace wrht::util {
namespace {

TEST(Split, Basic) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto fields = split(",x,,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Split, NoDelimiter) {
  const auto fields = split("plain", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "plain");
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(75.758, 2), "75.76");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(StartsWith, Cases) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

}  // namespace
}  // namespace wrht::util
