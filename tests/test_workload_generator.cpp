#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/random.hpp"
#include "workload/distributions.hpp"
#include "workload/trace_io.hpp"

namespace wrht::workload {
namespace {

std::string serialize(const WorkloadConfig& config, TraceFormat format) {
  WorkloadGenerator gen(config);
  std::ostringstream out;
  record_trace(gen, out, format);
  return out.str();
}

// The byte-identical guarantee the whole trace-driven pipeline rests on:
// one seed, one byte sequence, in both formats.
TEST(WorkloadGenerator, SameSeedProducesByteIdenticalTrace) {
  WorkloadConfig config;
  config.seed = 42;
  config.num_jobs = 500;
  config.arrivals = ArrivalProcess::kBursty;
  EXPECT_EQ(serialize(config, TraceFormat::kJsonl),
            serialize(config, TraceFormat::kJsonl));
  EXPECT_EQ(serialize(config, TraceFormat::kCsv),
            serialize(config, TraceFormat::kCsv));
}

TEST(WorkloadGenerator, DifferentSeedsDiverge) {
  WorkloadConfig a;
  a.num_jobs = 50;
  WorkloadConfig b = a;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(serialize(a, TraceFormat::kJsonl),
            serialize(b, TraceFormat::kJsonl));
}

TEST(WorkloadGenerator, SpecsAreWellFormed) {
  WorkloadConfig config;
  config.seed = 7;
  config.num_jobs = 2000;
  config.ring_size = 32;
  config.min_participants = 2;
  config.max_participants = 12;
  WorkloadGenerator gen(config);
  double last_arrival = 0.0;
  std::uint64_t emitted = 0;
  while (std::optional<runtime::JobSpec> spec = gen.next()) {
    ++emitted;
    EXPECT_GE(spec->arrival.value(), last_arrival);
    last_arrival = spec->arrival.value();
    ASSERT_GE(spec->participants.size(), 2u);
    ASSERT_LE(spec->participants.size(), 12u);
    // Sorted ascending, unique, on the ring — the runtime's spec contract.
    EXPECT_TRUE(std::is_sorted(spec->participants.begin(),
                               spec->participants.end()));
    EXPECT_EQ(std::adjacent_find(spec->participants.begin(),
                                 spec->participants.end()),
              spec->participants.end());
    EXPECT_LT(spec->participants.back(), config.ring_size);
    EXPECT_GE(spec->payload, config.min_payload);
    EXPECT_LE(spec->payload, config.max_payload);
  }
  EXPECT_EQ(emitted, config.num_jobs);
  EXPECT_FALSE(gen.next().has_value());
}

// ---------------------------------------------------------- arrival rates
//
// Each process claims the same long-run mean rate; over tens of thousands
// of arrivals the realized rate must land within a few percent.

double realized_rate(WorkloadConfig config) {
  config.num_jobs = 30000;
  WorkloadGenerator gen(config);
  double last = 0.0;
  while (std::optional<runtime::JobSpec> spec = gen.next()) {
    last = spec->arrival.value();
  }
  return static_cast<double>(config.num_jobs) / last;
}

TEST(WorkloadGenerator, PoissonRealizedRateMatchesMean) {
  WorkloadConfig config;
  config.seed = 11;
  config.arrivals = ArrivalProcess::kPoisson;
  config.mean_rate = 250.0;
  EXPECT_NEAR(realized_rate(config), 250.0, 250.0 * 0.03);
}

TEST(WorkloadGenerator, DiurnalRealizedRateMatchesMean) {
  WorkloadConfig config;
  config.seed = 12;
  config.arrivals = ArrivalProcess::kDiurnal;
  config.mean_rate = 200.0;
  config.diurnal_amplitude = 0.8;
  config.diurnal_period_s = 3.0;
  EXPECT_NEAR(realized_rate(config), 200.0, 200.0 * 0.05);
}

TEST(WorkloadGenerator, BurstyRealizedRateMatchesMean) {
  WorkloadConfig config;
  config.seed = 13;
  config.arrivals = ArrivalProcess::kBursty;
  config.mean_rate = 200.0;
  config.burst_rate_multiplier = 10.0;
  config.burst_fraction = 0.2;
  config.burst_length_s = 0.1;
  EXPECT_NEAR(realized_rate(config), 200.0, 200.0 * 0.08);
}

// ------------------------------------------------------- sampling shapes

TEST(Distributions, ExponentialMeanIsOneOverRate) {
  util::Rng rng(101);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += sample_exponential(rng, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.25 * 0.02);
}

TEST(Distributions, LognormalMedianIsExpMu) {
  util::Rng rng(102);
  const double mu = std::log(1000.0);
  const int n = 100001;
  std::vector<double> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(sample_lognormal(rng, mu, 1.5));
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], 1000.0, 1000.0 * 0.05);
}

TEST(Distributions, BoundedParetoMeanMatchesClosedForm) {
  util::Rng rng(103);
  const double alpha = 1.5, lo = 2.0, hi = 64.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_bounded_pareto(rng, alpha, lo, hi);
    ASSERT_GE(x, lo);
    ASSERT_LE(x, hi);
    sum += x;
  }
  const double expected = bounded_pareto_mean(alpha, lo, hi);
  EXPECT_NEAR(sum / n, expected, expected * 0.02);
}

TEST(Distributions, BoundedParetoTailQuantileMatchesInverseCdf) {
  util::Rng rng(104);
  const double alpha = 1.2, lo = 2.0, hi = 64.0;
  const int n = 200001;
  std::vector<double> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    samples.push_back(sample_bounded_pareto(rng, alpha, lo, hi));
  }
  // Analytic quantile: F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a).
  const double q = 0.99;
  const double norm = 1.0 - std::pow(lo / hi, alpha);
  const double x_q = lo * std::pow(1.0 - q * norm, -1.0 / alpha);
  const auto rank = static_cast<std::ptrdiff_t>(q * n);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  EXPECT_NEAR(samples[static_cast<std::size_t>(rank)], x_q, x_q * 0.05);
}

TEST(Distributions, BoundedParetoMeanAlphaOneSpecialCase) {
  // alpha == 1 takes the logarithmic branch of the closed form; sanity-check
  // it against samples too.
  util::Rng rng(105);
  const double lo = 2.0, hi = 64.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += sample_bounded_pareto(rng, 1.0, lo, hi);
  const double expected = bounded_pareto_mean(1.0, lo, hi);
  EXPECT_NEAR(sum / n, expected, expected * 0.02);
}

TEST(WorkloadGenerator, MarkFractionsLandNearConfig) {
  WorkloadConfig config;
  config.seed = 21;
  config.num_jobs = 20000;
  config.explicit_request_fraction = 0.25;
  config.high_priority_fraction = 0.1;
  config.deadline_fraction = 0.5;
  WorkloadGenerator gen(config);
  double requests = 0, priorities = 0, deadlines = 0;
  while (std::optional<runtime::JobSpec> spec = gen.next()) {
    if (spec->requested_wavelengths != 0) ++requests;
    if (spec->priority != 0) ++priorities;
    if (spec->deadline.value() != 0.0) ++deadlines;
  }
  const auto n = static_cast<double>(config.num_jobs);
  EXPECT_NEAR(requests / n, 0.25, 0.02);
  EXPECT_NEAR(priorities / n, 0.1, 0.02);
  EXPECT_NEAR(deadlines / n, 0.5, 0.02);
}

TEST(WorkloadGenerator, RejectsBadConfig) {
  WorkloadConfig config;
  config.mean_rate = 0.0;
  EXPECT_DEATH(WorkloadGenerator{config}, "mean_rate");
}

}  // namespace
}  // namespace wrht::workload
