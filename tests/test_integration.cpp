// Cross-module integration: the full pipelines a user of the library would
// compose — build a schedule, check it functionally, route it optically,
// time it three ways, and tie the DNN catalog into the training model with
// real all-reduce times from the simulators.
#include <gtest/gtest.h>

#include "coll/algorithms.hpp"
#include "coll/cost_model.hpp"
#include "coll/executor.hpp"
#include "coll/validation.hpp"
#include "dnn/catalog.hpp"
#include "dnn/training.hpp"
#include "elec/schedule_runner.hpp"
#include "harness/fig2.hpp"
#include "optical/network.hpp"
#include "wrht/analysis.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"
#include "wrht/striping.hpp"
#include "wrht/time_model.hpp"

namespace wrht {
namespace {

using util::Bytes;
using util::Seconds;

TEST(Integration, WrhtEndToEndPipeline) {
  // Build -> validate -> verify -> route -> simulate -> analyze.
  const std::uint32_t n = 100;
  core::WrhtParams params;
  params.num_wavelengths = 16;
  const core::WrhtBuild build = core::build_wrht(n, params);

  ASSERT_TRUE(coll::validate(build.annotated.schedule).ok());
  ASSERT_TRUE(
      coll::FunctionalExecutor::verify_allreduce(build.annotated.schedule, 64));

  optical::OpticalParams optical;
  optical.wdm.num_wavelengths = 16;
  const Bytes payload(100'000'000);
  const optical::RunResult run =
      core::run_on_optical(build.annotated, optical, payload);
  EXPECT_GT(run.total.value(), 0.0);
  EXPECT_EQ(run.steps.size(), build.annotated.schedule.num_steps());

  const core::WrhtAnalysis analysis = core::analyze(build, payload);
  EXPECT_EQ(analysis.total_steps, build.annotated.schedule.num_steps());
  EXPECT_LE(analysis.max_lambda, 16u);
  const std::string report = analysis.report();
  EXPECT_NE(report.find("group size m"), std::string::npos);
  EXPECT_NE(report.find("steps"), std::string::npos);
}

TEST(Integration, AnalysisMatchesPaperFormula) {
  core::WrhtParams params;
  params.num_wavelengths = 64;
  for (const std::uint32_t n : {128u, 256u, 512u, 1024u}) {
    const core::WrhtBuild build = core::build_wrht(n, params);
    const core::WrhtAnalysis analysis = core::analyze(build, Bytes(1000));
    EXPECT_EQ(analysis.total_steps, analysis.paper_formula_steps)
        << "n=" << n;
    EXPECT_EQ(analysis.ring_steps, 2 * (n - 1));
  }
}

TEST(Integration, SameScheduleThreeTimingModelsAgreeOnOptical) {
  const std::uint32_t n = 64;
  core::WrhtParams wp;
  wp.num_wavelengths = 8;
  const core::WrhtBuild build = core::build_wrht(n, wp);
  optical::OpticalParams p;
  p.wdm.num_wavelengths = 8;
  const Bytes payload(50'000'000);

  const double des = core::run_on_optical(build.annotated, p, payload)
                         .total.value();
  const double analytic =
      core::analytic_schedule_time(build.annotated, payload, p).value();
  const double formula =
      core::wrht_time_formula(n, payload, p, wp).value();
  EXPECT_NEAR(des, analytic, analytic * 1e-12);
  EXPECT_NEAR(formula, analytic, analytic * 1e-3);
}

TEST(Integration, ElectricalAndOpticalRunSameRingSchedule) {
  const std::uint32_t n = 16;
  const coll::Schedule schedule = coll::ring_allreduce(n);
  const Bytes payload(16'000'000);

  const elec::ElectricalCluster cluster =
      elec::ElectricalCluster::star(n, elec::ElectricalParams{});
  const double electrical =
      elec::run_on_electrical(schedule, cluster, payload).total.value();

  const topo::RingTopology ring(n);
  const auto annotated = core::annotate_on_ring(schedule, ring, 1);
  ASSERT_TRUE(annotated.has_value());
  optical::OpticalParams p;
  const double optical_time =
      core::run_on_optical(*annotated, p, payload).total.value();

  EXPECT_GT(electrical, 0.0);
  EXPECT_GT(optical_time, 0.0);
  // With default physics the per-step optical overhead dominates at this
  // chunk size, so the optical ring is slower — the paper's observation.
  EXPECT_GT(optical_time, electrical);
}

TEST(Integration, TrainingIterationWithSimulatedAllReduce) {
  // Close the loop: per-bucket all-reduce times come from the Wrht formula,
  // feeding the overlap-aware training timeline.
  const dnn::Model model = dnn::resnet50();
  const std::uint32_t n = 256;
  core::WrhtParams wp;
  wp.num_wavelengths = 64;
  optical::OpticalParams p;

  dnn::TrainingParams training;
  training.overlap = true;
  const auto timeline = dnn::simulate_iteration(
      model, training, [&](Bytes bytes) {
        return core::wrht_time_formula(n, bytes, p, wp);
      });
  EXPECT_GT(timeline.num_buckets, 1u);
  EXPECT_GT(timeline.total_time.value(), timeline.compute_time.value() - 1e-9);

  // The same iteration on the electrical cluster must expose more
  // communication time.
  const auto analytic_ring = [&](Bytes bytes) {
    const coll::AlphaBetaParams ab{util::microseconds(50.0),
                                   util::gbps(10.0)};
    return coll::ring_allreduce_closed_form(n, bytes, ab);
  };
  const auto electrical_timeline =
      dnn::simulate_iteration(model, training, analytic_ring);
  EXPECT_GE(electrical_timeline.total_time.value(),
            timeline.total_time.value());
}

TEST(Integration, StripedWrhtStillCorrectAndFaster) {
  const std::uint32_t n = 80;
  core::WrhtParams wp;
  wp.num_wavelengths = 32;
  const core::WrhtBuild build = core::build_wrht(n, wp);
  const Bytes payload(200'000'000);
  const core::AnnotatedSchedule striped =
      core::apply_striping(build.annotated, 32, payload);

  ASSERT_TRUE(coll::FunctionalExecutor::verify_allreduce(striped.schedule, 16));
  optical::OpticalParams p;
  p.wdm.num_wavelengths = 32;
  const double base =
      core::run_on_optical(build.annotated, p, payload).total.value();
  const double after = core::run_on_optical(striped, p, payload).total.value();
  EXPECT_LT(after, base);
}

TEST(Integration, EveryBaselineRunsOnBothSubstrates) {
  const std::uint32_t n = 12;
  const Bytes payload(1'000'000);
  const elec::ElectricalCluster cluster =
      elec::ElectricalCluster::star(n, elec::ElectricalParams{});
  const topo::RingTopology ring(n);
  optical::OpticalParams p;

  const coll::Schedule schedules[] = {
      coll::ring_allreduce(n),    coll::recursive_doubling(n),
      coll::halving_doubling(n),  coll::binomial_tree(n),
      coll::direct_allreduce(n),  coll::naive_ring(n),
  };
  for (const coll::Schedule& schedule : schedules) {
    const double electrical =
        elec::run_on_electrical(schedule, cluster, payload).total.value();
    EXPECT_GT(electrical, 0.0) << schedule.name();
    const auto annotated = core::annotate_on_ring(schedule, ring, 64);
    ASSERT_TRUE(annotated.has_value()) << schedule.name();
    const double optical_time =
        core::run_on_optical(*annotated, p, payload).total.value();
    EXPECT_GT(optical_time, 0.0) << schedule.name();
  }
}

TEST(Integration, HarnessSmokeMatchesDirectCalls) {
  harness::ExperimentConfig config = harness::paper_config();
  const Bytes payload(10'000'000);
  const double via_harness =
      harness::allreduce_time(harness::Algo::kWrht, 64, payload, config)
          .value();
  core::WrhtParams wp;
  wp.num_wavelengths = config.optical.wdm.num_wavelengths;
  const core::WrhtBuild build = core::build_wrht(64, wp);
  const double direct =
      core::run_on_optical(build.annotated, config.optical, payload)
          .total.value();
  EXPECT_NEAR(via_harness, direct, direct * 1e-12);
}

}  // namespace
}  // namespace wrht
