#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wrht::sim {
namespace {

TEST(Counter, Increments) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.increment(5);
  EXPECT_EQ(counter.value(), 6u);
}

TEST(Summary, EmptyIsZero) {
  Summary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_DOUBLE_EQ(summary.mean(), 0.0);
  EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
  EXPECT_DOUBLE_EQ(summary.min(), 0.0);
  EXPECT_DOUBLE_EQ(summary.max(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary summary;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    summary.record(x);
  }
  EXPECT_EQ(summary.count(), 8u);
  EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
  EXPECT_DOUBLE_EQ(summary.min(), 2.0);
  EXPECT_DOUBLE_EQ(summary.max(), 9.0);
  EXPECT_DOUBLE_EQ(summary.total(), 40.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(summary.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(summary.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, SingleValueHasZeroVariance) {
  Summary summary;
  summary.record(3.5);
  EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 3.5);
}

TEST(Summary, WelfordStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: values with a huge common
  // offset.  Welford keeps the variance exact.
  Summary summary;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    summary.record(x);
  }
  EXPECT_NEAR(summary.variance(), 1.0, 1e-6);
}

TEST(Histogram, BucketsAndCount) {
  Histogram histogram(1.0, 10.0, 4);  // bounds 1, 10, 100, 1000
  histogram.record(0.5);    // bucket 0 (<= 1)
  histogram.record(5.0);    // bucket 1
  histogram.record(50.0);   // bucket 2
  histogram.record(500.0);  // bucket 3
  histogram.record(5000.0); // overflow bucket
  EXPECT_EQ(histogram.count(), 5u);
  const auto& buckets = histogram.buckets();
  ASSERT_EQ(buckets.size(), 5u);
  for (const auto count : buckets) {
    EXPECT_EQ(count, 1u);
  }
}

TEST(Histogram, BoundaryGoesToLowerBucket) {
  Histogram histogram(1.0, 10.0, 3);
  histogram.record(1.0);  // exactly on the first bound -> bucket 0
  EXPECT_EQ(histogram.buckets()[0], 1u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram histogram(1e-6, 2.0, 30);
  for (int i = 0; i < 1000; ++i) {
    histogram.record(1e-5 * (1 + i % 100));
  }
  const double q10 = histogram.quantile(0.10);
  const double q50 = histogram.quantile(0.50);
  const double q99 = histogram.quantile(0.99);
  EXPECT_LE(q10, q50);
  EXPECT_LE(q50, q99);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram histogram(1.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace wrht::sim
