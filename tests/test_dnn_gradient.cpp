#include "dnn/gradient.hpp"

#include <gtest/gtest.h>

#include "dnn/catalog.hpp"

namespace wrht::dnn {
namespace {

TEST(Bucketize, TotalBytesPreserved) {
  for (const Model& model : paper_models()) {
    BucketingOptions options;
    options.capacity = util::mebibytes(25);
    const auto buckets = bucketize(model, options);
    EXPECT_EQ(total_bucket_bytes(buckets).count(),
              model.table_params() * 4)
        << model.name();
  }
}

TEST(Bucketize, EveryLayerExactlyOnce) {
  const Model model = vgg16();
  const auto buckets = bucketize(model, BucketingOptions{});
  std::vector<int> seen(model.layers().size(), 0);
  for (const Bucket& bucket : buckets) {
    for (const std::size_t layer : bucket.layer_indices) {
      ++seen[layer];
    }
  }
  for (const int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(Bucketize, ReverseLayerOrder) {
  const Model model = alexnet();
  const auto buckets = bucketize(model, BucketingOptions{});
  // The first bucket must contain the last layer (gradients arrive
  // back-to-front).
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.front().layer_indices.front(),
            model.layers().size() - 1);
}

TEST(Bucketize, RespectsCapacityExceptForOversizedLayers) {
  const Model model = vgg16();
  BucketingOptions options;
  options.capacity = util::mebibytes(25);
  for (const Bucket& bucket : bucketize(model, options)) {
    if (bucket.layer_indices.size() > 1) {
      EXPECT_LE(bucket.bytes.count(), options.capacity.count());
    }
  }
}

TEST(Bucketize, OversizedLayerGetsOwnBucket) {
  // VGG16's fc6 is ~411 MB in fp32 — far over a 25 MB cap.
  const Model model = vgg16();
  BucketingOptions options;
  options.capacity = util::mebibytes(25);
  const auto buckets = bucketize(model, options);
  bool found_fc6_alone = false;
  for (const Bucket& bucket : buckets) {
    for (const std::size_t layer : bucket.layer_indices) {
      if (model.layers()[layer].name == "fc14") {
        EXPECT_EQ(bucket.layer_indices.size(), 1u);
        found_fc6_alone = true;
      }
    }
  }
  EXPECT_TRUE(found_fc6_alone);
}

TEST(Bucketize, LargeCapacityGivesOneBucket) {
  const Model model = googlenet();
  BucketingOptions options;
  options.capacity = util::gibibytes(1);
  EXPECT_EQ(bucketize(model, options).size(), 1u);
}

TEST(Bucketize, TinyCapacityGivesPerLayerBuckets) {
  const Model model = alexnet();
  BucketingOptions options;
  options.capacity = util::Bytes(1);
  EXPECT_EQ(bucketize(model, options).size(), model.layers().size());
}

TEST(Bucketize, HalfPrecisionHalvesBytes) {
  const Model model = resnet50();
  BucketingOptions f32;
  BucketingOptions f16;
  f16.dtype = DType::kF16;
  EXPECT_EQ(total_bucket_bytes(bucketize(model, f16)).count() * 2,
            total_bucket_bytes(bucketize(model, f32)).count());
}

TEST(LayerGradientBytes, MatchesDtype) {
  const Layer layer{"conv", LayerKind::kConvolution, 1000};
  EXPECT_EQ(layer_gradient_bytes(layer, DType::kF32).count(), 4000u);
  EXPECT_EQ(layer_gradient_bytes(layer, DType::kF16).count(), 2000u);
}

}  // namespace
}  // namespace wrht::dnn
