// Electrical renegotiation: BSP step boundaries as preemption points.
//
// Substrate-level: suspend/resume mechanics, host remapping when the
// original positions are taken, the final-step-boundary edge (a remainder
// of exactly one step), and the refusals (not enough free hosts, no
// concurrency slot).
//
// Runtime-level: a pinned electrical victim evicted by a pinned urgent
// arrival under kPriorityPreempt, resume with ZERO surviving hosts on the
// victim's original ToR (the remainder lands on the other ToR), and both
// oracles over the remapped composite — the functional all-reduce oracle
// (the runtime aborts if it fails, so completion is the verdict) and the
// shared fabric's whole-horizon flow replay (replay_checked_steps must
// cover every electrical step, remapped resumes included).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/substrate.hpp"

namespace wrht::runtime {
namespace {

std::unique_ptr<ExecutionSubstrate> star_substrate(
    std::uint32_t hosts, std::uint32_t max_concurrent = 0) {
  ElectricalFallbackConfig config;
  config.max_concurrent = max_concurrent;
  return make_electrical_substrate(hosts, config);
}

/// kResume renegotiation with the test's defaults (desired width 1, floor
/// 1), unwrapped to the plan for terse assertions.
std::unique_ptr<SubstrateExecution> resume(ExecutionSubstrate& sub,
                                           SubstrateExecution& plan,
                                           std::size_t steps_done) {
  return sub
      .renegotiate(&plan, RenegotiationRequest::resume(steps_done, 1, 1))
      .plan;
}

/// Drive `plan` through steps [first, last) on `sub`, returning the clock.
util::Seconds run_steps(ExecutionSubstrate& sub, SubstrateExecution& plan,
                        std::size_t first, std::size_t last,
                        util::Seconds clock) {
  for (std::size_t s = first; s < last; ++s) {
    const StepTiming t = sub.time_step(plan, s, clock);
    EXPECT_GT(t.end, clock);
    clock = t.end;
  }
  return clock;
}

TEST(ElectricalResume, PrefersOriginalHostsWhenFree) {
  const std::unique_ptr<ExecutionSubstrate> sub = star_substrate(16);
  std::unique_ptr<SubstrateExecution> plan =
      sub->place({4, 5, 6, 7}, util::megabytes(4), 1);
  const std::size_t total = plan->num_steps();
  util::Seconds clock = run_steps(*sub, *plan, 0, 2, util::Seconds(0.0));
  sub->release(*plan, clock);

  std::unique_ptr<SubstrateExecution> resumed = resume(*sub, *plan, 2);
  ASSERT_NE(resumed, nullptr);
  // Nothing took the hosts meanwhile: identity placement again.
  EXPECT_EQ(resumed->hosts(), (std::vector<topo::NodeId>{4, 5, 6, 7}));
  EXPECT_EQ(resumed->num_steps(), total - 2);
}

TEST(ElectricalResume, RemapsOntoFreeHostsWhenBlocked) {
  const std::unique_ptr<ExecutionSubstrate> sub = star_substrate(16);
  std::unique_ptr<SubstrateExecution> plan =
      sub->place({0, 1, 2, 3}, util::megabytes(4), 1);
  util::Seconds clock = run_steps(*sub, *plan, 0, 1, util::Seconds(0.0));
  sub->release(*plan, clock);

  // A blocker takes two of the original hosts, so identity is impossible.
  std::unique_ptr<SubstrateExecution> blocker =
      sub->place({2, 3, 8, 9}, util::megabytes(1), 1);
  std::unique_ptr<SubstrateExecution> resumed = resume(*sub, *plan, 1);
  ASSERT_NE(resumed, nullptr);
  // Lowest-id free hosts, deterministically: 0 and 1 survive, 4 and 5
  // substitute for the taken 2 and 3.
  EXPECT_EQ(resumed->hosts(), (std::vector<topo::NodeId>{0, 1, 4, 5}));
  // The remapped remainder still times and the two tenants coexist.
  clock = run_steps(*sub, *resumed, 0, resumed->num_steps(), clock);
  sub->release(*resumed, clock);
  sub->release(*blocker, clock);
}

TEST(ElectricalResume, FinalStepBoundaryLeavesOneStepRemainder) {
  const std::unique_ptr<ExecutionSubstrate> sub = star_substrate(8);
  std::unique_ptr<SubstrateExecution> plan =
      sub->place({0, 1, 2, 3}, util::megabytes(2), 1);
  const std::size_t total = plan->num_steps();
  ASSERT_GE(total, 2u);
  // Preempt at the LAST boundary: every step but the final one executed.
  util::Seconds clock =
      run_steps(*sub, *plan, 0, total - 1, util::Seconds(0.0));
  sub->release(*plan, clock);

  std::unique_ptr<SubstrateExecution> resumed =
      resume(*sub, *plan, total - 1);
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->num_steps(), 1u);
  const util::Seconds end =
      run_steps(*sub, *resumed, 0, 1, clock + util::milliseconds(1.0));
  EXPECT_GT(end, clock);
  sub->release(*resumed, end);
  EXPECT_TRUE(sub->can_place({0, 1, 2, 3}, 1));
}

TEST(ElectricalResume, RefusesWithoutEnoughFreeHosts) {
  const std::unique_ptr<ExecutionSubstrate> sub = star_substrate(8);
  std::unique_ptr<SubstrateExecution> plan =
      sub->place({0, 1, 2, 3}, util::megabytes(2), 1);
  util::Seconds clock = run_steps(*sub, *plan, 0, 1, util::Seconds(0.0));
  sub->release(*plan, clock);

  // Six of the eight hosts taken: only two remain for a four-host resume.
  std::unique_ptr<SubstrateExecution> blocker =
      sub->place({0, 1, 2, 5, 6, 7}, util::megabytes(1), 1);
  EXPECT_EQ(resume(*sub, *plan, 1), nullptr);
  // The refusal touched nothing: freeing the blocker re-enables resume.
  sub->release(*blocker, clock);
  EXPECT_NE(resume(*sub, *plan, 1), nullptr);
}

TEST(ElectricalResume, RefusesWithoutAConcurrencySlot) {
  const std::unique_ptr<ExecutionSubstrate> sub =
      star_substrate(16, /*max_concurrent=*/1);
  std::unique_ptr<SubstrateExecution> plan =
      sub->place({0, 1}, util::megabytes(1), 1);
  util::Seconds clock = run_steps(*sub, *plan, 0, 1, util::Seconds(0.0));
  sub->release(*plan, clock);

  std::unique_ptr<SubstrateExecution> other =
      sub->place({4, 5}, util::megabytes(1), 1);
  EXPECT_EQ(resume(*sub, *plan, 1), nullptr);
  sub->release(*other, clock);
  EXPECT_NE(resume(*sub, *plan, 1), nullptr);
}

RuntimeConfig shared_preempt_config() {
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;
  config.placement = HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = 8;
  config.electrical.oversubscription = 2.0;
  return config;
}

TEST(ElectricalPreemption, PinnedVictimSuspendsAndResumesUnderPriority) {
  CollectiveRuntime rt(shared_preempt_config());
  rt.trace().enable();

  JobSpec batch;
  batch.participants = {0, 1, 2, 3};
  batch.payload = util::megabytes(32);
  batch.pin = SubstratePin::kElectricalOnly;
  batch.priority = 0;
  const JobId victim = rt.submit(batch);

  JobSpec urgent;
  urgent.participants = {2, 3, 4, 5};  // overlaps the victim's hosts
  urgent.payload = util::megabytes(1);
  urgent.arrival = util::milliseconds(3.0);
  urgent.pin = SubstratePin::kElectricalOnly;
  urgent.priority = 9;
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_GE(report.preemptions, 1u);
  EXPECT_EQ(report.resumes, report.preemptions);
  EXPECT_GE(rt.record(victim).preemptions, 1u);
  EXPECT_EQ(rt.record(victim).substrate, SubstrateKind::kElectrical);
  EXPECT_EQ(rt.record(victim).state, JobState::kDone);
  EXPECT_TRUE(rt.record(victim).oracle_ok);
  // The urgent job did not wait for the victim to finish.
  EXPECT_LT(rt.record(vip).completed, rt.record(victim).completed);
  // Every electrical step — the victim's pre-preemption prefix, its
  // remapped remainder, and the vip's run — was re-proven by the
  // whole-horizon flow replay.
  EXPECT_EQ(report.replay_checked_steps, report.electrical.steps);
}

TEST(ElectricalPreemption, ResumesOnOtherTorWhenOriginalTorIsFull) {
  // The victim lives entirely in ToR0 (hosts 0..7 at 8 hosts per ToR).
  // The urgent arrival takes ALL of ToR0, so the resume has zero surviving
  // hosts there and the remainder must land on ToR1 — while the urgent job
  // still runs (the completions overlap).
  CollectiveRuntime rt(shared_preempt_config());
  rt.trace().enable();

  JobSpec batch;
  batch.participants = {0, 1, 2, 3};
  batch.payload = util::megabytes(24);
  batch.pin = SubstratePin::kElectricalOnly;
  batch.priority = 0;
  const JobId victim = rt.submit(batch);

  JobSpec urgent;
  urgent.participants = {0, 1, 2, 3, 4, 5, 6, 7};  // the whole ToR0
  urgent.payload = util::megabytes(8);
  urgent.arrival = util::milliseconds(3.0);
  urgent.pin = SubstratePin::kElectricalOnly;
  urgent.priority = 9;
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_GE(rt.record(victim).preemptions, 1u);
  EXPECT_EQ(rt.record(victim).state, JobState::kDone);

  // The victim resumed BEFORE the vip completed: only possible on ToR1
  // hosts, since the vip holds every ToR0 host until it finishes.
  util::Seconds resume_time{-1.0};
  for (const sim::TraceEvent& event : rt.trace().events()) {
    if (event.kind == sim::TraceKind::kJobResume &&
        static_cast<JobId>(event.a) == victim) {
      resume_time = event.time;
      break;
    }
  }
  ASSERT_GE(resume_time.value(), 0.0) << "victim never resumed";
  EXPECT_LT(resume_time, rt.record(vip).completed);
  EXPECT_EQ(report.replay_checked_steps, report.electrical.steps);
}

TEST(ElectricalPreemption, KAnyWaiterNeverEvictsElectricalTenants) {
  // A high-priority kAny arrival has the optical line working for it; even
  // when its ring positions collide with a running electrical tenant, the
  // tenant keeps its hosts (preemption would buy the waiter nothing it
  // could not get optically).
  RuntimeConfig config = shared_preempt_config();
  config.optical.wdm.num_wavelengths = 16;
  CollectiveRuntime rt(config);

  JobSpec tenant;
  tenant.participants = {0, 1, 2, 3};
  tenant.payload = util::megabytes(16);
  tenant.pin = SubstratePin::kElectricalOnly;
  tenant.priority = 0;
  const JobId pinned = rt.submit(tenant);

  JobSpec urgent;
  urgent.participants = {0, 1, 2, 3, 4, 5};
  urgent.payload = util::megabytes(1);
  urgent.arrival = util::milliseconds(2.0);
  urgent.priority = 9;  // kAny
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(rt.record(pinned).preemptions, 0u);
  EXPECT_EQ(rt.record(vip).substrate, SubstrateKind::kOptical);
}

TEST(ElectricalPreemption, StarFabricPreemptsWithoutReplayMachinery) {
  // Same eviction story on the exclusive star: no shared uplinks, no
  // retimings, no replay log — but the boundary suspend / remapped resume
  // and the composite oracle still hold.
  RuntimeConfig config = shared_preempt_config();
  config.electrical.fabric = ElectricalFabric::kStarExclusive;
  CollectiveRuntime rt(config);

  JobSpec batch;
  batch.participants = {0, 1, 2, 3};
  batch.payload = util::megabytes(32);
  batch.pin = SubstratePin::kElectricalOnly;
  batch.priority = 0;
  const JobId victim = rt.submit(batch);

  JobSpec urgent;
  urgent.participants = {2, 3, 4, 5};
  urgent.payload = util::megabytes(1);
  urgent.arrival = util::milliseconds(3.0);
  urgent.pin = SubstratePin::kElectricalOnly;
  urgent.priority = 9;
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_GE(rt.record(victim).preemptions, 1u);
  EXPECT_LT(rt.record(vip).completed, rt.record(victim).completed);
  EXPECT_EQ(report.replay_checked_steps, 0u);
  EXPECT_EQ(report.step_retimes, 0u);
  EXPECT_TRUE(rt.record(victim).oracle_ok);
}

}  // namespace
}  // namespace wrht::runtime
