#include "optical/assign.hpp"

#include <gtest/gtest.h>

#include "optical/conflict.hpp"

namespace wrht::optical {
namespace {

using topo::Arc;
using topo::Direction;
using topo::RingTopology;

// Any valid assignment must give conflicting arcs distinct wavelengths.
void expect_conflict_free(const RingTopology& ring,
                          const std::vector<Arc>& arcs,
                          const AssignmentResult& result) {
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.lambda.size(), arcs.size());
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    for (std::size_t b = a + 1; b < arcs.size(); ++b) {
      if (ring.arcs_conflict(arcs[a], arcs[b])) {
        EXPECT_NE(result.lambda[a], result.lambda[b])
            << "arcs " << a << " and " << b << " share a wavelength";
      }
    }
  }
}

TEST(FirstFit, DisjointArcsShareLambdaZero) {
  const RingTopology ring(8);
  const std::vector<Arc> arcs = {
      ring.arc(0, 2, Direction::kClockwise),
      ring.arc(2, 4, Direction::kClockwise),
      ring.arc(4, 6, Direction::kClockwise),
  };
  const AssignmentResult result = assign_wavelengths(ring, arcs, 4);
  expect_conflict_free(ring, arcs, result);
  EXPECT_EQ(result.wavelengths_used, 1u);
  for (const WavelengthId lambda : result.lambda) {
    EXPECT_EQ(lambda, 0u);
  }
}

TEST(FirstFit, NestedArcsGetDistinctLambdas) {
  const RingTopology ring(16);
  // Wrht left side: 4 members at distances 1..4 from the representative.
  std::vector<Arc> arcs;
  for (topo::NodeId member = 4; member < 8; ++member) {
    arcs.push_back(ring.arc(member, 8, Direction::kClockwise));
  }
  const AssignmentResult result = assign_wavelengths(ring, arcs, 8);
  expect_conflict_free(ring, arcs, result);
  EXPECT_EQ(result.wavelengths_used, 4u);
}

TEST(FirstFit, FailsWhenSpectrumTooSmall) {
  const RingTopology ring(16);
  std::vector<Arc> arcs;
  for (topo::NodeId member = 2; member < 8; ++member) {
    arcs.push_back(ring.arc(member, 8, Direction::kClockwise));
  }
  const AssignmentResult result = assign_wavelengths(ring, arcs, 3);
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.failed_arc.has_value());
  EXPECT_LT(*result.failed_arc, arcs.size());
}

TEST(FirstFit, OppositeDirectionsIndependent) {
  const RingTopology ring(8);
  const std::vector<Arc> arcs = {
      ring.arc(0, 4, Direction::kClockwise),
      ring.arc(4, 0, Direction::kCounterClockwise),
  };
  const AssignmentResult result = assign_wavelengths(ring, arcs, 1);
  expect_conflict_free(ring, arcs, result);
  EXPECT_EQ(result.wavelengths_used, 1u);
}

TEST(BestFit, ProducesConflictFreeAssignment) {
  const RingTopology ring(12);
  std::vector<Arc> arcs;
  for (topo::NodeId i = 0; i < 12; i += 2) {
    arcs.push_back(ring.arc(i, (i + 3) % 12, Direction::kClockwise));
  }
  const AssignmentResult result =
      assign_wavelengths(ring, arcs, 6, FitPolicy::kBestFit);
  expect_conflict_free(ring, arcs, result);
}

TEST(BestFit, PrefersBusyWavelengths) {
  const RingTopology ring(12);
  // First arc occupies lambda 0 over a long stretch; a later disjoint arc
  // should pack onto lambda 0 rather than open lambda 1 (both policies do
  // here), and a conflicting arc must open lambda 1.
  const std::vector<Arc> arcs = {
      ring.arc(0, 6, Direction::kClockwise),
      ring.arc(6, 9, Direction::kClockwise),   // disjoint
      ring.arc(3, 8, Direction::kClockwise),   // conflicts with both
  };
  const AssignmentResult result =
      assign_wavelengths(ring, arcs, 4, FitPolicy::kBestFit);
  expect_conflict_free(ring, arcs, result);
  EXPECT_EQ(result.lambda[0], result.lambda[1]);
  EXPECT_EQ(result.wavelengths_used, 2u);
}

TEST(LongestFirst, LambdaIndexedByOriginalOrder) {
  const RingTopology ring(16);
  const std::vector<Arc> arcs = {
      ring.arc(0, 1, Direction::kClockwise),   // short
      ring.arc(2, 10, Direction::kClockwise),  // long
  };
  const AssignmentResult result =
      assign_wavelengths_longest_first(ring, arcs, 4);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.lambda.size(), 2u);
  // Disjoint: both on lambda 0 regardless of processing order.
  EXPECT_EQ(result.lambda[0], 0u);
  EXPECT_EQ(result.lambda[1], 0u);
}

TEST(Assignment, AllToAllOnRingWithinPaperBound) {
  // The paper allocates ceil(k^2/8) wavelengths for all-to-all among k
  // evenly spaced nodes (Liang & Shen).  With direction-balanced routing the
  // heuristic must stay within the bound for the k values the Wrht merge
  // step actually sees.
  for (const std::uint32_t k : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 22u}) {
    const std::uint32_t n = k * 8;  // evenly spaced on a larger ring
    const RingTopology ring(n);
    std::vector<topo::NodeId> nodes;
    for (std::uint32_t i = 0; i < k; ++i) nodes.push_back(i * 8);
    const std::vector<Arc> arcs = balanced_all_to_all_arcs(ring, nodes);
    ASSERT_EQ(arcs.size(), std::size_t{k} * (k - 1));

    // The exact Liang & Shen construction meets ceil(k^2/8); our greedy
    // routing + longest-first coloring is measured within 10% of it
    // (assignment_ablation bench prints the table).  Enforce that envelope.
    const std::uint32_t bound = (k * k + 7) / 8;
    const std::uint32_t slack = bound + bound / 10 + 1;
    EXPECT_LE(max_link_load(ring, arcs), slack) << "k=" << k;
    const AssignmentResult result =
        assign_wavelengths_longest_first(ring, arcs, slack);
    ASSERT_TRUE(result.ok) << "k=" << k
                           << ": heuristic exceeded 1.1 x ceil(k^2/8), slack="
                           << slack;
    expect_conflict_free(ring, arcs, result);
    // Small instances should meet the bound exactly.
    if (k <= 8) {
      EXPECT_LE(result.wavelengths_used, bound) << "k=" << k;
    }
  }
}

TEST(Assignment, BalancedAllToAllBeatsNaiveShortestPath) {
  // The motivating case: 4 evenly spaced nodes.  Naive shortest-direction
  // routing needs 3 wavelengths on the clockwise waveguide; balanced
  // routing meets the bound of 2.
  const RingTopology ring(32);
  const std::vector<topo::NodeId> nodes = {0, 8, 16, 24};
  std::vector<Arc> naive;
  for (const topo::NodeId a : nodes) {
    for (const topo::NodeId b : nodes) {
      if (a == b) continue;
      naive.push_back(ring.arc(a, b, ring.shortest_direction(a, b)));
    }
  }
  const std::vector<Arc> balanced = balanced_all_to_all_arcs(ring, nodes);
  EXPECT_GT(max_link_load(ring, naive), max_link_load(ring, balanced));
  EXPECT_EQ(max_link_load(ring, balanced), 2u);
}

TEST(Assignment, BalancedAllToAllArcsConnectRightEndpoints) {
  const RingTopology ring(40);
  const std::vector<topo::NodeId> nodes = {3, 11, 25, 31, 38};
  const std::vector<Arc> arcs = balanced_all_to_all_arcs(ring, nodes);
  std::size_t index = 0;
  for (const topo::NodeId a : nodes) {
    for (const topo::NodeId b : nodes) {
      if (a == b) continue;
      const Arc& arc = arcs[index++];
      EXPECT_EQ(ring.advance(a, arc.length,
                             arc.direction),
                b)
          << a << "->" << b;
    }
  }
}

TEST(Assignment, MatchesOptimalOnSmallInstances) {
  // On instances small enough for exact coloring, longest-first First Fit
  // should stay within one wavelength of optimal.
  const RingTopology ring(10);
  std::vector<Arc> arcs;
  for (topo::NodeId i = 0; i < 10; ++i) {
    arcs.push_back(ring.arc(i, (i + 3) % 10, Direction::kClockwise));
  }
  const std::uint32_t optimal = optimal_wavelength_count(ring, arcs);
  const AssignmentResult result =
      assign_wavelengths_longest_first(ring, arcs, 16);
  ASSERT_TRUE(result.ok);
  EXPECT_LE(result.wavelengths_used, optimal + 1);
}

TEST(Assignment, EmptyInput) {
  const RingTopology ring(4);
  const AssignmentResult result = assign_wavelengths(ring, {}, 4);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.wavelengths_used, 0u);
}

TEST(PolicyNames, Stable) {
  EXPECT_STREQ(fit_policy_name(FitPolicy::kFirstFit), "first_fit");
  EXPECT_STREQ(fit_policy_name(FitPolicy::kBestFit), "best_fit");
}

}  // namespace
}  // namespace wrht::optical
