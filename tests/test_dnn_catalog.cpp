#include "dnn/catalog.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wrht::dnn {
namespace {

TEST(AlexNet, ExactLayerTable) {
  const Model model = alexnet();
  // The original Krizhevsky architecture counted with biases.
  EXPECT_EQ(model.table_params(), 62'378'344u);
  EXPECT_EQ(model.declared_params(), 62'300'000u);
  EXPECT_EQ(model.layers().size(), 8u);
}

TEST(AlexNet, KnownLayerValues) {
  const Model model = alexnet();
  EXPECT_EQ(model.layers()[0].params, 34'944u);       // conv1
  EXPECT_EQ(model.layers()[5].params, 37'752'832u);   // fc6
  EXPECT_EQ(model.layers()[7].params, 4'097'000u);    // fc8
}

TEST(Vgg16, ExactLayerTable) {
  const Model model = vgg16();
  EXPECT_EQ(model.table_params(), 138'357'544u);
  EXPECT_EQ(model.declared_params(), 138'000'000u);
  EXPECT_EQ(model.layers().size(), 16u);
}

TEST(Vgg16, FcDominatesParameterMass) {
  const Model model = vgg16();
  std::uint64_t conv = 0;
  std::uint64_t fc = 0;
  for (const Layer& layer : model.layers()) {
    (layer.kind == LayerKind::kFullyConnected ? fc : conv) += layer.params;
  }
  EXPECT_EQ(conv, 14'714'688u);
  EXPECT_EQ(fc, 123'642'856u);
}

TEST(ResNet50, ExactTorchvisionCount) {
  const Model model = resnet50();
  EXPECT_EQ(model.table_params(), 25'557'032u);
  EXPECT_EQ(model.declared_params(), 25'000'000u);
  // conv1 + 16 bottleneck blocks + fc.
  EXPECT_EQ(model.layers().size(), 18u);
}

TEST(ResNet50, FinalFcSize) {
  const Model model = resnet50();
  EXPECT_EQ(model.layers().back().params, 2'049'000u);
}

TEST(GoogLeNet, TableNearDeclared) {
  const Model model = googlenet();
  EXPECT_EQ(model.declared_params(), 6'797'700u);
  // Original Inception-v1 with biases and no aux heads: 6,998,552.
  EXPECT_EQ(model.table_params(), 6'998'552u);
  const double deviation =
      std::abs(static_cast<double>(model.table_params()) -
               static_cast<double>(model.declared_params())) /
      static_cast<double>(model.declared_params());
  EXPECT_LT(deviation, 0.035);
  // 3 stem convs + 9 inception modules + fc.
  EXPECT_EQ(model.layers().size(), 13u);
}

TEST(GoogLeNet, InceptionModuleValues) {
  const Model model = googlenet();
  // inception3a is layer index 3.
  EXPECT_EQ(model.layers()[3].name, "inception3a");
  EXPECT_EQ(model.layers()[3].params, 163'696u);
  EXPECT_EQ(model.layers()[11].name, "inception5b");
  EXPECT_EQ(model.layers()[11].params, 1'444'080u);
}

TEST(ExtendedCatalog, Vgg19ExactCount) {
  const Model model = vgg19();
  EXPECT_EQ(model.table_params(), 143'667'240u);
  EXPECT_EQ(model.declared_params(), 143'667'240u);
  EXPECT_EQ(model.layers().size(), 19u);
}

TEST(ExtendedCatalog, ResNet101ExactCount) {
  const Model model = resnet101();
  EXPECT_EQ(model.table_params(), 44'549'160u);
  EXPECT_EQ(model.declared_params(), 44'549'160u);
  // conv1 + (3+4+23+3) blocks + fc.
  EXPECT_EQ(model.layers().size(), 35u);
}

TEST(ExtendedCatalog, ResNet152ExactCount) {
  const Model model = resnet152();
  EXPECT_EQ(model.table_params(), 60'192'808u);
  EXPECT_EQ(model.layers().size(), 52u);
}

TEST(ExtendedCatalog, DeeperVariantsAreLarger) {
  EXPECT_GT(vgg19().table_params(), vgg16().table_params());
  EXPECT_GT(resnet101().table_params(), resnet50().table_params());
  EXPECT_GT(resnet152().table_params(), resnet101().table_params());
}

TEST(ExtendedCatalog, AllModelsListsSeven) {
  const auto models = all_models();
  ASSERT_EQ(models.size(), 7u);
  EXPECT_EQ(models[4].name(), "VGG19");
  EXPECT_EQ(models[6].name(), "ResNet152");
}

TEST(PaperModels, OrderAndSizes) {
  const std::vector<Model> models = paper_models();
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(models[0].name(), "AlexNet");
  EXPECT_EQ(models[1].name(), "VGG16");
  EXPECT_EQ(models[2].name(), "ResNet50");
  EXPECT_EQ(models[3].name(), "GoogLeNet");
  // The ordering the paper's panels rely on: VGG16 largest, GoogLeNet
  // smallest.
  EXPECT_GT(models[1].declared_params(), models[0].declared_params());
  EXPECT_GT(models[0].declared_params(), models[2].declared_params());
  EXPECT_GT(models[2].declared_params(), models[3].declared_params());
}

TEST(PaperModels, DeclaredWithinFivePercentOfTable) {
  for (const Model& model : paper_models()) {
    const double table = static_cast<double>(model.table_params());
    const double declared = static_cast<double>(model.declared_params());
    EXPECT_LT(std::abs(table - declared) / declared, 0.05) << model.name();
  }
}

TEST(GradientBytes, Fp32AndFp16) {
  const Model model = alexnet();
  EXPECT_EQ(model.gradient_bytes(DType::kF32).count(), 62'300'000ull * 4);
  EXPECT_EQ(model.gradient_bytes(DType::kF16).count(), 62'300'000ull * 2);
  EXPECT_EQ(model.gradient_bytes(DType::kF64).count(), 62'300'000ull * 8);
}

TEST(DtypeHelpers, SizesAndNames) {
  EXPECT_EQ(dtype_bytes(DType::kF32), 4u);
  EXPECT_EQ(dtype_bytes(DType::kBF16), 2u);
  EXPECT_STREQ(dtype_name(DType::kF32), "f32");
  EXPECT_STREQ(dtype_name(DType::kBF16), "bf16");
}

TEST(LayerKindNames, Stable) {
  EXPECT_STREQ(layer_kind_name(LayerKind::kConvolution), "conv");
  EXPECT_STREQ(layer_kind_name(LayerKind::kInception), "inception");
  EXPECT_STREQ(layer_kind_name(LayerKind::kBlock), "block");
}

}  // namespace
}  // namespace wrht::dnn
