// RuntimeReport's SLO block: the published percentiles must match an
// independent recomputation from the per-job records, the per-priority
// max-wait gauges must agree with the records, and the block must be
// present with or without a MetricsRegistry installed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "runtime/runtime.hpp"

namespace wrht::runtime {
namespace {

using util::Seconds;

/// Six full-band jobs on a saturated ring: they run back to back, so every
/// later job queues and the waits / turnarounds spread out.
void submit_saturating_mix(CollectiveRuntime& rt) {
  for (std::uint32_t i = 0; i < 6; ++i) {
    JobSpec spec;
    for (std::uint32_t n = 0; n < 8; ++n) spec.participants.push_back(n);
    spec.payload = util::megabytes(4);
    spec.min_wavelengths = 8;
    spec.priority = static_cast<std::int32_t>(i % 2);
    // Tight enough that the late queuers miss, generous enough that the
    // first job hits.
    spec.deadline = util::milliseconds(40.0);
    spec.name = "job" + std::to_string(i);
    rt.submit(spec);
  }
}

RuntimeConfig saturating_config() {
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.enabled = false;
  return config;
}

TEST(RuntimeSlo, ReportMatchesRecomputationFromRecords) {
  obs::MetricsRegistry registry;
  RuntimeConfig config = saturating_config();
  config.metrics = &registry;
  CollectiveRuntime rt(config);
  submit_saturating_mix(rt);
  const RuntimeReport report = rt.run();
  ASSERT_EQ(report.completed, 6u);

  const obs::SloStats recomputed = obs::compute_slo(rt.records());
  EXPECT_EQ(report.slo.jobs, recomputed.jobs);
  EXPECT_EQ(report.slo.p50_turnaround, recomputed.p50_turnaround);
  EXPECT_EQ(report.slo.p99_turnaround, recomputed.p99_turnaround);
  EXPECT_EQ(report.slo.p999_turnaround, recomputed.p999_turnaround);
  EXPECT_EQ(report.slo.p50_slowdown, recomputed.p50_slowdown);
  EXPECT_EQ(report.slo.p99_slowdown, recomputed.p99_slowdown);
  EXPECT_EQ(report.slo.p999_slowdown, recomputed.p999_slowdown);
  EXPECT_EQ(report.slo.max_wait, recomputed.max_wait);
  EXPECT_EQ(report.slo.deadline_jobs, recomputed.deadline_jobs);
  EXPECT_EQ(report.slo.deadline_hits, recomputed.deadline_hits);

  // And against a from-scratch quantile over the raw turnarounds.
  std::vector<double> turnarounds;
  for (const JobRecord& record : rt.records()) {
    turnarounds.push_back(record.turnaround().value());
  }
  EXPECT_EQ(report.slo.p50_turnaround.value(),
            obs::exact_quantile(turnarounds, 0.5));
  EXPECT_EQ(report.slo.p999_turnaround.value(),
            obs::exact_quantile(turnarounds, 0.999));

  // Back-to-back service means turnarounds genuinely spread: p50 < p99.
  EXPECT_LT(report.slo.p50_turnaround, report.slo.p99_turnaround);
  // Every job carried a deadline; the tight budget splits them.
  EXPECT_EQ(report.slo.deadline_jobs, 6u);
  EXPECT_GE(report.slo.deadline_hits, 1u);
  EXPECT_LT(report.slo.deadline_hits, 6u);
}

TEST(RuntimeSlo, PerPriorityMaxWaitGaugesMatchRecords) {
  obs::MetricsRegistry registry;
  RuntimeConfig config = saturating_config();
  config.metrics = &registry;
  CollectiveRuntime rt(config);
  submit_saturating_mix(rt);
  (void)rt.run();

  for (std::int32_t priority = 0; priority < 2; ++priority) {
    double expected = 0.0;
    for (const JobRecord& record : rt.records()) {
      if (record.spec.priority != priority) continue;
      expected = std::max(expected,
                          (record.admitted - record.spec.arrival).value());
    }
    const obs::Gauge* gauge = registry.find_gauge(
        "runtime.max_wait_seconds.p" + std::to_string(priority));
    ASSERT_NE(gauge, nullptr) << "priority " << priority;
    EXPECT_DOUBLE_EQ(gauge->value(), expected) << "priority " << priority;
  }
  // The overall max wait is the max over the per-priority gauges.
  EXPECT_DOUBLE_EQ(
      std::max(
          registry.find_gauge("runtime.max_wait_seconds.p0")->value(),
          registry.find_gauge("runtime.max_wait_seconds.p1")->value()),
      obs::compute_slo(rt.records()).max_wait.value());
}

TEST(RuntimeSlo, SloBlockIsComputedWithoutARegistry) {
  CollectiveRuntime rt(saturating_config());
  submit_saturating_mix(rt);
  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.slo.jobs, 6u);
  EXPECT_GT(report.slo.p50_turnaround, Seconds(0.0));
  EXPECT_EQ(report.slo.deadline_jobs, 6u);
}

TEST(RuntimeSlo, RegistryHistogramsAgreeWithTheRunCounts) {
  obs::MetricsRegistry registry;
  RuntimeConfig config = saturating_config();
  config.metrics = &registry;
  CollectiveRuntime rt(config);
  submit_saturating_mix(rt);
  const RuntimeReport report = rt.run();

  const obs::Histogram* turnaround =
      registry.find_histogram("runtime.turnaround_seconds");
  ASSERT_NE(turnaround, nullptr);
  EXPECT_EQ(turnaround->count(), report.completed);
  // The streaming summary's extremes bracket the exact percentiles.
  EXPECT_LE(turnaround->summary().min(),
            report.slo.p50_turnaround.value());
  EXPECT_GE(turnaround->summary().max() + 1e-12,
            report.slo.p999_turnaround.value());

  EXPECT_EQ(registry.find_counter("runtime.jobs_submitted")->value(),
            report.submitted);
  EXPECT_EQ(registry.find_counter("runtime.jobs_completed")->value(),
            report.completed);

  // The sampler ran: queue depth was pumped and bookended.
  const obs::TimeSeriesSampler& sampler = registry.sampler();
  ASSERT_FALSE(sampler.series().empty());
  for (const obs::TimeSeriesSampler::Series& series : sampler.series()) {
    if (series.name != "runtime.queue_depth") continue;
    ASSERT_GE(series.points.size(), 2u);
    // Strictly increasing timestamps within the series.
    for (std::size_t i = 1; i < series.points.size(); ++i) {
      EXPECT_GT(series.points[i].time_seconds,
                series.points[i - 1].time_seconds);
    }
    // The run ends with an empty queue.
    EXPECT_EQ(series.points.back().value, 0.0);
  }
}

}  // namespace
}  // namespace wrht::runtime
