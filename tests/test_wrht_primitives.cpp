#include "wrht/primitives.hpp"

#include <gtest/gtest.h>

#include "coll/oracle.hpp"
#include "optical/spectrum.hpp"
#include "util/math.hpp"
#include "wrht/executor.hpp"

namespace wrht::core {
namespace {

WrhtParams params_with(std::uint32_t w) {
  WrhtParams params;
  params.num_wavelengths = w;
  return params;
}

void expect_conflict_free(const AnnotatedSchedule& annotated) {
  const topo::RingTopology ring(annotated.schedule.num_nodes());
  for (const auto& step : annotated.paths) {
    optical::SpectrumMap spectrum(
        ring, std::max(1u, annotated.wavelengths_required));
    for (const PathAssignment& path : step) {
      for (const optical::WavelengthId lambda : path.lambdas) {
        ASSERT_TRUE(spectrum.is_free(path.arc, lambda));
        spectrum.reserve(path.arc, lambda);
      }
    }
  }
}

class WrhtReduceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(WrhtReduceSweep, ReducesToRoot) {
  const auto [n, w] = GetParam();
  const WrhtReduceBuild build = build_wrht_reduce(n, params_with(w));
  const coll::OracleResult result =
      coll::Oracle::verify_reduce(build.annotated.schedule, build.root, 32);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_LE(build.annotated.wavelengths_required, w);
  expect_conflict_free(build.annotated);
  // Reduce alone is exactly the tree depth.
  EXPECT_EQ(build.annotated.schedule.num_steps(),
            util::ceil_log(build.group_size_m, n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WrhtReduceSweep,
    ::testing::Combine(::testing::Values(2u, 5u, 16u, 33u, 64u, 128u),
                       ::testing::Values(2u, 8u, 64u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_w" +
             std::to_string(std::get<1>(param_info.param));
    });

class WrhtBroadcastSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, topo::NodeId>> {};

TEST_P(WrhtBroadcastSweep, BroadcastsFromRoot) {
  const auto [n, w, root_seed] = GetParam();
  const topo::NodeId root = root_seed % n;
  const WrhtBroadcastBuild build =
      build_wrht_broadcast(n, root, params_with(w));
  EXPECT_EQ(build.root, root);
  const coll::OracleResult result =
      coll::Oracle::verify_broadcast(build.annotated.schedule, root, 32);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_LE(build.annotated.wavelengths_required, w);
  expect_conflict_free(build.annotated);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WrhtBroadcastSweep,
    ::testing::Combine(::testing::Values(2u, 5u, 16u, 33u, 64u, 128u),
                       ::testing::Values(2u, 8u, 64u),
                       ::testing::Values(0u, 1u, 7u, 100u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_w" +
             std::to_string(std::get<1>(param_info.param)) + "_r" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(WrhtReduce, RootIsTopRepresentative) {
  const WrhtReduceBuild build = build_wrht_reduce(128, params_with(64));
  // Single group of 128: the middle node.
  EXPECT_EQ(build.root, 64u);
  EXPECT_EQ(build.annotated.schedule.num_steps(), 1u);
}

TEST(WrhtBroadcast, RunsOnOpticalNetwork) {
  const WrhtBroadcastBuild build =
      build_wrht_broadcast(100, 37, params_with(16));
  optical::OpticalParams p;
  p.wdm.num_wavelengths = 16;
  const optical::RunResult run =
      run_on_optical(build.annotated, p, util::megabytes(50));
  EXPECT_GT(run.total.value(), 0.0);
  EXPECT_EQ(run.steps.size(), build.annotated.schedule.num_steps());
}

TEST(WrhtBroadcast, HalfTheStepsOfAllReduce) {
  const std::uint32_t n = 200;
  const WrhtParams params = params_with(8);
  WrhtParams no_merge = params;
  no_merge.allow_all_to_all_merge = false;
  const WrhtBuild full = build_wrht(n, no_merge);
  const WrhtBroadcastBuild bcast = build_wrht_broadcast(n, 0, params);
  EXPECT_EQ(bcast.annotated.schedule.num_steps() * 2,
            full.annotated.schedule.num_steps());
}

TEST(WrhtBroadcast, RotationPreservesWavelengthCounts) {
  const std::uint32_t n = 90;
  for (const topo::NodeId root : {0u, 13u, 45u, 89u}) {
    const WrhtBroadcastBuild build =
        build_wrht_broadcast(n, root, params_with(8));
    EXPECT_LE(build.annotated.wavelengths_required, 8u) << "root=" << root;
  }
}

}  // namespace
}  // namespace wrht::core
