#include "optical/network.hpp"

#include <gtest/gtest.h>

namespace wrht::optical {
namespace {

using topo::Direction;
using util::Bytes;
using util::Seconds;

OpticalParams test_params() {
  OpticalParams p;
  p.wdm.num_wavelengths = 4;
  p.wdm.wavelength_bandwidth = util::gBps(1.0);  // 1 GB/s: easy arithmetic
  p.tune_time = util::microseconds(100.0);
  p.sync_time = util::microseconds(10.0);
  p.transceiver_time = util::microseconds(5.0);
  p.propagation_per_hop = util::microseconds(1.0);
  return p;
}

TimedTransfer make_transfer(const OpticalRingNetwork& network,
                            topo::NodeId src, topo::NodeId dst, Bytes bytes,
                            WavelengthId lambda) {
  const topo::Direction dir = network.ring().shortest_direction(src, dst);
  return TimedTransfer{src, dst, bytes, network.ring().arc(src, dst, dir),
                       {lambda}};
}

TEST(OpticalNetwork, SingleTransferTiming) {
  OpticalRingNetwork network(8, test_params());
  // 1 MB over 1 GB/s = 1 ms; + tune 100us + transceiver 5us + 2 hops * 1us
  // + sync 10us.
  const StepResult result = network.execute_step(
      {make_transfer(network, 0, 2, Bytes(1'000'000), 0)});
  EXPECT_NEAR(result.duration.value(), 1e-3 + 100e-6 + 5e-6 + 2e-6 + 10e-6,
              1e-12);
  EXPECT_EQ(result.retunes, 1u);
  EXPECT_NEAR(network.now().value(), result.duration.value(), 1e-12);
}

TEST(OpticalNetwork, StepMakespanIsSlowestTransfer) {
  OpticalRingNetwork network(8, test_params());
  const StepResult result = network.execute_step({
      make_transfer(network, 0, 1, Bytes(1'000'000), 0),  // 1 ms
      make_transfer(network, 4, 5, Bytes(3'000'000), 0),  // 3 ms, reused λ
  });
  EXPECT_NEAR(result.duration.value(), 3e-3 + 100e-6 + 5e-6 + 1e-6 + 10e-6,
              1e-12);
  EXPECT_NEAR(result.slowest_data.value(), 3e-3, 1e-12);
}

TEST(OpticalNetwork, StripedTransferRunsFaster) {
  OpticalRingNetwork network(8, test_params());
  TimedTransfer striped = make_transfer(network, 0, 2, Bytes(2'000'000), 0);
  striped.lambdas = {0, 1};  // 2 GB/s effective
  const StepResult result = network.execute_step({striped});
  EXPECT_NEAR(result.slowest_data.value(), 1e-3, 1e-12);
}

TEST(OpticalNetwork, StepsAccumulateTime) {
  OpticalRingNetwork network(8, test_params());
  const std::vector<std::vector<TimedTransfer>> steps = {
      {make_transfer(network, 0, 1, Bytes(1'000'000), 0)},
      {make_transfer(network, 1, 2, Bytes(1'000'000), 0)},
  };
  const RunResult run = network.execute_steps(steps);
  ASSERT_EQ(run.steps.size(), 2u);
  EXPECT_NEAR(run.total.value(),
              run.steps[0].duration.value() + run.steps[1].duration.value(),
              1e-12);
}

TEST(OpticalNetwork, ConflictingWavelengthAborts) {
  OpticalRingNetwork network(8, test_params());
  const std::vector<TimedTransfer> bad = {
      make_transfer(network, 0, 3, Bytes(1000), 0),
      make_transfer(network, 2, 5, Bytes(1000), 0),  // overlaps span 2 on λ0
  };
  EXPECT_DEATH(network.execute_step(bad), "already taken");
}

TEST(OpticalNetwork, SpectrumReleasedBetweenSteps) {
  OpticalRingNetwork network(8, test_params());
  // Same arc and wavelength in consecutive steps must be fine.
  const TimedTransfer t = make_transfer(network, 0, 3, Bytes(1000), 0);
  network.execute_step({t});
  network.execute_step({t});
  EXPECT_GT(network.now().value(), 0.0);
}

TEST(OpticalNetwork, RetuneTrackingWithoutForcedRetune) {
  OpticalParams p = test_params();
  p.retune_every_step = false;
  OpticalRingNetwork network(8, p);
  const TimedTransfer t = make_transfer(network, 0, 3, Bytes(1'000'000), 2);
  const StepResult first = network.execute_step({t});
  const StepResult second = network.execute_step({t});
  EXPECT_EQ(first.retunes, 1u);
  EXPECT_EQ(second.retunes, 0u);
  // The second step skips tune + transceiver time.
  EXPECT_NEAR(first.duration.value() - second.duration.value(),
              p.tune_time.value() + p.transceiver_time.value(), 1e-12);
}

TEST(OpticalNetwork, ForcedRetuneChargesEveryStep) {
  OpticalRingNetwork network(8, test_params());  // retune_every_step = true
  const TimedTransfer t = make_transfer(network, 0, 3, Bytes(1'000'000), 2);
  const StepResult first = network.execute_step({t});
  const StepResult second = network.execute_step({t});
  EXPECT_EQ(first.retunes, 1u);
  EXPECT_EQ(second.retunes, 1u);
  EXPECT_NEAR(first.duration.value(), second.duration.value(), 1e-12);
}

TEST(OpticalNetwork, ResetZerosClock) {
  OpticalRingNetwork network(8, test_params());
  network.execute_step({make_transfer(network, 0, 1, Bytes(1000), 0)});
  EXPECT_GT(network.now().value(), 0.0);
  network.reset();
  EXPECT_DOUBLE_EQ(network.now().value(), 0.0);
  EXPECT_EQ(network.transfer_times().count(), 0u);
}

TEST(OpticalNetwork, TraceRecordsStepLifecycle) {
  OpticalRingNetwork network(8, test_params());
  network.trace().enable();
  network.execute_step({make_transfer(network, 0, 2, Bytes(1000), 0)});
  const auto& events = network.trace().events();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.front().kind, sim::TraceKind::kStepBegin);
  EXPECT_EQ(events.back().kind, sim::TraceKind::kStepEnd);
}

TEST(OpticalNetwork, SpectrumCellSecondsAccounting) {
  OpticalRingNetwork network(8, test_params());
  // One transfer over 2 hops on 1 wavelength, duration d: hold = d * 1 * 2.
  const StepResult result = network.execute_step(
      {make_transfer(network, 0, 2, Bytes(1'000'000), 0)});
  const double duration = result.duration.value() - 10e-6;  // minus sync
  EXPECT_NEAR(network.spectrum_cell_seconds(), duration * 2.0, 1e-12);
}

TEST(OpticalNetwork, UtilizationBounded) {
  OpticalRingNetwork network(8, test_params());
  network.execute_step({
      make_transfer(network, 0, 2, Bytes(1'000'000), 0),
      make_transfer(network, 4, 6, Bytes(1'000'000), 0),
  });
  const double utilization = network.spectrum_utilization();
  EXPECT_GT(utilization, 0.0);
  EXPECT_LT(utilization, 1.0);
}

TEST(OpticalNetwork, UtilizationZeroBeforeAnyStep) {
  const OpticalRingNetwork network(8, test_params());
  EXPECT_DOUBLE_EQ(network.spectrum_utilization(), 0.0);
}

TEST(OpticalNetwork, ResetClearsUtilization) {
  OpticalRingNetwork network(8, test_params());
  network.execute_step({make_transfer(network, 0, 2, Bytes(1000), 0)});
  EXPECT_GT(network.spectrum_cell_seconds(), 0.0);
  network.reset();
  EXPECT_DOUBLE_EQ(network.spectrum_cell_seconds(), 0.0);
}

TEST(OpticalNetwork, EmptyStepCostsOnlySync) {
  OpticalRingNetwork network(8, test_params());
  const StepResult result = network.execute_step({});
  EXPECT_NEAR(result.duration.value(), 10e-6, 1e-12);
}

TEST(OpticalNetwork, ZeroByteTransferStillPaysOverheads) {
  OpticalRingNetwork network(8, test_params());
  const StepResult result =
      network.execute_step({make_transfer(network, 0, 1, Bytes(0), 0)});
  EXPECT_NEAR(result.duration.value(), 100e-6 + 5e-6 + 1e-6 + 10e-6, 1e-12);
}

}  // namespace
}  // namespace wrht::optical
