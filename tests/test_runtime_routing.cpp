// Congestion-aware cost-model routing (RoutingCostModel::kCongestionAware)
// and its per-decision audit trail.
//
// The quiet alpha-beta comparison is kept as an ablation baseline; on idle
// fabrics the two models must agree decision-for-decision (no congestion
// to fold in, no backlog to wait out).  Under saturation they diverge in
// exactly two ways, each pinned by a test here: a hot shared electrical
// fabric repels borderline spill (uplink residuals), and a backed-up
// optical ring stops holding predicted-faster-optical jobs hostage
// (spectrum queue-wait).  Every bound decision is traced (kRouteDecision,
// carrying both predicted completions) and scored against the job's actual
// completion in RuntimeReport::routing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace wrht::runtime {
namespace {

JobSpec span_job(std::uint32_t first, std::uint32_t count,
                 util::Bytes payload, util::Seconds arrival = {}) {
  JobSpec spec;
  for (std::uint32_t i = 0; i < count; ++i) {
    spec.participants.push_back(first + i);
  }
  spec.payload = payload;
  spec.arrival = arrival;
  return spec;
}

RuntimeConfig cost_choice_config(RoutingCostModel model) {
  RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.batcher.enabled = false;
  config.placement = HybridPlacementPolicy::kCostModelChoice;
  config.routing_cost_model = model;
  return config;
}

TEST(CongestionAwareRouting, MatchesQuietModelOnIdleFabrics) {
  // Spectrum free, star fallback idle: predict_completion degenerates to
  // now + predict_makespan on both sides, so the two models must place
  // every job identically (the PR-3 scenario: tiny latency-bound job goes
  // electrical, huge bandwidth-bound job stays optical).
  auto run_model = [](RoutingCostModel model) {
    CollectiveRuntime rt(cost_choice_config(model));
    JobSpec tiny = span_job(0, 8, util::kilobytes(64));
    tiny.min_wavelengths = 2;
    rt.submit(tiny);
    JobSpec huge = span_job(16, 8, util::megabytes(256));
    huge.min_wavelengths = 2;
    huge.requested_wavelengths = 8;
    rt.submit(huge);
    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed, 2u);
    return std::vector<SubstrateKind>{rt.record(0).substrate,
                                      rt.record(1).substrate};
  };
  const auto quiet = run_model(RoutingCostModel::kQuietAlphaBeta);
  const auto aware = run_model(RoutingCostModel::kCongestionAware);
  EXPECT_EQ(quiet, aware);
  EXPECT_EQ(quiet[0], SubstrateKind::kElectrical);
  EXPECT_EQ(quiet[1], SubstrateKind::kOptical);
}

RuntimeConfig saturated_shared_config(RoutingCostModel model) {
  RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 8;
  config.batcher.enabled = false;
  config.placement = HybridPlacementPolicy::kCostModelChoice;
  config.routing_cost_model = model;
  config.electrical.fabric = ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = 16;
  config.electrical.oversubscription = 8.0;
  return config;
}

/// Sixteen disjoint ToR-straddling pairs {j, 16+j}: nothing host-blocks,
/// so quiet routing spills every one onto the same oversubscribed uplinks.
void submit_straddling_burst(CollectiveRuntime& rt) {
  for (std::uint32_t j = 0; j < 16; ++j) {
    JobSpec spec;
    spec.participants = {j, 16 + j};
    spec.payload = util::megabytes(2);
    spec.requested_wavelengths = 1;
    spec.arrival = util::microseconds(40.0 * j);
    rt.submit(spec);
  }
}

TEST(CongestionAwareRouting, SaturatedUplinksRepelOverspill) {
  auto run_model = [](RoutingCostModel model) {
    CollectiveRuntime rt(saturated_shared_config(model));
    submit_straddling_burst(rt);
    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed, 16u);
    return report;
  };
  const RuntimeReport quiet = run_model(RoutingCostModel::kQuietAlphaBeta);
  const RuntimeReport aware = run_model(RoutingCostModel::kCongestionAware);

  // The quiet model, blind to its own spill, dumps the whole burst onto
  // the electrical fabric; the congestion-aware model stops once the
  // stretched prediction loses the comparison, and the split run finishes
  // sooner with less contention.
  EXPECT_EQ(quiet.routing.to_electrical, 16u);
  EXPECT_GT(aware.routing.to_optical, 0u);
  EXPECT_LT(aware.routing.to_electrical, quiet.routing.to_electrical);
  EXPECT_LT(aware.makespan, quiet.makespan);
  EXPECT_LT(aware.electrical.contention_slowdown(),
            quiet.electrical.contention_slowdown());
  // And its promises were better kept.
  EXPECT_LT(aware.routing.mean_error, quiet.routing.mean_error);
}

TEST(CongestionAwareRouting, DrainForecastCutsErrorOnADrainingFabric) {
  // Two waves of ToR-straddling pairs.  The first saturates the uplinks at
  // t=0; the second lands while those flows are still in flight but
  // predicted to drain within the arrivals' own spans.  The clone probe
  // alone would stretch the second wave's electrical predictions as if the
  // contention it sees were permanent; the drain forecast decays the
  // stretch by the in-flight steps' predicted ends, so the aware model's
  // promises track the actual (draining) fabric where the quiet model's
  // contention-blind ones overshoot.
  auto wave = [](CollectiveRuntime& rt, std::uint32_t first,
                 std::uint32_t count, util::Seconds arrival) {
    for (std::uint32_t j = first; j < first + count; ++j) {
      JobSpec spec;
      spec.participants = {j, 16 + j};
      spec.payload = util::megabytes(4);
      spec.requested_wavelengths = 1;
      spec.arrival = arrival;
      rt.submit(spec);
    }
  };

  // Self-calibrate: time the first wave alone, then land the second wave
  // at 80% of that makespan — busy uplinks, predictably nearly drained.
  util::Seconds drain{0.0};
  {
    CollectiveRuntime alone(
        saturated_shared_config(RoutingCostModel::kQuietAlphaBeta));
    wave(alone, 0, 8, util::Seconds(0.0));
    drain = alone.run().makespan;
  }
  const util::Seconds second_wave = util::Seconds(drain.value() * 0.8);

  auto run_model = [&](RoutingCostModel model) {
    CollectiveRuntime rt(saturated_shared_config(model));
    wave(rt, 0, 8, util::Seconds(0.0));
    wave(rt, 8, 8, second_wave);
    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed, 16u);
    return report;
  };
  const RuntimeReport quiet = run_model(RoutingCostModel::kQuietAlphaBeta);
  const RuntimeReport aware = run_model(RoutingCostModel::kCongestionAware);

  // The draining fabric must not repel the whole second wave — nearly-done
  // tenants free the uplinks within the arrivals' spans.
  EXPECT_GT(aware.routing.to_electrical, 0u);
  // And the decayed promises are kept better than the blind ones.
  EXPECT_LT(aware.routing.mean_error, quiet.routing.mean_error);
}

TEST(CongestionAwareRouting, SpectrumBacklogRoutesAroundTheRing) {
  // A hog pins the whole spectrum for tens of milliseconds.  The straddler
  // that arrives next is quietly predicted faster on the optical ring — so
  // the quiet model leaves it queued behind the hog — but the queue-wait
  // fold makes the idle electrical fabric win, and it finishes long before
  // the hog releases anything.
  auto run_model = [](RoutingCostModel model) {
    RuntimeConfig config = cost_choice_config(model);
    config.optical.wdm.num_wavelengths = 8;
    CollectiveRuntime rt(config);
    JobSpec hog = span_job(0, 16, util::megabytes(128));
    hog.requested_wavelengths = 8;
    hog.min_wavelengths = 8;
    rt.submit(hog);
    JobSpec pair = span_job(20, 2, util::megabytes(8),
                            util::milliseconds(1.0));
    pair.requested_wavelengths = 1;
    rt.submit(pair);
    rt.run();
    return rt.record(1);
  };
  const JobRecord quiet = run_model(RoutingCostModel::kQuietAlphaBeta);
  const JobRecord aware = run_model(RoutingCostModel::kCongestionAware);
  EXPECT_EQ(quiet.substrate, SubstrateKind::kOptical);
  EXPECT_EQ(aware.substrate, SubstrateKind::kElectrical);
  EXPECT_LT(aware.completed, quiet.completed);
}

TEST(RoutingAudit, EveryDecisionIsTracedWithBothPredictions) {
  CollectiveRuntime rt(saturated_shared_config(
      RoutingCostModel::kCongestionAware));
  rt.trace().enable();
  submit_straddling_burst(rt);
  const RuntimeReport report = rt.run();

  std::uint32_t traced = 0;
  for (const sim::TraceEvent& event : rt.trace().events()) {
    if (event.kind != sim::TraceKind::kRouteDecision) continue;
    ++traced;
    EXPECT_NE(event.detail.find("optical="), std::string::npos);
    EXPECT_NE(event.detail.find("electrical="), std::string::npos);
    const auto kind = static_cast<SubstrateKind>(event.b);
    EXPECT_EQ(kind, rt.record(static_cast<JobId>(event.a)).substrate);
  }
  EXPECT_EQ(traced, report.completed);
  EXPECT_EQ(report.routing.decisions, report.completed);
  EXPECT_EQ(report.routing.to_optical + report.routing.to_electrical,
            report.routing.decisions);

  // Every audited job carries its frozen prediction and a finite error,
  // and the aggregates reconcile with the records.
  double worst = 0.0;
  for (JobId id = 0; id < rt.num_jobs(); ++id) {
    const JobRecord& record = rt.record(id);
    EXPECT_GT(record.predicted_completion.value(), 0.0);
    EXPECT_GE(record.routing_error, 0.0);
    worst = std::max(worst, record.routing_error);
  }
  EXPECT_DOUBLE_EQ(report.routing.worst_error, worst);
  EXPECT_GE(report.routing.worst_error, report.routing.mean_error);
}

TEST(RoutingAudit, LonePredictionIsNearExactOnAnIdleStar) {
  // One job, empty fabrics: nothing the router cannot see, so the
  // prediction must land on the actual completion (the alpha-beta model
  // and the flow simulation agree exactly on the patterns the fallback
  // picks).
  CollectiveRuntime rt(cost_choice_config(RoutingCostModel::kCongestionAware));
  JobSpec tiny = span_job(0, 4, util::kilobytes(256));
  rt.submit(tiny);
  const RuntimeReport report = rt.run();
  ASSERT_EQ(report.routing.decisions, 1u);
  EXPECT_EQ(rt.record(0).substrate, SubstrateKind::kElectrical);
  EXPECT_LT(report.routing.worst_error, 1e-6);
}

TEST(RoutingAudit, OtherPlacementsRecordNoDecisions) {
  RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.batcher.enabled = false;
  config.placement = HybridPlacementPolicy::kElectricalOverflow;
  CollectiveRuntime rt(config);
  rt.submit(span_job(0, 8, util::megabytes(1)));
  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.routing.decisions, 0u);
  EXPECT_EQ(rt.record(0).predicted_completion.value(), 0.0);
}

}  // namespace
}  // namespace wrht::runtime
