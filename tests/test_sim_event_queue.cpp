#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wrht::sim {
namespace {

using wrht::util::Seconds;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.push(Seconds(3.0), [&] { fired.push_back(3); });
  queue.push(Seconds(1.0), [&] { fired.push_back(1); });
  queue.push(Seconds(2.0), [&] { fired.push_back(2); });
  while (!queue.empty()) {
    queue.pop().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtSameTimestamp) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.push(Seconds(5.0), [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) {
    queue.pop().callback();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, SizeAndEmptyTrackLiveEvents) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  queue.push(Seconds(1.0), [] {});
  queue.push(Seconds(2.0), [] {});
  EXPECT_FALSE(queue.empty());
  EXPECT_EQ(queue.size(), 2u);
  queue.pop();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.push(Seconds(9.0), [] {});
  queue.push(Seconds(4.0), [] {});
  EXPECT_DOUBLE_EQ(queue.next_time().value(), 4.0);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue queue;
  std::vector<int> fired;
  queue.push(Seconds(1.0), [&] { fired.push_back(1); });
  const auto handle = queue.push(Seconds(2.0), [&] { fired.push_back(2); });
  queue.push(Seconds(3.0), [&] { fired.push_back(3); });
  EXPECT_TRUE(queue.cancel(handle));
  while (!queue.empty()) {
    queue.pop().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const auto handle = queue.push(Seconds(1.0), [] {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue queue;
  const auto handle = queue.push(Seconds(1.0), [] {});
  queue.pop();
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, CancelledHeadDoesNotBlockNextTime) {
  EventQueue queue;
  const auto handle = queue.push(Seconds(1.0), [] {});
  queue.push(Seconds(2.0), [] {});
  queue.cancel(handle);
  EXPECT_DOUBLE_EQ(queue.next_time().value(), 2.0);
  EXPECT_EQ(queue.size(), 1u);
}

// The memory contract behind million-job serving: with recycling on (the
// default), slots and heap entries track the OUTSTANDING window, not the
// lifetime push count.  A cancel-heavy million-event run must end with both
// tables holding only a small multiple of the ~64-event steady-state window.
TEST(EventQueue, CancelHeavyMillionEventRunHoldsMemoryFlat) {
  EventQueue queue;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  for (std::uint64_t i = 0; i < 1000000; ++i) {
    queue.push(Seconds(static_cast<double>(i)), [&fired] { ++fired; });
    // Every second event is cancelled immediately — the cancel-heavy
    // pattern that used to leave dead heap entries behind forever.
    const std::uint64_t doomed =
        queue.push(Seconds(static_cast<double>(i) + 0.5), [] {});
    ASSERT_TRUE(queue.cancel(doomed));
    ++cancelled;
    if (queue.size() > 64) {
      queue.pop().callback();
    }
  }
  // 2e6 pushes went through; the tables must reflect the ~64-live window.
  EXPECT_LE(queue.slot_count(), 1024u);
  EXPECT_LE(queue.heap_entry_count(), 1024u);
  while (!queue.empty()) {
    queue.pop().callback();
  }
  EXPECT_EQ(fired + cancelled, 2000000u);
}

// The naive mode the serve_throughput bench measures against: recycling off
// reproduces the historical append-only slot table.
TEST(EventQueue, RecyclingOffGrowsSlotsPerPush) {
  EventQueue queue;
  queue.set_recycling(false);
  for (int i = 0; i < 1000; ++i) {
    queue.push(Seconds(static_cast<double>(i)), [] {});
    queue.pop();
  }
  EXPECT_EQ(queue.slot_count(), 1000u);

  EventQueue recycled;
  for (int i = 0; i < 1000; ++i) {
    recycled.push(Seconds(static_cast<double>(i)), [] {});
    recycled.pop();
  }
  EXPECT_LE(recycled.slot_count(), 2u);
}

// Pop order is the determinism contract: recycling must not perturb it even
// under interleaved pushes and cancels at tied timestamps.
TEST(EventQueue, RecyclingPreservesPopOrder) {
  const auto run = [](bool recycling) {
    EventQueue queue;
    queue.set_recycling(recycling);
    std::vector<int> fired;
    std::vector<std::uint64_t> handles;
    for (int i = 0; i < 500; ++i) {
      handles.push_back(queue.push(Seconds(static_cast<double>(i % 7)),
                                   [&fired, i] { fired.push_back(i); }));
      if (i % 3 == 2) queue.cancel(handles[static_cast<std::size_t>(i) - 1]);
      if (i % 5 == 4) queue.pop().callback();
    }
    while (!queue.empty()) {
      queue.pop().callback();
    }
    return fired;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue queue;
  int fired = 0;
  std::vector<std::uint64_t> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(
        queue.push(Seconds(static_cast<double>(i % 17)), [&] { ++fired; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    if (queue.cancel(handles[i])) ++cancelled;
  }
  while (!queue.empty()) {
    queue.pop().callback();
  }
  EXPECT_EQ(fired + cancelled, 1000);
}

}  // namespace
}  // namespace wrht::sim
