#include "wrht/group.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace wrht::core {
namespace {

std::vector<topo::NodeId> iota_nodes(std::uint32_t n) {
  std::vector<topo::NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

TEST(Partition, ExactGroups) {
  const auto groups = partition_into_groups(iota_nodes(12), 4);
  ASSERT_EQ(groups.size(), 3u);
  for (const Group& group : groups) {
    EXPECT_EQ(group.size(), 4u);
  }
  EXPECT_EQ(groups[0].members, (std::vector<topo::NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(groups[2].members, (std::vector<topo::NodeId>{8, 9, 10, 11}));
}

TEST(Partition, LastGroupSmaller) {
  const auto groups = partition_into_groups(iota_nodes(10), 4);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[2].size(), 2u);
}

TEST(Partition, GroupCountIsCeilDiv) {
  for (const std::uint32_t n : {2u, 7u, 16u, 100u, 1024u}) {
    for (const std::uint32_t m : {2u, 3u, 5u, 129u}) {
      const auto groups = partition_into_groups(iota_nodes(n), m);
      EXPECT_EQ(groups.size(), (n + m - 1) / m);
    }
  }
}

TEST(Representative, MiddleMember) {
  const auto groups = partition_into_groups(iota_nodes(5), 5);
  ASSERT_EQ(groups.size(), 1u);
  // Size 5: rep index 2, two members on each side.
  EXPECT_EQ(groups[0].rep(), 2u);
  EXPECT_EQ(groups[0].left_count(), 2u);
  EXPECT_EQ(groups[0].right_count(), 2u);
}

TEST(Representative, EvenGroupLeansRight) {
  const auto groups = partition_into_groups(iota_nodes(4), 4);
  // Size 4: rep index 2 -> left 2, right 1.
  EXPECT_EQ(groups[0].rep(), 2u);
  EXPECT_EQ(groups[0].left_count(), 2u);
  EXPECT_EQ(groups[0].right_count(), 1u);
}

TEST(Representative, PairGroup) {
  const auto groups = partition_into_groups(iota_nodes(2), 2);
  EXPECT_EQ(groups[0].rep(), 1u);
  EXPECT_EQ(groups[0].left_count(), 1u);
  EXPECT_EQ(groups[0].right_count(), 0u);
}

TEST(WavelengthDemand, IsFloorHalf) {
  // The paper's bound: a group of size g needs floor(g/2) wavelengths.
  for (std::uint32_t g = 2; g <= 40; ++g) {
    const auto groups = partition_into_groups(iota_nodes(g), g);
    EXPECT_EQ(group_wavelength_demand(groups[0]), g / 2) << "g=" << g;
  }
}

TEST(WavelengthDemand, SingletonGroupNeedsNone) {
  // Partition 5 nodes into groups of 4: the trailing singleton group has a
  // representative and no other members.
  const auto groups = partition_into_groups(iota_nodes(5), 4);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[1].size(), 1u);
  EXPECT_EQ(group_wavelength_demand(groups[1]), 0u);
}

TEST(Partition, WorksOnSparseActiveSets) {
  // Second-level partitioning: the active nodes are spread representatives.
  const std::vector<topo::NodeId> reps = {2, 66, 130, 194, 258, 322, 386};
  const auto groups = partition_into_groups(reps, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].members, (std::vector<topo::NodeId>{2, 66, 130}));
  EXPECT_EQ(groups[0].rep(), 66u);
  EXPECT_EQ(groups[2].members, (std::vector<topo::NodeId>{386}));
}

TEST(Partition, MembersCoverInputExactlyOnce) {
  const auto nodes = iota_nodes(37);
  const auto groups = partition_into_groups(nodes, 5);
  std::vector<topo::NodeId> collected;
  for (const Group& group : groups) {
    collected.insert(collected.end(), group.members.begin(),
                     group.members.end());
  }
  EXPECT_EQ(collected, nodes);
}

TEST(Partition, UnsortedInputAborts) {
  EXPECT_DEATH(partition_into_groups({3, 1, 2}, 2), "not ascending");
}

TEST(Partition, TinyGroupSizeAborts) {
  EXPECT_DEATH(partition_into_groups(iota_nodes(4), 1), ">= 2");
}

}  // namespace
}  // namespace wrht::core
