#include "util/units.hpp"

#include <gtest/gtest.h>

namespace wrht::util {
namespace {

TEST(Bytes, ArithmeticAndComparison) {
  const Bytes a(1000);
  const Bytes b(24);
  EXPECT_EQ((a + b).count(), 1024u);
  EXPECT_EQ((a - b).count(), 976u);
  EXPECT_EQ((a * 3).count(), 3000u);
  EXPECT_EQ((3 * a).count(), 3000u);
  EXPECT_EQ((a / 10).count(), 100u);
  EXPECT_LT(b, a);
  EXPECT_EQ(Bytes(5), Bytes(5));
}

TEST(Bytes, Constructors) {
  EXPECT_EQ(kilobytes(3).count(), 3000u);
  EXPECT_EQ(megabytes(2).count(), 2'000'000u);
  EXPECT_EQ(gigabytes(1).count(), 1'000'000'000u);
  EXPECT_EQ(kibibytes(1).count(), 1024u);
  EXPECT_EQ(mebibytes(1).count(), 1048576u);
  EXPECT_EQ(gibibytes(1).count(), 1073741824u);
}

TEST(Seconds, Arithmetic) {
  const Seconds a(1.5);
  const Seconds b(0.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 3.0);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_LT(b, a);
}

TEST(Seconds, UnitHelpers) {
  EXPECT_DOUBLE_EQ(milliseconds(2.0).value(), 2e-3);
  EXPECT_DOUBLE_EQ(microseconds(25.0).value(), 25e-6);
  EXPECT_DOUBLE_EQ(nanoseconds(5.0).value(), 5e-9);
}

TEST(Bandwidth, TransferTime) {
  const Bandwidth b = gbps(10.0);  // 1.25 GB/s
  EXPECT_DOUBLE_EQ(b.bytes_per_second(), 1.25e9);
  EXPECT_DOUBLE_EQ(b.bits_per_second(), 1e10);
  EXPECT_DOUBLE_EQ(b.transfer_time(Bytes(1'250'000'000)).value(), 1.0);
  EXPECT_DOUBLE_EQ(b.transfer_time(Bytes(0)).value(), 0.0);
}

TEST(Bandwidth, Scaling) {
  const Bandwidth one = gbps(25.0);
  const Bandwidth many = one * 64.0;
  EXPECT_DOUBLE_EQ(many.bits_per_second(), 1.6e12);
  EXPECT_DOUBLE_EQ((many / 64.0).bits_per_second(), 25e9);
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(to_string(Bytes(512)), "512 B");
  EXPECT_EQ(to_string(kilobytes(2)), "2 KB");
  EXPECT_EQ(to_string(megabytes(250)), "250 MB");
  EXPECT_EQ(to_string(gigabytes(3)), "3 GB");
}

TEST(Formatting, Seconds) {
  EXPECT_EQ(to_string(Seconds(2.0)), "2 s");
  EXPECT_EQ(to_string(milliseconds(1.35)), "1.35 ms");
  EXPECT_EQ(to_string(microseconds(25)), "25 us");
  EXPECT_EQ(to_string(nanoseconds(5)), "5 ns");
}

TEST(Formatting, Bandwidth) {
  EXPECT_EQ(to_string(gbps(25.0)), "25 Gb/s");
  EXPECT_EQ(to_string(gbps(1600.0)), "1.6 Tb/s");
}

TEST(Units, GradientSizeOfAlexNetScale) {
  // 62.3M fp32 parameters ~ 249.2 MB: the magnitude the benches move.
  const Bytes gradient(62'300'000ull * 4);
  const Bandwidth lambda = gbps(25.0);
  const Seconds t = lambda.transfer_time(gradient);
  EXPECT_NEAR(t.value(), 0.079744, 1e-6);
}

}  // namespace
}  // namespace wrht::util
