// Step-boundary band renegotiation in the multi-tenant runtime: priority
// preemption (suspend at a boundary, surrender the band, resume later on a
// rebuilt remainder) and elastic resize (grow into freed neighboring
// spectrum, shrink under queue pressure).  Every renegotiated execution is
// re-proven with the composite oracle inside the runtime, so these runs
// completing at all is itself a correctness statement.
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

namespace wrht::runtime {
namespace {

JobSpec span_job(std::uint32_t first, std::uint32_t count,
                 util::Bytes payload, util::Seconds arrival = {}) {
  JobSpec spec;
  for (std::uint32_t i = 0; i < count; ++i) {
    spec.participants.push_back(first + i);
  }
  spec.payload = payload;
  spec.arrival = arrival;
  return spec;
}

TEST(Preemption, HighPriorityArrivalSuspendsAndResumesLowPriority) {
  // A low-priority job saturates the whole spectrum; a high-priority job
  // arrives mid-flight.  The victim must surrender its band at a step
  // boundary (not at completion), the arrival must run to completion, and
  // the victim must resume and still finish correctly.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;

  CollectiveRuntime rt(config);
  JobSpec blocker = span_job(0, 12, util::megabytes(32));
  blocker.min_wavelengths = 8;
  blocker.requested_wavelengths = 8;
  blocker.priority = 0;
  const JobId victim = rt.submit(blocker);

  JobSpec urgent = span_job(2, 6, util::megabytes(1),
                            util::microseconds(1.0));
  urgent.min_wavelengths = 4;
  urgent.requested_wavelengths = 4;
  urgent.priority = 5;
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_GE(report.preemptions, 1u);
  EXPECT_EQ(report.resumes, report.preemptions);
  EXPECT_EQ(report.oracle_failures, 0u);

  const JobRecord& v = rt.record(victim);
  const JobRecord& u = rt.record(vip);
  EXPECT_GE(v.preemptions, 1u);
  EXPECT_EQ(u.preemptions, 0u);
  // The urgent job got a band while the victim was still mid-collective,
  // i.e. before the victim's completion, and finished first.
  EXPECT_LT(u.admitted, v.completed);
  EXPECT_LT(u.completed, v.completed);
  EXPECT_EQ(v.state, JobState::kDone);
  EXPECT_TRUE(v.oracle_ok);
  EXPECT_TRUE(u.oracle_ok);
}

TEST(Preemption, GrantedWithinOneStepBoundary) {
  // The urgent job's admission must coincide with the victim's first step
  // boundary after arrival — that is what "preempt at the boundary" means.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;

  CollectiveRuntime rt(config);
  rt.trace().enable();
  JobSpec blocker = span_job(0, 12, util::megabytes(32));
  blocker.min_wavelengths = 8;
  blocker.priority = 0;
  const JobId victim = rt.submit(blocker);
  JobSpec urgent = span_job(2, 6, util::megabytes(1),
                            util::microseconds(1.0));
  urgent.min_wavelengths = 4;
  urgent.priority = 5;
  const JobId vip = rt.submit(urgent);
  rt.run();

  util::Seconds preempt_time{-1.0};
  util::Seconds vip_admit_time{-1.0};
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind == sim::TraceKind::kJobPreempt &&
        e.a == static_cast<std::int64_t>(victim) &&
        preempt_time < util::Seconds(0.0)) {
      preempt_time = e.time;
    }
    if (e.kind == sim::TraceKind::kJobAdmit &&
        e.a == static_cast<std::int64_t>(vip)) {
      vip_admit_time = e.time;
    }
  }
  ASSERT_GE(preempt_time, util::Seconds(0.0));
  ASSERT_GE(vip_admit_time, util::Seconds(0.0));
  // Admission happens AT the surrender boundary, not after the victim ends.
  EXPECT_EQ(vip_admit_time, preempt_time);
}

TEST(Preemption, EqualPriorityNeverPreempts) {
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;

  CollectiveRuntime rt(config);
  JobSpec first = span_job(0, 12, util::megabytes(8));
  first.min_wavelengths = 8;
  first.priority = 3;
  rt.submit(first);
  JobSpec second = span_job(0, 12, util::megabytes(8),
                            util::microseconds(1.0));
  second.min_wavelengths = 8;
  second.priority = 3;  // same urgency: waits like FIFO
  rt.submit(second);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.preemptions, 0u);
  EXPECT_EQ(rt.completion_order(), (std::vector<JobId>{0, 1}));
}

TEST(Preemption, PriorityOrdersTheQueue) {
  // Three jobs queued behind a blocker: the highest priority runs first
  // regardless of arrival order, ties break on arrival.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;

  CollectiveRuntime rt(config);
  JobSpec blocker = span_job(0, 8, util::kilobytes(512));
  blocker.min_wavelengths = 8;
  blocker.priority = 10;  // above everyone: never preempted
  rt.submit(blocker);
  for (const std::int32_t priority : {1, 7, 7}) {
    JobSpec spec = span_job(0, 8, util::megabytes(1),
                            util::microseconds(1.0));
    spec.min_wavelengths = 8;
    spec.priority = priority;
    rt.submit(spec);
  }
  rt.run();
  EXPECT_EQ(rt.completion_order(), (std::vector<JobId>{0, 2, 3, 1}));
}

TEST(Preemption, FragmentedFreeSpectrumStillTriggersPreemption) {
  // Four width-2 bands; the two middle-band jobs finish early, leaving
  // free = [2,4) + [6,8): a TOTAL of 4 wavelengths but no contiguous run
  // of 4.  An urgent min=4 arrival must not be fooled by the free total —
  // it needs a victim to surrender a band that merges with a free run.
  RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;
  CollectiveRuntime rt(config);

  for (std::uint32_t i = 0; i < 4; ++i) {
    // Alternating long/short: bands [0,2) long, [2,4) short, [4,6) long,
    // [6,8) short (first-fit in submission order, all at t=0).
    JobSpec spec = span_job(i * 8, 6, i % 2 == 0 ? util::megabytes(64)
                                                 : util::kilobytes(64));
    spec.requested_wavelengths = 2;
    spec.min_wavelengths = 2;
    spec.priority = 0;
    rt.submit(spec);
  }
  JobSpec urgent = span_job(1, 6, util::megabytes(1),
                            util::milliseconds(15.0));
  urgent.min_wavelengths = 4;
  urgent.requested_wavelengths = 4;
  urgent.priority = 9;
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 5u);
  EXPECT_GE(report.preemptions, 1u);
  const JobRecord& u = rt.record(vip);
  // Admitted off a surrendered band, before either long job completed.
  EXPECT_LT(u.admitted, rt.record(0).completed);
  EXPECT_LT(u.admitted, rt.record(2).completed);
  EXPECT_EQ(u.band.width, 4u);
}

TEST(Preemption, NegativePrioritiesKeepTheirOrder) {
  // priority -1 is strictly more urgent than -5; max-folding into an
  // execution must not flatten either to 0.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;
  CollectiveRuntime rt(config);

  JobSpec background = span_job(0, 12, util::megabytes(32));
  background.min_wavelengths = 8;
  background.priority = -5;
  const JobId victim = rt.submit(background);
  JobSpec urgent = span_job(2, 6, util::megabytes(1),
                            util::microseconds(1.0));
  urgent.min_wavelengths = 4;
  urgent.priority = -1;  // still negative, still more urgent
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_GE(report.preemptions, 1u);
  EXPECT_GE(rt.record(victim).preemptions, 1u);
  EXPECT_LT(rt.record(vip).completed, rt.record(victim).completed);
}

TEST(Preemption, SuspendedVictimOutranksLaterLowPriorityArrivals) {
  // A (priority 5) is preempted for B (priority 10).  While B runs, C
  // (priority 1) arrives.  When B completes, the freed band must go to the
  // suspended A — not to C just because C sits in the queue and A does not:
  // that admission-side inversion would let a trickle of low-priority
  // arrivals starve a preempted victim forever.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;
  CollectiveRuntime rt(config);

  JobSpec a = span_job(0, 12, util::megabytes(16));
  a.min_wavelengths = 8;
  a.priority = 5;
  const JobId mid = rt.submit(a);
  JobSpec b = span_job(2, 8, util::megabytes(8), util::microseconds(1.0));
  b.min_wavelengths = 8;
  b.priority = 10;
  const JobId top = rt.submit(b);
  JobSpec c = span_job(4, 6, util::kilobytes(64), util::microseconds(2.0));
  c.min_wavelengths = 1;
  c.priority = 1;
  const JobId low = rt.submit(c);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_GE(rt.record(mid).preemptions, 1u);
  // B first, then the resumed A, and only then C.
  EXPECT_EQ(rt.completion_order(), (std::vector<JobId>{top, mid, low}));
  EXPECT_GE(rt.record(low).admitted, rt.record(mid).completed);
}

TEST(Resize, LoneJobGrowsIntoFreedSpectrum) {
  // A narrow-banded job shares the ring with a short wide job.  When the
  // wide job finishes, the survivor's next boundary grows its band and the
  // rebuilt remainder has fewer levels, so it beats its fixed-band twin.
  auto run_once = [](bool elastic) {
    RuntimeConfig config;
    config.ring_size = 32;
    config.optical.wdm.num_wavelengths = 32;
    config.batcher.enabled = false;
    config.elastic_resize = elastic;
    CollectiveRuntime rt(config);
    JobSpec narrow = span_job(0, 24, util::megabytes(64));
    narrow.requested_wavelengths = 2;
    narrow.min_wavelengths = 2;
    rt.submit(narrow);
    JobSpec wide = span_job(8, 16, util::kilobytes(64));
    wide.requested_wavelengths = 30;
    rt.submit(wide);
    const RuntimeReport report = rt.run();
    return std::pair<util::Seconds, std::uint32_t>(report.makespan,
                                                   report.resizes);
  };

  const auto [fixed_makespan, fixed_resizes] = run_once(false);
  const auto [elastic_makespan, elastic_resizes] = run_once(true);
  EXPECT_EQ(fixed_resizes, 0u);
  EXPECT_GE(elastic_resizes, 1u);
  EXPECT_LT(elastic_makespan, fixed_makespan);
}

TEST(Resize, GrowRecordsResizeTraceAndRecord) {
  RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 32;
  config.batcher.enabled = false;
  config.elastic_resize = true;
  CollectiveRuntime rt(config);
  rt.trace().enable();
  JobSpec narrow = span_job(0, 24, util::megabytes(64));
  narrow.requested_wavelengths = 2;
  narrow.min_wavelengths = 2;
  const JobId id = rt.submit(narrow);
  JobSpec wide = span_job(8, 16, util::kilobytes(64));
  wide.requested_wavelengths = 30;
  rt.submit(wide);
  rt.run();

  const JobRecord& r = rt.record(id);
  EXPECT_GE(r.resizes, 1u);
  // The final band is wider than the original grant.
  EXPECT_GT(r.band.width, 2u);
  bool saw_resize = false;
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind == sim::TraceKind::kJobResize &&
        e.a == static_cast<std::int64_t>(id)) {
      saw_resize = true;
      // Band identity (base) in b, width in the detail — same convention
      // as admit/complete.
      EXPECT_EQ(e.b, static_cast<std::int64_t>(r.band.base));
      EXPECT_EQ(e.detail, "width=" + std::to_string(r.band.width));
    }
  }
  EXPECT_TRUE(saw_resize);
}

TEST(Resize, ShrinkUnderPressureUnblocksStarvedTenant) {
  // One long job holds the whole spectrum; a second tenant with a real
  // minimum arrives and would otherwise wait for full completion.  With
  // elastic resize the holder shrinks at a boundary and the tenants overlap.
  auto run_once = [](bool elastic) {
    RuntimeConfig config;
    config.ring_size = 16;
    config.optical.wdm.num_wavelengths = 16;
    config.batcher.enabled = false;
    config.elastic_resize = elastic;
    CollectiveRuntime rt(config);
    JobSpec hog = span_job(0, 12, util::megabytes(48));
    hog.requested_wavelengths = 16;
    hog.min_wavelengths = 1;
    rt.submit(hog);
    JobSpec starved = span_job(4, 8, util::megabytes(8),
                               util::microseconds(1.0));
    starved.min_wavelengths = 8;
    starved.requested_wavelengths = 8;
    rt.submit(starved);
    const RuntimeReport report = rt.run();
    const util::Seconds starved_admitted = rt.record(1).admitted;
    const util::Seconds hog_completed = rt.record(0).completed;
    return std::tuple<util::Seconds, util::Seconds, util::Seconds,
                      std::uint32_t>(report.makespan, starved_admitted,
                                     hog_completed, report.resizes);
  };

  const auto [fixed_makespan, fixed_admit, fixed_hog_done, fixed_resizes] =
      run_once(false);
  const auto [elastic_makespan, elastic_admit, elastic_hog_done,
              elastic_resizes] = run_once(true);
  EXPECT_EQ(fixed_resizes, 0u);
  // Fixed bands: the starved tenant waits for the hog to finish entirely.
  EXPECT_GE(fixed_admit, fixed_hog_done);
  // Elastic: it is admitted at a boundary, while the hog is still running.
  EXPECT_GE(elastic_resizes, 1u);
  EXPECT_LT(elastic_admit, elastic_hog_done);
  EXPECT_LT(elastic_makespan, fixed_makespan);
}

TEST(Resize, ShrinkReachesTheFloorWhenWaiterNeedsMoreThanHalf) {
  // The starved tenant needs 10 of 16 wavelengths — more than the gentle
  // half-cut frees.  The shrink must fall through to the deeper cut (the
  // holder's floor) instead of concluding nothing helps.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 16;
  config.batcher.enabled = false;
  config.elastic_resize = true;
  CollectiveRuntime rt(config);
  JobSpec hog = span_job(0, 12, util::megabytes(48));
  hog.requested_wavelengths = 16;
  hog.min_wavelengths = 2;
  const JobId holder = rt.submit(hog);
  JobSpec starved = span_job(2, 10, util::megabytes(4),
                             util::microseconds(1.0));
  starved.min_wavelengths = 10;
  starved.requested_wavelengths = 10;
  const JobId waiter = rt.submit(starved);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_GE(report.resizes, 1u);
  // Admitted off the deep cut, while the holder was still running.
  EXPECT_LT(rt.record(waiter).admitted, rt.record(holder).completed);
  EXPECT_GE(rt.record(waiter).band.width, 10u);
}

TEST(Renegotiation, RandomMixStaysDeterministicAndCorrect) {
  // Priority-preempt + elastic resize together on a contended mix: the run
  // must drain (no stuck suspensions), pass every composite oracle check,
  // and stay deterministic across repeats.
  auto run_once = []() {
    RuntimeConfig config;
    config.ring_size = 32;
    config.optical.wdm.num_wavelengths = 16;
    config.policy = FairnessPolicy::kPriorityPreempt;
    config.elastic_resize = true;
    CollectiveRuntime rt(config);
    for (std::uint32_t i = 0; i < 12; ++i) {
      JobSpec spec = span_job((i * 3) % 16, 8 + (i % 5) * 2,
                              util::megabytes(1 + 7 * (i % 4)),
                              util::microseconds(static_cast<double>(i) * 40));
      spec.priority = static_cast<std::int32_t>(i % 3);
      rt.submit(spec);
    }
    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed, 12u);
    EXPECT_EQ(report.oracle_failures, 0u);
    return rt.completion_order();
  };
  const std::vector<JobId> once = run_once();
  const std::vector<JobId> again = run_once();
  EXPECT_EQ(once, again);
  EXPECT_EQ(once.size(), 12u);
}

}  // namespace
}  // namespace wrht::runtime
