// Elastic membership: Wrht schedules over arbitrary subsets of the ring —
// the failure/straggler-exclusion story.  Non-participants must be
// untouched, correctness must hold for any subset shape, and the wavelength
// budget must still be respected.
#include <gtest/gtest.h>

#include <numeric>

#include "coll/oracle.hpp"
#include "optical/spectrum.hpp"
#include "util/math.hpp"
#include "util/random.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

namespace wrht::core {
namespace {

WrhtParams params_with(std::uint32_t w) {
  WrhtParams params;
  params.num_wavelengths = w;
  return params;
}

void expect_valid_subset_build(const std::vector<topo::NodeId>& participants,
                               std::uint32_t ring_size, std::uint32_t w) {
  const WrhtBuild build =
      build_wrht_among(participants, ring_size, params_with(w));
  EXPECT_EQ(build.annotated.schedule.num_nodes(), ring_size);
  EXPECT_LE(build.annotated.wavelengths_required, w);

  const coll::OracleResult result = coll::Oracle::verify_allreduce_among(
      build.annotated.schedule, participants, 32);
  EXPECT_TRUE(result.ok) << result.message;

  // Physical conflict-freedom on the full ring.
  const topo::RingTopology ring(ring_size);
  for (const auto& step : build.annotated.paths) {
    optical::SpectrumMap spectrum(
        ring, std::max(1u, build.annotated.wavelengths_required));
    for (const PathAssignment& path : step) {
      ASSERT_TRUE(spectrum.is_free(path.arc, path.lambdas[0]));
      spectrum.reserve(path.arc, path.lambdas[0]);
    }
  }

  // Step bound: the tree over k participants is at most as deep as the
  // paper's formula for k nodes.
  const auto k = static_cast<std::uint32_t>(participants.size());
  EXPECT_LE(build.annotated.schedule.num_steps(),
            2 * util::ceil_log(build.group_size_m, k));
}

TEST(Elastic, EveryOtherNode) {
  std::vector<topo::NodeId> evens;
  for (topo::NodeId i = 0; i < 64; i += 2) evens.push_back(i);
  expect_valid_subset_build(evens, 64, 8);
}

TEST(Elastic, DenseClusterInLargeRing) {
  std::vector<topo::NodeId> cluster;
  for (topo::NodeId i = 40; i < 72; ++i) cluster.push_back(i);
  expect_valid_subset_build(cluster, 256, 16);
}

TEST(Elastic, TwoFarApartClusters) {
  std::vector<topo::NodeId> nodes;
  for (topo::NodeId i = 0; i < 10; ++i) nodes.push_back(i);
  for (topo::NodeId i = 100; i < 110; ++i) nodes.push_back(i);
  expect_valid_subset_build(nodes, 128, 8);
}

TEST(Elastic, JustTwoSurvivors) {
  expect_valid_subset_build({17, 93}, 128, 4);
}

TEST(Elastic, VeryUnevenSpacing) {
  expect_valid_subset_build({0, 1, 2, 3, 60, 61, 126, 127}, 128, 8);
}

TEST(Elastic, FullSetMatchesPlainBuilder) {
  const std::uint32_t n = 100;
  std::vector<topo::NodeId> everyone(n);
  std::iota(everyone.begin(), everyone.end(), 0);
  const WrhtBuild subset = build_wrht_among(everyone, n, params_with(16));
  const WrhtBuild plain = build_wrht(n, params_with(16));
  EXPECT_EQ(subset.annotated.schedule.num_steps(),
            plain.annotated.schedule.num_steps());
  EXPECT_EQ(subset.group_size_m, plain.group_size_m);
  EXPECT_EQ(subset.merged_with_all_to_all, plain.merged_with_all_to_all);
}

class ElasticRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElasticRandomSweep, RandomSubsetsStayCorrect) {
  util::Rng rng(GetParam());
  const std::uint32_t ring_size = 96;
  // Random subset of 2..96 participants.
  std::vector<topo::NodeId> participants;
  const std::uint64_t keep_permille = 100 + rng.next_below(900);
  for (topo::NodeId i = 0; i < ring_size; ++i) {
    if (rng.next_below(1000) < keep_permille) participants.push_back(i);
  }
  while (participants.size() < 2) {
    participants.push_back(
        static_cast<topo::NodeId>(participants.size()));
  }
  expect_valid_subset_build(participants, ring_size,
                            1 + static_cast<std::uint32_t>(rng.next_below(64)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElasticRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(Elastic, ProgressiveFailureRebuild) {
  // Shrinking-world scenario: nodes fail one by one; after every failure
  // the schedule is rebuilt over the survivors and must stay correct.
  util::Rng rng(404);
  std::vector<topo::NodeId> alive(48);
  std::iota(alive.begin(), alive.end(), 0);
  while (alive.size() > 2) {
    alive.erase(alive.begin() +
                static_cast<std::ptrdiff_t>(rng.next_below(alive.size())));
    const WrhtBuild build = build_wrht_among(alive, 48, params_with(8));
    const coll::OracleResult result = coll::Oracle::verify_allreduce_among(
        build.annotated.schedule, alive, 16);
    ASSERT_TRUE(result.ok) << "survivors=" << alive.size() << ": "
                           << result.message;
  }
}

TEST(Elastic, RejectsBadParticipantLists) {
  EXPECT_DEATH(build_wrht_among({5}, 16, params_with(4)), "2 participants");
  EXPECT_DEATH(build_wrht_among({3, 2}, 16, params_with(4)), "ascending");
  EXPECT_DEATH(build_wrht_among({2, 2}, 16, params_with(4)), "ascending");
  EXPECT_DEATH(build_wrht_among({2, 16}, 16, params_with(4)), "ascending");
}

}  // namespace
}  // namespace wrht::core
