#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace wrht::sim {
namespace {

using wrht::util::Seconds;

TEST(Trace, DisabledByDefaultRecordsNothing) {
  Trace trace;
  EXPECT_FALSE(trace.enabled());
  trace.record(Seconds(1.0), TraceKind::kStepBegin, 0);
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, EnabledRecordsEvents) {
  Trace trace;
  trace.enable();
  trace.record(Seconds(1.0), TraceKind::kStepBegin, 0);
  trace.record(Seconds(2.0), TraceKind::kTransferBegin, 3, 7, "chunk 2");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[1].a, 3);
  EXPECT_EQ(trace.events()[1].b, 7);
  EXPECT_EQ(trace.events()[1].detail, "chunk 2");
}

TEST(Trace, DisableStopsRecording) {
  Trace trace;
  trace.enable();
  trace.record(Seconds(1.0), TraceKind::kTune, 1);
  trace.disable();
  trace.record(Seconds(2.0), TraceKind::kTune, 2);
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(Trace, ClearEmpties) {
  Trace trace;
  trace.enable();
  trace.record(Seconds(1.0), TraceKind::kStepEnd, 0);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, ToStringFormatsEvents) {
  Trace trace;
  trace.enable();
  trace.record(Seconds(12.5e-6), TraceKind::kTransferBegin, 3, 7);
  trace.record(Seconds(1.0), TraceKind::kStepEnd, 0);
  const std::string text = trace.to_string();
  EXPECT_NE(text.find("transfer_begin"), std::string::npos);
  EXPECT_NE(text.find("a=3"), std::string::npos);
  EXPECT_NE(text.find("b=7"), std::string::npos);
  EXPECT_NE(text.find("step_end"), std::string::npos);
  EXPECT_NE(text.find("12.5 us"), std::string::npos);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kStepBegin), "step_begin");
  EXPECT_STREQ(trace_kind_name(TraceKind::kTune), "tune");
  EXPECT_STREQ(trace_kind_name(TraceKind::kFlowEnd), "flow_end");
  EXPECT_STREQ(trace_kind_name(TraceKind::kCustom), "custom");
  EXPECT_STREQ(trace_kind_name(TraceKind::kJobFused), "job_fused");
}

TEST(Trace, EveryKindHasANameAndTheyAreUnique) {
  // kTraceKindCount is the enum's size (trace.cpp static_asserts the name
  // table against it); a kind added without a name would fall through to
  // the "?" fallback and break the exporters silently.
  std::set<std::string> names;
  for (std::size_t i = 0; i < kTraceKindCount; ++i) {
    const char* name = trace_kind_name(static_cast<TraceKind>(i));
    EXPECT_STRNE(name, "?") << "unnamed TraceKind " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate TraceKind name: " << name;
  }
  EXPECT_EQ(names.size(), kTraceKindCount);
}

}  // namespace
}  // namespace wrht::sim
