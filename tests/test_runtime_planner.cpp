// SpectrumPlanner property suite.
//
// Unit level: choose_base's lexicographic cost terms each pinned by a
// hand-built PlannerContext (dead slivers avoided, pending demand kept
// packable, sooner-freeing neighbors preferred, first-fit tie-break last),
// and earliest_fit's contiguity-honest availability (a fragmented pool
// whose TOTAL covers the request is not "available now").
//
// End-to-end level, against the first-fit ablation baseline
// (SpectrumPolicy::kFirstFit) on identical workloads:
//
//  * on an unconstrained monotone-fill spectrum the planner and first-fit
//    place every band identically (cost term 5 IS first-fit's rule, and
//    nothing upstream of it discriminates);
//  * every planner placement stays pairwise band-disjoint under the same
//    per-event trace sweep the stress harness runs;
//  * fragmentation never worse than first-fit, measured where the claim is
//    actually well-defined: per DECISION, against the first-fit
//    counterfactual in the identical spectrum state.  (The raw time-
//    integral of largest-free across two divergent schedules confounds
//    utilization with fragmentation — the planner packs denser, so it
//    legitimately shows LESS free spectrum while fragmenting none of it;
//    that integral is reported as a diagnostic and guarded in aggregate,
//    not asserted per seed.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/planner.hpp"
#include "runtime/runtime.hpp"
#include "util/random.hpp"

namespace wrht::runtime {
namespace {

constexpr std::uint32_t kRingSize = 32;
constexpr std::uint32_t kWavelengths = 16;

using FreeInterval = SpectrumArbiter::FreeInterval;

// ---------------------------------------------------------------------------
// choose_base unit tests
// ---------------------------------------------------------------------------

TEST(SpectrumPlannerUnit, EmptySpectrumPlacesAtLowestBase) {
  PlannerContext ctx;
  ctx.free_intervals = {FreeInterval{0, 16}};
  ctx.total_wavelengths = 16;
  // Both ends cost the same on every term above the base tie-break (no
  // pending, both neighbors are spectrum edges) — first-fit's rule decides.
  EXPECT_EQ(SpectrumPlanner::choose_base(4, ctx), std::optional(0u));
}

TEST(SpectrumPlannerUnit, NoFittingRunReturnsNullopt) {
  PlannerContext ctx;
  ctx.free_intervals = {FreeInterval{0, 2}, FreeInterval{10, 3}};
  ctx.outstanding = {
      OutstandingBand{WavelengthBand{2, 8}, util::Seconds(5.0)},
      OutstandingBand{WavelengthBand{13, 3}, util::Seconds(7.0)}};
  ctx.total_wavelengths = 16;
  EXPECT_EQ(SpectrumPlanner::choose_base(4, ctx), std::nullopt);
}

TEST(SpectrumPlannerUnit, AvoidsCarvingADeadSliver) {
  // [0,5) and [8,16) are free; the band between them releases at t=100.
  // A width-4 band carved from [0,5) strands a 1-wide sliver no waiting
  // width (min 4) can ever use; carved from [8,16) it leaves a usable 4.
  PlannerContext ctx;
  ctx.free_intervals = {FreeInterval{0, 5}, FreeInterval{8, 8}};
  ctx.outstanding = {
      OutstandingBand{WavelengthBand{5, 3}, util::Seconds(100.0)}};
  ctx.pending_min_widths = {4};
  ctx.total_wavelengths = 16;
  const auto base = SpectrumPlanner::choose_base(4, ctx);
  ASSERT_TRUE(base.has_value());
  // Left-aligned in [8,16): the abutting band at [5,8) frees at t=100,
  // while the right end abuts the spectrum edge (never frees).
  EXPECT_EQ(*base, 8u);
}

TEST(SpectrumPlannerUnit, KeepsPendingDemandPackable) {
  // Free: [0,6) and [8,16).  A width-6 band fits either.  Carving [8,16)
  // leaves {6, 2}: the waiting width-6 job still packs into [0,6).  Carving
  // [0,6) leaves {0, 8}: the width-6 job still packs — but a width-8
  // waiter would not.  With pending {8}, the planner must leave [8,16)
  // whole.
  PlannerContext ctx;
  ctx.free_intervals = {FreeInterval{0, 6}, FreeInterval{8, 8}};
  ctx.outstanding = {
      OutstandingBand{WavelengthBand{6, 2}, util::Seconds(3.0)}};
  ctx.pending_min_widths = {8};
  ctx.total_wavelengths = 16;
  const auto base = SpectrumPlanner::choose_base(6, ctx);
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(*base, 0u);
}

TEST(SpectrumPlannerUnit, PrefersTheNeighborThatFreesSooner) {
  // One free run [4,12) between two outstanding bands: [0,4) frees at
  // t=10, [12,16) frees at t=2.  A width-4 placement leaves a 4-wide
  // leftover either way (same blocked/sliver/waste) — the right alignment
  // abuts the sooner-freeing neighbor, positioning the band to grow into
  // (and re-merge with) spectrum that returns first.
  PlannerContext ctx;
  ctx.free_intervals = {FreeInterval{4, 8}};
  ctx.outstanding = {
      OutstandingBand{WavelengthBand{0, 4}, util::Seconds(10.0)},
      OutstandingBand{WavelengthBand{12, 4}, util::Seconds(2.0)}};
  ctx.total_wavelengths = 16;
  const auto base = SpectrumPlanner::choose_base(4, ctx);
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(*base, 8u);
}

TEST(SpectrumPlannerUnit, BestFitBreaksTiesBeforeBase) {
  // Two free runs, both edge-bounded (equal infinite neighbor waits), no
  // pending demand: [0,8) and [10,6).  A width-6 band wastes 2 in the
  // first, 0 in the second — best fit wins over lowest base.
  PlannerContext ctx;
  ctx.free_intervals = {FreeInterval{0, 8}, FreeInterval{10, 6}};
  ctx.outstanding = {
      OutstandingBand{WavelengthBand{8, 2}, util::Seconds(50.0)}};
  ctx.total_wavelengths = 16;
  const auto base = SpectrumPlanner::choose_base(6, ctx);
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(*base, 10u);
}

// ---------------------------------------------------------------------------
// earliest_fit unit tests
// ---------------------------------------------------------------------------

TEST(SpectrumPlannerUnit, EarliestFitIsNowWhenARunAlreadyFits) {
  PlannerContext ctx;
  ctx.free_intervals = {FreeInterval{0, 4}};
  ctx.total_wavelengths = 16;
  ctx.now = util::Seconds(1.5);
  EXPECT_EQ(SpectrumPlanner::earliest_fit(4, ctx), util::Seconds(1.5));
}

TEST(SpectrumPlannerUnit, FragmentedTotalIsNotContiguousAvailability) {
  // Free fragments {2, 3} total 5 >= 4, but no contiguous 4 exists: the
  // forecast must wait for the band between them ([2,10) ending t=6), not
  // credit the sum the way the old free-total walk did.
  PlannerContext ctx;
  ctx.free_intervals = {FreeInterval{0, 2}, FreeInterval{10, 3}};
  ctx.outstanding = {
      OutstandingBand{WavelengthBand{2, 8}, util::Seconds(6.0)},
      OutstandingBand{WavelengthBand{13, 3}, util::Seconds(9.0)}};
  ctx.total_wavelengths = 16;
  ctx.now = util::Seconds(1.0);
  EXPECT_EQ(SpectrumPlanner::earliest_fit(4, ctx), util::Seconds(6.0));
}

TEST(SpectrumPlannerUnit, EarliestFitMergesReleasesInPredictedOrder) {
  // Full spectrum held by four width-4 bands ending at 8, 2, 6, 4.  A
  // width-8 request needs two ADJACENT releases: after t=4 the free
  // fragments are [4,8) and [12,16) — total 8, contiguous 4 — so the
  // answer is t=6, when [8,12) bridges them into [4,16).
  PlannerContext ctx;
  ctx.outstanding = {
      OutstandingBand{WavelengthBand{0, 4}, util::Seconds(8.0)},
      OutstandingBand{WavelengthBand{4, 4}, util::Seconds(2.0)},
      OutstandingBand{WavelengthBand{8, 4}, util::Seconds(6.0)},
      OutstandingBand{WavelengthBand{12, 4}, util::Seconds(4.0)}};
  ctx.total_wavelengths = 16;
  EXPECT_EQ(SpectrumPlanner::earliest_fit(8, ctx), util::Seconds(6.0));
  // A width-4 request is served by the very first release.
  EXPECT_EQ(SpectrumPlanner::earliest_fit(4, ctx), util::Seconds(2.0));
  // Overdue predictions (end < now) release immediately, never in the past.
  ctx.now = util::Seconds(3.0);
  EXPECT_EQ(SpectrumPlanner::earliest_fit(4, ctx), util::Seconds(3.0));
}

// ---------------------------------------------------------------------------
// End-to-end: planner vs the first-fit ablation baseline
// ---------------------------------------------------------------------------

RuntimeConfig planner_config(SpectrumPolicy policy,
                             std::uint32_t wavelengths = kWavelengths) {
  RuntimeConfig config;
  config.ring_size = kRingSize;
  config.optical.wdm.num_wavelengths = wavelengths;
  config.placement = HybridPlacementPolicy::kOpticalOnly;
  config.batcher.enabled = false;
  config.spectrum_policy = policy;
  return config;
}

/// Band events (place/resume/resize) per job, in trace order.
using BandLog = std::vector<std::pair<JobId, std::pair<std::uint32_t,
                                                       std::uint32_t>>>;

std::uint32_t event_width(const sim::TraceEvent& event) {
  const std::string prefix = "width=";
  const std::size_t at = event.detail.find(prefix);
  EXPECT_NE(at, std::string::npos);
  return static_cast<std::uint32_t>(
      std::stoul(event.detail.substr(at + prefix.size())));
}

BandLog band_log(const CollectiveRuntime& rt) {
  BandLog log;
  for (const sim::TraceEvent& event : rt.trace().events()) {
    if (event.kind != sim::TraceKind::kJobPlaceOptical &&
        event.kind != sim::TraceKind::kJobResume &&
        event.kind != sim::TraceKind::kJobResize) {
      continue;
    }
    log.emplace_back(static_cast<JobId>(event.a),
                     std::make_pair(static_cast<std::uint32_t>(event.b),
                                    event_width(event)));
  }
  return log;
}

TEST(SpectrumPlannerE2E, MatchesFirstFitOnUnconstrainedSpectrum) {
  // Eight jobs, all at t=0, total demand well under the 64-wide spectrum:
  // every placement happens on a monotone-filling spectrum (no release
  // precedes any placement), where the left end of the single free run
  // abuts the most recent band and the right end abuts the never-freeing
  // spectrum edge — the planner's cost collapses to "lowest base", which
  // IS first-fit.  Bands, bases, and the makespan must be identical.
  auto run_policy = [](SpectrumPolicy policy) {
    CollectiveRuntime rt(planner_config(policy, /*wavelengths=*/64));
    rt.trace().enable();
    for (std::uint32_t j = 0; j < 8; ++j) {
      JobSpec spec;
      for (std::uint32_t n = 0; n < 8; ++n) {
        spec.participants.push_back((8 * j + n) % kRingSize);
      }
      spec.payload = util::megabytes(1 + j);
      spec.requested_wavelengths = 4 + (j % 3);
      spec.min_wavelengths = 2;
      rt.submit(spec);
    }
    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed, 8u);
    return std::make_pair(band_log(rt), report.makespan);
  };
  const auto planner = run_policy(SpectrumPolicy::kPlanner);
  const auto first_fit = run_policy(SpectrumPolicy::kFirstFit);
  EXPECT_EQ(planner.first, first_fit.first);
  EXPECT_EQ(planner.second, first_fit.second);
}

/// Seeded contended workload: contiguous spans over a 16-wide spectrum,
/// arrivals bunched tightly enough that the queue is never empty for long.
std::vector<JobSpec> contended_jobs(std::uint64_t seed, std::uint32_t count) {
  util::Rng rng(seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(count);
  for (std::uint32_t j = 0; j < count; ++j) {
    JobSpec spec;
    const std::uint32_t len = rng.next_below(2) == 0 ? 4u : 8u;
    const std::uint32_t start =
        static_cast<std::uint32_t>(rng.next_below(4)) * 8u;
    for (std::uint32_t i = 0; i < len; ++i) {
      spec.participants.push_back((start + i) % kRingSize);
    }
    spec.payload = util::Bytes(64'000 + rng.next_below(8'000'000));
    spec.arrival =
        util::microseconds(static_cast<double>(rng.next_below(10'000)));
    // Heterogeneous FIXED widths (2, 4, or 8 of 16): bands cannot flex, so
    // packing quality directly decides whether the next wide job admits —
    // the regime where placement policy, not grant elasticity, is the
    // fragmentation story.  The useful wavelength cap ceil(len^2/8) limits
    // a 4-node span to width 2; only 8-node spans draw the wider bands.
    spec.min_wavelengths =
        len == 4 ? 2u : (1u << (1 + rng.next_below(3)));
    spec.requested_wavelengths = spec.min_wavelengths;
    spec.priority = static_cast<std::int32_t>(rng.next_below(6)) - 2;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

struct SweepResult {
  /// Time-weighted mean of the largest free contiguous block.
  double weighted_largest_free = 0.0;
  /// Time-weighted mean of the TOTAL free spectrum (utilization's mirror).
  double weighted_total_free = 0.0;
  std::uint32_t overlaps = 0;
};

/// Re-check band disjointness after every event and integrate the largest
/// free contiguous block over time — the fragmentation signal.
SweepResult sweep_trace(const CollectiveRuntime& rt) {
  std::map<JobId, std::pair<std::uint32_t, std::uint32_t>> running;
  SweepResult result;
  double weighted_sum = 0.0;
  double weighted_total = 0.0;
  util::Seconds clock{0.0};

  // {largest free contiguous block, total free}.
  const auto free_state = [&running]() {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
    for (const auto& [id, band] : running) {
      if (band.second == 0) continue;
      spans.emplace_back(band.first, band.first + band.second);
    }
    std::sort(spans.begin(), spans.end());
    std::uint32_t largest = 0;
    std::uint32_t total = 0;
    std::uint32_t cursor = 0;
    for (const auto& [lo, hi] : spans) {
      if (lo > cursor) {
        largest = std::max(largest, lo - cursor);
        total += lo - cursor;
      }
      cursor = std::max(cursor, hi);
    }
    if (kWavelengths > cursor) {
      largest = std::max(largest, kWavelengths - cursor);
      total += kWavelengths - cursor;
    }
    return std::make_pair(largest, total);
  };

  for (const sim::TraceEvent& event : rt.trace().events()) {
    const double dt = (event.time - clock).value();
    if (dt > 0.0) {
      const auto [largest, total] = free_state();
      weighted_sum += static_cast<double>(largest) * dt;
      weighted_total += static_cast<double>(total) * dt;
      clock = event.time;
    }
    const auto job = static_cast<JobId>(event.a);
    switch (event.kind) {
      case sim::TraceKind::kJobPlaceOptical:
      case sim::TraceKind::kJobResume:
      case sim::TraceKind::kJobResize:
        running[job] = {static_cast<std::uint32_t>(event.b),
                        event_width(event)};
        break;
      case sim::TraceKind::kJobPreempt:
      case sim::TraceKind::kJobComplete:
        running.erase(job);
        break;
      default:
        break;
    }
    // Pairwise disjointness of the running bands, after every event.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
    for (const auto& [id, band] : running) {
      if (band.second == 0) continue;
      spans.emplace_back(band.first, band.first + band.second);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i - 1].second > spans[i].first) ++result.overlaps;
    }
  }
  result.weighted_largest_free =
      clock.value() > 0.0 ? weighted_sum / clock.value() : 0.0;
  result.weighted_total_free =
      clock.value() > 0.0 ? weighted_total / clock.value() : 0.0;
  return result;
}

struct DecisionAudit {
  std::uint32_t decisions = 0;   // fresh placements audited
  std::uint32_t diverged = 0;    // planner base != first-fit's in same state
  std::uint32_t overridden = 0;  // joint-placement term beat best fit
  std::uint32_t regressions = 0; // best-fit decision left a SMALLER run
};

/// Per-decision fragmentation audit of a planner run: replay the trace,
/// and at every fresh placement (kJobPlaceOptical / kJobResume) rebuild the
/// free intervals the planner saw, then compare the largest free contiguous
/// block its choice left against the first-fit counterfactual in the SAME
/// state.  Whenever the planner carved the snuggest fitting interval (no
/// blocked-pending / dead-sliver override), the leftover it strands is
/// provably the smallest possible, so its post-placement largest run must
/// be >= first-fit's — any dip is a real regression.  Overridden decisions
/// deliberately trade local contiguity for keeping queued demand packable
/// and are counted, not condemned.
DecisionAudit audit_decisions(const CollectiveRuntime& rt) {
  std::map<JobId, std::pair<std::uint32_t, std::uint32_t>> running;
  DecisionAudit audit;

  // Maximal free runs of [0, kWavelengths) given the running bands.
  const auto free_intervals = [&running]() {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
    for (const auto& [id, band] : running) {
      if (band.second == 0) continue;
      spans.emplace_back(band.first, band.first + band.second);
    }
    std::sort(spans.begin(), spans.end());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> free;  // {lo, hi}
    std::uint32_t cursor = 0;
    for (const auto& [lo, hi] : spans) {
      if (lo > cursor) free.emplace_back(cursor, lo);
      cursor = std::max(cursor, hi);
    }
    if (kWavelengths > cursor) free.emplace_back(cursor, kWavelengths);
    return free;
  };

  // Largest free run after carving [base, base+width) out of `free`.
  const auto largest_after =
      [](const std::vector<std::pair<std::uint32_t, std::uint32_t>>& free,
         std::uint32_t base, std::uint32_t width) {
        std::uint32_t largest = 0;
        for (const auto& [lo, hi] : free) {
          if (base >= lo && base + width <= hi) {
            largest = std::max(largest, base - lo);
            largest = std::max(largest, hi - (base + width));
          } else {
            largest = std::max(largest, hi - lo);
          }
        }
        return largest;
      };

  for (const sim::TraceEvent& event : rt.trace().events()) {
    const auto job = static_cast<JobId>(event.a);
    const bool fresh = event.kind == sim::TraceKind::kJobPlaceOptical ||
                       event.kind == sim::TraceKind::kJobResume;
    if (fresh) {
      const auto base = static_cast<std::uint32_t>(event.b);
      const std::uint32_t width = event_width(event);
      const auto free = free_intervals();

      std::uint32_t chosen = 0;        // width of the interval carved
      std::uint32_t snuggest = 0;      // smallest fitting interval width
      std::uint32_t first_fit_base = 0;
      bool first_fit_found = false;
      for (const auto& [lo, hi] : free) {
        const std::uint32_t w = hi - lo;
        if (base >= lo && base + width <= hi) chosen = w;
        if (w >= width) {
          if (snuggest == 0 || w < snuggest) snuggest = w;
          if (!first_fit_found) {
            first_fit_base = lo;
            first_fit_found = true;
          }
        }
      }
      EXPECT_GT(chosen, 0u) << "placed band not inside a free run";
      EXPECT_TRUE(first_fit_found);
      if (chosen > 0 && first_fit_found) {
        ++audit.decisions;
        if (base != first_fit_base) ++audit.diverged;
        if (chosen == snuggest) {
          if (largest_after(free, base, width) <
              largest_after(free, first_fit_base, width)) {
            ++audit.regressions;
          }
        } else {
          ++audit.overridden;
        }
      }
    }
    switch (event.kind) {
      case sim::TraceKind::kJobPlaceOptical:
      case sim::TraceKind::kJobResume:
      case sim::TraceKind::kJobResize:
        running[job] = {static_cast<std::uint32_t>(event.b),
                        event_width(event)};
        break;
      case sim::TraceKind::kJobPreempt:
      case sim::TraceKind::kJobComplete:
        running.erase(job);
        break;
      default:
        break;
    }
  }
  return audit;
}

TEST(SpectrumPlannerE2E, PlacementsStayDisjointAndFragmentationBeatsFirstFit) {
  // The stress harness's fixed seed set, replayed under BOTH policies with
  // priority preemption and elastic resize on (the renegotiation-heaviest
  // configuration).  Three claims:
  //
  //  1. every planner placement survives the per-event disjointness sweep;
  //  2. fragmentation is never worse than first-fit PER DECISION: at each
  //     fresh placement, in the identical spectrum state, the largest free
  //     run the planner leaves is >= the first-fit counterfactual's on
  //     every non-overridden (best-fit) choice — zero regressions allowed.
  //     This is the well-defined form of "largest-free-block never worse":
  //     comparing time-integrals across the two policies' DIVERGENT
  //     schedules instead would penalize the planner for packing denser
  //     (more admitted work = less free spectrum, fragmented or not);
  //  3. in aggregate across the seed set, the time-weighted largest free
  //     block still lands within a few percent of first-fit's — the
  //     planner's denser packing must come out of the total, not out of
  //     contiguity.
  const std::uint64_t seeds[] = {0ull,  0xC0FFEEull, 1ull,  2ull,
                                 3ull,  7ull,        42ull, 20260730ull};
  auto run_policy = [](std::uint64_t seed, SpectrumPolicy policy) {
    RuntimeConfig config = planner_config(policy);
    config.policy = FairnessPolicy::kPriorityPreempt;
    config.elastic_resize = true;
    CollectiveRuntime rt(config);
    rt.trace().enable();
    for (JobSpec& spec : contended_jobs(seed, 60)) {
      rt.submit(std::move(spec));
    }
    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed + report.rejected, 60u);
    EXPECT_EQ(report.oracle_failures, 0u);
    return std::make_pair(sweep_trace(rt), audit_decisions(rt));
  };
  double planner_largest = 0.0;
  double first_fit_largest = 0.0;
  std::uint32_t diverged = 0;
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto [planner, audit] = run_policy(seed, SpectrumPolicy::kPlanner);
    const auto [first_fit, ff_audit] =
        run_policy(seed, SpectrumPolicy::kFirstFit);
    EXPECT_EQ(planner.overlaps, 0u);
    EXPECT_EQ(first_fit.overlaps, 0u);
    std::printf(
        "[seed %llu] decisions=%u diverged=%u overridden=%u | largest/total "
        "free (time-weighted): planner=%.3f/%.3f first-fit=%.3f/%.3f\n",
        static_cast<unsigned long long>(seed), audit.decisions,
        audit.diverged, audit.overridden, planner.weighted_largest_free,
        planner.weighted_total_free, first_fit.weighted_largest_free,
        first_fit.weighted_total_free);
    EXPECT_GT(audit.decisions, 0u);
    EXPECT_EQ(audit.regressions, 0u);
    // The baseline run must itself be first-fit decision-for-decision.
    EXPECT_EQ(ff_audit.diverged, 0u);
    planner_largest += planner.weighted_largest_free;
    first_fit_largest += first_fit.weighted_largest_free;
    diverged += audit.diverged;
  }
  // The planner must actually exercise non-first-fit placements somewhere
  // in the sweep, or the per-decision claim is vacuous.
  EXPECT_GT(diverged, 0u);
  EXPECT_GE(planner_largest, 0.9 * first_fit_largest);
}

}  // namespace
}  // namespace wrht::runtime
