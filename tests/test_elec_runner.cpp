#include "elec/schedule_runner.hpp"

#include <gtest/gtest.h>

#include "coll/algorithms.hpp"
#include "elec/alphabeta.hpp"

namespace wrht::elec {
namespace {

using util::Bytes;

ElectricalParams test_params() {
  ElectricalParams p;
  p.link_bandwidth = util::gBps(1.0);
  p.link_latency = util::microseconds(25.0);
  return p;
}

TEST(Runner, RingAllReduceOnStarMatchesClosedForm) {
  const std::uint32_t n = 8;
  const Bytes payload(8'000'000);  // divisible by 8: uniform chunks
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::Schedule schedule = coll::ring_allreduce(n);
  const ElecRunResult result = run_on_electrical(schedule, cluster, payload);

  ASSERT_EQ(result.step_durations.size(), 2u * (n - 1));
  // Each step: 1 MB chunk at 1 GB/s + 2x25us route latency = 1.05 ms.
  const double expected_step = 1e-3 + 50e-6;
  for (const util::Seconds& step : result.step_durations) {
    EXPECT_NEAR(step.value(), expected_step, 1e-9);
  }
  EXPECT_NEAR(result.total.value(), 14 * expected_step, 1e-8);
}

TEST(Runner, RecursiveDoublingOnStarMatchesClosedForm) {
  const std::uint32_t n = 8;
  const Bytes payload(1'000'000);
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::Schedule schedule = coll::recursive_doubling(n);
  const ElecRunResult result = run_on_electrical(schedule, cluster, payload);

  ASSERT_EQ(result.step_durations.size(), 3u);
  // Pairwise exchange, full duplex: full vector at line rate + latency.
  const double expected_step = 1e-3 + 50e-6;
  EXPECT_NEAR(result.total.value(), 3 * expected_step, 1e-8);
}

TEST(Runner, MatchesAlphaBetaOnContentionFreePatterns) {
  const std::uint32_t n = 16;
  const Bytes payload(16'000'000);
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::AlphaBetaParams ab = alpha_beta_for(cluster);
  EXPECT_NEAR(ab.alpha.value(), 50e-6, 1e-9);
  EXPECT_NEAR(ab.bandwidth.bytes_per_second(), 1e9, 1e3);

  for (const coll::Schedule& schedule :
       {coll::ring_allreduce(n), coll::recursive_doubling(n)}) {
    const ElecRunResult sim = run_on_electrical(schedule, cluster, payload);
    const coll::CostBreakdown analytic =
        coll::alpha_beta_cost(schedule, payload, ab);
    EXPECT_NEAR(sim.total.value(), analytic.total.value(),
                analytic.total.value() * 1e-6)
        << schedule.name();
  }
}

TEST(Runner, DirectAllReduceCongestsReceivers) {
  // All-to-all of full vectors on a star: each host receives (n-1) x D on
  // its downlink, so the step takes (n-1) x D / B (plus latency), not D / B.
  const std::uint32_t n = 4;
  const Bytes payload(100'000'000);
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const ElecRunResult result =
      run_on_electrical(coll::direct_allreduce(n), cluster, payload);
  EXPECT_NEAR(result.total.value(), 0.3 + 50e-6, 1e-3);
}

TEST(Runner, NaiveRingIsSlowerThanChunkedRing) {
  const std::uint32_t n = 8;
  const Bytes payload(8'000'000);
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const double chunked =
      run_on_electrical(coll::ring_allreduce(n), cluster, payload)
          .total.value();
  const double naive =
      run_on_electrical(coll::naive_ring(n), cluster, payload).total.value();
  EXPECT_GT(naive, chunked * 3.0);
}

TEST(Runner, StepCountPreserved) {
  const std::uint32_t n = 6;
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::Schedule schedule = coll::binomial_tree(n);
  const ElecRunResult result =
      run_on_electrical(schedule, cluster, Bytes(1000));
  EXPECT_EQ(result.step_durations.size(), schedule.num_steps());
}

TEST(Runner, EmptyScheduleRunsInZeroTime) {
  const ElectricalCluster cluster = ElectricalCluster::star(4, test_params());
  const coll::Schedule empty("empty", 4, 1);  // zero steps
  const ElecRunResult result =
      run_on_electrical(empty, cluster, util::megabytes(1));
  EXPECT_EQ(result.step_durations.size(), 0u);
  EXPECT_EQ(result.total, util::Seconds(0.0));
}

TEST(Runner, StepsWithoutFlowsTakeZeroTime) {
  // A schedule can carry steps with no transfers (a single-node "group"
  // has nothing to exchange); the quiet network must report a zero-length
  // step instead of hanging or charging latency for flows that never exist.
  const ElectricalCluster cluster = ElectricalCluster::star(2, test_params());
  coll::Schedule schedule("idle-steps", 2, 1);
  schedule.add_step();  // empty
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, coll::TransferOp::kReduce});
  schedule.add_step();  // empty again
  const ElecRunResult result =
      run_on_electrical(schedule, cluster, util::megabytes(1));
  ASSERT_EQ(result.step_durations.size(), 3u);
  EXPECT_EQ(result.step_durations[0], util::Seconds(0.0));
  EXPECT_GT(result.step_durations[1], util::Seconds(0.0));
  EXPECT_EQ(result.step_durations[2], util::Seconds(0.0));
  EXPECT_EQ(result.total, result.step_durations[1]);
}

TEST(Runner, SingleTransferStepMatchesHandComputation) {
  // One flow, quiet network: chunk at line rate plus the two-hop route
  // latency, nothing else.
  const ElectricalCluster cluster = ElectricalCluster::star(2, test_params());
  coll::Schedule schedule("pair", 2, 1);
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, coll::TransferOp::kReduce});
  const ElecRunResult result =
      run_on_electrical(schedule, cluster, Bytes(1'000'000));
  ASSERT_EQ(result.step_durations.size(), 1u);
  EXPECT_NEAR(result.total.value(), 1e-3 + 50e-6, 1e-9);
}

TEST(Runner, ZeroBytePayloadCompletesAtRouteLatency) {
  // A zero-byte chunk still pays the activation latency of its route —
  // flows are never skipped, and the fluid solver must not divide by a
  // zero remaining volume.
  const std::uint32_t n = 4;
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::Schedule schedule = coll::ring_allreduce(n);
  const ElecRunResult result = run_on_electrical(schedule, cluster, Bytes(0));
  ASSERT_EQ(result.step_durations.size(), 2u * (n - 1));
  for (const util::Seconds& step : result.step_durations) {
    EXPECT_NEAR(step.value(), 50e-6, 1e-12);  // 2 x 25 us route latency
  }
}

TEST(Runner, IncrementalStepTimingAgreesWithWholeSchedule) {
  // The multi-tenant runtime times electrical steps one at a time through
  // StepFlowTimer; on identical inputs every per-step duration — and their
  // sum — must equal the whole-schedule runner's, including on patterns
  // with real link contention (direct all-reduce congests the downlinks).
  const std::uint32_t n = 8;
  const Bytes payload(7'777'777);  // deliberately not divisible by n
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  for (const coll::Schedule& schedule :
       {coll::ring_allreduce(n), coll::recursive_doubling(n),
        coll::direct_allreduce(n), coll::binomial_tree(n)}) {
    const ElecRunResult whole = run_on_electrical(schedule, cluster, payload);
    StepFlowTimer timer(cluster);
    util::Seconds total{0.0};
    for (std::size_t s = 0; s < schedule.num_steps(); ++s) {
      const std::optional<util::Seconds> step =
          timer.time_step(schedule, s, payload);
      ASSERT_TRUE(step.has_value()) << schedule.name() << " step " << s;
      EXPECT_EQ(*step, whole.step_durations[s]) << schedule.name() << " step "
                                                << s;
      total += *step;
    }
    EXPECT_EQ(total, whole.total) << schedule.name();
  }
}

TEST(Runner, StepFlowTimerIsReusableOutOfOrder) {
  // The timer carries no cross-step state (each step runs on a reset
  // network), so steps may be timed in any order and even repeatedly.
  const std::uint32_t n = 4;
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::Schedule schedule = coll::ring_allreduce(n);
  const Bytes payload(4'000'000);
  StepFlowTimer timer(cluster);
  const std::optional<util::Seconds> last =
      timer.time_step(schedule, schedule.num_steps() - 1, payload);
  const std::optional<util::Seconds> first = timer.time_step(schedule, 0, payload);
  const std::optional<util::Seconds> first_again =
      timer.time_step(schedule, 0, payload);
  ASSERT_TRUE(last && first && first_again);
  EXPECT_EQ(*first, *first_again);
  EXPECT_GT(*first, util::Seconds(0.0));
  EXPECT_GT(*last, util::Seconds(0.0));
}

TEST(Runner, StepFlowTimerRejectsOutOfRangeStep) {
  // An out-of-range step is a recoverable nullopt, not a crash — and the
  // refusal leaves the timer fully usable.
  const ElectricalCluster cluster = ElectricalCluster::star(4, test_params());
  const coll::Schedule schedule = coll::ring_allreduce(4);
  StepFlowTimer timer(cluster);
  EXPECT_FALSE(
      timer.time_step(schedule, schedule.num_steps(), util::megabytes(1)));
  EXPECT_FALSE(timer.time_step(schedule, schedule.num_steps() + 17,
                               util::megabytes(1)));
  EXPECT_TRUE(timer.time_step(schedule, 0, util::megabytes(1)).has_value());
}

TEST(Runner, StepFlowTimerRejectsOversizedSchedule) {
  // A schedule naming more hosts than the cluster has cannot be routed.
  const ElectricalCluster cluster = ElectricalCluster::star(4, test_params());
  const coll::Schedule schedule = coll::ring_allreduce(8);
  StepFlowTimer timer(cluster);
  EXPECT_FALSE(timer.time_step(schedule, 0, util::megabytes(1)));
  // A fitting schedule still times fine on the same timer afterwards.
  EXPECT_TRUE(
      timer.time_step(coll::ring_allreduce(4), 0, util::megabytes(1))
          .has_value());
}

}  // namespace
}  // namespace wrht::elec
