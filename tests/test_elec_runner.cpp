#include "elec/schedule_runner.hpp"

#include <gtest/gtest.h>

#include "coll/algorithms.hpp"
#include "elec/alphabeta.hpp"

namespace wrht::elec {
namespace {

using util::Bytes;

ElectricalParams test_params() {
  ElectricalParams p;
  p.link_bandwidth = util::gBps(1.0);
  p.link_latency = util::microseconds(25.0);
  return p;
}

TEST(Runner, RingAllReduceOnStarMatchesClosedForm) {
  const std::uint32_t n = 8;
  const Bytes payload(8'000'000);  // divisible by 8: uniform chunks
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::Schedule schedule = coll::ring_allreduce(n);
  const ElecRunResult result = run_on_electrical(schedule, cluster, payload);

  ASSERT_EQ(result.step_durations.size(), 2u * (n - 1));
  // Each step: 1 MB chunk at 1 GB/s + 2x25us route latency = 1.05 ms.
  const double expected_step = 1e-3 + 50e-6;
  for (const util::Seconds& step : result.step_durations) {
    EXPECT_NEAR(step.value(), expected_step, 1e-9);
  }
  EXPECT_NEAR(result.total.value(), 14 * expected_step, 1e-8);
}

TEST(Runner, RecursiveDoublingOnStarMatchesClosedForm) {
  const std::uint32_t n = 8;
  const Bytes payload(1'000'000);
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::Schedule schedule = coll::recursive_doubling(n);
  const ElecRunResult result = run_on_electrical(schedule, cluster, payload);

  ASSERT_EQ(result.step_durations.size(), 3u);
  // Pairwise exchange, full duplex: full vector at line rate + latency.
  const double expected_step = 1e-3 + 50e-6;
  EXPECT_NEAR(result.total.value(), 3 * expected_step, 1e-8);
}

TEST(Runner, MatchesAlphaBetaOnContentionFreePatterns) {
  const std::uint32_t n = 16;
  const Bytes payload(16'000'000);
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::AlphaBetaParams ab = alpha_beta_for(cluster);
  EXPECT_NEAR(ab.alpha.value(), 50e-6, 1e-9);
  EXPECT_NEAR(ab.bandwidth.bytes_per_second(), 1e9, 1e3);

  for (const coll::Schedule& schedule :
       {coll::ring_allreduce(n), coll::recursive_doubling(n)}) {
    const ElecRunResult sim = run_on_electrical(schedule, cluster, payload);
    const coll::CostBreakdown analytic =
        coll::alpha_beta_cost(schedule, payload, ab);
    EXPECT_NEAR(sim.total.value(), analytic.total.value(),
                analytic.total.value() * 1e-6)
        << schedule.name();
  }
}

TEST(Runner, DirectAllReduceCongestsReceivers) {
  // All-to-all of full vectors on a star: each host receives (n-1) x D on
  // its downlink, so the step takes (n-1) x D / B (plus latency), not D / B.
  const std::uint32_t n = 4;
  const Bytes payload(100'000'000);
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const ElecRunResult result =
      run_on_electrical(coll::direct_allreduce(n), cluster, payload);
  EXPECT_NEAR(result.total.value(), 0.3 + 50e-6, 1e-3);
}

TEST(Runner, NaiveRingIsSlowerThanChunkedRing) {
  const std::uint32_t n = 8;
  const Bytes payload(8'000'000);
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const double chunked =
      run_on_electrical(coll::ring_allreduce(n), cluster, payload)
          .total.value();
  const double naive =
      run_on_electrical(coll::naive_ring(n), cluster, payload).total.value();
  EXPECT_GT(naive, chunked * 3.0);
}

TEST(Runner, StepCountPreserved) {
  const std::uint32_t n = 6;
  const ElectricalCluster cluster = ElectricalCluster::star(n, test_params());
  const coll::Schedule schedule = coll::binomial_tree(n);
  const ElecRunResult result =
      run_on_electrical(schedule, cluster, Bytes(1000));
  EXPECT_EQ(result.step_durations.size(), schedule.num_steps());
}

}  // namespace
}  // namespace wrht::elec
