// The metrics registry's contracts: find-or-create identity, handle
// stability under growth, sampler cadence/overwrite semantics, and a
// metrics.json dump that actually parses and carries the recorded values.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace wrht::obs {
namespace {

using util::Seconds;

TEST(MetricsRegistry, FindOrCreateReturnsOneHandlePerName) {
  MetricsRegistry registry;
  Counter* a = registry.counter("a");
  Counter* b = registry.counter("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.counter("a"), a);
  EXPECT_EQ(registry.gauge("g"), registry.gauge("g"));
  EXPECT_EQ(registry.histogram("h"), registry.histogram("h"));
}

TEST(MetricsRegistry, HandlesStayValidAsTheRegistryGrows) {
  // The deques behind the registry must never move elements on growth: a
  // handle cached before hundreds of later registrations still addresses
  // the same metric.
  MetricsRegistry registry;
  Counter* first = registry.counter("first");
  Gauge* first_gauge = registry.gauge("first_gauge");
  first->increment(7);
  for (int i = 0; i < 500; ++i) {
    (void)registry.counter("c" + std::to_string(i));
    (void)registry.gauge("g" + std::to_string(i));
  }
  first->increment(3);
  first_gauge->set(2.5);
  EXPECT_EQ(registry.find_counter("first")->value(), 10u);
  EXPECT_EQ(registry.find_gauge("first_gauge")->value(), 2.5);
  EXPECT_EQ(registry.counter("first"), first);
}

TEST(MetricsRegistry, SampledGaugeIsIdempotent) {
  MetricsRegistry registry;
  Gauge* g = registry.sampled_gauge("depth");
  EXPECT_EQ(registry.sampled_gauge("depth"), g);
  // One series, not one per registration.
  ASSERT_EQ(registry.sampler().series().size(), 1u);
  EXPECT_EQ(registry.sampler().series()[0].name, "depth");
  EXPECT_EQ(registry.sampler().series()[0].gauge, g);
}

TEST(MetricsRegistry, HistogramShapeIsFixedAtCreation) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat", 1e-3, 2.0, 4);
  // A later call with different shape arguments returns the original.
  EXPECT_EQ(registry.histogram("lat", 1e-6, 10.0, 32), h);
  h->observe(1e-3);
  h->observe(5e-3);
  h->observe(5e-3);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->summary().min(), 1e-3);
  EXPECT_EQ(h->summary().max(), 5e-3);
  // Bucketed quantiles are coarse but monotone.
  EXPECT_LE(h->quantile(0.1), h->quantile(0.9));
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
  EXPECT_TRUE(registry.counters().empty());
}

TEST(NullHelpers, NullHandlesAreNoOps) {
  // The uninstrumented hot path: every helper must tolerate nullptr.
  inc(nullptr);
  inc(nullptr, 42);
  set(nullptr, 1.0);
  set_max(nullptr, 1.0);
  observe(nullptr, 1.0);
  // And with real handles they do what the names say.
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  Gauge* g = registry.gauge("g");
  inc(c);
  inc(c, 4);
  set(g, 2.0);
  set_max(g, 1.0);  // below current: no effect
  set_max(g, 9.0);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(g->value(), 9.0);
}

TEST(Sampler, FirstCallAlwaysSamplesThenCadenceGates) {
  TimeSeriesSampler sampler(util::microseconds(50.0));
  Gauge gauge;
  sampler.track("g", &gauge);

  gauge.set(1.0);
  sampler.maybe_sample(Seconds(0.0));  // first call: always samples
  gauge.set(2.0);
  sampler.maybe_sample(util::microseconds(10.0));  // inside cadence: skipped
  gauge.set(3.0);
  sampler.maybe_sample(util::microseconds(60.0));  // past cadence: samples

  const std::vector<TimeSeriesSampler::Point>& points =
      sampler.series()[0].points;
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].value, 1.0);
  EXPECT_EQ(points[1].value, 3.0);
  EXPECT_LT(points[0].time_seconds, points[1].time_seconds);
}

TEST(Sampler, SameInstantOverwritesKeepingTimeStrictlyIncreasing) {
  TimeSeriesSampler sampler(util::microseconds(50.0));
  Gauge gauge;
  sampler.track("g", &gauge);
  gauge.set(1.0);
  sampler.sample_now(Seconds(1.0));
  gauge.set(7.0);
  sampler.sample_now(Seconds(1.0));  // event cascade at the same sim instant
  ASSERT_EQ(sampler.series()[0].points.size(), 1u);
  EXPECT_EQ(sampler.series()[0].points[0].value, 7.0);
}

TEST(Sampler, LateTrackedGaugeJoinsAtNextSnapshot) {
  TimeSeriesSampler sampler(util::microseconds(50.0));
  Gauge early;
  Gauge late;
  sampler.track("early", &early);
  sampler.sample_now(Seconds(0.0));
  sampler.track("late", &late);
  sampler.sample_now(Seconds(1.0));
  EXPECT_EQ(sampler.series()[0].points.size(), 2u);
  EXPECT_EQ(sampler.series()[1].points.size(), 1u);
}

TEST(MetricsRegistry, ToJsonParsesAndCarriesTheRecordedValues) {
  MetricsRegistry registry;
  registry.counter("jobs")->increment(12);
  registry.gauge("depth")->set(3.0);
  Gauge* occ = registry.sampled_gauge("occupancy");
  occ->set(0.5);
  registry.sampler().sample_now(Seconds(0.25));
  Histogram* h = registry.histogram("wait");
  h->observe(1e-3);
  h->observe(2e-3);

  const JsonParseResult parsed = json_parse(registry.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;

  const JsonValue* counters = parsed.value.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("jobs"), nullptr);
  EXPECT_EQ(counters->find("jobs")->number, 12.0);

  const JsonValue* gauges = parsed.value.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->find("depth")->number, 3.0);

  const JsonValue* histograms = parsed.value.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* wait = histograms->find("wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->find("count")->number, 2.0);
  EXPECT_EQ(wait->find("min")->number, 1e-3);
  EXPECT_EQ(wait->find("max")->number, 2e-3);

  const JsonValue* series = parsed.value.find("series");
  ASSERT_NE(series, nullptr);
  const JsonValue* occupancy = series->find("occupancy");
  ASSERT_NE(occupancy, nullptr);
  ASSERT_EQ(occupancy->array.size(), 1u);
  EXPECT_EQ(occupancy->array[0].array[0].number, 0.25);
  EXPECT_EQ(occupancy->array[0].array[1].number, 0.5);
}

TEST(MetricsRegistry, EmptyRegistryStillDumpsValidJson) {
  const MetricsRegistry registry;
  EXPECT_TRUE(json_parse(registry.to_json()).ok);
}

}  // namespace
}  // namespace wrht::obs
