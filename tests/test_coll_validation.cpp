#include "coll/validation.hpp"

#include <gtest/gtest.h>

#include "coll/algorithms.hpp"

namespace wrht::coll {
namespace {

using util::Bytes;

TEST(Validate, CleanScheduleOk) {
  Schedule schedule("ok", 4, 1);
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, TransferOp::kReduce});
  schedule.add_transfer({2, 3, 0, TransferOp::kReduce});
  const ValidationReport report = validate(schedule);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.warnings.empty());
  EXPECT_EQ(report.to_string(), "ok\n");
}

TEST(Validate, DuplicateTransferIsError) {
  Schedule schedule("dup", 4, 1);
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, TransferOp::kReduce});
  schedule.add_transfer({0, 1, 0, TransferOp::kReduce});
  const ValidationReport report = validate(schedule);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].description.find("duplicate"),
            std::string::npos);
}

TEST(Validate, TwoCopiesSameDestinationIsError) {
  Schedule schedule("race", 4, 1);
  schedule.add_step();
  schedule.add_transfer({0, 3, 0, TransferOp::kCopy});
  schedule.add_transfer({1, 3, 0, TransferOp::kCopy});
  EXPECT_FALSE(validate(schedule).ok());
}

TEST(Validate, CopyPlusReduceSameDestinationIsError) {
  Schedule schedule("mixed", 4, 1);
  schedule.add_step();
  schedule.add_transfer({0, 3, 0, TransferOp::kCopy});
  schedule.add_transfer({1, 3, 0, TransferOp::kReduce});
  EXPECT_FALSE(validate(schedule).ok());

  Schedule reversed("mixed2", 4, 1);
  reversed.add_step();
  reversed.add_transfer({1, 3, 0, TransferOp::kReduce});
  reversed.add_transfer({0, 3, 0, TransferOp::kCopy});
  EXPECT_FALSE(validate(reversed).ok());
}

TEST(Validate, ManyReducesSameDestinationAllowed) {
  Schedule schedule("fanin", 8, 1);
  schedule.add_step();
  for (NodeId src = 1; src < 8; ++src) {
    schedule.add_transfer({src, 0, 0, TransferOp::kReduce});
  }
  EXPECT_TRUE(validate(schedule).ok());
}

TEST(Validate, HighFanInWarns) {
  Schedule schedule("incast", 8, 1);
  schedule.add_step();
  for (NodeId src = 1; src < 8; ++src) {
    schedule.add_transfer({src, 0, 0, TransferOp::kReduce});
  }
  const ValidationReport report = validate(schedule, /*warn_fan_in=*/4);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].description.find("receives 7"),
            std::string::npos);
}

TEST(Validate, SameChunkDifferentDestinationsOk) {
  Schedule schedule("bcast", 4, 1);
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, TransferOp::kCopy});
  schedule.add_transfer({0, 2, 0, TransferOp::kCopy});
  schedule.add_transfer({0, 3, 0, TransferOp::kCopy});
  EXPECT_TRUE(validate(schedule).ok());
}

TEST(Validate, AllBaselineAlgorithmsClean) {
  for (const std::uint32_t n : {4u, 7u, 16u}) {
    EXPECT_TRUE(validate(ring_allreduce(n)).ok());
    EXPECT_TRUE(validate(recursive_doubling(n)).ok());
    EXPECT_TRUE(validate(halving_doubling(n)).ok());
    EXPECT_TRUE(validate(binomial_tree(n)).ok());
    EXPECT_TRUE(validate(direct_allreduce(n)).ok());
    EXPECT_TRUE(validate(naive_ring(n)).ok());
  }
}

TEST(StepLoads, CountsSentAndReceived) {
  Schedule schedule("loads", 4, 2);
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, TransferOp::kReduce});  // 500 B
  schedule.add_transfer({0, 2, 1, TransferOp::kReduce});  // 500 B
  schedule.add_transfer({3, 1, 1, TransferOp::kReduce});  // 500 B
  const auto loads = step_loads(schedule, 0, Bytes(1000));
  EXPECT_EQ(loads[0].sent.count(), 1000u);
  EXPECT_EQ(loads[0].received.count(), 0u);
  EXPECT_EQ(loads[1].received.count(), 1000u);
  EXPECT_EQ(loads[2].received.count(), 500u);
  EXPECT_EQ(loads[3].sent.count(), 500u);
}

TEST(StepBottleneck, PicksBusiestNode) {
  Schedule schedule("bottleneck", 4, 2);
  schedule.add_step();
  schedule.add_transfer({0, 1, 0, TransferOp::kReduce});
  schedule.add_transfer({0, 2, 1, TransferOp::kReduce});
  EXPECT_EQ(step_bottleneck_bytes(schedule, 0, Bytes(1000)).count(), 1000u);
}

TEST(StepBottleneck, RingStepIsOneChunk) {
  const std::uint32_t n = 8;
  const Schedule schedule = ring_allreduce(n);
  EXPECT_EQ(step_bottleneck_bytes(schedule, 0, Bytes(8000)).count(), 1000u);
}

}  // namespace
}  // namespace wrht::coll
