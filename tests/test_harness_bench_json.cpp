// The machine-readable bench writer: BENCH_<name>.json files CI archives
// as the per-commit perf trajectory.  Format stability matters more than
// features here — keys keep insertion order, numbers round-trip at full
// precision, strings are escaped, and a bench must never fail over an
// unwritable artifact directory.
#include "harness/bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace wrht::harness {
namespace {

TEST(BenchJson, SerializesNotesThenMetricsInInsertionOrder) {
  BenchJson json("sample");
  json.metric("makespan_s", 0.125);
  json.metric("slowdown", 2.5);
  json.note("verdict", "PASS");
  EXPECT_EQ(json.to_json(),
            "{\n"
            "  \"bench\": \"sample\",\n"
            "  \"verdict\": \"PASS\",\n"
            "  \"makespan_s\": 0.125,\n"
            "  \"slowdown\": 2.5\n"
            "}\n");
}

TEST(BenchJson, RepeatedKeysOverwriteInPlace) {
  BenchJson json("overwrite");
  json.metric("makespan_s", 1.0);
  json.metric("turnaround_s", 2.0);
  json.metric("makespan_s", 3.0);
  const std::string out = json.to_json();
  EXPECT_NE(out.find("\"makespan_s\": 3"), std::string::npos);
  EXPECT_EQ(out.find("\"makespan_s\": 1"), std::string::npos);
  // Still one entry, still first.
  EXPECT_LT(out.find("makespan_s"), out.find("turnaround_s"));
}

TEST(BenchJson, EscapesStringsAndSanitizesNames) {
  BenchJson json("weird name/../x");
  json.note("quote", "a\"b\\c\nd");
  EXPECT_EQ(json.name(), "weird_name____x");
  const std::string out = json.to_json();
  EXPECT_NE(out.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(BenchJson, NonFiniteMetricsBecomeNull) {
  BenchJson json("nonfinite");
  json.metric("bad", std::numeric_limits<double>::quiet_NaN());
  EXPECT_NE(json.to_json().find("\"bad\": null"), std::string::npos);
}

TEST(BenchJson, FullPrecisionRoundTrip) {
  BenchJson json("precision");
  const double value = 0.028922666666666666;
  json.metric("makespan_s", value);
  const std::string out = json.to_json();
  const std::size_t at = out.find("\"makespan_s\": ");
  ASSERT_NE(at, std::string::npos);
  const double parsed =
      std::strtod(out.c_str() + at + std::string("\"makespan_s\": ").size(),
                  nullptr);
  EXPECT_EQ(parsed, value);
}

TEST(BenchJson, WritesIntoExplicitDirectory) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir();
  BenchJson json(std::string("write_test_") + info->name());
  json.note("verdict", "PASS");
  json.metric("value", 42.0);
  ASSERT_TRUE(json.write(dir));

  const std::string path = dir + "/BENCH_" + json.name() + ".json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), json.to_json());
  std::remove(path.c_str());
}

TEST(BenchJson, UnwritableDirectoryFailsSoftly) {
  BenchJson json("nowhere");
  EXPECT_FALSE(json.write("/nonexistent-dir-for-bench-json"));
}

}  // namespace
}  // namespace wrht::harness
