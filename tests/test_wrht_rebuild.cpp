// The step-boundary rebuild seam: rebuild_wrht_remainder must, for ANY cut
// point and ANY new wavelength budget it accepts, produce a remainder whose
// composition with the already-executed prefix is still a correct all-reduce
// (proven with the functional oracle), and must refuse budgets that cannot
// carry the mirrors the executed tree levels are owed.
#include "wrht/builder.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "coll/oracle.hpp"

namespace wrht::core {
namespace {

std::vector<topo::NodeId> every_other(std::uint32_t ring_size) {
  std::vector<topo::NodeId> nodes;
  for (std::uint32_t i = 0; i < ring_size; i += 2) nodes.push_back(i);
  return nodes;
}

WrhtParams params_for(std::uint32_t wavelengths) {
  WrhtParams params;
  params.num_wavelengths = wavelengths;
  return params;
}

// The schedule an execution actually runs after a renegotiation at
// `steps_done`: the original prefix followed by the rebuilt remainder.
coll::Schedule compose(const coll::Schedule& prefix, std::size_t steps_done,
                       const coll::Schedule& remainder) {
  coll::Schedule out("composite", prefix.num_nodes(), 1);
  for (std::size_t s = 0; s < steps_done; ++s) {
    out.add_step();
    for (const coll::Transfer& t : prefix.steps()[s].transfers) {
      out.add_transfer(t);
    }
  }
  for (const coll::Step& step : remainder.steps()) {
    out.add_step();
    for (const coll::Transfer& t : step.transfers) out.add_transfer(t);
  }
  return out;
}

TEST(Rebuild, FreshBuildCarriesMirroredBroadcastLevels) {
  const WrhtBuild build = build_wrht(32, params_for(4));
  ASSERT_EQ(build.broadcast_levels.size(), build.reduce_levels.size());
  EXPECT_EQ(build.annotated.schedule.num_steps(),
            build.reduce_step_count() + build.broadcast_levels.size());
  // Broadcast runs top-down: first mirror is the LAST reduce level.
  for (std::size_t i = 0; i < build.reduce_levels.size(); ++i) {
    const WrhtLevel& mirror = build.broadcast_levels[i];
    const WrhtLevel& level =
        build.reduce_levels[build.reduce_levels.size() - 1 - i];
    ASSERT_EQ(mirror.groups.size(), level.groups.size());
    EXPECT_EQ(mirror.groups.front().rep(), level.groups.front().rep());
  }
}

TEST(Rebuild, EveryCutPointAndBudgetStaysCorrect) {
  const std::uint32_t ring_size = 32;
  const std::vector<topo::NodeId> participants = every_other(ring_size);
  for (const std::uint32_t w_old : {2u, 4u, 8u}) {
    const WrhtBuild build =
        build_wrht_among(participants, ring_size, params_for(w_old));
    const std::size_t total = build.annotated.schedule.num_steps();
    ASSERT_GE(total, 2u);
    for (std::size_t cut = 0; cut < total; ++cut) {
      for (const std::uint32_t w_new : {1u, 2u, 8u, 32u}) {
        const std::optional<WrhtBuild> rebuilt = rebuild_wrht_remainder(
            build, cut, participants, ring_size, params_for(w_new));
        if (w_new >= w_old) {
          // A budget at least as wide as the original can always recolor
          // the inherited mirrors.
          ASSERT_TRUE(rebuilt)
              << "w_old=" << w_old << " cut=" << cut << " w_new=" << w_new;
        }
        if (!rebuilt) continue;
        EXPECT_LE(rebuilt->annotated.wavelengths_required, w_new);
        const coll::Schedule composite = compose(
            build.annotated.schedule, cut, rebuilt->annotated.schedule);
        const coll::OracleResult verdict =
            coll::Oracle::verify_allreduce_among(composite, participants, 24);
        EXPECT_TRUE(verdict.ok)
            << "w_old=" << w_old << " cut=" << cut << " w_new=" << w_new
            << ": " << verdict.message;
      }
    }
  }
}

TEST(Rebuild, WiderBudgetCollapsesRemainingLevels) {
  // 24 participants on 2 wavelengths: groups of 5, two tree levels plus two
  // mirrors.  After the first step a 64-wavelength band merges the surviving
  // representatives in one all-to-all instead of finishing the tree.
  const std::uint32_t ring_size = 32;
  std::vector<topo::NodeId> participants(24);
  std::iota(participants.begin(), participants.end(), 0);
  const WrhtBuild narrow =
      build_wrht_among(participants, ring_size, params_for(2));
  const std::size_t total = narrow.annotated.schedule.num_steps();
  const std::size_t cut = 1;
  const std::optional<WrhtBuild> wide = rebuild_wrht_remainder(
      narrow, cut, participants, ring_size, params_for(64));
  ASSERT_TRUE(wide);
  EXPECT_LT(wide->annotated.schedule.num_steps(), total - cut);
  EXPECT_TRUE(wide->merged_with_all_to_all);
}

TEST(Rebuild, NarrowBudgetBelowMirrorDemandIsRefused) {
  // 17 participants in one group: the reduce step and its mirror each need
  // floor(17/2) = 8 wavelengths.  After the reduce step completed, a
  // 2-wavelength band cannot carry the owed mirror — the seam must say so
  // rather than emit an unrunnable schedule.
  const std::uint32_t ring_size = 20;
  std::vector<topo::NodeId> participants(17);
  std::iota(participants.begin(), participants.end(), 0);
  const WrhtBuild build =
      build_wrht_among(participants, ring_size, params_for(8));
  ASSERT_EQ(build.reduce_levels.size(), 1u);
  EXPECT_FALSE(rebuild_wrht_remainder(build, 1, participants, ring_size,
                                      params_for(2)));
  EXPECT_TRUE(rebuild_wrht_remainder(build, 1, participants, ring_size,
                                     params_for(8)));
}

TEST(Rebuild, ComposesAcrossRepeatedRenegotiations) {
  // Renegotiate twice: narrow -> wide after one step, then wide -> narrow
  // after one more.  The rebuilt build must itself be rebuildable, and the
  // three-schedule composition must still be the all-reduce.
  const std::uint32_t ring_size = 32;
  const std::vector<topo::NodeId> participants = every_other(ring_size);
  const WrhtBuild first =
      build_wrht_among(participants, ring_size, params_for(2));
  ASSERT_GE(first.annotated.schedule.num_steps(), 2u);
  const std::optional<WrhtBuild> second = rebuild_wrht_remainder(
      first, 1, participants, ring_size, params_for(16));
  ASSERT_TRUE(second);
  ASSERT_GE(second->annotated.schedule.num_steps(), 2u);
  const std::optional<WrhtBuild> third = rebuild_wrht_remainder(
      *second, 1, participants, ring_size, params_for(8));
  ASSERT_TRUE(third);

  coll::Schedule composite("twice", ring_size, 1);
  const auto append_prefix = [&composite](const coll::Schedule& from,
                                          std::size_t count) {
    for (std::size_t s = 0; s < count; ++s) {
      composite.add_step();
      for (const coll::Transfer& t : from.steps()[s].transfers) {
        composite.add_transfer(t);
      }
    }
  };
  append_prefix(first.annotated.schedule, 1);
  append_prefix(second->annotated.schedule, 1);
  append_prefix(third->annotated.schedule,
                third->annotated.schedule.num_steps());
  const coll::OracleResult verdict =
      coll::Oracle::verify_allreduce_among(composite, participants, 24);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

}  // namespace
}  // namespace wrht::core
