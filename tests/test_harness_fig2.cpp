// Smoke-scale Figure-2 runs: the full pipeline (schedule builders, flow
// simulator, optical DES, reporting) at node counts small enough for CI,
// checking the orderings the paper's figure shows.
#include "harness/fig2.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hpp"

namespace wrht::harness {
namespace {

using util::Bytes;

TEST(Fig2, AlgoNames) {
  EXPECT_STREQ(algo_name(Algo::kERing), "E-Ring");
  EXPECT_STREQ(algo_name(Algo::kRD), "RD");
  EXPECT_STREQ(algo_name(Algo::kORing), "O-Ring");
  EXPECT_STREQ(algo_name(Algo::kWrht), "WRHT");
  EXPECT_EQ(all_algos().size(), 4u);
}

TEST(Fig2, AllTimesPositive) {
  const ExperimentConfig config = smoke_config();
  const Bytes payload(10'000'000);
  for (const Algo algo : all_algos()) {
    const util::Seconds t = allreduce_time(algo, 16, payload, config);
    EXPECT_GT(t.value(), 0.0) << algo_name(algo);
  }
}

TEST(Fig2, WrhtFastestAtModerateScale) {
  // Even at N=32 with the default physics, WRHT beats all three baselines.
  const ExperimentConfig config = paper_config();
  const Bytes payload(62'300'000ull * 4);  // AlexNet
  const std::uint32_t n = 32;
  const double wrht =
      allreduce_time(Algo::kWrht, n, payload, config).value();
  for (const Algo algo : {Algo::kERing, Algo::kRD, Algo::kORing}) {
    EXPECT_LT(wrht, allreduce_time(algo, n, payload, config).value())
        << algo_name(algo);
  }
}

TEST(Fig2, ORingDegradesWithScaleWrhtFlat) {
  const ExperimentConfig config = paper_config();
  const Bytes payload(27'191'000);  // GoogLeNet-ish
  const double oring_small =
      allreduce_time(Algo::kORing, 16, payload, config).value();
  const double oring_large =
      allreduce_time(Algo::kORing, 64, payload, config).value();
  EXPECT_GT(oring_large / oring_small, 3.0);

  const double wrht_small =
      allreduce_time(Algo::kWrht, 16, payload, config).value();
  const double wrht_large =
      allreduce_time(Algo::kWrht, 64, payload, config).value();
  EXPECT_LT(wrht_large / wrht_small, 3.0);
}

TEST(Fig2, PanelHasAllRows) {
  ExperimentConfig config = paper_config();
  config.node_counts = {8, 16};
  const dnn::Model model("Tiny", 1'000'000);
  const auto rows = run_fig2_panel(model, config);
  ASSERT_EQ(rows.size(), 8u);  // 2 scales x 4 algorithms
  for (const Fig2Row& row : rows) {
    EXPECT_EQ(row.model, "Tiny");
    EXPECT_GT(row.time.value(), 0.0);
  }
}

TEST(Fig2, HeadlineReductionsPositiveAtSmokeScale) {
  ExperimentConfig config = paper_config();
  config.node_counts = {16, 32};
  const dnn::Model model("Tiny", 10'000'000);
  const auto rows = run_fig2_panel(model, config);
  const HeadlineReductions reductions = headline_reductions(rows);
  EXPECT_GT(reductions.vs_electrical_pct, 0.0);
  EXPECT_GT(reductions.vs_oring_pct, 0.0);
  EXPECT_LT(reductions.vs_electrical_pct, 100.0);
  EXPECT_LT(reductions.vs_oring_pct, 100.0);
}

TEST(Report, PanelRendersAllAlgorithms) {
  ExperimentConfig config = paper_config();
  config.node_counts = {8};
  const dnn::Model model("Tiny", 1'000'000);
  const auto rows = run_fig2_panel(model, config);
  const std::string panel = render_panel(rows);
  for (const Algo algo : all_algos()) {
    EXPECT_NE(panel.find(algo_name(algo)), std::string::npos);
  }
  EXPECT_NE(panel.find("Tiny"), std::string::npos);
  EXPECT_NE(panel.find("normalized"), std::string::npos);
}

TEST(Report, HeadlineMentionsPaperNumbers) {
  const std::string text = render_headline({70.0, 90.0});
  EXPECT_NE(text.find("75.76%"), std::string::npos);
  EXPECT_NE(text.find("91.86%"), std::string::npos);
  EXPECT_NE(text.find("70.00%"), std::string::npos);
  EXPECT_NE(text.find("90.00%"), std::string::npos);
}

TEST(Report, CsvWellFormed) {
  ExperimentConfig config = paper_config();
  config.node_counts = {8};
  const dnn::Model model("Tiny", 1'000'000);
  const auto rows = run_fig2_panel(model, config);
  std::ostringstream out;
  write_csv(out, rows);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("model,nodes,algo,seconds,normalized"),
            std::string::npos);
  // Header + 4 rows.
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
}

TEST(Fig2, NormalizedWrhtBaselineIsOne) {
  ExperimentConfig config = paper_config();
  config.node_counts = {8, 16};
  const dnn::Model model("Tiny", 1'000'000);
  const auto rows = run_fig2_panel(model, config);
  const std::string panel = render_panel(rows);
  // The WRHT row at the smallest N is the normalization base: value 1.00.
  EXPECT_NE(panel.find("1.00"), std::string::npos);
}

}  // namespace
}  // namespace wrht::harness
