#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wrht::util {
namespace {

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(12, 4), 3u);
  EXPECT_EQ(ceil_div(0, 7), 0u);
  EXPECT_EQ(ceil_div(7, 7), 1u);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(13, 4), 4u);
  EXPECT_EQ(ceil_div(1, 1000), 1u);
  EXPECT_EQ(ceil_div(1024, 129), 8u);
}

TEST(CeilDiv, NoOverflowNearMax) {
  const std::uint64_t big = ~std::uint64_t{0};
  EXPECT_EQ(ceil_div(big, 1), big);
  EXPECT_EQ(ceil_div(big, big), 1u);
}

TEST(FloorLog2, PowersOfTwo) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(std::uint64_t{1} << 63), 63u);
}

TEST(FloorLog2, BetweenPowers) {
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1000), 9u);
  EXPECT_EQ(floor_log2(1025), 10u);
}

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(IsPow2, Classification) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Ipow, SmallCases) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(129, 2), 16641u);
  EXPECT_EQ(ipow(7, 0), 1u);
  EXPECT_EQ(ipow(1, 100), 1u);
  EXPECT_EQ(ipow(0, 3), 0u);
}

TEST(CeilLog, MatchesDefinition) {
  // ceil_log(b, x) is the smallest L with b^L >= x.
  for (std::uint64_t base : {2ULL, 3ULL, 10ULL, 129ULL}) {
    for (std::uint64_t x : {1ULL, 2ULL, 7ULL, 128ULL, 129ULL, 130ULL, 1024ULL,
                            16641ULL, 1000000ULL}) {
      const unsigned level = ceil_log(base, x);
      if (level > 0) {
        EXPECT_LT(ipow(base, level - 1), x)
            << "base=" << base << " x=" << x;
      }
      EXPECT_GE(ipow(base, level), x) << "base=" << base << " x=" << x;
    }
  }
}

TEST(CeilLog, AvoidsFloatingPointPitfall) {
  // log(1000)/log(10) = 2.9999... would floor to the wrong value; the
  // integer version must be exact.
  EXPECT_EQ(ceil_log(10, 1000), 3u);
  EXPECT_EQ(ceil_log(10, 1001), 4u);
  EXPECT_EQ(ceil_log(129, 16641), 2u);
  EXPECT_EQ(ceil_log(129, 16642), 3u);
}

TEST(Isqrt, MatchesFloor) {
  for (std::uint64_t x = 0; x < 2000; ++x) {
    const auto expected =
        static_cast<std::uint64_t>(std::floor(std::sqrt(static_cast<double>(x))));
    EXPECT_EQ(isqrt(x), expected) << "x=" << x;
  }
  EXPECT_EQ(isqrt(8ULL * 64), 22u);  // the m* merge threshold at w=64
}

TEST(Isqrt, LargeValues) {
  EXPECT_EQ(isqrt(1ULL << 62), 1ULL << 31);
  EXPECT_EQ(isqrt((1ULL << 62) - 1), (1ULL << 31) - 1);
}

TEST(PosMod, NegativeOperands) {
  EXPECT_EQ(pos_mod(-1, 5), 4);
  EXPECT_EQ(pos_mod(-5, 5), 0);
  EXPECT_EQ(pos_mod(7, 5), 2);
  EXPECT_EQ(pos_mod(-12, 5), 3);
}

TEST(ApproxEq, WithinAndOutsideEpsilon) {
  EXPECT_TRUE(approx_eq(1.0, 1.0, 0.0));
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
  EXPECT_TRUE(approx_eq(1.0 + 1e-12, 1.0, 1e-9));
  EXPECT_FALSE(approx_eq(1.0, 1.1, 1e-9));
  EXPECT_FALSE(approx_eq(-1.0, 1.0, 1.0));
  EXPECT_TRUE(approx_eq(-1.0, 1.0, 2.0));
}

TEST(ApproxZero, SymmetricAroundZero) {
  EXPECT_TRUE(approx_zero(0.0, 0.0));
  EXPECT_TRUE(approx_zero(1e-12, 1e-9));
  EXPECT_TRUE(approx_zero(-1e-12, 1e-9));
  EXPECT_FALSE(approx_zero(1e-6, 1e-9));
  EXPECT_FALSE(approx_zero(-1e-6, 1e-9));
}

class CeilLogSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CeilLogSweep, ConsistentWithPow) {
  const std::uint64_t x = GetParam();
  for (std::uint64_t base = 2; base <= 20; ++base) {
    const unsigned level = ceil_log(base, x);
    EXPECT_GE(ipow(base, level), x);
    if (level > 0) {
      EXPECT_LT(ipow(base, level - 1), x);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Values, CeilLogSweep,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 128, 255, 256,
                                           257, 999, 1000, 1024, 4097,
                                           1000000));

}  // namespace
}  // namespace wrht::util
