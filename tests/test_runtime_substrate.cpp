// The pluggable execution substrates behind the multi-tenant runtime:
// electrical-overflow placement correctness (every electrically-placed job
// passes the functional oracle), per-substrate report accounting, hybrid
// cost-model routing, host-link exclusivity on the fallback fabric, and —
// because the optical path now runs behind the same interface — proof that
// preemption and elastic resize behave exactly as before.
#include "runtime/substrate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/runtime.hpp"

namespace wrht::runtime {
namespace {

JobSpec span_job(std::uint32_t first, std::uint32_t count,
                 util::Bytes payload, util::Seconds arrival = {}) {
  JobSpec spec;
  for (std::uint32_t i = 0; i < count; ++i) {
    spec.participants.push_back(first + i);
  }
  spec.payload = payload;
  spec.arrival = arrival;
  return spec;
}

RuntimeConfig hybrid_config(HybridPlacementPolicy placement) {
  RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.batcher.enabled = false;
  config.placement = placement;
  return config;
}

/// Two tenants saturate the spectrum; four disjoint burst jobs arrive while
/// every wavelength is held.
void submit_saturated_mix(CollectiveRuntime& rt) {
  for (std::uint32_t t = 0; t < 2; ++t) {
    JobSpec big = span_job(t * 16, 16, util::megabytes(48));
    big.requested_wavelengths = 8;
    big.min_wavelengths = 8;
    rt.submit(big);
  }
  for (std::uint32_t b = 0; b < 4; ++b) {
    JobSpec burst = span_job(b * 8, 8, util::megabytes(1),
                             util::milliseconds(1.0));
    burst.min_wavelengths = 4;
    burst.requested_wavelengths = 4;
    rt.submit(burst);
  }
}

TEST(ElectricalOverflow, PlacedJobsPassTheOracleAndComplete) {
  CollectiveRuntime rt(
      hybrid_config(HybridPlacementPolicy::kElectricalOverflow));
  rt.trace().enable();
  submit_saturated_mix(rt);
  const RuntimeReport report = rt.run();

  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.oracle_failures, 0u);
  EXPECT_EQ(report.electrical.jobs, 4u);
  EXPECT_EQ(report.optical.jobs, 2u);

  std::uint32_t electrical_records = 0;
  for (JobId id = 0; id < rt.num_jobs(); ++id) {
    const JobRecord& r = rt.record(static_cast<JobId>(id));
    EXPECT_EQ(r.state, JobState::kDone);
    // THE correctness claim: every job — and in particular every
    // electrically-placed one — ran a schedule the functional oracle
    // proved to be an all-reduce among its participants.
    EXPECT_TRUE(r.oracle_ok);
    if (r.substrate == SubstrateKind::kElectrical) {
      ++electrical_records;
      // Electrical grants are host links; no spectrum band is held.
      EXPECT_FALSE(r.band.valid());
    } else {
      EXPECT_TRUE(r.band.valid());
    }
  }
  EXPECT_EQ(electrical_records, 4u);

  // The burst was placed at arrival (no waiting for an optical
  // completion), and the trace carries the placement verdicts.
  std::uint32_t place_optical = 0;
  std::uint32_t place_electrical = 0;
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind == sim::TraceKind::kJobPlaceOptical) ++place_optical;
    if (e.kind == sim::TraceKind::kJobPlaceElectrical) ++place_electrical;
  }
  EXPECT_EQ(place_optical, 2u);
  EXPECT_EQ(place_electrical, 4u);
  for (JobId id = 2; id < 6; ++id) {
    EXPECT_EQ(rt.record(id).admitted, util::milliseconds(1.0));
  }
}

TEST(ElectricalOverflow, BreakdownCountersSumToTheTotals) {
  CollectiveRuntime rt(
      hybrid_config(HybridPlacementPolicy::kElectricalOverflow));
  submit_saturated_mix(rt);
  const RuntimeReport report = rt.run();

  EXPECT_EQ(report.optical.jobs + report.electrical.jobs, report.completed);
  EXPECT_EQ(report.optical.executions + report.electrical.executions,
            report.executions);
  EXPECT_EQ(report.optical.steps + report.electrical.steps,
            report.total_steps);
  // Each substrate's makespan contribution is a completion time on the
  // shared clock; the later one IS the run's makespan here (every job
  // completed on one of the two).
  EXPECT_EQ(std::max(report.optical.makespan, report.electrical.makespan),
            report.makespan);
  EXPECT_GT(report.electrical.makespan, util::Seconds(0.0));
}

TEST(ElectricalOverflow, StrictlyImprovesSaturatedMakespanOverOpticalOnly) {
  CollectiveRuntime queued(hybrid_config(HybridPlacementPolicy::kOpticalOnly));
  submit_saturated_mix(queued);
  const RuntimeReport optical_only = queued.run();

  CollectiveRuntime hybrid(
      hybrid_config(HybridPlacementPolicy::kElectricalOverflow));
  submit_saturated_mix(hybrid);
  const RuntimeReport overflow = hybrid.run();

  EXPECT_EQ(optical_only.electrical.jobs, 0u);
  EXPECT_EQ(optical_only.completed, overflow.completed);
  EXPECT_LT(overflow.makespan, optical_only.makespan);
  EXPECT_LT(overflow.mean_turnaround(), optical_only.mean_turnaround());
}

TEST(ElectricalOverflow, HostExclusivitySerializesOverlappingJobs) {
  // Two overflow jobs share host 4; their access-link claims conflict, so
  // the second must wait for the first's release even though the fabric is
  // otherwise idle — the link-capacity grant model at work.
  CollectiveRuntime rt(
      hybrid_config(HybridPlacementPolicy::kElectricalOverflow));
  JobSpec blocker = span_job(0, 16, util::megabytes(64));
  blocker.min_wavelengths = 16;
  blocker.requested_wavelengths = 16;
  rt.submit(blocker);
  JobSpec first = span_job(0, 8, util::megabytes(4), util::milliseconds(1.0));
  first.min_wavelengths = 4;
  const JobId a = rt.submit(first);
  JobSpec second = span_job(4, 8, util::megabytes(4), util::milliseconds(1.0));
  second.min_wavelengths = 4;
  const JobId b = rt.submit(second);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(rt.record(a).substrate, SubstrateKind::kElectrical);
  EXPECT_EQ(rt.record(b).substrate, SubstrateKind::kElectrical);
  EXPECT_EQ(rt.record(a).admitted, util::milliseconds(1.0));
  // b waited for a's hosts, not for the optical blocker.
  EXPECT_GE(rt.record(b).admitted, rt.record(a).completed);
  EXPECT_LT(rt.record(b).admitted, rt.record(0).completed);
}

TEST(CostModelChoice, RoutesByPredictedTime) {
  // Spectrum is FREE, yet a small latency-bound job must go electrical: a
  // handful of 2.55 ms optical step overheads dwarf the electrical ring's
  // 50 us alphas.  A huge bandwidth-bound job must stay optical: five
  // 40 Gb/s wavelengths outrun the 10 Gb/s host links.
  CollectiveRuntime rt(hybrid_config(HybridPlacementPolicy::kCostModelChoice));
  JobSpec tiny = span_job(0, 8, util::kilobytes(64));
  tiny.min_wavelengths = 2;
  const JobId small_id = rt.submit(tiny);
  JobSpec huge = span_job(16, 8, util::megabytes(256));
  huge.min_wavelengths = 2;
  huge.requested_wavelengths = 8;
  const JobId big_id = rt.submit(huge);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(rt.record(small_id).substrate, SubstrateKind::kElectrical);
  EXPECT_EQ(rt.record(big_id).substrate, SubstrateKind::kOptical);
  EXPECT_TRUE(rt.record(small_id).oracle_ok);
  EXPECT_TRUE(rt.record(big_id).oracle_ok);
}

TEST(SubstrateRefactor, PreemptionStillWorksOnOpticalBehindTheInterface) {
  // The PR-2 preemption scenario, unchanged, now running through the
  // substrate interface (default optical-only placement): the victim must
  // still suspend at a boundary, the urgent arrival run, the victim resume
  // on a rebuilt remainder, and the composite oracle prove all of it.
  RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;

  CollectiveRuntime rt(config);
  JobSpec blocker = span_job(0, 12, util::megabytes(32));
  blocker.min_wavelengths = 8;
  blocker.requested_wavelengths = 8;
  blocker.priority = 0;
  const JobId victim = rt.submit(blocker);
  JobSpec urgent = span_job(2, 6, util::megabytes(1), util::microseconds(1.0));
  urgent.min_wavelengths = 4;
  urgent.requested_wavelengths = 4;
  urgent.priority = 5;
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_GE(report.preemptions, 1u);
  EXPECT_EQ(report.resumes, report.preemptions);
  EXPECT_EQ(report.electrical.jobs, 0u);  // kOpticalOnly default
  EXPECT_LT(rt.record(vip).completed, rt.record(victim).completed);
  EXPECT_TRUE(rt.record(victim).oracle_ok);
  EXPECT_EQ(rt.record(victim).state, JobState::kDone);
}

TEST(SubstrateRefactor, ElasticResizeStillWorksOnOpticalBehindTheInterface) {
  // The PR-2 grow scenario through the substrate seam: the narrow survivor
  // grows into the wide job's freed band and beats its fixed-band twin.
  auto run_once = [](bool elastic) {
    RuntimeConfig config;
    config.ring_size = 32;
    config.optical.wdm.num_wavelengths = 32;
    config.batcher.enabled = false;
    config.elastic_resize = elastic;
    CollectiveRuntime rt(config);
    JobSpec narrow = span_job(0, 24, util::megabytes(64));
    narrow.requested_wavelengths = 2;
    narrow.min_wavelengths = 2;
    rt.submit(narrow);
    JobSpec wide = span_job(8, 16, util::kilobytes(64));
    wide.requested_wavelengths = 30;
    rt.submit(wide);
    const RuntimeReport report = rt.run();
    return std::pair<util::Seconds, std::uint32_t>(report.makespan,
                                                   report.resizes);
  };
  const auto [fixed_makespan, fixed_resizes] = run_once(false);
  const auto [elastic_makespan, elastic_resizes] = run_once(true);
  EXPECT_EQ(fixed_resizes, 0u);
  EXPECT_GE(elastic_resizes, 1u);
  EXPECT_LT(elastic_makespan, fixed_makespan);
}

TEST(SubstrateRefactor, SpectrumPreemptionSparesElectricalTenants) {
  // A low-priority job runs electrically; a high-priority kAny arrival
  // whose hosts it occupies (so the arrival cannot spill) must preempt the
  // OPTICAL victim only.  The electrical substrate is preemptible now, but
  // surrendering host links would not free a wavelength — and a kAny
  // waiter never justifies evicting an electrical tenant (only pinned
  // arrivals and suspended electrical executions do).
  RuntimeConfig config = hybrid_config(
      HybridPlacementPolicy::kElectricalOverflow);
  config.policy = FairnessPolicy::kPriorityPreempt;

  CollectiveRuntime rt(config);
  JobSpec optical_victim = span_job(0, 16, util::megabytes(32));
  optical_victim.min_wavelengths = 16;
  optical_victim.requested_wavelengths = 16;
  optical_victim.priority = 0;
  const JobId victim = rt.submit(optical_victim);
  // Overflows to the electrical fabric (spectrum saturated at arrival).
  JobSpec elec_job = span_job(16, 8, util::megabytes(8),
                              util::microseconds(1.0));
  elec_job.min_wavelengths = 4;
  elec_job.priority = 0;
  const JobId spilled = rt.submit(elec_job);
  // Same hosts as the spilled job: the electrical fabric is closed to it,
  // so the priority machinery must carve spectrum out of the victim.
  JobSpec urgent = span_job(16, 6, util::megabytes(1),
                            util::milliseconds(2.0));
  urgent.min_wavelengths = 4;
  urgent.requested_wavelengths = 4;
  urgent.priority = 9;
  const JobId vip = rt.submit(urgent);

  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(rt.record(spilled).substrate, SubstrateKind::kElectrical);
  EXPECT_EQ(rt.record(spilled).preemptions, 0u);
  EXPECT_GE(rt.record(victim).preemptions, 1u);
  EXPECT_LT(rt.record(vip).completed, rt.record(victim).completed);
}

TEST(SubstrateRefactor, HybridRunStaysDeterministic) {
  auto run_once = []() {
    RuntimeConfig config = hybrid_config(
        HybridPlacementPolicy::kElectricalOverflow);
    config.policy = FairnessPolicy::kPriorityPreempt;
    config.elastic_resize = true;
    CollectiveRuntime rt(config);
    for (std::uint32_t i = 0; i < 10; ++i) {
      JobSpec spec = span_job((i * 3) % 16, 8 + (i % 4) * 2,
                              util::megabytes(1 + 5 * (i % 3)),
                              util::microseconds(static_cast<double>(i) * 40));
      spec.priority = static_cast<std::int32_t>(i % 3);
      rt.submit(spec);
    }
    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed, 10u);
    EXPECT_EQ(report.oracle_failures, 0u);
    return rt.completion_order();
  };
  const std::vector<JobId> once = run_once();
  const std::vector<JobId> again = run_once();
  EXPECT_EQ(once, again);
  EXPECT_EQ(once.size(), 10u);
}

TEST(Substrate, ElectricalFactoryStandsAlone) {
  // The substrate interface is usable outside the runtime: place a job,
  // time its steps, release, place again.
  const ElectricalFallbackConfig config;
  const std::unique_ptr<ExecutionSubstrate> sub =
      make_electrical_substrate(16, config);
  EXPECT_EQ(sub->kind(), SubstrateKind::kElectrical);
  // BSP step boundaries are preemption points; resize stays off (the grant
  // is exactly one host per participant).
  EXPECT_TRUE(sub->caps().preemptible);
  EXPECT_TRUE(sub->caps().remaps_on_resume);
  EXPECT_FALSE(sub->caps().resizable);
  EXPECT_TRUE(sub->caps().batchable);

  const std::vector<topo::NodeId> group{0, 1, 2, 3};
  ASSERT_TRUE(sub->can_place(group, 1));
  std::unique_ptr<SubstrateExecution> plan =
      sub->place(group, util::megabytes(1), 1);
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->num_steps(), 0u);
  EXPECT_FALSE(plan->band().valid());
  // Hosts are exclusive while held...
  EXPECT_FALSE(sub->can_place({2, 5}, 1));
  EXPECT_TRUE(sub->can_place({8, 9}, 1));

  util::Seconds clock{0.0};
  for (std::size_t s = 0; s < plan->num_steps(); ++s) {
    const StepTiming t = sub->time_step(*plan, s, clock);
    EXPECT_GT(t.end, clock);
    EXPECT_EQ(t.reservations, 0u);
    clock = t.end;
  }
  // ... and free again after release.
  sub->release(*plan, clock);
  EXPECT_TRUE(sub->can_place({2, 5}, 1));

  // Resize renegotiations refuse without touching anything; resume is the
  // preemption path's job and gets its own suite
  // (test_runtime_electrical_preempt).
  EXPECT_FALSE(
      sub->renegotiate(plan.get(), RenegotiationRequest::grow(0, 4))
          .accepted());
  EXPECT_FALSE(
      sub->renegotiate(plan.get(), RenegotiationRequest::shrink(0, 1))
          .accepted());
}

RuntimeConfig shared_fabric_config(double oversubscription,
                                   std::uint32_t hosts_per_tor) {
  RuntimeConfig config = hybrid_config(
      HybridPlacementPolicy::kElectricalOverflow);
  config.electrical.fabric = ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = hosts_per_tor;
  config.electrical.oversubscription = oversubscription;
  return config;
}

/// Four disjoint electrically-pinned jobs, either each contained in one ToR
/// of 8 hosts (contained = true) or each straddling two ToRs of 16 hosts.
void submit_pinned_quartet(CollectiveRuntime& rt, bool contained) {
  for (std::uint32_t j = 0; j < 4; ++j) {
    JobSpec spec;
    if (contained) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        spec.participants.push_back(j * 8 + i);
      }
    } else {
      for (std::uint32_t i = 0; i < 4; ++i) {
        spec.participants.push_back(j * 4 + i);
      }
      for (std::uint32_t i = 0; i < 4; ++i) {
        spec.participants.push_back(16 + j * 4 + i);
      }
    }
    spec.payload = util::megabytes(4 + 2 * j);
    spec.pin = SubstratePin::kElectricalOnly;
    rt.submit(spec);
  }
}

TEST(SharedFabricRuntime, TorContainedJobsMatchTheExclusiveStar) {
  // Disjoint jobs each inside one ToR never share a link, so the shared
  // two-level fabric must reproduce the exclusive-star timing (to fluid-
  // model precision) and report a contention slowdown of exactly 1x.
  RuntimeConfig star = hybrid_config(HybridPlacementPolicy::kElectricalOverflow);
  CollectiveRuntime star_rt(star);
  submit_pinned_quartet(star_rt, /*contained=*/true);
  const RuntimeReport star_report = star_rt.run();

  CollectiveRuntime shared_rt(shared_fabric_config(1.0, 8));
  submit_pinned_quartet(shared_rt, /*contained=*/true);
  const RuntimeReport shared_report = shared_rt.run();

  EXPECT_EQ(star_report.electrical.jobs, 4u);
  EXPECT_EQ(shared_report.electrical.jobs, 4u);
  for (JobId id = 0; id < 4; ++id) {
    const JobRecord& s = star_rt.record(id);
    const JobRecord& t = shared_rt.record(id);
    EXPECT_EQ(s.substrate, SubstrateKind::kElectrical);
    EXPECT_EQ(t.substrate, SubstrateKind::kElectrical);
    EXPECT_NEAR(t.completed.value(), s.completed.value(),
                1e-9 * std::max(1.0, s.completed.value()));
    // The star IS its own quiet network; the ToR-contained shared tenant
    // never met another tenant's flows.
    EXPECT_NEAR(s.contention_slowdown, 1.0, 1e-9);
    EXPECT_NEAR(t.contention_slowdown, 1.0, 1e-9);
  }
  EXPECT_NEAR(shared_report.makespan.value(), star_report.makespan.value(),
              1e-9 * star_report.makespan.value());
  // Every shared-fabric step was re-proven by the whole-horizon replay.
  EXPECT_EQ(shared_report.replay_checked_steps,
            shared_report.electrical.steps);
  EXPECT_EQ(star_report.replay_checked_steps, 0u);  // star has no oracle
}

TEST(SharedFabricRuntime, OversubscribedUplinksContendAndRetime) {
  // Jobs straddling both ToRs under 8:1 oversubscription fight for the
  // uplinks: every job must slow down vs. its quiet time, step-completion
  // events must have been re-scheduled as tenants joined, the uplink peak
  // utilization must show saturation, and the replay oracle must agree
  // with every incremental step time.
  CollectiveRuntime rt(shared_fabric_config(8.0, 16));
  rt.trace().enable();
  submit_pinned_quartet(rt, /*contained=*/false);
  const RuntimeReport report = rt.run();

  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.electrical.jobs, 4u);
  EXPECT_GT(report.step_retimes, 0u);
  EXPECT_EQ(report.replay_checked_steps, report.electrical.steps);
  for (JobId id = 0; id < 4; ++id) {
    EXPECT_GT(rt.record(id).contention_slowdown, 1.05)
        << "job " << id << " should have contended on the uplinks";
    EXPECT_TRUE(rt.record(id).oracle_ok);
  }
  EXPECT_GT(report.electrical.contention_slowdown(), 1.05);

  // The trace carries the retiming story.
  std::uint64_t retime_events = 0;
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind == sim::TraceKind::kStepRetimed) ++retime_events;
  }
  EXPECT_EQ(retime_events, report.step_retimes);

  // Some fabric link — an uplink — hit full utilization.
  ASSERT_FALSE(report.electrical_link_peak.empty());
  const double peak = *std::max_element(report.electrical_link_peak.begin(),
                                        report.electrical_link_peak.end());
  EXPECT_NEAR(peak, 1.0, 1e-6);

  // And the same mix on the exclusive star finishes faster: the star's
  // private host links hide exactly the contention this fabric models.
  CollectiveRuntime star_rt(
      hybrid_config(HybridPlacementPolicy::kElectricalOverflow));
  submit_pinned_quartet(star_rt, /*contained=*/false);
  const RuntimeReport star_report = star_rt.run();
  EXPECT_GT(report.makespan, star_report.makespan);
}

TEST(SharedFabricRuntime, SharedRunsStayDeterministic) {
  auto run_once = []() {
    CollectiveRuntime rt(shared_fabric_config(4.0, 16));
    for (std::uint32_t i = 0; i < 8; ++i) {
      JobSpec spec;
      for (std::uint32_t p = 0; p < 6; ++p) {
        spec.participants.push_back((i * 4 + p * 5) % 32);
      }
      std::sort(spec.participants.begin(), spec.participants.end());
      spec.participants.erase(std::unique(spec.participants.begin(),
                                          spec.participants.end()),
                              spec.participants.end());
      spec.payload = util::megabytes(1 + i % 5);
      spec.arrival = util::microseconds(static_cast<double>(i) * 150);
      spec.pin = (i % 2 == 0) ? SubstratePin::kElectricalOnly
                              : SubstratePin::kAny;
      rt.submit(spec);
    }
    const RuntimeReport report = rt.run();
    EXPECT_EQ(report.completed, 8u);
    return rt.completion_order();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SubstratePinning, PinsRouteAndRejectAsPromised) {
  // kElectricalOnly forces the fallback even when spectrum is idle;
  // kOpticalOnly keeps a job on the ring even when the fallback is idle;
  // an electrical pin without an electrical fabric is rejected at submit.
  CollectiveRuntime rt(hybrid_config(HybridPlacementPolicy::kElectricalOverflow));
  JobSpec elec = span_job(0, 8, util::megabytes(1));
  elec.pin = SubstratePin::kElectricalOnly;
  const JobId elec_id = rt.submit(elec);
  JobSpec optic = span_job(8, 8, util::megabytes(1));
  optic.pin = SubstratePin::kOpticalOnly;
  const JobId optic_id = rt.submit(optic);
  const RuntimeReport report = rt.run();
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(rt.record(elec_id).substrate, SubstrateKind::kElectrical);
  EXPECT_EQ(rt.record(optic_id).substrate, SubstrateKind::kOptical);

  CollectiveRuntime optical_only(
      hybrid_config(HybridPlacementPolicy::kOpticalOnly));
  JobSpec stranded = span_job(0, 8, util::megabytes(1));
  stranded.pin = SubstratePin::kElectricalOnly;
  const JobId stranded_id = optical_only.submit(stranded);
  EXPECT_EQ(optical_only.record(stranded_id).state, JobState::kRejected);
  EXPECT_FALSE(optical_only.record(stranded_id).reject_reason.empty());
}

TEST(Substrate, MaxConcurrentCapsElectricalPlacements) {
  ElectricalFallbackConfig config;
  config.max_concurrent = 1;
  const std::unique_ptr<ExecutionSubstrate> sub =
      make_electrical_substrate(16, config);
  std::unique_ptr<SubstrateExecution> first =
      sub->place({0, 1}, util::kilobytes(1), 1);
  // Disjoint hosts, but the concurrency slot is taken.
  EXPECT_FALSE(sub->can_place({4, 5}, 1));
  sub->release(*first, util::Seconds(0.0));
  EXPECT_TRUE(sub->can_place({4, 5}, 1));
}

}  // namespace
}  // namespace wrht::runtime
