#include "wrht/annotated.hpp"

#include <gtest/gtest.h>

#include "coll/algorithms.hpp"
#include "optical/spectrum.hpp"

namespace wrht::core {
namespace {

TEST(Annotate, RingScheduleFitsOneWavelength) {
  // Neighbour transfers occupy disjoint spans: the whole chunked ring
  // all-reduce needs a single wavelength (why O-Ring wastes WDM).
  const std::uint32_t n = 16;
  const topo::RingTopology ring(n);
  const auto annotated = annotate_on_ring(coll::ring_allreduce(n), ring, 1);
  ASSERT_TRUE(annotated.has_value());
  EXPECT_EQ(annotated->wavelengths_required, 1u);
  for (const auto& step : annotated->lambda_per_step) {
    EXPECT_EQ(step, 1u);
  }
}

TEST(Annotate, ShapeMatchesSchedule) {
  const std::uint32_t n = 8;
  const topo::RingTopology ring(n);
  const auto annotated =
      annotate_on_ring(coll::recursive_doubling(n), ring, 16);
  ASSERT_TRUE(annotated.has_value());
  ASSERT_EQ(annotated->paths.size(), annotated->schedule.num_steps());
  for (std::size_t s = 0; s < annotated->paths.size(); ++s) {
    EXPECT_EQ(annotated->paths[s].size(),
              annotated->schedule.steps()[s].transfers.size());
    for (const PathAssignment& path : annotated->paths[s]) {
      EXPECT_EQ(path.lambdas.size(), 1u);
      EXPECT_GT(path.arc.length, 0u);
    }
  }
}

TEST(Annotate, UsesShortestDirection) {
  const std::uint32_t n = 16;
  const topo::RingTopology ring(n);
  coll::Schedule schedule("probe", n, 1);
  schedule.add_step();
  schedule.add_transfer({0, 2, 0, coll::TransferOp::kReduce});   // cw
  schedule.add_transfer({0, 14, 0, coll::TransferOp::kReduce});  // ccw
  const auto annotated = annotate_on_ring(std::move(schedule), ring, 4);
  ASSERT_TRUE(annotated.has_value());
  EXPECT_EQ(annotated->paths[0][0].arc.direction,
            topo::Direction::kClockwise);
  EXPECT_EQ(annotated->paths[0][0].arc.length, 2u);
  EXPECT_EQ(annotated->paths[0][1].arc.direction,
            topo::Direction::kCounterClockwise);
  EXPECT_EQ(annotated->paths[0][1].arc.length, 2u);
}

TEST(Annotate, ConflictFreePerStep) {
  const std::uint32_t n = 12;
  const topo::RingTopology ring(n);
  const auto annotated =
      annotate_on_ring(coll::halving_doubling(n), ring, 64);
  ASSERT_TRUE(annotated.has_value());
  for (const auto& step : annotated->paths) {
    optical::SpectrumMap spectrum(ring, annotated->wavelengths_required);
    for (const PathAssignment& path : step) {
      ASSERT_TRUE(spectrum.is_free(path.arc, path.lambdas[0]));
      spectrum.reserve(path.arc, path.lambdas[0]);
    }
  }
}

TEST(Annotate, FailsWhenSpectrumTooSmall) {
  // Direct all-reduce at n=16 needs far more than 2 wavelengths.
  const std::uint32_t n = 16;
  const topo::RingTopology ring(n);
  EXPECT_FALSE(
      annotate_on_ring(coll::direct_allreduce(n), ring, 2).has_value());
}

TEST(Annotate, DirectAllReduceFitsWithGenerousSpectrum) {
  const std::uint32_t n = 8;
  const topo::RingTopology ring(n);
  const auto annotated =
      annotate_on_ring(coll::direct_allreduce(n), ring, 64);
  ASSERT_TRUE(annotated.has_value());
  // Liang-Shen style bound: about n^2/8 per step.
  EXPECT_LE(annotated->wavelengths_required, 16u);
}

TEST(Annotate, RecursiveDoublingNeedsManyWavelengths) {
  // The first RD round pairs i with i+8 on a 16-ring: eight arcs of length
  // 8 in parallel; they stack heavily on the spans.  This quantifies why
  // nonlocal electrical algorithms do not map well onto the optical ring.
  const std::uint32_t n = 16;
  const topo::RingTopology ring(n);
  const auto annotated =
      annotate_on_ring(coll::recursive_doubling(n), ring, 64);
  ASSERT_TRUE(annotated.has_value());
  EXPECT_GE(annotated->wavelengths_required, 4u);
}

}  // namespace
}  // namespace wrht::core
