#include "runtime/admission.hpp"

#include <gtest/gtest.h>

namespace wrht::runtime {
namespace {

QueueEntry entry(JobId id, std::uint64_t seq, std::uint32_t min,
                 std::uint32_t requested, double weight = 1.0,
                 util::Bytes payload = util::megabytes(1)) {
  return QueueEntry{id, seq, min, requested, weight, payload, {0, 1}};
}

TEST(AdmissionFifo, HeadGetsRequestCappedByFreeBlock) {
  JobQueue queue;
  queue.push(entry(0, 0, /*min=*/2, /*requested=*/8));
  const auto d =
      next_admission(queue, FairnessPolicy::kFifo, /*largest=*/6, /*free=*/6);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->queue_index, 0u);
  EXPECT_EQ(d->grant, 6u);
}

TEST(AdmissionFifo, HeadOfLineBlocks) {
  JobQueue queue;
  queue.push(entry(0, 0, /*min=*/8, /*requested=*/8));
  queue.push(entry(1, 1, /*min=*/2, /*requested=*/2));
  // The younger job fits, but FIFO refuses to jump the line.
  EXPECT_FALSE(next_admission(queue, FairnessPolicy::kFifo, 4, 4));
}

TEST(AdmissionFifo, BelowMinimumDeclines) {
  JobQueue queue;
  queue.push(entry(0, 0, /*min=*/4, /*requested=*/8));
  EXPECT_FALSE(next_admission(queue, FairnessPolicy::kFifo, 3, 3));
}

TEST(AdmissionSmallest, PicksSmallestPayloadThatFits) {
  JobQueue queue;
  queue.push(entry(0, 0, 2, 4, 1.0, util::megabytes(64)));
  queue.push(entry(1, 1, 2, 4, 1.0, util::kilobytes(64)));
  queue.push(entry(2, 2, 8, 8, 1.0, util::Bytes(1)));  // tiny but won't fit
  const auto d =
      next_admission(queue, FairnessPolicy::kSmallestFirst, 4, 4);
  ASSERT_TRUE(d);
  EXPECT_EQ(queue.at(d->queue_index).id, 1u);
  EXPECT_EQ(d->grant, 4u);
}

TEST(AdmissionSmallest, TieBreaksOnSubmissionOrder) {
  JobQueue queue;
  queue.push(entry(7, 5, 1, 2, 1.0, util::kilobytes(10)));
  queue.push(entry(3, 2, 1, 2, 1.0, util::kilobytes(10)));
  const auto d =
      next_admission(queue, FairnessPolicy::kSmallestFirst, 8, 8);
  ASSERT_TRUE(d);
  EXPECT_EQ(queue.at(d->queue_index).id, 3u);
}

TEST(AdmissionWeighted, SharesSpectrumProportionally) {
  JobQueue queue;
  queue.push(entry(0, 0, 1, 32, /*weight=*/3.0));
  queue.push(entry(1, 1, 1, 32, /*weight=*/1.0));
  // 32 free: the heavy job is picked first with 3/4 of the pool.
  const auto first =
      next_admission(queue, FairnessPolicy::kWeightedFair, 32, 32);
  ASSERT_TRUE(first);
  EXPECT_EQ(queue.at(first->queue_index).id, 0u);
  EXPECT_EQ(first->grant, 24u);

  // With the heavy job gone and 8 left, the light job gets the rest.
  JobQueue rest;
  rest.push(entry(1, 1, 1, 32, 1.0));
  const auto second =
      next_admission(rest, FairnessPolicy::kWeightedFair, 8, 8);
  ASSERT_TRUE(second);
  EXPECT_EQ(second->grant, 8u);
}

TEST(AdmissionWeighted, MinimumOverridesTinyShare) {
  JobQueue queue;
  queue.push(entry(0, 0, 1, 32, /*weight=*/100.0));
  queue.push(entry(1, 1, /*min=*/4, 32, /*weight=*/0.01));
  const auto d =
      next_admission(queue, FairnessPolicy::kWeightedFair, 32, 32);
  ASSERT_TRUE(d);
  // Heavy job wins the slot but its share leaves the queue admissible; the
  // light job's next admission would still honor min_wavelengths = 4.
  EXPECT_EQ(queue.at(d->queue_index).id, 0u);
  JobQueue light;
  light.push(entry(1, 1, 4, 32, 0.01));
  const auto l = next_admission(light, FairnessPolicy::kWeightedFair, 6, 6);
  ASSERT_TRUE(l);
  EXPECT_GE(l->grant, 4u);
}

TEST(AdmissionWeighted, AllZeroWeightsFallBackToFifo) {
  // With no positive weight there is no share to split; the policy must
  // degrade to strict arrival order rather than divide by zero or starve.
  JobQueue queue;
  queue.push(entry(7, /*seq=*/5, 1, 4, /*weight=*/0.0));
  queue.push(entry(3, /*seq=*/2, 1, 4, /*weight=*/0.0));
  const auto d =
      next_admission(queue, FairnessPolicy::kWeightedFair, 8, 8);
  ASSERT_TRUE(d);
  EXPECT_EQ(queue.at(d->queue_index).id, 3u);  // oldest, not heaviest
  // FIFO semantics also means head-of-line blocking: if the oldest cannot
  // fit, nothing runs.
  JobQueue blocked;
  blocked.push(entry(0, 0, /*min=*/8, 8, 0.0));
  blocked.push(entry(1, 1, /*min=*/1, 1, 0.0));
  EXPECT_FALSE(next_admission(blocked, FairnessPolicy::kWeightedFair, 4, 4));
}

TEST(AdmissionWeighted, NegativeWeightsAreClampedNotTrusted) {
  // All-negative degrades to FIFO like all-zero...
  JobQueue queue;
  queue.push(entry(9, /*seq=*/4, 1, 4, /*weight=*/-2.0));
  queue.push(entry(1, /*seq=*/1, 1, 4, /*weight=*/-7.0));
  const auto d =
      next_admission(queue, FairnessPolicy::kWeightedFair, 8, 8);
  ASSERT_TRUE(d);
  EXPECT_EQ(queue.at(d->queue_index).id, 1u);

  // ...and a negative weight next to a positive one counts as zero share,
  // not as a negative share that could corrupt the split: the positive job
  // wins and gets the WHOLE free pool, since the other's share is zero.
  JobQueue mixed;
  mixed.push(entry(0, 0, 1, 32, /*weight=*/-5.0));
  mixed.push(entry(1, 1, 1, 32, /*weight=*/1.0));
  const auto m =
      next_admission(mixed, FairnessPolicy::kWeightedFair, 16, 16);
  ASSERT_TRUE(m);
  EXPECT_EQ(mixed.at(m->queue_index).id, 1u);
  EXPECT_EQ(m->grant, 16u);
}

TEST(AdmissionWeighted, TruncatedZeroShareIsRoundedUpToOne) {
  // Two equal featherweights over one free wavelength: each integer share
  // truncates to 0, and without the max(share, 1) floor neither would ever
  // be admissible.  The floor admits the older one with a single lambda.
  JobQueue queue;
  queue.push(entry(0, 0, 1, 8, /*weight=*/1e-3));
  queue.push(entry(1, 1, 1, 8, /*weight=*/1e-3));
  const auto d =
      next_admission(queue, FairnessPolicy::kWeightedFair, 1, 1);
  ASSERT_TRUE(d);
  EXPECT_EQ(queue.at(d->queue_index).id, 0u);
  EXPECT_EQ(d->grant, 1u);
}

QueueEntry priority_entry(JobId id, std::uint64_t seq, std::int32_t priority,
                          std::uint32_t min = 1, std::uint32_t requested = 4) {
  QueueEntry e = entry(id, seq, min, requested);
  e.priority = priority;
  return e;
}

TEST(AdmissionPriority, HighestPriorityWinsTiesOnArrival) {
  JobQueue queue;
  queue.push(priority_entry(0, 0, /*priority=*/1));
  queue.push(priority_entry(1, 1, /*priority=*/5));
  queue.push(priority_entry(2, 2, /*priority=*/5));
  const auto d =
      next_admission(queue, FairnessPolicy::kPriorityPreempt, 8, 8);
  ASSERT_TRUE(d);
  EXPECT_EQ(queue.at(d->queue_index).id, 1u);
}

TEST(AdmissionPriority, WinnerBlocksTheLine) {
  // The high-priority job's minimum does not fit; a low-priority job that
  // would fit must NOT slip into the band the runtime is preempting for it.
  JobQueue queue;
  queue.push(priority_entry(0, 0, /*priority=*/9, /*min=*/8, 8));
  queue.push(priority_entry(1, 1, /*priority=*/0, /*min=*/1, 1));
  EXPECT_FALSE(next_admission(queue, FairnessPolicy::kPriorityPreempt, 4, 4));
}

TEST(JobQueue, TakeRemovesAndReturns) {
  JobQueue queue;
  queue.push(entry(0, 0, 1, 1));
  queue.push(entry(1, 1, 1, 1));
  queue.push(entry(2, 2, 1, 1));
  const QueueEntry taken = queue.take(1);
  EXPECT_EQ(taken.id, 1u);
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.at(0).id, 0u);
  EXPECT_EQ(queue.at(1).id, 2u);
}

TEST(Admission, EmptyQueueOrNoSpectrumDeclines) {
  JobQueue queue;
  EXPECT_FALSE(next_admission(queue, FairnessPolicy::kFifo, 8, 8));
  queue.push(entry(0, 0, 1, 1));
  EXPECT_FALSE(next_admission(queue, FairnessPolicy::kFifo, 0, 0));
}

}  // namespace
}  // namespace wrht::runtime
