#include "topo/ring.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wrht::topo {
namespace {

TEST(Ring, Distances) {
  const RingTopology ring(8);
  EXPECT_EQ(ring.distance_cw(0, 3), 3u);
  EXPECT_EQ(ring.distance_cw(3, 0), 5u);
  EXPECT_EQ(ring.distance_cw(5, 5), 0u);
  EXPECT_EQ(ring.distance(0, 3, Direction::kCounterClockwise), 5u);
  EXPECT_EQ(ring.shortest_distance(0, 3), 3u);
  EXPECT_EQ(ring.shortest_distance(0, 5), 3u);
  EXPECT_EQ(ring.shortest_distance(0, 4), 4u);
}

TEST(Ring, ShortestDirectionTieBreaksClockwise) {
  const RingTopology ring(8);
  EXPECT_EQ(ring.shortest_direction(0, 3), Direction::kClockwise);
  EXPECT_EQ(ring.shortest_direction(0, 5), Direction::kCounterClockwise);
  // Exactly opposite: tie, clockwise wins.
  EXPECT_EQ(ring.shortest_direction(0, 4), Direction::kClockwise);
}

TEST(Ring, ClockwiseArcSpans) {
  const RingTopology ring(8);
  const Arc arc = ring.arc(2, 5, Direction::kClockwise);
  EXPECT_EQ(arc.length, 3u);
  EXPECT_EQ(ring.spans(arc), (std::vector<SpanId>{2, 3, 4}));
}

TEST(Ring, CounterClockwiseArcSpans) {
  const RingTopology ring(8);
  const Arc arc = ring.arc(2, 7, Direction::kCounterClockwise);
  EXPECT_EQ(arc.length, 3u);
  // Travelling 2 -> 1 -> 0 -> 7 uses spans 1, 0, 7 in that order.
  EXPECT_EQ(ring.spans(arc), (std::vector<SpanId>{1, 0, 7}));
}

TEST(Ring, WrappingClockwiseArc) {
  const RingTopology ring(8);
  const Arc arc = ring.arc(6, 1, Direction::kClockwise);
  EXPECT_EQ(arc.length, 3u);
  EXPECT_EQ(ring.spans(arc), (std::vector<SpanId>{6, 7, 0}));
}

TEST(Ring, ArcCovers) {
  const RingTopology ring(8);
  const Arc arc = ring.arc(6, 1, Direction::kClockwise);  // spans 6,7,0
  EXPECT_TRUE(ring.arc_covers(arc, 6));
  EXPECT_TRUE(ring.arc_covers(arc, 7));
  EXPECT_TRUE(ring.arc_covers(arc, 0));
  EXPECT_FALSE(ring.arc_covers(arc, 1));
  EXPECT_FALSE(ring.arc_covers(arc, 5));
}

TEST(Ring, ArcCoversCounterClockwise) {
  const RingTopology ring(8);
  const Arc arc = ring.arc(2, 7, Direction::kCounterClockwise);  // 1,0,7
  EXPECT_TRUE(ring.arc_covers(arc, 1));
  EXPECT_TRUE(ring.arc_covers(arc, 0));
  EXPECT_TRUE(ring.arc_covers(arc, 7));
  EXPECT_FALSE(ring.arc_covers(arc, 2));
  EXPECT_FALSE(ring.arc_covers(arc, 6));
}

TEST(Ring, ConflictRequiresSameDirection) {
  const RingTopology ring(8);
  const Arc cw = ring.arc(0, 4, Direction::kClockwise);
  const Arc ccw = ring.arc(4, 0, Direction::kCounterClockwise);
  // Same physical spans, opposite waveguides: no conflict.
  EXPECT_FALSE(ring.arcs_conflict(cw, ccw));
}

TEST(Ring, ConflictDetection) {
  const RingTopology ring(8);
  const Arc a = ring.arc(0, 3, Direction::kClockwise);  // spans 0,1,2
  const Arc b = ring.arc(2, 5, Direction::kClockwise);  // spans 2,3,4
  const Arc c = ring.arc(5, 7, Direction::kClockwise);  // spans 5,6
  EXPECT_TRUE(ring.arcs_conflict(a, b));
  EXPECT_TRUE(ring.arcs_conflict(b, a));
  EXPECT_FALSE(ring.arcs_conflict(a, c));
  EXPECT_FALSE(ring.arcs_conflict(b, c));
}

TEST(Ring, ConflictOnWrappingArcs) {
  const RingTopology ring(8);
  const Arc wrap = ring.arc(6, 1, Direction::kClockwise);   // 6,7,0
  const Arc inner = ring.arc(0, 2, Direction::kClockwise);  // 0,1
  const Arc away = ring.arc(2, 5, Direction::kClockwise);   // 2,3,4
  EXPECT_TRUE(ring.arcs_conflict(wrap, inner));
  EXPECT_FALSE(ring.arcs_conflict(wrap, away));
}

TEST(Ring, ConflictMatchesSpanIntersection) {
  // Property check: arcs_conflict agrees with explicit span-set overlap for
  // every (src, dst, dir) pair on a small ring.
  const RingTopology ring(6);
  std::vector<Arc> arcs;
  for (NodeId s = 0; s < 6; ++s) {
    for (NodeId d = 0; d < 6; ++d) {
      if (s == d) continue;
      arcs.push_back(ring.arc(s, d, Direction::kClockwise));
      arcs.push_back(ring.arc(s, d, Direction::kCounterClockwise));
    }
  }
  for (const Arc& a : arcs) {
    const auto spans_a = ring.spans(a);
    const std::set<SpanId> set_a(spans_a.begin(), spans_a.end());
    for (const Arc& b : arcs) {
      bool overlap = false;
      if (a.direction == b.direction) {
        for (const SpanId s : ring.spans(b)) {
          if (set_a.count(s) != 0) overlap = true;
        }
      }
      EXPECT_EQ(ring.arcs_conflict(a, b), overlap);
    }
  }
}

TEST(Ring, Advance) {
  const RingTopology ring(10);
  EXPECT_EQ(ring.advance(7, 5, Direction::kClockwise), 2u);
  EXPECT_EQ(ring.advance(2, 5, Direction::kCounterClockwise), 7u);
  EXPECT_EQ(ring.advance(3, 10, Direction::kClockwise), 3u);
  EXPECT_EQ(ring.advance(3, 23, Direction::kClockwise), 6u);
}

TEST(Ring, ArcAndDistanceConsistent) {
  const RingTopology ring(16);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      for (const Direction dir :
           {Direction::kClockwise, Direction::kCounterClockwise}) {
        const Arc arc = ring.arc(s, d, dir);
        EXPECT_EQ(arc.length, ring.distance(s, d, dir));
        EXPECT_EQ(ring.spans(arc).size(), arc.length);
        // Walking the arc ends at the destination.
        EXPECT_EQ(ring.advance(s, arc.length, dir), d);
      }
    }
  }
}

TEST(Ring, TwoNodeRing) {
  const RingTopology ring(2);
  EXPECT_EQ(ring.shortest_distance(0, 1), 1u);
  const Arc cw = ring.arc(0, 1, Direction::kClockwise);
  const Arc ccw = ring.arc(0, 1, Direction::kCounterClockwise);
  EXPECT_EQ(ring.spans(cw), (std::vector<SpanId>{0}));
  EXPECT_EQ(ring.spans(ccw), (std::vector<SpanId>{1}));
  EXPECT_FALSE(ring.arcs_conflict(cw, ccw));
}

TEST(Ring, OppositeHelper) {
  EXPECT_EQ(opposite(Direction::kClockwise), Direction::kCounterClockwise);
  EXPECT_EQ(opposite(Direction::kCounterClockwise), Direction::kClockwise);
}

}  // namespace
}  // namespace wrht::topo
