#include "dnn/training.hpp"

#include <gtest/gtest.h>

#include "dnn/catalog.hpp"

namespace wrht::dnn {
namespace {

using util::Bytes;
using util::Seconds;

AllReduceTimeFn linear_comm(double seconds_per_gb) {
  return [seconds_per_gb](Bytes bytes) {
    return Seconds(bytes.as_double() / 1e9 * seconds_per_gb);
  };
}

TEST(Training, NoOverlapIsComputePlusComm) {
  const Model model = alexnet();
  TrainingParams params;
  params.overlap = false;
  params.forward_time = Seconds(0.04);
  params.backward_time = Seconds(0.08);
  const auto timeline = simulate_iteration(model, params, linear_comm(1.0));
  const double comm = model.gradient_bytes().as_double() / 1e9;
  EXPECT_NEAR(timeline.total_time.value(), 0.12 + comm, 1e-9);
  EXPECT_EQ(timeline.num_buckets, 1u);
  EXPECT_NEAR(timeline.exposed_comm_time.value(), comm, 1e-9);
}

TEST(Training, OverlapHidesCommunicationBehindBackward) {
  // Fast network: every bucket's all-reduce finishes long before the next
  // bucket is ready, so only the final bucket's time is exposed.
  const Model model = resnet50();
  TrainingParams params;
  params.overlap = true;
  const auto fast = simulate_iteration(model, params, linear_comm(0.001));
  EXPECT_LT(comm_fraction(fast), 0.05);

  // Slow network: communication dominates and overlap cannot hide it.
  const auto slow = simulate_iteration(model, params, linear_comm(10.0));
  EXPECT_GT(comm_fraction(slow), 0.5);
}

TEST(Training, OverlapNeverSlowerThanNoOverlap) {
  for (const Model& model : paper_models()) {
    for (const double rate : {0.01, 0.5, 5.0}) {
      TrainingParams overlap;
      overlap.overlap = true;
      TrainingParams sequential;
      sequential.overlap = false;
      const double with =
          simulate_iteration(model, overlap, linear_comm(rate))
              .total_time.value();
      const double without =
          simulate_iteration(model, sequential, linear_comm(rate))
              .total_time.value();
      EXPECT_LE(with, without * (1.0 + 1e-9))
          << model.name() << " rate=" << rate;
    }
  }
}

TEST(Training, BucketsReadyMonotonically) {
  const Model model = vgg16();
  TrainingParams params;
  const auto timeline = simulate_iteration(model, params, linear_comm(1.0));
  for (std::size_t i = 1; i < timeline.bucket_ready.size(); ++i) {
    EXPECT_GE(timeline.bucket_ready[i].value(),
              timeline.bucket_ready[i - 1].value());
    EXPECT_GE(timeline.bucket_done[i].value(),
              timeline.bucket_done[i - 1].value());
  }
}

TEST(Training, AllReduceStartsOnlyAfterReady) {
  const Model model = googlenet();
  TrainingParams params;
  const auto timeline = simulate_iteration(model, params, linear_comm(2.0));
  for (std::size_t i = 0; i < timeline.num_buckets; ++i) {
    EXPECT_GE(timeline.bucket_done[i].value(),
              timeline.bucket_ready[i].value());
  }
}

TEST(Training, LastBucketReadyAtBackwardEnd) {
  const Model model = alexnet();
  TrainingParams params;
  params.forward_time = Seconds(0.1);
  params.backward_time = Seconds(0.2);
  const auto timeline = simulate_iteration(model, params, linear_comm(1.0));
  ASSERT_FALSE(timeline.bucket_ready.empty());
  EXPECT_NEAR(timeline.bucket_ready.back().value(), 0.3, 1e-9);
}

TEST(Training, CommFractionMatchesPaperMotivationAtScale) {
  // The paper's motivation: all-reduce takes 50-90% of iteration time on
  // slow (electrical) networks at scale.  A gigabit-class effective rate on
  // AlexNet-sized gradients lands in that band.
  const Model model = alexnet();
  TrainingParams params;
  params.overlap = true;
  const auto timeline = simulate_iteration(model, params, linear_comm(4.0));
  EXPECT_GT(comm_fraction(timeline), 0.5);
  EXPECT_LT(comm_fraction(timeline), 0.95);
}

TEST(Training, ZeroCommGivesComputeBoundIteration) {
  const Model model = resnet50();
  TrainingParams params;
  const auto timeline = simulate_iteration(
      model, params, [](Bytes) { return Seconds(0.0); });
  EXPECT_NEAR(timeline.total_time.value(), timeline.compute_time.value(),
              1e-12);
  EXPECT_NEAR(comm_fraction(timeline), 0.0, 1e-12);
}

}  // namespace
}  // namespace wrht::dnn
