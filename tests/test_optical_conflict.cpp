#include "optical/conflict.hpp"

#include <gtest/gtest.h>

namespace wrht::optical {
namespace {

using topo::Arc;
using topo::Direction;
using topo::RingTopology;

TEST(ConflictGraph, BuildsAdjacency) {
  const RingTopology ring(8);
  const std::vector<Arc> arcs = {
      ring.arc(0, 3, Direction::kClockwise),  // spans 0,1,2
      ring.arc(2, 5, Direction::kClockwise),  // spans 2,3,4
      ring.arc(5, 7, Direction::kClockwise),  // spans 5,6
  };
  const ConflictGraph graph(ring, arcs);
  EXPECT_EQ(graph.num_arcs(), 3u);
  EXPECT_TRUE(graph.conflicts(0, 1));
  EXPECT_FALSE(graph.conflicts(0, 2));
  EXPECT_FALSE(graph.conflicts(1, 2));
  EXPECT_EQ(graph.num_conflict_pairs(), 1u);
  EXPECT_EQ(graph.neighbors(0), (std::vector<std::size_t>{1}));
}

TEST(MaxLinkLoad, CountsCoveringArcs) {
  const RingTopology ring(8);
  const std::vector<Arc> arcs = {
      ring.arc(0, 4, Direction::kClockwise),  // 0,1,2,3
      ring.arc(1, 3, Direction::kClockwise),  // 1,2
      ring.arc(2, 6, Direction::kClockwise),  // 2,3,4,5
  };
  // Span 2 is covered by all three.
  EXPECT_EQ(max_link_load(ring, arcs), 3u);
}

TEST(MaxLinkLoad, DirectionsCountedSeparately) {
  const RingTopology ring(8);
  const std::vector<Arc> arcs = {
      ring.arc(0, 4, Direction::kClockwise),
      ring.arc(4, 0, Direction::kCounterClockwise),
  };
  EXPECT_EQ(max_link_load(ring, arcs), 1u);
}

TEST(MaxLinkLoad, EmptyInput) {
  const RingTopology ring(4);
  EXPECT_EQ(max_link_load(ring, {}), 0u);
}

TEST(OptimalColoring, IntervalChainNeedsTwo) {
  const RingTopology ring(8);
  const std::vector<Arc> arcs = {
      ring.arc(0, 2, Direction::kClockwise),
      ring.arc(1, 3, Direction::kClockwise),
      ring.arc(2, 4, Direction::kClockwise),
      ring.arc(3, 5, Direction::kClockwise),
  };
  // A chain of pairwise-overlapping neighbours is 2-colorable.
  EXPECT_EQ(optimal_wavelength_count(ring, arcs), 2u);
}

TEST(OptimalColoring, CliqueNeedsItsSize) {
  const RingTopology ring(8);
  // All arcs cover span 3.
  const std::vector<Arc> arcs = {
      ring.arc(0, 4, Direction::kClockwise),
      ring.arc(1, 5, Direction::kClockwise),
      ring.arc(2, 6, Direction::kClockwise),
      ring.arc(3, 7, Direction::kClockwise),
  };
  EXPECT_EQ(optimal_wavelength_count(ring, arcs), 4u);
}

TEST(OptimalColoring, DisjointArcsNeedOne) {
  const RingTopology ring(8);
  const std::vector<Arc> arcs = {
      ring.arc(0, 2, Direction::kClockwise),
      ring.arc(2, 4, Direction::kClockwise),
      ring.arc(4, 6, Direction::kClockwise),
  };
  EXPECT_EQ(optimal_wavelength_count(ring, arcs), 1u);
}

TEST(OptimalColoring, CircularArcsCanExceedLoad) {
  // The classic odd cycle: 5 arcs around a 5-ring, each overlapping its two
  // neighbours.  Max link load is 2 but the chromatic number is 3 — this is
  // exactly why wavelength assignment on rings is not plain interval
  // coloring.
  const RingTopology ring(5);
  std::vector<Arc> arcs;
  for (topo::NodeId i = 0; i < 5; ++i) {
    arcs.push_back(ring.arc(i, (i + 2) % 5, Direction::kClockwise));
  }
  EXPECT_EQ(max_link_load(ring, arcs), 2u);
  EXPECT_EQ(optimal_wavelength_count(ring, arcs), 3u);
}

TEST(OptimalColoring, EmptyNeedsZero) {
  const RingTopology ring(4);
  EXPECT_EQ(optimal_wavelength_count(ring, {}), 0u);
}

}  // namespace
}  // namespace wrht::optical
