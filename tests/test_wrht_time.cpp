// Timing consistency: the closed-form model, the per-step analytic sum, and
// the discrete-event simulation must tell the same story.
#include "wrht/time_model.hpp"

#include <gtest/gtest.h>

#include "wrht/executor.hpp"

namespace wrht::core {
namespace {

using util::Bytes;

optical::OpticalParams fast_params() {
  optical::OpticalParams p;
  p.wdm.num_wavelengths = 64;
  p.wdm.wavelength_bandwidth = util::gbps(25.0);
  p.tune_time = util::milliseconds(1.3);
  p.sync_time = util::microseconds(25.0);
  p.transceiver_time = util::microseconds(25.0);
  p.propagation_per_hop = util::nanoseconds(25.0);
  return p;
}

WrhtParams wrht_params(std::uint32_t w) {
  WrhtParams params;
  params.num_wavelengths = w;
  return params;
}

TEST(TimeModel, AnalyticMatchesDes) {
  const Bytes payload(10'000'000);
  for (const std::uint32_t n : {8u, 32u, 128u, 300u}) {
    for (const std::uint32_t w : {4u, 64u}) {
      const WrhtBuild build = build_wrht(n, wrht_params(w));
      optical::OpticalParams p = fast_params();
      p.wdm.num_wavelengths = std::max(
          p.wdm.num_wavelengths, build.annotated.wavelengths_required);
      const double analytic =
          analytic_schedule_time(build.annotated, payload, p).value();
      const double des =
          run_on_optical(build.annotated, p, payload).total.value();
      EXPECT_NEAR(des, analytic, analytic * 1e-12)
          << "n=" << n << " w=" << w;
    }
  }
}

TEST(TimeModel, FormulaTracksAnalyticClosely) {
  // The schedule-free formula only approximates propagation (nanoseconds);
  // it must agree with the full analytic model to within 0.1%.
  const Bytes payload(249'200'000);  // AlexNet fp32
  for (const std::uint32_t n : {128u, 256u, 512u, 1024u}) {
    const WrhtParams wp = wrht_params(64);
    const WrhtBuild build = build_wrht(n, wp);
    const optical::OpticalParams p = fast_params();
    const double analytic =
        analytic_schedule_time(build.annotated, payload, p).value();
    const double formula = wrht_time_formula(n, payload, p, wp).value();
    EXPECT_NEAR(formula, analytic, analytic * 1e-3) << "n=" << n;
  }
}

TEST(TimeModel, OpticalRingFormulaStructure) {
  const optical::OpticalParams p = fast_params();
  const Bytes payload(1'024'000);
  const std::uint32_t n = 16;
  const double t = optical_ring_time_formula(n, payload, p).value();
  const double per_step = p.fixed_step_overhead().value() +
                          p.propagation_per_hop.value() +
                          64'000.0 / p.wdm.wavelength_bandwidth.bytes_per_second();
  EXPECT_NEAR(t, 2 * (n - 1) * per_step, 1e-12);
}

TEST(TimeModel, WrhtBeatsOpticalRingAtPaperScale) {
  const optical::OpticalParams p = fast_params();
  const WrhtParams wp = wrht_params(64);
  for (const std::uint32_t n : {128u, 256u, 512u, 1024u}) {
    for (const std::uint64_t params_m : {6'797'700ull, 25'000'000ull,
                                         62'300'000ull, 138'000'000ull}) {
      const Bytes payload(params_m * 4);
      const double wrht = wrht_time_formula(n, payload, p, wp).value();
      const double oring = optical_ring_time_formula(n, payload, p).value();
      EXPECT_LT(wrht, oring) << "n=" << n << " params=" << params_m;
    }
  }
}

TEST(TimeModel, WrhtNearlyFlatInN) {
  // Step count grows from 2 to 3 across the sweep; time must grow by far
  // less than the ring's linear factor.
  const optical::OpticalParams p = fast_params();
  const WrhtParams wp = wrht_params(64);
  const Bytes payload(100'000'000);
  const double t128 = wrht_time_formula(128, payload, p, wp).value();
  const double t1024 = wrht_time_formula(1024, payload, p, wp).value();
  EXPECT_LT(t1024 / t128, 2.0);
  const double o128 = optical_ring_time_formula(128, payload, p).value();
  const double o1024 = optical_ring_time_formula(1024, payload, p).value();
  EXPECT_GT(o1024 / o128, 4.0);
}

TEST(TimeModel, MoreWavelengthsNeverSlower) {
  // Monotone up to propagation noise: larger groups mean slightly longer
  // intra-group paths (microseconds), so allow that much slack while the
  // step-count gains are measured in milliseconds.
  const optical::OpticalParams p = fast_params();
  const Bytes payload(50'000'000);
  double previous = 1e100;
  for (const std::uint32_t w : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const double t =
        wrht_time_formula(512, payload, p, wrht_params(w)).value();
    EXPECT_LE(t, previous + 1e-4) << "w=" << w;
    previous = t;
  }
}

TEST(TimeModel, TuneTimeDominatesORingAtScale) {
  // The per-step overhead explains O-Ring's collapse: zeroing it must
  // shrink O-Ring's time by >10x at N=1024 with a small model.
  optical::OpticalParams with_tune = fast_params();
  optical::OpticalParams no_tune = fast_params();
  no_tune.tune_time = util::Seconds(0.0);
  no_tune.sync_time = util::Seconds(0.0);
  no_tune.transceiver_time = util::Seconds(0.0);
  const Bytes payload(27'191'000);  // GoogLeNet fp32
  const double slow = optical_ring_time_formula(1024, payload, with_tune).value();
  const double fast = optical_ring_time_formula(1024, payload, no_tune).value();
  EXPECT_GT(slow / fast, 10.0);
}

TEST(TimeModel, DesRetuneCountsMatchScheduleShape) {
  const WrhtBuild build = build_wrht(64, wrht_params(8));
  const optical::OpticalParams p = fast_params();
  const optical::RunResult run =
      run_on_optical(build.annotated, p, Bytes(1'000'000));
  // With retune_every_step, every transfer retunes exactly once per step.
  EXPECT_EQ(run.total_retunes, build.annotated.schedule.total_transfers());
}

}  // namespace
}  // namespace wrht::core
