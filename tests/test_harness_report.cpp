// The hybrid-runtime report renderers: the per-substrate workload split
// (including its totals row), the per-job contention slowdown table, and
// the per-link peak utilization table — plus the round trip from a real
// RuntimeReport's per-substrate breakdowns into those renderers, which the
// examples exercise but nothing previously asserted on.
#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <string>

#include "runtime/runtime.hpp"

namespace wrht::harness {
namespace {

TEST(SubstrateTable, RendersRowsAndSummedTotals) {
  const std::string table = render_substrate_table(
      {{"optical", 7, 5, 120, 0.25}, {"electrical", 3, 3, 42, 0.125}});
  EXPECT_NE(table.find("optical"), std::string::npos);
  EXPECT_NE(table.find("electrical"), std::string::npos);
  // Totals row: jobs 7+3, executions 5+3, steps 120+42; the makespan column
  // totals as the MAX (both fabrics share one clock), not the sum.
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_NE(table.find("10"), std::string::npos);
  EXPECT_NE(table.find("162"), std::string::npos);
  EXPECT_NE(table.find("250"), std::string::npos);   // 250 ms
  EXPECT_EQ(table.find("375"), std::string::npos);   // NOT 250+125 ms
}

TEST(SubstrateTable, EmptyInputSaysSo) {
  EXPECT_EQ(render_substrate_table({}), "(no substrates)\n");
}

TEST(SlowdownTable, RendersPerJobRowsAndWorstRow) {
  const std::string table = render_slowdown_table({
      {"job0", 0.010, 1.0},
      {"job1", 0.025, 2.5},
      {"job2", 0.015, 0.0},  // no quiet baseline
  });
  EXPECT_NE(table.find("job0"), std::string::npos);
  EXPECT_NE(table.find("1.000x"), std::string::npos);
  EXPECT_NE(table.find("2.500x"), std::string::npos);
  // The baseline-less job renders "-", and the worst row is the 2.5x one.
  EXPECT_NE(table.find('-'), std::string::npos);
  EXPECT_NE(table.find("worst"), std::string::npos);
  EXPECT_EQ(render_slowdown_table({}), "(no jobs)\n");
}

TEST(LinkUtilization, FiltersIdleLinksAndFormatsPercent) {
  const std::string table =
      render_link_utilization({0.0, 0.01, 0.5, 1.0}, 0.05);
  EXPECT_NE(table.find("50.0%"), std::string::npos);
  EXPECT_NE(table.find("100.0%"), std::string::npos);
  EXPECT_NE(table.find("2/4 links"), std::string::npos);
  // Link ids are preserved, not renumbered after filtering.
  EXPECT_NE(table.find('3'), std::string::npos);
  const std::string idle = render_link_utilization({0.0, 0.0}, 0.05);
  EXPECT_NE(idle.find("no link reached"), std::string::npos);
}

TEST(SloTable, RendersPercentilesWaitAndDeadlineRate) {
  obs::SloStats slo;
  slo.jobs = 10;
  slo.p50_turnaround = util::milliseconds(12.0);
  slo.p99_turnaround = util::milliseconds(48.0);
  slo.p999_turnaround = util::milliseconds(50.0);
  slo.p50_slowdown = 1.0;
  slo.p99_slowdown = 2.5;
  slo.p999_slowdown = 2.75;
  slo.max_wait = util::milliseconds(3.0);
  slo.deadline_jobs = 8;
  slo.deadline_hits = 6;

  const std::string table = render_slo_table(slo);
  EXPECT_NE(table.find("10 completed jobs"), std::string::npos);
  EXPECT_NE(table.find("turnaround"), std::string::npos);
  EXPECT_NE(table.find("12 ms"), std::string::npos);
  EXPECT_NE(table.find("48 ms"), std::string::npos);
  EXPECT_NE(table.find("1.000x"), std::string::npos);
  EXPECT_NE(table.find("2.500x"), std::string::npos);
  EXPECT_NE(table.find("max admission wait"), std::string::npos);
  EXPECT_NE(table.find("3 ms"), std::string::npos);
  EXPECT_NE(table.find("6/8"), std::string::npos);
  EXPECT_NE(table.find("75.0%"), std::string::npos);
}

TEST(SloTable, NoDeadlinesMeansNoDeadlineLine) {
  obs::SloStats slo;
  slo.jobs = 2;
  const std::string table = render_slo_table(slo);
  EXPECT_EQ(table.find("deadline"), std::string::npos);
}

TEST(SloTable, EmptyStatsSaySo) {
  EXPECT_EQ(render_slo_table(obs::SloStats{}), "SLO: no completed jobs\n");
}

TEST(SubstrateTable, RoundTripsARealHybridReport) {
  // A saturated mix that splits across both fabrics; the breakdown slices
  // must sum to the totals and survive rendering.
  runtime::RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.batcher.enabled = false;
  config.placement = runtime::HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = runtime::ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = 16;
  config.electrical.oversubscription = 4.0;
  runtime::CollectiveRuntime rt(config);
  for (std::uint32_t t = 0; t < 2; ++t) {
    runtime::JobSpec big;
    for (std::uint32_t i = 0; i < 16; ++i) {
      big.participants.push_back(t * 16 + i);
    }
    big.payload = util::megabytes(48);
    big.requested_wavelengths = 8;
    big.min_wavelengths = 8;
    rt.submit(big);
  }
  for (std::uint32_t b = 0; b < 4; ++b) {
    runtime::JobSpec burst;
    for (std::uint32_t i = 0; i < 8; ++i) {
      burst.participants.push_back(b * 8 + i);
    }
    burst.payload = util::megabytes(1);
    burst.arrival = util::milliseconds(1.0);
    burst.min_wavelengths = 4;
    rt.submit(burst);
  }
  const runtime::RuntimeReport report = rt.run();
  ASSERT_EQ(report.completed, 6u);
  ASSERT_GT(report.electrical.jobs, 0u);
  EXPECT_EQ(report.optical.jobs + report.electrical.jobs, report.completed);
  EXPECT_EQ(report.optical.executions + report.electrical.executions,
            report.executions);
  EXPECT_EQ(report.optical.steps + report.electrical.steps,
            report.total_steps);
  // The optical slice has no quiet baseline; the electrical one does, and
  // its aggregate slowdown can never beat the quiet network.
  EXPECT_EQ(report.optical.contention_slowdown(), 0.0);
  EXPECT_GE(report.electrical.contention_slowdown(), 1.0 - 1e-9);

  const std::string table = render_substrate_table(
      {{"optical", report.optical.jobs, report.optical.executions,
        report.optical.steps, report.optical.makespan.value()},
       {"electrical", report.electrical.jobs, report.electrical.executions,
        report.electrical.steps, report.electrical.makespan.value()}});
  EXPECT_NE(table.find(std::to_string(report.total_steps)),
            std::string::npos);

  std::vector<SlowdownRow> rows;
  for (runtime::JobId id = 0; id < rt.num_jobs(); ++id) {
    const runtime::JobRecord& r = rt.record(id);
    rows.push_back({"job" + std::to_string(id), r.turnaround().value(),
                    r.contention_slowdown});
  }
  const std::string slowdowns = render_slowdown_table(rows);
  EXPECT_NE(slowdowns.find("job5"), std::string::npos);
  const std::string links =
      render_link_utilization(report.electrical_link_peak);
  EXPECT_NE(links.find('%'), std::string::npos);
}

}  // namespace
}  // namespace wrht::harness
