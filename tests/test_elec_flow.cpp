#include "elec/flow_network.hpp"

#include <gtest/gtest.h>

#include "elec/topology.hpp"
#include "util/random.hpp"

namespace wrht::elec {
namespace {

using util::Bytes;
using util::Seconds;

LinkSpec link_1gBps_no_latency() {
  return LinkSpec{util::gBps(1.0), Seconds(0.0)};
}

TEST(FlowNetwork, SingleFlowFullBandwidth) {
  FlowNetwork network;
  const LinkId link = network.add_link(link_1gBps_no_latency());
  const FlowId flow = network.add_flow({link}, Bytes(500'000'000));
  network.run();
  EXPECT_NEAR(network.completion_time(flow).value(), 0.5, 1e-9);
}

TEST(FlowNetwork, LatencyDelaysCompletion) {
  FlowNetwork network;
  const LinkId link =
      network.add_link({util::gBps(1.0), util::microseconds(100.0)});
  const FlowId flow = network.add_flow({link}, Bytes(1'000'000));
  network.run();
  EXPECT_NEAR(network.completion_time(flow).value(), 100e-6 + 1e-3, 1e-12);
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  FlowNetwork network;
  const LinkId link = network.add_link(link_1gBps_no_latency());
  const FlowId a = network.add_flow({link}, Bytes(1'000'000'000));
  const FlowId b = network.add_flow({link}, Bytes(1'000'000'000));
  network.run();
  // Both get 0.5 GB/s: each 1 GB flow takes 2 s.
  EXPECT_NEAR(network.completion_time(a).value(), 2.0, 1e-9);
  EXPECT_NEAR(network.completion_time(b).value(), 2.0, 1e-9);
}

TEST(FlowNetwork, ShortFlowFinishesThenLongSpeedsUp) {
  FlowNetwork network;
  const LinkId link = network.add_link(link_1gBps_no_latency());
  const FlowId small = network.add_flow({link}, Bytes(250'000'000));
  const FlowId large = network.add_flow({link}, Bytes(750'000'000));
  network.run();
  // Phase 1: both at 0.5 GB/s until small (0.25 GB) finishes at t=0.5.
  // Phase 2: large has 0.5 GB left at 1 GB/s -> finishes at t=1.0.
  EXPECT_NEAR(network.completion_time(small).value(), 0.5, 1e-9);
  EXPECT_NEAR(network.completion_time(large).value(), 1.0, 1e-9);
}

TEST(FlowNetwork, MaxMinDemandConstrainedFlow) {
  // Classic max-min example: two links A (1 GB/s) and B (1 GB/s).
  //   flow1 uses A only, flow2 uses B only, flow3 uses A and B.
  // Fair share: flow3 gets 0.5 on both, flows 1-2 get 0.5... then residual
  // rises: actually A carries flow1+flow3, B carries flow2+flow3; max-min
  // gives every flow 0.5 GB/s.
  FlowNetwork network;
  const LinkId link_a = network.add_link(link_1gBps_no_latency());
  const LinkId link_b = network.add_link(link_1gBps_no_latency());
  const FlowId f1 = network.add_flow({link_a}, Bytes(500'000'000));
  const FlowId f2 = network.add_flow({link_b}, Bytes(500'000'000));
  const FlowId f3 = network.add_flow({link_a, link_b}, Bytes(500'000'000));
  EXPECT_NEAR(network.current_rate(f1), 0.0, 1e-9);  // not yet running
  network.run();
  EXPECT_NEAR(network.completion_time(f1).value(), 1.0, 1e-6);
  EXPECT_NEAR(network.completion_time(f2).value(), 1.0, 1e-6);
  EXPECT_NEAR(network.completion_time(f3).value(), 1.0, 1e-6);
}

TEST(FlowNetwork, BottleneckAndFreeLink) {
  // flow1 crosses the shared link and a private link; flow2 only the shared
  // link.  Shared link is the bottleneck: both get 0.5 GB/s.
  FlowNetwork network;
  const LinkId shared = network.add_link(link_1gBps_no_latency());
  const LinkId private_link = network.add_link(link_1gBps_no_latency());
  const FlowId f1 =
      network.add_flow({shared, private_link}, Bytes(500'000'000));
  const FlowId f2 = network.add_flow({shared}, Bytes(500'000'000));
  network.run();
  EXPECT_NEAR(network.completion_time(f1).value(), 1.0, 1e-6);
  EXPECT_NEAR(network.completion_time(f2).value(), 1.0, 1e-6);
}

TEST(FlowNetwork, UnequalCapacitiesMaxMin) {
  // Slow link 0.2 GB/s shared by f1; fast link 1.0 GB/s shared by f1 and f2.
  // f1 is capped at 0.2 by its slow link; f2 then gets the residual 0.8.
  FlowNetwork network;
  const LinkId slow = network.add_link({util::gBps(0.2), Seconds(0.0)});
  const LinkId fast = network.add_link(link_1gBps_no_latency());
  const FlowId f1 = network.add_flow({slow, fast}, Bytes(200'000'000));
  const FlowId f2 = network.add_flow({fast}, Bytes(800'000'000));
  network.run();
  EXPECT_NEAR(network.completion_time(f1).value(), 1.0, 1e-6);
  EXPECT_NEAR(network.completion_time(f2).value(), 1.0, 1e-6);
}

TEST(FlowNetwork, IncastCongestion) {
  // 8 flows into one destination link: each gets 1/8 of the capacity.
  FlowNetwork network;
  const LinkId dst = network.add_link(link_1gBps_no_latency());
  std::vector<FlowId> flows;
  for (int i = 0; i < 8; ++i) {
    flows.push_back(network.add_flow({dst}, Bytes(125'000'000)));
  }
  network.run();
  for (const FlowId f : flows) {
    EXPECT_NEAR(network.completion_time(f).value(), 1.0, 1e-6);
  }
}

TEST(FlowNetwork, StaggeredStartTimes) {
  FlowNetwork network;
  const LinkId link = network.add_link(link_1gBps_no_latency());
  const FlowId first = network.add_flow({link}, Bytes(1'000'000'000));
  network.run();  // completes at t=1
  const FlowId second = network.add_flow({link}, Bytes(500'000'000));
  network.run();
  EXPECT_NEAR(network.completion_time(first).value(), 1.0, 1e-9);
  EXPECT_NEAR(network.completion_time(second).value(), 1.5, 1e-9);
}

TEST(FlowNetwork, ZeroByteFlowCompletesAtLatency) {
  FlowNetwork network;
  const LinkId link =
      network.add_link({util::gBps(1.0), util::microseconds(50.0)});
  const FlowId flow = network.add_flow({link}, Bytes(0));
  network.run();
  EXPECT_NEAR(network.completion_time(flow).value(), 50e-6, 1e-12);
}

TEST(FlowNetwork, LinkBytesAccounting) {
  FlowNetwork network;
  const LinkId a = network.add_link(link_1gBps_no_latency());
  const LinkId b = network.add_link(link_1gBps_no_latency());
  network.add_flow({a, b}, Bytes(1'000'000));
  network.add_flow({a}, Bytes(2'000'000));
  network.run();
  EXPECT_EQ(network.link_bytes(a).count(), 3'000'000u);
  EXPECT_EQ(network.link_bytes(b).count(), 1'000'000u);
}

TEST(FlowNetwork, ResetClearsFlowsKeepsLinks) {
  FlowNetwork network;
  const LinkId link = network.add_link(link_1gBps_no_latency());
  network.add_flow({link}, Bytes(1'000'000));
  network.run();
  network.reset();
  EXPECT_DOUBLE_EQ(network.now().value(), 0.0);
  EXPECT_EQ(network.link_bytes(link).count(), 0u);
  const FlowId flow = network.add_flow({link}, Bytes(1'000'000));
  network.run();
  EXPECT_NEAR(network.completion_time(flow).value(), 1e-3, 1e-9);
}

TEST(FlowNetwork, RunWithNoFlowsReturnsNow) {
  FlowNetwork network;
  network.add_link(link_1gBps_no_latency());
  EXPECT_DOUBLE_EQ(network.run().value(), 0.0);
}

TEST(FlowNetwork, ManyFlowsRingPatternNoContention) {
  // Ring neighbour pattern over a star: every host sends to the next host.
  // Each flow crosses (uplink_i, downlink_{i+1}); no two flows share a link,
  // so all run at full rate — the property that makes E-Ring's step time
  // equal the alpha-beta prediction.
  FlowNetwork network;
  const int n = 16;
  std::vector<LinkId> up(static_cast<std::size_t>(n));
  std::vector<LinkId> down(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    up[static_cast<std::size_t>(i)] = network.add_link(link_1gBps_no_latency());
    down[static_cast<std::size_t>(i)] =
        network.add_link(link_1gBps_no_latency());
  }
  std::vector<FlowId> flows;
  for (int i = 0; i < n; ++i) {
    flows.push_back(network.add_flow(
        {up[static_cast<std::size_t>(i)],
         down[static_cast<std::size_t>((i + 1) % n)]},
        Bytes(100'000'000)));
  }
  network.run();
  for (const FlowId f : flows) {
    EXPECT_NEAR(network.completion_time(f).value(), 0.1, 1e-6);
  }
}

// ---------------------------------------------------------------------------
// Link-conservation invariant: whatever max-min fair shares the solver hands
// out instant by instant, the BYTES a link ends up carrying must equal the
// sum of the bytes of every flow routed over it — fluid fairness reshuffles
// rates, never volume.  Checked under randomized flow sets on both cluster
// shapes the runtime uses.

namespace link_conservation {

/// Drop `num_flows` random host-to-host flows (random sizes, staggered via
/// run_until checkpoints) on `cluster` and check per-link byte conservation.
void check_cluster(const wrht::elec::ElectricalCluster& cluster,
                   std::uint64_t seed, std::uint32_t num_flows) {
  using namespace wrht::elec;
  wrht::util::Rng rng(seed);
  FlowNetwork network = cluster.make_network();
  std::vector<double> expected(network.num_links(), 0.0);

  for (std::uint32_t f = 0; f < num_flows; ++f) {
    const auto a =
        static_cast<std::uint32_t>(rng.next_below(cluster.num_hosts()));
    auto b = static_cast<std::uint32_t>(rng.next_below(cluster.num_hosts()));
    if (b == a) b = (b + 1) % cluster.num_hosts();
    const Bytes bytes(1000 + rng.next_below(50'000'000));
    for (const LinkId link : cluster.route(a, b)) {
      expected[link] += bytes.as_double();
    }
    network.add_flow(cluster.route(a, b), bytes);
    if (rng.next_below(3) == 0) {
      // Stagger: advance mid-flight so later flows join a loaded network.
      network.run_until(network.now() + Seconds(1e-3));
    }
  }
  network.run();

  for (std::size_t link = 0; link < network.num_links(); ++link) {
    // kEpsilonBytes truncation loses at most a milli-byte per flow.
    const double tolerance = 1e-2 * num_flows + 1e-6 * expected[link];
    EXPECT_NEAR(network.link_bytes(static_cast<LinkId>(link)).as_double(),
                expected[link], tolerance)
        << "link " << link << " seed " << seed;
    // A link's peak utilization is a fraction of its capacity by
    // construction; conservation's sibling sanity bound.
    const double peak =
        network.link_peak_utilization(static_cast<LinkId>(link));
    EXPECT_GE(peak, 0.0);
    EXPECT_LE(peak, 1.0 + 1e-9);
  }
}

}  // namespace link_conservation

TEST(FlowNetwork, LinkConservationOnRandomizedStar) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    link_conservation::check_cluster(
        ElectricalCluster::star(12, ElectricalParams{}), seed, 60);
  }
}

TEST(FlowNetwork, LinkConservationOnRandomizedTwoLevelTree) {
  for (const std::uint64_t seed : {5ull, 17ull, 91ull}) {
    link_conservation::check_cluster(
        *ElectricalCluster::two_level_tree(16, 4, 4.0, ElectricalParams{}),
        seed, 80);
  }
}

}  // namespace
}  // namespace wrht::elec
