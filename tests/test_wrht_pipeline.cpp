#include "wrht/pipeline.hpp"

#include <gtest/gtest.h>

#include "coll/executor.hpp"
#include "coll/validation.hpp"
#include "optical/spectrum.hpp"
#include "util/math.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"
#include "wrht/time_model.hpp"

namespace wrht::core {
namespace {

WrhtPipelineParams pipeline_params(std::uint32_t w, std::uint32_t segments) {
  WrhtPipelineParams params;
  params.num_wavelengths = w;
  params.num_segments = segments;
  return params;
}

void expect_conflict_free(const AnnotatedSchedule& annotated) {
  const topo::RingTopology ring(annotated.schedule.num_nodes());
  for (const auto& step : annotated.paths) {
    optical::SpectrumMap spectrum(
        ring, std::max(1u, annotated.wavelengths_required));
    for (const PathAssignment& path : step) {
      for (const optical::WavelengthId lambda : path.lambdas) {
        ASSERT_TRUE(spectrum.is_free(path.arc, lambda));
        spectrum.reserve(path.arc, lambda);
      }
    }
  }
}

class PipelineSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {
 protected:
  std::uint32_t nodes() const { return std::get<0>(GetParam()); }
  std::uint32_t wavelengths() const { return std::get<1>(GetParam()); }
  std::uint32_t segments() const { return std::get<2>(GetParam()); }
};

TEST_P(PipelineSweep, ComputesAllReduce) {
  const WrhtPipelineBuild build = build_wrht_pipelined(
      nodes(), pipeline_params(wavelengths(), segments()));
  const auto result = coll::FunctionalExecutor::verify_allreduce_detailed(
      build.annotated.schedule, std::max<std::size_t>(64, segments()));
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_P(PipelineSweep, StepCountIsStagesPlusSegments) {
  const WrhtPipelineBuild build = build_wrht_pipelined(
      nodes(), pipeline_params(wavelengths(), segments()));
  // The builder may degrade the segment count to fit a tight spectrum, but
  // never increases it, and the step formula holds for what it built.
  EXPECT_GE(build.num_segments, 1u);
  EXPECT_LE(build.num_segments, segments());
  EXPECT_EQ(build.annotated.schedule.num_steps(),
            2 * build.tree_levels + build.num_segments - 1);
  EXPECT_EQ(build.tree_levels,
            util::ceil_log(build.group_size_m, nodes()));
}

TEST_P(PipelineSweep, SpectrumFeasibleAndConflictFree) {
  const WrhtPipelineBuild build = build_wrht_pipelined(
      nodes(), pipeline_params(wavelengths(), segments()));
  EXPECT_LE(build.annotated.wavelengths_required, wavelengths());
  expect_conflict_free(build.annotated);
}

TEST_P(PipelineSweep, StructurallyValid) {
  const WrhtPipelineBuild build = build_wrht_pipelined(
      nodes(), pipeline_params(wavelengths(), segments()));
  const coll::ValidationReport report =
      coll::validate(build.annotated.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweep,
    ::testing::Combine(::testing::Values(4u, 9u, 16u, 33u, 64u),
                       ::testing::Values(4u, 16u, 64u),
                       ::testing::Values(1u, 2u, 5u, 16u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_w" +
             std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(Pipeline, SingleSegmentMatchesUnmergedWrht) {
  const std::uint32_t n = 64;
  const WrhtPipelineBuild pipelined =
      build_wrht_pipelined(n, pipeline_params(64, 1));
  WrhtParams plain;
  plain.num_wavelengths = 64;
  plain.allow_all_to_all_merge = false;
  const WrhtBuild reference = build_wrht(n, plain);
  EXPECT_EQ(pipelined.annotated.schedule.num_steps(),
            reference.annotated.schedule.num_steps());
  EXPECT_EQ(pipelined.group_size_m, reference.group_size_m);
}

TEST(Pipeline, ShrinksGroupSizeWhenStagesCollide) {
  // With many segments and a tight spectrum, co-active levels cannot all
  // use m = 2w+1; the builder must shrink m rather than fail.
  const WrhtPipelineBuild build =
      build_wrht_pipelined(256, pipeline_params(8, 16));
  EXPECT_LE(build.annotated.wavelengths_required, 8u);
  EXPECT_TRUE(coll::FunctionalExecutor::verify_allreduce(
      build.annotated.schedule, 64));
}

TEST(Pipeline, BeatsPlainWrhtOnHugePayloads) {
  // The reason this extension exists: at ~GB payloads the plain schedule's
  // full-vector serialization per level dominates; pipelining divides it.
  const std::uint32_t n = 256;
  const util::Bytes payload = util::gigabytes(1);
  optical::OpticalParams p;

  WrhtParams plain_params;
  const WrhtBuild plain = build_wrht(n, plain_params);
  const double plain_time =
      analytic_schedule_time(plain.annotated, payload, p).value();

  const std::uint32_t s =
      optimal_segments(n, plain.group_size_m, payload, p);
  EXPECT_GT(s, 1u);
  const WrhtPipelineBuild pipelined =
      build_wrht_pipelined(n, pipeline_params(64, s));
  const double pipelined_time =
      analytic_schedule_time(pipelined.annotated, payload, p).value();

  EXPECT_LT(pipelined_time, plain_time * 0.75)
      << "segments=" << s << " plain=" << plain_time
      << " pipelined=" << pipelined_time;
}

TEST(Pipeline, DesMatchesAnalytic) {
  const WrhtPipelineBuild build =
      build_wrht_pipelined(64, pipeline_params(16, 8));
  optical::OpticalParams p;
  p.wdm.num_wavelengths =
      std::max(16u, build.annotated.wavelengths_required);
  const util::Bytes payload(200'000'000);
  const double des =
      run_on_optical(build.annotated, p, payload).total.value();
  const double analytic =
      analytic_schedule_time(build.annotated, payload, p).value();
  EXPECT_NEAR(des, analytic, analytic * 1e-12);
}

TEST(Pipeline, OptimalSegmentsSaneAcrossRegimes) {
  optical::OpticalParams p;
  // Tiny payload: overhead-dominated, no point pipelining.
  EXPECT_EQ(optimal_segments(1024, 129, util::Bytes(1000), p), 1u);
  // Huge payload: many segments.
  EXPECT_GT(optimal_segments(1024, 129, util::gigabytes(4), p), 8u);
  // Monotone in payload.
  std::uint32_t previous = 0;
  for (const std::uint64_t mb : {1ull, 10ull, 100ull, 1000ull, 10000ull}) {
    const std::uint32_t s =
        optimal_segments(1024, 129, util::megabytes(mb), p);
    EXPECT_GE(s, previous);
    previous = s;
  }
}

TEST(Pipeline, TimeIsConvexishInSegments) {
  // T(S) should fall then rise around the analytic optimum.
  const std::uint32_t n = 128;
  const util::Bytes payload = util::gigabytes(2);
  optical::OpticalParams p;
  double best = 1e100;
  std::uint32_t best_s = 0;
  for (const std::uint32_t s : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const WrhtPipelineBuild build =
        build_wrht_pipelined(n, pipeline_params(64, s));
    const double t =
        analytic_schedule_time(build.annotated, payload, p).value();
    if (t < best) {
      best = t;
      best_s = s;
    }
  }
  EXPECT_GT(best_s, 1u);
  EXPECT_LT(best_s, 128u);
}

}  // namespace
}  // namespace wrht::core
