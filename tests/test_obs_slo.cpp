// Exact nearest-rank quantiles and the SloStats computation over job
// records, checked against hand-computed values.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/job.hpp"

namespace wrht::obs {
namespace {

using runtime::JobRecord;
using runtime::JobState;
using util::Seconds;

TEST(ExactQuantile, NearestRankOnTenSamples) {
  // Deliberately unsorted: exact_quantile sorts its copy.
  const std::vector<double> samples = {7, 1, 9, 3, 10, 5, 2, 8, 4, 6};
  // Nearest rank: the ceil(q*10)-th smallest sample.
  EXPECT_EQ(exact_quantile(samples, 0.10), 1.0);   // ceil(1.0)  -> 1st
  EXPECT_EQ(exact_quantile(samples, 0.50), 5.0);   // ceil(5.0)  -> 5th
  EXPECT_EQ(exact_quantile(samples, 0.51), 6.0);   // ceil(5.1)  -> 6th
  EXPECT_EQ(exact_quantile(samples, 0.99), 10.0);  // ceil(9.9)  -> 10th
  EXPECT_EQ(exact_quantile(samples, 1.00), 10.0);
}

TEST(ExactQuantile, EdgeCases) {
  EXPECT_EQ(exact_quantile({}, 0.5), 0.0);
  EXPECT_EQ(exact_quantile({42.0}, 0.001), 42.0);
  EXPECT_EQ(exact_quantile({42.0}, 1.0), 42.0);
  // q clamped to (0, 1].
  EXPECT_EQ(exact_quantile({1.0, 2.0}, 0.0), 1.0);
  EXPECT_EQ(exact_quantile({1.0, 2.0}, 2.0), 2.0);
}

TEST(ExactQuantile, IsMonotoneInQ) {
  const std::vector<double> samples = {0.5, 0.1, 0.9, 0.3, 0.7};
  double prev = 0.0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = exact_quantile(samples, q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

JobRecord done_job(double arrival, double admitted, double completed,
                   double deadline = 0.0) {
  JobRecord record;
  record.state = JobState::kDone;
  record.spec.arrival = Seconds(arrival);
  record.spec.deadline = Seconds(deadline);
  record.admitted = Seconds(admitted);
  record.completed = Seconds(completed);
  return record;
}

TEST(ComputeSlo, MatchesHandComputedPercentiles) {
  // Four completed jobs with turnarounds 1, 2, 3, 4 s and slowdowns
  // 1, 2, 3, 4 (service span = turnaround / slowdown).
  std::vector<JobRecord> records;
  records.push_back(done_job(0.0, 0.0, 1.0));  // turnaround 1, service 1
  records.push_back(done_job(0.0, 1.0, 2.0));  // turnaround 2, service 1
  records.push_back(done_job(0.0, 2.0, 3.0));  // turnaround 3, service 1
  records.push_back(done_job(0.0, 3.0, 4.0));  // turnaround 4, service 1

  const SloStats slo = compute_slo(records);
  EXPECT_EQ(slo.jobs, 4u);
  // Nearest rank over {1,2,3,4}: p50 -> 2nd, p99/p999 -> 4th.
  EXPECT_EQ(slo.p50_turnaround, Seconds(2.0));
  EXPECT_EQ(slo.p99_turnaround, Seconds(4.0));
  EXPECT_EQ(slo.p999_turnaround, Seconds(4.0));
  EXPECT_EQ(slo.p50_slowdown, 2.0);
  EXPECT_EQ(slo.p99_slowdown, 4.0);
  // Worst admission wait is the 3 s of the last job.
  EXPECT_EQ(slo.max_wait, Seconds(3.0));
  // No deadlines carried.
  EXPECT_EQ(slo.deadline_jobs, 0u);
  EXPECT_EQ(slo.deadline_hit_rate(), 0.0);
}

TEST(ComputeSlo, ScoresDeadlinesOnlyWhereCarried) {
  std::vector<JobRecord> records;
  records.push_back(done_job(0.0, 0.0, 1.0, /*deadline=*/2.0));  // hit
  records.push_back(done_job(0.0, 0.0, 3.0, /*deadline=*/2.0));  // miss
  records.push_back(done_job(0.0, 0.0, 2.0, /*deadline=*/2.0));  // exact: hit
  records.push_back(done_job(0.0, 0.0, 9.0));  // no deadline: unscored

  const SloStats slo = compute_slo(records);
  EXPECT_EQ(slo.jobs, 4u);
  EXPECT_EQ(slo.deadline_jobs, 3u);
  EXPECT_EQ(slo.deadline_hits, 2u);
  EXPECT_DOUBLE_EQ(slo.deadline_hit_rate(), 2.0 / 3.0);
}

TEST(ComputeSlo, SkipsEverythingNotDone) {
  std::vector<JobRecord> records;
  records.push_back(done_job(0.0, 0.0, 1.0));
  JobRecord rejected;
  rejected.state = JobState::kRejected;
  records.push_back(rejected);
  JobRecord queued;
  queued.state = JobState::kQueued;
  queued.spec.deadline = Seconds(1.0);  // must not count as a deadline job
  records.push_back(queued);

  const SloStats slo = compute_slo(records);
  EXPECT_EQ(slo.jobs, 1u);
  EXPECT_EQ(slo.deadline_jobs, 0u);
  EXPECT_EQ(slo.p50_turnaround, Seconds(1.0));
}

TEST(ComputeSlo, ZeroServiceSpanReportsSlowdownOne) {
  // Admitted and completed at the same instant (degenerate but possible in
  // a zero-payload stub): slowdown defined as 1.0, not a division by zero.
  std::vector<JobRecord> records;
  records.push_back(done_job(0.0, 1.0, 1.0));
  const SloStats slo = compute_slo(records);
  EXPECT_EQ(slo.p50_slowdown, 1.0);
}

TEST(ComputeSlo, EmptyInputIsAllZeros) {
  const SloStats slo = compute_slo({});
  EXPECT_EQ(slo.jobs, 0u);
  EXPECT_EQ(slo.p50_turnaround, Seconds(0.0));
  EXPECT_EQ(slo.max_wait, Seconds(0.0));
  EXPECT_EQ(slo.deadline_hit_rate(), 0.0);
}

}  // namespace
}  // namespace wrht::obs
