#include "coll/cost_model.hpp"

#include <gtest/gtest.h>

#include "coll/algorithms.hpp"

namespace wrht::coll {
namespace {

using util::Bytes;

AlphaBetaParams test_params() {
  AlphaBetaParams p;
  p.alpha = util::microseconds(50.0);
  p.bandwidth = util::gBps(1.0);
  return p;
}

TEST(AlphaBeta, RingMatchesClosedForm) {
  const std::uint32_t n = 8;
  const Bytes payload(8'000'000);  // divisible: chunks uniform
  const CostBreakdown cost =
      alpha_beta_cost(ring_allreduce(n), payload, test_params());
  const util::Seconds closed =
      ring_allreduce_closed_form(n, payload, test_params());
  EXPECT_NEAR(cost.total.value(), closed.value(), 1e-12);
  EXPECT_EQ(cost.steps, 14u);
}

TEST(AlphaBeta, RecursiveDoublingMatchesClosedForm) {
  const std::uint32_t n = 16;
  const Bytes payload(1'000'000);
  const CostBreakdown cost =
      alpha_beta_cost(recursive_doubling(n), payload, test_params());
  const util::Seconds closed =
      recursive_doubling_closed_form(n, payload, test_params());
  EXPECT_NEAR(cost.total.value(), closed.value(), 1e-12);
}

TEST(AlphaBeta, LatencyBandwidthDecomposition) {
  const CostBreakdown cost =
      alpha_beta_cost(binomial_tree(8), Bytes(1'000'000), test_params());
  EXPECT_NEAR(cost.total.value(),
              cost.latency_part.value() + cost.bandwidth_part.value(), 1e-15);
  EXPECT_NEAR(cost.latency_part.value(), 6 * 50e-6, 1e-12);
  // Each step moves the full vector through the busiest node.
  EXPECT_NEAR(cost.bandwidth_part.value(), 6 * 1e-3, 1e-9);
}

TEST(AlphaBeta, CrossoverRingVsRecursiveDoubling) {
  // Small payloads: RD (few steps) wins.  Large payloads: ring (small
  // bottleneck per step) wins.  The crossover is the textbook property the
  // msgsize_sweep bench plots.
  const std::uint32_t n = 32;
  const AlphaBetaParams p = test_params();
  const Bytes small(1'000);
  const Bytes large(100'000'000);

  const double ring_small =
      alpha_beta_cost(ring_allreduce(n), small, p).total.value();
  const double rd_small =
      alpha_beta_cost(recursive_doubling(n), small, p).total.value();
  EXPECT_LT(rd_small, ring_small);

  const double ring_large =
      alpha_beta_cost(ring_allreduce(n), large, p).total.value();
  const double rd_large =
      alpha_beta_cost(recursive_doubling(n), large, p).total.value();
  EXPECT_LT(ring_large, rd_large);
}

TEST(AlphaBeta, HalvingDoublingBeatsRecursiveDoublingOnBandwidth) {
  const std::uint32_t n = 16;
  const Bytes payload(16'000'000);
  const AlphaBetaParams p = test_params();
  const double hd =
      alpha_beta_cost(halving_doubling(n), payload, p).total.value();
  const double rd =
      alpha_beta_cost(recursive_doubling(n), payload, p).total.value();
  EXPECT_LT(hd, rd);
}

TEST(AlphaBeta, DirectAllReduceIncastDominates) {
  const std::uint32_t n = 16;
  const Bytes payload(1'000'000);
  const CostBreakdown cost =
      alpha_beta_cost(direct_allreduce(n), payload, test_params());
  // Busiest node receives (n-1) full vectors in the single step.
  EXPECT_NEAR(cost.bandwidth_part.value(), 15e-3, 1e-9);
  EXPECT_NEAR(cost.latency_part.value(), 50e-6, 1e-12);
}

TEST(AlphaBeta, TotalTrafficReported) {
  const std::uint32_t n = 4;
  const Bytes payload(4000);
  const CostBreakdown cost =
      alpha_beta_cost(ring_allreduce(n), payload, test_params());
  EXPECT_EQ(cost.total_traffic.count(), 2ull * (n - 1) * payload.count());
}

}  // namespace
}  // namespace wrht::coll
