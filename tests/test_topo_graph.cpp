#include "topo/graph.hpp"

#include <gtest/gtest.h>

namespace wrht::topo {
namespace {

TEST(Graph, AddVerticesAndEdges) {
  Graph graph;
  const VertexId a = graph.add_vertex("a");
  const VertexId b = graph.add_vertex("b");
  const EdgeId e = graph.add_edge(a, b, 2.5);
  EXPECT_EQ(graph.num_vertices(), 2u);
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_EQ(graph.edge(e).from, a);
  EXPECT_EQ(graph.edge(e).to, b);
  EXPECT_DOUBLE_EQ(graph.edge(e).weight, 2.5);
  EXPECT_EQ(graph.label(a), "a");
}

TEST(Graph, BidirectionalEdgeIds) {
  Graph graph;
  const VertexId a = graph.add_vertex();
  const VertexId b = graph.add_vertex();
  const EdgeId forward = graph.add_bidirectional_edge(a, b);
  EXPECT_EQ(graph.edge(forward).from, a);
  EXPECT_EQ(graph.edge(forward + 1).from, b);
}

TEST(Graph, ShortestPathDirect) {
  Graph graph;
  const VertexId a = graph.add_vertex();
  const VertexId b = graph.add_vertex();
  const VertexId c = graph.add_vertex();
  graph.add_edge(a, b, 1.0);
  const EdgeId bc = graph.add_edge(b, c, 1.0);
  const EdgeId ac = graph.add_edge(a, c, 5.0);
  (void)bc;
  (void)ac;
  const auto path = graph.shortest_path(a, c);
  ASSERT_TRUE(path.has_value());
  // a->b->c (cost 2) beats a->c (cost 5).
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ(graph.edge((*path)[0]).to, b);
  EXPECT_EQ(graph.edge((*path)[1]).to, c);
}

TEST(Graph, ShortestPathUnreachable) {
  Graph graph;
  const VertexId a = graph.add_vertex();
  const VertexId b = graph.add_vertex();
  EXPECT_FALSE(graph.shortest_path(a, b).has_value());
  EXPECT_FALSE(graph.hop_distance(a, b).has_value());
}

TEST(Graph, SelfPathIsEmpty) {
  Graph graph;
  const VertexId a = graph.add_vertex();
  const auto path = graph.shortest_path(a, a);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(Graph, HopDistanceOnStar) {
  // hosts <-> switch: any host pair is exactly 2 hops.
  Graph graph;
  const VertexId sw = graph.add_vertex("switch");
  std::vector<VertexId> hosts;
  for (int i = 0; i < 5; ++i) {
    hosts.push_back(graph.add_vertex());
    graph.add_bidirectional_edge(hosts.back(), sw);
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(graph.hop_distance(hosts[i], hosts[j]).value(), 2u);
    }
  }
}

TEST(Graph, WeightedRouteAvoidsSlowLink) {
  // Diamond: a-b-d cheap, a-c-d expensive.
  Graph graph;
  const VertexId a = graph.add_vertex();
  const VertexId b = graph.add_vertex();
  const VertexId c = graph.add_vertex();
  const VertexId d = graph.add_vertex();
  graph.add_edge(a, b, 1.0);
  graph.add_edge(b, d, 1.0);
  graph.add_edge(a, c, 1.0);
  graph.add_edge(c, d, 10.0);
  const auto path = graph.shortest_path(a, d);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(graph.edge((*path)[0]).to, b);
}

TEST(Graph, DeterministicTieBreaking) {
  // Two equal-cost routes: the one through smaller edge ids wins, always.
  Graph graph;
  const VertexId a = graph.add_vertex();
  const VertexId b1 = graph.add_vertex();
  const VertexId b2 = graph.add_vertex();
  const VertexId c = graph.add_vertex();
  const EdgeId ab1 = graph.add_edge(a, b1, 1.0);
  graph.add_edge(a, b2, 1.0);
  graph.add_edge(b1, c, 1.0);
  graph.add_edge(b2, c, 1.0);
  for (int trial = 0; trial < 5; ++trial) {
    const auto path = graph.shortest_path(a, c);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ((*path)[0], ab1);
  }
}

TEST(Graph, LargeRingHopDistance) {
  Graph graph;
  const int n = 100;
  std::vector<VertexId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(graph.add_vertex());
  for (int i = 0; i < n; ++i) {
    graph.add_bidirectional_edge(nodes[static_cast<std::size_t>(i)],
                                 nodes[static_cast<std::size_t>((i + 1) % n)]);
  }
  EXPECT_EQ(graph.hop_distance(nodes[0], nodes[50]).value(), 50u);
  EXPECT_EQ(graph.hop_distance(nodes[0], nodes[99]).value(), 1u);
}

}  // namespace
}  // namespace wrht::topo
