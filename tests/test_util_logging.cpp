#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace wrht::util {
namespace {

// Restore the default level after every test so ordering cannot leak.
class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, EnabledLevelWritesToStderr) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  WRHT_INFO() << "hello " << 42;
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("hello 42"), std::string::npos);
  EXPECT_NE(captured.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, DisabledLevelIsSilent) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  WRHT_DEBUG() << "invisible";
  WRHT_INFO() << "also invisible";
  WRHT_WARN() << "still invisible";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, DisabledLevelSkipsFormatting) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&]() {
    ++evaluations;
    return "expensive";
  };
  WRHT_DEBUG() << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, ErrorAlwaysVisibleBelowOff) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  WRHT_ERROR() << "boom";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("ERROR"), std::string::npos);
  EXPECT_NE(captured.find("boom"), std::string::npos);
}

TEST_F(LoggingTest, LogLineRespectsLevelDirectly) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "dropped");
  log_line(LogLevel::kWarn, "kept");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("dropped"), std::string::npos);
  EXPECT_NE(captured.find("kept"), std::string::npos);
}

}  // namespace
}  // namespace wrht::util
