#include "elec/topology.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace wrht::elec {
namespace {

ElectricalParams test_params() {
  ElectricalParams p;
  p.link_bandwidth = util::gBps(1.0);
  p.link_latency = util::microseconds(25.0);
  return p;
}

TEST(Star, ShapeAndRoutes) {
  const ElectricalCluster cluster = ElectricalCluster::star(8, test_params());
  EXPECT_EQ(cluster.num_hosts(), 8u);
  // 8 duplex host links = 16 directed edges, plus the switch vertex.
  EXPECT_EQ(cluster.graph().num_edges(), 16u);
  EXPECT_EQ(cluster.graph().num_vertices(), 9u);
  const auto& route = cluster.route(0, 5);
  EXPECT_EQ(route.size(), 2u);  // host->switch->host
}

TEST(Star, RouteLatencyIsTwoHops) {
  const ElectricalCluster cluster = ElectricalCluster::star(4, test_params());
  EXPECT_NEAR(cluster.route_latency(0, 3).value(), 50e-6, 1e-12);
}

TEST(Star, RoutesAreCachedAndStable) {
  const ElectricalCluster cluster = ElectricalCluster::star(4, test_params());
  const auto* first = &cluster.route(1, 2);
  const auto* second = &cluster.route(1, 2);
  EXPECT_EQ(first, second);
}

TEST(Star, FlowBetweenHostsSeesFullBandwidth) {
  const ElectricalCluster cluster = ElectricalCluster::star(4, test_params());
  FlowNetwork network = cluster.make_network();
  const FlowId flow =
      network.add_flow(cluster.route(0, 2), util::Bytes(1'000'000'000));
  network.run();
  EXPECT_NEAR(network.completion_time(flow).value(), 1.0 + 50e-6, 1e-6);
}

TEST(Ring, ShapeAndRoutes) {
  const ElectricalCluster cluster = ElectricalCluster::ring(8, test_params());
  EXPECT_EQ(cluster.num_hosts(), 8u);
  EXPECT_EQ(cluster.graph().num_edges(), 16u);  // 8 duplex spans
  EXPECT_EQ(cluster.route(0, 1).size(), 1u);
  EXPECT_EQ(cluster.route(0, 4).size(), 4u);
  // Shortest path goes the short way around.
  EXPECT_EQ(cluster.route(0, 7).size(), 1u);
}

TEST(TwoLevelTree, HostsRouteThroughTorAndCore) {
  const ElectricalCluster cluster =
      *ElectricalCluster::two_level_tree(8, 4, 1.0, test_params());
  EXPECT_EQ(cluster.num_hosts(), 8u);
  // Same-ToR pair: host->tor->host (2 links).
  EXPECT_EQ(cluster.route(0, 1).size(), 2u);
  // Cross-ToR pair: host->tor->core->tor->host (4 links).
  EXPECT_EQ(cluster.route(0, 5).size(), 4u);
}

TEST(TwoLevelTree, OversubscriptionCongestsUplink) {
  // 1:4 oversubscription: the ToR uplink carries 1 GB/s for 4 hosts.  Four
  // simultaneous cross-ToR flows share it at 0.25 GB/s each.
  const ElectricalCluster cluster =
      *ElectricalCluster::two_level_tree(8, 4, 4.0, test_params());
  FlowNetwork network = cluster.make_network();
  std::vector<FlowId> flows;
  for (std::uint32_t h = 0; h < 4; ++h) {
    flows.push_back(
        network.add_flow(cluster.route(h, 4 + h), util::Bytes(250'000'000)));
  }
  network.run();
  for (const FlowId flow : flows) {
    EXPECT_NEAR(network.completion_time(flow).value(), 1.0, 0.01);
  }
}

TEST(TwoLevelTree, FullBisectionDoesNotCongest) {
  const ElectricalCluster cluster =
      *ElectricalCluster::two_level_tree(8, 4, 1.0, test_params());
  FlowNetwork network = cluster.make_network();
  std::vector<FlowId> flows;
  for (std::uint32_t h = 0; h < 4; ++h) {
    flows.push_back(
        network.add_flow(cluster.route(h, 4 + h), util::Bytes(1'000'000'000)));
  }
  network.run();
  for (const FlowId flow : flows) {
    EXPECT_NEAR(network.completion_time(flow).value(), 1.0, 0.01);
  }
}

TEST(TwoLevelTree, RejectsBadShapes) {
  // Every malformed shape is a recoverable nullopt, never an abort: too few
  // hosts, zero hosts per ToR, and a non-positive or non-finite
  // oversubscription factor.
  EXPECT_FALSE(ElectricalCluster::two_level_tree(1, 4, 1.0, test_params()));
  EXPECT_FALSE(ElectricalCluster::two_level_tree(0, 4, 1.0, test_params()));
  EXPECT_FALSE(ElectricalCluster::two_level_tree(8, 0, 1.0, test_params()));
  EXPECT_FALSE(ElectricalCluster::two_level_tree(8, 4, 0.0, test_params()));
  EXPECT_FALSE(ElectricalCluster::two_level_tree(8, 4, -2.0, test_params()));
  EXPECT_FALSE(ElectricalCluster::two_level_tree(
      8, 4, std::numeric_limits<double>::quiet_NaN(), test_params()));
  EXPECT_FALSE(ElectricalCluster::two_level_tree(
      8, 4, std::numeric_limits<double>::infinity(), test_params()));
  // The boundary shapes are all accepted.
  EXPECT_TRUE(ElectricalCluster::two_level_tree(2, 1, 1.0, test_params()));
  EXPECT_TRUE(ElectricalCluster::two_level_tree(8, 16, 8.0, test_params()));
}

TEST(Cluster, MakeNetworkLinkCountMatchesEdges) {
  const ElectricalCluster cluster = ElectricalCluster::star(6, test_params());
  const FlowNetwork network = cluster.make_network();
  EXPECT_EQ(network.num_links(), cluster.graph().num_edges());
}

}  // namespace
}  // namespace wrht::elec
