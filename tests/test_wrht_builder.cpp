// The central correctness tests for the paper's algorithm: Wrht schedules
// must (a) compute a correct all-reduce for any (N, w), (b) match the
// paper's step-count formula, and (c) stay within the paper's wavelength
// bounds.
#include "wrht/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "coll/executor.hpp"
#include "coll/validation.hpp"
#include "util/math.hpp"

namespace wrht::core {
namespace {

WrhtParams params_with(std::uint32_t w) {
  WrhtParams params;
  params.num_wavelengths = w;
  return params;
}

TEST(DefaultGroupSize, FollowsWavelengthBudget) {
  // floor(m/2) <= w  =>  m = min(N, 2w+1).
  EXPECT_EQ(default_group_size(1024, 64), 129u);
  EXPECT_EQ(default_group_size(1024, 1), 3u);
  EXPECT_EQ(default_group_size(100, 64), 100u);
  EXPECT_EQ(default_group_size(2, 64), 2u);
}

TEST(AllToAllBound, MatchesPaperFormula) {
  EXPECT_EQ(all_to_all_wavelength_bound(2), 1u);   // ceil(4/8)
  EXPECT_EQ(all_to_all_wavelength_bound(8), 8u);   // ceil(64/8)
  EXPECT_EQ(all_to_all_wavelength_bound(22), 61u); // ceil(484/8)
  EXPECT_EQ(all_to_all_wavelength_bound(23), 67u); // just over w=64
}

class WrhtSweep : public ::testing::TestWithParam<
                      std::tuple<std::uint32_t, std::uint32_t>> {
 protected:
  std::uint32_t nodes() const { return std::get<0>(GetParam()); }
  std::uint32_t wavelengths() const { return std::get<1>(GetParam()); }
};

TEST_P(WrhtSweep, ComputesAllReduce) {
  const WrhtBuild build = build_wrht(nodes(), params_with(wavelengths()));
  const auto result = coll::FunctionalExecutor::verify_allreduce_detailed(
      build.annotated.schedule, /*payload_len=*/32);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_P(WrhtSweep, PassesStructuralValidation) {
  const WrhtBuild build = build_wrht(nodes(), params_with(wavelengths()));
  const coll::ValidationReport report =
      coll::validate(build.annotated.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(WrhtSweep, StepCountMatchesPrediction) {
  const WrhtBuild build = build_wrht(nodes(), params_with(wavelengths()));
  EXPECT_EQ(build.annotated.schedule.num_steps(),
            predicted_steps(nodes(), build.group_size_m, wavelengths()));
}

TEST_P(WrhtSweep, WavelengthBudgetRespected) {
  const WrhtBuild build = build_wrht(nodes(), params_with(wavelengths()));
  EXPECT_LE(build.annotated.wavelengths_required, wavelengths());
}

TEST_P(WrhtSweep, AnnotationShapeConsistent) {
  const WrhtBuild build = build_wrht(nodes(), params_with(wavelengths()));
  const auto& schedule = build.annotated.schedule;
  ASSERT_EQ(build.annotated.paths.size(), schedule.num_steps());
  for (std::size_t s = 0; s < schedule.num_steps(); ++s) {
    EXPECT_EQ(build.annotated.paths[s].size(),
              schedule.steps()[s].transfers.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WrhtSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 8u, 9u, 16u, 17u,
                                         32u, 50u, 64u, 100u, 128u, 200u,
                                         256u),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_w" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(WrhtBuilder, PaperScalePoints) {
  // The Figure-2 configurations: N in {128..1024}, w = 64, m = min(N, 129).
  for (const std::uint32_t n : {128u, 256u, 512u, 1024u}) {
    const WrhtBuild build = build_wrht(n, params_with(64));
    EXPECT_EQ(build.group_size_m, std::min(n, 129u));
    EXPECT_TRUE(coll::FunctionalExecutor::verify_allreduce(
        build.annotated.schedule, 8))
        << "N=" << n;
    EXPECT_LE(build.annotated.wavelengths_required, 64u);
  }
}

TEST(WrhtBuilder, N128SingleGroupTwoSteps) {
  // N=128 <= m=129: one reduce step to the middle node, one broadcast step.
  const WrhtBuild build = build_wrht(128, params_with(64));
  EXPECT_EQ(build.annotated.schedule.num_steps(), 2u);
  EXPECT_FALSE(build.merged_with_all_to_all);
  EXPECT_EQ(build.final_rep_count_mstar, 1u);
  ASSERT_EQ(build.reduce_levels.size(), 1u);
  EXPECT_EQ(build.reduce_levels[0].groups.size(), 1u);
  EXPECT_EQ(build.reduce_levels[0].groups[0].rep(), 64u);
  // floor(128/2) = 64 wavelengths on the heavier side.
  EXPECT_EQ(build.annotated.wavelengths_required, 64u);
}

TEST(WrhtBuilder, N1024ThreeStepsWithMerge) {
  // 1024 -> 8 representatives (1 step), all-to-all among 8 (1 step),
  // broadcast (1 step): the paper's 2*ceil(log_129 1024) - 1 = 3.
  const WrhtBuild build = build_wrht(1024, params_with(64));
  EXPECT_EQ(build.annotated.schedule.num_steps(), 3u);
  EXPECT_TRUE(build.merged_with_all_to_all);
  EXPECT_EQ(build.final_rep_count_mstar, 8u);
  EXPECT_EQ(build.reduce_levels.size(), 1u);
}

TEST(WrhtBuilder, SmallClusterSingleAllToAll) {
  // N small enough that ceil(N^2/8) <= w: one step total.
  const WrhtBuild build = build_wrht(16, params_with(64));
  EXPECT_EQ(build.annotated.schedule.num_steps(), 1u);
  EXPECT_TRUE(build.merged_with_all_to_all);
  EXPECT_EQ(build.final_rep_count_mstar, 16u);
}

TEST(WrhtBuilder, MergeDisabledReducesToRoot) {
  WrhtParams params = params_with(64);
  params.allow_all_to_all_merge = false;
  const WrhtBuild build = build_wrht(1024, params);
  EXPECT_FALSE(build.merged_with_all_to_all);
  EXPECT_EQ(build.final_rep_count_mstar, 1u);
  // 2 tree levels down + 2 broadcast levels = 2*ceil(log_129 1024) = 4.
  EXPECT_EQ(build.annotated.schedule.num_steps(), 4u);
  EXPECT_TRUE(coll::FunctionalExecutor::verify_allreduce(
      build.annotated.schedule, 8));
}

TEST(WrhtBuilder, ForcedGroupSizeHonored) {
  WrhtParams params = params_with(64);
  params.forced_group_size = 4;
  const WrhtBuild build = build_wrht(64, params);
  EXPECT_EQ(build.group_size_m, 4u);
  for (const WrhtLevel& level : build.reduce_levels) {
    for (const Group& group : level.groups) {
      EXPECT_LE(group.size(), 4u);
    }
  }
  EXPECT_TRUE(coll::FunctionalExecutor::verify_allreduce(
      build.annotated.schedule, 16));
}

TEST(WrhtBuilder, ForcedGroupSizeTooBigForSpectrumAborts) {
  WrhtParams params = params_with(4);
  params.forced_group_size = 100;  // floor(100/2) = 50 > 4
  EXPECT_DEATH(build_wrht(256, params), "wavelengths");
}

TEST(WrhtBuilder, SingleWavelengthStillWorks) {
  // w=1: m=3, deep tree, but every group side uses one wavelength.
  const WrhtBuild build = build_wrht(81, params_with(1));
  EXPECT_EQ(build.group_size_m, 3u);
  EXPECT_LE(build.annotated.wavelengths_required, 1u);
  EXPECT_TRUE(coll::FunctionalExecutor::verify_allreduce(
      build.annotated.schedule, 8));
}

TEST(WrhtBuilder, TwoNodes) {
  const WrhtBuild build = build_wrht(2, params_with(64));
  EXPECT_TRUE(coll::FunctionalExecutor::verify_allreduce(
      build.annotated.schedule, 4));
  EXPECT_EQ(build.annotated.schedule.num_steps(), 1u);  // pair all-to-all
}

TEST(PredictedSteps, MatchesPaperFormulaAtDefaultGroupSize) {
  // With the default m = min(N, 2w+1), the builder's step count equals the
  // paper's 2*ceil(log_m N) or 2*ceil(log_m N) - 1.
  for (const std::uint32_t w : {1u, 4u, 16u, 64u}) {
    for (const std::uint32_t n :
         {2u, 3u, 7u, 16u, 64u, 128u, 129u, 130u, 512u, 1024u}) {
      const std::uint32_t m = default_group_size(n, w);
      const std::uint32_t steps = predicted_steps(n, m, w);
      const std::uint32_t log_term = util::ceil_log(m, n);
      EXPECT_TRUE(steps == 2 * log_term || steps == 2 * log_term - 1)
          << "n=" << n << " w=" << w << " m=" << m << " steps=" << steps
          << " 2L=" << 2 * log_term;
    }
  }
}

TEST(PredictedSteps, FarFewerThanRing) {
  // The headline structural claim: 2*ceil(log_m N) << 2(N-1).
  for (const std::uint32_t n : {128u, 256u, 512u, 1024u}) {
    const std::uint32_t steps = predicted_steps(n, default_group_size(n, 64), 64);
    EXPECT_LE(steps, 4u);
    EXPECT_GE((2 * (n - 1)) / steps, 60u) << "n=" << n;
  }
}

TEST(WrhtBuilder, BroadcastMirrorsReduceTopology) {
  const WrhtBuild build = build_wrht(100, params_with(8));
  const auto& steps = build.annotated.schedule.steps();
  const std::size_t tree_levels = build.reduce_levels.size();
  const std::size_t merge = build.merged_with_all_to_all ? 1 : 0;
  ASSERT_EQ(steps.size(), 2 * tree_levels + merge);
  // Level k's reduce step and its mirrored broadcast step carry the same
  // pairs, reversed.
  for (std::size_t level = 0; level < tree_levels; ++level) {
    const auto& reduce = steps[level].transfers;
    const auto& bcast = steps[steps.size() - 1 - level].transfers;
    ASSERT_EQ(reduce.size(), bcast.size());
    for (const coll::Transfer& t : reduce) {
      bool mirrored = false;
      for (const coll::Transfer& u : bcast) {
        if (u.src == t.dst && u.dst == t.src &&
            u.op == coll::TransferOp::kCopy) {
          mirrored = true;
        }
      }
      EXPECT_TRUE(mirrored);
    }
  }
}

}  // namespace
}  // namespace wrht::core
