// Minimal JSON reading and writing for the observability exporters.
//
// The exporters (Chrome trace events, metrics.json) only need to WRITE
// JSON, but the tests and the `json_check` CI tool need to prove that what
// was written actually parses — and the toolchain image carries no JSON
// library.  So this header is both halves, deliberately small: a strict
// RFC 8259 recursive-descent parser into a plain DOM, and the few string /
// number formatting helpers every writer in src/obs shares.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wrht::obs {

struct JsonValue {
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in document order (duplicate keys are kept; find returns the
  /// first, which is what every consumer here wants).
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or when this is not an
  /// object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  /// On failure: what went wrong and the byte offset it went wrong at.
  std::string error;
  std::size_t offset = 0;
};

/// Strict parse of a complete JSON document (trailing garbage is an error).
[[nodiscard]] JsonParseResult json_parse(std::string_view text);

/// `s` with JSON string escapes applied, WITHOUT surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// `s` escaped and quoted — a complete JSON string token.
[[nodiscard]] std::string json_quote(std::string_view s);

/// A JSON number token for `v`.  Non-finite values (which JSON cannot
/// represent) render as 0.
[[nodiscard]] std::string json_number(double v);

}  // namespace wrht::obs
