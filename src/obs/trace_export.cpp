#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <utility>

#include "obs/json.hpp"
#include "util/logging.hpp"

namespace wrht::obs {

namespace {

/// Process ids of the fixed tracks (see the header's layout comment).
constexpr int kMetricsPid = 0;
constexpr int kOpticalPid = 1;
constexpr int kElectricalPid = 2;
/// Low-level sim events (transfers, tunes, flows) that are not job-keyed;
/// only present when a substrate-level trace is exported through here.
constexpr int kSimPid = 3;

constexpr double kMicros = 1e6;

class TraceWriter {
 public:
  explicit TraceWriter(const std::vector<runtime::JobRecord>& records)
      : records_(records) {}

  [[nodiscard]] int job_pid(std::int64_t job) const {
    if (job < 0 || static_cast<std::size_t>(job) >= records_.size()) {
      return kOpticalPid;
    }
    return records_[static_cast<std::size_t>(job)].substrate ==
                   runtime::SubstrateKind::kElectrical
               ? kElectricalPid
               : kOpticalPid;
  }

  [[nodiscard]] std::string job_label(std::int64_t job) const {
    if (job >= 0 && static_cast<std::size_t>(job) < records_.size() &&
        !records_[static_cast<std::size_t>(job)].spec.name.empty()) {
      return records_[static_cast<std::size_t>(job)].spec.name;
    }
    return "job " + std::to_string(job);
  }

  void begin(int pid, std::int64_t tid, double ts_us, const std::string& name,
             const std::string& args) {
    emit("B", pid, tid, ts_us, name, args);
    ++open_spans_[{pid, tid}];
  }

  void end(int pid, std::int64_t tid, double ts_us) {
    // An E with no matching B would make the document invalid; a balanced
    // producer (the runtime) never hits this, a truncated trace might.
    auto it = open_spans_.find({pid, tid});
    if (it == open_spans_.end() || it->second == 0) return;
    --it->second;
    emit("E", pid, tid, ts_us, {}, {});
  }

  void instant(int pid, std::int64_t tid, double ts_us,
               const std::string& name, const std::string& args) {
    emit("i", pid, tid, ts_us, name, args, /*scope=*/true);
  }

  void counter(const std::string& name, double ts_us, double value) {
    emit("C", kMetricsPid, 0, ts_us, name,
         "{\"value\": " + json_number(value) + "}");
  }

  void metadata(int pid, std::int64_t tid, const char* what,
                const std::string& name) {
    std::string event = "{\"name\": \"";
    event += what;
    event += "\", \"ph\": \"M\", \"pid\": " + std::to_string(pid);
    if (tid >= 0) event += ", \"tid\": " + std::to_string(tid);
    event += ", \"args\": {\"name\": " + json_quote(name) + "}}";
    push(std::move(event));
  }

  /// Close every span still open, at the latest timestamp seen, so a
  /// partial trace still loads.
  void close_open_spans() {
    for (auto& [track, depth] : open_spans_) {
      while (depth > 0) {
        --depth;
        emit("E", track.first, track.second, max_ts_, {}, {});
      }
    }
  }

  [[nodiscard]] std::string finish() && {
    std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
      out += events_[i];
      if (i + 1 < events_.size()) out += ',';
      out += '\n';
    }
    out += "]\n}\n";
    return out;
  }

 private:
  void emit(const char* ph, int pid, std::int64_t tid, double ts_us,
            const std::string& name, const std::string& args,
            bool scope = false) {
    max_ts_ = std::max(max_ts_, ts_us);
    std::string event = "{\"ph\": \"";
    event += ph;
    event += "\", \"pid\": " + std::to_string(pid) +
             ", \"tid\": " + std::to_string(tid) +
             ", \"ts\": " + json_number(ts_us);
    if (!name.empty()) event += ", \"name\": " + json_quote(name);
    if (scope) event += ", \"s\": \"t\"";  // thread-scoped instant
    if (!args.empty()) event += ", \"args\": " + args;
    event += "}";
    push(std::move(event));
  }

  void push(std::string event) { events_.push_back(std::move(event)); }

  const std::vector<runtime::JobRecord>& records_;
  std::vector<std::string> events_;
  std::map<std::pair<int, std::int64_t>, int> open_spans_;
  double max_ts_ = 0.0;
};

/// Split a kRouteDecision detail ("optical=12.5 us electrical=980 ns")
/// into the two predictions as display strings.
std::pair<std::string, std::string> split_route_detail(
    const std::string& detail) {
  const std::string optical_key = "optical=";
  const std::string electrical_key = " electrical=";
  const std::size_t split = detail.find(electrical_key);
  if (detail.rfind(optical_key, 0) != 0 || split == std::string::npos) {
    return {detail, detail};
  }
  return {detail.substr(optical_key.size(), split - optical_key.size()),
          detail.substr(split + electrical_key.size())};
}

}  // namespace

std::string chrome_trace_json(const sim::Trace& trace,
                              const std::vector<runtime::JobRecord>& records,
                              const MetricsRegistry* metrics) {
  TraceWriter writer(records);

  writer.metadata(kMetricsPid, -1, "process_name", "metrics");
  writer.metadata(kOpticalPid, -1, "process_name", "optical ring");
  writer.metadata(kElectricalPid, -1, "process_name", "electrical fabric");
  for (const runtime::JobRecord& record : records) {
    if (record.state == runtime::JobState::kRejected) continue;
    writer.metadata(writer.job_pid(record.id), record.id, "thread_name",
                    writer.job_label(record.id));
  }

  bool any_sim_event = false;
  for (const sim::TraceEvent& event : trace.events()) {
    const double ts = event.time.value() * kMicros;
    const std::int64_t job = event.a;
    const int pid = writer.job_pid(job);
    switch (event.kind) {
      case sim::TraceKind::kJobAdmit:
        writer.begin(pid, job, ts, writer.job_label(job),
                     "{\"band_base\": " + std::to_string(event.b) +
                         ", \"grant\": " + json_quote(event.detail) + "}");
        break;
      case sim::TraceKind::kJobComplete:
        writer.end(pid, job, ts);
        break;
      case sim::TraceKind::kJobPreempt:
        writer.begin(pid, job, ts, "suspended", {});
        break;
      case sim::TraceKind::kJobResume:
        writer.end(pid, job, ts);
        break;
      case sim::TraceKind::kJobResize:
        writer.instant(pid, job, ts, "resize",
                       "{\"band_base\": " + std::to_string(event.b) +
                           ", \"grant\": " + json_quote(event.detail) + "}");
        break;
      case sim::TraceKind::kJobFused:
        writer.instant(pid, job, ts, "fused",
                       "{\"into_lead_job\": " + std::to_string(event.b) +
                           "}");
        break;
      case sim::TraceKind::kStepBegin:
        writer.begin(pid, job, ts, "step " + std::to_string(event.b), {});
        break;
      case sim::TraceKind::kStepEnd:
        writer.end(pid, job, ts);
        break;
      case sim::TraceKind::kStepRetimed:
        writer.instant(pid, job, ts, "step retimed",
                       "{\"step\": " + std::to_string(event.b) +
                           ", \"new_end\": " + json_quote(event.detail) +
                           "}");
        break;
      case sim::TraceKind::kRouteDecision: {
        const auto [optical, electrical] = split_route_detail(event.detail);
        writer.instant(
            pid, job, ts, "route decision",
            "{\"chose\": " +
                json_quote(runtime::substrate_kind_name(
                    static_cast<runtime::SubstrateKind>(event.b))) +
                ", \"predicted_optical\": " + json_quote(optical) +
                ", \"predicted_electrical\": " + json_quote(electrical) +
                "}");
        break;
      }
      case sim::TraceKind::kJobMigrate:
        writer.instant(pid, job, ts, "migrate",
                       "{\"band_base\": " + std::to_string(event.b) +
                           ", \"grant\": " + json_quote(event.detail) + "}");
        break;
      case sim::TraceKind::kJobKilled:
        // Terminal: close the job's open span (admit or suspension).
        writer.end(pid, job, ts);
        break;
      case sim::TraceKind::kJobPlaceOptical:
      case sim::TraceKind::kJobPlaceElectrical:
        // The placement verdict is already encoded in the job's pid.
        break;
      default:
        // Substrate-level events (transfers, tunes, flows, custom): instant
        // events on the generic sim track keyed by their subject id.
        any_sim_event = true;
        writer.instant(kSimPid, event.a >= 0 ? event.a : 0, ts,
                       sim::trace_kind_name(event.kind),
                       event.detail.empty()
                           ? "{\"b\": " + std::to_string(event.b) + "}"
                           : "{\"b\": " + std::to_string(event.b) +
                                 ", \"detail\": " + json_quote(event.detail) +
                                 "}");
        break;
    }
  }
  if (any_sim_event) {
    writer.metadata(kSimPid, -1, "process_name", "sim events");
  }
  writer.close_open_spans();

  if (metrics) {
    for (const TimeSeriesSampler::Series& series :
         metrics->sampler().series()) {
      for (const TimeSeriesSampler::Point& point : series.points) {
        writer.counter(series.name, point.time_seconds * kMicros,
                       point.value);
      }
    }
  }
  return std::move(writer).finish();
}

bool write_chrome_trace(const std::string& path, const sim::Trace& trace,
                        const std::vector<runtime::JobRecord>& records,
                        const MetricsRegistry* metrics) {
  std::ofstream out(path);
  if (!out) {
    WRHT_ERROR() << "write_chrome_trace: cannot open " << path
                 << " for writing";
    return false;
  }
  out << chrome_trace_json(trace, records, metrics);
  return static_cast<bool>(out);
}

bool export_observability(const std::string& trace_path,
                          const std::string& metrics_path,
                          const sim::Trace& trace,
                          const std::vector<runtime::JobRecord>& records,
                          const MetricsRegistry* metrics) {
  bool ok = true;
  if (!trace_path.empty()) {
    ok = write_chrome_trace(trace_path, trace, records, metrics) && ok;
  }
  if (!metrics_path.empty()) {
    if (metrics) {
      ok = metrics->write_json(metrics_path) && ok;
    } else {
      WRHT_ERROR() << "export_observability: --metrics-out given but no "
                      "metrics registry is installed";
      ok = false;
    }
  }
  return ok;
}

}  // namespace wrht::obs
