// Runtime observability: named counters, gauges, and histograms behind one
// registry, plus a sim-clock-driven time-series sampler.
//
// The registry is OPTIONAL everywhere it is consumed: producers cache raw
// handles (obs::Counter* and friends) that stay nullptr when no registry is
// installed, and emit through the inline null-guarded helpers at the bottom
// of this header.  That makes the uninstrumented hot path one predictable
// branch per emission site — no allocation, no name lookup, no virtual call
// — which bench/runtime_throughput asserts.
//
// Handle stability: metric objects live in std::deques, which never move
// elements on growth, so a handle cached at construction stays valid for
// the registry's lifetime no matter how many metrics register after it.
//
// Sampling: TimeSeriesSampler snapshots registered gauges at a configurable
// cadence of SIMULATED time.  It deliberately does NOT schedule its own
// sim::Simulator events — a self-rescheduling sampler would keep a
// run-until-idle event queue alive forever — so producers PUMP it
// (maybe_sample) from event handlers that already fire.  The series become
// the counter tracks of the Chrome trace export.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hpp"
#include "util/units.hpp"

namespace wrht::obs {

/// Monotone event count.
class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous value (queue depth, occupancy fraction, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Monotone fold for high-watermark gauges (max_wait_seconds).
  void set_max(double v) { value_ = std::max(value_, v); }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// sim::Histogram's exponential buckets (with its coarse but monotone
/// quantile()) extended with a streaming sim::Summary, so exports carry the
/// exact count/min/mean/max next to the bucketed percentiles.
class Histogram {
 public:
  Histogram(double first_bound, double growth, std::size_t num_buckets)
      : buckets_(first_bound, growth, num_buckets) {}

  void observe(double x) {
    buckets_.record(x);
    summary_.record(x);
  }

  [[nodiscard]] std::uint64_t count() const { return buckets_.count(); }
  /// Bucket-upper-bound quantile — coarse (resolution is one bucket) but
  /// monotone in q.  Exact SLO percentiles come from obs::exact_quantile
  /// over raw samples instead.
  [[nodiscard]] double quantile(double q) const { return buckets_.quantile(q); }
  [[nodiscard]] const sim::Histogram& buckets() const { return buckets_; }
  [[nodiscard]] const sim::Summary& summary() const { return summary_; }

 private:
  sim::Histogram buckets_;
  sim::Summary summary_;
};

/// Gauge snapshots over simulated time, pumped by the producer's own event
/// handlers (see the header comment for why it never self-schedules).
class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(util::Seconds cadence) : cadence_(cadence) {}

  /// Track `gauge` under `name`; every future snapshot appends its value.
  /// The gauge must outlive the sampler (registry-owned gauges do).
  void track(std::string name, const Gauge* gauge);

  /// Snapshot every tracked gauge when at least one cadence has elapsed
  /// since the last snapshot (the first call always samples).
  void maybe_sample(util::Seconds now);

  /// Unconditional snapshot — run start/end bookends.  Re-sampling the same
  /// instant overwrites the previous point, keeping timestamps strictly
  /// increasing within a series.
  void sample_now(util::Seconds now);

  struct Point {
    double time_seconds = 0.0;
    double value = 0.0;
  };
  struct Series {
    std::string name;
    const Gauge* gauge = nullptr;
    std::vector<Point> points;
  };
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }

 private:
  util::Seconds cadence_;
  util::Seconds last_{0.0};
  bool sampled_once_ = false;
  std::vector<Series> series_;
};

class MetricsRegistry {
 public:
  /// `sample_cadence` is the sampler's minimum spacing between snapshots on
  /// the simulated clock.
  explicit MetricsRegistry(
      util::Seconds sample_cadence = util::microseconds(50.0))
      : sampler_(sample_cadence) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create.  Returned handles stay valid for the registry's
  /// lifetime.
  [[nodiscard]] Counter* counter(const std::string& name);
  [[nodiscard]] Gauge* gauge(const std::string& name);
  /// A gauge the sampler also snapshots (rendered as a counter track in the
  /// Chrome trace export).  Idempotent: re-registering an existing sampled
  /// gauge returns the same handle without a second series.
  [[nodiscard]] Gauge* sampled_gauge(const std::string& name);
  /// Bucket shape is fixed at creation; a later call with the same name
  /// returns the existing histogram regardless of the shape arguments.
  [[nodiscard]] Histogram* histogram(const std::string& name,
                                     double first_bound = 1e-7,
                                     double growth = 2.0,
                                     std::size_t num_buckets = 48);

  /// Lookup without creation (tests, exporters); nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] TimeSeriesSampler& sampler() { return sampler_; }
  [[nodiscard]] const TimeSeriesSampler& sampler() const { return sampler_; }

  /// Enumeration in registration order, for the exporters.
  [[nodiscard]] const std::deque<std::pair<std::string, Counter>>& counters()
      const {
    return counters_;
  }
  [[nodiscard]] const std::deque<std::pair<std::string, Gauge>>& gauges()
      const {
    return gauges_;
  }
  [[nodiscard]] const std::deque<std::pair<std::string, Histogram>>&
  histograms() const {
    return histograms_;
  }

  /// The whole registry — counters, gauges, histogram summaries +
  /// percentiles + buckets, and the sampled time series — as one JSON
  /// document (the metrics.json dump).
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; false (with a stderr note) on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
  TimeSeriesSampler sampler_;
};

/// Null-safe hot-path emission helpers: producers cache handles that are
/// nullptr without a registry, making every emission site one branch.
inline void inc(Counter* counter, std::uint64_t by = 1) {
  if (counter) counter->increment(by);
}
inline void set(Gauge* gauge, double v) {
  if (gauge) gauge->set(v);
}
inline void set_max(Gauge* gauge, double v) {
  if (gauge) gauge->set_max(v);
}
inline void observe(Histogram* histogram, double x) {
  if (histogram) histogram->observe(x);
}

}  // namespace wrht::obs
