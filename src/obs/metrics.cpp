#include "obs/metrics.hpp"

#include <fstream>
#include <tuple>

#include "obs/json.hpp"
#include "util/logging.hpp"

namespace wrht::obs {

namespace {

/// Percentiles every histogram export carries.
constexpr std::pair<const char*, double> kExportQuantiles[] = {
    {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};

}  // namespace

void TimeSeriesSampler::track(std::string name, const Gauge* gauge) {
  series_.push_back(Series{std::move(name), gauge, {}});
  // A gauge registered mid-run starts its series at the NEXT snapshot; the
  // exporters handle series of different lengths.
}

void TimeSeriesSampler::maybe_sample(util::Seconds now) {
  if (sampled_once_ && now < last_ + cadence_) return;
  sample_now(now);
}

void TimeSeriesSampler::sample_now(util::Seconds now) {
  for (Series& series : series_) {
    const Point point{now.value(), series.gauge->value()};
    if (!series.points.empty() &&
        series.points.back().time_seconds == point.time_seconds) {
      // Same sim instant sampled twice (event cascade): the later value is
      // the instant's truth, and one point per timestamp keeps every
      // series strictly increasing in time.
      series.points.back() = point;
    } else {
      series.points.push_back(point);
    }
  }
  last_ = now;
  sampled_once_ = true;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  for (auto& [existing, value] : counters_) {
    if (existing == name) return &value;
  }
  counters_.emplace_back(name, Counter{});
  return &counters_.back().second;
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  for (auto& [existing, value] : gauges_) {
    if (existing == name) return &value;
  }
  gauges_.emplace_back(name, Gauge{});
  return &gauges_.back().second;
}

Gauge* MetricsRegistry::sampled_gauge(const std::string& name) {
  Gauge* handle = gauge(name);
  for (const TimeSeriesSampler::Series& series : sampler_.series()) {
    if (series.gauge == handle) return handle;  // already tracked
  }
  sampler_.track(name, handle);
  return handle;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      double first_bound, double growth,
                                      std::size_t num_buckets) {
  for (auto& [existing, value] : histograms_) {
    if (existing == name) return &value;
  }
  histograms_.emplace_back(
      std::piecewise_construct, std::forward_as_tuple(name),
      std::forward_as_tuple(first_bound, growth, num_buckets));
  return &histograms_.back().second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  for (const auto& [existing, value] : counters_) {
    if (existing == name) return &value;
  }
  return nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  for (const auto& [existing, value] : gauges_) {
    if (existing == name) return &value;
  }
  return nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  for (const auto& [existing, value] : histograms_) {
    if (existing == name) return &value;
  }
  return nullptr;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": " +
           std::to_string(counter.value());
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": " + json_number(gauge.value());
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    const sim::Summary& summary = histogram.summary();
    out += "    " + json_quote(name) + ": {\"count\": " +
           std::to_string(histogram.count()) +
           ", \"min\": " + json_number(summary.min()) +
           ", \"mean\": " + json_number(summary.mean()) +
           ", \"max\": " + json_number(summary.max());
    for (const auto& [label, q] : kExportQuantiles) {
      out += ", \"";
      out += label;
      out += "\": " + json_number(histogram.quantile(q));
    }
    // Buckets as [upper_bound, count] pairs, zero rows skipped (the tails
    // of a 48-bucket exponential ladder are mostly empty).
    out += ", \"buckets\": [";
    const sim::Histogram& buckets = histogram.buckets();
    bool first_bucket = true;
    for (std::size_t i = 0; i < buckets.buckets().size(); ++i) {
      if (buckets.buckets()[i] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[" + json_number(buckets.bucket_bound(i)) + ", " +
             std::to_string(buckets.buckets()[i]) + "]";
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"series\": {";
  first = true;
  for (const TimeSeriesSampler::Series& series : sampler_.series()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(series.name) + ": [";
    bool first_point = true;
    for (const TimeSeriesSampler::Point& point : series.points) {
      if (!first_point) out += ", ";
      first_point = false;
      out += "[" + json_number(point.time_seconds) + ", " +
             json_number(point.value) + "]";
    }
    out += "]";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    WRHT_ERROR() << "MetricsRegistry: cannot open " << path << " for writing";
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace wrht::obs
