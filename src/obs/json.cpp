#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wrht::obs {

namespace {

/// Nesting guard: the exporters emit flat documents, so anything deeper
/// than this is a malformed input, not a legitimate trace.
constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult out;
    skip_whitespace();
    if (!parse_value(out.value, 0)) {
      out.error = std::move(error_);
      out.offset = pos_;
      return out;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      out.error = "trailing characters after the document";
      out.offset = pos_;
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  [[nodiscard]] bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return consume_literal("null");
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return consume_literal("false");
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        out.kind = JsonValue::Kind::kNumber;
        return parse_number(out.number);
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      skip_whitespace();
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out.push_back(escape);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          // Validate the four hex digits; decode the BMP code point as
          // UTF-8.  Surrogate pairs are validated as two escapes but not
          // recombined — nothing in this repo emits them.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return fail("unterminated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return fail("invalid number");
    }
    // Grammar check (JSON forbids leading zeros and bare dots); the value
    // itself comes from strtod over the validated span.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonParseResult json_parse(std::string_view text) {
  return Parser(text).run();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  // Up to 15 significant digits keeps microsecond trace timestamps exact
  // over any horizon this simulator reaches while staying human-readable.
  std::snprintf(buf, sizeof buf, "%.15g", v);
  return buf;
}

}  // namespace wrht::obs
