// Chrome trace-event JSON export: converts a run's sim::Trace + JobRecords
// (+ optionally a MetricsRegistry's sampled time series) into a document
// that loads directly in Perfetto / chrome://tracing.
//
// Track layout:
//   * pid 1 "optical ring" / pid 2 "electrical fabric" — one thread (tid)
//     per job, on the fabric that carried it.  A job's lifetime is a B/E
//     duration span from admission to completion; preempt/resume windows
//     nest as "suspended" spans inside it, schedule steps nest as
//     sequential "step N" spans on the execution's lead job, and resizes /
//     fusions / retimings / route decisions render as instant events with
//     their details as args (route decisions carry BOTH predicted
//     completion times).
//   * pid 0 "metrics" — one counter track per sampled gauge series
//     (queue depth, spectrum occupancy, uplink utilization, ...).
//
// Timestamps are microseconds (the trace-event convention); events arrive
// from sim::Trace in simulation order, so every track's ts sequence is
// non-decreasing, and span begins/ends are balanced per job by
// construction (any span still open at the end of a partial trace is
// closed at the last timestamp so the document stays loadable).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/job.hpp"
#include "sim/trace.hpp"

namespace wrht::obs {

/// The complete trace-event document as a string.  `metrics` may be
/// nullptr (no counter tracks then).
[[nodiscard]] std::string chrome_trace_json(
    const sim::Trace& trace,
    const std::vector<runtime::JobRecord>& records,
    const MetricsRegistry* metrics);

/// Write chrome_trace_json to `path`; false (with a stderr note) on I/O
/// failure.
bool write_chrome_trace(const std::string& path, const sim::Trace& trace,
                        const std::vector<runtime::JobRecord>& records,
                        const MetricsRegistry* metrics);

/// One-call export tail for examples and benches: writes the Chrome trace
/// to `trace_path` and the registry dump to `metrics_path`, skipping
/// whichever is empty.  Returns false when any requested write failed.
bool export_observability(const std::string& trace_path,
                          const std::string& metrics_path,
                          const sim::Trace& trace,
                          const std::vector<runtime::JobRecord>& records,
                          const MetricsRegistry* metrics);

}  // namespace wrht::obs
