#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wrht::obs {

double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, std::numeric_limits<double>::min(), 1.0);
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::max<std::size_t>(rank, 1) - 1];
}

SloStats compute_slo(const std::vector<runtime::JobRecord>& records) {
  SloStats out;
  std::vector<double> turnarounds;
  std::vector<double> slowdowns;
  turnarounds.reserve(records.size());
  slowdowns.reserve(records.size());
  for (const runtime::JobRecord& record : records) {
    if (record.state != runtime::JobState::kDone) continue;
    ++out.jobs;
    const double turnaround = record.turnaround().value();
    turnarounds.push_back(turnaround);
    const double service = (record.completed - record.admitted).value();
    // Zero-duration service (degenerate but legal in tests) pins the
    // slowdown at 1: the job was never made to wait.
    slowdowns.push_back(service > 0.0 ? turnaround / service : 1.0);
    out.max_wait = std::max(out.max_wait, record.admitted -
                                              record.spec.arrival);
    if (record.spec.deadline > util::Seconds(0.0)) {
      ++out.deadline_jobs;
      if (record.turnaround() <= record.spec.deadline) ++out.deadline_hits;
    }
  }
  out.p50_turnaround = util::Seconds(exact_quantile(turnarounds, 0.50));
  out.p99_turnaround = util::Seconds(exact_quantile(turnarounds, 0.99));
  out.p999_turnaround = util::Seconds(exact_quantile(turnarounds, 0.999));
  out.p50_slowdown = exact_quantile(slowdowns, 0.50);
  out.p99_slowdown = exact_quantile(slowdowns, 0.99);
  out.p999_slowdown = exact_quantile(slowdowns, 0.999);
  return out;
}

}  // namespace wrht::obs
