// SLO statistics for a multi-tenant run: exact turnaround / slowdown
// percentiles, the worst admission wait, and the deadline hit rate.
//
// These are EXACT nearest-rank quantiles computed from the per-job records
// the runtime already keeps — not readbacks of the registry's bucketed
// histograms — so RuntimeReport's p50/p99/p999 match a recomputation from
// JobRecords bit for bit (tests assert this), and the block is available
// even when no MetricsRegistry is installed.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/job.hpp"
#include "util/units.hpp"

namespace wrht::obs {

struct SloStats {
  /// Completed jobs the stats cover.
  std::uint64_t jobs = 0;
  /// Turnaround = completion - arrival (queueing included).
  util::Seconds p50_turnaround{0.0};
  util::Seconds p99_turnaround{0.0};
  util::Seconds p999_turnaround{0.0};
  /// Slowdown = turnaround / (completion - admission): how much longer the
  /// job took end-to-end than its own service span.  1.0 = admitted the
  /// instant it arrived; queueing and fuse-window holds push it up.
  double p50_slowdown = 0.0;
  double p99_slowdown = 0.0;
  double p999_slowdown = 0.0;
  /// Worst admission wait (admission - arrival) over completed jobs.
  util::Seconds max_wait{0.0};
  /// Jobs that carried a JobSpec::deadline, and how many of those finished
  /// within it (turnaround <= deadline).
  std::uint64_t deadline_jobs = 0;
  std::uint64_t deadline_hits = 0;

  /// Hit fraction in [0, 1]; 0 when no job carried a deadline.
  [[nodiscard]] double deadline_hit_rate() const {
    return deadline_jobs == 0
               ? 0.0
               : static_cast<double>(deadline_hits) /
                     static_cast<double>(deadline_jobs);
  }
};

/// Exact nearest-rank quantile: the smallest sample such that at least
/// ceil(q * n) samples are <= it.  Takes `samples` by value (sorts a copy);
/// 0 on an empty input.  q is clamped to (0, 1].
[[nodiscard]] double exact_quantile(std::vector<double> samples, double q);

/// SloStats over the completed jobs in `records` (everything else —
/// rejected, and in a partial view queued/running — is skipped).
[[nodiscard]] SloStats compute_slo(
    const std::vector<runtime::JobRecord>& records);

}  // namespace wrht::obs
