// Schedule builders for the full family of collective primitives, in the
// same IR as the all-reduce algorithms.  A collectives library is more than
// all-reduce; distributed training also broadcasts initial weights,
// reduce-scatters optimizer states (ZeRO), and all-gathers parameters.
// Every builder here is proven against its mathematical definition by the
// oracles in coll/oracle.hpp.
//
// Placement conventions (what the oracles check):
//   broadcast_*   every node ends with the root's vector
//   reduce_*      the root ends with the element-wise sum
//   scatter_*     node i ends with the root's chunk i         (chunks = N)
//   gather_*      the root ends with node i's chunk i in slot i
//   allgather_*   every node ends with node i's chunk i in slot i
//   reduce_scatter_ring   node i ends with the fully reduced chunk i
#pragma once

#include "coll/schedule.hpp"

namespace wrht::coll {

/// Binomial-tree broadcast from `root`: ceil(log2 N) steps, full vector.
[[nodiscard]] Schedule broadcast_binomial(std::uint32_t num_nodes,
                                          NodeId root);

/// Pipelined ring broadcast from `root`: N chunks flow around the ring;
/// N - 1 + (N - 1) steps but only one chunk per link per step, so the
/// bandwidth term is ~D instead of D log N.
[[nodiscard]] Schedule broadcast_ring_pipelined(std::uint32_t num_nodes,
                                                NodeId root);

/// Binomial-tree reduce to `root`: ceil(log2 N) steps, full vector.
[[nodiscard]] Schedule reduce_binomial(std::uint32_t num_nodes, NodeId root);

/// Binomial scatter from `root` (chunks = N): the root's chunk i reaches
/// node i; each round halves the range a subtree root is responsible for.
[[nodiscard]] Schedule scatter_binomial(std::uint32_t num_nodes, NodeId root);

/// Binomial gather to `root` (chunks = N): node i's chunk i reaches the
/// root's slot i.
[[nodiscard]] Schedule gather_binomial(std::uint32_t num_nodes, NodeId root);

/// Ring all-gather (chunks = N): N - 1 neighbour steps.
[[nodiscard]] Schedule allgather_ring(std::uint32_t num_nodes);

/// Bruck all-gather (chunks = N): ceil(log2 N) steps, works for any N;
/// step k moves 2^k chunks per node.
[[nodiscard]] Schedule allgather_bruck(std::uint32_t num_nodes);

/// Ring reduce-scatter (chunks = N): N - 1 neighbour steps; node i ends
/// with the fully reduced chunk i.
[[nodiscard]] Schedule reduce_scatter_ring(std::uint32_t num_nodes);

}  // namespace wrht::coll
