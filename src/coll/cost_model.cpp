#include "coll/cost_model.hpp"

#include "util/math.hpp"

namespace wrht::coll {

CostBreakdown alpha_beta_cost(const Schedule& schedule, util::Bytes payload,
                              const AlphaBetaParams& params) {
  CostBreakdown out;
  out.steps = schedule.num_steps();
  out.latency_part =
      util::Seconds(params.alpha.value() * static_cast<double>(out.steps));
  for (std::size_t s = 0; s < schedule.num_steps(); ++s) {
    const util::Bytes bottleneck = step_bottleneck_bytes(schedule, s, payload);
    out.bandwidth_part += params.bandwidth.transfer_time(bottleneck);
  }
  out.total = out.latency_part + out.bandwidth_part;
  out.total_traffic = schedule.total_traffic(payload);
  return out;
}

util::Seconds ring_allreduce_closed_form(std::uint32_t num_nodes,
                                         util::Bytes payload,
                                         const AlphaBetaParams& p) {
  const double steps = 2.0 * (num_nodes - 1);
  const double chunk =
      payload.as_double() / static_cast<double>(num_nodes);
  return util::Seconds(steps *
                       (p.alpha.value() + chunk / p.bandwidth.bytes_per_second()));
}

util::Seconds recursive_doubling_closed_form(std::uint32_t num_nodes,
                                             util::Bytes payload,
                                             const AlphaBetaParams& p) {
  const double steps = util::ceil_log2(num_nodes);
  return util::Seconds(
      steps * (p.alpha.value() +
               payload.as_double() / p.bandwidth.bytes_per_second()));
}

}  // namespace wrht::coll
