#include "coll/algorithms.hpp"

namespace wrht::coll {

// Bandwidth-optimal ring all-reduce (Patarasuk & Yuan, JPDC'09).
//
// The payload is split into N chunks.  Reduce-scatter phase: in step
// s (0 <= s < N-1) node i sends chunk (i - s) mod N to node (i + 1) mod N,
// which accumulates it.  After N-1 steps node i holds the fully reduced
// chunk (i + 1) mod N.  All-gather phase: in step s node i forwards chunk
// (i + 1 - s) mod N to node (i + 1) mod N, which overwrites its copy.
Schedule ring_allreduce(std::uint32_t num_nodes) {
  const std::uint32_t n = num_nodes;
  Schedule schedule("ring", n, n);

  const auto chunk_at = [n](std::uint32_t node, std::uint32_t back) {
    return (node + n - back % n) % n;
  };

  // Reduce-scatter.
  for (std::uint32_t s = 0; s + 1 < n; ++s) {
    schedule.add_step();
    for (std::uint32_t i = 0; i < n; ++i) {
      schedule.add_transfer(Transfer{
          i, (i + 1) % n, chunk_at(i, s), TransferOp::kReduce});
    }
  }
  // All-gather.
  for (std::uint32_t s = 0; s + 1 < n; ++s) {
    schedule.add_step();
    for (std::uint32_t i = 0; i < n; ++i) {
      // Node i holds fully-reduced chunk (i+1) after reduce-scatter and has
      // received chunks (i+1-1), (i+1-2), ... in earlier all-gather steps.
      const std::uint32_t chunk = (i + 1 + n - s % n) % n;
      schedule.add_transfer(Transfer{i, (i + 1) % n, chunk, TransferOp::kCopy});
    }
  }
  return schedule;
}

}  // namespace wrht::coll
