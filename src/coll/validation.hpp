// Structural schedule validation and per-step load accounting.
//
// The functional executor proves semantic correctness; these checks catch
// *physical* nonsense that would still compute the right answer: two copies
// racing into the same buffer, a node exceeding its port count, etc.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/schedule.hpp"

namespace wrht::coll {

struct ValidationIssue {
  std::size_t step = 0;
  std::string description;
};

struct ValidationReport {
  std::vector<ValidationIssue> errors;
  std::vector<ValidationIssue> warnings;
  [[nodiscard]] bool ok() const { return errors.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Checks, per step:
///  * no two kCopy transfers write the same (dst, chunk)  -> error
///  * no kCopy and kReduce both write the same (dst, chunk) -> error
///    (the result would depend on apply order)
///  * no duplicate identical transfer                      -> error
/// And reports as warnings:
///  * fan-in > warn_fan_in concurrent incoming transfers at one node
[[nodiscard]] ValidationReport validate(const Schedule& schedule,
                                        std::uint32_t warn_fan_in = 64);

/// Per-node byte load of one step under a single-port model: how many bytes
/// the node sends and receives in that step.
struct NodeLoad {
  util::Bytes sent;
  util::Bytes received;
};

/// Load matrix for step `step` of `schedule` with payload `payload`.
[[nodiscard]] std::vector<NodeLoad> step_loads(const Schedule& schedule,
                                               std::size_t step,
                                               util::Bytes payload);

/// The largest single-node send or receive volume in the step (the
/// single-port bottleneck that determines the step's serialization time).
[[nodiscard]] util::Bytes step_bottleneck_bytes(const Schedule& schedule,
                                                std::size_t step,
                                                util::Bytes payload);

}  // namespace wrht::coll
