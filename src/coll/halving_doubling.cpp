#include "coll/algorithms.hpp"

#include "util/math.hpp"

namespace wrht::coll {
namespace {

// Emits the recursive-halving reduce-scatter rounds for the power-of-two
// core.  Invariant on exit: chunk c is fully reduced (over the core and any
// folded extras) at node c.
void emit_reduce_scatter(Schedule& schedule, std::uint32_t core) {
  for (std::uint32_t g = core; g > 1; g /= 2) {
    schedule.add_step();
    const std::uint32_t half = g / 2;
    for (std::uint32_t block = 0; block < core; block += g) {
      for (std::uint32_t i = block; i < block + half; ++i) {
        const std::uint32_t partner = i + half;
        // The lower node hands the upper chunk sub-range to its partner and
        // vice versa; both accumulate.
        for (std::uint32_t c = block + half; c < block + g; ++c) {
          schedule.add_transfer(Transfer{i, partner, c, TransferOp::kReduce});
        }
        for (std::uint32_t c = block; c < block + half; ++c) {
          schedule.add_transfer(Transfer{partner, i, c, TransferOp::kReduce});
        }
      }
    }
  }
}

// All-gather by recursive doubling: mirrors the halving rounds in reverse
// with copies, growing each node's fully-reduced range from its own chunk to
// the whole vector.
void emit_all_gather(Schedule& schedule, std::uint32_t core) {
  for (std::uint32_t g = 2; g <= core; g *= 2) {
    schedule.add_step();
    const std::uint32_t half = g / 2;
    for (std::uint32_t block = 0; block < core; block += g) {
      for (std::uint32_t i = block; i < block + half; ++i) {
        const std::uint32_t partner = i + half;
        for (std::uint32_t c = block; c < block + half; ++c) {
          schedule.add_transfer(Transfer{i, partner, c, TransferOp::kCopy});
        }
        for (std::uint32_t c = block + half; c < block + g; ++c) {
          schedule.add_transfer(Transfer{partner, i, c, TransferOp::kCopy});
        }
      }
    }
  }
}

}  // namespace

// Rabenseifner's algorithm: reduce-scatter by recursive halving followed by
// all-gather by recursive doubling.  Chunk granularity equals the
// power-of-two core size; non-powers of two fold/unfold their extras exactly
// like recursive_doubling does.
Schedule halving_doubling(std::uint32_t num_nodes) {
  const std::uint32_t n = num_nodes;
  const std::uint32_t core = std::uint32_t{1} << util::floor_log2(n);
  const std::uint32_t extras = n - core;

  Schedule schedule("halving_doubling", n, core);

  if (extras > 0) {
    schedule.add_step();
    for (std::uint32_t j = 0; j < extras; ++j) {
      for (std::uint32_t c = 0; c < core; ++c) {
        schedule.add_transfer(Transfer{core + j, j, c, TransferOp::kReduce});
      }
    }
  }

  emit_reduce_scatter(schedule, core);
  emit_all_gather(schedule, core);

  if (extras > 0) {
    schedule.add_step();
    for (std::uint32_t j = 0; j < extras; ++j) {
      for (std::uint32_t c = 0; c < core; ++c) {
        schedule.add_transfer(Transfer{j, core + j, c, TransferOp::kCopy});
      }
    }
  }
  return schedule;
}

}  // namespace wrht::coll
