#include "coll/oracle.hpp"

#include <vector>

#include "coll/executor.hpp"
#include "util/random.hpp"

namespace wrht::coll {
namespace {

std::vector<std::vector<double>> random_payloads(std::uint32_t num_nodes,
                                                 std::size_t payload_len,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> data(num_nodes);
  for (auto& vector : data) {
    vector.resize(payload_len);
    for (double& x : vector) {
      x = static_cast<double>(rng.next_below(1000));
    }
  }
  return data;
}

struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};

ChunkRange chunk_range(const Schedule& schedule, std::size_t payload_len,
                       ChunkId chunk) {
  const std::uint64_t offset =
      split_part_offset(payload_len, schedule.num_chunks(), chunk);
  const std::uint64_t size =
      split_part_size(payload_len, schedule.num_chunks(), chunk);
  return ChunkRange{static_cast<std::size_t>(offset),
                    static_cast<std::size_t>(offset + size)};
}

OracleResult mismatch(const Schedule& schedule, const std::string& what,
                      NodeId node, std::size_t element) {
  return OracleResult{
      false, "schedule '" + schedule.name() + "': " + what + " at node " +
                 std::to_string(node) + " element " + std::to_string(element)};
}

}  // namespace

OracleResult Oracle::verify_broadcast(const Schedule& schedule, NodeId root,
                                      std::size_t payload_len,
                                      std::uint64_t seed) {
  auto data = random_payloads(schedule.num_nodes(), payload_len, seed);
  const std::vector<double> expected = data[root];
  FunctionalExecutor::run(schedule, data);
  for (NodeId node = 0; node < schedule.num_nodes(); ++node) {
    for (std::size_t e = 0; e < payload_len; ++e) {
      if (data[node][e] != expected[e]) {
        return mismatch(schedule, "broadcast mismatch", node, e);
      }
    }
  }
  return OracleResult{};
}

OracleResult Oracle::verify_reduce(const Schedule& schedule, NodeId root,
                                   std::size_t payload_len,
                                   std::uint64_t seed) {
  auto data = random_payloads(schedule.num_nodes(), payload_len, seed);
  std::vector<double> expected(payload_len, 0.0);
  for (const auto& vector : data) {
    for (std::size_t e = 0; e < payload_len; ++e) {
      expected[e] += vector[e];
    }
  }
  FunctionalExecutor::run(schedule, data);
  for (std::size_t e = 0; e < payload_len; ++e) {
    if (data[root][e] != expected[e]) {
      return mismatch(schedule, "reduce mismatch", root, e);
    }
  }
  return OracleResult{};
}

OracleResult Oracle::verify_scatter(const Schedule& schedule, NodeId root,
                                    std::size_t payload_len,
                                    std::uint64_t seed) {
  auto data = random_payloads(schedule.num_nodes(), payload_len, seed);
  const std::vector<double> root_initial = data[root];
  FunctionalExecutor::run(schedule, data);
  for (NodeId node = 0; node < schedule.num_nodes(); ++node) {
    const ChunkRange r = chunk_range(schedule, payload_len, node);
    for (std::size_t e = r.begin; e < r.end; ++e) {
      if (data[node][e] != root_initial[e]) {
        return mismatch(schedule, "scatter mismatch", node, e);
      }
    }
  }
  return OracleResult{};
}

OracleResult Oracle::verify_gather(const Schedule& schedule, NodeId root,
                                   std::size_t payload_len,
                                   std::uint64_t seed) {
  auto data = random_payloads(schedule.num_nodes(), payload_len, seed);
  const auto initial = data;
  FunctionalExecutor::run(schedule, data);
  for (NodeId node = 0; node < schedule.num_nodes(); ++node) {
    const ChunkRange r = chunk_range(schedule, payload_len, node);
    for (std::size_t e = r.begin; e < r.end; ++e) {
      if (data[root][e] != initial[node][e]) {
        return mismatch(schedule, "gather mismatch", node, e);
      }
    }
  }
  return OracleResult{};
}

OracleResult Oracle::verify_allgather(const Schedule& schedule,
                                      std::size_t payload_len,
                                      std::uint64_t seed) {
  auto data = random_payloads(schedule.num_nodes(), payload_len, seed);
  const auto initial = data;
  FunctionalExecutor::run(schedule, data);
  for (NodeId owner = 0; owner < schedule.num_nodes(); ++owner) {
    const ChunkRange r = chunk_range(schedule, payload_len, owner);
    for (NodeId node = 0; node < schedule.num_nodes(); ++node) {
      for (std::size_t e = r.begin; e < r.end; ++e) {
        if (data[node][e] != initial[owner][e]) {
          return mismatch(schedule, "allgather mismatch", node, e);
        }
      }
    }
  }
  return OracleResult{};
}

OracleResult Oracle::verify_reduce_scatter(const Schedule& schedule,
                                           std::size_t payload_len,
                                           std::uint64_t seed) {
  auto data = random_payloads(schedule.num_nodes(), payload_len, seed);
  std::vector<double> expected(payload_len, 0.0);
  for (const auto& vector : data) {
    for (std::size_t e = 0; e < payload_len; ++e) {
      expected[e] += vector[e];
    }
  }
  FunctionalExecutor::run(schedule, data);
  for (NodeId node = 0; node < schedule.num_nodes(); ++node) {
    const ChunkRange r = chunk_range(schedule, payload_len, node);
    for (std::size_t e = r.begin; e < r.end; ++e) {
      if (data[node][e] != expected[e]) {
        return mismatch(schedule, "reduce-scatter mismatch", node, e);
      }
    }
  }
  return OracleResult{};
}

OracleResult Oracle::verify_allreduce_among(
    const Schedule& schedule, const std::vector<NodeId>& participants,
    std::size_t payload_len, std::uint64_t seed) {
  auto data = random_payloads(schedule.num_nodes(), payload_len, seed);
  const auto initial = data;
  std::vector<double> expected(payload_len, 0.0);
  std::vector<bool> is_participant(schedule.num_nodes(), false);
  for (const NodeId node : participants) {
    is_participant[node] = true;
    for (std::size_t e = 0; e < payload_len; ++e) {
      expected[e] += data[node][e];
    }
  }
  FunctionalExecutor::run(schedule, data);
  for (NodeId node = 0; node < schedule.num_nodes(); ++node) {
    for (std::size_t e = 0; e < payload_len; ++e) {
      if (is_participant[node]) {
        if (data[node][e] != expected[e]) {
          return mismatch(schedule, "subset all-reduce mismatch", node, e);
        }
      } else if (data[node][e] != initial[node][e]) {
        return mismatch(schedule, "non-participant was written", node, e);
      }
    }
  }
  return OracleResult{};
}

OracleResult Oracle::verify_allreduce_among(
    const Schedule& schedule, const std::vector<NodeId>& contributors,
    const std::vector<NodeId>& recipients, std::size_t payload_len,
    std::uint64_t seed) {
  auto data = random_payloads(schedule.num_nodes(), payload_len, seed);
  const auto initial = data;
  std::vector<double> expected(payload_len, 0.0);
  std::vector<bool> is_contributor(schedule.num_nodes(), false);
  std::vector<bool> is_recipient(schedule.num_nodes(), false);
  for (const NodeId node : contributors) {
    is_contributor[node] = true;
    for (std::size_t e = 0; e < payload_len; ++e) {
      expected[e] += data[node][e];
    }
  }
  for (const NodeId node : recipients) {
    is_recipient[node] = true;
  }
  FunctionalExecutor::run(schedule, data);
  for (NodeId node = 0; node < schedule.num_nodes(); ++node) {
    for (std::size_t e = 0; e < payload_len; ++e) {
      if (is_recipient[node]) {
        if (data[node][e] != expected[e]) {
          return mismatch(schedule, "survivor all-reduce mismatch", node, e);
        }
      } else if (!is_contributor[node] &&
                 data[node][e] != initial[node][e]) {
        return mismatch(schedule, "non-participant was written", node, e);
      }
      // Evicted contributors (contributor, not recipient): unspecified.
    }
  }
  return OracleResult{};
}

}  // namespace wrht::coll
