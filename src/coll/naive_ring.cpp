#include "coll/algorithms.hpp"

namespace wrht::coll {

// Unchunked sequential ring: accumulate the full vector hop by hop around
// the ring (N-1 steps), then circulate the result back (N-1 steps).  This is
// the textbook "bad" ring all-reduce used as a lower baseline: same step
// count as the chunked ring but N x the bytes per step and no pipelining.
Schedule naive_ring(std::uint32_t num_nodes) {
  const std::uint32_t n = num_nodes;
  Schedule schedule("naive_ring", n, 1);

  for (std::uint32_t s = 0; s + 1 < n; ++s) {
    schedule.add_step();
    schedule.add_transfer(Transfer{s, s + 1, 0, TransferOp::kReduce});
  }
  for (std::uint32_t s = 0; s + 1 < n; ++s) {
    schedule.add_step();
    const std::uint32_t src = (n - 1 + s) % n;
    schedule.add_transfer(Transfer{src, (src + 1) % n, 0, TransferOp::kCopy});
  }
  return schedule;
}

}  // namespace wrht::coll
