#include "coll/validation.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace wrht::coll {

std::string ValidationReport::to_string() const {
  std::string out;
  for (const ValidationIssue& e : errors) {
    out += "ERROR step " + std::to_string(e.step) + ": " + e.description + "\n";
  }
  for (const ValidationIssue& w : warnings) {
    out += "WARN step " + std::to_string(w.step) + ": " + w.description + "\n";
  }
  if (out.empty()) out = "ok\n";
  return out;
}

ValidationReport validate(const Schedule& schedule, std::uint32_t warn_fan_in) {
  ValidationReport report;
  for (std::size_t s = 0; s < schedule.steps().size(); ++s) {
    const Step& step = schedule.steps()[s];

    std::set<std::tuple<NodeId, NodeId, ChunkId, TransferOp>> seen;
    // (dst, chunk) -> has_copy, has_reduce
    std::map<std::pair<NodeId, ChunkId>, std::pair<bool, bool>> writers;
    std::map<NodeId, std::uint32_t> fan_in;

    for (const Transfer& t : step.transfers) {
      if (!seen.insert({t.src, t.dst, t.chunk, t.op}).second) {
        report.errors.push_back(
            {s, "duplicate transfer " + std::to_string(t.src) + "->" +
                    std::to_string(t.dst) + " chunk " + std::to_string(t.chunk)});
      }
      auto& [has_copy, has_reduce] = writers[{t.dst, t.chunk}];
      if (t.op == TransferOp::kCopy) {
        if (has_copy) {
          report.errors.push_back(
              {s, "two copies write node " + std::to_string(t.dst) +
                      " chunk " + std::to_string(t.chunk)});
        }
        if (has_reduce) {
          report.errors.push_back(
              {s, "copy and reduce both write node " + std::to_string(t.dst) +
                      " chunk " + std::to_string(t.chunk)});
        }
        has_copy = true;
      } else {
        if (has_copy) {
          report.errors.push_back(
              {s, "reduce and copy both write node " + std::to_string(t.dst) +
                      " chunk " + std::to_string(t.chunk)});
        }
        has_reduce = true;
      }
      fan_in[t.dst]++;
    }

    for (const auto& [node, count] : fan_in) {
      if (count > warn_fan_in) {
        report.warnings.push_back(
            {s, "node " + std::to_string(node) + " receives " +
                    std::to_string(count) + " concurrent transfers"});
      }
    }
  }
  return report;
}

std::vector<NodeLoad> step_loads(const Schedule& schedule, std::size_t step,
                                 util::Bytes payload) {
  std::vector<NodeLoad> loads(schedule.num_nodes());
  for (const Transfer& t : schedule.steps()[step].transfers) {
    const util::Bytes bytes = schedule.chunk_bytes(payload, t.chunk);
    loads[t.src].sent += bytes;
    loads[t.dst].received += bytes;
  }
  return loads;
}

util::Bytes step_bottleneck_bytes(const Schedule& schedule, std::size_t step,
                                  util::Bytes payload) {
  util::Bytes worst;
  for (const NodeLoad& load : step_loads(schedule, step, payload)) {
    worst = std::max({worst, load.sent, load.received});
  }
  return worst;
}

}  // namespace wrht::coll
