#include "coll/algorithms.hpp"

#include "util/math.hpp"

namespace wrht::coll {

// Binomial-tree all-reduce: reduce to root 0 in ceil(log2 N) rounds, then
// broadcast back down the same tree.  Works for any N (senders that would
// fall outside [0, N) simply do not exist).
Schedule binomial_tree(std::uint32_t num_nodes) {
  const std::uint32_t n = num_nodes;
  const unsigned rounds = util::ceil_log2(n);

  Schedule schedule("binomial_tree", n, 1);

  // Reduce: in round r, every node whose low r+1 bits equal 2^r folds its
  // partial into the node 2^r below it.
  for (unsigned r = 0; r < rounds; ++r) {
    const std::uint32_t bit = std::uint32_t{1} << r;
    Step& step = schedule.add_step();
    (void)step;
    for (std::uint32_t i = bit; i < n; ++i) {
      if ((i & ((bit << 1) - 1)) == bit) {
        schedule.add_transfer(Transfer{i, i - bit, 0, TransferOp::kReduce});
      }
    }
  }

  // Broadcast: mirror rounds in reverse, copying down the tree.
  for (unsigned r = rounds; r-- > 0;) {
    const std::uint32_t bit = std::uint32_t{1} << r;
    schedule.add_step();
    for (std::uint32_t i = 0; i + bit < n; ++i) {
      if ((i & ((bit << 1) - 1)) == 0) {
        schedule.add_transfer(Transfer{i, i + bit, 0, TransferOp::kCopy});
      }
    }
  }
  return schedule;
}

}  // namespace wrht::coll
