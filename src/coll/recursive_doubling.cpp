#include "coll/algorithms.hpp"

#include "util/math.hpp"

namespace wrht::coll {

// Recursive-doubling all-reduce on the full vector (single chunk).
//
// For N = 2^k: in round r, node i exchanges its running partial sum with
// partner i XOR 2^r; both accumulate.  After k rounds every node holds the
// total.  For non-powers of two, the standard fold: the top r = N - 2^k
// "extra" nodes first fold their contribution into their partner below, the
// power-of-two core runs recursive doubling, and a final unfold copies the
// result back out.
Schedule recursive_doubling(std::uint32_t num_nodes) {
  const std::uint32_t n = num_nodes;
  const std::uint32_t core =
      std::uint32_t{1} << util::floor_log2(n);  // largest power of two <= n
  const std::uint32_t extras = n - core;

  Schedule schedule("recursive_doubling", n, 1);

  if (extras > 0) {
    schedule.add_step();
    for (std::uint32_t j = 0; j < extras; ++j) {
      schedule.add_transfer(
          Transfer{core + j, j, 0, TransferOp::kReduce});
    }
  }

  for (std::uint32_t bit = 1; bit < core; bit <<= 1) {
    schedule.add_step();
    for (std::uint32_t i = 0; i < core; ++i) {
      schedule.add_transfer(Transfer{i, i ^ bit, 0, TransferOp::kReduce});
    }
  }

  if (extras > 0) {
    schedule.add_step();
    for (std::uint32_t j = 0; j < extras; ++j) {
      schedule.add_transfer(Transfer{j, core + j, 0, TransferOp::kCopy});
    }
  }
  return schedule;
}

}  // namespace wrht::coll
