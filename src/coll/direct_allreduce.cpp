#include "coll/algorithms.hpp"

namespace wrht::coll {

// Single-step all-to-all: every node sends its full contribution to every
// other node, which accumulates all N-1 incoming vectors.  Minimal step
// count (1), maximal traffic (N(N-1) full-vector transfers); the extreme
// point of the latency/bandwidth trade-off space.
Schedule direct_allreduce(std::uint32_t num_nodes) {
  Schedule schedule("direct", num_nodes, 1);
  schedule.add_step();
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    for (std::uint32_t j = 0; j < num_nodes; ++j) {
      if (i == j) continue;
      schedule.add_transfer(Transfer{i, j, 0, TransferOp::kReduce});
    }
  }
  return schedule;
}

}  // namespace wrht::coll
