#include "coll/executor.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/random.hpp"

namespace wrht::coll {
namespace {

struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};

ChunkRange chunk_range(const Schedule& schedule, std::size_t payload_len,
                       ChunkId chunk) {
  const std::uint64_t offset =
      split_part_offset(payload_len, schedule.num_chunks(), chunk);
  const std::uint64_t size =
      split_part_size(payload_len, schedule.num_chunks(), chunk);
  return ChunkRange{static_cast<std::size_t>(offset),
                    static_cast<std::size_t>(offset + size)};
}

}  // namespace

void FunctionalExecutor::run(const Schedule& schedule,
                             std::vector<std::vector<double>>& node_data) {
  WRHT_REQUIRE(node_data.size() == schedule.num_nodes(),
               "FunctionalExecutor: " << node_data.size()
                                      << " payload vectors for "
                                      << schedule.num_nodes() << " nodes");
  const std::size_t payload_len = node_data.empty() ? 0 : node_data[0].size();
  for (const auto& v : node_data) {
    WRHT_REQUIRE(v.size() == payload_len,
                 "FunctionalExecutor: ragged payload vectors");
  }
  WRHT_REQUIRE(payload_len >= schedule.num_chunks(),
               "FunctionalExecutor: payload length "
                   << payload_len << " < num_chunks "
                   << schedule.num_chunks());

  std::vector<double> staged;  // flattened pre-step copies of sent chunks
  for (const Step& step : schedule.steps()) {
    // Snapshot every sent chunk before mutating anything, so simultaneous
    // exchanges (e.g. recursive doubling pairs) see pre-step values.
    staged.clear();
    std::vector<ChunkRange> ranges;
    ranges.reserve(step.transfers.size());
    for (const Transfer& t : step.transfers) {
      const ChunkRange r = chunk_range(schedule, payload_len, t.chunk);
      ranges.push_back(r);
      const std::vector<double>& src = node_data[t.src];
      staged.insert(staged.end(), src.begin() + static_cast<std::ptrdiff_t>(r.begin),
                    src.begin() + static_cast<std::ptrdiff_t>(r.end));
    }

    std::size_t cursor = 0;
    for (std::size_t k = 0; k < step.transfers.size(); ++k) {
      const Transfer& t = step.transfers[k];
      const ChunkRange r = ranges[k];
      std::vector<double>& dst = node_data[t.dst];
      if (t.op == TransferOp::kReduce) {
        for (std::size_t e = r.begin; e < r.end; ++e) {
          dst[e] += staged[cursor++];
        }
      } else {
        for (std::size_t e = r.begin; e < r.end; ++e) {
          dst[e] = staged[cursor++];
        }
      }
    }
  }
}

FunctionalExecutor::VerifyResult FunctionalExecutor::verify_allreduce_detailed(
    const Schedule& schedule, std::size_t payload_len, std::uint64_t seed) {
  const std::uint32_t n = schedule.num_nodes();
  util::Rng rng(seed);

  std::vector<std::vector<double>> data(n);
  std::vector<double> expected(payload_len, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    data[i].resize(payload_len);
    for (std::size_t e = 0; e < payload_len; ++e) {
      // Small integers: the sums are exact in double precision, so the
      // comparison below can be exact too.
      data[i][e] = static_cast<double>(rng.next_below(1000));
      expected[e] += data[i][e];
    }
  }

  run(schedule, data);

  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::size_t e = 0; e < payload_len; ++e) {
      if (data[i][e] != expected[e]) {
        return VerifyResult{
            false, "schedule '" + schedule.name() + "' N=" + std::to_string(n) +
                       ": node " + std::to_string(i) + " element " +
                       std::to_string(e) + " = " + std::to_string(data[i][e]) +
                       ", expected " + std::to_string(expected[e])};
      }
    }
  }
  return VerifyResult{};
}

bool FunctionalExecutor::verify_allreduce(const Schedule& schedule,
                                          std::size_t payload_len,
                                          std::uint64_t seed) {
  return verify_allreduce_detailed(schedule, payload_len, seed).ok;
}

}  // namespace wrht::coll
