// Schedule intermediate representation for collective operations.
//
// A Schedule is a sequence of synchronous steps; each step is a set of
// point-to-point transfers that execute concurrently.  A transfer moves one
// *chunk* (a contiguous slice of the payload vector; the builder picks the
// chunk granularity) from src to dst and either accumulates into the
// destination buffer (kReduce) or overwrites it (kCopy).
//
// The IR carries real data semantics, so any schedule can be executed by the
// FunctionalExecutor on actual payload vectors and checked against the
// mathematical definition of all-reduce.  Timing layers (electrical flow
// simulation, optical DES, analytic alpha-beta) consume the same IR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace wrht::coll {

using NodeId = std::uint32_t;
using ChunkId = std::uint32_t;

enum class TransferOp : std::uint8_t {
  kReduce,  // dst_chunk += src_chunk (element-wise)
  kCopy,    // dst_chunk  = src_chunk
};

[[nodiscard]] const char* transfer_op_name(TransferOp op);

struct Transfer {
  NodeId src = 0;
  NodeId dst = 0;
  ChunkId chunk = 0;
  TransferOp op = TransferOp::kReduce;

  friend bool operator==(const Transfer&, const Transfer&) = default;
};

struct Step {
  std::vector<Transfer> transfers;
};

class Schedule {
 public:
  /// Empty placeholder (0 nodes, 1 chunk) so schedule-holding value types
  /// (AnnotatedSchedule, WrhtBuild, the runtime's Execution) are default
  /// constructible; real schedules use the validating named constructor.
  Schedule() : num_nodes_(0), num_chunks_(1) {}
  Schedule(std::string name, std::uint32_t num_nodes, std::uint32_t num_chunks);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::uint32_t num_chunks() const { return num_chunks_; }
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] std::size_t num_steps() const { return steps_.size(); }
  [[nodiscard]] std::size_t total_transfers() const;

  Step& add_step();
  void add_transfer(Transfer t);  // into the most recent step

  /// Bytes of chunk `chunk` when a payload of `total` bytes is split into
  /// num_chunks() nearly-equal chunks (the first `total % num_chunks` chunks
  /// are one byte larger).
  [[nodiscard]] util::Bytes chunk_bytes(util::Bytes total,
                                        ChunkId chunk) const;

  /// Sum over all transfers of the transferred bytes for a given payload.
  [[nodiscard]] util::Bytes total_traffic(util::Bytes payload) const;

  /// Human-readable step-by-step dump (for the explorer example and debug).
  [[nodiscard]] std::string to_string() const;

 private:
  std::string name_;
  std::uint32_t num_nodes_;
  std::uint32_t num_chunks_;
  std::vector<Step> steps_;
};

/// Nearly-equal integer split helper shared with the executors: size of part
/// `index` when `total` items are split into `parts` parts.
[[nodiscard]] std::uint64_t split_part_size(std::uint64_t total,
                                            std::uint32_t parts,
                                            std::uint32_t index);

/// Offset of part `index` under the same split.
[[nodiscard]] std::uint64_t split_part_offset(std::uint64_t total,
                                              std::uint32_t parts,
                                              std::uint32_t index);

}  // namespace wrht::coll
