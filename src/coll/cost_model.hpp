// Analytic alpha-beta cost model for schedules on a generic network.
//
// Each step costs `alpha` (latency/synchronization) plus the serialization
// time of the step's single-port bottleneck (the busiest node's send or
// receive volume) at bandwidth `beta_bandwidth`.  This is the standard model
// under which ring all-reduce is bandwidth-optimal and recursive doubling is
// latency-optimal; the simulators refine it with topology and contention.
#pragma once

#include "coll/schedule.hpp"
#include "coll/validation.hpp"
#include "util/units.hpp"

namespace wrht::coll {

struct AlphaBetaParams {
  util::Seconds alpha{25e-6};
  util::Bandwidth bandwidth = util::gbps(10.0);
};

struct CostBreakdown {
  util::Seconds total;
  util::Seconds latency_part;   // steps * alpha
  util::Seconds bandwidth_part; // sum of bottleneck serialization times
  std::size_t steps = 0;
  util::Bytes total_traffic;
};

[[nodiscard]] CostBreakdown alpha_beta_cost(const Schedule& schedule,
                                            util::Bytes payload,
                                            const AlphaBetaParams& params);

/// Closed forms used to cross-check the model against the literature.
/// Ring all-reduce: 2(N-1) * (alpha + D/(N*B)) (up to rounding of D/N).
[[nodiscard]] util::Seconds ring_allreduce_closed_form(
    std::uint32_t num_nodes, util::Bytes payload, const AlphaBetaParams& p);
/// Recursive doubling (power of two): log2(N) * (alpha + D/B).
[[nodiscard]] util::Seconds recursive_doubling_closed_form(
    std::uint32_t num_nodes, util::Bytes payload, const AlphaBetaParams& p);

}  // namespace wrht::coll
