// Correctness oracles for every collective primitive: each initializes real
// payload vectors, executes the schedule with the FunctionalExecutor, and
// compares the outcome against the mathematical definition of the
// collective.  Small-integer payloads keep double arithmetic exact, so all
// comparisons are equality, not tolerance.
#pragma once

#include <cstdint>
#include <string>

#include "coll/schedule.hpp"

namespace wrht::coll {

struct OracleResult {
  bool ok = true;
  std::string message;
};

class Oracle {
 public:
  /// Every node ends with the root's initial vector.
  static OracleResult verify_broadcast(const Schedule& schedule, NodeId root,
                                       std::size_t payload_len,
                                       std::uint64_t seed = 1);

  /// The root ends with the element-wise sum of all initial vectors
  /// (other nodes' final contents are unspecified).
  static OracleResult verify_reduce(const Schedule& schedule, NodeId root,
                                    std::size_t payload_len,
                                    std::uint64_t seed = 2);

  /// Node i ends with the root's chunk i (chunks = N).
  static OracleResult verify_scatter(const Schedule& schedule, NodeId root,
                                     std::size_t payload_len,
                                     std::uint64_t seed = 3);

  /// The root's chunk i ends equal to node i's initial chunk i.
  static OracleResult verify_gather(const Schedule& schedule, NodeId root,
                                    std::size_t payload_len,
                                    std::uint64_t seed = 4);

  /// Every node's chunk i ends equal to node i's initial chunk i.
  static OracleResult verify_allgather(const Schedule& schedule,
                                       std::size_t payload_len,
                                       std::uint64_t seed = 5);

  /// Node i's chunk i ends equal to the sum over nodes of initial chunk i.
  static OracleResult verify_reduce_scatter(const Schedule& schedule,
                                            std::size_t payload_len,
                                            std::uint64_t seed = 6);

  /// All-reduce restricted to a subset: every participant ends with the
  /// element-wise sum over the participants' initial vectors, and every
  /// non-participant's vector is untouched (elastic-membership schedules).
  static OracleResult verify_allreduce_among(
      const Schedule& schedule, const std::vector<NodeId>& participants,
      std::size_t payload_len, std::uint64_t seed = 7);

  /// Fault variant: the sum is taken over `contributors`, but only
  /// `recipients` (a subset of the contributors — the survivors of a
  /// mid-flight eviction) must end holding it.  Nodes outside the
  /// contributor set must be untouched; evicted contributors' final state
  /// is unspecified (their hardware is gone).
  static OracleResult verify_allreduce_among(
      const Schedule& schedule, const std::vector<NodeId>& contributors,
      const std::vector<NodeId>& recipients, std::size_t payload_len,
      std::uint64_t seed = 7);
};

}  // namespace wrht::coll
