// Functional executor: runs a Schedule on real payload vectors.
//
// This is the correctness oracle for every algorithm in the repository,
// including Wrht.  Each node holds a payload vector; transfers within a step
// read the *pre-step* values (MPI superstep semantics: all sends of a step
// are posted against the state at the start of the step), then reductions
// and copies are applied.  After a correct all-reduce schedule, every node's
// vector equals the element-wise sum of all initial vectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/schedule.hpp"

namespace wrht::coll {

class FunctionalExecutor {
 public:
  /// Executes `schedule` in place on `node_data` (one vector per node, all
  /// the same length, length >= num_chunks).  Aborts on shape mismatch.
  static void run(const Schedule& schedule,
                  std::vector<std::vector<double>>& node_data);

  /// Convenience oracle: generates deterministic pseudo-random payloads of
  /// `payload_len` elements, runs the schedule, and returns true iff every
  /// node ends with the element-wise sum (within floating-point tolerance).
  [[nodiscard]] static bool verify_allreduce(const Schedule& schedule,
                                             std::size_t payload_len,
                                             std::uint64_t seed = 12345);

  /// Like verify_allreduce but reports the first mismatch found.
  struct VerifyResult {
    bool ok = true;
    std::string message;
  };
  [[nodiscard]] static VerifyResult verify_allreduce_detailed(
      const Schedule& schedule, std::size_t payload_len,
      std::uint64_t seed = 12345);
};

}  // namespace wrht::coll
