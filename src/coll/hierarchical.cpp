#include <algorithm>

#include "coll/algorithms.hpp"
#include "coll/primitives.hpp"
#include "util/math.hpp"

namespace wrht::coll {
namespace {

// Append `source`'s steps to `target`, mapping node ids through `id_of` and
// aligning step s of the source with target step `first_step + s` (creating
// steps as needed).  This is how per-group sub-schedules run in parallel:
// every group's round r lands in the same global step.
void splice(Schedule& target, const Schedule& source, std::size_t first_step,
            const std::vector<NodeId>& id_of) {
  for (std::size_t s = 0; s < source.num_steps(); ++s) {
    while (target.num_steps() < first_step + s + 1) {
      target.add_step();
    }
    // add_transfer appends to the most recent step; since we splice groups
    // one after another over the same step range, we must index steps
    // explicitly — so extend Schedule usage: append to the back only.
    // To keep the IR simple, splice is only called with first_step + s ==
    // target.num_steps() - 1 (callers iterate rounds outermost).
    for (const Transfer& t : source.steps()[s].transfers) {
      target.add_transfer(Transfer{id_of[t.src], id_of[t.dst], t.chunk, t.op});
    }
  }
}

}  // namespace

Schedule hierarchical_allreduce(std::uint32_t num_nodes,
                                std::uint32_t group_size) {
  const std::uint32_t n = num_nodes;
  const std::uint32_t g = std::max(1u, std::min(group_size, n));
  const std::uint32_t num_groups =
      static_cast<std::uint32_t>(util::ceil_div(n, g));

  Schedule schedule("hierarchical_g" + std::to_string(g), n, 1);

  struct GroupInfo {
    std::uint32_t start = 0;
    std::uint32_t size = 0;
    std::vector<NodeId> ids;  // logical -> physical
  };
  std::vector<GroupInfo> groups;
  std::vector<NodeId> leaders;
  for (std::uint32_t start = 0; start < n; start += g) {
    GroupInfo info;
    info.start = start;
    info.size = std::min(g, n - start);
    for (std::uint32_t i = 0; i < info.size; ++i) {
      info.ids.push_back(start + i);
    }
    leaders.push_back(start);
    groups.push_back(std::move(info));
  }

  // Phase A: intra-group reduce to each leader, groups in parallel.  All
  // sub-schedules are generated once; rounds are interleaved so that round
  // r of every group shares a global step.
  std::vector<Schedule> intra_reduce;
  std::size_t reduce_rounds = 0;
  for (const GroupInfo& group : groups) {
    if (group.size < 2) {
      intra_reduce.emplace_back("noop", 2, 1);  // placeholder, no steps
      continue;
    }
    intra_reduce.push_back(reduce_binomial(group.size, 0));
    reduce_rounds = std::max(reduce_rounds, intra_reduce.back().num_steps());
  }
  for (std::size_t r = 0; r < reduce_rounds; ++r) {
    schedule.add_step();
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const Schedule& sub = intra_reduce[gi];
      if (groups[gi].size < 2 || r >= sub.num_steps()) continue;
      for (const Transfer& t : sub.steps()[r].transfers) {
        schedule.add_transfer(Transfer{groups[gi].ids[t.src],
                                       groups[gi].ids[t.dst], 0, t.op});
      }
    }
  }

  // Phase B: leaders all-reduce among themselves by recursive doubling.
  if (num_groups > 1) {
    const Schedule among_leaders = recursive_doubling(num_groups);
    splice(schedule, among_leaders, schedule.num_steps(), leaders);
  }

  // Phase C: intra-group broadcast from each leader, groups in parallel.
  std::vector<Schedule> intra_bcast;
  std::size_t bcast_rounds = 0;
  for (const GroupInfo& group : groups) {
    if (group.size < 2) {
      intra_bcast.emplace_back("noop", 2, 1);
      continue;
    }
    intra_bcast.push_back(broadcast_binomial(group.size, 0));
    bcast_rounds = std::max(bcast_rounds, intra_bcast.back().num_steps());
  }
  for (std::size_t r = 0; r < bcast_rounds; ++r) {
    schedule.add_step();
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const Schedule& sub = intra_bcast[gi];
      if (groups[gi].size < 2 || r >= sub.num_steps()) continue;
      for (const Transfer& t : sub.steps()[r].transfers) {
        schedule.add_transfer(Transfer{groups[gi].ids[t.src],
                                       groups[gi].ids[t.dst], 0, t.op});
      }
    }
  }
  return schedule;
}

}  // namespace wrht::coll
