// Baseline all-reduce schedule builders.
//
// Every builder returns a Schedule in the shared IR; correctness of each is
// established by the FunctionalExecutor tests, and timing comes from the
// electrical/optical simulators or the analytic cost models.
//
//   ring_allreduce        Patarasuk & Yuan bandwidth-optimal ring:
//                         N chunks, 2(N-1) steps, each node moves ~2D/N bytes
//                         per step.  The paper's "E-Ring" and "O-Ring".
//   recursive_doubling    log2(N) pairwise-exchange steps on the full vector
//                         (the paper's "RD"); non-powers-of-two handled with
//                         the standard fold/unfold pre- and post-steps.
//   halving_doubling      Rabenseifner reduce-scatter (recursive halving) +
//                         all-gather (recursive doubling); bandwidth optimal
//                         with log2(N) + log2(N) steps.
//   binomial_tree         reduce to a root then broadcast; 2*ceil(log2 N)
//                         steps on the full vector.
//   direct_allreduce      single-step all-to-all exchange of full vectors.
//   naive_ring            unchunked sequential ring reduce + broadcast
//                         (2(N-1) serial steps on the full vector).
#pragma once

#include "coll/schedule.hpp"

namespace wrht::coll {

[[nodiscard]] Schedule ring_allreduce(std::uint32_t num_nodes);
[[nodiscard]] Schedule recursive_doubling(std::uint32_t num_nodes);
[[nodiscard]] Schedule halving_doubling(std::uint32_t num_nodes);
[[nodiscard]] Schedule binomial_tree(std::uint32_t num_nodes);
[[nodiscard]] Schedule direct_allreduce(std::uint32_t num_nodes);
[[nodiscard]] Schedule naive_ring(std::uint32_t num_nodes);

/// Two-level hierarchical all-reduce (the NCCL/Horovod pattern): nodes are
/// cut into consecutive groups of `group_size`; each group binomial-reduces
/// to its leader, the leaders run recursive doubling among themselves, and
/// each leader binomial-broadcasts back into its group.  Groups work in
/// parallel within each step.  group_size >= 1; group_size >= num_nodes
/// degenerates to binomial_tree-like behaviour with a single group.
[[nodiscard]] Schedule hierarchical_allreduce(std::uint32_t num_nodes,
                                              std::uint32_t group_size);

}  // namespace wrht::coll
