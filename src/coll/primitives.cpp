#include "coll/primitives.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace wrht::coll {
namespace {

// All tree builders work on logical ranks with the root at 0 and map back
// to physical ids at emission time.
class Rotation {
 public:
  Rotation(std::uint32_t num_nodes, NodeId root)
      : n_(num_nodes), root_(root) {}
  [[nodiscard]] NodeId physical(std::uint32_t logical) const {
    return (logical + root_) % n_;
  }

 private:
  std::uint32_t n_;
  NodeId root_;
};

}  // namespace

Schedule broadcast_binomial(std::uint32_t num_nodes, NodeId root) {
  const std::uint32_t n = num_nodes;
  const Rotation rotate(n, root);
  Schedule schedule("broadcast_binomial", n, 1);
  const unsigned rounds = util::ceil_log2(n);
  for (unsigned r = rounds; r-- > 0;) {
    const std::uint32_t bit = std::uint32_t{1} << r;
    schedule.add_step();
    for (std::uint32_t i = 0; i + bit < n; ++i) {
      if ((i & ((bit << 1) - 1)) == 0) {
        schedule.add_transfer(Transfer{rotate.physical(i),
                                       rotate.physical(i + bit), 0,
                                       TransferOp::kCopy});
      }
    }
  }
  return schedule;
}

Schedule broadcast_ring_pipelined(std::uint32_t num_nodes, NodeId root) {
  const std::uint32_t n = num_nodes;
  const Rotation rotate(n, root);
  Schedule schedule("broadcast_ring_pipelined", n, n);
  // Chunk c departs the root at step c; the frontier of chunk c at step t
  // is logical node t - c, which forwards to its successor while
  // 0 <= t - c <= n - 2.
  const std::uint32_t last_step = (n - 2) + (n - 1);
  for (std::uint32_t t = 0; t <= last_step; ++t) {
    schedule.add_step();
    for (std::uint32_t c = 0; c < n; ++c) {
      if (t < c) break;  // chunk not yet departed
      const std::uint32_t hop = t - c;
      if (hop > n - 2) continue;  // chunk already delivered everywhere
      schedule.add_transfer(Transfer{rotate.physical(hop),
                                     rotate.physical(hop + 1), c,
                                     TransferOp::kCopy});
    }
  }
  return schedule;
}

Schedule reduce_binomial(std::uint32_t num_nodes, NodeId root) {
  const std::uint32_t n = num_nodes;
  const Rotation rotate(n, root);
  Schedule schedule("reduce_binomial", n, 1);
  const unsigned rounds = util::ceil_log2(n);
  for (unsigned r = 0; r < rounds; ++r) {
    const std::uint32_t bit = std::uint32_t{1} << r;
    schedule.add_step();
    for (std::uint32_t i = bit; i < n; ++i) {
      if ((i & ((bit << 1) - 1)) == bit) {
        schedule.add_transfer(Transfer{rotate.physical(i),
                                       rotate.physical(i - bit), 0,
                                       TransferOp::kReduce});
      }
    }
  }
  return schedule;
}

Schedule scatter_binomial(std::uint32_t num_nodes, NodeId root) {
  const std::uint32_t n = num_nodes;
  const Rotation rotate(n, root);
  Schedule schedule("scatter_binomial", n, n);
  // Chunks are indexed by *physical* destination; logical rank j is due the
  // chunk of physical node rotate.physical(j).  Each round passes the upper
  // half of a subtree root's range to the subtree at distance 2^r.
  const unsigned rounds = util::ceil_log2(n);
  for (unsigned r = rounds; r-- > 0;) {
    const std::uint32_t bit = std::uint32_t{1} << r;
    schedule.add_step();
    for (std::uint32_t i = 0; i + bit < n; ++i) {
      if ((i & ((bit << 1) - 1)) != 0) continue;
      const std::uint32_t range_end = std::min(n, i + (bit << 1));
      for (std::uint32_t j = i + bit; j < range_end; ++j) {
        schedule.add_transfer(Transfer{rotate.physical(i),
                                       rotate.physical(i + bit),
                                       rotate.physical(j), TransferOp::kCopy});
      }
    }
  }
  return schedule;
}

Schedule gather_binomial(std::uint32_t num_nodes, NodeId root) {
  const std::uint32_t n = num_nodes;
  const Rotation rotate(n, root);
  Schedule schedule("gather_binomial", n, n);
  const unsigned rounds = util::ceil_log2(n);
  for (unsigned r = 0; r < rounds; ++r) {
    const std::uint32_t bit = std::uint32_t{1} << r;
    schedule.add_step();
    for (std::uint32_t i = bit; i < n; ++i) {
      if ((i & ((bit << 1) - 1)) != bit) continue;
      // Logical i has accumulated the chunks of logical [i, i + bit).
      const std::uint32_t range_end = std::min(n, i + bit);
      for (std::uint32_t j = i; j < range_end; ++j) {
        schedule.add_transfer(Transfer{rotate.physical(i),
                                       rotate.physical(i - bit),
                                       rotate.physical(j), TransferOp::kCopy});
      }
    }
  }
  return schedule;
}

Schedule allgather_ring(std::uint32_t num_nodes) {
  const std::uint32_t n = num_nodes;
  Schedule schedule("allgather_ring", n, n);
  for (std::uint32_t s = 0; s + 1 < n; ++s) {
    schedule.add_step();
    for (std::uint32_t i = 0; i < n; ++i) {
      schedule.add_transfer(Transfer{i, (i + 1) % n, (i + n - s % n) % n,
                                     TransferOp::kCopy});
    }
  }
  return schedule;
}

Schedule allgather_bruck(std::uint32_t num_nodes) {
  const std::uint32_t n = num_nodes;
  Schedule schedule("allgather_bruck", n, n);
  for (std::uint32_t block = 1; block < n; block <<= 1) {
    schedule.add_step();
    const std::uint32_t send_count = std::min(block, n - block);
    for (std::uint32_t i = 0; i < n; ++i) {
      const NodeId dst = (i + n - block % n) % n;
      for (std::uint32_t j = 0; j < send_count; ++j) {
        schedule.add_transfer(
            Transfer{i, dst, (i + j) % n, TransferOp::kCopy});
      }
    }
  }
  return schedule;
}

Schedule reduce_scatter_ring(std::uint32_t num_nodes) {
  const std::uint32_t n = num_nodes;
  Schedule schedule("reduce_scatter_ring", n, n);
  // Shifted ring reduce-scatter: the fully reduced chunk i lands on node i.
  for (std::uint32_t s = 0; s + 1 < n; ++s) {
    schedule.add_step();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t chunk = (i + n - (s + 1) % n) % n;
      schedule.add_transfer(
          Transfer{i, (i + 1) % n, chunk, TransferOp::kReduce});
    }
  }
  return schedule;
}

}  // namespace wrht::coll
