#include "coll/schedule.hpp"

#include "util/check.hpp"

namespace wrht::coll {

const char* transfer_op_name(TransferOp op) {
  return op == TransferOp::kReduce ? "reduce" : "copy";
}

Schedule::Schedule(std::string name, std::uint32_t num_nodes,
                   std::uint32_t num_chunks)
    : name_(std::move(name)), num_nodes_(num_nodes), num_chunks_(num_chunks) {
  WRHT_REQUIRE(num_nodes >= 2 && num_chunks > 0,
               "Schedule '" << name_ << "': invalid shape (" << num_nodes
                            << " nodes, " << num_chunks << " chunks)");
}

std::size_t Schedule::total_transfers() const {
  std::size_t n = 0;
  for (const Step& s : steps_) n += s.transfers.size();
  return n;
}

Step& Schedule::add_step() {
  steps_.emplace_back();
  return steps_.back();
}

void Schedule::add_transfer(Transfer t) {
  WRHT_REQUIRE(!steps_.empty(),
               "Schedule '" << name_ << "': add_transfer before add_step");
  WRHT_REQUIRE(t.src < num_nodes_ && t.dst < num_nodes_ &&
                   t.chunk < num_chunks_ && t.src != t.dst,
               "Schedule '" << name_ << "': invalid transfer " << t.src << "->"
                            << t.dst << " chunk " << t.chunk << " (N="
                            << num_nodes_ << ")");
  steps_.back().transfers.push_back(t);
}

util::Bytes Schedule::chunk_bytes(util::Bytes total, ChunkId chunk) const {
  return util::Bytes(split_part_size(total.count(), num_chunks_, chunk));
}

util::Bytes Schedule::total_traffic(util::Bytes payload) const {
  util::Bytes sum;
  for (const Step& step : steps_) {
    for (const Transfer& t : step.transfers) {
      sum += chunk_bytes(payload, t.chunk);
    }
  }
  return sum;
}

std::string Schedule::to_string() const {
  std::string out = "schedule '" + name_ + "' N=" +
                    std::to_string(num_nodes_) +
                    " chunks=" + std::to_string(num_chunks_) + " steps=" +
                    std::to_string(steps_.size()) + "\n";
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    out += "  step " + std::to_string(s) + ":";
    for (const Transfer& t : steps_[s].transfers) {
      out += " " + std::to_string(t.src) + "->" + std::to_string(t.dst) +
             "[c" + std::to_string(t.chunk) + "," +
             (t.op == TransferOp::kReduce ? "R" : "C") + "]";
    }
    out += "\n";
  }
  return out;
}

std::uint64_t split_part_size(std::uint64_t total, std::uint32_t parts,
                              std::uint32_t index) {
  WRHT_REQUIRE(parts > 0 && index < parts,
               "split_part_size: index " << index << " out of " << parts
                                         << " parts");
  const std::uint64_t base = total / parts;
  const std::uint64_t remainder = total % parts;
  return base + (index < remainder ? 1 : 0);
}

std::uint64_t split_part_offset(std::uint64_t total, std::uint32_t parts,
                                std::uint32_t index) {
  WRHT_REQUIRE(parts > 0 && index < parts,
               "split_part_offset: index " << index << " out of " << parts
                                           << " parts");
  const std::uint64_t base = total / parts;
  const std::uint64_t remainder = total % parts;
  const std::uint64_t extra = index < remainder ? index : remainder;
  return base * index + extra;
}

}  // namespace wrht::coll
