// Executes a collective Schedule on an electrical cluster with the flow
// simulator: each schedule step becomes a batch of concurrent flows; the
// step's duration is the batch makespan under max-min fair sharing, and
// steps are separated by a synchronization barrier (the next step's flows
// start only when the previous step fully completes — BSP semantics, the
// same model the optical side uses).
#pragma once

#include <optional>
#include <vector>

#include "coll/schedule.hpp"
#include "elec/topology.hpp"
#include "util/units.hpp"

namespace wrht::elec {

struct ElecRunResult {
  util::Seconds total;
  std::vector<util::Seconds> step_durations;
};

/// Incremental per-step seam: times one schedule step at a time, so a
/// runtime can interleave electrical steps with other tenants' events on a
/// shared clock instead of committing to a whole schedule up front.  Reuses
/// one FlowNetwork across calls (reset before each step — the same
/// quiet-network-per-step construction run_on_electrical uses, and
/// run_on_electrical is itself implemented on this timer, so per-step and
/// whole-schedule timings agree by construction).  `cluster` must outlive
/// the timer.
class StepFlowTimer {
 public:
  explicit StepFlowTimer(const ElectricalCluster& cluster);

  /// BSP makespan of `schedule` step `step` for `payload` under max-min
  /// fair sharing on a quiet network.  An out-of-range step or a schedule
  /// needing more hosts than the cluster has is rejected with nullopt (the
  /// timer state is untouched), so callers driving tenant-supplied
  /// schedules can surface the error on their own terms.
  [[nodiscard]] std::optional<util::Seconds> time_step(
      const coll::Schedule& schedule, std::size_t step, util::Bytes payload);

 private:
  const ElectricalCluster* cluster_;
  FlowNetwork network_;
};

[[nodiscard]] ElecRunResult run_on_electrical(const coll::Schedule& schedule,
                                              const ElectricalCluster& cluster,
                                              util::Bytes payload);

}  // namespace wrht::elec
