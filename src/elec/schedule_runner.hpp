// Executes a collective Schedule on an electrical cluster with the flow
// simulator: each schedule step becomes a batch of concurrent flows; the
// step's duration is the batch makespan under max-min fair sharing, and
// steps are separated by a synchronization barrier (the next step's flows
// start only when the previous step fully completes — BSP semantics, the
// same model the optical side uses).
#pragma once

#include <vector>

#include "coll/schedule.hpp"
#include "elec/topology.hpp"
#include "util/units.hpp"

namespace wrht::elec {

struct ElecRunResult {
  util::Seconds total;
  std::vector<util::Seconds> step_durations;
};

[[nodiscard]] ElecRunResult run_on_electrical(const coll::Schedule& schedule,
                                              const ElectricalCluster& cluster,
                                              util::Bytes payload);

}  // namespace wrht::elec
