#include "elec/alphabeta.hpp"

namespace wrht::elec {

coll::AlphaBetaParams alpha_beta_for(const ElectricalCluster& cluster) {
  coll::AlphaBetaParams params;
  // Alpha: the end-to-end latency between two hosts (host 0 to host 1 is
  // representative — all topologies built here give hosts identical access
  // links, and the alpha-beta view ignores path diversity anyway).
  params.alpha = cluster.route_latency(0, 1 % cluster.num_hosts());
  // Beta: the host access link is the single-port bottleneck.
  params.bandwidth = cluster.host_params().link_bandwidth;
  return params;
}

}  // namespace wrht::elec
