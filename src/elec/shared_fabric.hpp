// Multi-tenant flow timing on ONE shared FlowNetwork — the electrical
// analogue of the shared optical SpectrumMap.
//
// The star fallback gives every execution exclusive host links, so each
// step runs on a private quiet network and tenants never contend — which
// hides the congestion that motivates the optical ring in the first place.
// On an oversubscribed two-level tree the ToR uplinks are genuinely shared:
// a step's completion time depends on what every other tenant is sending
// through the same uplinks at the same instant.
//
// SharedFabricTimer therefore keeps ONE long-lived FlowNetwork for the
// whole fabric and times the in-flight steps of ALL concurrent executions
// together under max-min fair sharing:
//
//  * begin_step(session, ...) advances the shared network to `now`, injects
//    the step's flows next to whatever other tenants have in flight, and
//    returns the step's predicted completion — exact for the fluid model
//    unless a LATER arrival changes the sharing.
//  * When an arrival does change the sharing, every other in-flight step's
//    completion moves; the corrections surface through take_retimings() so
//    the caller can re-schedule its step-completion events.  Departures
//    need no correction: the forward prediction already simulates every
//    current flow to completion, including their rate changes as peers
//    drain.
//
// Correctness is anchored by a whole-horizon replay oracle: the timer logs
// every advance point and every injected flow, and verify_replay() re-runs
// the identical operation sequence on a FRESH FlowNetwork — the per-step
// completion times must reproduce the incremental timer's exactly (the same
// arithmetic in the same order, so equality is bitwise, not approximate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "coll/schedule.hpp"
#include "elec/topology.hpp"
#include "util/units.hpp"

namespace wrht::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace wrht::obs

namespace wrht::elec {

class SharedFabricTimer {
 public:
  using SessionId = std::uint32_t;

  /// `cluster` must outlive the timer.  `replay_audit` keeps the
  /// whole-horizon replay log (every advance + flow injection) that
  /// verify_replay() re-proves the incremental timing against; the log is
  /// O(total steps), so streaming front ends serving millions of jobs may
  /// turn it off — verify_replay() then has nothing to check and returns 0.
  /// Timing is bit-identical either way.
  explicit SharedFabricTimer(const ElectricalCluster& cluster,
                             bool replay_audit = true);

  /// Register the timer's metrics with `registry`: steps-timed and
  /// retiming counters, plus the "electrical.uplink_utilization" sampled
  /// gauge (utilization of the currently-hottest fabric link, refreshed on
  /// every injection/close).  The registry must outlive the timer.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Register a tenant execution.  Sessions are cheap; one per execution.
  [[nodiscard]] SessionId open_session();

  /// Inject the flows of `schedule` step `step` (payload split exactly as
  /// the quiet-network runner splits it) into the shared fabric at `now`,
  /// and return the step's predicted completion time under max-min fair
  /// sharing with every other in-flight step.  The session's previous step
  /// must have completed by `now`.  Returns nullopt on a bad request:
  /// unknown/closed session, out-of-range step, a schedule needing more
  /// hosts than the cluster has, a clock running backwards, or a previous
  /// step still in flight.  A rejected request injects no flows; the
  /// still-in-flight case has already advanced the shared clock to `now`
  /// and logged that advance (the replay oracle must split its advances
  /// exactly where the live network did, failed requests included).
  [[nodiscard]] std::optional<util::Seconds> begin_step(
      SessionId session, const coll::Schedule& schedule, std::size_t step,
      util::Bytes payload, util::Seconds now);

  /// Close a session at `now` (its last step must have completed by then).
  void close_session(SessionId session, util::Seconds now);

  /// Congestion-aware what-if probe: the completion time `schedule` step
  /// `step` WOULD have if its flows joined the shared fabric at `now`, next
  /// to everything currently in flight.  Computed on a live-flows clone of
  /// the shared network, so the answer is the fluid model's own arithmetic
  /// against the real residual uplink bandwidth — a pure probe that injects
  /// nothing, logs nothing, and retimes nobody.  Same rejection cases as
  /// begin_step's schedule checks (out-of-range step, too many hosts, a
  /// clock before the fabric's).
  [[nodiscard]] std::optional<util::Seconds> predict_step_completion(
      const coll::Schedule& schedule, std::size_t step, util::Bytes payload,
      util::Seconds now) const;

  /// Predicted completion times of every in-flight step, one entry per open
  /// session currently running one (order follows the ascending session-id
  /// working set).  These are the instants the fabric's current contention
  /// is predicted to DRAIN at — the congestion-aware router decays its
  /// clone-probe stretch by them, so a fabric full of nearly-done tenants
  /// stops repelling arrivals it could actually serve.
  [[nodiscard]] std::vector<util::Seconds> inflight_predicted_ends() const;

  /// A step whose predicted completion moved because a later arrival
  /// changed the max-min sharing.  Entries are in detection order; for a
  /// session appearing twice, the later entry supersedes.
  struct Retiming {
    SessionId session = 0;
    util::Seconds end{0.0};
  };
  [[nodiscard]] std::vector<Retiming> take_retimings();

  [[nodiscard]] std::size_t active_sessions() const;

  /// Peak utilization (allocated rate / capacity, in [0,1]) per link of the
  /// shared network since construction.  Indexed by the cluster's link ids.
  [[nodiscard]] std::vector<double> link_peak_utilization() const;

  /// CURRENT per-link utilization (as of the shared network's last rate
  /// recomputation).  Indexed by the cluster's link ids.
  [[nodiscard]] std::vector<double> link_utilization() const;

  /// Steps logged so far (finalized or in flight).
  [[nodiscard]] std::uint64_t logged_steps() const {
    return static_cast<std::uint64_t>(steps_.size());
  }

  /// The whole-horizon oracle: replay every logged advance and flow
  /// injection, in order, into a fresh FlowNetwork and compare each
  /// finalized step's completion time with the incremental result.
  /// Returns the number of steps that disagree (0 on a correct timer);
  /// steps never finalized (session left open) also count.
  [[nodiscard]] std::uint64_t verify_replay() const;

 private:
  struct LoggedFlow {
    std::vector<LinkId> route;
    util::Bytes bytes;
  };
  struct LoggedStep {
    SessionId session = 0;
    std::uint64_t step = 0;
    util::Seconds start{0.0};
    /// Authoritative completion, read back from the shared network once the
    /// step's flows have drained (predictions may sit an ulp away).
    util::Seconds end{0.0};
    bool finalized = false;
    std::vector<LoggedFlow> flows;
  };
  /// One advance of the shared network, optionally followed by a step's
  /// flow injections.  The replay oracle re-runs exactly this sequence, so
  /// every advance — even a flow-less close_session — is recorded.
  struct LoggedOp {
    util::Seconds time{0.0};
    std::ptrdiff_t step = -1;  // index into steps_, -1 = pure advance
  };
  struct Session {
    bool open = false;
    /// FlowNetwork ids of the current step's flows, ascending.
    std::vector<FlowId> inflight;
    std::size_t current_step = 0;  // index into steps_ (valid iff audited)
    bool has_step = false;
    /// Start/ordinal of the in-flight step, kept on the session itself so
    /// reprediction never needs the (optional) replay log.
    util::Seconds step_start{0.0};
    std::uint64_t step_number = 0;
    util::Seconds predicted_end{0.0};
  };

  /// Fold the session's in-flight step into the log: every flow must have
  /// completed on the shared network (aborts otherwise — a step boundary
  /// fired before its flows drained, which the retiming contract forbids).
  void finalize_step(SessionId session_id);
  /// Recompute predicted completions for every in-flight step after an
  /// injection; queue a Retiming for each session other than `started`
  /// whose prediction moved.
  void repredict(SessionId started);

  /// Refresh the uplink-utilization gauge (no-op without a registry).
  void publish_utilization();

  /// Let the network retire the storage of flows below every open
  /// session's oldest in-flight flow — nobody will query them again.
  void retire_drained();

  const ElectricalCluster* cluster_;
  FlowNetwork network_;
  bool audit_;
  std::vector<Session> sessions_;
  /// Ids of open sessions, ascending — the working set repredict() and the
  /// retirement floor walk instead of every session ever opened.
  std::vector<SessionId> open_sessions_;
  std::vector<LoggedStep> steps_;
  std::vector<LoggedOp> ops_;
  std::vector<Retiming> retimings_;
  /// Metric handles; nullptr (zero-overhead emission) without a registry.
  obs::Counter* steps_timed_ = nullptr;
  obs::Counter* retimings_emitted_ = nullptr;
  obs::Gauge* uplink_utilization_ = nullptr;
};

}  // namespace wrht::elec
