// Bridges the electrical cluster parameters to the generic alpha-beta cost
// model: alpha is the host-to-host route latency, beta the host link rate.
// Used to sanity-check the flow simulation (on contention-free patterns the
// two agree exactly) and for quick analytic sweeps.
#pragma once

#include "coll/cost_model.hpp"
#include "elec/topology.hpp"

namespace wrht::elec {

/// Alpha-beta parameters equivalent to `cluster` for patterns whose flows
/// are contention-free (each host sends to and receives from at most one
/// peer, e.g. ring steps and pairwise exchanges).
[[nodiscard]] coll::AlphaBetaParams alpha_beta_for(
    const ElectricalCluster& cluster);

}  // namespace wrht::elec
