#include "elec/flow_network.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wrht::elec {
namespace {

// Residual bytes below this threshold count as delivered; keeps the fluid
// arithmetic robust against double rounding without affecting timing at any
// realistic message size.  The margin is sized for run_until-driven
// networks, where one flow's drain is split across several advance points
// (each tenant arrival is one) and the rounding of rate*dt accumulates per
// split: a milli-byte is still under a picosecond at any modeled link rate.
constexpr double kEpsilonBytes = 1e-3;

}  // namespace

LinkId FlowNetwork::add_link(LinkSpec spec) {
  WRHT_REQUIRE(spec.capacity.bytes_per_second() > 0.0,
               "FlowNetwork: link capacity must be positive, got "
                   << spec.capacity.bytes_per_second() << " B/s");
  links_.push_back(Link{spec, 0.0});
  return static_cast<LinkId>(links_.size() - 1);
}

FlowId FlowNetwork::add_flow(std::vector<LinkId> route, util::Bytes bytes) {
  util::Seconds latency{0.0};
  for (const LinkId link : route) {
    WRHT_REQUIRE(link < links_.size(),
                 "FlowNetwork: route uses unknown link " << link);
    latency += links_[link].spec.latency;
  }
  Flow flow;
  flow.route = std::move(route);
  flow.remaining = bytes.as_double();
  flow.activation = now_ + latency;
  flows_.push_back(std::move(flow));
  const FlowId id = base_ + static_cast<FlowId>(flows_.size() - 1);
  live_.push_back(id);
  return id;
}

void FlowNetwork::recompute_rates() {
  // Progressive filling over the active flows.
  std::vector<double> residual(links_.size());
  std::vector<std::uint32_t> crossing(links_.size(), 0);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    residual[l] = links_[l].spec.capacity.bytes_per_second();
  }

  std::vector<FlowId> unfixed;
  for (const FlowId f : live_) {
    Flow& flow = flow_ref(f);
    if (flow.state != FlowState::kActive) continue;
    flow.rate = 0.0;
    unfixed.push_back(f);
    for (const LinkId link : flow.route) ++crossing[link];
  }

  while (!unfixed.empty()) {
    // The bottleneck link offers the smallest fair share.
    double min_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (crossing[l] == 0) continue;
      min_share = std::min(min_share, residual[l] / crossing[l]);
    }
    // Flows with empty routes have no constraining link; "infinitely
    // fast" is unphysical, so forbid them instead.
    WRHT_CHECK(std::isfinite(min_share),
               "FlowNetwork: active flow with empty route");

    // Freeze every unfixed flow that crosses a bottleneck link.
    std::vector<FlowId> still_unfixed;
    for (const FlowId f : unfixed) {
      Flow& flow = flow_ref(f);
      bool bottlenecked = false;
      for (const LinkId link : flow.route) {
        if (residual[link] / crossing[link] <= min_share * (1 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (bottlenecked) {
        flow.rate = min_share;
      } else {
        still_unfixed.push_back(f);
      }
    }
    // Charge frozen flows against their links.
    for (const FlowId f : unfixed) {
      const Flow& flow = flow_ref(f);
      // simlint-allow(float-eq): 0.0 is an exact sentinel set by freeze(), not
      // a computed value; an epsilon would misclassify tiny live rates.
      if (flow.rate == 0.0) continue;
      for (const LinkId link : flow.route) {
        residual[link] -= flow.rate;
        if (residual[link] < 0.0) residual[link] = 0.0;
        --crossing[link];
      }
    }
    WRHT_CHECK(still_unfixed.size() != unfixed.size(),
               "FlowNetwork: progressive filling stalled with "
                   << unfixed.size() << " unfixed flows");
    unfixed = std::move(still_unfixed);
  }

  // Rates only change here, so sampling here makes the per-link peak exact.
  std::vector<double> allocated(links_.size(), 0.0);
  for (const FlowId f : live_) {
    const Flow& flow = flow_ref(f);
    if (flow.state != FlowState::kActive) continue;
    for (const LinkId link : flow.route) allocated[link] += flow.rate;
  }
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const double utilization =
        allocated[l] / links_[l].spec.capacity.bytes_per_second();
    links_[l].utilization = utilization;
    links_[l].peak_utilization = std::max(links_[l].peak_utilization,
                                          utilization);
  }
}

util::Seconds FlowNetwork::next_event_time() const {
  util::Seconds next{std::numeric_limits<double>::infinity()};
  for (const FlowId f : live_) {
    const Flow& flow = flow_ref(f);
    if (flow.state == FlowState::kWaiting) {
      next = std::min(next, flow.activation);
    } else if (flow.state == FlowState::kActive && flow.rate > 0.0) {
      next = std::min(next, now_ + util::Seconds(flow.remaining / flow.rate));
    }
  }
  return next;
}

void FlowNetwork::advance_to(util::Seconds when) {
  const double dt = (when - now_).value();
  for (const FlowId f : live_) {
    Flow& flow = flow_ref(f);
    if (flow.state != FlowState::kActive) continue;
    const double moved = flow.rate * dt;
    flow.remaining -= moved;
    for (const LinkId link : flow.route) {
      links_[link].carried_bytes += moved;
    }
  }
  now_ = when;
}

void FlowNetwork::settle() {
  bool any_done = false;
  for (const FlowId f : live_) {
    Flow& flow = flow_ref(f);
    if (flow.state == FlowState::kWaiting && flow.activation <= now_) {
      flow.state = FlowState::kActive;
    }
    if (flow.state == FlowState::kActive && flow.remaining <= kEpsilonBytes) {
      flow.state = FlowState::kDone;
      flow.completion = now_;
      flow.rate = 0.0;
      any_done = true;
    }
  }
  if (any_done) {
    live_.erase(std::remove_if(live_.begin(), live_.end(),
                               [&](FlowId f) {
                                 return flow_ref(f).state == FlowState::kDone;
                               }),
                live_.end());
  }
}

util::Seconds FlowNetwork::run() {
  return run_until(util::Seconds(std::numeric_limits<double>::infinity()));
}

util::Seconds FlowNetwork::run_until(util::Seconds horizon) {
  while (!live_.empty()) {
    recompute_rates();
    const util::Seconds when = next_event_time();
    WRHT_CHECK(std::isfinite(when.value()),
               "FlowNetwork: deadlock — " << live_.size()
                                          << " live flows, no events");
    if (when > horizon) break;
    advance_to(when);
    settle();
  }
  if (std::isfinite(horizon.value()) && horizon > now_) {
    // Partial progress up to the horizon (rates were just recomputed when
    // flows are live; with none, this only moves the clock), then absorb
    // any flow the rounding of a split advance left epsilon-short.
    advance_to(horizon);
    settle();
  }
  return now_;
}

bool FlowNetwork::completed(FlowId flow) const {
  WRHT_REQUIRE(flow >= base_,
               "FlowNetwork: querying retired flow " << flow);
  return flow_ref(flow).state == FlowState::kDone;
}

util::Seconds FlowNetwork::completion_time(FlowId flow) const {
  WRHT_REQUIRE(completed(flow),
               "FlowNetwork: flow " << flow << " has not completed");
  return flow_ref(flow).completion;
}

util::Bytes FlowNetwork::link_bytes(LinkId link) const {
  return util::Bytes(
      static_cast<std::uint64_t>(links_[link].carried_bytes + 0.5));
}

double FlowNetwork::current_rate(FlowId flow) const {
  WRHT_REQUIRE(flow >= base_,
               "FlowNetwork: querying retired flow " << flow);
  const Flow& f = flow_ref(flow);
  return f.state == FlowState::kActive ? f.rate : 0.0;
}

double FlowNetwork::link_peak_utilization(LinkId link) const {
  return links_[link].peak_utilization;
}

double FlowNetwork::link_utilization(LinkId link) const {
  return links_[link].utilization;
}

FlowNetwork FlowNetwork::clone_live(std::vector<FlowId>& id_map) const {
  // live_ is ascending, so the copy receives the flows in the same (id)
  // order the historical whole-table walk produced — the max-min arithmetic
  // downstream is bit-identical.
  FlowNetwork copy;
  copy.links_ = links_;
  copy.now_ = now_;
  id_map.assign(flows_.size(), kNoFlow);
  for (const FlowId f : live_) {
    id_map[f - base_] = static_cast<FlowId>(copy.flows_.size());
    copy.live_.push_back(static_cast<FlowId>(copy.flows_.size()));
    copy.flows_.push_back(flow_ref(f));
  }
  return copy;
}

void FlowNetwork::retire_done_below(FlowId floor) {
  const FlowId oldest_live =
      live_.empty() ? base_ + static_cast<FlowId>(flows_.size())
                    : live_.front();
  if (floor > oldest_live) floor = oldest_live;
  if (floor <= base_) return;
  const std::size_t drop = floor - base_;
  // Erasing the vector front moves every survivor, so wait until the
  // retired prefix is worth the move; memory stays bounded by the in-flight
  // window plus this slack.
  if (drop < 64 && drop * 2 < flows_.size()) return;
  flows_.erase(flows_.begin(),
               flows_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_ = floor;
}

void FlowNetwork::reset() {
  flows_.clear();
  live_.clear();
  base_ = 0;
  now_ = util::Seconds(0.0);
  for (Link& link : links_) {
    link.carried_bytes = 0.0;
    link.peak_utilization = 0.0;
    link.utilization = 0.0;
  }
}

}  // namespace wrht::elec
