// Electrical cluster topologies for the flow simulator.
//
// A cluster couples a routing graph with per-edge link specs; edge ids in
// the graph are link ids in any FlowNetwork the cluster instantiates, so a
// route computed on the graph can be handed straight to add_flow.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "elec/flow_network.hpp"
#include "topo/graph.hpp"
#include "util/units.hpp"

namespace wrht::elec {

struct ElectricalParams {
  util::Bandwidth link_bandwidth = util::gbps(10.0);
  util::Seconds link_latency = util::microseconds(25.0);
};

class ElectricalCluster {
 public:
  /// num_hosts hosts, each with one full-duplex link to a single switch.
  static ElectricalCluster star(std::uint32_t num_hosts,
                                const ElectricalParams& params);

  /// Hosts wired host i <-> host i+1 (mod n) directly (electrical ring).
  static ElectricalCluster ring(std::uint32_t num_hosts,
                                const ElectricalParams& params);

  /// Two-level tree: hosts -> ToR switches -> one core switch, with the
  /// ToR uplink carrying `oversubscription` x less bandwidth per host.
  /// Rejects a bad shape — fewer than 2 hosts, zero hosts per ToR, or a
  /// non-positive (or non-finite) oversubscription — by returning nullopt,
  /// so a caller wiring user-supplied config can surface the error instead
  /// of dying inside the library.
  static std::optional<ElectricalCluster> two_level_tree(
      std::uint32_t num_hosts, std::uint32_t hosts_per_tor,
      double oversubscription, const ElectricalParams& params);

  [[nodiscard]] std::uint32_t num_hosts() const {
    return static_cast<std::uint32_t>(hosts_.size());
  }
  [[nodiscard]] const topo::Graph& graph() const { return graph_; }

  /// Link ids along the route from host a to host b (a != b).
  /// Routes are cached; the cluster must outlive callers using them.
  [[nodiscard]] const std::vector<LinkId>& route(std::uint32_t host_a,
                                                 std::uint32_t host_b) const;

  /// A FlowNetwork whose link ids equal this cluster's graph edge ids.
  [[nodiscard]] FlowNetwork make_network() const;

  /// Per-hop latency of the route between two hosts.
  [[nodiscard]] util::Seconds route_latency(std::uint32_t host_a,
                                            std::uint32_t host_b) const;

  /// The access-link spec hosts were built with (identical for all hosts in
  /// every topology this class constructs).
  [[nodiscard]] const ElectricalParams& host_params() const {
    return host_params_;
  }

 private:
  topo::Graph graph_;
  std::vector<topo::VertexId> hosts_;
  ElectricalParams host_params_;
  std::vector<LinkSpec> link_specs_;  // indexed by edge id
  mutable std::map<std::pair<std::uint32_t, std::uint32_t>,
                   std::vector<LinkId>>
      route_cache_;
};

}  // namespace wrht::elec
