#include "elec/schedule_runner.hpp"

#include <cstdio>
#include <cstdlib>

namespace wrht::elec {

ElecRunResult run_on_electrical(const coll::Schedule& schedule,
                                const ElectricalCluster& cluster,
                                util::Bytes payload) {
  if (schedule.num_nodes() > cluster.num_hosts()) {
    std::fprintf(stderr,
                 "run_on_electrical: schedule needs %u hosts, cluster has %u\n",
                 schedule.num_nodes(), cluster.num_hosts());
    std::abort();
  }

  ElecRunResult result;
  FlowNetwork network = cluster.make_network();
  for (const coll::Step& step : schedule.steps()) {
    // Steps are separated by a barrier, so each runs on a quiet network;
    // resetting between steps keeps memory bounded by one step's flows even
    // for the 2(N-1)-step ring schedules.
    network.reset();
    for (const coll::Transfer& t : step.transfers) {
      network.add_flow(cluster.route(t.src, t.dst),
                       schedule.chunk_bytes(payload, t.chunk));
    }
    const util::Seconds step_duration = network.run();
    result.step_durations.push_back(step_duration);
    result.total += step_duration;
  }
  return result;
}

}  // namespace wrht::elec
