#include "elec/schedule_runner.hpp"

#include "util/check.hpp"

namespace wrht::elec {

StepFlowTimer::StepFlowTimer(const ElectricalCluster& cluster)
    : cluster_(&cluster), network_(cluster.make_network()) {}

std::optional<util::Seconds> StepFlowTimer::time_step(
    const coll::Schedule& schedule, std::size_t step, util::Bytes payload) {
  if (schedule.num_nodes() > cluster_->num_hosts()) return std::nullopt;
  if (step >= schedule.num_steps()) return std::nullopt;
  // Steps are separated by a barrier, so each runs on a quiet network;
  // resetting between steps keeps memory bounded by one step's flows even
  // for the 2(N-1)-step ring schedules.
  network_.reset();
  for (const coll::Transfer& t : schedule.steps()[step].transfers) {
    network_.add_flow(cluster_->route(t.src, t.dst),
                      schedule.chunk_bytes(payload, t.chunk));
  }
  return network_.run();
}

ElecRunResult run_on_electrical(const coll::Schedule& schedule,
                                const ElectricalCluster& cluster,
                                util::Bytes payload) {
  WRHT_REQUIRE(schedule.num_nodes() <= cluster.num_hosts(),
               "run_on_electrical: schedule needs "
                   << schedule.num_nodes() << " hosts, cluster has "
                   << cluster.num_hosts());

  ElecRunResult result;
  StepFlowTimer timer(cluster);
  for (std::size_t step = 0; step < schedule.num_steps(); ++step) {
    // time_step refuses oversized schedules (pre-checked above) and
    // out-of-range steps (impossible from this loop), so a nullopt here is
    // a library bug, not a caller error.
    const std::optional<util::Seconds> step_duration =
        timer.time_step(schedule, step, payload);
    WRHT_CHECK(step_duration.has_value(),
               "run_on_electrical: step " << step << " refused");
    result.step_durations.push_back(*step_duration);
    result.total += *step_duration;
  }
  return result;
}

}  // namespace wrht::elec
