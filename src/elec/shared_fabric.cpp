#include "elec/shared_fabric.hpp"

#include <algorithm>
#include "util/check.hpp"

#include "obs/metrics.hpp"

namespace wrht::elec {

SharedFabricTimer::SharedFabricTimer(const ElectricalCluster& cluster)
    : cluster_(&cluster), network_(cluster.make_network()) {}

void SharedFabricTimer::attach_metrics(obs::MetricsRegistry& registry) {
  steps_timed_ = registry.counter("fabric.steps_timed");
  retimings_emitted_ = registry.counter("fabric.retimings");
  uplink_utilization_ = registry.sampled_gauge("electrical.uplink_utilization");
}

void SharedFabricTimer::publish_utilization() {
  if (!uplink_utilization_) return;
  double hottest = 0.0;
  for (std::size_t l = 0; l < network_.num_links(); ++l) {
    hottest = std::max(hottest,
                       network_.link_utilization(static_cast<LinkId>(l)));
  }
  uplink_utilization_->set(hottest);
}

SharedFabricTimer::SessionId SharedFabricTimer::open_session() {
  sessions_.push_back(Session{});
  sessions_.back().open = true;
  return static_cast<SessionId>(sessions_.size() - 1);
}

std::size_t SharedFabricTimer::active_sessions() const {
  std::size_t open = 0;
  for (const Session& session : sessions_) open += session.open ? 1u : 0u;
  return open;
}

void SharedFabricTimer::finalize_step(Session& session) {
  if (!session.has_step) return;
  LoggedStep& logged = steps_[session.current_step];
  util::Seconds end = logged.start;
  for (const FlowId flow : session.inflight) {
    WRHT_CHECK(network_.completed(flow),
               "SharedFabricTimer: step boundary before its flows drained "
               "(session "
                   << logged.session << " step " << logged.step << ")");
    end = std::max(end, network_.completion_time(flow));
  }
  logged.end = end;
  logged.finalized = true;
  session.inflight.clear();
  session.has_step = false;
}

std::optional<util::Seconds> SharedFabricTimer::begin_step(
    SessionId session_id, const coll::Schedule& schedule, std::size_t step,
    util::Bytes payload, util::Seconds now) {
  if (session_id >= sessions_.size() || !sessions_[session_id].open) {
    return std::nullopt;
  }
  if (step >= schedule.num_steps()) return std::nullopt;
  if (schedule.num_nodes() > cluster_->num_hosts()) return std::nullopt;
  if (now < network_.now()) return std::nullopt;

  Session& session = sessions_[session_id];
  network_.run_until(now);
  // The advance itself is logged unconditionally — the replay oracle must
  // split its advances exactly where the live network split them, even when
  // the request dies on the completion check below.
  ops_.push_back(LoggedOp{now, -1});
  if (session.has_step) {
    for (const FlowId flow : session.inflight) {
      if (!network_.completed(flow)) return std::nullopt;
    }
    finalize_step(session);
  }

  LoggedStep logged;
  logged.session = session_id;
  logged.step = static_cast<std::uint64_t>(step);
  logged.start = now;
  session.current_step = steps_.size();
  for (const coll::Transfer& t : schedule.steps()[step].transfers) {
    const std::vector<LinkId>& route = cluster_->route(t.src, t.dst);
    const util::Bytes bytes = schedule.chunk_bytes(payload, t.chunk);
    session.inflight.push_back(network_.add_flow(route, bytes));
    logged.flows.push_back(LoggedFlow{route, bytes});
  }
  session.has_step = !session.inflight.empty();
  ops_.push_back(LoggedOp{now, static_cast<std::ptrdiff_t>(steps_.size())});
  steps_.push_back(std::move(logged));
  obs::inc(steps_timed_);
  publish_utilization();

  if (!session.has_step) {
    // A flow-less step (e.g. a barrier round another group participates in)
    // completes instantly; nobody else's sharing changed.
    LoggedStep& empty = steps_[session.current_step];
    empty.end = now;
    empty.finalized = true;
    session.predicted_end = now;
    return now;
  }
  session.predicted_end = now;  // repredict overwrites with the real value
  repredict(session_id);
  return session.predicted_end;
}

void SharedFabricTimer::repredict(SessionId started) {
  // Forward-run a live-flows-only copy to completion: each in-flight step
  // ends when the last of its flows drains.  The copy shares the real
  // network's arithmetic, so the prediction is the fluid model's answer,
  // not an estimate — it only goes stale if another flow arrives later,
  // and that arrival re-runs this very function.
  std::vector<FlowId> id_map;
  FlowNetwork forward = network_.clone_live(id_map);
  forward.run();
  for (SessionId id = 0; id < sessions_.size(); ++id) {
    Session& session = sessions_[id];
    if (!session.open || !session.has_step) continue;
    util::Seconds end = steps_[session.current_step].start;
    bool any_live = false;
    for (const FlowId flow : session.inflight) {
      // A flow that already drained on the real network keeps its recorded
      // completion; only still-live flows take the forward prediction.
      const FlowId mapped = id_map[flow];
      if (mapped == kNoFlow) {
        end = std::max(end, network_.completion_time(flow));
      } else {
        any_live = true;
        end = std::max(end, forward.completion_time(mapped));
      }
    }
    if (id == started) {
      session.predicted_end = end;
    } else if (any_live && end != session.predicted_end) {
      // A fully-drained step is already over — its completion event is in
      // the past of this arrival and must not be re-scheduled; the caller's
      // pending boundary event will finalize it.
      session.predicted_end = end;
      retimings_.push_back(Retiming{id, end});
      obs::inc(retimings_emitted_);
    }
  }
}

std::optional<util::Seconds> SharedFabricTimer::predict_step_completion(
    const coll::Schedule& schedule, std::size_t step, util::Bytes payload,
    util::Seconds now) const {
  if (step >= schedule.num_steps()) return std::nullopt;
  if (schedule.num_nodes() > cluster_->num_hosts()) return std::nullopt;
  if (now < network_.now()) return std::nullopt;

  // The clone carries exactly the flows still in flight; advancing IT to
  // `now` instead of the real network keeps the probe side-effect free.
  std::vector<FlowId> id_map;
  FlowNetwork probe = network_.clone_live(id_map);
  probe.run_until(now);
  std::vector<FlowId> injected;
  for (const coll::Transfer& t : schedule.steps()[step].transfers) {
    injected.push_back(probe.add_flow(cluster_->route(t.src, t.dst),
                                      schedule.chunk_bytes(payload, t.chunk)));
  }
  if (injected.empty()) return now;  // flow-less step completes instantly
  probe.run();
  util::Seconds end = now;
  for (const FlowId flow : injected) {
    end = std::max(end, probe.completion_time(flow));
  }
  return end;
}

void SharedFabricTimer::close_session(SessionId session_id,
                                      util::Seconds now) {
  WRHT_REQUIRE(session_id < sessions_.size() && sessions_[session_id].open,
               "SharedFabricTimer: close of unknown session " << session_id);
  Session& session = sessions_[session_id];
  network_.run_until(std::max(now, network_.now()));
  ops_.push_back(LoggedOp{network_.now(), -1});
  finalize_step(session);
  session.open = false;
  publish_utilization();
}

std::vector<SharedFabricTimer::Retiming> SharedFabricTimer::take_retimings() {
  std::vector<Retiming> out = std::move(retimings_);
  retimings_.clear();
  return out;
}

std::vector<double> SharedFabricTimer::link_peak_utilization() const {
  std::vector<double> peaks(network_.num_links());
  for (std::size_t l = 0; l < peaks.size(); ++l) {
    peaks[l] = network_.link_peak_utilization(static_cast<LinkId>(l));
  }
  return peaks;
}

std::vector<double> SharedFabricTimer::link_utilization() const {
  std::vector<double> current(network_.num_links());
  for (std::size_t l = 0; l < current.size(); ++l) {
    current[l] = network_.link_utilization(static_cast<LinkId>(l));
  }
  return current;
}

std::uint64_t SharedFabricTimer::verify_replay() const {
  FlowNetwork replay = cluster_->make_network();
  std::vector<std::vector<FlowId>> replay_ids(steps_.size());
  for (const LoggedOp& op : ops_) {
    replay.run_until(op.time);
    if (op.step < 0) continue;
    const LoggedStep& logged = steps_[static_cast<std::size_t>(op.step)];
    for (const LoggedFlow& flow : logged.flows) {
      replay_ids[static_cast<std::size_t>(op.step)].push_back(
          replay.add_flow(flow.route, flow.bytes));
    }
  }
  replay.run();  // drains nothing on a fully-closed log

  std::uint64_t mismatches = 0;
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    const LoggedStep& logged = steps_[s];
    if (!logged.finalized) {
      ++mismatches;
      continue;
    }
    util::Seconds end = logged.start;
    for (const FlowId flow : replay_ids[s]) {
      end = std::max(end, replay.completion_time(flow));
    }
    if (end != logged.end) ++mismatches;
  }
  return mismatches;
}

}  // namespace wrht::elec
