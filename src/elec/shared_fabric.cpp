#include "elec/shared_fabric.hpp"

#include <algorithm>
#include "util/check.hpp"

#include "obs/metrics.hpp"

namespace wrht::elec {

SharedFabricTimer::SharedFabricTimer(const ElectricalCluster& cluster,
                                     bool replay_audit)
    : cluster_(&cluster),
      network_(cluster.make_network()),
      audit_(replay_audit) {}

void SharedFabricTimer::attach_metrics(obs::MetricsRegistry& registry) {
  steps_timed_ = registry.counter("fabric.steps_timed");
  retimings_emitted_ = registry.counter("fabric.retimings");
  uplink_utilization_ = registry.sampled_gauge("electrical.uplink_utilization");
}

void SharedFabricTimer::publish_utilization() {
  if (!uplink_utilization_) return;
  double hottest = 0.0;
  for (std::size_t l = 0; l < network_.num_links(); ++l) {
    hottest = std::max(hottest,
                       network_.link_utilization(static_cast<LinkId>(l)));
  }
  uplink_utilization_->set(hottest);
}

SharedFabricTimer::SessionId SharedFabricTimer::open_session() {
  sessions_.push_back(Session{});
  sessions_.back().open = true;
  const auto id = static_cast<SessionId>(sessions_.size() - 1);
  open_sessions_.push_back(id);  // new ids are largest — stays sorted
  return id;
}

std::size_t SharedFabricTimer::active_sessions() const {
  return open_sessions_.size();
}

void SharedFabricTimer::finalize_step(SessionId session_id) {
  Session& session = sessions_[session_id];
  if (!session.has_step) return;
  util::Seconds end = session.step_start;
  for (const FlowId flow : session.inflight) {
    WRHT_CHECK(network_.completed(flow),
               "SharedFabricTimer: step boundary before its flows drained "
               "(session "
                   << session_id << " step " << session.step_number << ")");
    end = std::max(end, network_.completion_time(flow));
  }
  if (audit_) {
    LoggedStep& logged = steps_[session.current_step];
    logged.end = end;
    logged.finalized = true;
  }
  session.inflight.clear();
  session.has_step = false;
}

std::optional<util::Seconds> SharedFabricTimer::begin_step(
    SessionId session_id, const coll::Schedule& schedule, std::size_t step,
    util::Bytes payload, util::Seconds now) {
  if (session_id >= sessions_.size() || !sessions_[session_id].open) {
    return std::nullopt;
  }
  if (step >= schedule.num_steps()) return std::nullopt;
  if (schedule.num_nodes() > cluster_->num_hosts()) return std::nullopt;
  if (now < network_.now()) return std::nullopt;

  Session& session = sessions_[session_id];
  network_.run_until(now);
  // The advance itself is logged unconditionally — the replay oracle must
  // split its advances exactly where the live network split them, even when
  // the request dies on the completion check below.
  if (audit_) ops_.push_back(LoggedOp{now, -1});
  if (session.has_step) {
    for (const FlowId flow : session.inflight) {
      if (!network_.completed(flow)) return std::nullopt;
    }
    finalize_step(session_id);
  }

  LoggedStep logged;
  logged.session = session_id;
  logged.step = static_cast<std::uint64_t>(step);
  logged.start = now;
  session.current_step = steps_.size();
  session.step_start = now;
  session.step_number = static_cast<std::uint64_t>(step);
  for (const coll::Transfer& t : schedule.steps()[step].transfers) {
    const std::vector<LinkId>& route = cluster_->route(t.src, t.dst);
    const util::Bytes bytes = schedule.chunk_bytes(payload, t.chunk);
    session.inflight.push_back(network_.add_flow(route, bytes));
    if (audit_) logged.flows.push_back(LoggedFlow{route, bytes});
  }
  session.has_step = !session.inflight.empty();
  if (audit_) {
    ops_.push_back(LoggedOp{now, static_cast<std::ptrdiff_t>(steps_.size())});
    steps_.push_back(std::move(logged));
  }
  obs::inc(steps_timed_);
  publish_utilization();

  if (!session.has_step) {
    // A flow-less step (e.g. a barrier round another group participates in)
    // completes instantly; nobody else's sharing changed.
    if (audit_) {
      LoggedStep& empty = steps_[session.current_step];
      empty.end = now;
      empty.finalized = true;
    }
    session.predicted_end = now;
    retire_drained();
    return now;
  }
  session.predicted_end = now;  // repredict overwrites with the real value
  repredict(session_id);
  retire_drained();
  return session.predicted_end;
}

void SharedFabricTimer::repredict(SessionId started) {
  // Forward-run a live-flows-only copy to completion: each in-flight step
  // ends when the last of its flows drains.  The copy shares the real
  // network's arithmetic, so the prediction is the fluid model's answer,
  // not an estimate — it only goes stale if another flow arrives later,
  // and that arrival re-runs this very function.
  std::vector<FlowId> id_map;
  FlowNetwork forward = network_.clone_live(id_map);
  forward.run();
  const FlowId floor = network_.id_floor();
  for (const SessionId id : open_sessions_) {
    Session& session = sessions_[id];
    if (!session.has_step) continue;
    util::Seconds end = session.step_start;
    bool any_live = false;
    for (const FlowId flow : session.inflight) {
      // A flow that already drained on the real network keeps its recorded
      // completion; only still-live flows take the forward prediction.
      const FlowId mapped = id_map[flow - floor];
      if (mapped == kNoFlow) {
        end = std::max(end, network_.completion_time(flow));
      } else {
        any_live = true;
        end = std::max(end, forward.completion_time(mapped));
      }
    }
    if (id == started) {
      session.predicted_end = end;
    } else if (any_live && end != session.predicted_end) {
      // A fully-drained step is already over — its completion event is in
      // the past of this arrival and must not be re-scheduled; the caller's
      // pending boundary event will finalize it.
      session.predicted_end = end;
      retimings_.push_back(Retiming{id, end});
      obs::inc(retimings_emitted_);
    }
  }
}

std::vector<util::Seconds> SharedFabricTimer::inflight_predicted_ends() const {
  std::vector<util::Seconds> ends;
  ends.reserve(open_sessions_.size());
  for (const SessionId id : open_sessions_) {
    const Session& session = sessions_[id];
    if (session.has_step) ends.push_back(session.predicted_end);
  }
  return ends;
}

std::optional<util::Seconds> SharedFabricTimer::predict_step_completion(
    const coll::Schedule& schedule, std::size_t step, util::Bytes payload,
    util::Seconds now) const {
  if (step >= schedule.num_steps()) return std::nullopt;
  if (schedule.num_nodes() > cluster_->num_hosts()) return std::nullopt;
  if (now < network_.now()) return std::nullopt;

  // The clone carries exactly the flows still in flight; advancing IT to
  // `now` instead of the real network keeps the probe side-effect free.
  std::vector<FlowId> id_map;
  FlowNetwork probe = network_.clone_live(id_map);
  probe.run_until(now);
  std::vector<FlowId> injected;
  for (const coll::Transfer& t : schedule.steps()[step].transfers) {
    injected.push_back(probe.add_flow(cluster_->route(t.src, t.dst),
                                      schedule.chunk_bytes(payload, t.chunk)));
  }
  if (injected.empty()) return now;  // flow-less step completes instantly
  probe.run();
  util::Seconds end = now;
  for (const FlowId flow : injected) {
    end = std::max(end, probe.completion_time(flow));
  }
  return end;
}

void SharedFabricTimer::close_session(SessionId session_id,
                                      util::Seconds now) {
  WRHT_REQUIRE(session_id < sessions_.size() && sessions_[session_id].open,
               "SharedFabricTimer: close of unknown session " << session_id);
  Session& session = sessions_[session_id];
  network_.run_until(std::max(now, network_.now()));
  if (audit_) ops_.push_back(LoggedOp{network_.now(), -1});
  finalize_step(session_id);
  session.open = false;
  const auto it = std::lower_bound(open_sessions_.begin(),
                                   open_sessions_.end(), session_id);
  WRHT_CHECK(it != open_sessions_.end() && *it == session_id,
             "SharedFabricTimer: open-session index lost session "
                 << session_id);
  open_sessions_.erase(it);
  retire_drained();
  publish_utilization();
}

void SharedFabricTimer::retire_drained() {
  FlowId floor = kNoFlow;
  for (const SessionId id : open_sessions_) {
    const Session& session = sessions_[id];
    if (session.has_step && !session.inflight.empty()) {
      floor = std::min(floor, session.inflight.front());
    }
  }
  network_.retire_done_below(floor);
}

std::vector<SharedFabricTimer::Retiming> SharedFabricTimer::take_retimings() {
  std::vector<Retiming> out = std::move(retimings_);
  retimings_.clear();
  return out;
}

std::vector<double> SharedFabricTimer::link_peak_utilization() const {
  std::vector<double> peaks(network_.num_links());
  for (std::size_t l = 0; l < peaks.size(); ++l) {
    peaks[l] = network_.link_peak_utilization(static_cast<LinkId>(l));
  }
  return peaks;
}

std::vector<double> SharedFabricTimer::link_utilization() const {
  std::vector<double> current(network_.num_links());
  for (std::size_t l = 0; l < current.size(); ++l) {
    current[l] = network_.link_utilization(static_cast<LinkId>(l));
  }
  return current;
}

std::uint64_t SharedFabricTimer::verify_replay() const {
  FlowNetwork replay = cluster_->make_network();
  std::vector<std::vector<FlowId>> replay_ids(steps_.size());
  for (const LoggedOp& op : ops_) {
    replay.run_until(op.time);
    if (op.step < 0) continue;
    const LoggedStep& logged = steps_[static_cast<std::size_t>(op.step)];
    for (const LoggedFlow& flow : logged.flows) {
      replay_ids[static_cast<std::size_t>(op.step)].push_back(
          replay.add_flow(flow.route, flow.bytes));
    }
  }
  replay.run();  // drains nothing on a fully-closed log

  std::uint64_t mismatches = 0;
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    const LoggedStep& logged = steps_[s];
    if (!logged.finalized) {
      ++mismatches;
      continue;
    }
    util::Seconds end = logged.start;
    for (const FlowId flow : replay_ids[s]) {
      end = std::max(end, replay.completion_time(flow));
    }
    if (end != logged.end) ++mismatches;
  }
  return mismatches;
}

}  // namespace wrht::elec
