// Flow-level network simulator with max-min fair bandwidth sharing — the
// substitute for SimGrid's fluid TCP model (DESIGN.md §3).
//
// A flow traverses a fixed route of links.  At any instant, active flows
// receive the max-min fair allocation computed by progressive filling: the
// most contended link determines the fair share of the flows crossing it,
// those flows are frozen, residual capacity propagates, repeat.  Rates are
// recomputed whenever a flow activates or completes, so completion times are
// exact for the fluid model (no time-stepping error).
//
// Latency is modelled as an activation delay: a flow placed at time t with
// route latency L starts consuming bandwidth at t + L.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/units.hpp"

namespace wrht::elec {

using LinkId = std::uint32_t;
using FlowId = std::uint32_t;

/// "No such flow" marker (clone_live id maps, absent lookups).
inline constexpr FlowId kNoFlow = 0xFFFFFFFFu;

struct LinkSpec {
  util::Bandwidth capacity = util::gbps(10.0);
  util::Seconds latency = util::microseconds(25.0);
};

class FlowNetwork {
 public:
  LinkId add_link(LinkSpec spec);
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  /// Place a flow of `bytes` over `route` starting at the current time.
  FlowId add_flow(std::vector<LinkId> route, util::Bytes bytes);

  /// Advance the fluid simulation until every flow has completed.
  /// Returns the simulated time reached.
  util::Seconds run();

  /// Advance the fluid simulation to `horizon` (>= now()), processing every
  /// activation and completion on the way; flows still in flight stay live.
  /// The clock lands exactly on the horizon even when the network drains
  /// earlier, so flows added afterwards activate relative to it.  This is
  /// the seam the shared-fabric timer drives: one long-lived network,
  /// advanced to each tenant's step boundary before new flows join.
  util::Seconds run_until(util::Seconds horizon);

  [[nodiscard]] util::Seconds now() const { return now_; }
  [[nodiscard]] bool completed(FlowId flow) const;
  [[nodiscard]] util::Seconds completion_time(FlowId flow) const;
  /// Cumulative bytes carried by a link since construction/reset.
  [[nodiscard]] util::Bytes link_bytes(LinkId link) const;

  /// Current max-min rate of an active flow (0 while waiting/finished).
  [[nodiscard]] double current_rate(FlowId flow) const;

  /// Highest instantaneous utilization (allocated rate / capacity) a link
  /// has seen since construction/reset, in [0, 1].  Sampled at every rate
  /// recomputation — exact for the fluid model, whose rates only change at
  /// those instants.
  [[nodiscard]] double link_peak_utilization(LinkId link) const;

  /// CURRENT utilization of a link as of the last rate recomputation, in
  /// [0, 1] — the live-congestion signal behind the observability layer's
  /// uplink-utilization gauge.
  [[nodiscard]] double link_utilization(LinkId link) const;

  /// A copy of this network holding only the flows still in flight.  The
  /// copy is the cheap substrate for what-if forward runs (run the copy to
  /// completion, read predicted completion times) on long-lived networks
  /// whose completed-flow history keeps growing.  Fills `id_map` with one
  /// entry per UNRETIRED flow, indexed by (flow - id_floor()): its id in
  /// the copy, or kNoFlow if done.
  [[nodiscard]] FlowNetwork clone_live(std::vector<FlowId>& id_map) const;

  /// Flows with ids below this have been retired (storage dropped); they
  /// were all complete and may no longer be queried.
  [[nodiscard]] FlowId id_floor() const { return base_; }

  /// Drop the storage of completed flows with id < `floor` once the caller
  /// guarantees it will never query them again.  Clamped to the oldest
  /// still-live flow, so it can never retire an in-flight one; amortized so
  /// small prefixes wait until the front-erase pays for itself.  This is
  /// what keeps a month-long serving network's flow table sized to its
  /// in-flight window instead of its whole history.
  void retire_done_below(FlowId floor);

  /// Drop all flows (completed or not) and zero the clock; links persist.
  void reset();

 private:
  enum class FlowState : std::uint8_t { kWaiting, kActive, kDone };

  struct Link {
    LinkSpec spec;
    double carried_bytes = 0.0;
    double peak_utilization = 0.0;
    /// Allocated rate / capacity as of the last recompute_rates().
    double utilization = 0.0;
  };
  struct Flow {
    std::vector<LinkId> route;
    double remaining = 0.0;  // bytes
    double rate = 0.0;       // bytes/second while active
    util::Seconds activation{0.0};
    util::Seconds completion{0.0};
    FlowState state = FlowState::kWaiting;
  };

  void recompute_rates();
  [[nodiscard]] util::Seconds next_event_time() const;
  void advance_to(util::Seconds when);
  void settle();

  [[nodiscard]] Flow& flow_ref(FlowId id) { return flows_[id - base_]; }
  [[nodiscard]] const Flow& flow_ref(FlowId id) const {
    return flows_[id - base_];
  }

  std::vector<Link> links_;
  /// Storage for flows with id >= base_ (flow `id` lives at
  /// flows_[id - base_]); ids below base_ were retired.
  std::vector<Flow> flows_;
  FlowId base_ = 0;
  /// Ids of flows not yet done, ascending (appended in id order, erased in
  /// place).  Keeps the event loop linear in the number of *live* flows,
  /// not all flows ever added (the Figure-2 harness pushes millions of
  /// flows through one network).
  std::vector<FlowId> live_;
  util::Seconds now_{0.0};
};

}  // namespace wrht::elec
