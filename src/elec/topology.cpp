#include "elec/topology.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace wrht::elec {
namespace {

void add_duplex(topo::Graph& graph, std::vector<LinkSpec>& specs,
                topo::VertexId a, topo::VertexId b, const LinkSpec& spec) {
  graph.add_bidirectional_edge(a, b, /*weight=*/1.0);
  specs.push_back(spec);  // forward edge
  specs.push_back(spec);  // backward edge
}

}  // namespace

ElectricalCluster ElectricalCluster::star(std::uint32_t num_hosts,
                                          const ElectricalParams& params) {
  WRHT_REQUIRE(num_hosts >= 2, "ElectricalCluster::star needs >= 2 hosts, got "
                                   << num_hosts);
  ElectricalCluster cluster;
  cluster.host_params_ = params;
  const topo::VertexId sw = cluster.graph_.add_vertex("switch");
  const LinkSpec spec{params.link_bandwidth, params.link_latency};
  for (std::uint32_t h = 0; h < num_hosts; ++h) {
    const topo::VertexId v =
        cluster.graph_.add_vertex("host" + std::to_string(h));
    cluster.hosts_.push_back(v);
    add_duplex(cluster.graph_, cluster.link_specs_, v, sw, spec);
  }
  return cluster;
}

ElectricalCluster ElectricalCluster::ring(std::uint32_t num_hosts,
                                          const ElectricalParams& params) {
  WRHT_REQUIRE(num_hosts >= 2, "ElectricalCluster::ring needs >= 2 hosts, got "
                                   << num_hosts);
  ElectricalCluster cluster;
  cluster.host_params_ = params;
  const LinkSpec spec{params.link_bandwidth, params.link_latency};
  for (std::uint32_t h = 0; h < num_hosts; ++h) {
    cluster.hosts_.push_back(
        cluster.graph_.add_vertex("host" + std::to_string(h)));
  }
  for (std::uint32_t h = 0; h < num_hosts; ++h) {
    add_duplex(cluster.graph_, cluster.link_specs_, cluster.hosts_[h],
               cluster.hosts_[(h + 1) % num_hosts], spec);
  }
  return cluster;
}

std::optional<ElectricalCluster> ElectricalCluster::two_level_tree(
    std::uint32_t num_hosts, std::uint32_t hosts_per_tor,
    double oversubscription, const ElectricalParams& params) {
  if (num_hosts < 2 || hosts_per_tor == 0 || oversubscription <= 0.0 ||
      !std::isfinite(oversubscription)) {
    return std::nullopt;
  }
  ElectricalCluster cluster;
  cluster.host_params_ = params;
  const topo::VertexId core = cluster.graph_.add_vertex("core");
  const LinkSpec host_spec{params.link_bandwidth, params.link_latency};
  const std::uint32_t num_tors = static_cast<std::uint32_t>(
      util::ceil_div(num_hosts, hosts_per_tor));
  std::vector<topo::VertexId> tors;
  for (std::uint32_t t = 0; t < num_tors; ++t) {
    const topo::VertexId tor =
        cluster.graph_.add_vertex("tor" + std::to_string(t));
    tors.push_back(tor);
    // Uplink sized for the ToR's hosts, divided by the oversubscription.
    const std::uint32_t tor_hosts =
        std::min(hosts_per_tor, num_hosts - t * hosts_per_tor);
    const LinkSpec uplink{
        params.link_bandwidth * (tor_hosts / oversubscription),
        params.link_latency};
    add_duplex(cluster.graph_, cluster.link_specs_, tor, core, uplink);
  }
  for (std::uint32_t h = 0; h < num_hosts; ++h) {
    const topo::VertexId v =
        cluster.graph_.add_vertex("host" + std::to_string(h));
    cluster.hosts_.push_back(v);
    add_duplex(cluster.graph_, cluster.link_specs_, v, tors[h / hosts_per_tor],
               host_spec);
  }
  return cluster;
}

const std::vector<LinkId>& ElectricalCluster::route(
    std::uint32_t host_a, std::uint32_t host_b) const {
  WRHT_REQUIRE(host_a < num_hosts() && host_b < num_hosts() &&
                   host_a != host_b,
               "ElectricalCluster::route: bad hosts " << host_a << ","
                                                      << host_b);
  const auto key = std::make_pair(host_a, host_b);
  const auto it = route_cache_.find(key);
  if (it != route_cache_.end()) return it->second;

  const auto path = graph_.shortest_path(hosts_[host_a], hosts_[host_b]);
  WRHT_CHECK(path.has_value(),
             "ElectricalCluster::route: hosts " << host_a << "," << host_b
                                                << " unreachable");
  return route_cache_.emplace(key, *path).first->second;
}

FlowNetwork ElectricalCluster::make_network() const {
  FlowNetwork network;
  for (const LinkSpec& spec : link_specs_) {
    network.add_link(spec);
  }
  return network;
}

util::Seconds ElectricalCluster::route_latency(std::uint32_t host_a,
                                               std::uint32_t host_b) const {
  util::Seconds total{0.0};
  for (const LinkId link : route(host_a, host_b)) {
    total += link_specs_[link].latency;
  }
  return total;
}

}  // namespace wrht::elec
