#include "harness/fig2.hpp"

#include "util/check.hpp"

#include "coll/algorithms.hpp"
#include "elec/schedule_runner.hpp"
#include "optical/network.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

namespace wrht::harness {

const char* algo_name(Algo algo) {
  switch (algo) {
    case Algo::kERing:
      return "E-Ring";
    case Algo::kRD:
      return "RD";
    case Algo::kORing:
      return "O-Ring";
    case Algo::kWrht:
      return "WRHT";
  }
  return "?";
}

const std::vector<Algo>& all_algos() {
  static const std::vector<Algo> algos{Algo::kERing, Algo::kRD, Algo::kORing,
                                       Algo::kWrht};
  return algos;
}

namespace {

util::Seconds time_electrical(const coll::Schedule& schedule,
                              std::uint32_t num_nodes, util::Bytes payload,
                              const ExperimentConfig& config) {
  const elec::ElectricalCluster cluster =
      elec::ElectricalCluster::star(num_nodes, config.electrical);
  return elec::run_on_electrical(schedule, cluster, payload).total;
}

// Chunked ring all-reduce on the optical ring.  Every transfer goes one hop
// clockwise, so a single wavelength carries the whole algorithm (the paper's
// point: O-Ring cannot exploit WDM).  Steps stream into the DES without
// materializing the annotation, which matters at N=1024 (2(N-1) steps of N
// transfers each).
util::Seconds time_optical_ring(std::uint32_t num_nodes, util::Bytes payload,
                                const ExperimentConfig& config) {
  const coll::Schedule schedule = coll::ring_allreduce(num_nodes);
  optical::OpticalRingNetwork network(num_nodes, config.optical);
  const topo::RingTopology& ring = network.ring();

  for (const coll::Step& step : schedule.steps()) {
    std::vector<optical::TimedTransfer> transfers;
    transfers.reserve(step.transfers.size());
    for (const coll::Transfer& t : step.transfers) {
      transfers.push_back(optical::TimedTransfer{
          t.src, t.dst, schedule.chunk_bytes(payload, t.chunk),
          ring.arc(t.src, t.dst, topo::Direction::kClockwise), {0}});
    }
    network.execute_step(transfers);
  }
  return network.now();
}

util::Seconds time_wrht(std::uint32_t num_nodes, util::Bytes payload,
                        const ExperimentConfig& config) {
  core::WrhtParams params;
  params.num_wavelengths = config.optical.wdm.num_wavelengths;
  const core::WrhtBuild build = core::build_wrht(num_nodes, params);
  return core::run_on_optical(build.annotated, config.optical, payload).total;
}

}  // namespace

util::Seconds allreduce_time(Algo algo, std::uint32_t num_nodes,
                             util::Bytes payload,
                             const ExperimentConfig& config) {
  switch (algo) {
    case Algo::kERing:
      return time_electrical(coll::ring_allreduce(num_nodes), num_nodes,
                             payload, config);
    case Algo::kRD:
      return time_electrical(coll::recursive_doubling(num_nodes), num_nodes,
                             payload, config);
    case Algo::kORing:
      return time_optical_ring(num_nodes, payload, config);
    case Algo::kWrht:
      return time_wrht(num_nodes, payload, config);
  }
  WRHT_CHECK(false,
             "allreduce_time: unknown algorithm " << static_cast<int>(algo));
}

std::vector<Fig2Row> run_fig2_panel(const dnn::Model& model,
                                    const ExperimentConfig& config) {
  const util::Bytes payload = model.gradient_bytes(config.dtype);
  std::vector<Fig2Row> rows;
  for (const std::uint32_t n : config.node_counts) {
    for (const Algo algo : all_algos()) {
      rows.push_back(Fig2Row{model.name(), n, algo,
                             allreduce_time(algo, n, payload, config)});
    }
  }
  return rows;
}

HeadlineReductions headline_reductions(const std::vector<Fig2Row>& rows) {
  // Pair every WRHT row with its same-(model, N) baselines and average the
  // relative reductions.
  double electrical_sum = 0.0;
  double oring_sum = 0.0;
  std::size_t electrical_count = 0;
  std::size_t oring_count = 0;

  for (const Fig2Row& wrht : rows) {
    if (wrht.algo != Algo::kWrht) continue;
    for (const Fig2Row& other : rows) {
      if (other.model != wrht.model || other.nodes != wrht.nodes) continue;
      if (other.time.value() <= 0.0) continue;
      const double reduction =
          1.0 - wrht.time.value() / other.time.value();
      if (other.algo == Algo::kERing || other.algo == Algo::kRD) {
        electrical_sum += reduction;
        ++electrical_count;
      } else if (other.algo == Algo::kORing) {
        oring_sum += reduction;
        ++oring_count;
      }
    }
  }

  HeadlineReductions out;
  if (electrical_count > 0) {
    out.vs_electrical_pct = 100.0 * electrical_sum /
                            static_cast<double>(electrical_count);
  }
  if (oring_count > 0) {
    out.vs_oring_pct = 100.0 * oring_sum / static_cast<double>(oring_count);
  }
  return out;
}

}  // namespace wrht::harness
