// Rendering of Figure-2 results: the human-readable panel table (raw and
// normalized times, matching the paper's normalized-time bars) and the CSV
// dump for plotting.  Also home to the hybrid-runtime substrate table: the
// per-fabric workload split a multi-tenant run reports when jobs land on
// both the optical ring and the electrical fallback.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "harness/fig2.hpp"
#include "obs/slo.hpp"

namespace wrht::harness {

/// One fabric's slice of a hybrid multi-tenant run, as the runtime's
/// per-substrate breakdown reports it.
struct SubstrateRow {
  std::string name;
  std::uint32_t jobs = 0;
  std::uint32_t executions = 0;
  std::uint64_t steps = 0;
  /// Completion time of the last job this fabric ran (its contribution to
  /// the shared-clock makespan).
  double makespan_seconds = 0.0;
};

/// Renders the per-substrate workload split of a hybrid run as a table,
/// with a totals row (the runtime guarantees slices sum to the totals).
[[nodiscard]] std::string render_substrate_table(
    const std::vector<SubstrateRow>& rows);

/// One job's multi-tenant contention verdict on a shared fabric.
struct SlowdownRow {
  std::string job;
  double turnaround_seconds = 0.0;
  /// Shared-fabric step time / quiet-network step time; 0 = no quiet
  /// baseline (rendered as "-").
  double slowdown = 0.0;
};

/// Renders per-job contention slowdowns (shared-fabric time over
/// quiet-network time, the runtime's JobRecord::contention_slowdown).
[[nodiscard]] std::string render_slowdown_table(
    const std::vector<SlowdownRow>& rows);

/// Renders the SLO block of a multi-tenant run: exact p50/p99/p999
/// turnaround and slowdown, the worst admission wait, and — when any job
/// carried a deadline — the deadline hit rate.
[[nodiscard]] std::string render_slo_table(const obs::SloStats& slo);

/// Renders per-link peak utilization of a shared fabric (fractions in
/// [0, 1], indexed by link id), hiding links that never reached
/// `threshold`.  The hot rows are the oversubscribed uplinks.
[[nodiscard]] std::string render_link_utilization(
    const std::vector<double>& peaks, double threshold = 0.05);

/// Renders one panel (one model) as a table.  Normalization divides every
/// time by the panel's WRHT time at the smallest node count, mirroring the
/// paper's "normalized time" axis.
[[nodiscard]] std::string render_panel(const std::vector<Fig2Row>& rows);

/// Renders the headline summary with the paper's claimed numbers alongside.
[[nodiscard]] std::string render_headline(const HeadlineReductions& measured);

/// CSV with columns model,nodes,algo,seconds,normalized.
void write_csv(std::ostream& out, const std::vector<Fig2Row>& rows);

}  // namespace wrht::harness
