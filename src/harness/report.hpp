// Rendering of Figure-2 results: the human-readable panel table (raw and
// normalized times, matching the paper's normalized-time bars) and the CSV
// dump for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/fig2.hpp"

namespace wrht::harness {

/// Renders one panel (one model) as a table.  Normalization divides every
/// time by the panel's WRHT time at the smallest node count, mirroring the
/// paper's "normalized time" axis.
[[nodiscard]] std::string render_panel(const std::vector<Fig2Row>& rows);

/// Renders the headline summary with the paper's claimed numbers alongside.
[[nodiscard]] std::string render_headline(const HeadlineReductions& measured);

/// CSV with columns model,nodes,algo,seconds,normalized.
void write_csv(std::ostream& out, const std::vector<Fig2Row>& rows);

}  // namespace wrht::harness
