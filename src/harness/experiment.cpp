#include "harness/experiment.hpp"

namespace wrht::harness {

ExperimentConfig paper_config() {
  ExperimentConfig config;
  config.node_counts = {128, 256, 512, 1024};
  // Optical and electrical defaults come from the structs themselves
  // (64 wavelengths x 25 Gb/s, millisecond-scale thermal MRR retuning;
  // 10 Gb/s electrical links, 25 us per hop) — see DESIGN.md §3.
  return config;
}

ExperimentConfig smoke_config() {
  ExperimentConfig config;
  config.node_counts = {8, 16, 32};
  config.optical.wdm.num_wavelengths = 8;
  return config;
}

}  // namespace wrht::harness
