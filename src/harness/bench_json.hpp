// Machine-readable bench output: one flat JSON object per bench run,
// written as BENCH_<name>.json.
//
// The report benches print human-readable tables and PASS/FAIL verdicts;
// none of that is diffable across commits.  BenchJson is the side channel
// CI archives: each bench records its headline metrics (makespans,
// slowdowns, turnarounds) under stable keys, the smoke step uploads the
// files as artifacts, and the repo's perf trajectory becomes a per-commit
// series instead of folklore.
//
// Deliberately tiny: flat string->number metrics plus string->string notes,
// insertion-ordered, no nesting, no external JSON dependency.  Benches run
// in CI sandboxes, so the output directory is overridable via the
// BENCH_JSON_DIR environment variable without touching any bench's code.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace wrht::harness {

class BenchJson {
 public:
  /// `name` becomes the BENCH_<name>.json filename; keep it
  /// [A-Za-z0-9_-]+ (anything else is replaced with '_').
  explicit BenchJson(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Record a numeric metric.  Last write wins on a repeated key.
  void metric(const std::string& key, double value);
  /// Record a string annotation (config knobs, verdicts).
  void note(const std::string& key, std::string value);

  /// The serialized object: {"bench": <name>, notes..., metrics...}.
  [[nodiscard]] std::string to_json() const;

  /// Write BENCH_<name>.json into `dir` if given, else into
  /// $BENCH_JSON_DIR, else the working directory.  Returns false (after
  /// printing a warning) when the file cannot be opened — a bench must
  /// never fail its run over a missing artifact directory.
  bool write(const std::string& dir = {}) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

}  // namespace wrht::harness
