// Shared experiment configuration for the benchmark harness.
//
// One ExperimentConfig fixes every knob of a Figure-2 style run: the node
// scales, the optical fabric (wavelengths, bandwidth, overheads), the
// electrical cluster, and the gradient precision.  DESIGN.md §3 documents
// the calibration of the defaults.
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/model.hpp"
#include "elec/topology.hpp"
#include "optical/params.hpp"

namespace wrht::harness {

struct ExperimentConfig {
  std::vector<std::uint32_t> node_counts{128, 256, 512, 1024};
  optical::OpticalParams optical{};
  elec::ElectricalParams electrical{};
  dnn::DType dtype = dnn::DType::kF32;
};

/// The configuration used by the Figure-2 reproduction benches (library
/// defaults; a single place to recalibrate).
[[nodiscard]] ExperimentConfig paper_config();

/// A scaled-down configuration for tests and smoke runs: small node counts,
/// same physics.
[[nodiscard]] ExperimentConfig smoke_config();

}  // namespace wrht::harness
