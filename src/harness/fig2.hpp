// The Figure-2 experiment: all-reduce communication time of
//   E-Ring  — chunked ring all-reduce on the electrical cluster (flow sim)
//   RD      — recursive doubling on the electrical cluster (flow sim)
//   O-Ring  — chunked ring all-reduce on the optical ring, one wavelength
//   WRHT    — the paper's schedule on the optical ring
// for one DNN model across the node-count sweep.
#pragma once

#include <string>
#include <vector>

#include "dnn/model.hpp"
#include "harness/experiment.hpp"
#include "util/units.hpp"

namespace wrht::harness {

enum class Algo : std::uint8_t { kERing, kRD, kORing, kWrht };

[[nodiscard]] const char* algo_name(Algo algo);
[[nodiscard]] const std::vector<Algo>& all_algos();

struct Fig2Row {
  std::string model;
  std::uint32_t nodes = 0;
  Algo algo = Algo::kWrht;
  util::Seconds time;
};

/// Simulated all-reduce time of one (algorithm, scale, payload) point.
[[nodiscard]] util::Seconds allreduce_time(Algo algo, std::uint32_t num_nodes,
                                           util::Bytes payload,
                                           const ExperimentConfig& config);

/// All rows of one panel of Figure 2 (one model, all algorithms x scales).
[[nodiscard]] std::vector<Fig2Row> run_fig2_panel(
    const dnn::Model& model, const ExperimentConfig& config);

/// Headline numbers: average relative reduction of WRHT's time versus the
/// electrical algorithms (E-Ring, RD) and versus O-Ring, over all rows.
/// (The paper reports 75.76% and 91.86%.)
struct HeadlineReductions {
  double vs_electrical_pct = 0.0;
  double vs_oring_pct = 0.0;
};
[[nodiscard]] HeadlineReductions headline_reductions(
    const std::vector<Fig2Row>& rows);

}  // namespace wrht::harness
