#include "harness/report.hpp"

#include <algorithm>
#include "util/check.hpp"

#include "util/csv.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace wrht::harness {
namespace {

double normalization_base(const std::vector<Fig2Row>& rows) {
  // WRHT at the smallest node count in the panel.
  double base = 0.0;
  std::uint32_t smallest = 0;
  for (const Fig2Row& row : rows) {
    if (row.algo != Algo::kWrht) continue;
    if (smallest == 0 || row.nodes < smallest) {
      smallest = row.nodes;
      base = row.time.value();
    }
  }
  WRHT_REQUIRE(base > 0.0, "render_panel: no WRHT row to normalize against");
  return base;
}

}  // namespace

std::string render_substrate_table(const std::vector<SubstrateRow>& rows) {
  if (rows.empty()) return "(no substrates)\n";
  util::Table table({"substrate", "jobs", "executions", "steps", "makespan"});
  std::uint32_t jobs = 0;
  std::uint32_t executions = 0;
  std::uint64_t steps = 0;
  double makespan = 0.0;
  for (const SubstrateRow& row : rows) {
    table.add_row({row.name, std::to_string(row.jobs),
                   std::to_string(row.executions), std::to_string(row.steps),
                   util::to_string(util::Seconds(row.makespan_seconds))});
    jobs += row.jobs;
    executions += row.executions;
    steps += row.steps;
    makespan = std::max(makespan, row.makespan_seconds);
  }
  table.add_separator();
  table.add_row({"total", std::to_string(jobs), std::to_string(executions),
                 std::to_string(steps),
                 util::to_string(util::Seconds(makespan))});
  return "Per-substrate workload split\n" + table.render();
}

std::string render_slowdown_table(const std::vector<SlowdownRow>& rows) {
  if (rows.empty()) return "(no jobs)\n";
  util::Table table({"job", "turnaround", "contention slowdown"});
  double worst = 0.0;
  for (const SlowdownRow& row : rows) {
    table.add_row({row.job,
                   util::to_string(util::Seconds(row.turnaround_seconds)),
                   row.slowdown > 0.0
                       ? util::format_double(row.slowdown, 3) + "x"
                       : "-"});
    worst = std::max(worst, row.slowdown);
  }
  table.add_separator();
  table.add_row({"worst", "",
                 worst > 0.0 ? util::format_double(worst, 3) + "x" : "-"});
  return "Per-job shared-fabric contention\n" + table.render();
}

std::string render_slo_table(const obs::SloStats& slo) {
  if (slo.jobs == 0) return "SLO: no completed jobs\n";
  util::Table table({"metric", "p50", "p99", "p999"});
  table.add_row({"turnaround", util::to_string(slo.p50_turnaround),
                 util::to_string(slo.p99_turnaround),
                 util::to_string(slo.p999_turnaround)});
  table.add_row({"slowdown", util::format_double(slo.p50_slowdown, 3) + "x",
                 util::format_double(slo.p99_slowdown, 3) + "x",
                 util::format_double(slo.p999_slowdown, 3) + "x"});
  std::string out = "SLO percentiles (" + std::to_string(slo.jobs) +
                    " completed jobs)\n" + table.render();
  out += "max admission wait: " + util::to_string(slo.max_wait) + "\n";
  if (slo.deadline_jobs > 0) {
    out += "deadline hit rate : " + std::to_string(slo.deadline_hits) + "/" +
           std::to_string(slo.deadline_jobs) + " (" +
           util::format_double(slo.deadline_hit_rate() * 100.0, 1) + "%)\n";
  }
  return out;
}

std::string render_link_utilization(const std::vector<double>& peaks,
                                    double threshold) {
  util::Table table({"link", "peak utilization"});
  std::size_t shown = 0;
  for (std::size_t link = 0; link < peaks.size(); ++link) {
    if (peaks[link] < threshold) continue;
    table.add_row({std::to_string(link),
                   util::format_double(peaks[link] * 100.0, 1) + "%"});
    ++shown;
  }
  if (shown == 0) {
    return "Per-link peak utilization: no link reached " +
           util::format_double(threshold * 100.0, 1) + "%\n";
  }
  return "Per-link peak utilization (>= " +
         util::format_double(threshold * 100.0, 1) + "%, " +
         std::to_string(shown) + "/" + std::to_string(peaks.size()) +
         " links)\n" + table.render();
}

std::string render_panel(const std::vector<Fig2Row>& rows) {
  if (rows.empty()) return "(no rows)\n";
  const double base = normalization_base(rows);

  // Group by node count (rows arrive model-major, nodes-major, algo-minor).
  std::vector<std::uint32_t> node_counts;
  for (const Fig2Row& row : rows) {
    if (std::find(node_counts.begin(), node_counts.end(), row.nodes) ==
        node_counts.end()) {
      node_counts.push_back(row.nodes);
    }
  }
  std::sort(node_counts.begin(), node_counts.end());

  util::Table table({"nodes", "algorithm", "time", "normalized"});
  for (const std::uint32_t n : node_counts) {
    bool first = true;
    for (const Algo algo : all_algos()) {
      for (const Fig2Row& row : rows) {
        if (row.nodes != n || row.algo != algo) continue;
        if (first) table.add_separator();
        first = false;
        table.add_row({std::to_string(n), algo_name(algo),
                       util::to_string(row.time),
                       util::format_double(row.time.value() / base, 2)});
      }
    }
  }
  return "Figure 2 panel — " + rows.front().model +
         " (normalized to WRHT @ N=" + std::to_string(node_counts.front()) +
         ")\n" + table.render();
}

std::string render_headline(const HeadlineReductions& measured) {
  util::Table table({"comparison", "paper", "measured"});
  table.add_row({"WRHT vs electrical (E-Ring, RD avg)", "75.76%",
                 util::format_double(measured.vs_electrical_pct, 2) + "%"});
  table.add_row({"WRHT vs optical ring (O-Ring)", "91.86%",
                 util::format_double(measured.vs_oring_pct, 2) + "%"});
  return "Headline communication-time reduction\n" + table.render();
}

void write_csv(std::ostream& out, const std::vector<Fig2Row>& rows) {
  util::CsvWriter csv(out);
  csv.write_header({"model", "nodes", "algo", "seconds", "normalized"});
  if (rows.empty()) return;
  const double base = normalization_base(rows);
  for (const Fig2Row& row : rows) {
    csv.write_row({row.model, std::to_string(row.nodes), algo_name(row.algo),
                   util::format_double(row.time.value(), 9),
                   util::format_double(row.time.value() / base, 4)});
  }
}

}  // namespace wrht::harness
