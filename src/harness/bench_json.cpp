#include "harness/bench_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace wrht::harness {

namespace {

std::string sanitize_name(std::string name) {
  if (name.empty()) name = "unnamed";
  for (char& c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return name;
}

std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double value) {
  // JSON has no NaN/Inf; a bench recording one has a bug worth seeing in
  // the artifact rather than a parser error hiding it.
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

BenchJson::BenchJson(std::string name) : name_(sanitize_name(std::move(name))) {}

void BenchJson::metric(const std::string& key, double value) {
  for (auto& [k, v] : metrics_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(key, value);
}

void BenchJson::note(const std::string& key, std::string value) {
  for (auto& [k, v] : notes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  notes_.emplace_back(key, std::move(value));
}

std::string BenchJson::to_json() const {
  std::string out = "{\n  \"bench\": \"" + escape(name_) + "\"";
  for (const auto& [key, value] : notes_) {
    out += ",\n  \"" + escape(key) + "\": \"" + escape(value) + "\"";
  }
  for (const auto& [key, value] : metrics_) {
    out += ",\n  \"" + escape(key) + "\": " + number(value);
  }
  out += "\n}\n";
  return out;
}

bool BenchJson::write(const std::string& dir) const {
  std::string target = dir;
  if (target.empty()) {
    const char* env = std::getenv("BENCH_JSON_DIR");
    if (env != nullptr && env[0] != '\0') target = env;
  }
  std::string path = "BENCH_" + name_ + ".json";
  if (!target.empty()) path = target + "/" + path;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
    return false;
  }
  out << to_json();
  return out.good();
}

}  // namespace wrht::harness
