// Release-safe invariant checks.
//
// Every correctness oracle in this repo (schedule validation, flow replay,
// SLO recomputation) ultimately funnels into a condition that must abort the
// process when it fails.  `assert` is compiled out under NDEBUG, which is
// exactly the configuration the Release CI leg and the nightly stress sweep
// run in — so raw asserts arm the tripwires only in debug builds.  These
// macros stay active in every build type:
//
//   WRHT_REQUIRE(cond, msg)  — caller-facing precondition ("you passed me a
//                              bad argument"); the message should name the
//                              offending input.
//   WRHT_CHECK(cond, msg)    — internal invariant ("my own state is
//                              inconsistent"); firing one is a bug in this
//                              repo, not in the caller.
//
// Both print file:line, the failed condition, and a streamed message, then
// abort.  The message argument may chain values:
//
//   WRHT_REQUIRE(width > 0, "band width must be positive, got " << width);
//
// simlint's `assert-abort` rule bans raw assert()/std::abort() in src/, so
// this header is the only sanctioned way to express a fatal condition.
#pragma once

#include <sstream>
#include <string>

namespace wrht::util {

/// Prints "<macro> failed at <file>:<line>: (<condition>)\n  <message>" to
/// stderr and aborts.  Deliberately bypasses util/logging: a failed check
/// must reach stderr even when the logger's level filter (or the logger
/// itself) is the broken thing.
[[noreturn]] void check_fail(const char* file, int line, const char* macro,
                             const char* condition, const std::string& message);

namespace detail {

// Stream builder so check messages can interleave text and values without
// the call site owning an ostringstream.  The macro wraps the user's
// message expression as `CheckMessage{} << msg`, which also makes a bare
// `"text" << value` chain well-formed.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[nodiscard]] std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace wrht::util

#define WRHT_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::wrht::util::check_fail(                                             \
          __FILE__, __LINE__, "WRHT_CHECK", #cond,                          \
          (::wrht::util::detail::CheckMessage{} << msg).str());             \
    }                                                                       \
  } while (false)

#define WRHT_REQUIRE(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::wrht::util::check_fail(                                             \
          __FILE__, __LINE__, "WRHT_REQUIRE", #cond,                        \
          (::wrht::util::detail::CheckMessage{} << msg).str());             \
    }                                                                       \
  } while (false)
