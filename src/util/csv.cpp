#include "util/csv.hpp"

#include "util/check.hpp"

namespace wrht::util {
namespace {

void write_fields(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out << ',';
    out << CsvWriter::escape(fields[i]);
  }
  out << '\n';
}

}  // namespace

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  columns_ = columns.size();
  write_fields(*out_, columns);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  WRHT_REQUIRE(columns_ == 0 || fields.size() == columns_,
               "CsvWriter: row has " << fields.size()
                                     << " fields, header declared "
                                     << columns_);
  write_fields(*out_, fields);
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace wrht::util
