#include "util/table.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace wrht::util {

Table::Table(std::vector<std::string> header, std::vector<Align> alignment)
    : header_(std::move(header)), alignment_(std::move(alignment)) {
  if (alignment_.empty()) {
    alignment_.assign(header_.size(), Align::kRight);
    if (!alignment_.empty()) alignment_[0] = Align::kLeft;
  }
  WRHT_REQUIRE(alignment_.size() == header_.size(),
               "Table: " << alignment_.size() << " alignments for "
                         << header_.size() << " header fields");
}

void Table::add_row(std::vector<std::string> fields) {
  WRHT_REQUIRE(fields.size() == header_.size(),
               "Table: row has " << fields.size() << " fields, header has "
                                 << header_.size());
  rows_.push_back(Row{std::move(fields), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.fields.size(); ++c) {
      width[c] = std::max(width[c], row.fields[c].size());
    }
  }

  const auto render_rule = [&](std::string& out) {
    for (const std::size_t w : width) {
      out += '+';
      out.append(w + 2, '-');
    }
    out += "+\n";
  };
  const auto render_cells = [&](std::string& out,
                                const std::vector<std::string>& fields) {
    for (std::size_t c = 0; c < fields.size(); ++c) {
      const std::size_t pad = width[c] - fields[c].size();
      out += "| ";
      if (alignment_[c] == Align::kRight) out.append(pad, ' ');
      out += fields[c];
      if (alignment_[c] == Align::kLeft) out.append(pad, ' ');
      out += ' ';
    }
    out += "|\n";
  };

  std::string out;
  render_rule(out);
  render_cells(out, header_);
  render_rule(out);
  for (const Row& row : rows_) {
    if (row.separator_before) render_rule(out);
    render_cells(out, row.fields);
  }
  render_rule(out);
  return out;
}

}  // namespace wrht::util
