// Tiny command-line flag parser for examples and bench binaries.
// Supports --flag=value, --flag value, and boolean --flag forms, with typed
// accessors and an auto-generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wrht::util {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Declare a flag before parsing.  `default_value` doubles as the
  /// documentation of the flag's type.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv.  Returns false (after printing usage) on unknown flags or
  /// when --help was requested.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  const Flag& require(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wrht::util
