#include "util/string_utils.hpp"

#include <array>
#include <cctype>
#include <cstdio>

namespace wrht::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string format_double(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string(buf.data());
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace wrht::util
