// Strong unit types used throughout the library.
//
// The simulators mix quantities with very different scales (nanosecond
// propagation delays vs. millisecond tuning times; kilobyte chunks vs.
// gigabyte gradients).  Wrapping them in distinct types catches unit mix-ups
// at compile time and gives every quantity a self-describing formatter.
#pragma once

#include <cstdint>
#include <string>

namespace wrht::util {

/// A byte count.  Plain integral wrapper with checked helpers.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::uint64_t count() const { return count_; }
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(count_);
  }

  constexpr Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.count_ + b.count_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.count_ - b.count_);
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) {
    return Bytes(a.count_ * k);
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) {
    return Bytes(a.count_ * k);
  }
  friend constexpr Bytes operator/(Bytes a, std::uint64_t k) {
    return Bytes(a.count_ / k);
  }
  friend constexpr auto operator<=>(Bytes a, Bytes b) = default;

 private:
  std::uint64_t count_ = 0;
};

constexpr Bytes kilobytes(std::uint64_t k) { return Bytes(k * 1000ULL); }
constexpr Bytes megabytes(std::uint64_t m) { return Bytes(m * 1000'000ULL); }
constexpr Bytes gigabytes(std::uint64_t g) { return Bytes(g * 1000'000'000ULL); }
constexpr Bytes kibibytes(std::uint64_t k) { return Bytes(k << 10); }
constexpr Bytes mebibytes(std::uint64_t m) { return Bytes(m << 20); }
constexpr Bytes gibibytes(std::uint64_t g) { return Bytes(g << 30); }

/// Simulated time in seconds (double; simulations never need sub-femtosecond
/// resolution and a double keeps the event queue arithmetic simple).
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Seconds& operator+=(Seconds other) {
    value_ += other.value_;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds(a.value_ + b.value_);
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds(a.value_ - b.value_);
  }
  friend constexpr Seconds operator*(Seconds a, double k) {
    return Seconds(a.value_ * k);
  }
  friend constexpr Seconds operator*(double k, Seconds a) {
    return Seconds(a.value_ * k);
  }
  friend constexpr double operator/(Seconds a, Seconds b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Seconds a, Seconds b) = default;

 private:
  double value_ = 0.0;
};

constexpr Seconds milliseconds(double ms) { return Seconds(ms * 1e-3); }
constexpr Seconds microseconds(double us) { return Seconds(us * 1e-6); }
constexpr Seconds nanoseconds(double ns) { return Seconds(ns * 1e-9); }

/// Link/wavelength bandwidth in bytes per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bytes_per_second)
      : bytes_per_second_(bytes_per_second) {}

  [[nodiscard]] constexpr double bytes_per_second() const {
    return bytes_per_second_;
  }
  [[nodiscard]] constexpr double bits_per_second() const {
    return bytes_per_second_ * 8.0;
  }

  /// Serialization delay of `bytes` at this rate.
  [[nodiscard]] constexpr Seconds transfer_time(Bytes bytes) const {
    return Seconds(bytes.as_double() / bytes_per_second_);
  }

  friend constexpr Bandwidth operator*(Bandwidth b, double k) {
    return Bandwidth(b.bytes_per_second_ * k);
  }
  friend constexpr Bandwidth operator/(Bandwidth b, double k) {
    return Bandwidth(b.bytes_per_second_ / k);
  }
  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) = default;

 private:
  double bytes_per_second_ = 0.0;
};

constexpr Bandwidth gbps(double gigabits_per_second) {
  return Bandwidth(gigabits_per_second * 1e9 / 8.0);
}
constexpr Bandwidth gBps(double gigabytes_per_second) {
  return Bandwidth(gigabytes_per_second * 1e9);
}

/// Human-readable formatting: "249.2 MB", "1.35 ms", "25.0 Gb/s".
[[nodiscard]] std::string to_string(Bytes b);
[[nodiscard]] std::string to_string(Seconds s);
[[nodiscard]] std::string to_string(Bandwidth b);

}  // namespace wrht::util
