// Deterministic, seedable RNG (splitmix64 + xoshiro256**) used by tests and
// workload generators.  std::mt19937 is avoided so the exact sequences are
// reproducible across standard library implementations.
#pragma once

#include <cstdint>

namespace wrht::util {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    // splitmix64 seeding, the initializer recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be positive.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace wrht::util
