#include "util/cli.hpp"

#include <cstdio>

#include "util/check.hpp"
#include "util/string_utils.hpp"

namespace wrht::util {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{default_value, help, std::nullopt};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      // simlint-allow(printf-output): --help text is the program's contract
      // with the terminal user, not simulator diagnostics.
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (const std::size_t eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      // simlint-allow(printf-output): flag errors must reach the terminal
      // user even when logging is disabled.
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    if (!value.has_value()) {
      // "--flag value" form, unless the flag is boolean-like and the next
      // token is another flag (or absent), in which case it means "true".
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        value = std::string(argv[++i]);
      } else {
        value = "true";
      }
    }
    it->second.value = std::move(value);
  }
  return true;
}

const CliParser::Flag& CliParser::require(const std::string& name) const {
  const auto it = flags_.find(name);
  WRHT_REQUIRE(it != flags_.end(),
               "CliParser: flag --" << name << " was never declared");
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& flag = require(name);
  return flag.value.value_or(flag.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(get_string(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get_string(name).c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string CliParser::usage() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.default_value + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace wrht::util
