// CSV emission for benchmark results.  Every bench binary can dump its rows
// to a machine-readable file alongside the human-readable table.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace wrht::util {

/// Streams rows of comma-separated values with RFC-4180 quoting.
class CsvWriter {
 public:
  /// The writer does not own the stream; it must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& fields);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// Quote a field if it contains a comma, quote, or newline.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream* out_;
  std::size_t rows_ = 0;
  std::size_t columns_ = 0;
};

}  // namespace wrht::util
