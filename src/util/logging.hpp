// Minimal leveled logger.  Simulation codes print a lot of diagnostics while
// being debugged and none in production sweeps; a global level switch keeps
// both modes cheap (disabled levels skip formatting entirely).
#pragma once

#include <sstream>
#include <string>

namespace wrht::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log level.  Defaults to kWarn so tests and benches are quiet.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit a single log line (newline appended) if `level` is enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace wrht::util

#define WRHT_LOG(level)                                       \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::wrht::util::log_level())) {          \
  } else                                                      \
    ::wrht::util::detail::LogStream(level)

#define WRHT_DEBUG() WRHT_LOG(::wrht::util::LogLevel::kDebug)
#define WRHT_INFO() WRHT_LOG(::wrht::util::LogLevel::kInfo)
#define WRHT_WARN() WRHT_LOG(::wrht::util::LogLevel::kWarn)
#define WRHT_ERROR() WRHT_LOG(::wrht::util::LogLevel::kError)
