// ASCII table rendering for the benchmark harness.  The Figure-2 benches
// print the same rows the paper plots; a fixed-width table keeps the output
// diffable run-to-run.
#pragma once

#include <string>
#include <vector>

namespace wrht::util {

enum class Align { kLeft, kRight };

/// Accumulates rows and renders them with per-column widths.
class Table {
 public:
  explicit Table(std::vector<std::string> header,
                 std::vector<Align> alignment = {});

  void add_row(std::vector<std::string> fields);
  /// Inserts a horizontal rule before the next row.
  void add_separator();

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> fields;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace wrht::util
