// String helpers shared by the CSV/table writers and CLI parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wrht::util {

/// Split on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view separator);

/// printf-style number formatting used by report tables.
[[nodiscard]] std::string format_double(double value, int precision = 3);

/// true if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace wrht::util
