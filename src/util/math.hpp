// Small integer-math helpers shared by schedule builders and cost models.
// All helpers are total functions over their documented domains and abort on
// precondition violations (schedule construction is setup-time code, so
// defensive checks cost nothing).
#pragma once

#include <cstdint>

namespace wrht::util {

/// ceil(a / b) for non-negative a, positive b.
[[nodiscard]] std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b);

/// floor(log2(x)) for x >= 1.
[[nodiscard]] unsigned floor_log2(std::uint64_t x);

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] unsigned ceil_log2(std::uint64_t x);

/// true iff x is a power of two (x >= 1).
[[nodiscard]] bool is_pow2(std::uint64_t x);

/// base^exp with overflow abort; exp small (schedule level counts).
[[nodiscard]] std::uint64_t ipow(std::uint64_t base, unsigned exp);

/// Smallest L >= 0 such that base^L >= x, i.e. ceil(log_base(x)).
/// Computed with pure integer arithmetic so the schedule math never
/// inherits floating point rounding (log(1000)/log(10) style bugs).
/// Requires base >= 2 and x >= 1.
[[nodiscard]] unsigned ceil_log(std::uint64_t base, std::uint64_t x);

/// floor(sqrt(x)) by integer Newton iteration.
[[nodiscard]] std::uint64_t isqrt(std::uint64_t x);

/// Positive modulo: result in [0, m) even for negative a. m > 0.
[[nodiscard]] std::int64_t pos_mod(std::int64_t a, std::int64_t m);

/// |a - b| <= eps.  The approved spelling for floating-point equality:
/// simlint's `float-eq` rule bans raw ==/!= against floating literals, so a
/// comparison is either epsilon-based through these helpers or carries a
/// waiver arguing why the exact bit pattern is meaningful (e.g. a value
/// assigned verbatim and never recomputed).  eps must be >= 0.
[[nodiscard]] bool approx_eq(double a, double b, double eps);

/// |x| <= eps, i.e. approx_eq(x, 0.0, eps).
[[nodiscard]] bool approx_zero(double x, double eps);

}  // namespace wrht::util
