#include "util/math.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace wrht::util {
namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "wrht::util::math precondition violated: %s\n", what);
  std::abort();
}

}  // namespace

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  if (b == 0) die("ceil_div divisor must be positive");
  if (a == 0) return 0;
  return (a - 1) / b + 1;
}

unsigned floor_log2(std::uint64_t x) {
  if (x == 0) die("floor_log2 argument must be >= 1");
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

unsigned ceil_log2(std::uint64_t x) {
  if (x == 0) die("ceil_log2 argument must be >= 1");
  const unsigned f = floor_log2(x);
  return (x == (std::uint64_t{1} << f)) ? f : f + 1;
}

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 &&
        result > std::numeric_limits<std::uint64_t>::max() / base) {
      die("ipow overflow");
    }
    result *= base;
  }
  return result;
}

unsigned ceil_log(std::uint64_t base, std::uint64_t x) {
  if (base < 2) die("ceil_log base must be >= 2");
  if (x == 0) die("ceil_log argument must be >= 1");
  unsigned level = 0;
  std::uint64_t reach = 1;  // base^level
  while (reach < x) {
    // reach*base can overflow only when reach already covers any practical x;
    // cap instead of multiplying past the limit.
    if (reach > std::numeric_limits<std::uint64_t>::max() / base) {
      return level + 1;
    }
    reach *= base;
    ++level;
  }
  return level;
}

std::uint64_t isqrt(std::uint64_t x) {
  if (x < 2) return x;
  std::uint64_t r = x;
  std::uint64_t next = (r + x / r) / 2;
  while (next < r) {
    r = next;
    next = (r + x / r) / 2;
  }
  return r;
}

std::int64_t pos_mod(std::int64_t a, std::int64_t m) {
  if (m <= 0) die("pos_mod modulus must be positive");
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

}  // namespace wrht::util
