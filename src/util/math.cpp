#include "util/math.hpp"

#include <limits>

#include "util/check.hpp"

namespace wrht::util {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  WRHT_REQUIRE(b != 0, "ceil_div divisor must be positive");
  if (a == 0) return 0;
  return (a - 1) / b + 1;
}

unsigned floor_log2(std::uint64_t x) {
  WRHT_REQUIRE(x != 0, "floor_log2 argument must be >= 1");
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

unsigned ceil_log2(std::uint64_t x) {
  WRHT_REQUIRE(x != 0, "ceil_log2 argument must be >= 1");
  const unsigned f = floor_log2(x);
  return (x == (std::uint64_t{1} << f)) ? f : f + 1;
}

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < exp; ++i) {
    WRHT_REQUIRE(base == 0 ||
                     result <= std::numeric_limits<std::uint64_t>::max() / base,
                 "ipow overflow: " << base << "^" << exp);
    result *= base;
  }
  return result;
}

unsigned ceil_log(std::uint64_t base, std::uint64_t x) {
  WRHT_REQUIRE(base >= 2, "ceil_log base must be >= 2, got " << base);
  WRHT_REQUIRE(x != 0, "ceil_log argument must be >= 1");
  unsigned level = 0;
  std::uint64_t reach = 1;  // base^level
  while (reach < x) {
    // reach*base can overflow only when reach already covers any practical x;
    // cap instead of multiplying past the limit.
    if (reach > std::numeric_limits<std::uint64_t>::max() / base) {
      return level + 1;
    }
    reach *= base;
    ++level;
  }
  return level;
}

std::uint64_t isqrt(std::uint64_t x) {
  if (x < 2) return x;
  std::uint64_t r = x;
  std::uint64_t next = (r + x / r) / 2;
  while (next < r) {
    r = next;
    next = (r + x / r) / 2;
  }
  return r;
}

std::int64_t pos_mod(std::int64_t a, std::int64_t m) {
  WRHT_REQUIRE(m > 0, "pos_mod modulus must be positive, got " << m);
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

bool approx_eq(double a, double b, double eps) {
  WRHT_REQUIRE(eps >= 0.0, "approx_eq epsilon must be >= 0, got " << eps);
  const double diff = a - b;
  return (diff < 0.0 ? -diff : diff) <= eps;
}

bool approx_zero(double x, double eps) { return approx_eq(x, 0.0, eps); }

}  // namespace wrht::util
