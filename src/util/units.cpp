#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace wrht::util {
namespace {

std::string format_scaled(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.4g %s", value, unit);
  return std::string(buf.data());
}

}  // namespace

std::string to_string(Bytes b) {
  const double v = b.as_double();
  if (v >= 1e9) return format_scaled(v / 1e9, "GB");
  if (v >= 1e6) return format_scaled(v / 1e6, "MB");
  if (v >= 1e3) return format_scaled(v / 1e3, "KB");
  return format_scaled(v, "B");
}

std::string to_string(Seconds s) {
  const double v = s.value();
  const double mag = std::fabs(v);
  if (mag >= 1.0) return format_scaled(v, "s");
  if (mag >= 1e-3) return format_scaled(v * 1e3, "ms");
  if (mag >= 1e-6) return format_scaled(v * 1e6, "us");
  return format_scaled(v * 1e9, "ns");
}

std::string to_string(Bandwidth b) {
  const double bits = b.bits_per_second();
  if (bits >= 1e12) return format_scaled(bits / 1e12, "Tb/s");
  if (bits >= 1e9) return format_scaled(bits / 1e9, "Gb/s");
  if (bits >= 1e6) return format_scaled(bits / 1e6, "Mb/s");
  return format_scaled(bits, "b/s");
}

}  // namespace wrht::util
