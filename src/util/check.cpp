#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace wrht::util {

[[noreturn]] void check_fail(const char* file, int line, const char* macro,
                             const char* condition,
                             const std::string& message) {
  // simlint-allow(printf-output): a failed invariant must reach stderr
  // unconditionally, even when util/logging is filtered or broken.
  std::fprintf(stderr, "%s failed at %s:%d: (%s)\n  %s\n", macro, file, line,
               condition, message.c_str());
  std::fflush(stderr);
  // simlint-allow(assert-abort): the single sanctioned abort; every other
  // fatal path in src/ must route here through WRHT_CHECK/WRHT_REQUIRE.
  std::abort();
}

}  // namespace wrht::util
