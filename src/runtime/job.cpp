#include "runtime/job.hpp"

namespace wrht::runtime {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kSubmitted:
      return "submitted";
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kPreempted:
      return "preempted";
    case JobState::kDone:
      return "done";
    case JobState::kRejected:
      return "rejected";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

const char* substrate_pin_name(SubstratePin pin) {
  switch (pin) {
    case SubstratePin::kAny:
      return "any";
    case SubstratePin::kOpticalOnly:
      return "optical-only";
    case SubstratePin::kElectricalOnly:
      return "electrical-only";
  }
  return "?";
}

const char* substrate_kind_name(SubstrateKind kind) {
  switch (kind) {
    case SubstrateKind::kOptical:
      return "optical";
    case SubstrateKind::kElectrical:
      return "electrical";
  }
  return "?";
}

}  // namespace wrht::runtime
