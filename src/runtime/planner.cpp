#include "runtime/planner.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace wrht::runtime {

namespace {

using FreeInterval = SpectrumArbiter::FreeInterval;

/// Seconds until the outstanding band ending exactly at `edge` (when
/// `left_neighbor`) or starting exactly at `edge` (otherwise) is predicted
/// to free.  Spectrum boundaries and free-free seams (impossible: intervals
/// are maximal) have no neighbor and never free — +infinity.
double neighbor_wait(const PlannerContext& ctx, std::uint32_t edge,
                     bool left_neighbor) {
  if (left_neighbor && edge == 0) {
    return std::numeric_limits<double>::infinity();
  }
  if (!left_neighbor && edge == ctx.total_wavelengths) {
    return std::numeric_limits<double>::infinity();
  }
  for (const OutstandingBand& out : ctx.outstanding) {
    const bool abuts = left_neighbor
                           ? out.band.base + out.band.width == edge
                           : out.band.base == edge;
    if (abuts) {
      return std::max(0.0, (out.predicted_end - ctx.now).value());
    }
  }
  // No granted band abuts this edge (e.g. the neighbor is a reservation the
  // substrate has not registered, or the snapshot is partial): treat as
  // never freeing rather than guessing.
  return std::numeric_limits<double>::infinity();
}

/// How many of `pending` (minimum widths of jobs still waiting) cannot be
/// packed into `capacities` (residual free-interval widths), under greedy
/// first-fit-decreasing.  Bands are contiguous but end-carves leave
/// contiguous remainders, so an interval of width C holds any width set
/// summing to <= C — plain bin packing, and FFD is a deterministic,
/// near-optimal proxy for the joint-placement feasibility of the rest of
/// the demand.
std::uint32_t blocked_pending(std::vector<std::uint32_t> capacities,
                              std::vector<std::uint32_t> pending) {
  std::sort(pending.begin(), pending.end(),
            [](std::uint32_t a, std::uint32_t b) { return a > b; });
  std::uint32_t blocked = 0;
  for (const std::uint32_t need : pending) {
    bool placed = false;
    for (std::uint32_t& cap : capacities) {
      if (cap >= need) {
        cap -= need;
        placed = true;
        break;
      }
    }
    if (!placed) ++blocked;
  }
  return blocked;
}

struct Candidate {
  std::uint32_t base = 0;
  // Lexicographic cost, most significant first.
  std::uint32_t blocked = 0;   // pending min-widths no longer packable
  std::uint32_t sliver = 0;    // leftover too narrow for any waiting width
  std::uint32_t waste = 0;     // leftover in the chosen interval (best fit)
  double wait = 0.0;           // seconds until the abutting band frees

  /// True when this candidate is strictly cheaper.  Waste (best fit) ranks
  /// ABOVE neighbor wait: picking the snuggest interval provably maximizes
  /// the post-placement largest free run, while wait-first would split a
  /// wide run just to sit next to a soon-freeing band — measurably worse
  /// fragmentation on the stress seeds.  Wait then decides WHICH END of
  /// the chosen interval (equal waste either way), which is the elastic-
  /// grow positioning it exists for.  Doubles are compared with < both
  /// ways (never ==): equal waits fall through to the base tie-break.
  bool better_than(const Candidate& other) const {
    if (blocked != other.blocked) return blocked < other.blocked;
    if (sliver != other.sliver) return sliver < other.sliver;
    if (waste != other.waste) return waste < other.waste;
    if (wait < other.wait) return true;
    if (other.wait < wait) return false;
    return base < other.base;
  }
};

/// Insert a released band into the sorted free-interval list, merging with
/// adjacent intervals — the planner-local mirror of the arbiter's
/// index_free, operating on the forecast copy.
void merge_free(std::vector<FreeInterval>& intervals, std::uint32_t base,
                std::uint32_t width) {
  auto it = std::upper_bound(
      intervals.begin(), intervals.end(), base,
      [](std::uint32_t b, const FreeInterval& iv) { return b < iv.base; });
  if (it != intervals.begin()) {
    const auto prev = std::prev(it);
    WRHT_CHECK(prev->base + prev->width <= base,
               "SpectrumPlanner: forecast frees overlapping range at "
                   << base);
    if (prev->base + prev->width == base) {
      prev->width += width;
      if (it != intervals.end() && it->base == prev->base + prev->width) {
        prev->width += it->width;
        intervals.erase(it);
      }
      return;
    }
  }
  if (it != intervals.end() && it->base == base + width) {
    it->base = base;
    it->width += width;
    return;
  }
  intervals.insert(it, FreeInterval{base, width});
}

}  // namespace

const char* spectrum_policy_name(SpectrumPolicy policy) {
  switch (policy) {
    case SpectrumPolicy::kFirstFit:
      return "first_fit";
    case SpectrumPolicy::kPlanner:
      return "planner";
  }
  return "unknown";
}

std::optional<std::uint32_t> SpectrumPlanner::choose_base(
    std::uint32_t width, const PlannerContext& ctx) {
  WRHT_REQUIRE(width > 0, "SpectrumPlanner: zero-width placement requested");
  std::uint32_t smallest_pending = 0;
  for (const std::uint32_t w : ctx.pending_min_widths) {
    if (smallest_pending == 0 || w < smallest_pending) smallest_pending = w;
  }

  std::optional<Candidate> best;
  for (std::size_t i = 0; i < ctx.free_intervals.size(); ++i) {
    const FreeInterval& iv = ctx.free_intervals[i];
    if (iv.width < width) continue;
    const std::uint32_t leftover = iv.width - width;

    // Terms 1, 2, and 4 depend only on which interval is carved (an
    // end-carve leaves the same contiguous residual either way); compute
    // them once per interval.
    std::vector<std::uint32_t> capacities;
    capacities.reserve(ctx.free_intervals.size());
    for (std::size_t j = 0; j < ctx.free_intervals.size(); ++j) {
      capacities.push_back(j == i ? leftover : ctx.free_intervals[j].width);
    }
    const std::uint32_t blocked =
        ctx.pending_min_widths.empty()
            ? 0
            : blocked_pending(std::move(capacities), ctx.pending_min_widths);
    const std::uint32_t sliver =
        (leftover > 0 && smallest_pending > 0 && leftover < smallest_pending)
            ? leftover
            : 0;

    // Term 3 picks the end: align against whichever neighbor frees sooner.
    const auto consider = [&](std::uint32_t base, double wait) {
      const Candidate cand{base, blocked, sliver, leftover, wait};
      if (!best || cand.better_than(*best)) best = cand;
    };
    consider(iv.base, neighbor_wait(ctx, iv.base, /*left_neighbor=*/true));
    if (leftover > 0) {
      consider(iv.base + leftover,
               neighbor_wait(ctx, iv.base + iv.width,
                             /*left_neighbor=*/false));
    }
  }
  if (!best) return std::nullopt;
  return best->base;
}

util::Seconds SpectrumPlanner::earliest_fit(std::uint32_t width,
                                            const PlannerContext& ctx) {
  WRHT_REQUIRE(width > 0, "SpectrumPlanner: zero-width forecast requested");
  for (const FreeInterval& iv : ctx.free_intervals) {
    if (iv.width >= width) return ctx.now;
  }
  // Replay outstanding releases in predicted order (base breaks ties for
  // determinism; ends before `now` are overdue and release immediately),
  // merging each band back until a contiguous run fits.
  std::vector<OutstandingBand> releases = ctx.outstanding;
  std::sort(releases.begin(), releases.end(),
            [&](const OutstandingBand& a, const OutstandingBand& b) {
              const double ta = std::max(a.predicted_end, ctx.now).value();
              const double tb = std::max(b.predicted_end, ctx.now).value();
              if (ta < tb) return true;
              if (tb < ta) return false;
              return a.band.base < b.band.base;
            });
  std::vector<FreeInterval> intervals = ctx.free_intervals;
  util::Seconds when = ctx.now;
  for (const OutstandingBand& rel : releases) {
    when = std::max(rel.predicted_end, ctx.now);
    merge_free(intervals, rel.band.base, rel.band.width);
    for (const FreeInterval& iv : intervals) {
      if (iv.width >= width) return when;
    }
  }
  // Even the fully-drained spectrum cannot host `width` — callers clamp
  // widths to the spectrum, so this is a defensive floor.
  return when;
}

}  // namespace wrht::runtime
