// The WDM-ring execution substrate: everything wavelength-shaped the
// runtime used to do inline lives here now.  Grants are contiguous spectrum
// bands from the SpectrumArbiter; plans are Wrht builds sized to the band
// and shifted into place; per-step timing claims every (span, wavelength,
// direction) cell on the shared SpectrumMap (a failed claim is an
// arbitration bug and aborts, same fatal semantics as the single-job DES)
// and schedules the release events on the shared clock.  Renegotiation — one
// typed renegotiate() entry point covering resume, grow, shrink, fault
// eviction, and restart — rebuilds the not-yet-run remainder through
// core::rebuild_wrht_remainder_evicting and transacts the band on the
// arbiter, with rollback when a rebuild does not pay off.  Degraded
// wavelengths are quarantined as width-1 arbiter allocations, so neither the
// planner nor first-fit can grant them until repair.
#include "runtime/substrate.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "optical/network.hpp"
#include "optical/spectrum.hpp"
#include "optical/transceiver.hpp"
#include "runtime/arbiter.hpp"
#include "runtime/planner.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"
#include "wrht/time_model.hpp"

namespace wrht::runtime {

namespace {

class OpticalExecution final : public SubstrateExecution {
 public:
  [[nodiscard]] const coll::Schedule& schedule() const override {
    return build.annotated.schedule;
  }
  [[nodiscard]] std::size_t num_steps() const override {
    return timed_steps.size();
  }
  [[nodiscard]] WavelengthBand band() const override { return band_; }
  [[nodiscard]] std::uint32_t grant() const override { return band_.width; }

  core::WrhtBuild build;
  WavelengthBand band_;
  /// False once the band went back to the arbiter (suspension) or moved to
  /// a successor plan (resize) — the double-release guard.
  bool holds_band = false;
  std::vector<topo::NodeId> participants;
  util::Bytes payload;
  std::vector<std::vector<optical::TimedTransfer>> timed_steps;
  /// When this band is expected back: refreshed after every timed step by
  /// extrapolating the remaining steps at the step's own pace.  Zero until
  /// the first step is timed (a just-placed band; treated as releasing
  /// soonest by the queue-wait estimate).  Feeds predict_completion's
  /// spectrum-backlog estimate.
  util::Seconds predicted_end{0.0};
  /// Position in the substrate's outstanding_ registry, so deregistration
  /// is a swap-remove instead of a linear scan (kept in sync by forget()).
  std::size_t outstanding_index = 0;
};

class OpticalSubstrate final : public ExecutionSubstrate {
 public:
  OpticalSubstrate(const topo::RingTopology& ring,
                   const optical::OpticalParams& params,
                   optical::FitPolicy fit_policy, sim::Simulator& sim,
                   bool flat_hot_path, SpectrumPolicy spectrum_policy)
      : ring_(ring),
        params_(params),
        fit_policy_(fit_policy),
        sim_(sim),
        flat_(flat_hot_path),
        policy_(spectrum_policy),
        spectrum_(ring, params.wdm.num_wavelengths),
        transceivers_(ring.num_nodes()),
        arbiter_(params.wdm.num_wavelengths, flat_hot_path) {}

  [[nodiscard]] SubstrateKind kind() const override {
    return SubstrateKind::kOptical;
  }
  [[nodiscard]] const char* name() const override { return "optical"; }
  [[nodiscard]] const SubstrateCaps& caps() const override {
    static constexpr SubstrateCaps kCaps{/*preemptible=*/true,
                                         /*resizable=*/true,
                                         /*batchable=*/true,
                                         /*fuse_respects_grant=*/true};
    return kCaps;
  }

  void attach_metrics(obs::MetricsRegistry& registry) override {
    arbiter_.attach_metrics(registry);
    retunes_ = registry.counter("optical.retunes");
    reservations_ = registry.counter("optical.cell_reservations");
  }

  [[nodiscard]] std::uint32_t largest_free_grant() const override {
    return arbiter_.largest_free_block();
  }
  [[nodiscard]] std::uint32_t free_grant_total() const override {
    return arbiter_.free_total();
  }

  [[nodiscard]] bool can_place(const std::vector<topo::NodeId>&,
                               std::uint32_t min_grant) const override {
    return arbiter_.largest_free_block() >= min_grant;
  }

  void note_pending_demand(
      const std::vector<std::uint32_t>& min_grants) override {
    pending_widths_ = min_grants;
  }

  [[nodiscard]] std::unique_ptr<SubstrateExecution> place(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t grant) override {
    const std::optional<WavelengthBand> band = acquire_band(grant);
    // Admission promised a free run of this width; not finding one is an
    // arbiter/admission disagreement.
    WRHT_CHECK(band.has_value(),
               "OpticalSubstrate: arbiter refused a " << grant << "-band");
    core::WrhtParams wrht;
    wrht.num_wavelengths = band->width;
    wrht.fit_policy = fit_policy_;
    core::WrhtBuild build =
        core::build_wrht_among(participants, ring_.num_nodes(), wrht);
    WRHT_CHECK(build.annotated.wavelengths_required <= band->width,
               "OpticalSubstrate: schedule overflowed its band ("
                   << build.annotated.wavelengths_required << " > "
                   << band->width << ")");
    return make_plan(std::move(build), *band, participants, payload);
  }

  [[nodiscard]] StepTiming time_step(SubstrateExecution& e, std::size_t step,
                                     util::Seconds now) override {
    auto& exec = static_cast<OpticalExecution&>(e);
    const std::vector<optical::TimedTransfer>& transfers =
        exec.timed_steps[step];
    StepTiming out;

    // Claim the step's spectrum cells on the SHARED map.  Bands are
    // disjoint, so a failed claim means the arbitration above is broken.
    for (const optical::TimedTransfer& t : transfers) {
      for (const optical::WavelengthId lambda : t.lambdas) {
        WRHT_CHECK(spectrum_.try_reserve(t.arc, lambda),
                   "OpticalSubstrate: wavelength conflict on lambda "
                       << lambda << " — arbitration bug");
        ++out.reservations;
      }
    }

    util::Seconds step_end = now;
    for (const optical::TimedTransfer& t : transfers) {
      const optical::WavelengthId primary = t.lambdas.front();
      bool retuned = transceivers_.retune_tx(t.src, t.arc.direction, primary);
      retuned |= transceivers_.retune_rx(t.dst, t.arc.direction, primary);
      if (params_.retune_every_step) retuned = true;
      if (retuned) ++out.retunes;

      const util::Seconds finish =
          now + optical::transfer_cost(params_, t, retuned);
      step_end = std::max(step_end, finish);
      if (!flat_) {
        sim_.schedule_at(finish, [this, arc = t.arc, lambdas = t.lambdas] {
          for (const optical::WavelengthId lambda : lambdas) {
            spectrum_.release(arc, lambda);
          }
        });
      }
    }
    if (flat_) {
      // One release event for the whole step instead of one per transfer.
      // Equivalent: the cells belong to this band alone (bands are
      // disjoint), and the only parties that could re-reserve them — this
      // execution's next step, or a successor band after a resize — act at
      // the step boundary (>= step_end + sync), which pops after this
      // event.  The captured pointer into the plan's timed_steps outlives
      // the event: the plan is destroyed no earlier than the step-boundary
      // event, which was scheduled after this one (so at an equal timestamp
      // this release still fires first).
      sim_.schedule_at(step_end, [this, step_transfers = &transfers] {
        for (const optical::TimedTransfer& t : *step_transfers) {
          for (const optical::WavelengthId lambda : t.lambdas) {
            spectrum_.release(t.arc, lambda);
          }
        }
      });
    }
    out.end = step_end + params_.sync_time;
    obs::inc(retunes_, out.retunes);
    obs::inc(reservations_, out.reservations);
    // Backlog bookkeeping: the band comes back roughly `remaining steps at
    // this step's pace` from now.  Wrht steps of one execution are close
    // enough in duration for a queue-wait ESTIMATE, and the figure is
    // refreshed every step, so it converges as the execution drains.
    const double step_span = (out.end - now).value();
    const double remaining =
        static_cast<double>(exec.timed_steps.size() - step - 1);
    exec.predicted_end = out.end + util::Seconds(step_span * remaining);
    return out;
  }

  void release(SubstrateExecution& e, util::Seconds /*now*/) override {
    auto& exec = static_cast<OpticalExecution&>(e);
    if (!exec.holds_band) return;
    arbiter_.release(exec.band_);
    exec.holds_band = false;
    forget(exec);
    // exec.band_ keeps its value: the pre-suspension width is the resume
    // path's sizing hint.
  }

  [[nodiscard]] util::Seconds predict_makespan(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t grant) const override {
    core::WrhtParams wrht;
    wrht.num_wavelengths = std::max(grant, 1u);
    wrht.fit_policy = fit_policy_;
    return core::wrht_time_formula(
        static_cast<std::uint32_t>(participants.size()), payload, params_,
        wrht);
  }

  [[nodiscard]] util::Seconds predict_completion(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t grant, util::Seconds now) const override {
    // Run time plus the predicted wait for a band.  Under the planner
    // policy the wait is SpectrumPlanner::earliest_fit — the first instant
    // a CONTIGUOUS run of the width exists when outstanding bands release
    // at their predicted ends — so a fragmented pool whose free TOTAL
    // covers the request no longer reads as "available now".  The first-fit
    // ablation keeps the historical estimate (largest-free-block point
    // check, then a contiguity-blind credit walk over the free total) so
    // its measured routing error stays the documented baseline.
    const util::Seconds run = predict_makespan(participants, payload, grant);
    const std::uint32_t width = std::max(grant, 1u);
    if (policy_ == SpectrumPolicy::kPlanner) {
      const util::Seconds start =
          SpectrumPlanner::earliest_fit(width, planner_context(now));
      return start + run;
    }
    if (arbiter_.largest_free_block() >= width) return now + run;
    std::vector<std::pair<util::Seconds, std::uint32_t>> releases;
    releases.reserve(outstanding_.size());
    for (const OpticalExecution* exec : outstanding_) {
      releases.emplace_back(std::max(exec->predicted_end, now),
                            exec->band_.width);
    }
    std::sort(releases.begin(), releases.end());
    std::uint32_t free = arbiter_.free_total();
    util::Seconds wait{0.0};
    for (const auto& [end, released] : releases) {
      wait = end - now;
      free += released;
      if (free >= width) break;
    }
    return now + wait + run;
  }

  [[nodiscard]] RenegotiationOutcome renegotiate(
      SubstrateExecution* c, const RenegotiationRequest& request) override {
    switch (request.kind) {
      case RenegotiationRequest::Kind::kResume:
        return resume(static_cast<OpticalExecution&>(*c), request);
      case RenegotiationRequest::Kind::kGrow:
        return grow(static_cast<OpticalExecution&>(*c), request);
      case RenegotiationRequest::Kind::kShrink:
        return shrink(static_cast<OpticalExecution&>(*c), request);
      case RenegotiationRequest::Kind::kEvict:
        return evict(static_cast<OpticalExecution&>(*c), request);
      case RenegotiationRequest::Kind::kRestart:
        // Reads nothing from `c` — the fresh plan may replace one owned by
        // another substrate (cross-substrate migration).
        return restart(request);
    }
    return {};
  }

  [[nodiscard]] std::uint32_t free_grant_if_kept(
      const SubstrateExecution& e, std::uint32_t keep) const override {
    const auto& exec = static_cast<const OpticalExecution&>(e);
    const WavelengthBand band = exec.band_;
    const WavelengthBand freed{band.base + keep, band.width - keep};
    return arbiter_.largest_free_block_assuming(freed);
  }

  [[nodiscard]] bool quarantine_unit(std::uint32_t unit) override {
    if (quarantined_.count(unit) != 0) return false;
    // A width-1 allocation at the degraded wavelength: the arbiter refuses
    // while any granted band covers it, and neither the planner nor
    // first-fit can hand it out until restore_unit releases it.
    const std::optional<WavelengthBand> band = arbiter_.allocate_at(unit, 1);
    if (!band) return false;
    quarantined_.emplace(unit, *band);
    return true;
  }

  void restore_unit(std::uint32_t unit) override {
    const auto it = quarantined_.find(unit);
    if (it == quarantined_.end()) return;
    arbiter_.release(it->second);
    quarantined_.erase(it);
  }

 private:
  [[nodiscard]] RenegotiationOutcome resume(
      const OpticalExecution& current, const RenegotiationRequest& request) {
    const std::uint32_t budget = arbiter_.largest_free_block();
    if (budget < request.min_grant) return {};
    std::uint32_t grant = std::min(request.width, budget);
    std::optional<core::WrhtBuild> rebuilt =
        rebuild_remainder(current, request.steps_done, grant, request.nodes);
    if (!rebuilt && budget > grant) {
      // The remainder's inherited mirrors can need more than the job's
      // admission minimum; retry with everything contiguous on offer.
      grant = budget;
      rebuilt = rebuild_remainder(current, request.steps_done, grant,
                                  request.nodes);
    }
    if (!rebuilt) return {};
    const std::optional<WavelengthBand> band = acquire_band(grant);
    WRHT_CHECK(band.has_value(), "OpticalSubstrate: arbiter refused a "
                                     << grant << "-band on resume");
    return {make_plan(std::move(*rebuilt), *band,
                      without(current.participants, request.nodes),
                      current.payload)};
  }

  [[nodiscard]] RenegotiationOutcome grow(OpticalExecution& current,
                                          const RenegotiationRequest& request) {
    const WavelengthBand old = current.band_;
    const WavelengthBand grown = arbiter_.grow(old, request.width);
    if (grown == old) return {};
    const std::size_t remaining = current.num_steps() - request.steps_done;
    std::optional<core::WrhtBuild> rebuilt =
        rebuild_remainder(current, request.steps_done, grown.width);
    // A wider band only pays off by collapsing remaining tree levels (each
    // transfer still rides one wavelength, so same-depth schedules run at
    // the same speed); otherwise give the spectrum straight back.
    if (!rebuilt || rebuilt->annotated.schedule.num_steps() >= remaining) {
      arbiter_.shrink_to(grown, old);
      return {};
    }
    current.holds_band = false;  // the grown band moves to the new plan
    forget(current);
    return {make_plan(std::move(*rebuilt), grown, current.participants,
                      current.payload)};
  }

  [[nodiscard]] RenegotiationOutcome shrink(
      OpticalExecution& current, const RenegotiationRequest& request) {
    const WavelengthBand old = current.band_;
    std::optional<core::WrhtBuild> rebuilt =
        rebuild_remainder(current, request.steps_done, request.width);
    if (!rebuilt) return {};
    const WavelengthBand kept{old.base, request.width};
    arbiter_.shrink_to(old, kept);
    current.holds_band = false;  // the kept band moves to the new plan
    forget(current);
    return {make_plan(std::move(*rebuilt), kept, current.participants,
                      current.payload)};
  }

  /// Survivor rebuild on the SAME band: the remainder is rebuilt with the
  /// failed nodes stripped from its delivery set.  Refused when a failed
  /// node still carries live state (rebuild_wrht_remainder_evicting's
  /// contract) — the caller then restarts among the survivors.
  [[nodiscard]] RenegotiationOutcome evict(
      OpticalExecution& current, const RenegotiationRequest& request) {
    std::optional<core::WrhtBuild> rebuilt = rebuild_remainder(
        current, request.steps_done, current.band_.width, request.nodes);
    if (!rebuilt) return {};
    const WavelengthBand band = current.band_;
    current.holds_band = false;  // the band moves unchanged to the new plan
    forget(current);
    return {make_plan(std::move(*rebuilt), band,
                      without(current.participants, request.nodes),
                      current.payload)};
  }

  /// Brand-new plan among request.nodes on a fresh band — the from-scratch
  /// path for survivor restarts and cross-substrate migrations.
  [[nodiscard]] RenegotiationOutcome restart(
      const RenegotiationRequest& request) {
    const std::uint32_t budget = arbiter_.largest_free_block();
    if (budget < request.min_grant) return {};
    const std::uint32_t grant = std::min(std::max(request.width, 1u), budget);
    const std::optional<WavelengthBand> band = acquire_band(grant);
    if (!band) return {};
    core::WrhtParams wrht;
    wrht.num_wavelengths = band->width;
    wrht.fit_policy = fit_policy_;
    core::WrhtBuild build =
        core::build_wrht_among(request.nodes, ring_.num_nodes(), wrht);
    WRHT_CHECK(build.annotated.wavelengths_required <= band->width,
               "OpticalSubstrate: restart schedule overflowed its band ("
                   << build.annotated.wavelengths_required << " > "
                   << band->width << ")");
    return {make_plan(std::move(build), *band, request.nodes,
                      request.payload)};
  }

  [[nodiscard]] static std::vector<topo::NodeId> without(
      const std::vector<topo::NodeId>& all,
      const std::vector<topo::NodeId>& removed) {
    std::vector<topo::NodeId> kept;
    kept.reserve(all.size());
    for (const topo::NodeId node : all) {
      if (std::find(removed.begin(), removed.end(), node) == removed.end()) {
        kept.push_back(node);
      }
    }
    return kept;
  }

  /// Snapshot of the spectrum the planner scores placements/forecasts
  /// against, as of `now`.
  [[nodiscard]] PlannerContext planner_context(util::Seconds now) const {
    PlannerContext ctx;
    ctx.free_intervals = arbiter_.free_intervals();
    ctx.outstanding.reserve(outstanding_.size());
    for (const OpticalExecution* exec : outstanding_) {
      ctx.outstanding.push_back(
          OutstandingBand{exec->band_, exec->predicted_end});
    }
    ctx.pending_min_widths = pending_widths_;
    ctx.total_wavelengths = arbiter_.total();
    ctx.now = now;
    return ctx;
  }

  /// Claim a `width`-wide band under the active spectrum policy.  The
  /// planner proposes a base scored against outstanding bands and pending
  /// demand; the arbiter still occupancy-checks the exact range (a
  /// collision would be a planner/arbiter disagreement and aborts), so a
  /// planned placement is proven before it exists.
  [[nodiscard]] std::optional<WavelengthBand> acquire_band(
      std::uint32_t width) {
    if (policy_ == SpectrumPolicy::kFirstFit) return arbiter_.allocate(width);
    const std::optional<std::uint32_t> base =
        SpectrumPlanner::choose_base(width, planner_context(sim_.now()));
    if (!base) return std::nullopt;
    const std::optional<WavelengthBand> band =
        arbiter_.allocate_at(*base, width);
    WRHT_CHECK(band.has_value(),
               "OpticalSubstrate: planner placement [" << *base << ", "
                   << *base + width << ") collided with a granted band");
    return band;
  }

  [[nodiscard]] std::optional<core::WrhtBuild> rebuild_remainder(
      const OpticalExecution& exec, std::size_t steps_done,
      std::uint32_t width,
      const std::vector<topo::NodeId>& evicted = {}) const {
    core::WrhtParams wrht;
    wrht.num_wavelengths = width;
    wrht.fit_policy = fit_policy_;
    return core::rebuild_wrht_remainder_evicting(
        exec.build, steps_done, exec.participants, evicted, ring_.num_nodes(),
        wrht);
  }

  [[nodiscard]] std::unique_ptr<SubstrateExecution> make_plan(
      core::WrhtBuild build, const WavelengthBand& band,
      const std::vector<topo::NodeId>& participants, util::Bytes payload) {
    auto plan = std::make_unique<OpticalExecution>();
    plan->build = std::move(build);
    plan->band_ = band;
    plan->holds_band = true;
    plan->participants = participants;
    plan->payload = payload;
    const std::size_t num_steps = plan->build.annotated.schedule.num_steps();
    plan->timed_steps.reserve(num_steps);
    for (std::size_t s = 0; s < num_steps; ++s) {
      plan->timed_steps.push_back(
          core::timed_step(plan->build.annotated, s, payload, band.base));
    }
    plan->outstanding_index = outstanding_.size();
    outstanding_.push_back(plan.get());
    return plan;
  }

  /// Drop an execution from the backlog registry the moment its band stops
  /// being outstanding (release, or a resize moving the band to a successor
  /// plan) — the plan object itself may be destroyed right after.  Swap-
  /// remove keeps this O(1); predict_completion sorts the registry before
  /// reading it, so the order perturbation is invisible.  Naive mode keeps
  /// the historical linear remove-erase for benchmark baselines.
  void forget(OpticalExecution& exec) {
    if (!flat_) {
      outstanding_.erase(
          std::remove(outstanding_.begin(), outstanding_.end(), &exec),
          outstanding_.end());
      return;
    }
    const std::size_t idx = exec.outstanding_index;
    WRHT_CHECK(idx < outstanding_.size() && outstanding_[idx] == &exec,
               "OpticalSubstrate: outstanding registry out of sync");
    outstanding_[idx] = outstanding_.back();
    outstanding_[idx]->outstanding_index = idx;
    outstanding_.pop_back();
  }

  const topo::RingTopology& ring_;
  optical::OpticalParams params_;
  optical::FitPolicy fit_policy_;
  sim::Simulator& sim_;
  /// Hot-path mode: interval-indexed arbiter, one spectrum-release event
  /// per step, O(1) outstanding-registry removal.  False restores the
  /// original per-transfer events and linear scans (benchmark baseline).
  bool flat_;
  /// Who places bands: the SpectrumPlanner or greedy first-fit (ablation).
  SpectrumPolicy policy_;
  optical::SpectrumMap spectrum_;
  optical::TransceiverBank transceivers_;
  SpectrumArbiter arbiter_;
  /// Metric handles; nullptr (zero-overhead emission) without a registry.
  obs::Counter* retunes_ = nullptr;
  obs::Counter* reservations_ = nullptr;
  /// Executions whose bands are currently outstanding, for the queue-wait
  /// backlog estimate.  Entries are non-owning and live exactly while the
  /// plan holds its band.
  std::vector<OpticalExecution*> outstanding_;
  /// Latest note_pending_demand snapshot: minimum widths of queued +
  /// suspended demand, excluding the job being placed.  Read only by the
  /// planner policy's placement cost.
  std::vector<std::uint32_t> pending_widths_;
  /// Degraded wavelengths held out of service as width-1 arbiter
  /// allocations, keyed by wavelength index (ordered map: substrate state
  /// feeds deterministic reports).
  std::map<std::uint32_t, WavelengthBand> quarantined_;
};

}  // namespace

std::unique_ptr<ExecutionSubstrate> make_optical_substrate(
    const topo::RingTopology& ring, const optical::OpticalParams& params,
    optical::FitPolicy fit_policy, sim::Simulator& sim, bool flat_hot_path,
    SpectrumPolicy spectrum_policy) {
  return std::make_unique<OpticalSubstrate>(ring, params, fit_policy, sim,
                                            flat_hot_path, spectrum_policy);
}

}  // namespace wrht::runtime
