#include "runtime/faults.hpp"

#include <utility>

#include "util/check.hpp"
#include "workload/distributions.hpp"

namespace wrht::runtime {

const char* fault_domain_name(FaultDomain domain) {
  switch (domain) {
    case FaultDomain::kTransceiver:
      return "transceiver";
    case FaultDomain::kNode:
      return "node";
    case FaultDomain::kTor:
      return "tor";
    case FaultDomain::kWavelength:
      return "wavelength";
  }
  return "?";
}

namespace {

/// Derived per-domain seed: decorrelates the domains' Rngs while keeping
/// each a pure function of (seed, domain).  The odd multiplier is the
/// splitmix64 increment, reused here only as a mixing constant.
std::uint64_t domain_seed(std::uint64_t seed, FaultDomain domain) {
  return seed + 0x9E3779B97F4A7C15ULL *
                    (static_cast<std::uint64_t>(domain) + 1);
}

}  // namespace

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : horizon_(config.horizon), mttr_(config.mttr) {
  const auto add = [&](FaultDomain domain, util::Seconds mtbf,
                       std::uint32_t subjects) {
    if (mtbf.value() <= 0.0 || subjects == 0) return;
    processes_.push_back(Process{domain, 1.0 / mtbf.value(), subjects,
                                 util::Rng(domain_seed(config.seed, domain)),
                                 std::nullopt});
    advance(processes_.back());
  };
  // Fixed registration order = fixed tie-break order in next().
  add(FaultDomain::kTransceiver, config.transceiver_mtbf, config.ring_size);
  add(FaultDomain::kNode, config.node_mtbf, config.ring_size);
  add(FaultDomain::kTor, config.tor_mtbf, config.num_tors);
  add(FaultDomain::kWavelength, config.wavelength_mtbf,
      config.num_wavelengths);
}

void FaultInjector::advance(Process& process) {
  // Fixed consumption pattern per fault — gap, subject, repair — so the
  // domain's stream never depends on whether repairs are enabled elsewhere.
  const util::Seconds previous =
      process.pending ? process.pending->at : util::Seconds(0.0);
  FaultSpec spec;
  spec.domain = process.domain;
  spec.at = previous + util::Seconds(workload::sample_exponential(
                           process.rng, process.rate));
  spec.subject = static_cast<std::uint32_t>(
      process.rng.next_below(process.subjects));
  spec.repair_after =
      mttr_.value() > 0.0
          ? util::Seconds(workload::sample_exponential(process.rng,
                                                       1.0 / mttr_.value()))
          : util::Seconds(0.0);
  process.pending =
      spec.at < horizon_ ? std::optional<FaultSpec>(spec) : std::nullopt;
}

std::optional<FaultSpec> FaultInjector::next() {
  Process* soonest = nullptr;
  for (Process& process : processes_) {
    if (!process.pending) continue;
    if (soonest == nullptr ||
        process.pending->at < soonest->pending->at) {
      soonest = &process;
    }
  }
  if (soonest == nullptr) return std::nullopt;
  const FaultSpec out = *soonest->pending;
  advance(*soonest);
  return out;
}

ScriptedFaultSource::ScriptedFaultSource(std::vector<FaultSpec> faults)
    : faults_(std::move(faults)) {
  for (std::size_t i = 1; i < faults_.size(); ++i) {
    WRHT_REQUIRE(!(faults_[i].at < faults_[i - 1].at),
                 "ScriptedFaultSource: faults must be in nondecreasing time "
                 "order (fault "
                     << i << " at " << faults_[i].at.value() << "s after "
                     << faults_[i - 1].at.value() << "s)");
  }
}

std::optional<FaultSpec> ScriptedFaultSource::next() {
  if (cursor_ >= faults_.size()) return std::nullopt;
  return faults_[cursor_++];
}

}  // namespace wrht::runtime
