// Global spectrum allocation at renegotiation boundaries.
//
// The arbiter's first-fit hands every band the lowest-based free run that
// fits — blind to who else is queued, to when its neighbors' bands come
// back, and to the fragments it strands.  rostam allocates ring bandwidth
// per episode as a small optimization problem (BWDecisionType::ILP /
// MINCOSTFLOW); SpectrumPlanner recasts band placement the same way, as a
// DP over the contiguous-band structure of the arbiter's interval index:
//
// At each renegotiation boundary (admit, step-boundary resume, elastic
// grow/shrink replan, preemption replan) the runtime hands the planner a
// snapshot of the spectrum — the free intervals, every outstanding band
// with its predicted release time, and the minimum widths of the demand
// still waiting (queued jobs plus suspended executions).  choose_base()
// scores the candidate placements of the band being placed jointly against
// that demand, minimizing a lexicographic cost:
//
//   1. pending demand blocked   — how many waiting minimum-widths no longer
//                                 pack into the remaining free intervals
//                                 (the joint-placement term: never strand a
//                                 resumable job to shave a fragment);
//   2. dead sliver              — leftover split off the chosen interval
//                                 that is too narrow for ANY waiting width
//                                 (fragmentation the mix cannot use);
//   3. interval waste           — best fit (smallest fitting interval):
//                                 carving the snuggest hole provably
//                                 maximizes the largest free run left
//                                 behind, keeping wide runs intact;
//   4. neighbor release time    — seconds until the outstanding band
//                                 abutting the chosen END frees (equal
//                                 waste either end, so this term picks the
//                                 alignment: abutting a soon-to-free
//                                 neighbor positions the job for elastic
//                                 grow and re-merges spectrum sooner;
//                                 spectrum edges never free);
//   5. lowest base              — first-fit's own tie-break, so on an idle
//                                 unconstrained spectrum the planner and
//                                 first-fit choose identical bands.
//
// Candidates are the two ends of each fitting free interval — on contiguous
// spectrum any interior placement is dominated by one of its end-aligned
// shifts (it fragments both sides at once), which is what keeps the DP
// O(#holes) per placement instead of O(W).
//
// earliest_fit() is the planner's availability function: the first instant
// a CONTIGUOUS run of the needed width exists, found by merging outstanding
// bands back into the free-interval structure in predicted-release order.
// It replaces the contiguity-blind free-total credit walk the congestion-
// aware router used to use — a fragmented pool whose total covers the
// request no longer reads as "available now".
//
// The planner only proposes; every placement still goes through
// SpectrumArbiter::allocate_at (occupancy-checked) and the existing
// disjointness/oracle machinery proves the result before it touches the
// ring.  First-fit stays selectable (SpectrumPolicy::kFirstFit) as the
// ablation baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/arbiter.hpp"
#include "runtime/job.hpp"
#include "util/units.hpp"

namespace wrht::runtime {

/// How the optical substrate places bands.
enum class SpectrumPolicy : std::uint8_t {
  /// Lowest-based free run that fits (the historical greedy baseline).
  kFirstFit,
  /// SpectrumPlanner's joint placement (the default).
  kPlanner,
};

[[nodiscard]] const char* spectrum_policy_name(SpectrumPolicy policy);

/// An outstanding band and the instant its owner is predicted to return it.
struct OutstandingBand {
  WavelengthBand band;
  util::Seconds predicted_end{0.0};
};

/// Spectrum snapshot a placement decision is scored against.
struct PlannerContext {
  /// Maximal free runs, sorted by base (SpectrumArbiter::free_intervals()).
  std::vector<SpectrumArbiter::FreeInterval> free_intervals;
  /// Every band currently granted, with its predicted release time.
  std::vector<OutstandingBand> outstanding;
  /// Minimum widths of the demand still waiting for spectrum (queued
  /// optically-eligible jobs + suspended optical executions), EXCLUDING the
  /// job being placed.  Order is irrelevant.
  std::vector<std::uint32_t> pending_min_widths;
  std::uint32_t total_wavelengths = 0;
  util::Seconds now{0.0};
};

class SpectrumPlanner {
 public:
  /// Base of the band the planner places a `width`-wide job at, or nullopt
  /// when no free run fits.  Deterministic for a fixed context.
  [[nodiscard]] static std::optional<std::uint32_t> choose_base(
      std::uint32_t width, const PlannerContext& ctx);

  /// Earliest instant a contiguous free run of `width` exists, assuming
  /// outstanding bands release at their predicted ends (and nothing new is
  /// placed meanwhile).  Returns ctx.now when a run already fits; merges
  /// bands back in predicted-release order otherwise.  When even the full
  /// spectrum cannot fit `width`, returns the last merge instant (the
  /// caller's width was already clamped to the spectrum, so this is a
  /// defensive floor, not a reachable verdict).
  [[nodiscard]] static util::Seconds earliest_fit(std::uint32_t width,
                                                  const PlannerContext& ctx);
};

}  // namespace wrht::runtime
