#include "runtime/batcher.hpp"

#include <algorithm>

namespace wrht::runtime {

std::vector<std::size_t> fusable_peers(const JobQueue& queue,
                                       std::size_t lead_index,
                                       std::uint32_t granted_band_width,
                                       const BatcherConfig& config) {
  const QueueEntry& lead = queue.at(lead_index);
  if (!config.enabled || lead.payload > config.max_fuse_payload ||
      config.max_jobs_per_batch < 2) {
    return {lead_index};
  }

  // Candidate peers, oldest first, so batching never reorders tenants that
  // could have fused either way.
  std::vector<std::size_t> peers;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (i == lead_index) continue;
    const QueueEntry& job = queue.at(i);
    // Pins must match exactly: a fused peer rides the lead's placement, so
    // fusing across pins would run a pinned job on a fabric its tenant
    // forbade (or strand an any-fabric job on a pinned lead's constraint).
    if (job.participants == lead.participants &&
        job.priority == lead.priority && job.pin == lead.pin &&
        job.payload <= config.max_fuse_payload &&
        job.min_wavelengths <= granted_band_width) {
      peers.push_back(i);
    }
  }
  std::sort(peers.begin(), peers.end(),
            [&queue](std::size_t a, std::size_t b) {
              return queue.at(a).seq < queue.at(b).seq;
            });

  // Admit peers while both budgets hold.  The lead is always in (it was
  // admitted on its own payload).  The first peer that would blow the
  // payload budget ends the batch — taking the oldest prefix rather than
  // cherry-picking smaller younger jobs keeps fusion from reordering
  // tenants.
  std::vector<std::size_t> taken;
  util::Bytes batch_payload = lead.payload;
  for (const std::size_t i : peers) {
    if (taken.size() + 1 >= config.max_jobs_per_batch) break;
    const util::Bytes payload = queue.at(i).payload;
    if (batch_payload + payload > config.max_batch_payload) break;
    batch_payload += payload;
    taken.push_back(i);
  }
  peers = std::move(taken);

  peers.push_back(lead_index);
  std::sort(peers.begin(), peers.end());
  return peers;
}

}  // namespace wrht::runtime
