#include "runtime/batcher.hpp"

#include <algorithm>

namespace wrht::runtime {

std::vector<std::size_t> fusable_peers(const JobQueue& queue,
                                       std::size_t lead_index,
                                       std::uint32_t granted_band_width,
                                       const BatcherConfig& config) {
  const QueueEntry& lead = queue.at(lead_index);
  if (!config.enabled || lead.payload > config.max_fuse_payload ||
      config.max_jobs_per_batch < 2) {
    return {lead_index};
  }

  // Candidate peers, oldest first, so batching never reorders tenants that
  // could have fused either way.
  std::vector<std::size_t> peers;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (i == lead_index) continue;
    const QueueEntry& job = queue.at(i);
    if (job.participants == lead.participants &&
        job.payload <= config.max_fuse_payload &&
        job.min_wavelengths <= granted_band_width) {
      peers.push_back(i);
    }
  }
  std::sort(peers.begin(), peers.end(),
            [&queue](std::size_t a, std::size_t b) {
              return queue.at(a).seq < queue.at(b).seq;
            });
  if (peers.size() > config.max_jobs_per_batch - 1) {
    peers.resize(config.max_jobs_per_batch - 1);
  }

  peers.push_back(lead_index);
  std::sort(peers.begin(), peers.end());
  return peers;
}

}  // namespace wrht::runtime
