#include "runtime/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "coll/oracle.hpp"
#include "util/check.hpp"
#include "util/string_utils.hpp"
#include "wrht/builder.hpp"

namespace wrht::runtime {

namespace {

/// Most wavelengths a job over `num_participants` nodes can exploit: the
/// single-group tree step uses floor(P/2), and the all-to-all merge tops out
/// at the Liang & Shen budget ceil(P^2/8).  Granting more than this only
/// starves other tenants.
std::uint32_t useful_wavelength_cap(std::size_t num_participants) {
  const auto p = static_cast<std::uint32_t>(num_participants);
  return std::max(1u, core::all_to_all_wavelength_bound(p));
}

}  // namespace

const char* hybrid_placement_policy_name(HybridPlacementPolicy policy) {
  switch (policy) {
    case HybridPlacementPolicy::kOpticalOnly:
      return "optical-only";
    case HybridPlacementPolicy::kElectricalOverflow:
      return "electrical-overflow";
    case HybridPlacementPolicy::kCostModelChoice:
      return "cost-model-choice";
  }
  return "?";
}

const char* routing_cost_model_name(RoutingCostModel model) {
  switch (model) {
    case RoutingCostModel::kQuietAlphaBeta:
      return "quiet-alpha-beta";
    case RoutingCostModel::kCongestionAware:
      return "congestion-aware";
  }
  return "?";
}

std::string RuntimeReport::to_string() const {
  std::string out;
  out += "jobs            : " + std::to_string(submitted) + " submitted, " +
         std::to_string(completed) + " completed, " + std::to_string(rejected) +
         " rejected\n";
  out += "executions      : " + std::to_string(executions) + " (" +
         std::to_string(batches) + " fused batches)\n";
  out += "steps / retunes : " + std::to_string(total_steps) + " / " +
         std::to_string(total_retunes) + "\n";
  out += "renegotiations  : " + std::to_string(preemptions) + " preempted, " +
         std::to_string(resumes) + " resumed, " + std::to_string(resizes) +
         " resized\n";
  out += "retimed steps   : " + std::to_string(step_retimes) +
         " (shared-fabric contention changes), " +
         std::to_string(replay_checked_steps) + " replay-audited\n";
  out += "spectrum        : " + std::to_string(spectrum_reservations) +
         " reservations, 0 wavelength-conflict aborts\n";
  out += "peak concurrency: " + std::to_string(peak_concurrent_jobs) +
         " jobs\n";
  out += "optical         : " + std::to_string(optical.jobs) + " jobs, " +
         std::to_string(optical.executions) + " executions, " +
         std::to_string(optical.steps) + " steps, makespan " +
         util::to_string(optical.makespan) + "\n";
  out += "electrical      : " + std::to_string(electrical.jobs) + " jobs, " +
         std::to_string(electrical.executions) + " executions, " +
         std::to_string(electrical.steps) + " steps, makespan " +
         util::to_string(electrical.makespan);
  if (electrical.quiet_time.value() > 0.0) {
    out += ", contention slowdown " +
           util::format_double(electrical.contention_slowdown(), 3) + "x";
  }
  out += "\n";
  if (routing.decisions > 0) {
    out += "routing         : " + std::to_string(routing.decisions) +
           " cost-model decisions (" + std::to_string(routing.to_optical) +
           " optical / " + std::to_string(routing.to_electrical) +
           " electrical), mean |err| " +
           util::format_double(routing.mean_error * 100.0, 1) + "%, worst " +
           util::format_double(routing.worst_error * 100.0, 1) + "%\n";
  }
  if (faults.injected > 0) {
    out += "faults          : " + std::to_string(faults.injected) +
           " injected (" + std::to_string(faults.transceiver_faults) +
           " transceiver, " + std::to_string(faults.node_faults) + " node, " +
           std::to_string(faults.tor_faults) + " tor, " +
           std::to_string(faults.wavelength_faults) + " wavelength), " +
           std::to_string(faults.repairs) + " repaired\n";
    out += "fault recovery  : " + std::to_string(faults.evictions) +
           " evictions, " + std::to_string(faults.restarts) + " restarts, " +
           std::to_string(faults.migrations) + " migrations, " +
           std::to_string(faults.fault_preemptions) +
           " fault-preemptions, " + std::to_string(faults.killed_jobs) +
           " jobs killed\n";
    out += "mttr / goodput  : " + util::to_string(faults.mttr()) + " / " +
           util::format_double(goodput() * 100.0, 1) + "%\n";
  }
  out += "makespan        : " + util::to_string(makespan) + "\n";
  out += "mean turnaround : " + util::to_string(mean_turnaround()) + "\n";
  return out;
}

CollectiveRuntime::CollectiveRuntime(RuntimeConfig config)
    : config_(config),
      ring_(config.ring_size),
      optical_(make_optical_substrate(ring_, config_.optical,
                                      config_.fit_policy, simulator_,
                                      config_.flat_hot_path,
                                      config_.spectrum_policy)),
      electrical_(config_.placement == HybridPlacementPolicy::kOpticalOnly
                      ? nullptr
                      : make_electrical_substrate(config_.ring_size,
                                                  config_.electrical)) {
  simulator_.event_queue().set_recycling(config_.flat_hot_path);
  queue_.set_flat(config_.flat_hot_path);
  optical_node_down_.assign(config_.ring_size, 0);
  host_down_.assign(config_.ring_size, 0);
  wavelength_down_.assign(config_.optical.wdm.num_wavelengths, 0);
  wavelength_quarantined_.assign(config_.optical.wdm.num_wavelengths, false);
  host_quarantined_.assign(config_.ring_size, false);
  init_instruments();
}

void CollectiveRuntime::init_instruments() {
  obs::MetricsRegistry* reg = config_.metrics;
  if (!reg) return;
  ins_.jobs_submitted = reg->counter("runtime.jobs_submitted");
  ins_.jobs_completed = reg->counter("runtime.jobs_completed");
  ins_.jobs_rejected = reg->counter("runtime.jobs_rejected");
  ins_.jobs_fused = reg->counter("runtime.jobs_fused");
  ins_.preemptions = reg->counter("runtime.preemptions");
  ins_.resumes = reg->counter("runtime.resumes");
  ins_.resizes = reg->counter("runtime.resizes");
  ins_.step_retimes = reg->counter("runtime.step_retimes");
  ins_.queue_depth = reg->sampled_gauge("runtime.queue_depth");
  ins_.running_jobs = reg->sampled_gauge("runtime.running_jobs");
  ins_.suspended_jobs = reg->sampled_gauge("runtime.suspended_jobs");
  ins_.admission_wait = reg->histogram("runtime.admission_wait_seconds");
  ins_.batch_jobs = reg->histogram("runtime.batch_jobs", 1.0, 2.0, 8);
  ins_.turnaround = reg->histogram("runtime.turnaround_seconds");
  ins_.slowdown = reg->histogram("runtime.slowdown", 1.0, 1.25, 32);
  ins_.routing_error = reg->histogram("runtime.routing_error");
  ins_.faults_injected = reg->counter("runtime.faults_injected");
  ins_.fault_repairs = reg->counter("runtime.fault_repairs");
  ins_.fault_recoveries = reg->counter("runtime.fault_recoveries");
  ins_.jobs_killed = reg->counter("runtime.jobs_killed");
  optical_->attach_metrics(*reg);
  if (electrical_) electrical_->attach_metrics(*reg);
}

void CollectiveRuntime::pump_metrics() {
  if (!config_.metrics) return;
  obs::set(ins_.queue_depth, static_cast<double>(queue_.size()));
  obs::set(ins_.running_jobs, static_cast<double>(running_jobs_));
  obs::set(ins_.suspended_jobs, static_cast<double>(suspended_.size()));
  config_.metrics->sampler().maybe_sample(simulator_.now());
}

obs::Gauge* CollectiveRuntime::max_wait_gauge(std::int32_t priority) {
  if (!config_.metrics) return nullptr;
  const auto found = max_wait_by_priority_.find(priority);
  if (found != max_wait_by_priority_.end()) return found->second;
  obs::Gauge* gauge = config_.metrics->gauge(
      "runtime.max_wait_seconds.p" + std::to_string(priority));
  max_wait_by_priority_.emplace(priority, gauge);
  return gauge;
}

SubstrateBreakdown& CollectiveRuntime::breakdown(SubstrateKind kind) {
  return kind == SubstrateKind::kOptical ? report_.optical
                                         : report_.electrical;
}

JobId CollectiveRuntime::submit(JobSpec spec) {
  WRHT_REQUIRE(!started_, "CollectiveRuntime: submit after run()");
  return ingest(std::move(spec));
}

JobId CollectiveRuntime::ingest(JobSpec spec) {
  const auto id = static_cast<JobId>(records_.size());
  JobRecord record;
  record.id = id;
  record.spec = std::move(spec);

  const JobSpec& s = record.spec;
  const bool participants_ok =
      s.participants.size() >= 2 &&
      std::is_sorted(s.participants.begin(), s.participants.end()) &&
      std::adjacent_find(s.participants.begin(), s.participants.end()) ==
          s.participants.end() &&
      s.participants.back() < config_.ring_size;
  const std::uint32_t total = config_.optical.wdm.num_wavelengths;

  // An inconsistent spec is rejected with a reason, never silently rewritten:
  // a request below the job's own minimum, or a minimum above what the job
  // could ever use, is a tenant bug the runtime must surface, not paper over
  // by quietly inflating the grant.
  std::string reject;
  if (!participants_ok) {
    reject = "participants must be >= 2 ascending unique on-ring positions";
  } else if (s.min_wavelengths == 0) {
    reject = "min_wavelengths must be >= 1";
  } else if (s.min_wavelengths > total) {
    reject = "min_wavelengths exceeds the spectrum";
  } else if (s.arrival < util::Seconds(0.0)) {
    reject = "arrival time is negative";
  } else if (s.requested_wavelengths != 0 &&
             s.requested_wavelengths < s.min_wavelengths) {
    reject = "requested_wavelengths below min_wavelengths";
  } else if (useful_wavelength_cap(s.participants.size()) <
             s.min_wavelengths) {
    reject = "min_wavelengths exceeds the job's useful wavelength cap";
  } else if (s.pin == SubstratePin::kElectricalOnly &&
             config_.placement == HybridPlacementPolicy::kOpticalOnly) {
    reject = "pinned to the electrical fabric, but placement is optical-only";
  }

  if (!reject.empty()) {
    record.state = JobState::kRejected;
    record.reject_reason = std::move(reject);
    ++report_.rejected;
    obs::inc(ins_.jobs_rejected);
  } else {
    std::uint32_t request = s.requested_wavelengths != 0
                                ? s.requested_wavelengths
                                : config_.default_request;
    request = std::min(request, useful_wavelength_cap(s.participants.size()));
    // With the consistency checks above, the lower clamp binds only when the
    // RUNTIME default (requested_wavelengths == 0) sits below the tenant's
    // stated minimum — raising our own default is not rewriting their
    // request.
    record.effective_request =
        std::clamp(request, s.min_wavelengths, total);
  }
  ++report_.submitted;
  obs::inc(ins_.jobs_submitted);
  records_.push_back(std::move(record));
  return id;
}

const JobRecord& CollectiveRuntime::record(JobId id) const {
  WRHT_REQUIRE(id < records_.size(), "CollectiveRuntime: unknown job " << id);
  return records_[id];
}

void CollectiveRuntime::trace_job(sim::TraceKind kind, JobId id,
                                  const WavelengthBand& band) {
  // Band identity is its BASE for every job event (a band is named by where
  // it sits in the spectrum); the width travels in the detail so preempt /
  // resume / resize sequences in one trace are interpretable side by side.
  // Electrically-placed jobs hold no band and record the invalid {0, 0}.
  if (!trace_.enabled()) return;
  trace_.record(simulator_.now(), kind, id,
                static_cast<std::int64_t>(band.base),
                "width=" + std::to_string(band.width));
}

void CollectiveRuntime::on_arrival(JobId id) {
  JobRecord& record = records_[id];
  record.state = JobState::kQueued;
  QueueEntry entry{id, next_seq_++, record.spec.min_wavelengths,
                   record.effective_request, record.spec.weight,
                   record.spec.payload, record.spec.participants,
                   record.spec.priority, record.spec.arrival,
                   record.spec.pin};
  // Time-windowed batching: hold a fusable arrival out of admission for the
  // fuse window, so a burst landing on an idle ring still fuses instead of
  // its first job sprinting ahead alone.  Held entries stay visible to the
  // batcher (an admitted lead can still fuse them early) but not to the
  // admission policies.  Only jobs that could actually fuse are held —
  // with fusion structurally impossible (batch cap of 1, or a payload over
  // the fuse threshold) the window would be pure added latency.
  const util::Seconds window = config_.batcher.fuse_window;
  if (config_.batcher.enabled && window > util::Seconds(0.0) &&
      config_.batcher.max_jobs_per_batch > 1 &&
      record.spec.payload <= config_.batcher.max_fuse_payload) {
    entry.held = true;
    queue_.push(std::move(entry));
    simulator_.schedule_at(simulator_.now() + window,
                           [this, id] { release_fuse_hold(id); });
  } else {
    queue_.push(std::move(entry));
  }
  try_admit();
  pump_metrics();
}

void CollectiveRuntime::release_fuse_hold(JobId id) {
  // A false return means the job already left the queue — fused into an
  // earlier batch or admitted — and there is nothing to release.
  if (queue_.release_hold(id)) try_admit();
}

std::int32_t CollectiveRuntime::top_suspended_priority(
    SubstrateKind kind) const {
  std::int32_t top = std::numeric_limits<std::int32_t>::min();
  for (const auto& exec : suspended_) {
    if (exec->substrate->kind() == kind) {
      top = std::max(top, effective_priority(*exec));
    }
  }
  return top;
}

std::int32_t CollectiveRuntime::effective_priority(
    const Execution& exec) const {
  // Running executions keep their raw priority; only WAITING work ages.
  if (!exec.suspended) return exec.priority;
  return aged_priority(exec.priority, exec.suspended_since, simulator_.now(),
                       config_.aging_half_life);
}

void CollectiveRuntime::publish_optical_demand(const Execution* excluding) {
  // Advisory planner input only — recomputed immediately before each
  // planner placement, so the snapshot is exact at decision time.  Skipped
  // entirely under the first-fit ablation (the substrate would ignore it).
  //
  // The scan is bounded to a head-of-queue window: the head is what
  // admission considers next, and the planner's blocked/sliver terms only
  // discriminate on the near-term demand — an unbounded walk would make
  // every placement O(queue depth) and melt the streaming hot path (a
  // 100k-job serve keeps tens of thousands of jobs queued at once).
  if (config_.spectrum_policy != SpectrumPolicy::kPlanner) return;
  constexpr std::size_t kDemandWindow = 32;
  std::vector<std::uint32_t> widths;
  widths.reserve(kDemandWindow + suspended_.size());
  const std::size_t scan = std::min(queue_.size(), kDemandWindow);
  for (std::size_t i = 0; i < scan; ++i) {
    const QueueEntry& entry = queue_.at(i);
    if (optically_eligible(entry)) widths.push_back(entry.min_wavelengths);
  }
  for (const auto& exec : suspended_) {
    if (exec.get() == excluding) continue;
    if (exec->substrate->kind() == SubstrateKind::kOptical) {
      widths.push_back(exec->min_width);
    }
  }
  optical_->note_pending_demand(widths);
}

bool CollectiveRuntime::has_suspended(SubstrateKind kind) const {
  return std::any_of(suspended_.begin(), suspended_.end(),
                     [kind](const std::shared_ptr<Execution>& exec) {
                       return exec->substrate->kind() == kind;
                     });
}

bool CollectiveRuntime::electrically_pinned(const QueueEntry& entry) {
  return !entry.held && entry.pin == SubstratePin::kElectricalOnly;
}

void CollectiveRuntime::try_admit() {
  // Cost-model routing happens before the optical loop, so a job the
  // models send to the electrical fabric is not grabbed by the optical
  // admission just because spectrum happens to be free.  The routing is
  // work-conserving, not sticky: when the job's hosts are busy, the
  // optical loop below may still run it on free spectrum rather than
  // idle-wait for the predicted-faster fabric.
  if (config_.placement == HybridPlacementPolicy::kCostModelChoice) {
    while (try_place_one_electrical()) {
    }
  }
  while (true) {
    // Under kPriorityPreempt a suspended OPTICAL execution that outranks
    // every queued job has first claim on freed spectrum, and while it
    // cannot resume, lower-priority arrivals must not be admitted into the
    // band it waits for — otherwise a steady trickle of small low-priority
    // jobs starves a preempted high-priority victim forever (admission-side
    // priority inversion).  Suspended ELECTRICAL executions wait for hosts,
    // not spectrum; they get the mirror guard inside the electrical
    // placement path and must not hold up the optical line here.
    if (config_.policy == FairnessPolicy::kPriorityPreempt &&
        has_suspended(SubstrateKind::kOptical)) {
      const util::Seconds now = simulator_.now();
      const std::optional<std::size_t> head =
          priority_head(queue_, now, config_.aging_half_life);
      const std::int32_t queued_top =
          head ? aged_priority(queue_.at(*head).priority,
                               queue_.at(*head).arrival, now,
                               config_.aging_half_life)
               : std::numeric_limits<std::int32_t>::min();
      if (top_suspended_priority(SubstrateKind::kOptical) > queued_top) {
        if (try_resume_one()) continue;
        break;  // resume blocked: hold the line, ask for preemptions below
      }
    }
    const std::optional<AdmissionDecision> decision =
        next_admission(queue_, config_.policy, optical_->largest_free_grant(),
                       optical_->free_grant_total(), simulator_.now(),
                       config_.aging_half_life);
    if (decision) {
      admit(*decision);
      continue;
    }
    if (try_resume_one()) continue;
    break;
  }
  // Overflow: whatever the optical loop declined spills onto free
  // electrical hosts instead of queueing for spectrum.
  if (config_.placement == HybridPlacementPolicy::kElectricalOverflow) {
    bool spilled = false;
    while (try_place_one_electrical()) spilled = true;
    // A spill drains the host-priority guard's reason to wait: the urgent
    // pinned arrival that was holding hosts hostage is running now, so a
    // suspended electrical execution may resume on what is left — at this
    // very instant, not at the next completion event.
    if (spilled) {
      while (try_resume_one()) {
      }
    }
  }
  if (config_.policy == FairnessPolicy::kPriorityPreempt) {
    request_preemptions();
  }
}

bool CollectiveRuntime::try_place_one_electrical() {
  if (!electrical_) return false;
  // Mirror of the optical admission guard: hosts freed for a suspended
  // electrical execution must not leak to lower-priority queued arrivals,
  // or a trickle of small pinned jobs starves the preempted victim.
  const std::int32_t top_elec_suspended =
      config_.policy == FairnessPolicy::kPriorityPreempt
          ? top_suspended_priority(SubstrateKind::kElectrical)
          : std::numeric_limits<std::int32_t>::min();
  // Candidate order mirrors the fairness policy's preference: priority
  // (ties on arrival) under kPriorityPreempt, arrival order otherwise.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (!queue_.at(i).held) order.push_back(i);
  }
  const util::Seconds age_now = simulator_.now();
  std::sort(order.begin(), order.end(),
            [this, age_now](std::size_t a, std::size_t b) {
              const QueueEntry& ja = queue_.at(a);
              const QueueEntry& jb = queue_.at(b);
              if (config_.policy == FairnessPolicy::kPriorityPreempt) {
                const std::int32_t pa = aged_priority(
                    ja.priority, ja.arrival, age_now, config_.aging_half_life);
                const std::int32_t pb = aged_priority(
                    jb.priority, jb.arrival, age_now, config_.aging_half_life);
                if (pa != pb) return pa > pb;
              }
              return ja.seq < jb.seq;
            });
  for (const std::size_t idx : order) {
    const QueueEntry& job = queue_.at(idx);
    if (job.pin == SubstratePin::kOpticalOnly) continue;
    if (top_elec_suspended > aged_priority(job.priority, job.arrival, age_now,
                                           config_.aging_half_life)) {
      continue;
    }
    if (!electrical_->can_place(job.participants, 1)) continue;
    if (config_.placement == HybridPlacementPolicy::kCostModelChoice &&
        job.pin != SubstratePin::kElectricalOnly) {
      // Route by predicted completion.  Under kCongestionAware both sides
      // answer for their CURRENT state — the electrical estimate stretches
      // with the live residual uplink bandwidth, the optical one with the
      // predicted wait for a free band — so a saturated fabric stops
      // attracting spill and a backed-up ring stops holding jobs.  Under
      // kQuietAlphaBeta the comparison is of quiet run times only (the
      // ablation baseline).  A pinned job skips the comparison — the
      // tenant already decided.
      const util::Seconds now = simulator_.now();
      util::Seconds elec_done;
      util::Seconds optic_done;
      if (config_.routing_cost_model == RoutingCostModel::kCongestionAware) {
        elec_done = electrical_->predict_completion(job.participants,
                                                    job.payload, 1, now);
        optic_done = optical_->predict_completion(
            job.participants, job.payload, job.requested_wavelengths, now);
      } else {
        elec_done =
            now + electrical_->predict_makespan(job.participants, job.payload,
                                                1);
        optic_done = now + optical_->predict_makespan(
                               job.participants, job.payload,
                               job.requested_wavelengths);
      }
      if (elec_done >= optic_done) continue;
      pending_route_prediction_ = {optic_done, elec_done};
    }
    place_execution(*electrical_, idx, /*grant=*/1);
    return true;
  }
  return false;
}

void CollectiveRuntime::request_preemptions() {
  request_optical_preemptions();
  request_electrical_preemptions();
}

void CollectiveRuntime::request_optical_preemptions() {
  // The most urgent spectrum waiter: the queued admission head (the same
  // selection the policy itself uses, so preemptions always benefit the job
  // admission will actually pick) or a suspended OPTICAL execution awaiting
  // resume, whichever outranks the other.
  std::int32_t target_priority = std::numeric_limits<std::int32_t>::min();
  std::uint32_t target_min = 0;
  const util::Seconds now = simulator_.now();
  if (const std::optional<std::size_t> head =
          priority_head(queue_, now, config_.aging_half_life)) {
    target_priority = aged_priority(queue_.at(*head).priority,
                                    queue_.at(*head).arrival, now,
                                    config_.aging_half_life);
    target_min = queue_.at(*head).min_wavelengths;
  }
  for (const auto& exec : suspended_) {
    if (exec->substrate->kind() != SubstrateKind::kOptical) continue;
    const std::int32_t effective = effective_priority(*exec);
    if (effective > target_priority) {
      target_priority = effective;
      target_min = exec->min_width;
    }
  }
  if (target_min == 0) return;

  // Spectrum usable today plus bands already being surrendered at the next
  // boundary.  Admission needs a CONTIGUOUS run, so the baseline is the
  // largest free block, not the free total — a fragmented pool that sums to
  // the minimum admits nothing.  Adding victim widths is still approximate
  // (their bands may not abut the free runs); both error directions
  // self-correct: under-preemption retries here on the next try_admit, and
  // a victim whose suspension became unnecessary is reprieved by the
  // boundary re-check in renegotiate().
  std::uint32_t pending = optical_->largest_free_grant();
  for (const auto& exec : running_execs_) {
    if (exec->substrate->kind() != SubstrateKind::kOptical) continue;
    if (exec->preempt_requested) pending += exec->plan->grant();
  }
  if (pending >= target_min) return;

  // Victims: lower-priority executions of the OPTICAL substrate only —
  // surrendering host links would not free a wavelength — cheapest first
  // (lowest priority, then widest band so one victim usually suffices,
  // then oldest lead job for determinism).  The band is not taken here —
  // the victim surrenders it at its next step boundary, which is what
  // makes the handoff safe.
  std::vector<std::shared_ptr<Execution>> victims;
  for (const auto& exec : running_execs_) {
    if (exec->substrate->kind() != SubstrateKind::kOptical) continue;
    if (!exec->substrate->caps().preemptible) continue;
    if (!exec->preempt_requested && exec->priority < target_priority) {
      victims.push_back(exec);
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) {
              if (a->priority != b->priority) return a->priority < b->priority;
              if (a->plan->grant() != b->plan->grant()) {
                return a->plan->grant() > b->plan->grant();
              }
              return a->jobs.front() < b->jobs.front();
            });
  for (const auto& victim : victims) {
    if (pending >= target_min) break;
    victim->preempt_requested = true;
    pending += victim->plan->grant();
  }
}

void CollectiveRuntime::request_electrical_preemptions() {
  if (!electrical_ || !electrical_->caps().preemptible) return;
  // The most urgent HOST waiter: the highest-priority pinned-electrical
  // arrival (a kAny job also has the optical line working for it and never
  // justifies evicting an electrical tenant), or a suspended electrical
  // execution awaiting resume.  A queued waiter needs ITS OWN ring
  // positions' hosts; a suspended one can resume on any free host set of
  // its size (remaps_on_resume).
  std::int32_t target_priority = std::numeric_limits<std::int32_t>::min();
  const util::Seconds now = simulator_.now();
  const QueueEntry* queued_waiter = nullptr;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const QueueEntry& entry = queue_.at(i);
    if (!electrically_pinned(entry)) continue;
    const std::int32_t effective = aged_priority(
        entry.priority, entry.arrival, now, config_.aging_half_life);
    if (!queued_waiter || effective > target_priority ||
        (effective == target_priority && entry.seq < queued_waiter->seq)) {
      queued_waiter = &entry;
      target_priority = effective;
    }
  }
  std::uint32_t suspended_need = 0;
  for (const auto& exec : suspended_) {
    if (exec->substrate->kind() != SubstrateKind::kElectrical) continue;
    const std::int32_t effective = effective_priority(*exec);
    if (effective > target_priority) {
      target_priority = effective;
      queued_waiter = nullptr;
      suspended_need =
          static_cast<std::uint32_t>(exec->participants.size());
    }
  }
  if (!queued_waiter && suspended_need == 0) return;
  if (queued_waiter &&
      electrical_->can_place(queued_waiter->participants, 1)) {
    return;  // placeable right now; the placement path will take it
  }

  // Same surrender-at-the-boundary protocol as the optical planner: mark
  // victims, let renegotiate() re-check at their next step boundary, and
  // retry here on the next try_admit if this round under-shot.  Host sets
  // are snapshotted once — hosts() copies, and the scans below would
  // otherwise re-copy per (waiter host x execution) pair.
  struct Holder {
    std::shared_ptr<Execution> exec;
    std::vector<topo::NodeId> hosts;
  };
  std::vector<Holder> electrical_running;
  for (const auto& exec : running_execs_) {
    if (exec->substrate->kind() == SubstrateKind::kElectrical) {
      electrical_running.push_back(Holder{exec, exec->plan->hosts()});
    }
  }

  if (queued_waiter) {
    // The waiter's hosts are busy: every holder must be preemptible and
    // strictly lower-priority, or preemption cannot help at all.
    bool any_busy_holder = false;
    std::vector<std::shared_ptr<Execution>> blockers;
    for (const topo::NodeId host : queued_waiter->participants) {
      for (const Holder& holder : electrical_running) {
        if (std::find(holder.hosts.begin(), holder.hosts.end(), host) ==
            holder.hosts.end()) {
          continue;
        }
        any_busy_holder = true;
        if (holder.exec->priority >= target_priority) {
          return;  // outranked: hopeless
        }
        if (!holder.exec->preempt_requested &&
            std::find(blockers.begin(), blockers.end(), holder.exec) ==
                blockers.end()) {
          blockers.push_back(holder.exec);
        }
        break;  // hosts are exclusive; one holder per host
      }
    }
    if (any_busy_holder) {
      // Empty `blockers` with a busy holder means every holder is already
      // surrendering — the request is in flight, waiting on their step
      // boundaries, and marking unrelated tenants would only cascade
      // collateral suspensions that free nothing the waiter can use.
      for (const auto& victim : blockers) victim->preempt_requested = true;
      return;
    }
    // No busy host blocks the waiter, yet can_place said no: the
    // concurrency cap is the bottleneck.  One victim frees a slot;
    // cheapest first (lowest priority, then fewest hosts surrendered, then
    // oldest lead job for determinism).
    const Holder* cheapest = nullptr;
    for (const Holder& holder : electrical_running) {
      if (holder.exec->preempt_requested ||
          holder.exec->priority >= target_priority) {
        continue;
      }
      const auto better = [](const Holder& a, const Holder& b) {
        if (a.exec->priority != b.exec->priority) {
          return a.exec->priority < b.exec->priority;
        }
        if (a.hosts.size() != b.hosts.size()) {
          return a.hosts.size() < b.hosts.size();
        }
        return a.exec->jobs.front() < b.exec->jobs.front();
      };
      if (cheapest == nullptr || better(holder, *cheapest)) {
        cheapest = &holder;
      }
    }
    if (cheapest != nullptr) cheapest->exec->preempt_requested = true;
    return;
  }

  // Suspended waiter: free hosts anywhere count, so accumulate surrendered
  // host sets (largest first, so one victim usually suffices) until the
  // resume could fit.
  std::uint32_t pending = electrical_->free_grant_total();
  std::vector<const Holder*> victims;
  for (const Holder& holder : electrical_running) {
    if (holder.exec->preempt_requested) {
      pending += static_cast<std::uint32_t>(holder.hosts.size());
    } else if (holder.exec->priority < target_priority) {
      victims.push_back(&holder);
    }
  }
  if (pending >= suspended_need) return;
  std::sort(victims.begin(), victims.end(),
            [](const Holder* a, const Holder* b) {
              if (a->exec->priority != b->exec->priority) {
                return a->exec->priority < b->exec->priority;
              }
              if (a->hosts.size() != b->hosts.size()) {
                return a->hosts.size() > b->hosts.size();
              }
              return a->exec->jobs.front() < b->exec->jobs.front();
            });
  for (const Holder* victim : victims) {
    if (pending >= suspended_need) break;
    victim->exec->preempt_requested = true;
    pending += static_cast<std::uint32_t>(victim->hosts.size());
  }
}

void CollectiveRuntime::verify_composite_or_die(const Execution& exec) {
  if (!config_.validate_with_oracle) {
    // Nothing to prove: records keep the benefit of the doubt, matching the
    // pre-renegotiation behavior of a disabled oracle.
    for (const JobId id : exec.jobs) records_[id].oracle_ok = true;
    return;
  }
  // Prove the steps ALREADY RUN plus the (possibly rebuilt) steps still
  // ahead compute the all-reduce — a renegotiated schedule must clear the
  // same bar as a fresh one, and an electrically-placed schedule the same
  // bar as an optical one, before touching its fabric.  Chunk granularity
  // follows the plan (Wrht schedules carry the full vector in one chunk,
  // electrical ring schedules are chunked); renegotiation never changes it,
  // so the executed prefix always shares the plan's granularity.
  coll::Schedule composite("composite", config_.ring_size,
                           exec.plan->schedule().num_chunks());
  for (const coll::Step& step : exec.executed) {
    composite.add_step();
    for (const coll::Transfer& t : step.transfers) {
      composite.add_transfer(t);
    }
  }
  const coll::Schedule& ahead = exec.plan->schedule();
  for (const coll::Step& step : ahead.steps()) {
    composite.add_step();
    for (const coll::Transfer& t : step.transfers) {
      composite.add_transfer(t);
    }
  }
  // Faults change the delivery contract, not the sum: once nodes were
  // evicted mid-flight, every ORIGINAL participant contributed but only
  // the survivors must end holding the total (the evicted nodes' hardware
  // is gone — their final state is unspecified).
  coll::OracleResult verdict;
  if (exec.evicted.empty()) {
    verdict = coll::Oracle::verify_allreduce_among(
        composite, exec.participants, config_.oracle_payload_len);
  } else {
    std::vector<topo::NodeId> recipients;
    recipients.reserve(exec.participants.size());
    for (const topo::NodeId node : exec.participants) {
      if (std::find(exec.evicted.begin(), exec.evicted.end(), node) ==
          exec.evicted.end()) {
        recipients.push_back(node);
      }
    }
    verdict = coll::Oracle::verify_allreduce_among(
        composite, exec.participants, recipients, config_.oracle_payload_len);
  }
  if (!verdict.ok) ++report_.oracle_failures;
  // A schedule that fails the oracle must never touch its fabric; like a
  // wavelength conflict, this is a library bug, not a tenant error.
  WRHT_CHECK(verdict.ok,
             "CollectiveRuntime: schedule failed the all-reduce oracle (job "
                 << exec.jobs.front() << "): " << verdict.message);
  for (const JobId id : exec.jobs) records_[id].oracle_ok = true;
}

void CollectiveRuntime::adopt_plan(Execution& exec,
                                   std::unique_ptr<SubstrateExecution> next) {
  const std::vector<coll::Step>& old_steps = exec.plan->schedule().steps();
  for (std::size_t s = 0; s < exec.next_step; ++s) {
    exec.executed.push_back(old_steps[s]);
  }
  exec.plan = std::move(next);
  exec.next_step = 0;
  verify_composite_or_die(exec);
  const std::size_t ahead = exec.plan->num_steps();
  for (const JobId id : exec.jobs) {
    JobRecord& record = records_[id];
    record.band = exec.plan->band();
    record.steps =
        static_cast<std::uint32_t>(exec.executed.size() + ahead);
  }
}

void CollectiveRuntime::admit(const AdmissionDecision& decision) {
  place_execution(*optical_, decision.queue_index, decision.grant);
}

void CollectiveRuntime::place_execution(ExecutionSubstrate& substrate,
                                        std::size_t queue_index,
                                        std::uint32_t grant) {
  // Read before the entry is popped: the width the routing audit prices
  // the optical alternative at when the execution lands electrically, and
  // the pin that tells it whether the router chose at all.
  const std::uint32_t lead_request =
      queue_.at(queue_index).requested_wavelengths;
  const SubstratePin lead_pin = queue_.at(queue_index).pin;
  const SubstrateCaps& caps = substrate.caps();
  std::vector<std::size_t> members;
  if (caps.batchable) {
    // A fused peer executes inside the lead's grant; only substrates whose
    // grants are wavelength-denominated impose the peer's min_wavelengths
    // floor on it (electrical peers ride host links, not a band).
    const std::uint32_t fuse_width =
        caps.fuse_respects_grant ? grant
                                 : std::numeric_limits<std::uint32_t>::max();
    members = fusable_peers(queue_, queue_index, fuse_width, config_.batcher);
  } else {
    members = {queue_index};
  }

  auto exec = std::make_shared<Execution>();
  exec->substrate = &substrate;
  // Pop members back-to-front so earlier indices stay valid.
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    QueueEntry entry = queue_.take(*it);
    if (exec->participants.empty()) {
      exec->participants = std::move(entry.participants);
    }
    exec->batch_payload += entry.payload;
    exec->priority = std::max(exec->priority, entry.priority);
    exec->min_width = std::max(exec->min_width, entry.min_wavelengths);
    exec->jobs.push_back(entry.id);
  }
  std::reverse(exec->jobs.begin(), exec->jobs.end());  // oldest first
  exec->useful_cap = useful_wavelength_cap(exec->participants.size());

  if (substrate.kind() == SubstrateKind::kOptical) {
    // The members just left the queue, so the snapshot is exactly the
    // demand this placement must not strand.
    publish_optical_demand(nullptr);
  }
  exec->plan =
      substrate.place(exec->participants, exec->batch_payload, grant);
  verify_composite_or_die(*exec);

  const SubstrateKind kind = substrate.kind();
  const WavelengthBand band = exec->plan->band();
  const std::size_t num_steps = exec->plan->num_steps();
  const util::Seconds now = simulator_.now();
  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kRunning;
    record.admitted = now;
    record.substrate = kind;
    record.band = band;
    record.batch_size = static_cast<std::uint32_t>(exec->jobs.size());
    record.steps = static_cast<std::uint32_t>(num_steps);
    trace_job(sim::TraceKind::kJobAdmit, id, band);
    trace_job(kind == SubstrateKind::kOptical
                  ? sim::TraceKind::kJobPlaceOptical
                  : sim::TraceKind::kJobPlaceElectrical,
              id, band);
    if (id != exec->jobs.front() && trace_.enabled()) {
      trace_.record(now, sim::TraceKind::kJobFused, id,
                    static_cast<std::int64_t>(exec->jobs.front()));
    }
    // Admission wait of this job (fused peers waited too), folded into the
    // per-priority-class starvation high-watermark.
    const double wait = (now - record.spec.arrival).value();
    obs::observe(ins_.admission_wait, wait);
    obs::set_max(max_wait_gauge(record.spec.priority), wait);
  }
  obs::observe(ins_.batch_jobs, static_cast<double>(exec->jobs.size()));
  if (exec->jobs.size() > 1) {
    obs::inc(ins_.jobs_fused,
             static_cast<std::uint64_t>(exec->jobs.size() - 1));
  }
  running_jobs_ += static_cast<std::uint32_t>(exec->jobs.size());
  report_.peak_concurrent_jobs =
      std::max(report_.peak_concurrent_jobs, running_jobs_);
  ++report_.executions;
  if (exec->jobs.size() > 1) ++report_.batches;
  SubstrateBreakdown& slice = breakdown(kind);
  slice.jobs += static_cast<std::uint32_t>(exec->jobs.size());
  ++slice.executions;
  running_execs_.push_back(exec);

  // Admission does not filter on node liveness (a down TRANSCEIVER's job
  // may still have been queued before the fault): a fresh optical placement
  // over dead participants runs its first step and reconciles at the first
  // boundary, exactly like a running execution the fault caught.
  if (any_fault_ever_ && kind == SubstrateKind::kOptical) {
    for (const topo::NodeId node : exec->participants) {
      if (optical_node_down_[node] != 0) {
        exec->fault_pending = true;
        break;
      }
    }
  }

  audit_route_decision(*exec, grant, lead_request, lead_pin);
  run_step(exec);
}

void CollectiveRuntime::audit_route_decision(const Execution& exec,
                                             std::uint32_t grant,
                                             std::uint32_t optical_request,
                                             SubstratePin pin) {
  // The routing verdict binds HERE, at placement — until now the
  // comparison was re-asked on every event and carried no commitment.
  // Record both fabrics' predictions (the decision's inputs, frozen for
  // post-hoc audit) and stamp each carried job with the chosen one; the
  // run-end report scores them against actual completions.  One decision
  // per EXECUTION (the router ran once; fused peers ride the verdict),
  // and none at all for pinned jobs — a forced placement says nothing
  // about the router's accuracy.
  const std::optional<std::pair<util::Seconds, util::Seconds>> precomputed =
      std::exchange(pending_route_prediction_, std::nullopt);
  if (config_.placement != HybridPlacementPolicy::kCostModelChoice ||
      !electrical_ || pin != SubstratePin::kAny) {
    return;
  }
  const util::Seconds now = simulator_.now();
  const bool placed_electrical =
      exec.substrate->kind() == SubstrateKind::kElectrical;
  util::Seconds optic;
  util::Seconds elec;
  if (precomputed && exec.jobs.size() == 1) {
    // The electrical placement path just priced both sides for exactly
    // this work — no fusion happened, the fabric state is untouched (the
    // execution's own flows are injected by run_step, after this audit) —
    // so re-running the congestion probe would buy the same numbers for
    // another FlowNetwork clone.  A FUSED execution runs batch_payload,
    // not the lead's payload the comparison priced; it falls through to a
    // fresh estimate so electrical and optical decisions are scored
    // against the same (batched) work.
    optic = precomputed->first;
    elec = precomputed->second;
  } else {
    const bool aware =
        config_.routing_cost_model == RoutingCostModel::kCongestionAware;
    const std::uint32_t optical_grant =
        placed_electrical ? optical_request : grant;
    optic = aware ? optical_->predict_completion(exec.participants,
                                                 exec.batch_payload,
                                                 optical_grant, now)
                  : now + optical_->predict_makespan(exec.participants,
                                                     exec.batch_payload,
                                                     optical_grant);
    elec = aware ? electrical_->predict_completion(exec.participants,
                                                   exec.batch_payload, 1, now)
                 : now + electrical_->predict_makespan(exec.participants,
                                                       exec.batch_payload, 1);
  }
  const util::Seconds chosen = placed_electrical ? elec : optic;
  ++report_.routing.decisions;
  ++(placed_electrical ? report_.routing.to_electrical
                       : report_.routing.to_optical);
  for (const JobId id : exec.jobs) {
    records_[id].predicted_completion = chosen;
    if (trace_.enabled()) {
      trace_.record(now, sim::TraceKind::kRouteDecision, id,
                    static_cast<std::int64_t>(exec.substrate->kind()),
                    "optical=" + util::to_string(optic) +
                        " electrical=" + util::to_string(elec));
    }
  }
}

bool CollectiveRuntime::renegotiate(const std::shared_ptr<Execution>& exec) {
  // Faults outrank every voluntary renegotiation: dead hardware cannot
  // carry the next step, so reconcile against the down sets before the
  // preempt/resize logic gets a say.
  if (exec->fault_pending || exec->migrate_pending) {
    if (handle_fault_at_boundary(exec)) return true;
  }
  const SubstrateCaps& caps = exec->substrate->caps();
  if (caps.preemptible && exec->preempt_requested) {
    exec->preempt_requested = false;
    // Re-check at the boundary: the waiter that asked for this grant — a
    // queued arrival or a suspended execution trying to resume — may have
    // been satisfied meanwhile by a completion elsewhere.  Eligibility is
    // per substrate: only a waiter this fabric could actually serve
    // justifies the suspension (an electrically-pinned arrival gains
    // nothing from an optical band, and a kAny arrival never justified
    // evicting an electrical tenant in the first place).
    const SubstrateKind kind = exec->substrate->kind();
    bool still_needed = top_suspended_priority(kind) > exec->priority;
    for (std::size_t i = 0; i < queue_.size() && !still_needed; ++i) {
      const QueueEntry& entry = queue_.at(i);
      const bool eligible = kind == SubstrateKind::kOptical
                                ? optically_eligible(entry)
                                : electrically_pinned(entry);
      still_needed =
          eligible && aged_priority(entry.priority, entry.arrival,
                                    simulator_.now(),
                                    config_.aging_half_life) > exec->priority;
    }
    if (still_needed) {
      // suspend_execution re-runs admission, which may legally resume THIS
      // execution at the same instant on a different band (run_step already
      // dispatched by the resume) — so the verdict here is "surrendered",
      // unconditionally, not the current suspended flag.
      suspend_execution(exec);
      return true;
    }
  }
  if (!config_.elastic_resize || !caps.resizable) return false;
  // Held (fuse-window) entries are not admissible yet, so they neither
  // justify a shrink nor block a grow.  Suspended OPTICAL executions are
  // waiting on spectrum too: growing past them would hand a runner the
  // very band a preempted (possibly more urgent) job needs to resume —
  // priority inversion by resize.  (Suspended electrical executions wait
  // for hosts; spectrum resizes neither help nor hurt them.)
  bool admissible_waiter = has_suspended(SubstrateKind::kOptical);
  for (std::size_t i = 0; i < queue_.size() && !admissible_waiter; ++i) {
    admissible_waiter = optically_eligible(queue_.at(i));
  }
  if (!admissible_waiter) {
    try_grow(exec);
  } else {
    try_shrink(exec);
  }
  return false;
}

void CollectiveRuntime::suspend_execution(
    const std::shared_ptr<Execution>& exec, bool fault) {
  exec->substrate->release(*exec->plan, simulator_.now());
  suspend_released(exec, fault);
}

void CollectiveRuntime::suspend_released(
    const std::shared_ptr<Execution>& exec, bool fault) {
  exec->suspended = true;
  exec->suspended_since = simulator_.now();
  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kPreempted;
    ++record.preemptions;
    trace_job(sim::TraceKind::kJobPreempt, id, exec->plan->band());
  }
  running_jobs_ -= static_cast<std::uint32_t>(exec->jobs.size());
  ++report_.preemptions;
  obs::inc(ins_.preemptions);
  if (fault) ++report_.faults.fault_preemptions;
  running_execs_.erase(
      std::find(running_execs_.begin(), running_execs_.end(), exec));
  suspended_.push_back(exec);
  // A fault suspension just surrendered the DEAD units along with the live
  // ones; quarantine them before the admission re-run below can hand them
  // to a queued tenant.
  if (fault) quarantine_downed_units();
  // The surrendered band is free NOW, at the boundary — the waiting
  // high-priority job starts without waiting for this execution to finish.
  try_admit();
  pump_metrics();
}

bool CollectiveRuntime::try_resume_one() {
  if (suspended_.empty()) return false;
  // Highest EFFECTIVE (aged) priority first, FIFO among equals.
  std::vector<std::size_t> order(suspended_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return effective_priority(*suspended_[a]) >
                            effective_priority(*suspended_[b]);
                   });
  for (const std::size_t idx : order) {
    const std::shared_ptr<Execution> exec = suspended_[idx];
    // Never hand capacity back to a victim while the queue still holds a
    // strictly more urgent job contending for the SAME fabric — that is
    // the resource being fought over.  Spectrum fights are between
    // optically eligible entries, host fights between pinned-electrical
    // ones.
    if (config_.policy == FairnessPolicy::kPriorityPreempt) {
      const SubstrateKind kind = exec->substrate->kind();
      const util::Seconds now = simulator_.now();
      std::int32_t top_queued = std::numeric_limits<std::int32_t>::min();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const QueueEntry& entry = queue_.at(i);
        const bool same_fabric = kind == SubstrateKind::kOptical
                                     ? optically_eligible(entry)
                                     : electrically_pinned(entry);
        if (same_fabric) {
          top_queued = std::max(
              top_queued, aged_priority(entry.priority, entry.arrival, now,
                                        config_.aging_half_life));
        }
      }
      if (top_queued > effective_priority(*exec)) continue;
    }
    // Fault reconciliation first: participants that died while this
    // execution waited must be dropped before (or instead of) resuming.
    std::vector<topo::NodeId> dead;
    if (any_fault_ever_ &&
        exec->substrate->kind() == SubstrateKind::kOptical) {
      dead = newly_dead(*exec);
      if (!dead.empty() &&
          exec->participants.size() - exec->evicted.size() - dead.size() <
              2) {
        kill_execution(exec);
        return true;  // state changed; the caller's loop re-enters
      }
      if (exec->fresh_restart && !dead.empty()) {
        // Nothing executed survives anyway — just shrink the restart set.
        exec->participants = live_participants(*exec);
        exec->useful_cap = useful_wavelength_cap(exec->participants.size());
        dead.clear();
      }
    }
    // The pre-suspension width is the sizing hint; the substrate may settle
    // for less (never below the floor) or need more for inherited mirrors.
    const std::uint32_t desired = std::clamp(
        exec->plan->band().width, exec->min_width, exec->useful_cap);
    if (exec->substrate->kind() == SubstrateKind::kOptical) {
      publish_optical_demand(exec.get());
    }
    bool restarted = exec->fresh_restart;
    RenegotiationOutcome outcome;
    if (exec->fresh_restart) {
      outcome = exec->substrate->renegotiate(
          nullptr,
          RenegotiationRequest::restart(exec->participants,
                                        exec->batch_payload, desired,
                                        exec->min_width));
    } else {
      outcome = exec->substrate->renegotiate(
          exec->plan.get(),
          RenegotiationRequest::resume(exec->next_step, desired,
                                       exec->min_width, dead));
      if (!outcome.accepted() && !dead.empty()) {
        // The remainder cannot absorb the eviction (a dead node still
        // carries state it needs): discard the prefix and restart fresh
        // among the survivors.
        report_.faults.wasted_step_time += exec->busy_time;
        exec->busy_time = util::Seconds(0.0);
        exec->quiet_time = util::Seconds(0.0);
        exec->participants = live_participants(*exec);
        exec->useful_cap = useful_wavelength_cap(exec->participants.size());
        exec->executed.clear();
        exec->evicted.clear();
        exec->next_step = 0;
        exec->fresh_restart = true;
        restarted = true;
        outcome = exec->substrate->renegotiate(
            nullptr,
            RenegotiationRequest::restart(exec->participants,
                                          exec->batch_payload, desired,
                                          exec->min_width));
      }
    }
    if (!outcome.accepted()) continue;

    suspended_.erase(suspended_.begin() +
                     static_cast<std::ptrdiff_t>(idx));
    exec->suspended = false;
    if (restarted) {
      exec->fresh_restart = false;
      ++report_.faults.restarts;
    } else if (!dead.empty()) {
      exec->evicted.insert(exec->evicted.end(), dead.begin(), dead.end());
      ++report_.faults.evictions;
    }
    adopt_plan(*exec, std::move(outcome.plan));
    note_recovery(*exec);
    for (const JobId id : exec->jobs) {
      records_[id].state = JobState::kRunning;
      trace_job(sim::TraceKind::kJobResume, id, exec->plan->band());
    }
    running_jobs_ += static_cast<std::uint32_t>(exec->jobs.size());
    report_.peak_concurrent_jobs =
        std::max(report_.peak_concurrent_jobs, running_jobs_);
    ++report_.resumes;
    obs::inc(ins_.resumes);
    running_execs_.push_back(exec);
    run_step(exec);
    return true;
  }
  return false;
}

void CollectiveRuntime::try_grow(const std::shared_ptr<Execution>& exec) {
  if (exec->plan->grant() >= exec->useful_cap) return;
  RenegotiationOutcome outcome = exec->substrate->renegotiate(
      exec->plan.get(),
      RenegotiationRequest::grow(exec->next_step, exec->useful_cap));
  if (!outcome.accepted()) return;
  adopt_plan(*exec, std::move(outcome.plan));
  for (const JobId id : exec->jobs) {
    ++records_[id].resizes;
    trace_job(sim::TraceKind::kJobResize, id, exec->plan->band());
  }
  ++report_.resizes;
  obs::inc(ins_.resizes);
}

void CollectiveRuntime::try_shrink(const std::shared_ptr<Execution>& exec) {
  const std::uint32_t width = exec->plan->grant();
  if (width <= exec->min_width) return;

  // A cut "helps" when the surrendered range would actually unblock
  // someone: the job the ACTIVE POLICY would admit next (under FIFO /
  // priority a fitting tail entry behind a blocked head admits nothing), or
  // a suspended execution waiting to resume.  Smaller keeps free more, so
  // helps is monotone — the GENTLEST helping cut is the right target:
  // surrendering more than the waiter needs just costs the running job
  // extra levels for nothing.
  const auto helps = [this, &exec, width](std::uint32_t target) {
    const std::uint32_t would =
        exec->substrate->free_grant_if_kept(*exec->plan, target);
    if (next_admission(queue_, config_.policy, would,
                       exec->substrate->free_grant_total() +
                           (width - target))) {
      return true;
    }
    for (const auto& suspended : suspended_) {
      if (suspended->substrate->kind() != SubstrateKind::kOptical) continue;
      if (suspended->min_width <= would) return true;
    }
    return false;
  };
  std::uint32_t target = width - 1;
  while (target > exec->min_width && !helps(target)) --target;
  if (!helps(target)) return;

  // Deeper cuts only make the remainder rebuild harder (the owed mirrors
  // need their level widths), so if the gentlest helping cut cannot
  // rebuild, no helping cut can.
  RenegotiationOutcome outcome = exec->substrate->renegotiate(
      exec->plan.get(),
      RenegotiationRequest::shrink(exec->next_step, target));
  if (!outcome.accepted()) return;
  adopt_plan(*exec, std::move(outcome.plan));
  for (const JobId id : exec->jobs) {
    ++records_[id].resizes;
    trace_job(sim::TraceKind::kJobResize, id, exec->plan->band());
  }
  ++report_.resizes;
  obs::inc(ins_.resizes);
  try_admit();
}

// ---------------------------------------------------------------------------
// Fault injection and recovery.

void CollectiveRuntime::pump_faults() {
  if (fault_source_ == nullptr) return;
  std::optional<FaultSpec> spec = fault_source_->next();
  if (!spec) {
    fault_source_ = nullptr;
    return;
  }
  WRHT_REQUIRE(spec->at >= last_fault_at_,
               "CollectiveRuntime: fault source yielded injection at "
                   << spec->at.value() << "s after " << last_fault_at_.value()
                   << "s — faults must be in nondecreasing time order");
  last_fault_at_ = spec->at;
  // Chain exactly like pump_source: the injection event pulls the NEXT
  // fault, so one not-yet-injected fault exists at any instant.
  const FaultSpec fault = *spec;
  simulator_.schedule_at(fault.at, [this, fault] {
    on_fault(fault);
    pump_faults();
  });
}

void CollectiveRuntime::on_fault(const FaultSpec& fault) {
  any_fault_ever_ = true;
  ++report_.faults.injected;
  obs::inc(ins_.faults_injected);
  const util::Seconds now = simulator_.now();
  const std::uint32_t hpt = std::max(1u, config_.electrical.hosts_per_tor);
  switch (fault.domain) {
    case FaultDomain::kTransceiver:
      WRHT_REQUIRE(fault.subject < config_.ring_size,
                   "on_fault: transceiver subject " << fault.subject
                                                    << " off the ring");
      ++report_.faults.transceiver_faults;
      ++optical_node_down_[fault.subject];
      break;
    case FaultDomain::kNode:
      WRHT_REQUIRE(fault.subject < config_.ring_size,
                   "on_fault: node subject " << fault.subject
                                             << " off the ring");
      ++report_.faults.node_faults;
      ++optical_node_down_[fault.subject];
      ++host_down_[fault.subject];
      break;
    case FaultDomain::kTor:
      ++report_.faults.tor_faults;
      for (std::uint32_t h = fault.subject * hpt;
           h < (fault.subject + 1) * hpt && h < config_.ring_size; ++h) {
        ++host_down_[h];
      }
      break;
    case FaultDomain::kWavelength:
      WRHT_REQUIRE(fault.subject < config_.optical.wdm.num_wavelengths,
                   "on_fault: wavelength subject " << fault.subject
                                                   << " off the spectrum");
      ++report_.faults.wavelength_faults;
      ++wavelength_down_[fault.subject];
      break;
  }
  if (trace_.enabled()) {
    trace_.record(now,
                  fault.domain == FaultDomain::kWavelength
                      ? sim::TraceKind::kWavelengthDegrade
                      : sim::TraceKind::kNodeFail,
                  fault.subject, static_cast<std::int64_t>(fault.domain),
                  fault_domain_name(fault.domain));
  }
  // Free down units leave service immediately; units inside live grants are
  // quarantined when their holders release.
  quarantine_downed_units();

  // Mark every running execution the fault touches for reconciliation at
  // its next BSP step boundary — the in-flight step finishes first (its
  // transfers were committed when the step was dispatched).
  for (const auto& exec : running_execs_) {
    bool hit = false;
    bool migrate = false;
    if (exec->substrate->kind() == SubstrateKind::kOptical) {
      if (fault.domain == FaultDomain::kTransceiver ||
          fault.domain == FaultDomain::kNode) {
        hit = std::find(exec->participants.begin(), exec->participants.end(),
                        fault.subject) != exec->participants.end() &&
              std::find(exec->evicted.begin(), exec->evicted.end(),
                        fault.subject) == exec->evicted.end();
      } else if (fault.domain == FaultDomain::kWavelength) {
        const WavelengthBand band = exec->plan->band();
        hit = fault.subject >= band.base &&
              fault.subject < band.base + band.width;
      }
    } else {
      if (fault.domain == FaultDomain::kNode ||
          fault.domain == FaultDomain::kTor) {
        const std::vector<topo::NodeId> hosts = exec->plan->hosts();
        for (const topo::NodeId host : hosts) {
          if (host_down_[host] != 0) {
            hit = true;
            migrate = fault.domain == FaultDomain::kTor;
            break;
          }
        }
      }
    }
    if (!hit) continue;
    const bool first = !exec->fault_pending && !exec->migrate_pending;
    if (migrate) {
      exec->migrate_pending = true;
    } else {
      exec->fault_pending = true;
    }
    if (first) ++report_.faults.disrupted_executions;
    if (exec->fault_since.value() <= 0.0) exec->fault_since = now;
  }

  // Suspended optical work whose survivor set this fault just shrank below
  // two can never resume — kill it now rather than strand it (and the
  // drained-clock invariant) behind a resume that will refuse forever.
  if (fault.domain == FaultDomain::kTransceiver ||
      fault.domain == FaultDomain::kNode) {
    const std::vector<std::shared_ptr<Execution>> snapshot = suspended_;
    for (const auto& exec : snapshot) {
      if (exec->substrate->kind() != SubstrateKind::kOptical) continue;
      if (std::find(suspended_.begin(), suspended_.end(), exec) ==
          suspended_.end()) {
        continue;  // a kill's admission re-run already moved it
      }
      if (live_participants(*exec).size() < 2) kill_execution(exec);
    }
  }

  if (fault.repair_after.value() > 0.0) {
    const FaultSpec copy = fault;
    simulator_.schedule_at(now + fault.repair_after,
                           [this, copy] { on_fault_repair(copy); });
  }
  pump_metrics();
}

void CollectiveRuntime::on_fault_repair(const FaultSpec& fault) {
  ++report_.faults.repairs;
  obs::inc(ins_.fault_repairs);
  const std::uint32_t hpt = std::max(1u, config_.electrical.hosts_per_tor);
  // Refcounted un-down: overlapping faults on one subject must not
  // resurrect it on the FIRST repair.
  const auto lower = [](std::uint8_t& count) {
    WRHT_CHECK(count > 0, "on_fault_repair: repair without a fault");
    --count;
  };
  switch (fault.domain) {
    case FaultDomain::kTransceiver:
      lower(optical_node_down_[fault.subject]);
      break;
    case FaultDomain::kNode:
      lower(optical_node_down_[fault.subject]);
      lower(host_down_[fault.subject]);
      break;
    case FaultDomain::kTor:
      for (std::uint32_t h = fault.subject * hpt;
           h < (fault.subject + 1) * hpt && h < config_.ring_size; ++h) {
        lower(host_down_[h]);
      }
      break;
    case FaultDomain::kWavelength:
      lower(wavelength_down_[fault.subject]);
      break;
  }
  if (trace_.enabled()) {
    trace_.record(simulator_.now(), sim::TraceKind::kFaultRepair,
                  fault.subject, static_cast<std::int64_t>(fault.domain),
                  fault_domain_name(fault.domain));
  }
  restore_repaired_units();
  // Restored capacity is free capacity: suspended work may resume and
  // queued work may admit at this very instant.
  try_admit();
  pump_metrics();
}

void CollectiveRuntime::quarantine_downed_units() {
  for (std::uint32_t w = 0;
       w < static_cast<std::uint32_t>(wavelength_down_.size()); ++w) {
    if (wavelength_down_[w] == 0 || wavelength_quarantined_[w]) continue;
    if (optical_->quarantine_unit(w)) wavelength_quarantined_[w] = true;
  }
  if (!electrical_) return;
  for (std::uint32_t h = 0;
       h < static_cast<std::uint32_t>(host_down_.size()); ++h) {
    if (host_down_[h] == 0 || host_quarantined_[h]) continue;
    if (electrical_->quarantine_unit(h)) host_quarantined_[h] = true;
  }
}

void CollectiveRuntime::restore_repaired_units() {
  for (std::uint32_t w = 0;
       w < static_cast<std::uint32_t>(wavelength_down_.size()); ++w) {
    if (!wavelength_quarantined_[w] || wavelength_down_[w] != 0) continue;
    optical_->restore_unit(w);
    wavelength_quarantined_[w] = false;
  }
  if (!electrical_) return;
  for (std::uint32_t h = 0;
       h < static_cast<std::uint32_t>(host_down_.size()); ++h) {
    if (!host_quarantined_[h] || host_down_[h] != 0) continue;
    electrical_->restore_unit(h);
    host_quarantined_[h] = false;
  }
}

std::vector<topo::NodeId> CollectiveRuntime::newly_dead(
    const Execution& exec) const {
  std::vector<topo::NodeId> dead;
  for (const topo::NodeId node : exec.participants) {
    if (optical_node_down_[node] == 0) continue;
    if (std::find(exec.evicted.begin(), exec.evicted.end(), node) !=
        exec.evicted.end()) {
      continue;
    }
    dead.push_back(node);
  }
  return dead;
}

std::vector<topo::NodeId> CollectiveRuntime::live_participants(
    const Execution& exec) const {
  std::vector<topo::NodeId> live;
  live.reserve(exec.participants.size());
  for (const topo::NodeId node : exec.participants) {
    if (optical_node_down_[node] != 0) continue;
    if (std::find(exec.evicted.begin(), exec.evicted.end(), node) !=
        exec.evicted.end()) {
      continue;
    }
    live.push_back(node);
  }
  return live;
}

void CollectiveRuntime::note_recovery(Execution& exec) {
  if (exec.fault_since.value() <= 0.0) return;
  report_.faults.total_recovery += simulator_.now() - exec.fault_since;
  ++report_.faults.recoveries;
  exec.fault_since = util::Seconds(0.0);
  obs::inc(ins_.fault_recoveries);
}

void CollectiveRuntime::kill_execution(
    const std::shared_ptr<Execution>& exec) {
  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kFailed;
    trace_job(sim::TraceKind::kJobKilled, id, record.band);
  }
  report_.faults.killed_jobs +=
      static_cast<std::uint32_t>(exec->jobs.size());
  obs::inc(ins_.jobs_killed, exec->jobs.size());
  report_.faults.wasted_step_time += exec->busy_time;
  // The breakdown counted these jobs at placement; a killed job never
  // completes, so the slice must forget it for optical.jobs +
  // electrical.jobs == completed to keep closing.
  breakdown(exec->substrate->kind()).jobs -=
      static_cast<std::uint32_t>(exec->jobs.size());
  if (exec->suspended) {
    suspended_.erase(std::find(suspended_.begin(), suspended_.end(), exec));
  } else {
    running_jobs_ -= static_cast<std::uint32_t>(exec->jobs.size());
    exec->substrate->release(*exec->plan, simulator_.now());
    quarantine_downed_units();
    running_execs_.erase(
        std::find(running_execs_.begin(), running_execs_.end(), exec));
  }
  exec->fault_since = util::Seconds(0.0);  // killed, not recovered
  try_admit();
  pump_metrics();
}

bool CollectiveRuntime::handle_fault_at_boundary(
    const std::shared_ptr<Execution>& exec) {
  return exec->substrate->kind() == SubstrateKind::kOptical
             ? handle_optical_fault(exec)
             : handle_electrical_fault(exec);
}

bool CollectiveRuntime::handle_optical_fault(
    const std::shared_ptr<Execution>& exec) {
  exec->fault_pending = false;
  const std::vector<topo::NodeId> dead = newly_dead(*exec);
  const WavelengthBand band = exec->plan->band();
  std::uint32_t first_degraded = band.width;  // band-relative index
  for (std::uint32_t i = 0; i < band.width; ++i) {
    if (wavelength_down_[band.base + i] != 0) {
      first_degraded = i;
      break;
    }
  }
  if (dead.empty() && first_degraded == band.width) {
    // Stale marker: the repair beat this boundary.  The execution never
    // actually stopped — close the recovery window and carry on.
    note_recovery(*exec);
    return false;
  }

  if (!dead.empty()) {
    if (exec->participants.size() - exec->evicted.size() - dead.size() < 2) {
      kill_execution(exec);
      return true;
    }
    if (first_degraded == band.width) {
      // Survivor rebuild in place: same band, remainder re-proven with the
      // dead nodes stripped from its delivery set.
      RenegotiationOutcome outcome = exec->substrate->renegotiate(
          exec->plan.get(),
          RenegotiationRequest::evict(exec->next_step, dead));
      if (outcome.accepted()) {
        exec->evicted.insert(exec->evicted.end(), dead.begin(), dead.end());
        ++report_.faults.evictions;
        adopt_plan(*exec, std::move(outcome.plan));
        note_recovery(*exec);
        return false;  // still running; the caller dispatches the next step
      }
    }
    // The remainder cannot absorb the eviction (a dead node still carries
    // live state), or the band itself is degraded: discard the prefix and
    // restart fresh among the survivors on freshly-allocated spectrum.
    report_.faults.wasted_step_time += exec->busy_time;
    exec->busy_time = util::Seconds(0.0);
    exec->quiet_time = util::Seconds(0.0);
    exec->participants = live_participants(*exec);
    exec->useful_cap = useful_wavelength_cap(exec->participants.size());
    exec->executed.clear();
    exec->evicted.clear();
    exec->next_step = 0;
    exec->substrate->release(*exec->plan, simulator_.now());
    quarantine_downed_units();
    const std::uint32_t desired =
        std::clamp(band.width, exec->min_width, exec->useful_cap);
    publish_optical_demand(exec.get());
    RenegotiationOutcome restart = exec->substrate->renegotiate(
        nullptr,
        RenegotiationRequest::restart(exec->participants,
                                      exec->batch_payload, desired,
                                      exec->min_width));
    if (restart.accepted()) {
      ++report_.faults.restarts;
      adopt_plan(*exec, std::move(restart.plan));
      note_recovery(*exec);
      // The band moved: record the new claim so band-disjointness audits
      // can follow the execution across the restart.
      for (const JobId id : exec->jobs) {
        trace_job(sim::TraceKind::kJobResize, id, exec->plan->band());
      }
      return false;
    }
    exec->fresh_restart = true;
    suspend_released(exec, /*fault=*/true);
    return true;
  }

  // Pure wavelength degradation on the held band: keep the healthy prefix
  // when the floor allows, surrender the band otherwise.
  if (first_degraded >= exec->min_width) {
    RenegotiationOutcome outcome = exec->substrate->renegotiate(
        exec->plan.get(),
        RenegotiationRequest::shrink(exec->next_step, first_degraded));
    if (outcome.accepted()) {
      adopt_plan(*exec, std::move(outcome.plan));
      for (const JobId id : exec->jobs) {
        ++records_[id].resizes;
        trace_job(sim::TraceKind::kJobResize, id, exec->plan->band());
      }
      ++report_.resizes;
      obs::inc(ins_.resizes);
      // The shrink just freed the degraded tail; take it out of service.
      quarantine_downed_units();
      note_recovery(*exec);
      return false;
    }
  }
  suspend_execution(exec, /*fault=*/true);
  return true;
}

bool CollectiveRuntime::handle_electrical_fault(
    const std::shared_ptr<Execution>& exec) {
  const bool migrate = exec->migrate_pending;
  exec->fault_pending = false;
  exec->migrate_pending = false;
  const std::vector<topo::NodeId> hosts = exec->plan->hosts();
  bool any_down = false;
  for (const topo::NodeId host : hosts) {
    if (host_down_[host] != 0) {
      any_down = true;
      break;
    }
  }
  if (!any_down) {
    note_recovery(*exec);
    return false;  // stale marker: the repair beat this boundary
  }

  if (migrate) {
    // A ToR loss took the whole host group down at once, but the optical
    // ring is untouched — try a cross-substrate restart FIRST, before any
    // electrical state is mutated, so a refusal degrades cleanly into the
    // ordinary fault-suspend below.  Only migratable work qualifies: no
    // job pinned to the electrical fabric, and every participant's ring
    // position optically alive (the restart re-runs the all-reduce from
    // the participants' initial gradients).
    bool migratable = true;
    for (const JobId id : exec->jobs) {
      if (records_[id].spec.pin == SubstratePin::kElectricalOnly) {
        migratable = false;
        break;
      }
    }
    for (const topo::NodeId node : exec->participants) {
      if (optical_node_down_[node] != 0) {
        migratable = false;
        break;
      }
    }
    if (migratable) {
      const std::uint32_t desired = std::clamp(
          config_.default_request, exec->min_width, exec->useful_cap);
      publish_optical_demand(exec.get());
      RenegotiationOutcome outcome = optical_->renegotiate(
          nullptr,
          RenegotiationRequest::restart(exec->participants,
                                        exec->batch_payload, desired,
                                        exec->min_width));
      if (outcome.accepted()) {
        report_.faults.wasted_step_time += exec->busy_time;
        exec->busy_time = util::Seconds(0.0);
        exec->quiet_time = util::Seconds(0.0);
        exec->substrate->release(*exec->plan, simulator_.now());
        quarantine_downed_units();
        // The jobs change fabric mid-flight; move their breakdown slice so
        // per-substrate job counts keep closing against completions.
        const auto moved = static_cast<std::uint32_t>(exec->jobs.size());
        report_.electrical.jobs -= moved;
        report_.optical.jobs += moved;
        --report_.electrical.executions;
        ++report_.optical.executions;
        exec->substrate = optical_.get();
        exec->executed.clear();
        exec->evicted.clear();
        exec->next_step = 0;
        adopt_plan(*exec, std::move(outcome.plan));
        ++report_.faults.migrations;
        note_recovery(*exec);
        for (const JobId id : exec->jobs) {
          records_[id].substrate = SubstrateKind::kOptical;
          trace_job(sim::TraceKind::kJobMigrate, id, exec->plan->band());
        }
        return false;  // still running; the caller dispatches step 0
      }
    }
  }

  // A node fault on a held host, or a migration that could not happen:
  // fault-suspend.  Hosts checkpoint at BSP boundaries, so a dead host
  // costs a remap at resume, not data — the resume simply picks a live
  // host set (the dead ones are quarantined the moment this release
  // frees them).
  suspend_execution(exec, /*fault=*/true);
  return true;
}

void CollectiveRuntime::run_step(const std::shared_ptr<Execution>& exec) {
  if (trace_.enabled()) {
    trace_.record(simulator_.now(), sim::TraceKind::kStepBegin,
                  exec->jobs.front(),
                  static_cast<std::int64_t>(exec->next_step));
  }
  const StepTiming timing = exec->substrate->time_step(
      *exec->plan, exec->next_step, simulator_.now());
  ++report_.total_steps;
  report_.total_retunes += timing.retunes;
  report_.spectrum_reservations += timing.reservations;
  ++breakdown(exec->substrate->kind()).steps;
  exec->step_started = simulator_.now();
  exec->quiet_time += timing.quiet;
  schedule_step_end(exec, timing.end);
  // Injecting this step's flows may have changed what every OTHER tenant on
  // a shared fabric gets; their completion events move with the contention.
  apply_retimings(*exec->substrate);
  pump_metrics();
}

void CollectiveRuntime::schedule_step_end(
    const std::shared_ptr<Execution>& exec, util::Seconds end) {
  exec->step_event =
      simulator_.schedule_at(end, [this, exec] { on_step_end(exec); });
}

void CollectiveRuntime::on_step_end(const std::shared_ptr<Execution>& exec) {
  // Actual wall-clock of the step that just finished — under shared-fabric
  // contention this is the (possibly re-scheduled) real duration, not the
  // quiet prediction, so busy_time / quiet_time is the contention slowdown.
  exec->busy_time += simulator_.now() - exec->step_started;
  report_.step_time_total += simulator_.now() - exec->step_started;
  if (trace_.enabled()) {
    trace_.record(simulator_.now(), sim::TraceKind::kStepEnd,
                  exec->jobs.front(),
                  static_cast<std::int64_t>(exec->next_step));
  }
  ++exec->next_step;
  if (exec->next_step >= exec->plan->num_steps()) {
    finish_execution(exec);
    return;
  }
  // The renegotiation point: every shared-medium cell this execution held
  // is released by now (transfer-end events precede the boundary), so its
  // grant can be surrendered, grown, or shrunk without a stale
  // reservation existing anywhere.
  if (renegotiate(exec)) return;  // surrendered; resume dispatches later
  run_step(exec);
}

void CollectiveRuntime::apply_retimings(ExecutionSubstrate& substrate) {
  if (!substrate.caps().retimes_steps) return;
  for (const StepRetiming& retiming : substrate.take_retimings()) {
    for (const std::shared_ptr<Execution>& exec : running_execs_) {
      if (exec->plan.get() != retiming.exec) continue;
      simulator_.cancel(exec->step_event);
      schedule_step_end(exec, retiming.end);
      ++report_.step_retimes;
      obs::inc(ins_.step_retimes);
      if (trace_.enabled()) {
        trace_.record(simulator_.now(), sim::TraceKind::kStepRetimed,
                      exec->jobs.front(),
                      static_cast<std::int64_t>(exec->next_step),
                      "end=" + util::to_string(retiming.end));
      }
      break;
    }
  }
}

void CollectiveRuntime::finish_execution(
    const std::shared_ptr<Execution>& exec) {
  // Contention slowdown of the whole execution: what its steps cost on the
  // (possibly shared) fabric vs. what they would have cost alone.  Jobs
  // fused into one execution shared every step, so they share the ratio.
  const double slowdown = exec->quiet_time.value() > 0.0
                              ? exec->busy_time.value() /
                                    exec->quiet_time.value()
                              : 0.0;
  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kDone;
    record.completed = simulator_.now();
    record.contention_slowdown = slowdown;
    obs::observe(ins_.turnaround, record.turnaround().value());
    // Same slowdown definition as obs::compute_slo: turnaround over service
    // span, 1.0 for an instantaneous service.
    const double service = (record.completed - record.admitted).value();
    obs::observe(ins_.slowdown,
                 service > 0.0 ? record.turnaround().value() / service : 1.0);
    if (record.predicted_completion.value() > 0.0) {
      // Score the routing decision now that the truth is in: error
      // relative to the span the router promised, both directions equally
      // damning.  Every audited job carries its error for visibility, but
      // the aggregate folds ONE entry per execution (fused peers share
      // prediction and completion, so they share the error too — counting
      // each would weight batches by their size).
      const double span = std::max(
          (record.predicted_completion - record.admitted).value(), 1e-12);
      record.routing_error =
          std::abs((record.completed - record.predicted_completion).value()) /
          span;
      if (id == exec->jobs.front()) {
        routing_error_sum_ += record.routing_error;
        report_.routing.worst_error =
            std::max(report_.routing.worst_error, record.routing_error);
        obs::observe(ins_.routing_error, record.routing_error);
      }
    }
    completion_order_.push_back(id);
    ++report_.completed;
    report_.total_turnaround += record.turnaround();
    trace_job(sim::TraceKind::kJobComplete, id, record.band);
  }
  SubstrateBreakdown& slice = breakdown(exec->substrate->kind());
  slice.makespan = std::max(slice.makespan, simulator_.now());
  slice.busy_time += exec->busy_time;
  slice.quiet_time += exec->quiet_time;
  last_completion_ = std::max(last_completion_, simulator_.now());
  running_jobs_ -= static_cast<std::uint32_t>(exec->jobs.size());
  obs::inc(ins_.jobs_completed,
           static_cast<std::uint64_t>(exec->jobs.size()));
  exec->substrate->release(*exec->plan, simulator_.now());
  // The finished execution may have been holding down units hostage (a
  // fault landed mid-grant); they only become quarantinable now.
  if (any_fault_ever_) quarantine_downed_units();
  running_execs_.erase(
      std::find(running_execs_.begin(), running_execs_.end(), exec));
  try_admit();
  pump_metrics();
}

RuntimeReport CollectiveRuntime::run() {
  WRHT_REQUIRE(!started_, "CollectiveRuntime: run() called twice");
  started_ = true;
  for (const JobRecord& record : records_) {
    if (record.state != JobState::kSubmitted) continue;  // rejected
    const JobId id = record.id;
    simulator_.schedule_at(record.spec.arrival, [this, id] { on_arrival(id); });
  }
  return drive();
}

RuntimeReport CollectiveRuntime::serve(JobSource& source) {
  WRHT_REQUIRE(!started_, "CollectiveRuntime: serve() after run()");
  started_ = true;
  // Jobs submitted before serve() still run (the CLI submits warm-up jobs
  // this way); the stream chains in alongside them.
  for (const JobRecord& record : records_) {
    if (record.state != JobState::kSubmitted) continue;  // rejected
    const JobId id = record.id;
    simulator_.schedule_at(record.spec.arrival, [this, id] { on_arrival(id); });
  }
  source_ = &source;
  pump_source(util::Seconds(0.0));
  RuntimeReport report = drive();
  source_ = nullptr;
  return report;
}

void CollectiveRuntime::pump_source(util::Seconds floor) {
  while (source_ != nullptr) {
    std::optional<JobSpec> spec = source_->next();
    if (!spec) {
      source_ = nullptr;
      return;
    }
    WRHT_REQUIRE(spec->arrival >= floor,
                 "CollectiveRuntime: serve() source yielded arrival "
                     << spec->arrival.value() << "s after " << floor.value()
                     << "s — arrivals must be nondecreasing");
    const util::Seconds arrival = spec->arrival;
    const JobId id = ingest(std::move(*spec));
    if (records_[id].state == JobState::kRejected) continue;  // keep pulling
    // Chain: the arrival event itself pulls the NEXT spec, so exactly one
    // not-yet-arrived job exists at any instant — the event queue and the
    // source's buffering stay O(in-flight) across a million-job trace.
    simulator_.schedule_at(arrival, [this, id, arrival] {
      on_arrival(id);
      pump_source(arrival);
    });
    return;
  }
}

RuntimeReport CollectiveRuntime::drive() {
  if (config_.metrics) {
    // Run-start bookend: every counter track opens at t=0 with the idle
    // state, so the Chrome trace's series span the whole run.
    pump_metrics();
    config_.metrics->sampler().sample_now(simulator_.now());
  }
  // The fault stream chains in exactly like the job stream: one
  // not-yet-injected fault in the event queue at any instant.
  fault_source_ = config_.faults;
  pump_faults();
  simulator_.run();

  WRHT_CHECK(queue_.empty() && running_jobs_ == 0 && suspended_.empty(),
             "CollectiveRuntime: clock drained with "
                 << queue_.size() << " queued / " << running_jobs_
                 << " running / " << suspended_.size() << " suspended jobs");
  // The makespan is the last COMPLETION, not the drained clock: a
  // fuse-window hold-release timer for a job that was fused early can
  // outlive the final completion as a no-op event, and phantom idle time
  // must not be billed to the workload.
  report_.makespan = last_completion_;

  // End-of-run audits: the shared electrical fabric replays its whole flow
  // horizon into a fresh network and must reproduce every incremental step
  // time (aborts on disagreement); the per-link peaks tell the congestion
  // story the slowdown numbers summarize.
  report_.replay_checked_steps += optical_->self_check();
  if (electrical_) {
    report_.replay_checked_steps += electrical_->self_check();
    report_.electrical_link_peak = electrical_->link_peak_utilization();
  }
  if (report_.routing.decisions > 0) {
    // Every audited execution has completed by now — the drained-clock
    // check above aborts on any surviving queued/suspended job — so the
    // error sum covers exactly `decisions` entries.
    report_.routing.mean_error =
        routing_error_sum_ / static_cast<double>(report_.routing.decisions);
  }
  if (config_.metrics) {
    // Run-end bookend: a final forced snapshot so the series' last point
    // sits at the drained clock, whatever the cadence.
    pump_metrics();
    config_.metrics->sampler().sample_now(simulator_.now());
  }
  // Exact nearest-rank SLO percentiles from the job records — computed
  // whether or not a registry is installed, so the report's quantiles are
  // bit-for-bit reproducible from records() by tests.
  report_.slo = obs::compute_slo(records_);
  return report_;
}

}  // namespace wrht::runtime
