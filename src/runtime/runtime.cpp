#include "runtime/runtime.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "coll/oracle.hpp"
#include "wrht/executor.hpp"

namespace wrht::runtime {

namespace {

/// Most wavelengths a job over `num_participants` nodes can exploit: the
/// single-group tree step uses floor(P/2), and the all-to-all merge tops out
/// at the Liang & Shen budget ceil(P^2/8).  Granting more than this only
/// starves other tenants.
std::uint32_t useful_wavelength_cap(std::size_t num_participants) {
  const auto p = static_cast<std::uint32_t>(num_participants);
  return std::max(1u, core::all_to_all_wavelength_bound(p));
}

}  // namespace

std::string RuntimeReport::to_string() const {
  std::string out;
  out += "jobs            : " + std::to_string(submitted) + " submitted, " +
         std::to_string(completed) + " completed, " + std::to_string(rejected) +
         " rejected\n";
  out += "executions      : " + std::to_string(executions) + " (" +
         std::to_string(batches) + " fused batches)\n";
  out += "steps / retunes : " + std::to_string(total_steps) + " / " +
         std::to_string(total_retunes) + "\n";
  out += "renegotiations  : " + std::to_string(preemptions) + " preempted, " +
         std::to_string(resumes) + " resumed, " + std::to_string(resizes) +
         " resized\n";
  out += "spectrum        : " + std::to_string(spectrum_reservations) +
         " reservations, 0 wavelength-conflict aborts\n";
  out += "peak concurrency: " + std::to_string(peak_concurrent_jobs) +
         " jobs\n";
  out += "makespan        : " + util::to_string(makespan) + "\n";
  out += "mean turnaround : " + util::to_string(mean_turnaround()) + "\n";
  return out;
}

CollectiveRuntime::CollectiveRuntime(RuntimeConfig config)
    : config_(config),
      ring_(config.ring_size),
      spectrum_(ring_, config.optical.wdm.num_wavelengths),
      transceivers_(config.ring_size),
      arbiter_(config.optical.wdm.num_wavelengths) {}

JobId CollectiveRuntime::submit(JobSpec spec) {
  if (started_) {
    std::fprintf(stderr, "CollectiveRuntime: submit after run()\n");
    std::abort();
  }
  const auto id = static_cast<JobId>(records_.size());
  JobRecord record;
  record.id = id;
  record.spec = std::move(spec);

  const JobSpec& s = record.spec;
  const bool participants_ok =
      s.participants.size() >= 2 &&
      std::is_sorted(s.participants.begin(), s.participants.end()) &&
      std::adjacent_find(s.participants.begin(), s.participants.end()) ==
          s.participants.end() &&
      s.participants.back() < config_.ring_size;
  const std::uint32_t total = arbiter_.total();

  // An inconsistent spec is rejected with a reason, never silently rewritten:
  // a request below the job's own minimum, or a minimum above what the job
  // could ever use, is a tenant bug the runtime must surface, not paper over
  // by quietly inflating the grant.
  std::string reject;
  if (!participants_ok) {
    reject = "participants must be >= 2 ascending unique on-ring positions";
  } else if (s.min_wavelengths == 0) {
    reject = "min_wavelengths must be >= 1";
  } else if (s.min_wavelengths > total) {
    reject = "min_wavelengths exceeds the spectrum";
  } else if (s.arrival < util::Seconds(0.0)) {
    reject = "arrival time is negative";
  } else if (s.requested_wavelengths != 0 &&
             s.requested_wavelengths < s.min_wavelengths) {
    reject = "requested_wavelengths below min_wavelengths";
  } else if (useful_wavelength_cap(s.participants.size()) <
             s.min_wavelengths) {
    reject = "min_wavelengths exceeds the job's useful wavelength cap";
  }

  if (!reject.empty()) {
    record.state = JobState::kRejected;
    record.reject_reason = std::move(reject);
    ++report_.rejected;
  } else {
    std::uint32_t request = s.requested_wavelengths != 0
                                ? s.requested_wavelengths
                                : config_.default_request;
    request = std::min(request, useful_wavelength_cap(s.participants.size()));
    // With the consistency checks above, the lower clamp binds only when the
    // RUNTIME default (requested_wavelengths == 0) sits below the tenant's
    // stated minimum — raising our own default is not rewriting their
    // request.
    record.effective_request =
        std::clamp(request, s.min_wavelengths, total);
  }
  ++report_.submitted;
  records_.push_back(std::move(record));
  return id;
}

const JobRecord& CollectiveRuntime::record(JobId id) const {
  if (id >= records_.size()) {
    std::fprintf(stderr, "CollectiveRuntime: unknown job %u\n", id);
    std::abort();
  }
  return records_[id];
}

void CollectiveRuntime::trace_job(sim::TraceKind kind, JobId id,
                                  const WavelengthBand& band) {
  // Band identity is its BASE for every job event (a band is named by where
  // it sits in the spectrum); the width travels in the detail so preempt /
  // resume / resize sequences in one trace are interpretable side by side.
  if (!trace_.enabled()) return;
  trace_.record(simulator_.now(), kind, id,
                static_cast<std::int64_t>(band.base),
                "width=" + std::to_string(band.width));
}

void CollectiveRuntime::on_arrival(JobId id) {
  JobRecord& record = records_[id];
  record.state = JobState::kQueued;
  queue_.push(QueueEntry{id, next_seq_++, record.spec.min_wavelengths,
                         record.effective_request, record.spec.weight,
                         record.spec.payload, record.spec.participants,
                         record.spec.priority});
  try_admit();
}

std::int32_t CollectiveRuntime::top_suspended_priority() const {
  std::int32_t top = std::numeric_limits<std::int32_t>::min();
  for (const auto& exec : suspended_) top = std::max(top, exec->priority);
  return top;
}

void CollectiveRuntime::try_admit() {
  while (true) {
    // Under kPriorityPreempt a suspended execution that outranks every
    // queued job has first claim on freed spectrum, and while it cannot
    // resume, lower-priority arrivals must not be admitted into the band it
    // waits for — otherwise a steady trickle of small low-priority jobs
    // starves a preempted high-priority victim forever (admission-side
    // priority inversion).
    if (config_.policy == FairnessPolicy::kPriorityPreempt &&
        !suspended_.empty()) {
      const std::optional<std::size_t> head = priority_head(queue_);
      const std::int32_t queued_top =
          head ? queue_.at(*head).priority
               : std::numeric_limits<std::int32_t>::min();
      if (top_suspended_priority() > queued_top) {
        if (try_resume_one()) continue;
        break;  // resume blocked: hold the line, ask for preemptions below
      }
    }
    const std::optional<AdmissionDecision> decision =
        next_admission(queue_, config_.policy, arbiter_.largest_free_block(),
                       arbiter_.free_total());
    if (decision) {
      admit(*decision);
      continue;
    }
    if (try_resume_one()) continue;
    break;
  }
  if (config_.policy == FairnessPolicy::kPriorityPreempt) {
    request_preemptions();
  }
}

void CollectiveRuntime::request_preemptions() {
  // The most urgent waiter: the queued admission head (the same selection
  // the policy itself uses, so preemptions always benefit the job admission
  // will actually pick) or a suspended execution awaiting resume, whichever
  // outranks the other.
  std::int32_t target_priority = std::numeric_limits<std::int32_t>::min();
  std::uint32_t target_min = 0;
  if (const std::optional<std::size_t> head = priority_head(queue_)) {
    target_priority = queue_.at(*head).priority;
    target_min = queue_.at(*head).min_wavelengths;
  }
  for (const auto& exec : suspended_) {
    if (exec->priority > target_priority) {
      target_priority = exec->priority;
      target_min = exec->min_width;
    }
  }
  if (target_min == 0) return;

  // Spectrum usable today plus bands already being surrendered at the next
  // boundary.  Admission needs a CONTIGUOUS run, so the baseline is the
  // largest free block, not the free total — a fragmented pool that sums to
  // the minimum admits nothing.  Adding victim widths is still approximate
  // (their bands may not abut the free runs); both error directions
  // self-correct: under-preemption retries here on the next try_admit, and
  // a victim whose suspension became unnecessary is reprieved by the
  // boundary re-check in renegotiate().
  std::uint32_t pending = arbiter_.largest_free_block();
  for (const auto& exec : running_execs_) {
    if (exec->preempt_requested) pending += exec->band.width;
  }
  if (pending >= target_min) return;

  // Victims: strictly lower priority only, cheapest first (lowest priority,
  // then widest band so one victim usually suffices, then oldest lead job
  // for determinism).  The band is not taken here — the victim surrenders
  // it at its next step boundary, which is what makes the handoff safe.
  std::vector<std::shared_ptr<Execution>> victims;
  for (const auto& exec : running_execs_) {
    if (!exec->preempt_requested && exec->priority < target_priority) {
      victims.push_back(exec);
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) {
              if (a->priority != b->priority) return a->priority < b->priority;
              if (a->band.width != b->band.width) {
                return a->band.width > b->band.width;
              }
              return a->jobs.front() < b->jobs.front();
            });
  for (const auto& victim : victims) {
    if (pending >= target_min) break;
    victim->preempt_requested = true;
    pending += victim->band.width;
  }
}

std::optional<core::WrhtBuild> CollectiveRuntime::rebuild_remainder(
    const Execution& exec, std::uint32_t width) const {
  core::WrhtParams params;
  params.num_wavelengths = width;
  params.fit_policy = config_.fit_policy;
  return core::rebuild_wrht_remainder(exec.build, exec.next_step,
                                      exec.participants, config_.ring_size,
                                      params);
}

void CollectiveRuntime::verify_composite_or_die(const Execution& exec) {
  if (!config_.validate_with_oracle) {
    // Nothing to prove: records keep the benefit of the doubt, matching the
    // pre-renegotiation behavior of a disabled oracle.
    for (const JobId id : exec.jobs) records_[id].oracle_ok = true;
    return;
  }
  // Prove the steps ALREADY RUN plus the (possibly rebuilt) steps still
  // ahead compute the all-reduce — a renegotiated schedule must clear the
  // same bar as a fresh one before touching the ring.
  coll::Schedule composite("wrht-composite", config_.ring_size, 1);
  for (const coll::Step& step : exec.executed) {
    composite.add_step();
    for (const coll::Transfer& t : step.transfers) {
      composite.add_transfer(t);
    }
  }
  const coll::Schedule& ahead = exec.build.annotated.schedule;
  for (const coll::Step& step : ahead.steps()) {
    composite.add_step();
    for (const coll::Transfer& t : step.transfers) {
      composite.add_transfer(t);
    }
  }
  const coll::OracleResult verdict = coll::Oracle::verify_allreduce_among(
      composite, exec.participants, config_.oracle_payload_len);
  if (!verdict.ok) {
    // A schedule that fails the oracle must never touch the ring; like a
    // wavelength conflict, this is a library bug, not a tenant error.
    ++report_.oracle_failures;
    std::fprintf(stderr,
                 "CollectiveRuntime: schedule failed the all-reduce oracle "
                 "(job %u): %s\n",
                 exec.jobs.front(), verdict.message.c_str());
    std::abort();
  }
  for (const JobId id : exec.jobs) records_[id].oracle_ok = true;
}

void CollectiveRuntime::adopt_rebuilt(Execution& exec, core::WrhtBuild next,
                                      const WavelengthBand& band) {
  const std::vector<coll::Step>& old_steps =
      exec.build.annotated.schedule.steps();
  for (std::size_t s = 0; s < exec.next_step; ++s) {
    exec.executed.push_back(old_steps[s]);
  }
  exec.build = std::move(next);
  exec.band = band;
  exec.next_step = 0;
  exec.steps.clear();
  const std::size_t ahead = exec.build.annotated.schedule.num_steps();
  exec.steps.reserve(ahead);
  for (std::size_t s = 0; s < ahead; ++s) {
    exec.steps.push_back(
        core::timed_step(exec.build.annotated, s, exec.batch_payload,
                         band.base));
  }
  verify_composite_or_die(exec);
  for (const JobId id : exec.jobs) {
    JobRecord& record = records_[id];
    record.band = band;
    record.steps =
        static_cast<std::uint32_t>(exec.executed.size() + ahead);
  }
}

void CollectiveRuntime::admit(const AdmissionDecision& decision) {
  const std::vector<std::size_t> members = fusable_peers(
      queue_, decision.queue_index, decision.grant, config_.batcher);

  const std::optional<WavelengthBand> band =
      arbiter_.allocate(decision.grant);
  if (!band) {
    // next_admission promised a free run of this width; not finding one is
    // an arbiter/admission disagreement.
    std::fprintf(stderr, "CollectiveRuntime: arbiter refused a %u-band\n",
                 decision.grant);
    std::abort();
  }

  auto exec = std::make_shared<Execution>();
  exec->band = *band;
  // Pop members back-to-front so earlier indices stay valid.
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    QueueEntry entry = queue_.take(*it);
    if (exec->participants.empty()) {
      exec->participants = std::move(entry.participants);
    }
    exec->batch_payload += entry.payload;
    exec->priority = std::max(exec->priority, entry.priority);
    exec->min_width = std::max(exec->min_width, entry.min_wavelengths);
    exec->jobs.push_back(entry.id);
  }
  std::reverse(exec->jobs.begin(), exec->jobs.end());  // oldest first
  exec->useful_cap = useful_wavelength_cap(exec->participants.size());

  core::WrhtParams params;
  params.num_wavelengths = band->width;
  params.fit_policy = config_.fit_policy;
  exec->build =
      core::build_wrht_among(exec->participants, config_.ring_size, params);
  if (exec->build.annotated.wavelengths_required > band->width) {
    std::fprintf(stderr,
                 "CollectiveRuntime: schedule overflowed its band (%u > %u)\n",
                 exec->build.annotated.wavelengths_required, band->width);
    std::abort();
  }
  verify_composite_or_die(*exec);

  const std::size_t num_steps = exec->build.annotated.schedule.num_steps();
  exec->steps.reserve(num_steps);
  for (std::size_t s = 0; s < num_steps; ++s) {
    exec->steps.push_back(core::timed_step(exec->build.annotated, s,
                                           exec->batch_payload, band->base));
  }

  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kRunning;
    record.admitted = simulator_.now();
    record.band = *band;
    record.batch_size = static_cast<std::uint32_t>(exec->jobs.size());
    record.steps = static_cast<std::uint32_t>(num_steps);
    trace_job(sim::TraceKind::kJobAdmit, id, *band);
  }
  running_jobs_ += static_cast<std::uint32_t>(exec->jobs.size());
  report_.peak_concurrent_jobs =
      std::max(report_.peak_concurrent_jobs, running_jobs_);
  ++report_.executions;
  if (exec->jobs.size() > 1) ++report_.batches;
  running_execs_.push_back(exec);

  run_step(exec);
}

bool CollectiveRuntime::renegotiate(const std::shared_ptr<Execution>& exec) {
  if (exec->preempt_requested) {
    exec->preempt_requested = false;
    // Re-check at the boundary: the waiter that asked for this band — a
    // queued arrival or a suspended execution trying to resume — may have
    // been satisfied meanwhile by a completion elsewhere.
    bool still_needed = top_suspended_priority() > exec->priority;
    for (std::size_t i = 0; i < queue_.size() && !still_needed; ++i) {
      still_needed = queue_.at(i).priority > exec->priority;
    }
    if (still_needed) {
      // suspend_execution re-runs admission, which may legally resume THIS
      // execution at the same instant on a different band (run_step already
      // dispatched by the resume) — so the verdict here is "surrendered",
      // unconditionally, not the current suspended flag.
      suspend_execution(exec);
      return true;
    }
  }
  if (!config_.elastic_resize) return false;
  // Suspended executions are waiting on spectrum too: growing past them
  // would hand a runner the very band a preempted (possibly more urgent)
  // job needs to resume — priority inversion by resize.
  if (queue_.empty() && suspended_.empty()) {
    try_grow(exec);
  } else {
    try_shrink(exec);
  }
  return false;
}

void CollectiveRuntime::suspend_execution(
    const std::shared_ptr<Execution>& exec) {
  exec->suspended = true;
  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kPreempted;
    ++record.preemptions;
    trace_job(sim::TraceKind::kJobPreempt, id, exec->band);
  }
  running_jobs_ -= static_cast<std::uint32_t>(exec->jobs.size());
  ++report_.preemptions;
  arbiter_.release(exec->band);
  running_execs_.erase(
      std::find(running_execs_.begin(), running_execs_.end(), exec));
  suspended_.push_back(exec);
  // The surrendered band is free NOW, at the boundary — the waiting
  // high-priority job starts without waiting for this execution to finish.
  try_admit();
}

bool CollectiveRuntime::try_resume_one() {
  if (suspended_.empty()) return false;
  const std::optional<std::size_t> head = priority_head(queue_);
  const std::int32_t top_queued =
      head ? queue_.at(*head).priority
           : std::numeric_limits<std::int32_t>::min();
  // Highest-priority suspension first, FIFO among equals.
  std::vector<std::size_t> order(suspended_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return suspended_[a]->priority > suspended_[b]->priority;
                   });
  for (const std::size_t idx : order) {
    const std::shared_ptr<Execution> exec = suspended_[idx];
    // Never hand spectrum back to a victim while the queue still holds a
    // strictly more urgent job — that is the band being fought over.
    if (config_.policy == FairnessPolicy::kPriorityPreempt &&
        top_queued > exec->priority) {
      continue;
    }
    const std::uint32_t budget = arbiter_.largest_free_block();
    if (budget < exec->min_width) continue;
    const std::uint32_t desired =
        std::clamp(exec->band.width, exec->min_width, exec->useful_cap);
    std::uint32_t grant = std::min(desired, budget);
    std::optional<core::WrhtBuild> rebuilt = rebuild_remainder(*exec, grant);
    if (!rebuilt && budget > grant) {
      // The remainder's inherited mirrors can need more than the job's
      // admission minimum; retry with everything contiguous on offer.
      grant = budget;
      rebuilt = rebuild_remainder(*exec, grant);
    }
    if (!rebuilt) continue;

    const std::optional<WavelengthBand> band = arbiter_.allocate(grant);
    if (!band) {
      std::fprintf(stderr,
                   "CollectiveRuntime: arbiter refused a %u-band on resume\n",
                   grant);
      std::abort();
    }
    suspended_.erase(suspended_.begin() +
                     static_cast<std::ptrdiff_t>(idx));
    exec->suspended = false;
    adopt_rebuilt(*exec, std::move(*rebuilt), *band);
    for (const JobId id : exec->jobs) {
      records_[id].state = JobState::kRunning;
      trace_job(sim::TraceKind::kJobResume, id, *band);
    }
    running_jobs_ += static_cast<std::uint32_t>(exec->jobs.size());
    report_.peak_concurrent_jobs =
        std::max(report_.peak_concurrent_jobs, running_jobs_);
    ++report_.resumes;
    running_execs_.push_back(exec);
    run_step(exec);
    return true;
  }
  return false;
}

void CollectiveRuntime::try_grow(const std::shared_ptr<Execution>& exec) {
  if (exec->band.width >= exec->useful_cap) return;
  const WavelengthBand old = exec->band;
  const WavelengthBand grown = arbiter_.grow(old, exec->useful_cap);
  if (grown == old) return;
  const std::size_t remaining = exec->steps.size() - exec->next_step;
  std::optional<core::WrhtBuild> rebuilt =
      rebuild_remainder(*exec, grown.width);
  // A wider band only pays off by collapsing remaining tree levels (each
  // transfer still rides one wavelength, so same-depth schedules run at the
  // same speed); otherwise give the spectrum straight back.
  if (!rebuilt || rebuilt->annotated.schedule.num_steps() >= remaining) {
    arbiter_.shrink_to(grown, old);
    return;
  }
  adopt_rebuilt(*exec, std::move(*rebuilt), grown);
  for (const JobId id : exec->jobs) {
    ++records_[id].resizes;
    trace_job(sim::TraceKind::kJobResize, id, grown);
  }
  ++report_.resizes;
}

void CollectiveRuntime::try_shrink(const std::shared_ptr<Execution>& exec) {
  if (exec->band.width <= exec->min_width) return;
  const WavelengthBand old = exec->band;

  // A cut "helps" when the surrendered range would actually unblock
  // someone: the job the ACTIVE POLICY would admit next (under FIFO /
  // priority a fitting tail entry behind a blocked head admits nothing), or
  // a suspended execution waiting to resume.  Smaller keeps free more, so
  // helps is monotone — the GENTLEST helping cut is the right target:
  // surrendering more than the waiter needs just costs the running job
  // extra levels for nothing.
  const auto helps = [this, &old](std::uint32_t target) {
    const WavelengthBand freed{old.base + target, old.width - target};
    const std::uint32_t would = arbiter_.largest_free_block_assuming(freed);
    if (next_admission(queue_, config_.policy, would,
                       arbiter_.free_total() + freed.width)) {
      return true;
    }
    for (const auto& suspended : suspended_) {
      if (suspended->min_width <= would) return true;
    }
    return false;
  };
  std::uint32_t target = old.width - 1;
  while (target > exec->min_width && !helps(target)) --target;
  if (!helps(target)) return;

  // Deeper cuts only make the remainder rebuild harder (the owed mirrors
  // need their level widths), so if the gentlest helping cut cannot
  // rebuild, no helping cut can.
  std::optional<core::WrhtBuild> rebuilt = rebuild_remainder(*exec, target);
  if (!rebuilt) return;
  const WavelengthBand keep{old.base, target};
  arbiter_.shrink_to(old, keep);
  adopt_rebuilt(*exec, std::move(*rebuilt), keep);
  for (const JobId id : exec->jobs) {
    ++records_[id].resizes;
    trace_job(sim::TraceKind::kJobResize, id, keep);
  }
  ++report_.resizes;
  try_admit();
}

void CollectiveRuntime::run_step(const std::shared_ptr<Execution>& exec) {
  const util::Seconds step_start = simulator_.now();
  const std::vector<optical::TimedTransfer>& transfers =
      exec->steps[exec->next_step];
  const optical::OpticalParams& p = config_.optical;

  // Claim the step's spectrum cells on the SHARED map.  Bands are disjoint,
  // so a failed claim means the arbitration above is broken — same fatal
  // semantics as the single-job DES, but detected here with job context.
  for (const optical::TimedTransfer& t : transfers) {
    for (const optical::WavelengthId lambda : t.lambdas) {
      if (!spectrum_.try_reserve(t.arc, lambda)) {
        std::fprintf(stderr,
                     "CollectiveRuntime: wavelength conflict on lambda %u "
                     "(job %u) — arbitration bug\n",
                     lambda, exec->jobs.front());
        std::abort();
      }
      ++report_.spectrum_reservations;
    }
  }

  util::Seconds step_end = step_start;
  for (const optical::TimedTransfer& t : transfers) {
    const optical::WavelengthId primary = t.lambdas.front();
    bool retuned = transceivers_.retune_tx(t.src, t.arc.direction, primary);
    retuned |= transceivers_.retune_rx(t.dst, t.arc.direction, primary);
    if (p.retune_every_step) retuned = true;
    if (retuned) ++report_.total_retunes;

    const util::Seconds finish =
        step_start + optical::transfer_cost(p, t, retuned);
    step_end = std::max(step_end, finish);
    simulator_.schedule_at(finish, [this, arc = t.arc, lambdas = t.lambdas] {
      for (const optical::WavelengthId lambda : lambdas) {
        spectrum_.release(arc, lambda);
      }
    });
  }
  ++report_.total_steps;

  step_end += p.sync_time;
  simulator_.schedule_at(step_end, [this, exec] {
    ++exec->next_step;
    if (exec->next_step >= exec->steps.size()) {
      finish_execution(exec);
      return;
    }
    // The renegotiation point: every cell this execution held is released
    // by now (transfer-end events precede the boundary), so its band can be
    // surrendered, grown, or shrunk without a stale reservation existing
    // anywhere.
    if (renegotiate(exec)) return;  // surrendered; resume dispatches later
    run_step(exec);
  });
}

void CollectiveRuntime::finish_execution(
    const std::shared_ptr<Execution>& exec) {
  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kDone;
    record.completed = simulator_.now();
    completion_order_.push_back(id);
    ++report_.completed;
    report_.total_turnaround += record.turnaround();
    trace_job(sim::TraceKind::kJobComplete, id, record.band);
  }
  running_jobs_ -= static_cast<std::uint32_t>(exec->jobs.size());
  arbiter_.release(exec->band);
  running_execs_.erase(
      std::find(running_execs_.begin(), running_execs_.end(), exec));
  try_admit();
}

RuntimeReport CollectiveRuntime::run() {
  if (started_) {
    std::fprintf(stderr, "CollectiveRuntime: run() called twice\n");
    std::abort();
  }
  started_ = true;
  for (const JobRecord& record : records_) {
    if (record.state != JobState::kSubmitted) continue;  // rejected
    const JobId id = record.id;
    simulator_.schedule_at(record.spec.arrival, [this, id] { on_arrival(id); });
  }
  simulator_.run();

  if (!queue_.empty() || running_jobs_ != 0 || !suspended_.empty()) {
    std::fprintf(stderr,
                 "CollectiveRuntime: clock drained with %zu queued / %u "
                 "running / %zu suspended jobs\n",
                 queue_.size(), running_jobs_, suspended_.size());
    std::abort();
  }
  report_.makespan = simulator_.now();
  return report_;
}

}  // namespace wrht::runtime
