#include "runtime/runtime.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "coll/oracle.hpp"
#include "wrht/executor.hpp"

namespace wrht::runtime {

namespace {

/// Most wavelengths a job over `num_participants` nodes can exploit: the
/// single-group tree step uses floor(P/2), and the all-to-all merge tops out
/// at the Liang & Shen budget ceil(P^2/8).  Granting more than this only
/// starves other tenants.
std::uint32_t useful_wavelength_cap(std::size_t num_participants) {
  const auto p = static_cast<std::uint32_t>(num_participants);
  return std::max(1u, core::all_to_all_wavelength_bound(p));
}

}  // namespace

std::string RuntimeReport::to_string() const {
  std::string out;
  out += "jobs            : " + std::to_string(submitted) + " submitted, " +
         std::to_string(completed) + " completed, " + std::to_string(rejected) +
         " rejected\n";
  out += "executions      : " + std::to_string(executions) + " (" +
         std::to_string(batches) + " fused batches)\n";
  out += "steps / retunes : " + std::to_string(total_steps) + " / " +
         std::to_string(total_retunes) + "\n";
  out += "spectrum        : " + std::to_string(spectrum_reservations) +
         " reservations, 0 wavelength-conflict aborts\n";
  out += "peak concurrency: " + std::to_string(peak_concurrent_jobs) +
         " jobs\n";
  out += "makespan        : " + util::to_string(makespan) + "\n";
  out += "mean turnaround : " + util::to_string(mean_turnaround()) + "\n";
  return out;
}

CollectiveRuntime::CollectiveRuntime(RuntimeConfig config)
    : config_(config),
      ring_(config.ring_size),
      spectrum_(ring_, config.optical.wdm.num_wavelengths),
      transceivers_(config.ring_size),
      arbiter_(config.optical.wdm.num_wavelengths) {}

JobId CollectiveRuntime::submit(JobSpec spec) {
  if (started_) {
    std::fprintf(stderr, "CollectiveRuntime: submit after run()\n");
    std::abort();
  }
  const auto id = static_cast<JobId>(records_.size());
  JobRecord record;
  record.id = id;
  record.spec = std::move(spec);

  const JobSpec& s = record.spec;
  const bool participants_ok =
      s.participants.size() >= 2 &&
      std::is_sorted(s.participants.begin(), s.participants.end()) &&
      std::adjacent_find(s.participants.begin(), s.participants.end()) ==
          s.participants.end() &&
      s.participants.back() < config_.ring_size;
  const std::uint32_t total = arbiter_.total();
  if (!participants_ok || s.min_wavelengths == 0 ||
      s.min_wavelengths > total || s.arrival < util::Seconds(0.0)) {
    record.state = JobState::kRejected;
    ++report_.rejected;
  } else {
    std::uint32_t request = s.requested_wavelengths != 0
                                ? s.requested_wavelengths
                                : config_.default_request;
    request = std::min(request, useful_wavelength_cap(s.participants.size()));
    record.effective_request =
        std::clamp(request, s.min_wavelengths, total);
  }
  ++report_.submitted;
  records_.push_back(std::move(record));
  return id;
}

const JobRecord& CollectiveRuntime::record(JobId id) const {
  if (id >= records_.size()) {
    std::fprintf(stderr, "CollectiveRuntime: unknown job %u\n", id);
    std::abort();
  }
  return records_[id];
}

void CollectiveRuntime::on_arrival(JobId id) {
  JobRecord& record = records_[id];
  record.state = JobState::kQueued;
  queue_.push(QueueEntry{id, next_seq_++, record.spec.min_wavelengths,
                         record.effective_request, record.spec.weight,
                         record.spec.payload, record.spec.participants});
  try_admit();
}

void CollectiveRuntime::try_admit() {
  while (true) {
    const std::optional<AdmissionDecision> decision =
        next_admission(queue_, config_.policy, arbiter_.largest_free_block(),
                       arbiter_.free_total());
    if (!decision) return;
    admit(*decision);
  }
}

void CollectiveRuntime::admit(const AdmissionDecision& decision) {
  const std::vector<std::size_t> members = fusable_peers(
      queue_, decision.queue_index, decision.grant, config_.batcher);

  const std::optional<WavelengthBand> band =
      arbiter_.allocate(decision.grant);
  if (!band) {
    // next_admission promised a free run of this width; not finding one is
    // an arbiter/admission disagreement.
    std::fprintf(stderr, "CollectiveRuntime: arbiter refused a %u-band\n",
                 decision.grant);
    std::abort();
  }

  auto exec = std::make_shared<Execution>();
  exec->band = *band;
  util::Bytes batch_payload;
  std::vector<topo::NodeId> participants;
  // Pop members back-to-front so earlier indices stay valid.
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    QueueEntry entry = queue_.take(*it);
    if (participants.empty()) participants = std::move(entry.participants);
    batch_payload += entry.payload;
    exec->jobs.push_back(entry.id);
  }
  std::reverse(exec->jobs.begin(), exec->jobs.end());  // oldest first

  core::WrhtParams params;
  params.num_wavelengths = band->width;
  params.fit_policy = config_.fit_policy;
  const core::WrhtBuild build =
      core::build_wrht_among(participants, config_.ring_size, params);
  if (build.annotated.wavelengths_required > band->width) {
    std::fprintf(stderr,
                 "CollectiveRuntime: schedule overflowed its band (%u > %u)\n",
                 build.annotated.wavelengths_required, band->width);
    std::abort();
  }

  bool oracle_ok = true;
  if (config_.validate_with_oracle) {
    const coll::OracleResult verdict = coll::Oracle::verify_allreduce_among(
        build.annotated.schedule, participants, config_.oracle_payload_len);
    oracle_ok = verdict.ok;
    if (!verdict.ok) {
      // A schedule that fails the oracle must never touch the ring; like a
      // wavelength conflict, this is a library bug, not a tenant error.
      ++report_.oracle_failures;
      std::fprintf(stderr,
                   "CollectiveRuntime: schedule failed the all-reduce oracle "
                   "(job %u): %s\n",
                   exec->jobs.front(), verdict.message.c_str());
      std::abort();
    }
  }

  exec->steps.reserve(build.annotated.schedule.num_steps());
  for (std::size_t s = 0; s < build.annotated.schedule.num_steps(); ++s) {
    exec->steps.push_back(
        core::timed_step(build.annotated, s, batch_payload, band->base));
  }

  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kRunning;
    record.admitted = simulator_.now();
    record.band = *band;
    record.batch_size = static_cast<std::uint32_t>(exec->jobs.size());
    record.steps = static_cast<std::uint32_t>(exec->steps.size());
    record.oracle_ok = oracle_ok;
    trace_.record(simulator_.now(), sim::TraceKind::kJobAdmit, id,
                  static_cast<std::int64_t>(band->width));
  }
  running_jobs_ += static_cast<std::uint32_t>(exec->jobs.size());
  report_.peak_concurrent_jobs =
      std::max(report_.peak_concurrent_jobs, running_jobs_);
  ++report_.executions;
  if (exec->jobs.size() > 1) ++report_.batches;

  run_step(exec);
}

void CollectiveRuntime::run_step(const std::shared_ptr<Execution>& exec) {
  const util::Seconds step_start = simulator_.now();
  const std::vector<optical::TimedTransfer>& transfers =
      exec->steps[exec->next_step];
  const optical::OpticalParams& p = config_.optical;

  // Claim the step's spectrum cells on the SHARED map.  Bands are disjoint,
  // so a failed claim means the arbitration above is broken — same fatal
  // semantics as the single-job DES, but detected here with job context.
  for (const optical::TimedTransfer& t : transfers) {
    for (const optical::WavelengthId lambda : t.lambdas) {
      if (!spectrum_.try_reserve(t.arc, lambda)) {
        std::fprintf(stderr,
                     "CollectiveRuntime: wavelength conflict on lambda %u "
                     "(job %u) — arbitration bug\n",
                     lambda, exec->jobs.front());
        std::abort();
      }
      ++report_.spectrum_reservations;
    }
  }

  util::Seconds step_end = step_start;
  for (const optical::TimedTransfer& t : transfers) {
    const optical::WavelengthId primary = t.lambdas.front();
    bool retuned = transceivers_.retune_tx(t.src, t.arc.direction, primary);
    retuned |= transceivers_.retune_rx(t.dst, t.arc.direction, primary);
    if (p.retune_every_step) retuned = true;
    if (retuned) ++report_.total_retunes;

    const util::Seconds finish =
        step_start + optical::transfer_cost(p, t, retuned);
    step_end = std::max(step_end, finish);
    simulator_.schedule_at(finish, [this, arc = t.arc, lambdas = t.lambdas] {
      for (const optical::WavelengthId lambda : lambdas) {
        spectrum_.release(arc, lambda);
      }
    });
  }
  ++report_.total_steps;

  step_end += p.sync_time;
  simulator_.schedule_at(step_end, [this, exec] {
    ++exec->next_step;
    if (exec->next_step < exec->steps.size()) {
      run_step(exec);
    } else {
      finish_execution(exec);
    }
  });
}

void CollectiveRuntime::finish_execution(
    const std::shared_ptr<Execution>& exec) {
  for (const JobId id : exec->jobs) {
    JobRecord& record = records_[id];
    record.state = JobState::kDone;
    record.completed = simulator_.now();
    completion_order_.push_back(id);
    ++report_.completed;
    report_.total_turnaround += record.turnaround();
    trace_.record(simulator_.now(), sim::TraceKind::kJobComplete, id,
                  static_cast<std::int64_t>(record.band.base));
  }
  running_jobs_ -= static_cast<std::uint32_t>(exec->jobs.size());
  arbiter_.release(exec->band);
  try_admit();
}

RuntimeReport CollectiveRuntime::run() {
  if (started_) {
    std::fprintf(stderr, "CollectiveRuntime: run() called twice\n");
    std::abort();
  }
  started_ = true;
  for (const JobRecord& record : records_) {
    if (record.state != JobState::kSubmitted) continue;  // rejected
    const JobId id = record.id;
    simulator_.schedule_at(record.spec.arrival, [this, id] { on_arrival(id); });
  }
  simulator_.run();

  if (!queue_.empty() || running_jobs_ != 0) {
    std::fprintf(stderr,
                 "CollectiveRuntime: clock drained with %zu queued / %u "
                 "running jobs\n",
                 queue_.size(), running_jobs_);
    std::abort();
  }
  report_.makespan = simulator_.now();
  return report_;
}

}  // namespace wrht::runtime
