#include "runtime/arbiter.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace wrht::runtime {

void SpectrumArbiter::attach_metrics(obs::MetricsRegistry& registry) {
  allocations_ = registry.counter("spectrum.band_allocations");
  releases_ = registry.counter("spectrum.band_releases");
  grows_ = registry.counter("spectrum.band_grows");
  shrinks_ = registry.counter("spectrum.band_shrinks");
  occupancy_ = registry.sampled_gauge("optical.spectrum_occupancy");
  publish_occupancy();
}

void SpectrumArbiter::publish_occupancy() {
  obs::set(occupancy_, 1.0 - static_cast<double>(free_) /
                                 static_cast<double>(total_));
}

SpectrumArbiter::SpectrumArbiter(std::uint32_t total_wavelengths,
                                 bool interval_index)
    : total_(total_wavelengths),
      free_(total_wavelengths),
      indexed_(interval_index) {
  WRHT_REQUIRE(total_wavelengths > 0,
               "SpectrumArbiter: need at least one wavelength");
  taken_.assign(total_wavelengths, false);
  if (indexed_) free_intervals_.push_back(FreeInterval{0, total_wavelengths});
}

void SpectrumArbiter::index_take(std::uint32_t base, std::uint32_t width) {
  const auto it = std::upper_bound(
      free_intervals_.begin(), free_intervals_.end(), base,
      [](std::uint32_t b, const FreeInterval& iv) { return b < iv.base; });
  WRHT_CHECK(it != free_intervals_.begin(),
             "SpectrumArbiter: interval index lost range at " << base);
  const auto iv = std::prev(it);
  WRHT_CHECK(iv->base <= base && base + width <= iv->base + iv->width,
             "SpectrumArbiter: taking [" << base << ", " << base + width
                                         << ") outside free interval ["
                                         << iv->base << ", "
                                         << iv->base + iv->width << ")");
  const std::uint32_t left = base - iv->base;
  const std::uint32_t right = (iv->base + iv->width) - (base + width);
  if (left == 0 && right == 0) {
    free_intervals_.erase(iv);
  } else if (left == 0) {
    iv->base = base + width;
    iv->width = right;
  } else if (right == 0) {
    iv->width = left;
  } else {
    iv->width = left;
    free_intervals_.insert(std::next(iv),
                           FreeInterval{base + width, right});
  }
}

void SpectrumArbiter::index_free(std::uint32_t base, std::uint32_t width) {
  auto it = std::upper_bound(
      free_intervals_.begin(), free_intervals_.end(), base,
      [](std::uint32_t b, const FreeInterval& iv) { return b < iv.base; });
  // Merge with the interval ending exactly at `base`...
  if (it != free_intervals_.begin()) {
    const auto prev = std::prev(it);
    if (prev->base + prev->width == base) {
      prev->width += width;
      // ...and with the one starting exactly at the new end.
      if (it != free_intervals_.end() && it->base == prev->base + prev->width) {
        prev->width += it->width;
        free_intervals_.erase(it);
      }
      return;
    }
    WRHT_CHECK(prev->base + prev->width <= base,
               "SpectrumArbiter: freeing already-free range at " << base);
  }
  if (it != free_intervals_.end() && it->base == base + width) {
    it->base = base;
    it->width += width;
    return;
  }
  free_intervals_.insert(it, FreeInterval{base, width});
}

std::uint32_t SpectrumArbiter::largest_free_block() const {
  if (indexed_) {
    std::uint32_t best = 0;
    for (const FreeInterval& iv : free_intervals_) {
      best = std::max(best, iv.width);
    }
    return best;
  }
  std::uint32_t best = 0;
  std::uint32_t run = 0;
  for (std::uint32_t lambda = 0; lambda < total_; ++lambda) {
    run = taken_[lambda] ? 0 : run + 1;
    best = std::max(best, run);
  }
  return best;
}

std::optional<WavelengthBand> SpectrumArbiter::allocate(std::uint32_t width) {
  WRHT_REQUIRE(width > 0, "SpectrumArbiter: zero-width band requested");
  std::uint32_t base = total_;  // sentinel: no fit
  if (indexed_) {
    // First fit == the lowest-based interval wide enough; intervals are
    // sorted by base, so the first hit is the bitmap scan's answer.
    for (const FreeInterval& iv : free_intervals_) {
      if (iv.width >= width) {
        base = iv.base;
        break;
      }
    }
  } else {
    std::uint32_t run = 0;
    for (std::uint32_t lambda = 0; lambda < total_; ++lambda) {
      run = taken_[lambda] ? 0 : run + 1;
      if (run == width) {
        base = lambda + 1 - width;
        break;
      }
    }
  }
  if (base == total_) return std::nullopt;
  for (std::uint32_t i = base; i < base + width; ++i) taken_[i] = true;
  if (indexed_) index_take(base, width);
  free_ -= width;
  ++bands_;
  obs::inc(allocations_);
  publish_occupancy();
  return WavelengthBand{base, width};
}

std::optional<WavelengthBand> SpectrumArbiter::allocate_at(
    std::uint32_t base, std::uint32_t width) {
  WRHT_REQUIRE(width > 0, "SpectrumArbiter: zero-width band requested");
  if (base + width > total_) return std::nullopt;
  for (std::uint32_t i = base; i < base + width; ++i) {
    if (taken_[i]) return std::nullopt;
  }
  for (std::uint32_t i = base; i < base + width; ++i) taken_[i] = true;
  if (indexed_) index_take(base, width);
  free_ -= width;
  ++bands_;
  obs::inc(allocations_);
  publish_occupancy();
  return WavelengthBand{base, width};
}

std::vector<SpectrumArbiter::FreeInterval> SpectrumArbiter::free_intervals()
    const {
  if (indexed_) return free_intervals_;
  // Naive mode keeps no index; rebuild the maximal runs from the bitmap.
  // Same sorted/disjoint/never-adjacent shape as the indexed list, so both
  // modes hand the planner identical inputs.
  std::vector<FreeInterval> out;
  std::uint32_t run = 0;
  for (std::uint32_t lambda = 0; lambda < total_; ++lambda) {
    if (taken_[lambda]) {
      if (run > 0) out.push_back(FreeInterval{lambda - run, run});
      run = 0;
    } else {
      ++run;
    }
  }
  if (run > 0) out.push_back(FreeInterval{total_ - run, run});
  return out;
}

void SpectrumArbiter::release(const WavelengthBand& band) {
  WRHT_REQUIRE(band.valid() && band.base + band.width <= total_,
               "SpectrumArbiter: releasing bogus band ["
                   << band.base << ", " << band.base + band.width << ")");
  for (std::uint32_t i = band.base; i < band.base + band.width; ++i) {
    WRHT_CHECK(taken_[i],
               "SpectrumArbiter: double release of wavelength " << i);
    taken_[i] = false;
  }
  if (indexed_) index_free(band.base, band.width);
  free_ += band.width;
  --bands_;
  obs::inc(releases_);
  publish_occupancy();
}

WavelengthBand SpectrumArbiter::grow(const WavelengthBand& band,
                                     std::uint32_t max_width) {
  WRHT_REQUIRE(band.valid() && band.base + band.width <= total_,
               "SpectrumArbiter: growing bogus band ["
                   << band.base << ", " << band.base + band.width << ")");
  for (std::uint32_t i = band.base; i < band.base + band.width; ++i) {
    // Same corruption guard as release()/shrink_to(): a stale band whose
    // cells are free would silently absorb them as "adjacent" spectrum.
    WRHT_CHECK(taken_[i],
               "SpectrumArbiter: growing unallocated wavelength " << i);
  }
  WavelengthBand out = band;
  // Upward first, then downward — identical to the cell-by-cell walk: the
  // free cells directly above `band` are exactly the low end of the
  // interval starting at band.base + band.width (if any), and symmetrically
  // below.
  while (out.width < max_width && out.base + out.width < total_ &&
         !taken_[out.base + out.width]) {
    taken_[out.base + out.width] = true;
    ++out.width;
    --free_;
  }
  while (out.width < max_width && out.base > 0 && !taken_[out.base - 1]) {
    --out.base;
    taken_[out.base] = true;
    ++out.width;
    --free_;
  }
  if (out.width != band.width) {
    if (indexed_) {
      const std::uint32_t above = out.base + out.width -
                                  (band.base + band.width);
      if (above > 0) index_take(band.base + band.width, above);
      const std::uint32_t below = band.base - out.base;
      if (below > 0) index_take(out.base, below);
    }
    obs::inc(grows_);
    publish_occupancy();
  }
  return out;
}

void SpectrumArbiter::shrink_to(const WavelengthBand& band,
                                const WavelengthBand& keep) {
  WRHT_REQUIRE(band.valid() && keep.valid() && keep.base >= band.base &&
                   keep.base + keep.width <= band.base + band.width,
               "SpectrumArbiter: shrink keep ["
                   << keep.base << ", " << keep.base + keep.width
                   << ") not inside [" << band.base << ", "
                   << band.base + band.width << ")");
  for (std::uint32_t i = band.base; i < band.base + band.width; ++i) {
    if (i >= keep.base && i < keep.base + keep.width) continue;
    WRHT_CHECK(taken_[i],
               "SpectrumArbiter: shrink of unallocated wavelength " << i);
    taken_[i] = false;
    ++free_;
  }
  if (keep.width != band.width) {
    if (indexed_) {
      const std::uint32_t left = keep.base - band.base;
      if (left > 0) index_free(band.base, left);
      const std::uint32_t right = (band.base + band.width) -
                                  (keep.base + keep.width);
      if (right > 0) index_free(keep.base + keep.width, right);
    }
    obs::inc(shrinks_);
    publish_occupancy();
  }
}

std::uint32_t SpectrumArbiter::largest_free_block_assuming(
    const WavelengthBand& also_free) const {
  if (indexed_) {
    // `also_free` is a granted band (every cell taken), so the hypothetical
    // free run it creates is also_free itself joined with the intervals
    // touching its two edges; every other free run is unchanged.
    std::uint32_t joined = also_free.width;
    std::uint32_t best = 0;
    for (const FreeInterval& iv : free_intervals_) {
      best = std::max(best, iv.width);
      if (iv.base + iv.width == also_free.base) joined += iv.width;
      if (iv.base == also_free.base + also_free.width) joined += iv.width;
    }
    return std::max(best, joined);
  }
  std::uint32_t best = 0;
  std::uint32_t run = 0;
  for (std::uint32_t lambda = 0; lambda < total_; ++lambda) {
    const bool free = !taken_[lambda] ||
                      (lambda >= also_free.base &&
                       lambda < also_free.base + also_free.width);
    run = free ? run + 1 : 0;
    best = std::max(best, run);
  }
  return best;
}

}  // namespace wrht::runtime
