#include "runtime/arbiter.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace wrht::runtime {

void SpectrumArbiter::attach_metrics(obs::MetricsRegistry& registry) {
  allocations_ = registry.counter("spectrum.band_allocations");
  releases_ = registry.counter("spectrum.band_releases");
  grows_ = registry.counter("spectrum.band_grows");
  shrinks_ = registry.counter("spectrum.band_shrinks");
  occupancy_ = registry.sampled_gauge("optical.spectrum_occupancy");
  publish_occupancy();
}

void SpectrumArbiter::publish_occupancy() {
  obs::set(occupancy_, 1.0 - static_cast<double>(free_) /
                                 static_cast<double>(total_));
}

SpectrumArbiter::SpectrumArbiter(std::uint32_t total_wavelengths)
    : total_(total_wavelengths), free_(total_wavelengths) {
  WRHT_REQUIRE(total_wavelengths > 0,
               "SpectrumArbiter: need at least one wavelength");
  taken_.assign(total_wavelengths, false);
}

std::uint32_t SpectrumArbiter::largest_free_block() const {
  std::uint32_t best = 0;
  std::uint32_t run = 0;
  for (std::uint32_t lambda = 0; lambda < total_; ++lambda) {
    run = taken_[lambda] ? 0 : run + 1;
    best = std::max(best, run);
  }
  return best;
}

std::optional<WavelengthBand> SpectrumArbiter::allocate(std::uint32_t width) {
  WRHT_REQUIRE(width > 0, "SpectrumArbiter: zero-width band requested");
  std::uint32_t run = 0;
  for (std::uint32_t lambda = 0; lambda < total_; ++lambda) {
    run = taken_[lambda] ? 0 : run + 1;
    if (run == width) {
      const std::uint32_t base = lambda + 1 - width;
      for (std::uint32_t i = base; i <= lambda; ++i) taken_[i] = true;
      free_ -= width;
      ++bands_;
      obs::inc(allocations_);
      publish_occupancy();
      return WavelengthBand{base, width};
    }
  }
  return std::nullopt;
}

void SpectrumArbiter::release(const WavelengthBand& band) {
  WRHT_REQUIRE(band.valid() && band.base + band.width <= total_,
               "SpectrumArbiter: releasing bogus band ["
                   << band.base << ", " << band.base + band.width << ")");
  for (std::uint32_t i = band.base; i < band.base + band.width; ++i) {
    WRHT_CHECK(taken_[i],
               "SpectrumArbiter: double release of wavelength " << i);
    taken_[i] = false;
  }
  free_ += band.width;
  --bands_;
  obs::inc(releases_);
  publish_occupancy();
}

WavelengthBand SpectrumArbiter::grow(const WavelengthBand& band,
                                     std::uint32_t max_width) {
  WRHT_REQUIRE(band.valid() && band.base + band.width <= total_,
               "SpectrumArbiter: growing bogus band ["
                   << band.base << ", " << band.base + band.width << ")");
  for (std::uint32_t i = band.base; i < band.base + band.width; ++i) {
    // Same corruption guard as release()/shrink_to(): a stale band whose
    // cells are free would silently absorb them as "adjacent" spectrum.
    WRHT_CHECK(taken_[i],
               "SpectrumArbiter: growing unallocated wavelength " << i);
  }
  WavelengthBand out = band;
  while (out.width < max_width && out.base + out.width < total_ &&
         !taken_[out.base + out.width]) {
    taken_[out.base + out.width] = true;
    ++out.width;
    --free_;
  }
  while (out.width < max_width && out.base > 0 && !taken_[out.base - 1]) {
    --out.base;
    taken_[out.base] = true;
    ++out.width;
    --free_;
  }
  if (out.width != band.width) {
    obs::inc(grows_);
    publish_occupancy();
  }
  return out;
}

void SpectrumArbiter::shrink_to(const WavelengthBand& band,
                                const WavelengthBand& keep) {
  WRHT_REQUIRE(band.valid() && keep.valid() && keep.base >= band.base &&
                   keep.base + keep.width <= band.base + band.width,
               "SpectrumArbiter: shrink keep ["
                   << keep.base << ", " << keep.base + keep.width
                   << ") not inside [" << band.base << ", "
                   << band.base + band.width << ")");
  for (std::uint32_t i = band.base; i < band.base + band.width; ++i) {
    if (i >= keep.base && i < keep.base + keep.width) continue;
    WRHT_CHECK(taken_[i],
               "SpectrumArbiter: shrink of unallocated wavelength " << i);
    taken_[i] = false;
    ++free_;
  }
  if (keep.width != band.width) {
    obs::inc(shrinks_);
    publish_occupancy();
  }
}

std::uint32_t SpectrumArbiter::largest_free_block_assuming(
    const WavelengthBand& also_free) const {
  std::uint32_t best = 0;
  std::uint32_t run = 0;
  for (std::uint32_t lambda = 0; lambda < total_; ++lambda) {
    const bool free = !taken_[lambda] ||
                      (lambda >= also_free.base &&
                       lambda < also_free.base + also_free.width);
    run = free ? run + 1 : 0;
    best = std::max(best, run);
  }
  return best;
}

}  // namespace wrht::runtime
