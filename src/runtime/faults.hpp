// Fault injection for the multi-tenant runtime.
//
// Hardware failures are EVENTS ON THE SIM CLOCK, not a separate mechanism:
// a FaultSource yields FaultSpecs in nondecreasing time order (mirroring
// JobSource for job specs), the runtime schedules each injection and repair
// as ordinary simulator events, and every disruption a fault causes flows
// through the same typed RenegotiationRequest entry point that preemption
// and elastic resize already use — a node loss is a kEvict (survivor
// rebuild on the same band) or a kRestart, a ToR loss is a kRestart on the
// other substrate (migration), a wavelength loss is a kShrink.  Detection
// is at BSP step boundaries: a running execution finishes its in-flight
// step, then the runtime reconciles it against the down set.
//
// Two sources exist: FaultInjector draws merged per-domain Poisson
// processes from a seed (chaos mode — MTBF per failure domain fleet-wide,
// uniform subject choice, exponential repair), and ScriptedFaultSource
// replays an explicit list (tests, examples, recorded traces).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/random.hpp"
#include "util/units.hpp"

namespace wrht::runtime {

/// What failed.  Domains are independent Poisson processes in the injector
/// and independent handling paths in the runtime.
enum class FaultDomain : std::uint8_t {
  /// One ring position's optics (micro-ring transceiver): the node leaves
  /// OPTICAL service but its electrical host keeps working — light crosses
  /// the dark position untouched, so optical survivors rebuild around it.
  kTransceiver,
  /// A whole node: the ring position AND its electrical host go down.
  kNode,
  /// An electrical ToR switch: every host hanging off it goes down at once.
  /// Optical service is unaffected, which is what makes cross-substrate
  /// migration the natural response.
  kTor,
  /// One wavelength degrades out of the shared spectrum (laser drift,
  /// ring-resonator detuning).  Holders of a band covering it shrink or
  /// suspend at their next boundary.
  kWavelength,
};

[[nodiscard]] const char* fault_domain_name(FaultDomain domain);

/// One fault: `subject` (node id for kTransceiver/kNode, ToR index for
/// kTor, wavelength index for kWavelength) fails at `at` and — when
/// `repair_after` is positive — returns to service at `at + repair_after`.
/// Zero repair_after means the fault is permanent for the run.
struct FaultSpec {
  FaultDomain domain = FaultDomain::kNode;
  std::uint32_t subject = 0;
  util::Seconds at{0.0};
  util::Seconds repair_after{0.0};
};

/// Pull-based stream of faults, the chaos counterpart of JobSource.  Specs
/// MUST be yielded in nondecreasing `at` order (the runtime aborts
/// otherwise — out-of-order injections would warp the clock).
class FaultSource {
 public:
  virtual ~FaultSource() = default;
  /// The next fault, or nullopt when the stream is exhausted.
  virtual std::optional<FaultSpec> next() = 0;
};

/// Shape of the stochastic fault load.  An MTBF of zero disables that
/// domain; a nonzero MTBF is FLEET-WIDE mean time between failures (the
/// per-domain Poisson rate is 1/mtbf regardless of fleet size), with the
/// subject drawn uniformly per fault.
struct FaultInjectorConfig {
  std::uint64_t seed = 1;
  /// No faults are injected at or past this time (0 = no faults at all).
  util::Seconds horizon{0.0};
  util::Seconds transceiver_mtbf{0.0};
  util::Seconds node_mtbf{0.0};
  util::Seconds tor_mtbf{0.0};
  util::Seconds wavelength_mtbf{0.0};
  /// Mean repair time, exponentially distributed per fault; zero makes
  /// every fault permanent.
  util::Seconds mttr{0.0};
  /// Subject spaces: ring positions (kTransceiver/kNode), wavelengths,
  /// ToR switches.  A domain with a zero subject space is disabled even
  /// when its MTBF is set.
  std::uint32_t ring_size = 0;
  std::uint32_t num_wavelengths = 0;
  std::uint32_t num_tors = 0;
};

/// Seeded stochastic fault source: one Poisson process per enabled domain,
/// merged in time order.  Each domain draws from its OWN derived-seed Rng
/// with a fixed consumption pattern (gap, subject, repair), so a domain's
/// fault stream is byte-identical for a given seed no matter which other
/// domains are enabled — the same replay-determinism discipline the
/// workload generator keeps for job streams.
class FaultInjector final : public FaultSource {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config);

  std::optional<FaultSpec> next() override;

 private:
  struct Process {
    FaultDomain domain;
    double rate = 0.0;          // faults per second, fleet-wide
    std::uint32_t subjects = 0; // uniform subject space
    util::Rng rng;
    std::optional<FaultSpec> pending;
  };

  void advance(Process& process);

  util::Seconds horizon_{0.0};
  util::Seconds mttr_{0.0};
  std::vector<Process> processes_;
};

/// Replays an explicit fault list (tests, examples, recorded chaos traces).
/// The list must be in nondecreasing `at` order.
class ScriptedFaultSource final : public FaultSource {
 public:
  explicit ScriptedFaultSource(std::vector<FaultSpec> faults);

  std::optional<FaultSpec> next() override;

 private:
  std::vector<FaultSpec> faults_;
  std::size_t cursor_ = 0;
};

}  // namespace wrht::runtime
