#include "runtime/substrate.hpp"

namespace wrht::runtime {

const char* renegotiation_kind_name(RenegotiationRequest::Kind kind) {
  switch (kind) {
    case RenegotiationRequest::Kind::kResume:
      return "resume";
    case RenegotiationRequest::Kind::kGrow:
      return "grow";
    case RenegotiationRequest::Kind::kShrink:
      return "shrink";
    case RenegotiationRequest::Kind::kEvict:
      return "evict";
    case RenegotiationRequest::Kind::kRestart:
      return "restart";
  }
  return "?";
}

// Renegotiation defaults: a substrate that does not opt in through caps()
// simply declines every request kind, the what-if probe reports the plain
// free capacity (releasing nothing frees nothing extra), and quarantine
// refuses because there is no per-unit capacity to take out of service.

RenegotiationOutcome ExecutionSubstrate::renegotiate(
    SubstrateExecution*, const RenegotiationRequest&) {
  return {};
}

std::uint32_t ExecutionSubstrate::free_grant_if_kept(const SubstrateExecution&,
                                                     std::uint32_t) const {
  return largest_free_grant();
}

bool ExecutionSubstrate::quarantine_unit(std::uint32_t) { return false; }

void ExecutionSubstrate::restore_unit(std::uint32_t) {}

util::Seconds ExecutionSubstrate::predict_completion(
    const std::vector<topo::NodeId>& participants, util::Bytes payload,
    std::uint32_t grant, util::Seconds now) const {
  // No congestion signal to fold in: the quiet run time, starting now.
  return now + predict_makespan(participants, payload, grant);
}

}  // namespace wrht::runtime
