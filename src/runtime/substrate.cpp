#include "runtime/substrate.hpp"

namespace wrht::runtime {

// Renegotiation defaults: a substrate that does not opt in through caps()
// simply declines every renegotiation, and the what-if probe reports the
// plain free capacity (releasing nothing frees nothing extra).

std::unique_ptr<SubstrateExecution> ExecutionSubstrate::resume_plan(
    const SubstrateExecution&, std::size_t, std::uint32_t, std::uint32_t) {
  return nullptr;
}

std::unique_ptr<SubstrateExecution> ExecutionSubstrate::grow_plan(
    SubstrateExecution&, std::size_t, std::uint32_t) {
  return nullptr;
}

std::unique_ptr<SubstrateExecution> ExecutionSubstrate::shrink_plan(
    SubstrateExecution&, std::size_t, std::uint32_t) {
  return nullptr;
}

std::uint32_t ExecutionSubstrate::free_grant_if_kept(const SubstrateExecution&,
                                                     std::uint32_t) const {
  return largest_free_grant();
}

util::Seconds ExecutionSubstrate::predict_completion(
    const std::vector<topo::NodeId>& participants, util::Bytes payload,
    std::uint32_t grant, util::Seconds now) const {
  // No congestion signal to fold in: the quiet run time, starting now.
  return now + predict_makespan(participants, payload, grant);
}

}  // namespace wrht::runtime
