// The electrical-fallback execution substrate: the alpha-beta/flow baseline
// fabric from src/elec serving overflow tenants when the optical spectrum
// saturates.
//
// Grant model — link capacity.  The fallback maps one host per ring
// position; an execution claims one host per participant exclusively, so
// two placed executions never share a host.  What happens BETWEEN hosts
// depends on the configured fabric:
//
//  * kStarExclusive — one full-duplex access link per host into a
//    non-blocking switch.  Every flow crosses exactly its endpoints'
//    access links, so host exclusivity makes timing each execution's steps
//    on a private quiet FlowNetwork EXACT under max-min fair sharing, not
//    an approximation.
//
//  * kTwoLevelShared — hosts hang off ToR switches whose uplinks into the
//    core are oversubscribed.  Different executions' flows SHARE those
//    uplinks, so the substrate times every in-flight step of every tenant
//    together on ONE elec::SharedFabricTimer: a step's completion time
//    depends on what other tenants are sending, moves when they start
//    (retimings re-schedule the step event on the sim clock), and is
//    re-proven at end of run by a whole-horizon flow replay into a fresh
//    network.  The quiet-network duration of each step is still computed
//    (StepFlowTimer) as the denominator of the per-job contention
//    slowdown.
//
// Schedules are the classic electrical collectives the paper benchmarks
// against: the chunked ring (bandwidth-optimal) or recursive doubling
// (latency-optimal), picked per job by the alpha-beta cost model.  Every
// execution keeps the schedule in TWO coordinate systems:
//
//  * the FUNCTIONAL schedule — transfers among the participants' ring ids.
//    This is what schedule() exposes and what the runtime's composite
//    all-reduce oracle proves; it never changes across renegotiations, so
//    an executed prefix and a rebuilt remainder always compose.
//  * the PHYSICAL schedule — the same steps remapped onto the host set
//    currently claimed.  This is what the flow timers route.
//
// At first placement the two coincide (hosts are claimed 1:1 at the
// participants' ring positions).  They diverge at a REMAPPED RESUME: BSP
// step boundaries are preemption points (SubstrateCaps::preemptible), a
// suspended execution surrenders its hosts, and a kResume renegotiation
// re-places the remainder on whatever host set is free then — the original
// positions when available, else any free hosts, carried over by the same
// schedule remap placement uses.  Host fungibility is also the fault story:
// a dead host gets quarantined (quarantine_unit) and the resume simply
// remaps around it, so electrical node faults cost a suspension, never
// data.  The shared fabric's whole-horizon replay oracle covers remapped
// resumes for free: it replays the logged physical routes, which are
// exactly what the remapped remainder injected.
//
// Per-step timing is produced one step at a time so electrical steps
// interleave with optical tenants' events on the shared clock.
#include "runtime/substrate.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "coll/algorithms.hpp"
#include "coll/cost_model.hpp"
#include "elec/alphabeta.hpp"
#include "elec/schedule_runner.hpp"
#include "elec/shared_fabric.hpp"
#include "util/check.hpp"

namespace wrht::runtime {

namespace {

/// Rewrite a compact-rank schedule (nodes 0..k-1) onto the participants'
/// host ids inside a `num_hosts`-wide id space.  Chunk structure is
/// untouched, so payload splitting and functional semantics carry over.
coll::Schedule remap_onto_hosts(const coll::Schedule& compact,
                                const std::vector<topo::NodeId>& hosts,
                                std::uint32_t num_hosts) {
  coll::Schedule mapped(compact.name() + "-on-hosts", num_hosts,
                        compact.num_chunks());
  for (const coll::Step& step : compact.steps()) {
    mapped.add_step();
    for (const coll::Transfer& t : step.transfers) {
      coll::Transfer placed = t;
      placed.src = hosts[t.src];
      placed.dst = hosts[t.dst];
      mapped.add_transfer(placed);
    }
  }
  return mapped;
}

/// The compact-rank steps still ahead after `steps_done` executed ones —
/// the electrical remainder rebuild (no level restructuring to do: a BSP
/// flow schedule's remainder is literally its tail).
coll::Schedule schedule_tail(const coll::Schedule& compact,
                             std::size_t steps_done) {
  coll::Schedule tail(compact.name(), compact.num_nodes(),
                      compact.num_chunks());
  const std::vector<coll::Step>& steps = compact.steps();
  for (std::size_t s = steps_done; s < steps.size(); ++s) {
    tail.add_step();
    for (const coll::Transfer& t : steps[s].transfers) {
      tail.add_transfer(t);
    }
  }
  return tail;
}

class ElectricalExecution final : public SubstrateExecution {
 public:
  [[nodiscard]] const coll::Schedule& schedule() const override {
    return functional_;
  }
  [[nodiscard]] std::size_t num_steps() const override {
    return functional_.num_steps();
  }
  /// Electrical grants are host links, not spectrum; the invalid band tells
  /// records/traces "no band held".
  [[nodiscard]] WavelengthBand band() const override { return {}; }
  [[nodiscard]] std::uint32_t grant() const override {
    return holds_hosts ? static_cast<std::uint32_t>(hosts_.size()) : 0;
  }
  [[nodiscard]] std::vector<topo::NodeId> hosts() const override {
    return hosts_;
  }

  /// Remaining steps in compact ranks 0..k-1 — the seed every further
  /// resume rebuilds its tail from.
  coll::Schedule compact_;
  /// Remaining steps among participant ring ids — what the composite
  /// all-reduce oracle proves; stable across host remaps.
  coll::Schedule functional_;
  /// Remaining steps among the claimed hosts — what the flow timers route.
  coll::Schedule physical_;
  util::Bytes payload;
  std::vector<topo::NodeId> participants;
  /// hosts_[i] carries participants[i]'s data (identity at first placement,
  /// possibly remapped after a resume).
  std::vector<topo::NodeId> hosts_;
  bool holds_hosts = false;
  /// kTwoLevelShared: the execution's session on the shared fabric timer.
  elec::SharedFabricTimer::SessionId session = 0;
  bool has_session = false;
};

elec::ElectricalCluster make_fallback_cluster(
    std::uint32_t num_hosts, const ElectricalFallbackConfig& config) {
  if (config.fabric == ElectricalFabric::kStarExclusive) {
    return elec::ElectricalCluster::star(num_hosts, config.link);
  }
  std::optional<elec::ElectricalCluster> tree =
      elec::ElectricalCluster::two_level_tree(num_hosts, config.hosts_per_tor,
                                              config.oversubscription,
                                              config.link);
  WRHT_REQUIRE(tree.has_value(),
               "make_electrical_substrate: bad two-level shape ("
                   << num_hosts << " hosts, " << config.hosts_per_tor
                   << " per ToR, oversubscription " << config.oversubscription
                   << ")");
  return *std::move(tree);
}

class ElectricalSubstrate final : public ExecutionSubstrate {
 public:
  ElectricalSubstrate(std::uint32_t num_hosts,
                      const ElectricalFallbackConfig& config)
      : cluster_(make_fallback_cluster(num_hosts, config)),
        timer_(cluster_),
        config_(config),
        host_busy_(num_hosts, false) {
    if (config_.fabric == ElectricalFabric::kTwoLevelShared) {
      shared_.emplace(cluster_, config_.replay_audit);
    }
  }

  [[nodiscard]] SubstrateKind kind() const override {
    return SubstrateKind::kElectrical;
  }
  [[nodiscard]] const char* name() const override { return "electrical"; }
  [[nodiscard]] const SubstrateCaps& caps() const override {
    // BSP step boundaries are preemption points: between two steps no flow
    // of this execution is in flight, so the host claims can be surrendered
    // whole and the remainder re-placed later — on different hosts if the
    // original ones are taken (remaps_on_resume).  Resize stays off: the
    // grant is exactly one host per participant, so there is no wider or
    // narrower grant to rebuild toward.  Batching applies (per-step alpha
    // dominates small jobs here too), and a fused peer rides host links,
    // not a wavelength band, so no grant-width floor constrains fusion.  On
    // the shared two-level fabric step completions move with other tenants'
    // traffic, so the runtime must expect retimings there.
    static constexpr SubstrateCaps kStarCaps{/*preemptible=*/true,
                                             /*resizable=*/false,
                                             /*batchable=*/true,
                                             /*fuse_respects_grant=*/false,
                                             /*retimes_steps=*/false,
                                             /*remaps_on_resume=*/true};
    static constexpr SubstrateCaps kSharedCaps{/*preemptible=*/true,
                                               /*resizable=*/false,
                                               /*batchable=*/true,
                                               /*fuse_respects_grant=*/false,
                                               /*retimes_steps=*/true,
                                               /*remaps_on_resume=*/true};
    return shared_ ? kSharedCaps : kStarCaps;
  }

  [[nodiscard]] std::uint32_t largest_free_grant() const override {
    // A unit of capacity exists only when BOTH gates could pass: a
    // concurrency slot and at least one free host link.
    if (!slots_available()) return 0;
    const bool any_host_free =
        std::find(host_busy_.begin(), host_busy_.end(), false) !=
        host_busy_.end();
    return any_host_free ? 1u : 0u;
  }
  [[nodiscard]] std::uint32_t free_grant_total() const override {
    if (!slots_available()) return 0;
    std::uint32_t free = 0;
    for (const bool busy : host_busy_) free += busy ? 0u : 1u;
    return free;
  }

  [[nodiscard]] bool can_place(const std::vector<topo::NodeId>& participants,
                               std::uint32_t) const override {
    if (!slots_available()) return false;
    return std::none_of(
        participants.begin(), participants.end(),
        [this](topo::NodeId host) { return host_busy_[host]; });
  }

  [[nodiscard]] std::unique_ptr<SubstrateExecution> place(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t) override {
    WRHT_CHECK(can_place(participants, 1),
               "ElectricalSubstrate: placement on busy hosts — "
               "arbitration bug");
    const coll::Schedule compact = best_compact_schedule(
        static_cast<std::uint32_t>(participants.size()), payload);
    // First placement claims hosts 1:1 at the participants' ring positions,
    // so functional and physical coincide.
    return make_plan(compact, participants, participants, payload);
  }

  [[nodiscard]] StepTiming time_step(SubstrateExecution& e, std::size_t step,
                                     util::Seconds now) override {
    auto& exec = static_cast<ElectricalExecution&>(e);
    StepTiming out;
    // Quiet-network BSP duration, same construction as
    // elec::run_on_electrical: the step's flow makespan on a private reset
    // network (route latency included).  On the star this IS the step —
    // host exclusivity means nobody else's flows exist on its links.  On
    // the shared fabric it is the contention-free baseline the slowdown is
    // measured against.  Timed on the PHYSICAL schedule: after a remapped
    // resume the quiet baseline belongs to the routes actually flown.
    const std::optional<util::Seconds> quiet =
        timer_.time_step(exec.physical_, step, exec.payload);
    WRHT_CHECK(quiet.has_value(),
               "ElectricalSubstrate: un-timeable step " << step
                                                        << " — arbitration "
                                                           "bug");
    out.quiet = *quiet;
    if (!shared_) {
      out.end = now + *quiet;
      return out;
    }
    const std::optional<util::Seconds> end =
        shared_->begin_step(exec.session, exec.physical_, step, exec.payload,
                            now);
    WRHT_CHECK(end.has_value(),
               "ElectricalSubstrate: shared fabric refused step "
                   << step << " — arbitration bug");
    out.end = *end;
    for (const elec::SharedFabricTimer::Retiming& retiming :
         shared_->take_retimings()) {
      pending_retimings_.push_back(
          StepRetiming{session_plans_.at(retiming.session), retiming.end});
    }
    return out;
  }

  void release(SubstrateExecution& e, util::Seconds now) override {
    auto& exec = static_cast<ElectricalExecution&>(e);
    if (!exec.holds_hosts) return;
    if (exec.has_session) {
      shared_->close_session(exec.session, now);
      session_plans_.erase(exec.session);
      exec.has_session = false;
    }
    for (const topo::NodeId host : exec.hosts_) host_busy_[host] = false;
    exec.holds_hosts = false;
    --active_;
  }

  [[nodiscard]] RenegotiationOutcome renegotiate(
      SubstrateExecution* current,
      const RenegotiationRequest& request) override {
    switch (request.kind) {
      case RenegotiationRequest::Kind::kResume:
        return resume(static_cast<const ElectricalExecution&>(*current),
                      request);
      case RenegotiationRequest::Kind::kRestart:
        return restart(request);
      case RenegotiationRequest::Kind::kGrow:
      case RenegotiationRequest::Kind::kShrink:
      case RenegotiationRequest::Kind::kEvict:
        // Grants are exactly one host per participant (resizable is off),
        // and an evicted participant's partial sums live in its host's
        // memory — there is no narrower remainder to rebuild in place.  The
        // runtime falls back to kRestart among the survivors.
        return {};
    }
    return {};
  }

  [[nodiscard]] bool quarantine_unit(std::uint32_t unit) override {
    // A busy host cannot be pulled out from under its tenant — the runtime
    // must first renegotiate the holder away (fault-suspend), release its
    // claims, and retry.
    if (unit >= host_busy_.size() || host_busy_[unit]) return false;
    host_busy_[unit] = true;
    quarantined_hosts_.push_back(unit);
    return true;
  }

  void restore_unit(std::uint32_t unit) override {
    const auto it = std::find(quarantined_hosts_.begin(),
                              quarantined_hosts_.end(), unit);
    if (it == quarantined_hosts_.end()) return;
    quarantined_hosts_.erase(it);
    host_busy_[unit] = false;
  }

  [[nodiscard]] std::vector<StepRetiming> take_retimings() override {
    std::vector<StepRetiming> out = std::move(pending_retimings_);
    pending_retimings_.clear();
    return out;
  }

  [[nodiscard]] std::vector<double> link_peak_utilization() const override {
    return shared_ ? shared_->link_peak_utilization()
                   : std::vector<double>{};
  }

  [[nodiscard]] std::vector<double> link_utilization() const override {
    return shared_ ? shared_->link_utilization() : std::vector<double>{};
  }

  void attach_metrics(obs::MetricsRegistry& registry) override {
    if (shared_) shared_->attach_metrics(registry);
  }

  [[nodiscard]] std::uint64_t self_check() const override {
    if (!shared_) return 0;
    const std::uint64_t mismatches = shared_->verify_replay();
    // The incremental shared-fabric timing and the whole-horizon flow
    // replay disagree: a timing bug, fatal like a wavelength conflict.
    WRHT_CHECK(mismatches == 0,
               "ElectricalSubstrate: flow-replay oracle disagrees on "
                   << mismatches << " step(s)");
    return shared_->logged_steps();
  }

  [[nodiscard]] util::Seconds predict_makespan(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t) const override {
    // The alpha-beta analytic cost of the schedule this substrate would
    // run.  On the patterns schedule_for picks (ring steps, pairwise
    // exchanges) the flow simulation and the analytic model agree exactly,
    // so this is a faithful prediction, not a bound.  Admission re-asks
    // this for every queued candidate on every event, and the answer
    // depends only on (rank count, payload) for a fixed cluster — memoized
    // so the O(k^2)-transfer schedule is not rebuilt each time.
    const auto k = static_cast<std::uint32_t>(participants.size());
    const std::pair<std::uint32_t, std::uint64_t> key{k, payload.count()};
    const auto cached = prediction_cache_.find(key);
    if (cached != prediction_cache_.end()) return cached->second;
    const util::Seconds predicted =
        coll::alpha_beta_cost(best_compact_schedule(k, payload), payload,
                              elec::alpha_beta_for(cluster_))
            .total;
    prediction_cache_.emplace(key, predicted);
    return predicted;
  }

  [[nodiscard]] util::Seconds predict_completion(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t grant, util::Seconds now) const override {
    // Fold the live fabric state into the quiet alpha-beta prediction.  On
    // the exclusive star there is nothing to fold (host exclusivity makes
    // quiet timing exact); on the shared tree, probe the first step's flows
    // against the residual uplink bandwidth the in-flight tenants leave
    // behind and stretch the whole run by the observed contention ratio.
    const util::Seconds quiet = predict_makespan(participants, payload, grant);
    if (!shared_) return now + quiet;
    const coll::Schedule physical = remap_onto_hosts(
        best_compact_schedule(static_cast<std::uint32_t>(participants.size()),
                              payload),
        participants, cluster_.num_hosts());
    const std::optional<util::Seconds> quiet_step =
        timer_.time_step(physical, 0, payload);
    const std::optional<util::Seconds> busy_end =
        shared_->predict_step_completion(physical, 0, payload, now);
    if (!quiet_step || !busy_end || quiet_step->value() <= 0.0) {
      return now + quiet;
    }
    const double probe_ratio =
        std::max(1.0, (*busy_end - now).value() / quiet_step->value());
    // Drain forecast: the probe's stretch assumes today's contenders stay
    // for the candidate's WHOLE run, but an in-flight step predicted to end
    // at e contends only for the overlap min(e - now, quiet)/quiet of it.
    // Decay the stretch by the mean overlap fraction across the in-flight
    // steps — a fabric full of nearly-done tenants stops repelling arrivals
    // it could serve, which was the second routing-error residual the
    // report quantified.  New arrivals during the run remain unmodeled;
    // the routing report keeps scoring that residual per decision.
    double ratio = probe_ratio;
    if (probe_ratio > 1.0) {
      const std::vector<util::Seconds> ends =
          shared_->inflight_predicted_ends();
      if (!ends.empty() && quiet.value() > 0.0) {
        double overlap_sum = 0.0;
        for (const util::Seconds end : ends) {
          overlap_sum +=
              std::clamp((end - now).value() / quiet.value(), 0.0, 1.0);
        }
        const double overlap =
            overlap_sum / static_cast<double>(ends.size());
        ratio = 1.0 + (probe_ratio - 1.0) * overlap;
      }
    }
    return now + util::Seconds(quiet.value() * ratio);
  }

 private:
  [[nodiscard]] bool slots_available() const {
    return config_.max_concurrent == 0 || active_ < config_.max_concurrent;
  }

  /// Cheapest of the baseline all-reduces for k ranks under this cluster's
  /// alpha-beta parameters: chunked ring (bandwidth-optimal) vs recursive
  /// doubling (latency-optimal; only a candidate at power-of-two k, where
  /// it needs no fold/unfold steps).
  [[nodiscard]] coll::Schedule best_compact_schedule(std::uint32_t k,
                                                     util::Bytes payload) const {
    coll::Schedule ring = coll::ring_allreduce(k);
    if ((k & (k - 1)) != 0) return ring;
    coll::Schedule doubling = coll::recursive_doubling(k);
    const coll::AlphaBetaParams ab = elec::alpha_beta_for(cluster_);
    const util::Seconds ring_cost =
        coll::alpha_beta_cost(ring, payload, ab).total;
    const util::Seconds doubling_cost =
        coll::alpha_beta_cost(doubling, payload, ab).total;
    return doubling_cost < ring_cost ? std::move(doubling) : std::move(ring);
  }

  /// kResume: re-place a suspended remainder.  Grant widths are meaningless
  /// here — the remainder needs exactly one host per participant — and the
  /// participant set never shrinks (hosts checkpoint at BSP boundaries, so
  /// a node fault costs a remap, not data; request.nodes is ignored).
  /// Preference order: the original ring positions when all free (physical
  /// == functional again), else the lowest-id free hosts (deterministic),
  /// carried by the schedule remap.
  [[nodiscard]] RenegotiationOutcome resume(
      const ElectricalExecution& current,
      const RenegotiationRequest& request) {
    if (!slots_available()) return {};
    const std::optional<std::vector<topo::NodeId>> hosts =
        pick_hosts(current.participants);
    if (!hosts) return {};
    return {make_plan(schedule_tail(current.compact_, request.steps_done),
                      *hosts, current.participants, current.payload)};
  }

  /// kRestart: a brand-new plan among request.nodes carrying
  /// request.payload — the landing half of a cross-substrate migration, or
  /// a survivor restart after an eviction the remainder could not absorb.
  [[nodiscard]] RenegotiationOutcome restart(
      const RenegotiationRequest& request) {
    if (!slots_available() || request.nodes.size() < 2) return {};
    const std::optional<std::vector<topo::NodeId>> hosts =
        pick_hosts(request.nodes);
    if (!hosts) return {};
    return {make_plan(
        best_compact_schedule(static_cast<std::uint32_t>(request.nodes.size()),
                              request.payload),
        *hosts, request.nodes, request.payload)};
  }

  /// One free host per participant: the participants' own ring positions
  /// when all free, else the lowest-id free hosts; nullopt when the fabric
  /// cannot seat them all.
  [[nodiscard]] std::optional<std::vector<topo::NodeId>> pick_hosts(
      const std::vector<topo::NodeId>& participants) const {
    if (can_place(participants, 1)) return participants;
    std::vector<topo::NodeId> hosts;
    const std::size_t needed = participants.size();
    for (topo::NodeId h = 0; h < host_busy_.size() && hosts.size() < needed;
         ++h) {
      if (!host_busy_[h]) hosts.push_back(h);
    }
    if (hosts.size() < needed) return std::nullopt;
    return hosts;
  }

  /// Claim `hosts` (which must be free) and build the plan that runs
  /// `compact` for `participants` on them.  Shared placement tail of both
  /// place() and renegotiate().
  [[nodiscard]] std::unique_ptr<SubstrateExecution> make_plan(
      const coll::Schedule& compact, const std::vector<topo::NodeId>& hosts,
      const std::vector<topo::NodeId>& participants, util::Bytes payload) {
    auto plan = std::make_unique<ElectricalExecution>();
    plan->compact_ = compact;
    plan->functional_ =
        remap_onto_hosts(compact, participants, cluster_.num_hosts());
    plan->physical_ = remap_onto_hosts(compact, hosts, cluster_.num_hosts());
    plan->payload = payload;
    plan->participants = participants;
    plan->hosts_ = hosts;
    plan->holds_hosts = true;
    if (shared_) {
      plan->session = shared_->open_session();
      plan->has_session = true;
      session_plans_[plan->session] = plan.get();
    }
    for (const topo::NodeId host : hosts) host_busy_[host] = true;
    ++active_;
    return plan;
  }

  elec::ElectricalCluster cluster_;
  /// Quiet-network scratch timer (reset per step).  Mutable because the
  /// const routing probe predict_completion also needs a quiet baseline.
  mutable elec::StepFlowTimer timer_;
  ElectricalFallbackConfig config_;
  /// Engaged only for kTwoLevelShared.
  std::optional<elec::SharedFabricTimer> shared_;
  std::map<elec::SharedFabricTimer::SessionId, SubstrateExecution*>
      session_plans_;
  std::vector<StepRetiming> pending_retimings_;
  std::vector<bool> host_busy_;
  /// Hosts held down by quarantine_unit (fault injection), not by a tenant.
  std::vector<topo::NodeId> quarantined_hosts_;
  std::uint32_t active_ = 0;
  mutable std::map<std::pair<std::uint32_t, std::uint64_t>, util::Seconds>
      prediction_cache_;
};

}  // namespace

const char* electrical_fabric_name(ElectricalFabric fabric) {
  switch (fabric) {
    case ElectricalFabric::kStarExclusive:
      return "star-exclusive";
    case ElectricalFabric::kTwoLevelShared:
      return "two-level-shared";
  }
  return "?";
}

std::unique_ptr<ExecutionSubstrate> make_electrical_substrate(
    std::uint32_t num_hosts, const ElectricalFallbackConfig& config) {
  return std::make_unique<ElectricalSubstrate>(num_hosts, config);
}

}  // namespace wrht::runtime
