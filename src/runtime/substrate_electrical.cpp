// The electrical-fallback execution substrate: the alpha-beta/flow baseline
// fabric from src/elec serving overflow tenants when the optical spectrum
// saturates.
//
// Grant model — link capacity.  The fallback is a star cluster with one
// host per ring position; every host owns one full-duplex access link, and
// every flow between two hosts crosses exactly its endpoints' access links
// (the switch core is non-blocking).  An execution therefore claims its
// participants' access links exclusively: two placed executions can never
// share a link, which is precisely what makes timing each execution's steps
// on a private quiet FlowNetwork EXACT under max-min fair sharing, not an
// approximation.  Jobs whose participants overlap a placed execution wait.
//
// Schedules are the classic electrical collectives the paper benchmarks
// against: the chunked ring (bandwidth-optimal) or recursive doubling
// (latency-optimal), picked per job by the alpha-beta cost model and
// remapped from compact ranks onto the participants' host ids.  Per-step
// timing is the BSP step makespan from elec::StepFlowTimer — the same model
// as elec::run_on_electrical, produced one step at a time so electrical
// steps interleave with optical tenants' events on the shared clock.
#include "runtime/substrate.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "coll/algorithms.hpp"
#include "coll/cost_model.hpp"
#include "elec/alphabeta.hpp"
#include "elec/schedule_runner.hpp"

namespace wrht::runtime {

namespace {

/// Rewrite a compact-rank schedule (nodes 0..k-1) onto the participants'
/// host ids inside a `num_hosts`-wide id space.  Chunk structure is
/// untouched, so payload splitting and functional semantics carry over.
coll::Schedule remap_onto_hosts(const coll::Schedule& compact,
                                const std::vector<topo::NodeId>& hosts,
                                std::uint32_t num_hosts) {
  coll::Schedule mapped(compact.name() + "-on-hosts", num_hosts,
                        compact.num_chunks());
  for (const coll::Step& step : compact.steps()) {
    mapped.add_step();
    for (const coll::Transfer& t : step.transfers) {
      coll::Transfer placed = t;
      placed.src = hosts[t.src];
      placed.dst = hosts[t.dst];
      mapped.add_transfer(placed);
    }
  }
  return mapped;
}

class ElectricalExecution final : public SubstrateExecution {
 public:
  [[nodiscard]] const coll::Schedule& schedule() const override {
    return schedule_;
  }
  [[nodiscard]] std::size_t num_steps() const override {
    return schedule_.num_steps();
  }
  /// Electrical grants are host links, not spectrum; the invalid band tells
  /// records/traces "no band held".
  [[nodiscard]] WavelengthBand band() const override { return {}; }
  [[nodiscard]] std::uint32_t grant() const override {
    return holds_hosts ? static_cast<std::uint32_t>(hosts.size()) : 0;
  }

  coll::Schedule schedule_;
  util::Bytes payload;
  std::vector<topo::NodeId> hosts;
  bool holds_hosts = false;
};

class ElectricalSubstrate final : public ExecutionSubstrate {
 public:
  ElectricalSubstrate(std::uint32_t num_hosts,
                      const ElectricalFallbackConfig& config)
      : cluster_(elec::ElectricalCluster::star(num_hosts, config.link)),
        timer_(cluster_),
        config_(config),
        host_busy_(num_hosts, false) {}

  [[nodiscard]] SubstrateKind kind() const override {
    return SubstrateKind::kElectrical;
  }
  [[nodiscard]] const char* name() const override { return "electrical"; }
  [[nodiscard]] const SubstrateCaps& caps() const override {
    // No mid-flight renegotiation: a BSP flow step has no shared-spectrum
    // boundary to renegotiate at, and host claims are all-or-nothing.
    // Batching still applies (per-step alpha dominates small jobs here
    // too), and a fused peer rides host links, not a wavelength band, so no
    // grant-width floor constrains fusion.
    static constexpr SubstrateCaps kCaps{/*preemptible=*/false,
                                         /*resizable=*/false,
                                         /*batchable=*/true,
                                         /*fuse_respects_grant=*/false};
    return kCaps;
  }

  [[nodiscard]] std::uint32_t largest_free_grant() const override {
    // A unit of capacity exists only when BOTH gates could pass: a
    // concurrency slot and at least one free host link.
    if (!slots_available()) return 0;
    const bool any_host_free =
        std::find(host_busy_.begin(), host_busy_.end(), false) !=
        host_busy_.end();
    return any_host_free ? 1u : 0u;
  }
  [[nodiscard]] std::uint32_t free_grant_total() const override {
    if (!slots_available()) return 0;
    std::uint32_t free = 0;
    for (const bool busy : host_busy_) free += busy ? 0u : 1u;
    return free;
  }

  [[nodiscard]] bool can_place(const std::vector<topo::NodeId>& participants,
                               std::uint32_t) const override {
    if (!slots_available()) return false;
    return std::none_of(
        participants.begin(), participants.end(),
        [this](topo::NodeId host) { return host_busy_[host]; });
  }

  [[nodiscard]] std::unique_ptr<SubstrateExecution> place(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t) override {
    if (!can_place(participants, 1)) {
      std::fprintf(stderr,
                   "ElectricalSubstrate: placement on busy hosts — "
                   "arbitration bug\n");
      std::abort();
    }
    auto plan = std::make_unique<ElectricalExecution>();
    plan->schedule_ = schedule_for(participants, payload);
    plan->payload = payload;
    plan->hosts = participants;
    plan->holds_hosts = true;
    for (const topo::NodeId host : participants) host_busy_[host] = true;
    ++active_;
    return plan;
  }

  [[nodiscard]] StepTiming time_step(SubstrateExecution& e, std::size_t step,
                                     util::Seconds now) override {
    auto& exec = static_cast<ElectricalExecution&>(e);
    StepTiming out;
    // BSP semantics, same as elec::run_on_electrical: the step's duration
    // is its flow makespan (route latency included); the next step starts
    // only when this one fully completes.
    out.end = now + timer_.time_step(exec.schedule_, step, exec.payload);
    return out;
  }

  void release(SubstrateExecution& e) override {
    auto& exec = static_cast<ElectricalExecution&>(e);
    if (!exec.holds_hosts) return;
    for (const topo::NodeId host : exec.hosts) host_busy_[host] = false;
    exec.holds_hosts = false;
    --active_;
  }

  [[nodiscard]] util::Seconds predict_makespan(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t) const override {
    // The alpha-beta analytic cost of the schedule this substrate would
    // run.  On the patterns schedule_for picks (ring steps, pairwise
    // exchanges) the flow simulation and the analytic model agree exactly,
    // so this is a faithful prediction, not a bound.  Admission re-asks
    // this for every queued candidate on every event, and the answer
    // depends only on (rank count, payload) for a fixed cluster — memoized
    // so the O(k^2)-transfer schedule is not rebuilt each time.
    const auto k = static_cast<std::uint32_t>(participants.size());
    const std::pair<std::uint32_t, std::uint64_t> key{k, payload.count()};
    const auto cached = prediction_cache_.find(key);
    if (cached != prediction_cache_.end()) return cached->second;
    const util::Seconds predicted =
        coll::alpha_beta_cost(best_compact_schedule(k, payload), payload,
                              elec::alpha_beta_for(cluster_))
            .total;
    prediction_cache_.emplace(key, predicted);
    return predicted;
  }

 private:
  [[nodiscard]] bool slots_available() const {
    return config_.max_concurrent == 0 || active_ < config_.max_concurrent;
  }

  /// Cheapest of the baseline all-reduces for k ranks under this cluster's
  /// alpha-beta parameters: chunked ring (bandwidth-optimal) vs recursive
  /// doubling (latency-optimal; only a candidate at power-of-two k, where
  /// it needs no fold/unfold steps).
  [[nodiscard]] coll::Schedule best_compact_schedule(std::uint32_t k,
                                                     util::Bytes payload) const {
    coll::Schedule ring = coll::ring_allreduce(k);
    if ((k & (k - 1)) != 0) return ring;
    coll::Schedule doubling = coll::recursive_doubling(k);
    const coll::AlphaBetaParams ab = elec::alpha_beta_for(cluster_);
    const util::Seconds ring_cost =
        coll::alpha_beta_cost(ring, payload, ab).total;
    const util::Seconds doubling_cost =
        coll::alpha_beta_cost(doubling, payload, ab).total;
    return doubling_cost < ring_cost ? std::move(doubling) : std::move(ring);
  }

  [[nodiscard]] coll::Schedule schedule_for(
      const std::vector<topo::NodeId>& participants,
      util::Bytes payload) const {
    return remap_onto_hosts(
        best_compact_schedule(static_cast<std::uint32_t>(participants.size()),
                              payload),
        participants, cluster_.num_hosts());
  }

  elec::ElectricalCluster cluster_;
  elec::StepFlowTimer timer_;
  ElectricalFallbackConfig config_;
  std::vector<bool> host_busy_;
  std::uint32_t active_ = 0;
  mutable std::map<std::pair<std::uint32_t, std::uint64_t>, util::Seconds>
      prediction_cache_;
};

}  // namespace

std::unique_ptr<ExecutionSubstrate> make_electrical_substrate(
    std::uint32_t num_hosts, const ElectricalFallbackConfig& config) {
  return std::make_unique<ElectricalSubstrate>(num_hosts, config);
}

}  // namespace wrht::runtime
