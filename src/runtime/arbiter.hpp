// Spectrum arbitration between concurrent jobs.
//
// The arbiter partitions the ring's wavelength space [0, W) into disjoint
// contiguous bands, one per running job.  Each job builds its Wrht schedule
// against a private budget of band.width wavelengths and the runtime shifts
// every assignment up by band.base, so two admitted jobs can never collide
// on a (span, wavelength, direction) cell — the DES conflict rule is
// preserved by construction, with the SpectrumMap still checking every
// reservation as a backstop.
//
// Bands are handed out first-fit.  Queries normally run over a sorted
// free-interval list (O(#holes) instead of O(W) per grant/probe — the
// difference matters once a million-job run calls can_place on every
// admission attempt); a per-wavelength occupancy bitmap is maintained
// alongside it in every mode, both as the double-free / corruption guard
// and as the reference structure for the naive scan path
// (`interval_index = false`), which reproduces the original O(W) bitmap
// scans for benchmark baselines.  Both paths make identical first-fit
// decisions by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/job.hpp"

namespace wrht::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace wrht::obs

namespace wrht::runtime {

class SpectrumArbiter {
 public:
  /// A maximal free run [base, base + width); the interval list is sorted
  /// by base, disjoint, and never adjacent (merged eagerly on release).
  struct FreeInterval {
    std::uint32_t base;
    std::uint32_t width;

    friend bool operator==(const FreeInterval&, const FreeInterval&) =
        default;
  };

  explicit SpectrumArbiter(std::uint32_t total_wavelengths,
                           bool interval_index = true);

  /// Register the arbiter's metrics with `registry`: band grant/release/
  /// grow/shrink counters and the "optical.spectrum_occupancy" sampled
  /// gauge (fraction of the spectrum inside granted bands, updated on every
  /// mutation so sampler snapshots are exact).  The registry must outlive
  /// the arbiter.
  void attach_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] std::uint32_t total() const { return total_; }
  /// Wavelengths not currently inside any granted band.
  [[nodiscard]] std::uint32_t free_total() const { return free_; }
  /// Width of the widest contiguous free run (0 when fully allocated).
  [[nodiscard]] std::uint32_t largest_free_block() const;
  [[nodiscard]] std::uint32_t bands_outstanding() const { return bands_; }

  /// First-fit allocation of a contiguous band of `width` wavelengths.
  /// Returns nullopt when no free run is wide enough.  width must be >= 1.
  [[nodiscard]] std::optional<WavelengthBand> allocate(std::uint32_t width);

  /// Placed allocation: claim exactly [base, base + width).  Returns
  /// nullopt when any wavelength of the range is taken (the caller's
  /// placement went stale) — the planner's chosen placements land here, and
  /// first-fit remains the policy default through allocate().
  [[nodiscard]] std::optional<WavelengthBand> allocate_at(std::uint32_t base,
                                                          std::uint32_t width);

  /// Snapshot of the maximal free runs, sorted by base.  In indexed mode
  /// this is the interval list itself; in naive mode it is recomputed from
  /// the occupancy bitmap — both report identical intervals, so planner
  /// decisions are bit-identical across the flat_hot_path toggle.
  [[nodiscard]] std::vector<FreeInterval> free_intervals() const;

  /// Return a band obtained from allocate().  Aborts on a band that is not
  /// currently allocated exactly as given (double-free / corruption guard).
  void release(const WavelengthBand& band);

  /// Elastic resize, upward half: widen `band` in place into adjacent free
  /// wavelengths (above first, then below) until it reaches `max_width` or
  /// runs out of free neighbors.  Returns the possibly-larger band; the
  /// caller's old band handle is superseded.
  [[nodiscard]] WavelengthBand grow(const WavelengthBand& band,
                                    std::uint32_t max_width);

  /// Elastic resize, downward half: give back the outer wavelengths of
  /// `band`, keeping exactly `keep` (which must be a non-empty sub-range of
  /// `band`).
  void shrink_to(const WavelengthBand& band, const WavelengthBand& keep);

  /// Width of the widest contiguous free run if `also_free` were released —
  /// the what-if probe behind shrink-under-pressure: shrink only when the
  /// surrendered range would actually make a starved job admissible.
  [[nodiscard]] std::uint32_t largest_free_block_assuming(
      const WavelengthBand& also_free) const;

 private:
  /// Refresh the occupancy gauge after a mutation (no-op when no registry
  /// is attached).
  void publish_occupancy();

  /// Remove [base, base + width) from the free-interval list.  The range
  /// must lie inside a single interval (it is free by the caller's check).
  void index_take(std::uint32_t base, std::uint32_t width);
  /// Add [base, base + width) back, merging with adjacent intervals.
  void index_free(std::uint32_t base, std::uint32_t width);

  std::uint32_t total_;
  std::uint32_t free_;
  std::uint32_t bands_ = 0;
  bool indexed_;
  std::vector<bool> taken_;  // per wavelength; guard + naive-path reference
  std::vector<FreeInterval> free_intervals_;  // unused when !indexed_
  /// Metric handles; nullptr (zero-overhead emission) without a registry.
  obs::Counter* allocations_ = nullptr;
  obs::Counter* releases_ = nullptr;
  obs::Counter* grows_ = nullptr;
  obs::Counter* shrinks_ = nullptr;
  obs::Gauge* occupancy_ = nullptr;
};

}  // namespace wrht::runtime
