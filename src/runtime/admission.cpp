#include "runtime/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace wrht::runtime {

const char* fairness_policy_name(FairnessPolicy policy) {
  switch (policy) {
    case FairnessPolicy::kFifo:
      return "fifo";
    case FairnessPolicy::kSmallestFirst:
      return "smallest-first";
    case FairnessPolicy::kWeightedFair:
      return "weighted-fair";
    case FairnessPolicy::kPriorityPreempt:
      return "priority-preempt";
  }
  return "?";
}

QueueEntry JobQueue::take(std::size_t index) {
  WRHT_REQUIRE(index < size(), "JobQueue: take(" << index << ") out of range");
  if (flat_ && index == 0) {
    QueueEntry entry = std::move(entries_[head_]);
    ++head_;
    // Amortized prefix compaction: erase the dead front only once it is
    // both sizable and at least half the storage, so a million-job backlog
    // pays O(1) per head take instead of O(backlog).
    if (head_ >= 64 && head_ * 2 >= entries_.size()) {
      entries_.erase(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return entry;
  }
  const std::size_t pos = head_ + index;
  QueueEntry entry = std::move(entries_[pos]);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(pos));
  return entry;
}

bool JobQueue::release_hold(JobId id) {
  for (std::size_t i = head_; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_[i].held = false;
      return true;
    }
  }
  return false;
}

namespace {

/// Clamp a candidate grant into [min, requested] given the widest free run.
/// Returns 0 when even the minimum does not fit.
std::uint32_t feasible_grant(const QueueEntry& job, std::uint32_t share,
                             std::uint32_t largest_free_block) {
  const std::uint32_t want =
      std::clamp(share, job.min_wavelengths, job.requested_wavelengths);
  const std::uint32_t grant = std::min(want, largest_free_block);
  return grant >= job.min_wavelengths ? grant : 0;
}

std::optional<AdmissionDecision> admit_fifo(const JobQueue& queue,
                                            std::uint32_t largest_free_block) {
  // Strict arrival order: only the oldest eligible entry may start (a held
  // entry is waiting out its fuse window by choice, an electrically-pinned
  // one is not asking for spectrum at all — neither admits nor blocks the
  // line).
  std::optional<std::size_t> head;
  if (queue.flat()) {
    // Entries are stored in seq order (JobQueue::push invariant), so the
    // first eligible entry IS the min-seq one — identical pick, O(prefix of
    // held/pinned entries) instead of O(queue).
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (optically_eligible(queue.at(i))) {
        head = i;
        break;
      }
    }
  } else {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (!optically_eligible(queue.at(i))) continue;
      if (!head || queue.at(i).seq < queue.at(*head).seq) head = i;
    }
  }
  if (!head) return std::nullopt;
  const std::uint32_t grant = feasible_grant(
      queue.at(*head), queue.at(*head).requested_wavelengths,
      largest_free_block);
  if (grant == 0) return std::nullopt;
  return AdmissionDecision{*head, grant};
}

std::optional<AdmissionDecision> admit_priority(
    const JobQueue& queue, std::uint32_t largest_free_block,
    util::Seconds now, util::Seconds aging_half_life) {
  // Highest priority (ties on arrival) owns the line, exactly like FIFO's
  // head — lower-priority jobs never slip past it into a band the runtime
  // is preempting for it.
  const std::optional<std::size_t> head =
      priority_head(queue, now, aging_half_life);
  if (!head) return std::nullopt;
  const std::uint32_t grant = feasible_grant(
      queue.at(*head), queue.at(*head).requested_wavelengths,
      largest_free_block);
  if (grant == 0) return std::nullopt;
  return AdmissionDecision{*head, grant};
}

std::optional<AdmissionDecision> admit_smallest(
    const JobQueue& queue, std::uint32_t largest_free_block) {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const QueueEntry& job = queue.at(i);
    if (!optically_eligible(job)) continue;
    if (feasible_grant(job, job.requested_wavelengths, largest_free_block) ==
        0) {
      continue;
    }
    if (!best || job.payload < queue.at(*best).payload ||
        (job.payload == queue.at(*best).payload &&
         job.seq < queue.at(*best).seq)) {
      best = i;
    }
  }
  if (!best) return std::nullopt;
  const QueueEntry& job = queue.at(*best);
  return AdmissionDecision{
      *best,
      feasible_grant(job, job.requested_wavelengths, largest_free_block)};
}

std::optional<AdmissionDecision> admit_weighted(
    const JobQueue& queue, std::uint32_t largest_free_block,
    std::uint32_t free_total) {
  double total_weight = 0.0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (!optically_eligible(queue.at(i))) continue;
    total_weight += std::max(queue.at(i).weight, 0.0);
  }
  if (total_weight <= 0.0) return admit_fifo(queue, largest_free_block);

  // Heaviest queued job first, with a band proportional to its weight share
  // of the currently free spectrum — lighter peers admitted right after get
  // their own proportional slice instead of finding the pool drained.
  std::optional<std::size_t> best;
  std::uint32_t best_grant = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const QueueEntry& job = queue.at(i);
    if (!optically_eligible(job)) continue;
    const double fraction = std::max(job.weight, 0.0) / total_weight;
    const auto share = static_cast<std::uint32_t>(
        static_cast<double>(free_total) * fraction);
    const std::uint32_t grant =
        feasible_grant(job, std::max(share, 1u), largest_free_block);
    if (grant == 0) continue;
    const bool wins =
        !best || job.weight > queue.at(*best).weight ||
        (job.weight == queue.at(*best).weight && job.seq < queue.at(*best).seq);
    if (wins) {
      best = i;
      best_grant = grant;
    }
  }
  if (!best) return std::nullopt;
  return AdmissionDecision{*best, best_grant};
}

}  // namespace

std::int32_t aged_priority(std::int32_t priority, util::Seconds waiting_since,
                           util::Seconds now, util::Seconds half_life) {
  if (half_life.value() <= 0.0) return priority;
  const double wait = (now - waiting_since).value();
  if (wait <= 0.0) return priority;
  // One class per half-life of wait, capped: the boost must eventually top
  // out (so a forgotten tenant cannot overflow the type), but 64 classes is
  // far above any real priority spread in the system.
  const double classes = std::min(std::floor(wait / half_life.value()), 64.0);
  const std::int64_t aged = static_cast<std::int64_t>(priority) +
                            static_cast<std::int64_t>(classes);
  return static_cast<std::int32_t>(
      std::min<std::int64_t>(aged, std::numeric_limits<std::int32_t>::max()));
}

std::optional<std::size_t> priority_head(const JobQueue& queue,
                                         util::Seconds now,
                                         util::Seconds aging_half_life) {
  std::optional<std::size_t> head;
  std::int32_t head_priority = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const QueueEntry& job = queue.at(i);
    if (!optically_eligible(job)) continue;
    const std::int32_t effective =
        aged_priority(job.priority, job.arrival, now, aging_half_life);
    if (!head || effective > head_priority ||
        (effective == head_priority && job.seq < queue.at(*head).seq)) {
      head = i;
      head_priority = effective;
    }
  }
  return head;
}

std::optional<AdmissionDecision> next_admission(
    const JobQueue& queue, FairnessPolicy policy,
    std::uint32_t largest_free_block, std::uint32_t free_total,
    util::Seconds now, util::Seconds aging_half_life) {
  if (queue.empty() || largest_free_block == 0) return std::nullopt;
  switch (policy) {
    case FairnessPolicy::kFifo:
      return admit_fifo(queue, largest_free_block);
    case FairnessPolicy::kSmallestFirst:
      return admit_smallest(queue, largest_free_block);
    case FairnessPolicy::kWeightedFair:
      return admit_weighted(queue, largest_free_block, free_total);
    case FairnessPolicy::kPriorityPreempt:
      return admit_priority(queue, largest_free_block, now, aging_half_life);
  }
  return std::nullopt;
}

}  // namespace wrht::runtime
