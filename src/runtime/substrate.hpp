// Pluggable execution substrates for the multi-tenant runtime.
//
// The runtime's serving loop (admission, fairness, batching, the shared
// clock, oracle validation) is substrate-agnostic: what it needs from a
// fabric is "claim resources for this participant set, give me a schedule,
// time its steps on my clock, release".  ExecutionSubstrate is that seam.
// Two implementations exist:
//
//  * the OPTICAL substrate — the paper's WDM ring.  Grants are contiguous
//    wavelength bands carved out of the shared spectrum by a
//    SpectrumArbiter; schedules are Wrht builds sized to the band; per-step
//    timing claims (span, wavelength, direction) cells on the shared
//    SpectrumMap and pays the paper's per-step optical overheads.  Supports
//    step-boundary renegotiation (preemption and elastic resize) via
//    core::rebuild_wrht_remainder.
//
//  * the ELECTRICAL substrate — the alpha-beta/flow baseline fabric from
//    src/elec.  Grants are exclusive claims on the participants' host
//    access links in a star cluster (link-capacity grant model: with every
//    flow crossing only its endpoints' access links, host exclusivity makes
//    the per-execution quiet-network flow timing exact).  Schedules are the
//    classic electrical collectives (chunked ring / recursive doubling,
//    picked by the alpha-beta cost model); per-step timing is the BSP step
//    makespan under max-min fair sharing, exactly elec::run_on_electrical's
//    model, produced incrementally so electrical steps interleave with
//    optical tenants on one clock.
//
// A substrate declares what it can renegotiate through SubstrateCaps; the
// runtime only exercises preemption/resize against substrates that opt in.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coll/schedule.hpp"
#include "elec/topology.hpp"
#include "optical/assign.hpp"
#include "optical/params.hpp"
#include "runtime/job.hpp"
#include "runtime/planner.hpp"
#include "sim/simulator.hpp"
#include "topo/ring.hpp"

namespace wrht::obs {
class MetricsRegistry;
}  // namespace wrht::obs

namespace wrht::runtime {

/// What a substrate lets the runtime renegotiate at step boundaries.
struct SubstrateCaps {
  /// Executions can suspend at a step boundary, surrender their grant, and
  /// resume later on a rebuilt remainder.
  bool preemptible = false;
  /// Grants can grow/shrink mid-flight (elastic resize).
  bool resizable = false;
  /// Same-group small jobs may fuse into one execution here.
  bool batchable = false;
  /// Fused peers execute inside the lead's grant, so a peer's
  /// min_wavelengths floor must hold against the granted width.  False when
  /// grants are not wavelength-denominated (electrical host claims).
  bool fuse_respects_grant = false;
  /// Step completion times may move after time_step() returned, because
  /// another tenant's flows changed the sharing of this substrate's fabric
  /// (shared electrical uplinks).  The runtime must drain take_retimings()
  /// after every time_step() and re-schedule the affected step-completion
  /// events on the sim clock.
  bool retimes_steps = false;
  /// A kResume renegotiation may re-place a suspended execution on a
  /// DIFFERENT resource set than it held before (electrical hosts are
  /// fungible: any free host set of the right size carries the remainder
  /// after a schedule remap).  False for substrates whose resume merely
  /// re-acquires the same kind of grant (an optical band is positionless
  /// spectrum either way).
  bool remaps_on_resume = false;
};

/// Per-execution state owned by a substrate: the schedule still ahead and
/// the resources backing it.  The runtime folds executed steps into its own
/// composite-oracle checkpoint; the plan always describes only the work
/// remaining (the whole job at admission, the rebuilt remainder after a
/// renegotiation).
class SubstrateExecution {
 public:
  virtual ~SubstrateExecution() = default;

  /// Schedule for the steps still ahead.
  [[nodiscard]] virtual const coll::Schedule& schedule() const = 0;
  [[nodiscard]] virtual std::size_t num_steps() const = 0;
  /// Spectrum band backing this plan.  Off-spectrum substrates return the
  /// invalid {0, 0} band; JobRecord keeps it as "no band held".
  [[nodiscard]] virtual WavelengthBand band() const = 0;
  /// Current grant in the substrate's capacity units (wavelengths for
  /// optical, host-link claims for electrical).
  [[nodiscard]] virtual std::uint32_t grant() const = 0;
  /// Physical hosts backing this plan, in participant-rank order (hosts[i]
  /// carries participants[i]'s data).  Empty for substrates whose grants
  /// are not host-denominated (optical bands).  After a remapped resume
  /// this differs from the participant list — the runtime's preemption
  /// planner reads it to know which host claims a victim would surrender.
  [[nodiscard]] virtual std::vector<topo::NodeId> hosts() const { return {}; }
};

/// Timing of one executed step on the shared clock.
struct StepTiming {
  /// Absolute completion time of the step, including the substrate's
  /// inter-step barrier.  On a retiming substrate this is the prediction
  /// under the sharing in force right now; later arrivals may move it
  /// (surfaced through take_retimings).
  util::Seconds end{0.0};
  std::uint64_t retunes = 0;
  /// (arc, wavelength) cells claimed on the shared spectrum map (0 for
  /// substrates without shared-medium reservations).
  std::uint64_t reservations = 0;
  /// Duration this step would take on a quiet network (no other tenants) —
  /// the denominator of the per-job contention slowdown.  Zero when the
  /// substrate has no meaningful quiet baseline (optical bands are private
  /// by construction).
  util::Seconds quiet{0.0};
};

/// A correction to an earlier StepTiming: `exec`'s current step now ends at
/// `end` because another tenant's flows changed the fabric sharing.
struct StepRetiming {
  SubstrateExecution* exec = nullptr;
  util::Seconds end{0.0};
};

/// One typed entry point for every way an execution's contract can change
/// at a step boundary.  Historically resume / grow / shrink were separate
/// virtuals on ExecutionSubstrate; faults (node loss, wavelength
/// degradation, cross-substrate migration) would each have needed yet
/// another copy of the suspend-rebuild-resume dance, so the verbs collapsed
/// into one request type and kEvict / kRestart became new kinds instead of
/// new methods.
struct RenegotiationRequest {
  enum class Kind : std::uint8_t {
    /// Re-place a suspended execution: allocate a fresh grant of at most
    /// `width` units (refuse below `min_grant`) and rebuild the remainder
    /// after `steps_done` executed steps.  `nodes` may name failed
    /// participants to drop from the remainder's delivery set.
    kResume,
    /// Grow the current grant in place toward `width` when the rebuilt
    /// remainder gets strictly shorter; roll the grant back otherwise.
    kGrow,
    /// Shrink the current grant in place to exactly `width` units.
    kShrink,
    /// Rebuild the remainder after `steps_done` with the failed `nodes`
    /// dropped from its delivery set, on the SAME grant (survivor rebuild).
    /// Refused when a failed node still carries state the remainder needs —
    /// the caller must then fall back to kRestart among the survivors.
    kEvict,
    /// Brand-new plan for `nodes` / `payload` on a fresh grant of at most
    /// `width` units (refuse below `min_grant`), discarding any executed
    /// prefix.  Reads nothing from `current` — it may be null, or a plan
    /// owned by a different substrate (cross-substrate migration).
    kRestart,
  };

  Kind kind = Kind::kResume;
  /// Steps of the current plan already executed (the prefix the runtime
  /// folds into its composite-oracle checkpoint).
  std::size_t steps_done = 0;
  /// Grant-width operand; meaning depends on kind (desired ceiling for
  /// kResume/kRestart, growth ceiling for kGrow, exact keep for kShrink;
  /// ignored by kEvict, which keeps the current grant).
  std::uint32_t width = 0;
  /// Floor below which kResume / kRestart refuse rather than thrash.
  std::uint32_t min_grant = 1;
  /// kResume / kEvict: failed nodes to drop from the remainder's delivery
  /// set.  kRestart: the (surviving) participant set of the fresh plan.
  std::vector<topo::NodeId> nodes;
  /// kRestart only: payload of the fresh plan.
  util::Bytes payload{0};

  [[nodiscard]] static RenegotiationRequest resume(
      std::size_t steps_done, std::uint32_t desired, std::uint32_t min_grant,
      std::vector<topo::NodeId> evict = {}) {
    return {Kind::kResume, steps_done, desired, min_grant, std::move(evict),
            util::Bytes(0)};
  }
  [[nodiscard]] static RenegotiationRequest grow(std::size_t steps_done,
                                                std::uint32_t max_grant) {
    return {Kind::kGrow, steps_done, max_grant, 1, {}, util::Bytes(0)};
  }
  [[nodiscard]] static RenegotiationRequest shrink(std::size_t steps_done,
                                                  std::uint32_t keep) {
    return {Kind::kShrink, steps_done, keep, 1, {}, util::Bytes(0)};
  }
  [[nodiscard]] static RenegotiationRequest evict(
      std::size_t steps_done, std::vector<topo::NodeId> failed) {
    return {Kind::kEvict, steps_done, 0, 1, std::move(failed),
            util::Bytes(0)};
  }
  [[nodiscard]] static RenegotiationRequest restart(
      std::vector<topo::NodeId> participants, util::Bytes payload,
      std::uint32_t desired, std::uint32_t min_grant) {
    return {Kind::kRestart, 0,      desired, min_grant, std::move(participants),
            payload};
  }
};

[[nodiscard]] const char* renegotiation_kind_name(
    RenegotiationRequest::Kind kind);

/// Result of a renegotiation: the replacement plan (owning its grant), or
/// nothing — a refusal leaves `current` untouched.  On acceptance the old
/// plan's grant has been consumed in place (kGrow / kShrink / kEvict) or
/// must already have been released (kResume / kRestart); the runtime folds
/// the executed prefix and re-proves the composite schedule.
struct RenegotiationOutcome {
  std::unique_ptr<SubstrateExecution> plan;
  [[nodiscard]] bool accepted() const { return plan != nullptr; }
};

class ExecutionSubstrate {
 public:
  virtual ~ExecutionSubstrate() = default;

  [[nodiscard]] virtual SubstrateKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual const SubstrateCaps& caps() const = 0;

  /// Capacity view the admission policies reason over, in grant units.
  [[nodiscard]] virtual std::uint32_t largest_free_grant() const = 0;
  [[nodiscard]] virtual std::uint32_t free_grant_total() const = 0;

  /// True when a grant of `min_grant` units for `participants` could be
  /// claimed right now.
  [[nodiscard]] virtual bool can_place(
      const std::vector<topo::NodeId>& participants,
      std::uint32_t min_grant) const = 0;

  /// Claim `grant` units and build the execution plan for an all-reduce of
  /// `payload` among `participants`.  The caller must have established
  /// feasibility (optical: the arbiter advertised a free run; electrical:
  /// can_place said yes) — an unsatisfiable claim is an arbitration bug and
  /// aborts, never a quiet failure.
  [[nodiscard]] virtual std::unique_ptr<SubstrateExecution> place(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t grant) = 0;

  /// Execute step `step` of `exec` starting at `now`: claim any per-step
  /// shared-medium resources, schedule their release events, and return the
  /// step's completion time.  The caller owns the step-boundary event.
  [[nodiscard]] virtual StepTiming time_step(SubstrateExecution& exec,
                                             std::size_t step,
                                             util::Seconds now) = 0;

  /// Release exec's standing grant (band / host links) at time `now` on the
  /// shared clock.  Idempotent; the plan itself survives for a later
  /// kResume renegotiation.  Retiming substrates need the clock to settle
  /// the execution's last flows out of the shared fabric.
  virtual void release(SubstrateExecution& exec, util::Seconds now) = 0;

  /// Step-completion corrections accumulated since the last drain (see
  /// SubstrateCaps::retimes_steps).  Ownership of the entries passes to the
  /// caller; for an execution appearing twice, the later entry supersedes.
  [[nodiscard]] virtual std::vector<StepRetiming> take_retimings() {
    return {};
  }

  /// Peak utilization (fraction of capacity, in [0,1]) per fabric link over
  /// the run so far.  Empty for substrates without per-link accounting.
  [[nodiscard]] virtual std::vector<double> link_peak_utilization() const {
    return {};
  }

  /// CURRENT per-link utilization — the instantaneous counterpart of
  /// link_peak_utilization, as of the fabric's last rate recomputation.
  /// Empty for substrates without per-link accounting.
  [[nodiscard]] virtual std::vector<double> link_utilization() const {
    return {};
  }

  /// Advisory snapshot of the demand still waiting for THIS substrate's
  /// capacity: the minimum grants (in this substrate's units) of queued
  /// jobs and suspended executions, excluding whatever the runtime is about
  /// to place.  Placement-planning substrates (the optical planner policy)
  /// score candidate placements jointly against this demand; the default
  /// ignores it.  The runtime refreshes it immediately before each place()
  /// or renegotiate() call, so a substrate may treat it as current.
  virtual void note_pending_demand(const std::vector<std::uint32_t>& min_grants) {
    (void)min_grants;
  }

  /// Register the substrate's own metrics (grant-churn counters, occupancy
  /// and utilization gauges) with `registry` and keep the handles for the
  /// run.  Called at most once, before any placement; the default registers
  /// nothing.  The registry must outlive the substrate.
  virtual void attach_metrics(obs::MetricsRegistry& registry) {
    (void)registry;
  }

  /// End-of-run self audit.  A substrate with an independent whole-horizon
  /// oracle (the shared electrical fabric replays every logged flow into a
  /// fresh network) re-proves its incremental timing here and ABORTS on any
  /// disagreement — mirroring the fatal semantics of a wavelength conflict.
  /// Returns the number of steps audited (0 when there is nothing to
  /// check).
  [[nodiscard]] virtual std::uint64_t self_check() const { return 0; }

  /// Predicted completion time of a fresh `grant`-unit execution — the
  /// hybrid cost-model placement signal (WRHT formula time vs. alpha-beta).
  [[nodiscard]] virtual util::Seconds predict_makespan(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t grant) const = 0;

  /// Congestion-aware routing signal: the predicted ABSOLUTE completion
  /// time of a fresh execution submitted at `now`, folding in what the
  /// substrate knows about its current state — the live residual bandwidth
  /// of shared fabric links (electrical), or the expected wait for a free
  /// spectrum band (optical).  On an idle substrate this equals
  /// now + predict_makespan, which is also the default for substrates with
  /// no congestion signal to fold in.
  [[nodiscard]] virtual util::Seconds predict_completion(
      const std::vector<topo::NodeId>& participants, util::Bytes payload,
      std::uint32_t grant, util::Seconds now) const;

  /// THE step-boundary renegotiation entry point (meaningful only when
  /// caps() opt in; the default refuses every kind).  `current` is the plan
  /// being renegotiated — null allowed only for kRestart, which reads
  /// nothing from it.  See RenegotiationRequest for per-kind semantics.
  [[nodiscard]] virtual RenegotiationOutcome renegotiate(
      SubstrateExecution* current, const RenegotiationRequest& request);

  /// What-if probe: largest free grant if `exec` kept only `keep` units of
  /// its current grant (the shrink-under-pressure decision signal).
  [[nodiscard]] virtual std::uint32_t free_grant_if_kept(
      const SubstrateExecution& exec, std::uint32_t keep) const;

  /// Take one grant unit (a wavelength index for optical substrates, a host
  /// id for electrical ones) out of service — the fault injector's
  /// quarantine hook.  Succeeds only when the unit is currently free: a
  /// granted unit must first be renegotiated away from its holder.  The
  /// default has no per-unit capacity and refuses.
  [[nodiscard]] virtual bool quarantine_unit(std::uint32_t unit);
  /// Return a quarantined unit to service (repair).  No-op when `unit` is
  /// not quarantined.
  virtual void restore_unit(std::uint32_t unit);
};

/// The WDM-ring substrate (spectrum arbiter + Wrht builds + shared-map
/// per-step reservations).  `ring` and `sim` must outlive the substrate.
/// `flat_hot_path` selects the interval-indexed arbiter, batched per-step
/// spectrum-release events, and O(1) backlog-registry removal; false
/// restores the original per-transfer/linear-scan behaviour (identical
/// schedules and reports either way — it exists as a benchmark baseline).
/// `spectrum_policy` picks who places bands: the SpectrumPlanner (default)
/// or the historical greedy first-fit (ablation baseline).
[[nodiscard]] std::unique_ptr<ExecutionSubstrate> make_optical_substrate(
    const topo::RingTopology& ring, const optical::OpticalParams& params,
    optical::FitPolicy fit_policy, sim::Simulator& sim,
    bool flat_hot_path = true,
    SpectrumPolicy spectrum_policy = SpectrumPolicy::kPlanner);

/// Which electrical fabric backs the fallback substrate.
enum class ElectricalFabric : std::uint8_t {
  /// Star cluster, exclusive host access links: every execution times its
  /// steps on a private quiet network (exact, but tenants never contend).
  kStarExclusive,
  /// Oversubscribed two-level tree (hosts -> ToRs -> core), ONE shared
  /// FlowNetwork for the whole fabric: concurrent executions' flows share
  /// the ToR uplinks under max-min fairness, so a step's completion time
  /// depends on what other tenants are sending — and moves when they start
  /// or stop (SubstrateCaps::retimes_steps).
  kTwoLevelShared,
};

[[nodiscard]] const char* electrical_fabric_name(ElectricalFabric fabric);

/// Electrical-fallback fabric configuration.
struct ElectricalFallbackConfig {
  /// Host access-link spec of the cluster backing the fallback.
  elec::ElectricalParams link{};
  /// Hard cap on concurrent electrical executions (0 = bounded only by
  /// per-host link exclusivity).
  std::uint32_t max_concurrent = 0;
  ElectricalFabric fabric = ElectricalFabric::kStarExclusive;
  /// kTwoLevelShared shape: hosts per ToR switch, and the factor by which
  /// each ToR uplink is undersized relative to its hosts' aggregate access
  /// bandwidth (1.0 = full bisection, 4.0 = classic 4:1 oversubscription).
  std::uint32_t hosts_per_tor = 8;
  double oversubscription = 1.0;
  /// Keep the whole-horizon flow-replay log (every injected step + every
  /// clock advance) so self_check() can re-prove the incremental timing
  /// against a fresh network at end of run.  The log grows with the run —
  /// O(total steps) — which is exactly what a million-job serving benchmark
  /// cannot afford, so streaming front ends may turn it off; self_check()
  /// then audits nothing and returns 0.  Timing is bit-identical either
  /// way: the flag gates only the logging.
  bool replay_audit = true;
};

/// The flow-simulator fallback substrate over `num_hosts` hosts (one per
/// ring position, so any participant set maps 1:1 onto hosts), wired to the
/// fabric `config` picks.  Host claims stay exclusive on BOTH fabrics — a
/// host runs one tenant at a time; what kTwoLevelShared adds is contention
/// between different tenants' flows on the shared ToR uplinks.
[[nodiscard]] std::unique_ptr<ExecutionSubstrate> make_electrical_substrate(
    std::uint32_t num_hosts, const ElectricalFallbackConfig& config);

}  // namespace wrht::runtime
