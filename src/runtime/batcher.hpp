// Batching of small same-group all-reduces.
//
// The paper's cost model charges every schedule step a fixed optical
// overhead (tuning + transceiver lock + sync) that dwarfs the serialization
// time of a small gradient: a 2.5 ms retune against tens of microseconds of
// data.  When several queued jobs want an all-reduce over the *same*
// participant set, running them as separate schedules pays that overhead
// once per job per step.  All-reduce is elementwise, so concatenating the
// payloads and running ONE schedule over the combined vector computes every
// tenant's result while paying the per-step overhead once — the classic
// gradient-bucket fusion, applied across tenants.
//
// The batcher only fuses jobs whose payload is at or below a threshold
// (large jobs are bandwidth-bound; fusing them just delays everyone) and
// caps the batch size so one group cannot monopolize an admission slot.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/admission.hpp"
#include "util/units.hpp"

namespace wrht::runtime {

struct BatcherConfig {
  bool enabled = true;
  /// Jobs above this payload never fuse (they are bandwidth-bound already).
  util::Bytes max_fuse_payload = util::kilobytes(256);
  /// Upper bound on jobs fused into one execution (including the lead).
  std::uint32_t max_jobs_per_batch = 8;
  /// Upper bound on the CONCATENATED payload of a batch.  Per-job and
  /// per-count caps alone let max_jobs_per_batch jobs each at
  /// max_fuse_payload fuse into a batch many times the "small job" size —
  /// one that also jumps a smallest-first queue at the lead job's payload.
  /// The admission policies see only the lead's payload, so this budget is
  /// what keeps a fused execution honestly small.
  util::Bytes max_batch_payload = util::megabytes(1);
  /// Time-windowed batching: hold each fusable arrival out of admission for
  /// this long, so a burst landing on an IDLE ring still fuses instead of
  /// its first job being admitted alone (contended arrivals fuse anyway
  /// while queued).  A held job stays fusable as a peer the whole time; the
  /// window bounds the latency the delay can add.  Zero = off (default).
  util::Seconds fuse_window{0.0};
};

/// Queue indices of the jobs to fuse with the admitted job at `lead_index`:
/// every other queued job with an identical participant set, the SAME
/// priority as the lead (an execution carries one urgency, so fusing across
/// priorities would let a low-priority rider inherit the lead's rank and
/// dodge preemption — or drag an urgent peer down to a preemptible batch),
/// the SAME substrate pin (a fused peer rides the lead's placement, so
/// mixed pins would run a job on a fabric its tenant forbade),
/// a payload within the fuse threshold, and a min_wavelengths satisfied by
/// the lead's `granted_band_width` (a fused peer executes in the lead's
/// band, so its own admission floor must hold there too) — oldest first,
/// capped at max_jobs_per_batch jobs and max_batch_payload total bytes.
/// Returns {lead_index} alone when the lead itself is too large to fuse or
/// batching is disabled.  Indices are ascending and include lead_index.
[[nodiscard]] std::vector<std::size_t> fusable_peers(
    const JobQueue& queue, std::size_t lead_index,
    std::uint32_t granted_band_width, const BatcherConfig& config);

}  // namespace wrht::runtime
