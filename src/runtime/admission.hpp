// Admission control: which queued job runs next, and with how many
// wavelengths.
//
// The queue holds jobs that have arrived but hold no spectrum.  Whenever
// spectrum frees up (a job completes) or the queue grows (a job arrives),
// the runtime asks the policy for the next admission; it keeps asking until
// the policy declines, so several jobs can be admitted at the same instant
// and execute concurrently on disjoint bands.
//
// Policies:
//  * kFifo          — strict arrival order; the head blocks the line until
//                     its minimum demand fits (no starvation, HOL blocking).
//  * kSmallestFirst — smallest payload that fits runs first (SJF; best mean
//                     turnaround, can starve elephants under heavy load).
//  * kWeightedFair  — spectrum is split between the queued jobs in
//                     proportion to their weights, so heavy and light
//                     tenants are admitted side by side with proportional
//                     bands instead of one tenant draining the whole pool.
//  * kPriorityPreempt — highest JobSpec::priority runs first (ties on
//                     arrival).  Like FIFO the winner blocks the line, but
//                     the runtime backs the policy with step-boundary
//                     preemption: when the winner's minimum does not fit, it
//                     suspends running lower-priority executions instead of
//                     waiting for them to finish.
//
// Every tie breaks on submission order, which makes admission — and with
// the deterministic event queue, the entire multi-tenant run — reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/job.hpp"
#include "util/units.hpp"

namespace wrht::runtime {

enum class FairnessPolicy : std::uint8_t {
  kFifo,
  kSmallestFirst,
  kWeightedFair,
  kPriorityPreempt,
};

[[nodiscard]] const char* fairness_policy_name(FairnessPolicy policy);

/// A queued job as the admission policy sees it.
struct QueueEntry {
  JobId id = kNoJob;
  std::uint64_t seq = 0;  // submission order, the universal tie-break
  std::uint32_t min_wavelengths = 1;
  std::uint32_t requested_wavelengths = 1;  // normalized (never 0)
  double weight = 1.0;
  util::Bytes payload;
  std::vector<topo::NodeId> participants;
  std::int32_t priority = 0;
  /// When the job arrived — the clock priority aging runs against.
  util::Seconds arrival{0.0};
  /// Substrate the tenant pinned the job to.  These policies arbitrate the
  /// OPTICAL spectrum, so an electrically-pinned entry is invisible to them
  /// (it neither admits nor blocks the line) the same way a held one is;
  /// the runtime's electrical placement path serves it instead.
  SubstratePin pin = SubstratePin::kAny;
  /// Inside its fuse-window admission delay (BatcherConfig::fuse_window):
  /// invisible to every admission policy (it neither admits nor blocks the
  /// line) but still fusable as a peer when another lead is admitted.
  bool held = false;
};

/// True when the optical admission policies may consider `entry` at all.
[[nodiscard]] inline bool optically_eligible(const QueueEntry& entry) {
  return !entry.held && entry.pin != SubstratePin::kElectricalOnly;
}

class JobQueue {
 public:
  /// Entries are pushed in submission order, and removals preserve relative
  /// order, so at(i).seq is strictly increasing in i — the invariant the
  /// flat-mode FIFO scan's early exit rests on.
  void push(QueueEntry entry) { entries_.push_back(std::move(entry)); }
  [[nodiscard]] bool empty() const { return head_ == entries_.size(); }
  [[nodiscard]] std::size_t size() const { return entries_.size() - head_; }
  [[nodiscard]] const QueueEntry& at(std::size_t i) const {
    return entries_[head_ + i];
  }

  /// Remove and return the entry at logical `index`.  In flat mode a
  /// take(0) — the FIFO/backlog-drain hot path — is O(1): the head offset
  /// advances past the slot and the dead prefix is erased in amortized
  /// batches.  Mid-queue takes (and every take in naive mode) fall back to
  /// the positional erase.  Observable contents and ordering are identical
  /// either way.
  QueueEntry take(std::size_t index);

  /// Clear the fuse-window hold on job `id`.  Returns false when the job no
  /// longer sits in the queue (it was admitted or fused meanwhile).
  bool release_hold(JobId id);

  /// Toggle the head-offset fast path (on by default).  Naive mode erases
  /// on every take — the historical O(queue) behavior the serve-throughput
  /// bench measures its speedup against.
  void set_flat(bool flat) { flat_ = flat; }
  /// Whether the flat fast paths (head offset, seq-ordered FIFO early exit)
  /// are enabled.
  [[nodiscard]] bool flat() const { return flat_; }

 private:
  /// Queued entries live at entries_[head_ ..); slots below head_ were
  /// taken from the front and await the amortized prefix erase.
  std::vector<QueueEntry> entries_;
  std::size_t head_ = 0;
  // Off by default: the FIFO early-exit is only sound when the OWNER
  // upholds the seq-ordered-push invariant, which the runtime does (and
  // opts in via set_flat); a hand-built queue may push in any order.
  bool flat_ = false;
};

struct AdmissionDecision {
  std::size_t queue_index = 0;
  /// Band width to grant: min <= grant <= requested, and the arbiter is
  /// guaranteed to have a contiguous free run of this width.
  std::uint32_t grant = 0;
};

/// A waiting job's effective priority under priority aging: the raw
/// priority plus one class per `half_life` of sim-clock wait since
/// `waiting_since`, capped at +64 classes (still strictly monotone in wait
/// up to the cap, and immune to int overflow).  half_life <= 0 disables
/// aging and returns the raw priority — the historical behavior.
[[nodiscard]] std::int32_t aged_priority(std::int32_t priority,
                                         util::Seconds waiting_since,
                                         util::Seconds now,
                                         util::Seconds half_life);

/// Ask `policy` for the next job to admit given the current spectrum state.
/// Returns nullopt when nothing in the queue should start now.  `now` and
/// `aging_half_life` feed priority aging (kPriorityPreempt only; the
/// defaults keep aging off).
[[nodiscard]] std::optional<AdmissionDecision> next_admission(
    const JobQueue& queue, FairnessPolicy policy,
    std::uint32_t largest_free_block, std::uint32_t free_total,
    util::Seconds now = util::Seconds(0.0),
    util::Seconds aging_half_life = util::Seconds(0.0));

/// Index of the entry kPriorityPreempt would admit next: highest EFFECTIVE
/// (aged) priority, oldest among equals; nullopt on an empty (or all-held)
/// queue.  Shared by the admission policy and the runtime's preemption
/// planner so the job that triggers preemptions is always the job admission
/// will actually pick — and a held job triggers none.
[[nodiscard]] std::optional<std::size_t> priority_head(
    const JobQueue& queue, util::Seconds now = util::Seconds(0.0),
    util::Seconds aging_half_life = util::Seconds(0.0));

}  // namespace wrht::runtime
