// A tenant's all-reduce request and its lifecycle inside the multi-tenant
// collective runtime.
//
// A job names an arbitrary participant subset of the shared ring, a gradient
// payload, and an arrival time on the simulation clock; the runtime decides
// when it runs and how much of the wavelength spectrum it gets.  JobSpec is
// what the tenant submits; JobRecord is the runtime's authoritative account
// of what happened to it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/ring.hpp"
#include "util/units.hpp"

namespace wrht::runtime {

using JobId = std::uint32_t;

inline constexpr JobId kNoJob = 0xFFFFFFFFu;

/// Per-job substrate pinning: where the tenant allows the job to run.
/// kAny leaves placement to the hybrid policy; a pinned job only ever runs
/// on its named fabric (an electrically-pinned job is rejected outright
/// when the runtime has no electrical fallback configured).
enum class SubstratePin : std::uint8_t {
  kAny,
  kOpticalOnly,
  kElectricalOnly,
};

[[nodiscard]] const char* substrate_pin_name(SubstratePin pin);

struct JobSpec {
  /// Ring positions holding gradients (ascending, unique, >= 2 of them).
  std::vector<topo::NodeId> participants;
  /// All-reduce payload per participant.
  util::Bytes payload;
  /// When the job enters the system, on the shared simulation clock.
  util::Seconds arrival{0.0};
  /// Wavelengths the tenant would like (0 = runtime default).  The grant is
  /// capped by spectrum availability and by what the job can actually use.
  std::uint32_t requested_wavelengths = 0;
  /// Smallest grant the job accepts; below this it waits in the queue.
  std::uint32_t min_wavelengths = 1;
  /// Share under the weighted-fair policy (ignored by FIFO / smallest-first).
  double weight = 1.0;
  /// Urgency under the priority-preempt policy (higher runs first; a queued
  /// job may suspend running lower-priority executions at their next step
  /// boundary).  Ignored by the other policies.
  std::int32_t priority = 0;
  /// Substrate the job must (or must not) run on.
  SubstratePin pin = SubstratePin::kAny;
  /// Optional turnaround budget relative to arrival (0 = no deadline).
  /// Purely observational: admission and placement ignore it; the report's
  /// SloStats scores completed jobs against it (hit when
  /// turnaround() <= deadline).
  util::Seconds deadline{0.0};
  /// Optional label for reports and traces.
  std::string name;
};

enum class JobState : std::uint8_t {
  kSubmitted,  // accepted, waiting for its arrival time
  kQueued,     // arrived, waiting for spectrum
  kRunning,    // executing on the ring
  kPreempted,  // suspended at a step boundary, band surrendered, will resume
  kDone,       // all-reduce complete
  kRejected,   // can never run (bad or inconsistent spec)
  kFailed,     // killed mid-run: faults left fewer than 2 live participants
};

[[nodiscard]] const char* job_state_name(JobState state);

/// Execution fabric a job was placed on.  The runtime serves the optical
/// ring (wavelength-band grants) and, under a hybrid placement policy, the
/// electrical fallback cluster (host-link grants); the record keeps which
/// one carried the job.
enum class SubstrateKind : std::uint8_t {
  kOptical,
  kElectrical,
};

[[nodiscard]] const char* substrate_kind_name(SubstrateKind kind);

/// Contiguous run of wavelengths [base, base + width) granted to one job.
struct WavelengthBand {
  std::uint32_t base = 0;
  std::uint32_t width = 0;

  [[nodiscard]] bool valid() const { return width > 0; }
  friend bool operator==(const WavelengthBand&, const WavelengthBand&) =
      default;
};

struct JobRecord {
  JobId id = kNoJob;
  JobSpec spec;
  JobState state = JobState::kSubmitted;
  /// Normalized wavelength request (spec's request after defaulting and
  /// capping to what the job can use / the ring has).
  std::uint32_t effective_request = 0;
  /// Fabric the job executed on (meaningful once running; kOptical until a
  /// hybrid placement decides otherwise).
  SubstrateKind substrate = SubstrateKind::kOptical;
  /// Spectrum band the arbiter granted (valid only once running on the
  /// optical substrate; electrically-placed jobs keep the invalid band).
  WavelengthBand band;
  util::Seconds admitted{0.0};
  util::Seconds completed{0.0};
  /// Schedule steps executed on behalf of this job (shared across a batch).
  std::uint32_t steps = 0;
  /// Jobs fused into the same execution, including this one (1 = ran alone).
  std::uint32_t batch_size = 1;
  /// Oracle verdict for the schedule(s) that carried this job — re-proven
  /// after every renegotiation rebuild.  Also true when
  /// RuntimeConfig::validate_with_oracle is off (no check ran to fail).
  bool oracle_ok = false;
  /// Times this job was suspended at a step boundary for a higher-priority
  /// arrival.
  std::uint32_t preemptions = 0;
  /// Step-boundary band renegotiations (grow or shrink) applied while
  /// running.
  std::uint32_t resizes = 0;
  /// Multi-tenant contention slowdown of the execution that carried this
  /// job: time its steps actually took on the shared fabric divided by
  /// their quiet-network time (1.0 = never contended).  Zero when the
  /// substrate has no quiet baseline to compare against (optical bands are
  /// private by construction; exclusive-star electrical is its own quiet
  /// network, so it reports exactly 1.0).
  double contention_slowdown = 0.0;
  /// Cost-model routing audit (kCostModelChoice placements only, zero
  /// otherwise): the ABSOLUTE completion time the router predicted for the
  /// substrate it chose, frozen at the instant the decision bound
  /// (admitted).  Compared against `completed` at run end.
  util::Seconds predicted_completion{0.0};
  /// |completed - predicted_completion| relative to the predicted span
  /// (predicted_completion - admitted).  Filled at completion for audited
  /// decisions; includes whatever the router could not see coming (later
  /// arrivals, preemptions), which is exactly what makes it worth
  /// reporting.
  double routing_error = 0.0;
  /// Why the spec was rejected (empty unless state == kRejected).
  std::string reject_reason;

  [[nodiscard]] util::Seconds turnaround() const {
    return completed - spec.arrival;
  }
};

}  // namespace wrht::runtime
