// The multi-tenant collective runtime: many all-reduce jobs, one optical
// ring, one simulation clock.
//
// The seed library runs a single Wrht schedule per experiment; this runtime
// is the serving layer above it.  Tenants submit jobs (participant subset +
// payload + arrival time).  On arrival a job enters the admission queue; the
// fairness policy decides who runs next and the SpectrumArbiter carves a
// disjoint wavelength band out of the shared spectrum for each admitted job.
// Each job's Wrht schedule is built against its private band width, shifted
// into place, and progressed step by step as events on ONE sim::Simulator —
// so steps of different jobs interleave in time on the shared clock, while
// the shared SpectrumMap re-checks every (span, wavelength, direction)
// reservation and treats a cross-job collision as a fatal arbitration bug.
//
// Modeling assumption: as with striping in the single-job DES, a node's
// TeraRack-style resonator bank can drive several wavelengths at once, so
// two jobs sharing a node but not a wavelength do not contend — under the
// paper's retune-every-step cost model their timing is exact.  Queueing at
// a shared node's transceiver (relevant only for the retune-tracking
// ablation) is future work; see ROADMAP.
//
// Small same-group jobs are fused by the Batcher into a single schedule
// (one set of per-step optical overheads for the whole batch), and every
// execution's schedule is proven correct with the coll:: oracle before it
// touches the ring.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "optical/network.hpp"
#include "optical/params.hpp"
#include "runtime/admission.hpp"
#include "runtime/arbiter.hpp"
#include "runtime/batcher.hpp"
#include "runtime/job.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "wrht/builder.hpp"

namespace wrht::runtime {

struct RuntimeConfig {
  /// Nodes on the shared ring.
  std::uint32_t ring_size = 64;
  /// Optical cost model; wdm.num_wavelengths is the total spectrum budget
  /// the arbiter partitions between tenants.
  optical::OpticalParams optical{};
  FairnessPolicy policy = FairnessPolicy::kFifo;
  BatcherConfig batcher{};
  /// Wavelength request used when a JobSpec leaves requested_wavelengths 0.
  std::uint32_t default_request = 8;
  optical::FitPolicy fit_policy = optical::FitPolicy::kFirstFit;
  /// Prove every execution's schedule with the functional oracle before
  /// running it (cheap: oracle payloads are oracle_payload_len doubles).
  bool validate_with_oracle = true;
  std::size_t oracle_payload_len = 48;
};

struct RuntimeReport {
  util::Seconds makespan{0.0};
  std::uint32_t submitted = 0;
  std::uint32_t completed = 0;
  std::uint32_t rejected = 0;
  /// Executions started / executions that fused more than one job.
  std::uint32_t executions = 0;
  std::uint32_t batches = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_retunes = 0;
  /// (arc, wavelength) reservations checked against the shared spectrum
  /// map.  A cross-job conflict aborts the process, so a finished run had
  /// zero wavelength-conflict aborts by construction; this counts how many
  /// opportunities there were.
  std::uint64_t spectrum_reservations = 0;
  /// Most jobs simultaneously holding spectrum at any instant.
  std::uint32_t peak_concurrent_jobs = 0;
  /// Executions whose schedule failed the functional oracle.  Like a
  /// wavelength conflict this aborts the process, so a returned report
  /// always says 0; the field documents that the checks ran.
  std::uint32_t oracle_failures = 0;
  util::Seconds total_turnaround{0.0};

  [[nodiscard]] util::Seconds mean_turnaround() const {
    return completed == 0 ? util::Seconds(0.0)
                          : util::Seconds(total_turnaround.value() /
                                          static_cast<double>(completed));
  }
  [[nodiscard]] std::string to_string() const;
};

class CollectiveRuntime {
 public:
  explicit CollectiveRuntime(RuntimeConfig config);

  /// Register a job.  Infeasible specs (bad participant list, or a minimum
  /// demand no grant can ever satisfy) are rejected immediately.  Must be
  /// called before run().
  JobId submit(JobSpec spec);

  /// Drive the shared clock until every submitted job has completed.
  RuntimeReport run();

  [[nodiscard]] const JobRecord& record(JobId id) const;
  [[nodiscard]] std::size_t num_jobs() const { return records_.size(); }
  /// Job ids in completion order (deterministic for a fixed submission set).
  [[nodiscard]] const std::vector<JobId>& completion_order() const {
    return completion_order_;
  }
  [[nodiscard]] const topo::RingTopology& ring() const { return ring_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] util::Seconds now() const { return simulator_.now(); }

 private:
  /// One admitted unit of work: a single job or a fused batch, with its
  /// schedule already built against the granted band and shifted into it.
  struct Execution {
    std::vector<JobId> jobs;
    WavelengthBand band;
    std::vector<std::vector<optical::TimedTransfer>> steps;
    std::size_t next_step = 0;
  };

  void on_arrival(JobId id);
  void try_admit();
  void admit(const AdmissionDecision& decision);
  void run_step(const std::shared_ptr<Execution>& exec);
  void finish_execution(const std::shared_ptr<Execution>& exec);

  RuntimeConfig config_;
  topo::RingTopology ring_;
  sim::Simulator simulator_;
  optical::SpectrumMap spectrum_;
  optical::TransceiverBank transceivers_;
  SpectrumArbiter arbiter_;
  JobQueue queue_;
  std::vector<JobRecord> records_;
  std::vector<JobId> completion_order_;
  sim::Trace trace_;
  RuntimeReport report_;
  std::uint64_t next_seq_ = 0;
  std::uint32_t running_jobs_ = 0;
  bool started_ = false;
};

}  // namespace wrht::runtime
