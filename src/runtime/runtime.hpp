// The multi-tenant collective runtime: many all-reduce jobs, one shared
// simulation clock, and (since the substrate refactor) a choice of
// execution fabrics.
//
// The seed library runs a single Wrht schedule per experiment; this runtime
// is the serving layer above it.  Tenants submit jobs (participant subset +
// payload + arrival time).  On arrival a job enters the admission queue;
// the fairness policy decides who runs next.  Execution itself is delegated
// to a polymorphic ExecutionSubstrate (runtime/substrate.hpp): the
// substrate owns schedule construction, resource grant/release, per-step
// timing, and the renegotiation capability flags, while the runtime keeps
// admission, fairness, batching, the shared clock, and oracle validation.
//
// The primary substrate is the paper's optical WDM ring: the arbiter
// carves a disjoint wavelength band per admitted job, each job's Wrht
// schedule is built against its private band width and progressed step by
// step as events on ONE sim::Simulator, with the shared SpectrumMap
// re-checking every (span, wavelength, direction) reservation.  Under a
// hybrid placement policy the runtime also serves the ELECTRICAL fallback
// fabric (src/elec's flow simulator): when the spectrum saturates, queued
// arrivals are placed onto host links of an electrical cluster instead of
// waiting — kElectricalOverflow spills whatever the optical loop declined,
// kCostModelChoice routes each job to whichever fabric the cost models
// predict is faster, and JobSpec::pin lets a tenant force (or forbid) the
// fallback outright.  The fallback fabric itself is configurable: an
// exclusive star (every execution times its steps on a private quiet
// network) or an oversubscribed two-level tree whose shared ToR uplinks
// make concurrent executions contend — there one SharedFabricTimer times
// every in-flight electrical step together, step-completion events are
// re-scheduled when other tenants change the contention (kStepRetimed),
// and a whole-horizon flow replay re-proves every step time at the end of
// the run.  Both timing models run on the same clock and land in one
// report, with per-substrate breakdowns and per-job contention slowdowns.
//
// Small same-group jobs are fused by the Batcher into a single schedule
// (one set of per-step overheads for the whole batch), optionally after a
// fuse_window admission delay so bursts arriving on an idle ring still
// fuse, and every execution's schedule is proven correct with the coll::
// oracle before it touches its fabric.
//
// Step-boundary renegotiation: on substrates whose caps() allow it, the
// runtime may PREEMPT an execution at a step boundary (suspend it,
// surrender its whole band to a higher-priority arrival under
// FairnessPolicy::kPriorityPreempt, resume it later on whatever band it
// regains) or RESIZE it (grow into freed neighboring spectrum, or shrink
// toward the job's floor when queued tenants starve).  Both paths rebuild
// the execution's remaining schedule through the substrate and every
// rebuilt remainder is re-proven with the oracle — composed with the
// functional steps already executed — before it touches the fabric.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "optical/params.hpp"
#include "runtime/admission.hpp"
#include "runtime/batcher.hpp"
#include "runtime/faults.hpp"
#include "runtime/job.hpp"
#include "runtime/substrate.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace wrht::runtime {

/// Which fabrics admission may place jobs on.
enum class HybridPlacementPolicy : std::uint8_t {
  /// Optical ring only; saturated-spectrum arrivals queue (pre-refactor
  /// behavior, the default).
  kOpticalOnly,
  /// Optical first; whatever the optical admission loop declines spills
  /// onto the electrical fallback as soon as its hosts are free.
  kElectricalOverflow,
  /// Route each arrival to whichever fabric the cost models predict
  /// FINISHES it sooner.  What "predict" means is picked by
  /// RuntimeConfig::routing_cost_model; routing is work-conserving, not
  /// sticky — an electrical-predicted job whose hosts are busy still runs
  /// on free optical spectrum rather than idle-waiting for the fallback.
  kCostModelChoice,
};

[[nodiscard]] const char* hybrid_placement_policy_name(
    HybridPlacementPolicy policy);

/// Cost signal kCostModelChoice compares when routing an arrival.
enum class RoutingCostModel : std::uint8_t {
  /// Quiet-network RUN times only: WRHT formula time vs. the alpha-beta
  /// cost of the schedule the electrical fabric would pick, both as if the
  /// job ran alone.  Blind to saturation on either side — kept as the
  /// ablation baseline the congestion-aware model is measured against.
  kQuietAlphaBeta,
  /// Predicted COMPLETION times under the fabrics' current state: the
  /// electrical side folds the live residual uplink bandwidth of the
  /// shared fabric into its estimate (a saturated fabric stops attracting
  /// over-spill), the optical side folds the predicted wait for a free
  /// spectrum band (a backed-up ring stops holding jobs hostage).  Every
  /// decision is traced with both predictions and scored against the
  /// job's actual completion in the report.
  kCongestionAware,
};

[[nodiscard]] const char* routing_cost_model_name(RoutingCostModel model);

struct RuntimeConfig {
  /// Nodes on the shared ring.
  std::uint32_t ring_size = 64;
  /// Optical cost model; wdm.num_wavelengths is the total spectrum budget
  /// the arbiter partitions between tenants.
  optical::OpticalParams optical{};
  FairnessPolicy policy = FairnessPolicy::kFifo;
  BatcherConfig batcher{};
  /// Wavelength request used when a JobSpec leaves requested_wavelengths 0.
  std::uint32_t default_request = 8;
  optical::FitPolicy fit_policy = optical::FitPolicy::kFirstFit;
  /// Prove every execution's schedule with the functional oracle before
  /// running it (cheap: oracle payloads are oracle_payload_len doubles).
  bool validate_with_oracle = true;
  std::size_t oracle_payload_len = 48;
  /// Step-boundary elastic resize: grow a running execution's band into
  /// adjacent freed spectrum when that shortens its remaining schedule, and
  /// shrink a band toward its jobs' floor when the shrink would unblock a
  /// starved queued job.
  bool elastic_resize = false;
  /// Who places spectrum bands on the optical substrate: the global
  /// SpectrumPlanner (default — joint placement against queued + suspended
  /// demand and outstanding bands' predicted frees, see runtime/planner.hpp)
  /// or the historical greedy first-fit, kept as the ablation baseline.
  SpectrumPolicy spectrum_policy = SpectrumPolicy::kPlanner;
  /// Priority aging half-life for starvation control (0 = aging off, the
  /// historical behavior).  While a job waits — queued, or suspended after a
  /// preemption — its EFFECTIVE priority rises by one class per
  /// aging_half_life of sim-clock wait, so a repeatedly-preempted tenant
  /// eventually outranks the traffic that keeps displacing it.  Running
  /// executions keep their raw priority; aging applies at admission,
  /// preemption-target, and resume comparisons.
  util::Seconds aging_half_life{0.0};
  /// Hybrid placement across substrates.
  HybridPlacementPolicy placement = HybridPlacementPolicy::kOpticalOnly;
  /// What kCostModelChoice compares (ignored by the other placements).
  RoutingCostModel routing_cost_model = RoutingCostModel::kCongestionAware;
  /// Electrical fallback fabric (used when placement != kOpticalOnly).
  ElectricalFallbackConfig electrical{};
  /// Observability sink.  When set, the runtime and its substrates register
  /// counters/gauges/histograms here and the registry's time-series sampler
  /// is pumped on every runtime event; when null, every emission site keeps
  /// a null handle and the hot path does no observability work at all.
  /// Must outlive the runtime.
  obs::MetricsRegistry* metrics = nullptr;
  /// Fault stream injected alongside the workload (null = no faults, the
  /// default).  Each fault and its repair become ordinary events on the
  /// shared clock; disruptions are detected at the affected executions'
  /// next BSP step boundaries and resolved through the same renegotiate()
  /// entry point preemption and resize use.  Must outlive the runtime.
  FaultSource* faults = nullptr;
  /// Flattened event-loop hot paths (on by default): event-queue slot
  /// recycling + lazy heap compaction, the interval-indexed spectrum
  /// arbiter, batched per-step spectrum releases, O(1) outstanding-registry
  /// removal, and the admission queue's head-offset take.  Every flattened
  /// path makes bit-identical decisions, so reports match the naive mode
  /// exactly; false restores the original O(n)-per-event behavior as the
  /// benchmark baseline (bench/serve_throughput measures the gap).
  bool flat_hot_path = true;
};

/// Per-substrate slice of a run: how much of the workload each fabric
/// carried, and its contribution to the shared-clock makespan (the
/// completion time of the last job it ran).
struct SubstrateBreakdown {
  std::uint32_t jobs = 0;
  std::uint32_t executions = 0;
  std::uint64_t steps = 0;
  util::Seconds makespan{0.0};
  /// Wall-clock the fabric's steps actually took vs. what they would have
  /// taken on a quiet network — the aggregate contention story.  Zero/zero
  /// for substrates without a quiet baseline (optical).
  util::Seconds busy_time{0.0};
  util::Seconds quiet_time{0.0};

  /// Aggregate contention slowdown (1.0 = nobody ever contended; 0.0 = no
  /// quiet baseline on this substrate).
  [[nodiscard]] double contention_slowdown() const {
    return quiet_time.value() > 0.0 ? busy_time.value() / quiet_time.value()
                                    : 0.0;
  }
};

/// Cost-model routing audit: how often each fabric won, and how far the
/// router's predicted completion times landed from the truth.  Errors are
/// relative to the predicted span (|actual - predicted| / (predicted -
/// decision time)), so a 0.25 means the job finished a quarter of its
/// predicted duration away from the promise — in either direction.
struct RoutingStats {
  std::uint32_t decisions = 0;
  std::uint32_t to_optical = 0;
  std::uint32_t to_electrical = 0;
  double mean_error = 0.0;
  double worst_error = 0.0;
};

/// What the fault stream did to the run, and what the recovery machinery
/// did about it.  All zero when RuntimeConfig::faults is null.
struct FaultStats {
  std::uint32_t injected = 0;
  std::uint32_t transceiver_faults = 0;
  std::uint32_t node_faults = 0;
  std::uint32_t tor_faults = 0;
  std::uint32_t wavelength_faults = 0;
  std::uint32_t repairs = 0;
  /// Running executions a fault forced into a boundary renegotiation.
  std::uint32_t disrupted_executions = 0;
  /// In-place survivor rebuilds: the remainder re-proven with the failed
  /// nodes stripped from its delivery set (kEvict accepted).
  std::uint32_t evictions = 0;
  /// Fresh plans among the survivors after the remainder could not absorb
  /// the eviction (kRestart accepted, executed prefix discarded).
  std::uint32_t restarts = 0;
  /// Cross-substrate moves: ToR-orphaned electrical executions restarted
  /// on the optical ring.
  std::uint32_t migrations = 0;
  /// Fault-triggered suspensions (a subset of the report's preemptions):
  /// the execution waits for repair or free capacity, then resumes.
  std::uint32_t fault_preemptions = 0;
  /// Jobs whose live participant count fell below 2 (JobState::kFailed).
  std::uint32_t killed_jobs = 0;
  /// Completed recoveries: from a fault first disrupting a RUNNING
  /// execution to that execution running again (evicted, restarted,
  /// migrated, or resumed).
  std::uint32_t recoveries = 0;
  util::Seconds total_recovery{0.0};
  /// Step wall-clock discarded by restarts, migrations, and kills — the
  /// executed work the fault threw away.
  util::Seconds wasted_step_time{0.0};

  [[nodiscard]] util::Seconds mttr() const {
    return recoveries == 0 ? util::Seconds(0.0)
                           : util::Seconds(total_recovery.value() /
                                           static_cast<double>(recoveries));
  }
};

struct RuntimeReport {
  util::Seconds makespan{0.0};
  std::uint32_t submitted = 0;
  std::uint32_t completed = 0;
  std::uint32_t rejected = 0;
  /// Executions started / executions that fused more than one job.
  std::uint32_t executions = 0;
  std::uint32_t batches = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_retunes = 0;
  /// (arc, wavelength) reservations checked against the shared spectrum
  /// map.  A cross-job conflict aborts the process, so a finished run had
  /// zero wavelength-conflict aborts by construction; this counts how many
  /// opportunities there were.
  std::uint64_t spectrum_reservations = 0;
  /// Most jobs simultaneously holding a grant (on any substrate) at any
  /// instant.
  std::uint32_t peak_concurrent_jobs = 0;
  /// Executions whose schedule failed the functional oracle.  Like a
  /// wavelength conflict this aborts the process, so a returned report
  /// always says 0; the field documents that the checks ran.
  std::uint32_t oracle_failures = 0;
  /// Step-boundary renegotiations: executions suspended for a
  /// higher-priority arrival, executions resumed afterwards, and band
  /// grow/shrink rebuilds applied in place.
  std::uint32_t preemptions = 0;
  std::uint32_t resumes = 0;
  std::uint32_t resizes = 0;
  /// Step-completion events re-scheduled on the sim clock because another
  /// tenant's flows changed the shared electrical fabric's contention
  /// (always 0 on the exclusive star fabric).
  std::uint64_t step_retimes = 0;
  /// Steps audited by the substrates' end-of-run self checks (the shared
  /// electrical fabric's whole-horizon flow replay).  A disagreement aborts
  /// the process, so a returned report documents that this many steps were
  /// re-proven.
  std::uint64_t replay_checked_steps = 0;
  /// Peak utilization per electrical-fabric link (fraction of capacity),
  /// indexed by the fallback cluster's link ids.  Empty without a shared
  /// electrical fabric.
  std::vector<double> electrical_link_peak;
  util::Seconds total_turnaround{0.0};
  /// Per-decision routing audit under kCostModelChoice (all zero for the
  /// other placements).
  RoutingStats routing;
  /// Both timing models under one report: what each fabric carried.
  /// optical.jobs + electrical.jobs == completed, and likewise for
  /// executions and steps.
  SubstrateBreakdown optical;
  SubstrateBreakdown electrical;
  /// SLO percentiles over the completed jobs (exact nearest-rank quantiles
  /// recomputed from the job records at run end — registry-independent, so
  /// they are present even when RuntimeConfig::metrics is null).
  obs::SloStats slo;
  /// Chaos accounting (all zero without a fault stream).  The job ledger
  /// under faults closes as completed + rejected + faults.killed_jobs ==
  /// submitted.
  FaultStats faults;
  /// Total step wall-clock across both fabrics — the goodput denominator.
  util::Seconds step_time_total{0.0};

  [[nodiscard]] util::Seconds mean_turnaround() const {
    return completed == 0 ? util::Seconds(0.0)
                          : util::Seconds(total_turnaround.value() /
                                          static_cast<double>(completed));
  }
  /// Fraction of step time that contributed to a completed job: 1 minus
  /// the share restarts/migrations/kills threw away.  1.0 on a fault-free
  /// run (or before any step ran).
  [[nodiscard]] double goodput() const {
    return step_time_total.value() > 0.0
               ? 1.0 - faults.wasted_step_time.value() /
                           step_time_total.value()
               : 1.0;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Pull-based stream of job specs — the seam between the workload layer
/// (generators, trace replay) and the runtime's streaming front end.
/// serve() pulls the next spec only when the clock reaches the previous
/// arrival, so a million-job trace is never materialized up front: at any
/// instant the runtime holds one not-yet-arrived spec, not the whole tail.
class JobSource {
 public:
  virtual ~JobSource() = default;
  /// The next job spec, or nullopt when the stream is exhausted.  Specs
  /// MUST be yielded in nondecreasing arrival order (serve() aborts
  /// otherwise — out-of-order arrivals would silently warp the clock).
  virtual std::optional<JobSpec> next() = 0;
};

class CollectiveRuntime {
 public:
  explicit CollectiveRuntime(RuntimeConfig config);

  /// Register a job.  Infeasible specs (bad participant list, or a minimum
  /// demand no grant can ever satisfy) are rejected immediately.  Must be
  /// called before run().
  JobId submit(JobSpec spec);

  /// Drive the shared clock until every submitted job has completed.
  RuntimeReport run();

  /// Streaming variant of run(): pull specs from `source` one at a time —
  /// each arrival event ingests the NEXT spec and chains the next arrival —
  /// so the event queue and spec storage stay O(in-flight), not O(trace).
  /// Jobs submit()ted beforehand run too.  Rejected specs are counted and
  /// recorded exactly as submit() would.  `source` must outlive the call.
  RuntimeReport serve(JobSource& source);

  [[nodiscard]] const JobRecord& record(JobId id) const;
  [[nodiscard]] std::size_t num_jobs() const { return records_.size(); }
  /// All job records, indexed by JobId — the trace exporter's input.
  [[nodiscard]] const std::vector<JobRecord>& records() const {
    return records_;
  }
  /// Job ids in completion order (deterministic for a fixed submission set).
  [[nodiscard]] const std::vector<JobId>& completion_order() const {
    return completion_order_;
  }
  [[nodiscard]] const topo::RingTopology& ring() const { return ring_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] const sim::Trace& trace() const { return trace_; }
  [[nodiscard]] util::Seconds now() const { return simulator_.now(); }

 private:
  /// One admitted unit of work: a single job or a fused batch, bound to the
  /// substrate that placed it.  `plan` is the substrate's schedule +
  /// resources for the work still ahead (the whole job at admission, the
  /// rebuilt remainder after a renegotiation); `executed` accumulates the
  /// functional steps already run, so the composite executed + plan can be
  /// re-proven with the oracle after every rebuild.
  struct Execution {
    std::vector<JobId> jobs;
    ExecutionSubstrate* substrate = nullptr;
    std::unique_ptr<SubstrateExecution> plan;
    /// Urgency (max over fused jobs) under kPriorityPreempt.  Starts at the
    /// lowest representable value so max-folding preserves NEGATIVE tenant
    /// priorities instead of flattening them to 0.
    std::int32_t priority = std::numeric_limits<std::int32_t>::min();
    /// Narrowest band the execution accepts (max over fused jobs' minima).
    std::uint32_t min_width = 1;
    /// Widest band the execution can exploit (growth ceiling).
    std::uint32_t useful_cap = 1;
    std::vector<topo::NodeId> participants;
    util::Bytes batch_payload;
    std::vector<coll::Step> executed;
    std::size_t next_step = 0;
    /// Failed participants already stripped from the remainder's delivery
    /// set (their contributions are merged; their hardware is gone).  The
    /// composite oracle proves the sum over ALL of `participants` reaches
    /// every participant EXCEPT these.
    std::vector<topo::NodeId> evicted;
    /// A queued higher-priority job asked for this band; surrender it at
    /// the next step boundary.
    bool preempt_requested = false;
    /// A fault touched this execution's resources; reconcile against the
    /// down sets at the next step boundary.
    bool fault_pending = false;
    /// A ToR fault orphaned this electrical execution; attempt a
    /// cross-substrate restart at the next step boundary.
    bool migrate_pending = false;
    /// The executed prefix was discarded (the remainder could not absorb
    /// an eviction): the next resume issues kRestart among `participants`
    /// (already shrunk to the survivors) instead of kResume.
    bool fresh_restart = false;
    /// When a fault first disrupted this RUNNING execution (0 = not
    /// disrupted) — the recovery-time (MTTR) anchor, cleared when the
    /// execution runs again.
    util::Seconds fault_since{0.0};
    bool suspended = false;
    /// When the execution last suspended (valid while `suspended`) — the
    /// clock priority aging runs against.
    util::Seconds suspended_since{0.0};
    /// Sim-clock handle of the in-flight step's completion event — the
    /// thing a shared-fabric retiming cancels and re-schedules.
    std::uint64_t step_event = 0;
    /// When the in-flight step started, and the accumulated actual/quiet
    /// durations of finished steps (the per-job contention slowdown).
    util::Seconds step_started{0.0};
    util::Seconds busy_time{0.0};
    util::Seconds quiet_time{0.0};
  };

  /// The body of submit(), minus the pre-run() guard: validate, record,
  /// count.  serve() calls it mid-run for every spec its source yields.
  JobId ingest(JobSpec spec);
  /// Pull specs from source_ until one is accepted (rejects are recorded
  /// and skipped), then schedule its arrival event — which ingests the
  /// next spec in turn.  `floor` is the previous arrival time, enforcing
  /// the source's nondecreasing-arrival contract.
  void pump_source(util::Seconds floor);
  /// Shared tail of run()/serve(): bookend the metrics, drain the clock,
  /// run the end-of-run audits, and seal the report.
  RuntimeReport drive();
  void on_arrival(JobId id);
  void release_fuse_hold(JobId id);
  void try_admit();
  void admit(const AdmissionDecision& decision);
  /// Shared placement tail: pop the queue entry at `queue_index` (plus its
  /// fusable peers when the substrate batches), build the plan with `grant`
  /// units on `substrate`, prove it, and dispatch its first step.
  void place_execution(ExecutionSubstrate& substrate, std::size_t queue_index,
                       std::uint32_t grant);
  /// Hybrid placement: move one queued job onto the electrical fallback
  /// (kElectricalOverflow: anything still queued; kCostModelChoice: only
  /// jobs the cost models route there).  Returns true when a job was placed.
  bool try_place_one_electrical();
  void run_step(const std::shared_ptr<Execution>& exec);
  /// Schedule (or re-schedule) exec's in-flight step completion at `end`.
  void schedule_step_end(const std::shared_ptr<Execution>& exec,
                         util::Seconds end);
  /// The step-completion event body: fold the step's wall-clock, then
  /// finish / renegotiate / dispatch the next step.
  void on_step_end(const std::shared_ptr<Execution>& exec);
  /// Drain `substrate`'s pending step retimings (shared-fabric contention
  /// changes) and re-schedule the affected completion events.
  void apply_retimings(ExecutionSubstrate& substrate);
  void finish_execution(const std::shared_ptr<Execution>& exec);

  /// The step-boundary renegotiation point: called between two steps of
  /// `exec`, with exec's own cells released and its grant still held.  May
  /// suspend the execution or swap in a rebuilt remainder on a different
  /// band.  Returns true when the execution surrendered its grant HERE —
  /// the caller must not dispatch the next step then, even if a
  /// same-instant resume already restarted the execution (the resume
  /// dispatched it).
  [[nodiscard]] bool renegotiate(const std::shared_ptr<Execution>& exec);
  /// `fault` marks a fault-triggered suspension: counted separately, and
  /// the units the release just freed are quarantined BEFORE the re-run of
  /// admission can hand them to anyone else.
  void suspend_execution(const std::shared_ptr<Execution>& exec,
                         bool fault = false);
  /// suspend_execution minus the release — for paths that already
  /// surrendered the grant (a refused in-place restart attempt).
  void suspend_released(const std::shared_ptr<Execution>& exec, bool fault);
  bool try_resume_one();

  /// Pull the next fault from the stream and schedule its injection event
  /// (which chains the next pull) — the chaos mirror of pump_source.
  void pump_faults();
  /// The injection event body: update the down sets, quarantine free
  /// units, mark affected executions for boundary reconciliation, kill
  /// unrecoverable suspended work, and schedule the repair.
  void on_fault(const FaultSpec& fault);
  void on_fault_repair(const FaultSpec& fault);
  /// Boundary reconciliation of a fault-marked execution against the
  /// CURRENT down sets (a repair may have landed first — then this is a
  /// no-op recovery).  Returns true when the caller must not dispatch the
  /// next step (killed, suspended, or the execution now runs a plan whose
  /// dispatch happened elsewhere).
  [[nodiscard]] bool handle_fault_at_boundary(
      const std::shared_ptr<Execution>& exec);
  [[nodiscard]] bool handle_optical_fault(
      const std::shared_ptr<Execution>& exec);
  [[nodiscard]] bool handle_electrical_fault(
      const std::shared_ptr<Execution>& exec);
  /// Faults left fewer than 2 live participants: mark every carried job
  /// JobState::kFailed, release the grant, and drop the execution.
  void kill_execution(const std::shared_ptr<Execution>& exec);
  /// Close the MTTR window opened when a fault disrupted this running
  /// execution (no-op when none is open).
  void note_recovery(Execution& exec);
  /// Take every currently-down FREE unit out of service (degraded
  /// wavelengths on the optical substrate, down hosts on the electrical
  /// one).  Called after every release on a faulty run, so freed dead
  /// capacity is never re-granted.
  void quarantine_downed_units();
  /// Return every quarantined unit whose down refcount dropped to zero.
  void restore_repaired_units();
  /// Participants currently down and not yet evicted — the nodes the next
  /// renegotiation must drop.
  [[nodiscard]] std::vector<topo::NodeId> newly_dead(
      const Execution& exec) const;
  /// participants − evicted − newly dead: the survivor set a restart runs
  /// among.
  [[nodiscard]] std::vector<topo::NodeId> live_participants(
      const Execution& exec) const;
  /// Ask lower-priority executions to surrender their grants at the next
  /// step boundary, per substrate: spectrum waiters preempt optical
  /// victims, host waiters (kElectricalOnly arrivals, suspended electrical
  /// executions) preempt electrical victims.  Suspending across fabrics
  /// would free nothing the waiter can use.
  void request_preemptions();
  void request_optical_preemptions();
  void request_electrical_preemptions();
  /// Highest priority among suspended executions of `kind`'s substrate —
  /// the waiters contending for that fabric's capacity.  Aged: a suspended
  /// execution's priority rises with its wait under aging_half_life.
  [[nodiscard]] std::int32_t top_suspended_priority(SubstrateKind kind) const;
  /// `exec`'s effective priority right now: raw while running, aged by the
  /// suspension wait while suspended.
  [[nodiscard]] std::int32_t effective_priority(const Execution& exec) const;
  /// Refresh the optical substrate's advisory pending-demand snapshot
  /// (minimum widths of queued optically-eligible jobs + suspended optical
  /// executions, minus `excluding`) ahead of a planner placement.
  void publish_optical_demand(const Execution* excluding);
  [[nodiscard]] bool has_suspended(SubstrateKind kind) const;
  /// True when `entry` could be served by the electrical fallback AND its
  /// urgency may drive electrical preemptions / block lower-priority
  /// electrical placements (pinned tenants only: a kAny waiter also has
  /// the optical line working for it, and host claims it could get by
  /// preemption are claims the optical path never needed).
  [[nodiscard]] static bool electrically_pinned(const QueueEntry& entry);
  /// Record + trace the cost-model verdict that just bound for `exec`.
  /// Only genuine router choices are audited: kCostModelChoice placements
  /// of un-pinned jobs (a pinned tenant decided for itself — its outcome
  /// must not color the router's accuracy figures).
  void audit_route_decision(const Execution& exec, std::uint32_t grant,
                            std::uint32_t optical_request, SubstratePin pin);
  void try_grow(const std::shared_ptr<Execution>& exec);
  void try_shrink(const std::shared_ptr<Execution>& exec);

  /// Fold the executed prefix of exec's current plan into exec->executed,
  /// install `next` as the new plan, update the job records, and re-prove
  /// the composite with the oracle.
  void adopt_plan(Execution& exec, std::unique_ptr<SubstrateExecution> next);
  void verify_composite_or_die(const Execution& exec);
  void trace_job(sim::TraceKind kind, JobId id, const WavelengthBand& band);
  [[nodiscard]] SubstrateBreakdown& breakdown(SubstrateKind kind);

  /// Cached metric handles; all nullptr when config_.metrics is null, so
  /// every emission site is a single null check (no lookups, no strings,
  /// no allocation on the hot path).
  struct Instruments {
    obs::Counter* jobs_submitted = nullptr;
    obs::Counter* jobs_completed = nullptr;
    obs::Counter* jobs_rejected = nullptr;
    obs::Counter* jobs_fused = nullptr;
    obs::Counter* preemptions = nullptr;
    obs::Counter* resumes = nullptr;
    obs::Counter* resizes = nullptr;
    obs::Counter* step_retimes = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* running_jobs = nullptr;
    obs::Gauge* suspended_jobs = nullptr;
    obs::Histogram* admission_wait = nullptr;
    obs::Histogram* batch_jobs = nullptr;
    obs::Histogram* turnaround = nullptr;
    obs::Histogram* slowdown = nullptr;
    obs::Histogram* routing_error = nullptr;
    obs::Counter* faults_injected = nullptr;
    obs::Counter* fault_repairs = nullptr;
    obs::Counter* fault_recoveries = nullptr;
    obs::Counter* jobs_killed = nullptr;
  };
  /// Register the runtime's metrics (and the substrates') with
  /// config_.metrics; no-op when null.
  void init_instruments();
  /// Refresh the sampled gauges (queue depth, running/suspended jobs) and
  /// give the registry's time-series sampler a chance to take a snapshot at
  /// the current sim time.  Called at the end of every event handler; no-op
  /// without a registry.
  void pump_metrics();
  /// Find-or-create the "runtime.max_wait_seconds.p<priority>" gauge — the
  /// per-priority-class starvation bound (max admission wait seen so far).
  [[nodiscard]] obs::Gauge* max_wait_gauge(std::int32_t priority);

  RuntimeConfig config_;
  topo::RingTopology ring_;
  sim::Simulator simulator_;
  std::unique_ptr<ExecutionSubstrate> optical_;
  std::unique_ptr<ExecutionSubstrate> electrical_;
  JobQueue queue_;
  std::vector<JobRecord> records_;
  std::vector<JobId> completion_order_;
  sim::Trace trace_;
  RuntimeReport report_;
  std::vector<std::shared_ptr<Execution>> running_execs_;
  /// Preempted executions awaiting spectrum, in suspension order.
  std::vector<std::shared_ptr<Execution>> suspended_;
  std::uint64_t next_seq_ = 0;
  std::uint32_t running_jobs_ = 0;
  /// Completion time of the last job so far — the report's makespan.  The
  /// drained clock can sit later (a stale fuse-window hold-release event is
  /// a legal no-op after the last completion).
  util::Seconds last_completion_{0.0};
  /// Running sum of per-decision routing errors; becomes the report's mean
  /// at run end.
  double routing_error_sum_ = 0.0;
  /// {optical, electrical} completion predictions try_place_one_electrical
  /// already computed for the job it is placing, handed to
  /// audit_route_decision so the congestion probe (a FlowNetwork clone +
  /// fluid forward run) is not paid twice per placement.  Always consumed
  /// (or discarded) by the audit of the very next placement.
  std::optional<std::pair<util::Seconds, util::Seconds>>
      pending_route_prediction_;
  /// Live only inside serve(): the stream the arrival chain pulls from.
  JobSource* source_ = nullptr;
  /// Live while the fault chain still pulls (null = exhausted or never
  /// configured); the floor enforces the stream's nondecreasing contract.
  FaultSource* fault_source_ = nullptr;
  util::Seconds last_fault_at_{0.0};
  /// Down refcounts (overlapping faults on one subject must not resurrect
  /// it on the first repair): ring positions out of OPTICAL service, hosts
  /// out of electrical service, degraded wavelengths.
  std::vector<std::uint8_t> optical_node_down_;
  std::vector<std::uint8_t> host_down_;
  std::vector<std::uint8_t> wavelength_down_;
  /// Which down units this runtime currently holds a substrate quarantine
  /// for (a unit granted to a tenant at fault time is quarantined only
  /// once its holder releases).
  std::vector<bool> wavelength_quarantined_;
  std::vector<bool> host_quarantined_;
  /// Any fault ever injected — gates the fault-path scans so a fault-free
  /// run pays nothing on the hot path.
  bool any_fault_ever_ = false;
  bool started_ = false;
  Instruments ins_;
  /// Per-priority-class max-admission-wait gauges, keyed by JobSpec
  /// priority (created on first placement of that class).
  std::map<std::int32_t, obs::Gauge*> max_wait_by_priority_;
};

}  // namespace wrht::runtime
